// Package vabuf is a variation-aware buffer-insertion library for RC
// routing trees, reproducing "Buffer Insertion Considering Process
// Variation" (Xiong, Tam, He — DATE 2005) and its extended version with
// the linear-complexity two-parameter (2P) pruning rule.
//
// The library contains:
//
//   - an RC routing-tree substrate with Elmore delay (rctree types
//     re-exported here),
//   - a first-order process-variation model with per-device random,
//     spatially correlated intra-die, and inter-die components,
//   - dynamic-programming buffer insertion: deterministic van Ginneken,
//     the paper's 2P variation-aware algorithm, and the 4P baseline,
//   - yield analysis: canonical RAT distributions, Monte-Carlo
//     validation, timing-yield metrics,
//   - benchmark generators matching the paper's Table 1,
//   - a device-characterization substrate (alpha-power-law "SPICE") with
//     the first-order fitting pipeline of §3.1 and SS/TT/FF corners, and
//   - extensions beyond the paper: simultaneous wire sizing ([8]),
//     polarity-aware insertion with inverters, drive-capability limits,
//     clock-skew minimization (§6 future work), sink criticality,
//     statistical STA on DAGs, and parallel Monte Carlo.
//
// # Quickstart
//
//	tree, _ := vabuf.GenerateBenchmark("r1")
//	model, _ := vabuf.NewVariationModel(vabuf.DefaultModelConfig(tree))
//	res, _ := vabuf.Insert(tree, vabuf.Options{
//		Library: vabuf.DefaultLibrary(),
//		Model:   model,
//	})
//	fmt.Printf("RAT %.1f ± %.1f ps with %d buffers\n", res.Mean, res.Sigma, res.NumBuffers)
//
// Units throughout: µm, fF, kΩ, ps (1 kΩ·fF = 1 ps).
package vabuf

import (
	"io"

	"vabuf/internal/benchgen"
	"vabuf/internal/core"
	"vabuf/internal/device"
	"vabuf/internal/geom"
	"vabuf/internal/rctree"
	"vabuf/internal/skew"
	"vabuf/internal/sta"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
	"vabuf/internal/yield"
)

// Re-exported substrate types. The facade keeps one import for library
// users; the internal packages stay free to evolve.
type (
	// Tree is an RC routing tree (driver root, Steiner points, sinks).
	Tree = rctree.Tree
	// Node is one tree vertex.
	Node = rctree.Node
	// NodeID indexes a node within its tree.
	NodeID = rctree.NodeID
	// WireParams are per-unit-length wire parasitics (kΩ/µm, fF/µm).
	WireParams = rctree.WireParams
	// BufferValues are sampled electrical values of one buffer instance.
	BufferValues = rctree.BufferValues
	// Point is a die location in µm.
	Point = geom.Point
	// Rect is an axis-aligned die region.
	Rect = geom.Rect

	// BufferType is one library entry (C_b, T_b, R_b).
	BufferType = device.BufferType
	// Library is an ordered buffer library.
	Library = device.Library

	// VariationModel owns the variation sources for one die.
	VariationModel = variation.Model
	// ModelConfig selects variation classes, budgets and grid geometry.
	ModelConfig = variation.ModelConfig
	// Form is a first-order canonical form over variation sources.
	Form = variation.Form

	// Options configures a buffer-insertion run.
	Options = core.Options
	// Result is the outcome of an insertion run.
	Result = core.Result
	// Rule selects the variation-aware pruning rule (2P or 4P).
	Rule = core.Rule
	// FourPParams are the quantile levels of the 4P baseline rule.
	FourPParams = core.FourPParams
	// HullMode selects the convex-hull buffering kernel (auto/on/off);
	// results are bit-identical in every mode.
	HullMode = core.HullMode
	// SubtreeCache memoizes per-subtree DP frontiers across Insert calls
	// (wire one instance into Options.SubtreeCache to make batch sweeps
	// and ECO re-inserts recompute only changed branches).
	SubtreeCache = core.SubtreeCache
	// SubtreeCacheStats is a point-in-time snapshot of cache counters.
	SubtreeCacheStats = core.SubtreeCacheStats

	// BenchmarkSpec describes a synthetic benchmark tree.
	BenchmarkSpec = benchgen.Spec

	// YieldReport summarizes a buffered design under a variation model.
	YieldReport = yield.Report

	// WireChoice is one routing option (width/layer) for wire sizing.
	WireChoice = rctree.WireChoice
	// WireAssignment maps nodes to wire overrides for their parent edges.
	WireAssignment = rctree.WireAssignment

	// SkewOptions configures clock-skew minimization (the paper's §6
	// future work, implemented in internal/skew).
	SkewOptions = skew.Options
	// SkewResult is the outcome of a skew-minimization run.
	SkewResult = skew.Result

	// VariationSpace is the registry of independent variation sources
	// shared by every canonical form of one run (model.Space).
	VariationSpace = variation.Space

	// TimingGraph is a combinational timing DAG for block-based
	// statistical static timing analysis (the SSTA substrate of the
	// paper's refs [1] and [3]).
	TimingGraph = sta.Graph
	// TimingPin identifies a vertex of a TimingGraph.
	TimingPin = sta.PinID
	// TimingResult holds arrival/required/slack forms and endpoint
	// criticalities.
	TimingResult = sta.Result
)

// Pruning rules (see core.Rule).
const (
	// Rule2P is the paper's two-parameter pruning rule (linear complexity).
	Rule2P = core.Rule2P
	// Rule4P is the four-parameter baseline rule of the DATE 2005 paper [7].
	Rule4P = core.Rule4P
)

// Convex-hull buffering kernel modes (see core.HullMode).
const (
	// HullAuto engages the hull kernel wherever the active rule supports
	// it (the default).
	HullAuto = core.HullAuto
	// HullOn requests the kernel explicitly (same engagement as auto).
	HullOn = core.HullOn
	// HullOff forces the exact per-pair generation path.
	HullOff = core.HullOff
)

// ParseHullMode parses "auto" (or ""), "on", "off" into a HullMode — the
// spelling accepted by the CLI -hull flags and the JSON "hull" field.
func ParseHullMode(s string) (HullMode, error) { return core.ParseHullMode(s) }

// Sentinel errors from capacity-limited runs.
var (
	// ErrCapacity reports that a run exceeded Options.MaxCandidates.
	ErrCapacity = core.ErrCapacity
	// ErrTimeout reports that a run exceeded Options.Timeout.
	ErrTimeout = core.ErrTimeout
	// ErrCanceled reports that Options.Context was canceled mid-run.
	ErrCanceled = core.ErrCanceled
)

// Insert runs dynamic-programming buffer insertion on the tree: the
// deterministic van Ginneken algorithm when opts.Model is nil, the
// variation-aware algorithm of the paper otherwise.
func Insert(tree *Tree, opts Options) (*Result, error) {
	return core.Insert(tree, opts)
}

// DefaultLibrary returns the four-size 65 nm buffer library characterized
// from the built-in device substrate.
func DefaultLibrary() Library { return device.DefaultLibrary() }

// NewSubtreeCache creates a subtree frontier cache bounded to maxBytes
// (<= 0 selects the 64 MiB default). One cache may be shared by any number
// of concurrent Insert calls and configurations; results are identical to
// uncached runs.
func NewSubtreeCache(maxBytes int64) *SubtreeCache { return core.NewSubtreeCache(maxBytes) }

// DefaultWire is the default global-layer wire parasitics.
var DefaultWire = rctree.DefaultWire

// NewTree creates a tree containing only the driver node.
func NewTree(wire WireParams, driverR float64, at Point) *Tree {
	return rctree.New(wire, driverR, at)
}

// GenerateBenchmark builds one of the paper's Table 1 benchmarks
// (p1, p2, r1–r5) with its fixed seed.
func GenerateBenchmark(name string) (*Tree, error) { return benchgen.Build(name) }

// Benchmarks returns the names of the built-in Table 1 benchmarks in
// presentation order (p1, p2, r1–r5). Each name is accepted by
// GenerateBenchmark.
func Benchmarks() []string {
	specs := benchgen.Presets()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// GenerateTree builds a random routing tree from a spec.
func GenerateTree(spec BenchmarkSpec) (*Tree, error) { return benchgen.Random(spec) }

// GenerateHTree builds a 4^levels-sink H-tree clock network.
func GenerateHTree(levels int, dieSide, sinkCap float64) (*Tree, error) {
	return benchgen.HTree(levels, dieSide, sinkCap, rctree.WireParams{}, 0)
}

// DefaultModelConfig returns the paper's §5.1 variation setup (500 µm
// grid, 2 mm correlation taper, 5% class budgets) sized to the tree.
func DefaultModelConfig(tree *Tree) ModelConfig {
	return variation.DefaultConfig(tree.BoundingBox().Expand(100))
}

// NewVariationModel allocates the variation sources for a configuration.
func NewVariationModel(cfg ModelConfig) (*VariationModel, error) {
	return variation.NewModel(cfg)
}

// EvaluateYield reports the RAT distribution and q-quantile yield RAT of a
// buffered tree under a model via canonical propagation.
func EvaluateYield(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel, q float64) (YieldReport, error) {
	return yield.Evaluate(tree, lib, assign, model, q)
}

// PropagateRAT returns the canonical root RAT form of a fixed buffered
// tree under a model (nil model = deterministic).
func PropagateRAT(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel) (Form, error) {
	return yield.Propagate(tree, lib, assign, model)
}

// MonteCarloRAT samples the model n times and returns the per-sample
// Elmore root RAT of the buffered tree.
func MonteCarloRAT(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel, n int, seed int64) ([]float64, error) {
	return yield.MonteCarlo(tree, lib, assign, model, n, seed)
}

// MonteCarloRATParallel is MonteCarloRAT fanned out over worker
// goroutines with deterministic sharding (identical output for any
// worker count). workers <= 0 selects GOMAXPROCS.
func MonteCarloRATParallel(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel, n int, seed int64, workers int) ([]float64, error) {
	return yield.MonteCarloParallel(tree, lib, assign, nil, model, n, seed, workers)
}

// MCAdaptiveOptions configures an early-stopping Monte-Carlo run (sample
// cap, seed, quantile, confidence, relative CI tolerance).
type MCAdaptiveOptions = yield.AdaptiveOptions

// MCEstimate is the running (or final) state of an adaptive Monte-Carlo
// run: sample count, moments, quantile estimate with CI half-width, and
// whether the stopping rule fired.
type MCEstimate = yield.Estimate

// MonteCarloRATAdaptive is MonteCarloRATParallel with a sequential
// stopping rule: sampling proceeds in deterministic shard-sized chunks
// and stops once the CI half-width of the requested RAT quantile falls
// within opts.Tol (relative), or at opts.MaxSamples. The returned
// samples are a shard-aligned prefix of the MonteCarloRATParallel
// stream for the same (MaxSamples, Seed), so a run that never converges
// reproduces the fixed-budget result exactly.
func MonteCarloRATAdaptive(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel, opts MCAdaptiveOptions) ([]float64, MCEstimate, error) {
	return yield.MonteCarloAdaptive(tree, lib, assign, nil, model, opts)
}

// MonteCarloTimingAdaptive is MonteCarloTimingParallel with the same
// sequential stopping rule applied per output pin: the run ends once
// every output's quantile CI is inside tolerance (or at the cap), and
// the estimate reports the worst-converged pin.
func MonteCarloTimingAdaptive(g *TimingGraph, inputs map[TimingPin]Form,
	space *VariationSpace, opts sta.AdaptiveOptions) ([][]float64, sta.Estimate, error) {
	return sta.MonteCarloAdaptive(g, inputs, space, opts)
}

// SinkCriticality returns, per sink, the probability that it is the
// statistically critical one (the sink realizing the minimum slack at
// the root) for a fixed buffered tree under the model.
func SinkCriticality(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel) (map[NodeID]float64, error) {
	return yield.Criticality(tree, lib, assign, model)
}

// InverterLibrary returns the two-size inverter library; combine it with
// DefaultLibrary for polarity-aware insertion.
func InverterLibrary() Library { return device.InverterLibrary() }

// ReadLibrary parses a JSON buffer library.
func ReadLibrary(r io.Reader) (Library, error) { return device.ReadLibrary(r) }

// WriteLibrary serializes a buffer library as JSON.
func WriteLibrary(w io.Writer, lib Library) error { return device.WriteLibrary(w, lib) }

// DefaultWireLibrary returns the three-width routing library used for
// simultaneous buffer insertion and wire sizing.
func DefaultWireLibrary() []WireChoice { return rctree.DefaultWireLibrary() }

// MinimizeSkew runs skew-aware buffer insertion on a clock tree,
// minimizing a quantile of the source-to-sink delay spread.
func MinimizeSkew(tree *Tree, opts SkewOptions) (*SkewResult, error) {
	return skew.Minimize(tree, opts)
}

// PropagateSkew evaluates a fixed buffered clock tree, returning the
// canonical forms of the skew (max minus min source-to-sink delay) and
// the insertion latency.
func PropagateSkew(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel) (skewForm, latency Form, err error) {
	return skew.Propagate(tree, lib, assign, model)
}

// MonteCarloSkew samples the model and returns per-sample exact skews of
// the buffered clock tree.
func MonteCarloSkew(tree *Tree, lib Library, assign map[NodeID]int,
	model *VariationModel, n int, seed int64) ([]float64, error) {
	return skew.MonteCarlo(tree, lib, assign, model, n, seed)
}

// ConstForm returns a deterministic canonical form with the given value.
func ConstForm(v float64) Form { return variation.Const(v) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
//
// Mean, MeanVar, StdDev, and Percentile re-export the descriptive-stats
// helpers the experiments pipeline reduces its Monte-Carlo samples
// with, so external consumers (and the vabufd server) summarize sample
// vectors exactly the way cmd/experiments does.
func Mean(xs []float64) float64 { return stats.Mean(xs) }

// MeanVar returns the sample mean and the unbiased (n-1) sample
// variance of xs in one pass.
func MeanVar(xs []float64) (mean, variance float64) { return stats.MeanVar(xs) }

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return stats.StdDev(xs) }

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) { return stats.Percentile(xs, p) }

// NewTimingGraph creates an empty timing DAG for statistical STA.
func NewTimingGraph() *TimingGraph { return sta.NewGraph() }

// AnalyzeTiming runs the forward/backward SSTA passes: arrival times with
// statistical MAX, required times with statistical MIN, slacks, endpoint
// criticalities, and the statistical worst slack.
func AnalyzeTiming(g *TimingGraph, inputs, required map[TimingPin]Form,
	space *VariationSpace) (*TimingResult, error) {
	return sta.Analyze(g, inputs, required, space)
}

// MonteCarloTiming samples the space and returns per-sample arrival times
// at every output pin, in g.Outputs() order.
func MonteCarloTiming(g *TimingGraph, inputs map[TimingPin]Form,
	space *VariationSpace, n int, seed int64) ([][]float64, error) {
	return sta.MonteCarlo(g, inputs, space, n, seed)
}

// MonteCarloTimingParallel is MonteCarloTiming sharded across workers with
// deterministic per-shard RNG streams: the result depends only on
// (n, seed), never on the worker count. workers <= 0 selects GOMAXPROCS.
func MonteCarloTimingParallel(g *TimingGraph, inputs map[TimingPin]Form,
	space *VariationSpace, n int, seed int64, workers int) ([][]float64, error) {
	return sta.MonteCarloParallel(g, inputs, space, n, seed, workers)
}

// ReadTree parses a tree from the rctree text format.
func ReadTree(r io.Reader) (*Tree, error) { return rctree.Read(r) }

// WriteTree serializes a tree in the rctree text format.
func WriteTree(w io.Writer, t *Tree) error { return rctree.Write(w, t) }

// SegmentizeTree splits every wire longer than maxLen into equal segments,
// adding legal buffer positions without changing Elmore behaviour.
func SegmentizeTree(t *Tree, maxLen float64) (*Tree, error) {
	return benchgen.Segmentize(t, maxLen)
}

// Evaluate computes the deterministic Elmore root RAT of a buffered tree
// with explicit per-buffer electrical values.
func Evaluate(tree *Tree, buffers map[NodeID]BufferValues) (rootRAT, rootLoad float64, err error) {
	ev, err := rctree.Evaluate(tree, buffers)
	if err != nil {
		return 0, 0, err
	}
	return ev.RootRAT, ev.RootLoad, nil
}
