module vabuf

go 1.22
