package device

import (
	"math"
	"testing"

	"vabuf/internal/spice"
)

func TestBufferTypeValidate(t *testing.T) {
	good := BufferType{Name: "b", Cb0: 1, Tb0: 10, Rb: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []BufferType{
		{Name: "b", Cb0: 0, Tb0: 10, Rb: 0.5},
		{Name: "b", Cb0: 1, Tb0: -1, Rb: 0.5},
		{Name: "b", Cb0: 1, Tb0: 10, Rb: 0},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid buffer accepted", i)
		}
	}
}

func TestLibraryValidate(t *testing.T) {
	if err := DefaultLibrary().Validate(); err != nil {
		t.Fatalf("default library invalid: %v", err)
	}
	if err := (Library{}).Validate(); err == nil {
		t.Error("empty library accepted")
	}
	dup := Library{
		{Name: "x", Cb0: 1, Tb0: 1, Rb: 1},
		{Name: "x", Cb0: 2, Tb0: 2, Rb: 2},
	}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate names accepted")
	}
	broken := Library{{Name: "x", Cb0: -1, Tb0: 1, Rb: 1}}
	if err := broken.Validate(); err == nil {
		t.Error("library with invalid entry accepted")
	}
}

// TestDefaultLibraryMatchesSubstrate pins the hardcoded constants to the
// spice pipeline they were extracted from.
func TestDefaultLibraryMatchesSubstrate(t *testing.T) {
	widths := []float64{2, 4, 8, 16}
	lib := DefaultLibrary()
	for i, w := range widths {
		p := spice.Default65nm(w)
		ch, err := p.Characterize(p.Lnom)
		if err != nil {
			t.Fatal(err)
		}
		b := lib[i]
		if math.Abs(ch.Cb-b.Cb0)/b.Cb0 > 0.01 {
			t.Errorf("%s: Cb0 %g vs characterized %g", b.Name, b.Cb0, ch.Cb)
		}
		if math.Abs(ch.Tb-b.Tb0)/b.Tb0 > 0.01 {
			t.Errorf("%s: Tb0 %g vs characterized %g", b.Name, b.Tb0, ch.Tb)
		}
		if math.Abs(ch.Rb-b.Rb)/b.Rb > 0.01 {
			t.Errorf("%s: Rb %g vs characterized %g", b.Name, b.Rb, ch.Rb)
		}
	}
}

func TestCornerLibraries(t *testing.T) {
	widths := []float64{4}
	ss, err := CornerLibrary(widths, spice.CornerSS)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := CornerLibrary(widths, spice.CornerTT)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := CornerLibrary(widths, spice.CornerFF)
	if err != nil {
		t.Fatal(err)
	}
	// Corner ordering: SS slowest, FF fastest, on both delay and drive.
	if !(ss[0].Tb0 > tt[0].Tb0 && tt[0].Tb0 > ff[0].Tb0) {
		t.Errorf("Tb corner order broken: SS %g TT %g FF %g", ss[0].Tb0, tt[0].Tb0, ff[0].Tb0)
	}
	if !(ss[0].Rb > tt[0].Rb && tt[0].Rb > ff[0].Rb) {
		t.Errorf("Rb corner order broken: SS %g TT %g FF %g", ss[0].Rb, tt[0].Rb, ff[0].Rb)
	}
	// TT equals the plain characterized library.
	plain, err := CharacterizedLibrary(widths)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0] != tt[0] {
		t.Errorf("TT corner differs from plain characterization")
	}
	if _, err := CornerLibrary(nil, spice.CornerSS); err == nil {
		t.Error("empty widths accepted")
	}
	// Corner names render.
	for _, c := range []spice.Corner{spice.CornerTT, spice.CornerSS, spice.CornerFF, spice.Corner(9)} {
		if c.String() == "" {
			t.Errorf("corner %d has empty name", c)
		}
	}
}

func TestInverterLibrary(t *testing.T) {
	inv := InverterLibrary()
	if err := inv.Validate(); err != nil {
		t.Fatal(err)
	}
	buf := DefaultLibrary()
	for _, b := range inv {
		if !b.Inverting {
			t.Errorf("%s not marked inverting", b.Name)
		}
		// Single stage: roughly half the two-stage buffer delay.
		if math.Abs(b.Tb0-buf[0].Tb0/2) > 0.01*buf[0].Tb0 {
			t.Errorf("%s Tb0 = %g, want ~%g", b.Name, b.Tb0, buf[0].Tb0/2)
		}
	}
	// Combined library remains valid (unique names).
	combined := append(append(Library{}, buf...), inv...)
	if err := combined.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLibraryOrdering(t *testing.T) {
	// Sanity of the size trade-off across the library: increasing drive
	// (lower Rb) costs input capacitance.
	lib := DefaultLibrary()
	for i := 1; i < len(lib); i++ {
		if !(lib[i].Cb0 > lib[i-1].Cb0) {
			t.Errorf("Cb0 not increasing at %d", i)
		}
		if !(lib[i].Rb < lib[i-1].Rb) {
			t.Errorf("Rb not decreasing at %d", i)
		}
	}
}

func TestCharacterizedLibrary(t *testing.T) {
	lib, err := CharacterizedLibrary([]float64{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 2 {
		t.Fatalf("len = %d", len(lib))
	}
	if lib[0].Name != "b3" || lib[1].Name != "b6" {
		t.Errorf("names = %q, %q", lib[0].Name, lib[1].Name)
	}
	if _, err := CharacterizedLibrary(nil); err == nil {
		t.Error("empty widths accepted")
	}
	if _, err := CharacterizedLibrary([]float64{-1}); err == nil {
		t.Error("invalid width accepted")
	}
}

func TestExtractFirstOrderFit(t *testing.T) {
	// The heart of Figure 3: simulate with 10% L_eff sigma, fit, and check
	// that the first-order model is a good description of the nonlinear
	// substrate.
	p := spice.Default65nm(4)
	res, err := Extract(p, 0.10, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TbFit.R2 < 0.95 {
		t.Errorf("Tb first-order fit R2 = %g, want > 0.95", res.TbFit.R2)
	}
	if res.CbFit.R2 < 0.999 {
		t.Errorf("Cb first-order fit R2 = %g (gate cap is ~linear in L)", res.CbFit.R2)
	}
	// The normal approximation should be close: small KS distance.
	if res.KS > 0.08 {
		t.Errorf("KS distance = %g, want small (Fig. 3 'very close')", res.KS)
	}
	// Relative sensitivities are positive and moderate.
	if res.TbRelSens <= 0 || res.TbRelSens > 0.5 {
		t.Errorf("TbRelSens = %g", res.TbRelSens)
	}
	if res.CbRelSens <= 0 || res.CbRelSens > 0.5 {
		t.Errorf("CbRelSens = %g", res.CbRelSens)
	}
	// Delay grows with channel length; cap grows with channel length.
	if res.TbFit.Slope <= 0 || res.CbFit.Slope <= 0 {
		t.Errorf("slopes = %g, %g, want positive", res.TbFit.Slope, res.CbFit.Slope)
	}
	if len(res.TbSamples) != 400 {
		t.Errorf("sample count = %d", len(res.TbSamples))
	}
	// Model mean is close to the nominal characterization.
	if math.Abs(res.TbMean-res.Nominal.Tb)/res.Nominal.Tb > 0.05 {
		t.Errorf("TbMean %g far from nominal %g", res.TbMean, res.Nominal.Tb)
	}
}

func TestExtractValidation(t *testing.T) {
	p := spice.Default65nm(4)
	if _, err := Extract(p, 0, 100, 1); err == nil {
		t.Error("zero sigmaFrac accepted")
	}
	if _, err := Extract(p, 0.6, 100, 1); err == nil {
		t.Error("huge sigmaFrac accepted")
	}
	if _, err := Extract(p, 0.1, 5, 1); err == nil {
		t.Error("tiny sample count accepted")
	}
	p.W = -1
	if _, err := Extract(p, 0.1, 100, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestExtractDeterministicWithSeed(t *testing.T) {
	p := spice.Default65nm(4)
	a, err := Extract(p, 0.1, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(p, 0.1, 50, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.TbFit != b.TbFit || a.KS != b.KS {
		t.Error("Extract not deterministic for fixed seed")
	}
}
