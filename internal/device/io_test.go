package device

import (
	"bytes"
	"strings"
	"testing"
)

func TestLibraryJSONRoundTrip(t *testing.T) {
	lib := append(DefaultLibrary(), InverterLibrary()...)
	lib[0].MaxLoad = 120
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, lib); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(lib) {
		t.Fatalf("round trip lost entries: %d vs %d", len(back), len(lib))
	}
	for i := range lib {
		if back[i] != lib[i] {
			t.Errorf("entry %d differs: %+v vs %+v", i, back[i], lib[i])
		}
	}
}

func TestWriteLibraryRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLibrary(&buf, Library{}); err == nil {
		t.Error("empty library written")
	}
	if err := WriteLibrary(&buf, Library{{Name: "x", Cb0: -1, Tb0: 1, Rb: 1}}); err == nil {
		t.Error("invalid entry written")
	}
}

func TestReadLibraryErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"{",                   // malformed
		"[]",                  // empty library fails validation
		`[{"Name":"x"}]`,      // invalid entry
		`[{"Frequency":900}]`, // unknown field
	}
	for _, c := range cases {
		if _, err := ReadLibrary(strings.NewReader(c)); err == nil {
			t.Errorf("ReadLibrary accepted %q", c)
		}
	}
	good := `[{"Name":"b1","Cb0":1.5,"Tb0":40,"Rb":0.3}]`
	lib, err := ReadLibrary(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if lib[0].Name != "b1" || lib[0].Rb != 0.3 {
		t.Errorf("parsed library = %+v", lib)
	}
}
