package device

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteLibrary serializes a buffer library as indented JSON, the
// interchange format of the bufins -library flag.
func WriteLibrary(w io.Writer, lib Library) error {
	if err := lib.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(lib)
}

// ReadLibrary parses a JSON buffer library and validates it.
func ReadLibrary(r io.Reader) (Library, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var lib Library
	if err := dec.Decode(&lib); err != nil {
		return nil, fmt.Errorf("device: parsing library: %w", err)
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	return lib, nil
}
