// Package device defines the buffer library used by the inserter — each
// type characterized by input capacitance C_b, intrinsic delay T_b and
// output resistance R_b (§3.1) — and the Monte-Carlo extraction pipeline
// that fits the first-order variation model of eq. 19–20 to the nonlinear
// device substrate in internal/spice (the Figure 3 experiment).
package device

import (
	"fmt"
	"math/rand"

	"vabuf/internal/spice"
	"vabuf/internal/stats"
)

// BufferType is one entry of the buffer library. Following the paper, the
// variation-prone characteristics are C_b and T_b while R_b is treated as
// a constant for a given device size.
type BufferType struct {
	Name string
	// Cb0 is the nominal input capacitance (fF).
	Cb0 float64
	// Tb0 is the nominal intrinsic delay (ps).
	Tb0 float64
	// Rb is the output resistance (kΩ).
	Rb float64
	// MaxLoad is the drive-capability limit (fF): the largest downstream
	// capacitance this buffer (and, at the leaf level, an unbuffered
	// subtree) may present. Zero means unconstrained. The constraint is
	// enforced on nominal loads by the inserters.
	MaxLoad float64
	// Inverting marks an inverter: the inserter tracks signal polarity
	// and only accepts solutions that deliver the true polarity at every
	// sink (an even number of inverters on each root-to-sink path).
	Inverting bool
}

// Validate reports problems with a buffer type.
func (b BufferType) Validate() error {
	switch {
	case b.Cb0 <= 0:
		return fmt.Errorf("device: buffer %q has non-positive Cb0 %g", b.Name, b.Cb0)
	case b.Tb0 < 0:
		return fmt.Errorf("device: buffer %q has negative Tb0 %g", b.Name, b.Tb0)
	case b.Rb <= 0:
		return fmt.Errorf("device: buffer %q has non-positive Rb %g", b.Name, b.Rb)
	case b.MaxLoad < 0:
		return fmt.Errorf("device: buffer %q has negative MaxLoad %g", b.Name, b.MaxLoad)
	}
	return nil
}

// Library is an ordered set of buffer types; the DP tries each of them at
// every legal position (the B of the O(B·N²) bound).
type Library []BufferType

// Validate checks every entry and name uniqueness.
func (l Library) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("device: empty buffer library")
	}
	seen := make(map[string]bool, len(l))
	for _, b := range l {
		if err := b.Validate(); err != nil {
			return err
		}
		if seen[b.Name] {
			return fmt.Errorf("device: duplicate buffer name %q", b.Name)
		}
		seen[b.Name] = true
	}
	return nil
}

// InverterLibrary returns a two-size inverter library derived from the
// buffer library: an inverter is a single stage, so it presents the same
// input capacitance at roughly half the intrinsic delay of the two-stage
// buffer.
func InverterLibrary() Library {
	return Library{
		{Name: "inv4", Cb0: 1.3250, Tb0: 29.7384, Rb: 0.50748, Inverting: true},
		{Name: "inv16", Cb0: 5.3000, Tb0: 29.7384, Rb: 0.12687, Inverting: true},
	}
}

// DefaultLibrary returns the four-size 65 nm buffer library extracted from
// the spice substrate at nominal channel length (widths 2, 4, 8 and 16 µm;
// values pinned here and cross-checked against spice.Characterize in the
// tests). The intrinsic delay is width-invariant because the substrate
// scales self-load with drive — the classic ideal-scaling property.
func DefaultLibrary() Library {
	return Library{
		{Name: "b2", Cb0: 0.6625, Tb0: 59.4767, Rb: 1.01495},
		{Name: "b4", Cb0: 1.3250, Tb0: 59.4767, Rb: 0.50748},
		{Name: "b8", Cb0: 2.6500, Tb0: 59.4767, Rb: 0.25374},
		{Name: "b16", Cb0: 5.3000, Tb0: 59.4767, Rb: 0.12687},
	}
}

// CharacterizedLibrary builds a library by running the spice substrate at
// nominal channel length for each output width.
func CharacterizedLibrary(widths []float64) (Library, error) {
	return CornerLibrary(widths, spice.CornerTT)
}

// CornerLibrary characterizes the buffer library at a process corner —
// the traditional corner methodology. The SS corner yields the
// pessimistic library a corner-based flow designs against.
func CornerLibrary(widths []float64, corner spice.Corner) (Library, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("device: no widths given")
	}
	lib := make(Library, 0, len(widths))
	for _, w := range widths {
		p := spice.Default65nm(w).AtCorner(corner)
		ch, err := p.Characterize(p.Lnom)
		if err != nil {
			return nil, fmt.Errorf("device: characterizing W=%g at %v: %w", w, corner, err)
		}
		lib = append(lib, BufferType{
			Name: fmt.Sprintf("b%g", w),
			Cb0:  ch.Cb,
			Tb0:  ch.Tb,
			Rb:   ch.Rb,
		})
	}
	return lib, lib.Validate()
}

// FitResult is the outcome of the §3.1 extraction flow for one device: the
// least-squares first-order model of eq. 19–20 over sampled channel
// lengths, plus the goodness-of-fit evidence behind Figure 3.
type FitResult struct {
	// Nominal is the characterization at the nominal channel length.
	Nominal spice.Characterization
	// CbFit and TbFit are the first-order models Cb(L), Tb(L) — eq. 19–20
	// restricted to the single underlying parameter L_eff.
	CbFit, TbFit stats.LinearFit
	// TbSamples are the raw simulated intrinsic delays ("SPICE-extracted
	// PDF" of Figure 3).
	TbSamples []float64
	// TbMean and TbSigma parameterize the normal approximation implied by
	// the first-order model: mean = Tb(Lnom), sigma = |dTb/dL|·sigma_L.
	TbMean, TbSigma float64
	// CbRelSens and TbRelSens are the relative 1-sigma excursions of Cb
	// and Tb under the sampled L_eff variation, e.g. 0.05 means the class
	// budget of 5%.
	CbRelSens, TbRelSens float64
	// KS is the Kolmogorov–Smirnov distance between TbSamples and the
	// N(TbMean, TbSigma) approximation: the quantitative version of
	// "the two PDFs are very close to each other".
	KS float64
}

// Extract runs the paper's §3.1 pipeline against the spice substrate:
// sample L_eff ~ N(Lnom, sigmaFrac·Lnom) (the paper uses 10%), simulate
// the device at each sample, least-squares fit the first-order model, and
// quantify how normal the resulting T_b distribution is.
func Extract(p spice.DeviceParams, sigmaFrac float64, n int, seed int64) (*FitResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sigmaFrac <= 0 || sigmaFrac >= 0.5 {
		return nil, fmt.Errorf("device: sigmaFrac %g outside (0, 0.5)", sigmaFrac)
	}
	if n < 10 {
		return nil, fmt.Errorf("device: need at least 10 samples, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	sigmaL := sigmaFrac * p.Lnom
	ls := make([]float64, 0, n)
	cbs := make([]float64, 0, n)
	tbs := make([]float64, 0, n)
	for len(ls) < n {
		l := p.Lnom + sigmaL*rng.NormFloat64()
		if l < 0.3*p.Lnom { // discard unphysical deep-tail samples
			continue
		}
		ch, err := p.Characterize(l)
		if err != nil {
			return nil, fmt.Errorf("device: sample L=%g: %w", l, err)
		}
		ls = append(ls, l)
		cbs = append(cbs, ch.Cb)
		tbs = append(tbs, ch.Tb)
	}
	nominal, err := p.Characterize(p.Lnom)
	if err != nil {
		return nil, err
	}
	cbFit, err := stats.FitLine(ls, cbs)
	if err != nil {
		return nil, fmt.Errorf("device: fitting Cb: %w", err)
	}
	tbFit, err := stats.FitLine(ls, tbs)
	if err != nil {
		return nil, fmt.Errorf("device: fitting Tb: %w", err)
	}
	res := &FitResult{
		Nominal:   nominal,
		CbFit:     cbFit,
		TbFit:     tbFit,
		TbSamples: tbs,
		TbMean:    tbFit.Eval(p.Lnom),
		TbSigma:   absF(tbFit.Slope) * sigmaL,
		CbRelSens: absF(cbFit.Slope) * sigmaL / nominal.Cb,
		TbRelSens: absF(tbFit.Slope) * sigmaL / nominal.Tb,
	}
	if res.TbSigma > 0 {
		ks, err := stats.KSNormal(tbs, res.TbMean, res.TbSigma)
		if err != nil {
			return nil, err
		}
		res.KS = ks
	}
	return res, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
