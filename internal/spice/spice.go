// Package spice is the device-characterization substrate standing in for
// the SPICE + 65 nm BSIM flow of §3.1. It models a buffer output stage with
// the alpha-power-law MOSFET model, including a short-channel V_th
// roll-off so that delay is genuinely *nonlinear* in effective channel
// length, and extracts the three buffer figures of merit the paper uses —
// input capacitance C_b, intrinsic delay T_b and output resistance R_b —
// by fixed-step transient simulation of the stage discharging capacitive
// loads.
//
// Units: V, mA, kΩ, fF, ps, µm (1 fF·V/ps = 1 mA; 1 V/mA = 1 kΩ).
package spice

import (
	"fmt"
	"math"
)

// DeviceParams describes one buffer design in a technology.
type DeviceParams struct {
	// Vdd is the supply voltage (V).
	Vdd float64
	// Vth0 is the long-channel threshold voltage (V).
	Vth0 float64
	// Alpha is the velocity-saturation exponent of the alpha-power model
	// (2.0 = classic square law, ~1.3 at 65 nm).
	Alpha float64
	// K is the transconductance scale (mA·µm^(Alpha-?) lumped constant):
	// Idsat = K · (W/L) · (Vdd - Vth(L))^Alpha.
	K float64
	// W is the output-stage transistor width (µm); buffer "size".
	W float64
	// Lnom is the nominal effective channel length (µm).
	Lnom float64
	// Cox is the gate oxide capacitance per area (fF/µm²).
	Cox float64
	// Cov is the overlap/fringe capacitance per width (fF/µm).
	Cov float64
	// Cpar is the parasitic self-load of the output stage per width (fF/µm).
	Cpar float64
	// Ksc and Lsc set the short-channel V_th roll-off:
	// Vth(L) = Vth0 - Ksc·exp(-L/Lsc). This is the dominant nonlinearity
	// that makes T_b(L_eff) non-linear.
	Ksc, Lsc float64
	// StageRatio is the width ratio between the buffer's first (input)
	// inverter and its output stage; the input cap is set by the first
	// stage, the drive by the second.
	StageRatio float64
}

// Corner selects a process corner for corner-based (non-statistical)
// characterization — the traditional methodology the statistical approach
// replaces.
type Corner uint8

// Process corners.
const (
	// CornerTT is the typical corner (the default device).
	CornerTT Corner = iota
	// CornerSS is slow-slow: weak drive and high threshold.
	CornerSS
	// CornerFF is fast-fast: strong drive and low threshold.
	CornerFF
)

// String implements fmt.Stringer.
func (c Corner) String() string {
	switch c {
	case CornerTT:
		return "TT"
	case CornerSS:
		return "SS"
	case CornerFF:
		return "FF"
	default:
		return fmt.Sprintf("corner(%d)", uint8(c))
	}
}

// AtCorner returns the device shifted to a process corner: ±20% drive
// strength and ∓50 mV threshold, the classic 3-sigma-ish corner recipe.
func (d DeviceParams) AtCorner(c Corner) DeviceParams {
	switch c {
	case CornerSS:
		d.K *= 0.8
		d.Vth0 += 0.05
	case CornerFF:
		d.K *= 1.2
		d.Vth0 -= 0.05
	}
	return d
}

// Default65nm returns a 65 nm-flavoured device with output width w (µm).
// The transconductance is a low-power corner (weak drive), which puts the
// buffered designs in the gate-delay-dominated regime the paper's
// benchmarks live in (total intrinsic buffer delay ~60 ps).
func Default65nm(w float64) DeviceParams {
	return DeviceParams{
		Vdd:        1.1,
		Vth0:       0.32,
		Alpha:      1.3,
		K:          0.025,
		W:          w,
		Lnom:       0.065,
		Cox:        15.0,
		Cov:        0.35,
		Cpar:       12.0,
		Ksc:        0.05,
		Lsc:        0.020,
		StageRatio: 4,
	}
}

// Validate reports configuration problems.
func (d DeviceParams) Validate() error {
	switch {
	case d.Vdd <= 0:
		return fmt.Errorf("spice: Vdd must be positive, got %g", d.Vdd)
	case d.W <= 0:
		return fmt.Errorf("spice: width must be positive, got %g", d.W)
	case d.Lnom <= 0:
		return fmt.Errorf("spice: Lnom must be positive, got %g", d.Lnom)
	case d.K <= 0:
		return fmt.Errorf("spice: K must be positive, got %g", d.K)
	case d.Alpha < 1 || d.Alpha > 2:
		return fmt.Errorf("spice: Alpha %g outside [1, 2]", d.Alpha)
	case d.StageRatio <= 0:
		return fmt.Errorf("spice: StageRatio must be positive, got %g", d.StageRatio)
	case d.Vth0 >= d.Vdd:
		return fmt.Errorf("spice: Vth0 %g >= Vdd %g", d.Vth0, d.Vdd)
	}
	return nil
}

// Vth returns the threshold voltage at effective channel length l (µm),
// including the short-channel roll-off.
func (d DeviceParams) Vth(l float64) float64 {
	return d.Vth0 - d.Ksc*math.Exp(-l/d.Lsc)
}

// Idsat returns the saturation current (mA) of the output stage at channel
// length l.
func (d DeviceParams) Idsat(l float64) float64 {
	vgt := d.Vdd - d.Vth(l)
	if vgt <= 0 {
		return 0
	}
	return d.K * (d.W / l) * math.Pow(vgt, d.Alpha)
}

// vdsat returns the saturation drain voltage of the alpha-power model.
func (d DeviceParams) vdsat(l float64) float64 {
	vgt := d.Vdd - d.Vth(l)
	if vgt <= 0 {
		return 0
	}
	// Sakurai–Newton: Vdsat scales like vgt^(alpha/2); normalized so the
	// classic square law gives Vdsat = vgt.
	return vgt * math.Pow(vgt/d.Vdd, d.Alpha/2-1)
}

// GateCap returns the input capacitance (fF) of the buffer at channel
// length l: the first-stage inverter gate.
func (d DeviceParams) GateCap(l float64) float64 {
	win := d.W / d.StageRatio
	return d.Cox*win*l + d.Cov*win
}

// outCurrent returns the pull-down current (mA) at output voltage v for
// channel length l: saturation current above vdsat, the alpha-power
// triode expression below.
func (d DeviceParams) outCurrent(v, l float64) float64 {
	isat := d.Idsat(l)
	if isat == 0 {
		return 0
	}
	vd := d.vdsat(l)
	if v >= vd || vd == 0 {
		return isat
	}
	u := v / vd
	return isat * u * (2 - u)
}

// TransientDelay integrates the output node discharging from Vdd through
// the output stage into total load cap (fF), returning the time (ps) for
// the output to cross Vdd/2. It uses classical RK4 with a step chosen from
// the cheap RC estimate of the delay.
func (d DeviceParams) TransientDelay(l, load float64) float64 {
	if load <= 0 {
		return 0
	}
	isat := d.Idsat(l)
	if isat == 0 {
		return math.Inf(1)
	}
	// Step size: ~1/400 of the crude C·V/I delay estimate.
	est := load * d.Vdd / (2 * isat)
	h := est / 400
	// Hoist the L-dependent model evaluation out of the integration loop.
	vd := d.vdsat(l)
	dv := func(v float64) float64 {
		i := isat
		if v < vd && vd > 0 {
			u := v / vd
			i = isat * u * (2 - u)
		}
		return -i / load
	}
	v := d.Vdd
	t := 0.0
	target := d.Vdd / 2
	for v > target {
		k1 := dv(v)
		k2 := dv(v + 0.5*h*k1)
		k3 := dv(v + 0.5*h*k2)
		k4 := dv(v + h*k3)
		next := v + h/6*(k1+2*k2+2*k3+k4)
		if next <= target {
			// Linear interpolation inside the final step.
			frac := (v - target) / (v - next)
			return t + frac*h
		}
		v = next
		t += h
		if t > 1e7 { // 10 µs: something is badly wrong
			return math.Inf(1)
		}
	}
	return t
}

// Characterization holds the three buffer figures of merit at one channel
// length.
type Characterization struct {
	// Cb is the buffer input capacitance (fF).
	Cb float64
	// Tb is the intrinsic (unloaded) delay of the two-stage buffer (ps).
	Tb float64
	// Rb is the effective output resistance (kΩ), extracted from the slope
	// of delay versus load.
	Rb float64
}

// Characterize runs the "SPICE deck" for one channel length: it measures
// the buffer's input cap analytically, its intrinsic delay by simulating
// both stages under self-load only, and its output resistance from the
// delay-versus-load slope at two load points.
func (d DeviceParams) Characterize(l float64) (Characterization, error) {
	if err := d.Validate(); err != nil {
		return Characterization{}, err
	}
	if l <= 0 {
		return Characterization{}, fmt.Errorf("spice: channel length must be positive, got %g", l)
	}
	cb := d.GateCap(l)

	// First stage: a 1/StageRatio-width copy of the output device driving
	// the output stage's gate.
	first := d
	first.W = d.W / d.StageRatio
	selfIn := first.Cpar * first.W
	gate2 := d.Cox*d.W*l + d.Cov*d.W
	t1 := first.TransientDelay(l, selfIn+gate2)

	selfOut := d.Cpar * d.W
	t2 := d.TransientDelay(l, selfOut)
	tb := t1 + t2

	// Output resistance: slope of the loaded second-stage delay.
	load1 := selfOut + 2*cb
	load2 := selfOut + 20*cb
	d1 := d.TransientDelay(l, load1)
	d2 := d.TransientDelay(l, load2)
	rb := (d2 - d1) / (load2 - load1)
	if math.IsInf(tb, 0) || math.IsInf(rb, 0) || rb <= 0 {
		return Characterization{}, fmt.Errorf("spice: characterization diverged at L=%g", l)
	}
	return Characterization{Cb: cb, Tb: tb, Rb: rb}, nil
}
