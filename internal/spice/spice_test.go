package spice

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := Default65nm(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []func(*DeviceParams){
		func(d *DeviceParams) { d.Vdd = 0 },
		func(d *DeviceParams) { d.W = -1 },
		func(d *DeviceParams) { d.Lnom = 0 },
		func(d *DeviceParams) { d.K = 0 },
		func(d *DeviceParams) { d.Alpha = 0.5 },
		func(d *DeviceParams) { d.Alpha = 3 },
		func(d *DeviceParams) { d.StageRatio = 0 },
		func(d *DeviceParams) { d.Vth0 = 2 },
	}
	for i, breakIt := range cases {
		d := Default65nm(4)
		breakIt(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestVthRollOff(t *testing.T) {
	d := Default65nm(4)
	// Shorter channel → lower threshold (roll-off), monotone.
	long := d.Vth(0.120)
	nom := d.Vth(d.Lnom)
	short := d.Vth(0.040)
	if !(short < nom && nom < long) {
		t.Errorf("Vth not monotone in L: %g, %g, %g", short, nom, long)
	}
	if long >= d.Vth0 {
		t.Errorf("Vth(long) = %g should stay below Vth0 = %g", long, d.Vth0)
	}
}

func TestIdsatScalesWithWidth(t *testing.T) {
	small := Default65nm(2)
	big := Default65nm(8)
	is := small.Idsat(small.Lnom)
	ib := big.Idsat(big.Lnom)
	if is <= 0 {
		t.Fatalf("Idsat = %g", is)
	}
	if math.Abs(ib/is-4) > 1e-9 {
		t.Errorf("Idsat width scaling = %g, want 4", ib/is)
	}
	// Zero overdrive gives zero current.
	d := Default65nm(2)
	d.Vth0 = d.Vdd + 0.04 // Vth(l) slightly above Vdd even after roll-off
	d.Ksc = 0
	if got := d.Idsat(d.Lnom); got != 0 {
		t.Errorf("cut-off Idsat = %g", got)
	}
}

func TestIdsatDecreasesWithLength(t *testing.T) {
	d := Default65nm(4)
	// Longer channel: less current (both 1/L and Vth effects agree).
	if !(d.Idsat(0.055) > d.Idsat(0.065) && d.Idsat(0.065) > d.Idsat(0.080)) {
		t.Error("Idsat not decreasing in L")
	}
}

func TestGateCapLinearInL(t *testing.T) {
	d := Default65nm(4)
	c1 := d.GateCap(0.060)
	c2 := d.GateCap(0.070)
	if !(c2 > c1 && c1 > 0) {
		t.Errorf("GateCap not increasing: %g, %g", c1, c2)
	}
}

func TestTransientDelayBasics(t *testing.T) {
	d := Default65nm(4)
	if got := d.TransientDelay(d.Lnom, 0); got != 0 {
		t.Errorf("zero load delay = %g", got)
	}
	// Delay grows with load.
	d10 := d.TransientDelay(d.Lnom, 10)
	d40 := d.TransientDelay(d.Lnom, 40)
	if !(d40 > d10 && d10 > 0) {
		t.Errorf("delay not increasing with load: %g, %g", d10, d40)
	}
	// Roughly linear in load for large loads: delay(40)/delay(10) ≈ 4
	// within generous bounds (saturation region dominates).
	ratio := d40 / d10
	if ratio < 3 || ratio > 5 {
		t.Errorf("delay load scaling ratio = %g, want ~4", ratio)
	}
	// Cut-off device never finishes.
	dc := Default65nm(4)
	dc.Vth0 = dc.Vdd + 0.1
	dc.Ksc = 0
	if !math.IsInf(dc.TransientDelay(dc.Lnom, 10), 1) {
		t.Error("cut-off device reported finite delay")
	}
}

func TestTransientDelayMatchesAnalyticBound(t *testing.T) {
	// With a constant-current discharge the exact answer is C·Vdd/2/Isat.
	// The simulated delay must be >= that (the triode tail only slows the
	// device down) and within ~2x for big loads.
	d := Default65nm(4)
	load := 100.0
	ideal := load * d.Vdd / 2 / d.Idsat(d.Lnom)
	got := d.TransientDelay(d.Lnom, load)
	if got < ideal*0.999 {
		t.Errorf("simulated delay %g below ideal bound %g", got, ideal)
	}
	if got > ideal*2 {
		t.Errorf("simulated delay %g much slower than ideal %g", got, ideal)
	}
}

func TestCharacterizeNominal(t *testing.T) {
	d := Default65nm(4)
	ch, err := d.Characterize(d.Lnom)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity ranges for a 65 nm buffer: Cb a few fF, Tb tens of ps at most,
	// Rb a fraction of a kΩ for a 4 µm output stage.
	if ch.Cb < 0.1 || ch.Cb > 20 {
		t.Errorf("Cb = %g fF out of sane range", ch.Cb)
	}
	if ch.Tb <= 0 || ch.Tb > 100 {
		t.Errorf("Tb = %g ps out of sane range", ch.Tb)
	}
	if ch.Rb <= 0 || ch.Rb > 5 {
		t.Errorf("Rb = %g kΩ out of sane range", ch.Rb)
	}
}

func TestCharacterizeSizeTradeoffs(t *testing.T) {
	small, err := Default65nm(2).Characterize(0.065)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Default65nm(12).Characterize(0.065)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger buffer: more input cap, lower output resistance.
	if !(big.Cb > small.Cb) {
		t.Errorf("Cb: big %g <= small %g", big.Cb, small.Cb)
	}
	if !(big.Rb < small.Rb) {
		t.Errorf("Rb: big %g >= small %g", big.Rb, small.Rb)
	}
}

func TestCharacterizeErrors(t *testing.T) {
	d := Default65nm(4)
	if _, err := d.Characterize(0); err == nil {
		t.Error("zero length accepted")
	}
	d.W = -1
	if _, err := d.Characterize(0.065); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDelayNonlinearInLength(t *testing.T) {
	// The short-channel V_th roll-off makes T(L) convex rather than linear:
	// verify a quadratic term is present by checking the second difference
	// is nonzero relative to the slope.
	d := Default65nm(4)
	load := 30.0
	l0, l1, l2 := 0.055, 0.065, 0.075
	t0 := d.TransientDelay(l0, load)
	t1 := d.TransientDelay(l1, load)
	t2 := d.TransientDelay(l2, load)
	if !(t0 < t1 && t1 < t2) {
		t.Fatalf("delay not increasing in L: %g %g %g", t0, t1, t2)
	}
	secondDiff := t2 - 2*t1 + t0
	slope := (t2 - t0) / 2
	if math.Abs(secondDiff/slope) < 1e-4 {
		t.Errorf("delay looks exactly linear in L (2nd diff %g, slope %g); nonlinearity substrate missing",
			secondDiff, slope)
	}
}
