// Package geom provides the small amount of planar geometry used by the
// routing-tree and spatial-variation substrates: points in micrometers,
// axis-aligned rectangles, the Manhattan metric, and uniform grids.
package geom

import (
	"fmt"
	"math"
)

// Point is a location on the die, in micrometers.
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Manhattan returns the L1 (rectilinear-wiring) distance between p and q.
func (p Point) Manhattan(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Euclidean returns the L2 distance between p and q.
func (p Point) Euclidean(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle with Min <= Max in both coordinates.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, normalizing
// the corner order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the X extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (closed on all edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Expand grows r by d on every side (d may be negative to shrink).
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// BoundingBox returns the smallest rectangle containing all pts.
// It panics if pts is empty.
func BoundingBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingBox of empty point set")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// Grid overlays a uniform cell grid on a rectangle. Cells are indexed
// (col, row) from the rectangle's Min corner; cell (0,0) is the south-west
// corner. A Grid is the geometric backbone of the spatial-correlation model.
type Grid struct {
	Area Rect
	// Cell is the edge length of one (square) grid cell, in micrometers.
	Cell float64
	// Cols and Rows are the number of cells in X and Y.
	Cols, Rows int
}

// NewGrid builds a grid of square cells of edge length cell covering area.
// The last column/row may extend past area.Max so coverage is complete.
func NewGrid(area Rect, cell float64) (Grid, error) {
	if cell <= 0 {
		return Grid{}, fmt.Errorf("geom: grid cell size must be positive, got %g", cell)
	}
	if area.Width() < 0 || area.Height() < 0 {
		return Grid{}, fmt.Errorf("geom: grid area is inverted: %+v", area)
	}
	cols := int(math.Ceil(area.Width() / cell))
	rows := int(math.Ceil(area.Height() / cell))
	if cols == 0 {
		cols = 1
	}
	if rows == 0 {
		rows = 1
	}
	return Grid{Area: area, Cell: cell, Cols: cols, Rows: rows}, nil
}

// NumCells returns the total number of grid cells.
func (g Grid) NumCells() int { return g.Cols * g.Rows }

// CellIndex returns the linear index of the cell containing p. Points
// outside the grid area are clamped to the nearest cell.
func (g Grid) CellIndex(p Point) int {
	col, row := g.CellCoords(p)
	return row*g.Cols + col
}

// CellCoords returns the (col, row) of the cell containing p, clamped to
// the grid extents.
func (g Grid) CellCoords(p Point) (col, row int) {
	col = int((p.X - g.Area.Min.X) / g.Cell)
	row = int((p.Y - g.Area.Min.Y) / g.Cell)
	col = min(max(col, 0), g.Cols-1)
	row = min(max(row, 0), g.Rows-1)
	return col, row
}

// CellCenter returns the center point of the cell with linear index idx.
func (g Grid) CellCenter(idx int) Point {
	col := idx % g.Cols
	row := idx / g.Cols
	return Point{
		X: g.Area.Min.X + (float64(col)+0.5)*g.Cell,
		Y: g.Area.Min.Y + (float64(row)+0.5)*g.Cell,
	}
}

// CellsWithin returns the linear indices of all cells whose centers are
// within radius of p, in ascending index order.
func (g Grid) CellsWithin(p Point, radius float64) []int {
	var out []int
	lo := Point{p.X - radius, p.Y - radius}
	hi := Point{p.X + radius, p.Y + radius}
	c0, r0 := g.CellCoords(lo)
	c1, r1 := g.CellCoords(hi)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			idx := row*g.Cols + col
			if g.CellCenter(idx).Euclidean(p) <= radius {
				out = append(out, idx)
			}
		}
	}
	return out
}
