package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestManhattan(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Manhattan(q); got != 7 {
		t.Errorf("Manhattan = %g, want 7", got)
	}
	if got := p.Euclidean(q); got != 5 {
		t.Errorf("Euclidean = %g, want 5", got)
	}
}

func TestManhattanMetricProperties(t *testing.T) {
	// Symmetry, non-negativity, identity, triangle inequality.
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampCoord(ax), clampCoord(ay)}
		b := Point{clampCoord(bx), clampCoord(by)}
		c := Point{clampCoord(cx), clampCoord(cy)}
		dab := a.Manhattan(b)
		dba := b.Manhattan(a)
		dac := a.Manhattan(c)
		dcb := c.Manhattan(b)
		if dab != dba {
			return false
		}
		if dab < 0 {
			return false
		}
		if a.Manhattan(a) != 0 {
			return false
		}
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampCoord maps arbitrary float64s from testing/quick into a sane
// coordinate range, discarding NaN/Inf.
func clampCoord(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{0, 5})
	if r.Min != (Point{0, 5}) || r.Max != (Point{10, 20}) {
		t.Fatalf("NewRect did not normalize: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 15 {
		t.Errorf("Width/Height = %g/%g", r.Width(), r.Height())
	}
	if r.Center() != (Point{5, 12.5}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{-1, 5}) {
		t.Error("Contains misbehaved")
	}
	if got := r.Clamp(Point{-3, 100}); got != (Point{0, 20}) {
		t.Errorf("Clamp = %v", got)
	}
	e := r.Expand(1)
	if e.Min != (Point{-1, 4}) || e.Max != (Point{11, 21}) {
		t.Errorf("Expand = %+v", e)
	}
	u := r.Union(NewRect(Point{-5, 0}, Point{1, 1}))
	if u.Min != (Point{-5, 0}) || u.Max != (Point{10, 20}) {
		t.Errorf("Union = %+v", u)
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{{1, 1}, {-2, 5}, {3, 0}}
	bb := BoundingBox(pts)
	if bb.Min != (Point{-2, 0}) || bb.Max != (Point{3, 5}) {
		t.Errorf("BoundingBox = %+v", bb)
	}
	for _, p := range pts {
		if !bb.Contains(p) {
			t.Errorf("bounding box does not contain %v", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingBox(nil) did not panic")
		}
	}()
	BoundingBox(nil)
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(NewRect(Point{}, Point{100, 100}), 0); err == nil {
		t.Error("want error for zero cell size")
	}
	if _, err := NewGrid(NewRect(Point{}, Point{100, 100}), -5); err == nil {
		t.Error("want error for negative cell size")
	}
}

func TestGridIndexing(t *testing.T) {
	g, err := NewGrid(NewRect(Point{0, 0}, Point{1000, 500}), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 10 || g.Rows != 5 {
		t.Fatalf("Cols/Rows = %d/%d", g.Cols, g.Rows)
	}
	if g.NumCells() != 50 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	// South-west corner is cell 0.
	if idx := g.CellIndex(Point{1, 1}); idx != 0 {
		t.Errorf("SW corner cell = %d", idx)
	}
	// Out-of-area points clamp.
	if idx := g.CellIndex(Point{-50, -50}); idx != 0 {
		t.Errorf("clamped SW = %d", idx)
	}
	if idx := g.CellIndex(Point{5000, 5000}); idx != g.NumCells()-1 {
		t.Errorf("clamped NE = %d", idx)
	}
	// Center of a cell round-trips.
	for _, idx := range []int{0, 7, 23, 49} {
		c := g.CellCenter(idx)
		if got := g.CellIndex(c); got != idx {
			t.Errorf("CellIndex(CellCenter(%d)) = %d", idx, got)
		}
	}
}

func TestGridDegenerateArea(t *testing.T) {
	g, err := NewGrid(NewRect(Point{5, 5}, Point{5, 5}), 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cols != 1 || g.Rows != 1 {
		t.Errorf("degenerate grid = %dx%d, want 1x1", g.Cols, g.Rows)
	}
	if g.CellIndex(Point{5, 5}) != 0 {
		t.Error("degenerate grid index != 0")
	}
}

func TestCellsWithin(t *testing.T) {
	g, err := NewGrid(NewRect(Point{0, 0}, Point{1000, 1000}), 100)
	if err != nil {
		t.Fatal(err)
	}
	center := Point{500, 500}
	cells := g.CellsWithin(center, 150)
	if len(cells) == 0 {
		t.Fatal("no cells within radius")
	}
	for _, idx := range cells {
		if d := g.CellCenter(idx).Euclidean(center); d > 150 {
			t.Errorf("cell %d center at distance %g > 150", idx, d)
		}
	}
	// All returned indices ascend and are unique.
	for i := 1; i < len(cells); i++ {
		if cells[i] <= cells[i-1] {
			t.Errorf("cells not strictly ascending at %d: %v", i, cells)
		}
	}
	// A huge radius returns every cell.
	all := g.CellsWithin(center, 1e9)
	if len(all) != g.NumCells() {
		t.Errorf("huge radius returned %d cells, want %d", len(all), g.NumCells())
	}
	// Zero radius returns at most the containing cell's center match.
	near := g.CellsWithin(g.CellCenter(55), 1)
	if len(near) != 1 || near[0] != 55 {
		t.Errorf("tiny radius = %v, want [55]", near)
	}
}
