package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhiKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.6448536269514722, 0.95},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := Phi(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Phi(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestPhiSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 40)
		return math.Abs(Phi(-x)-(1-Phi(x))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 30)
		b = math.Mod(b, 30)
		if a > b {
			a, b = b, a
		}
		return Phi(a) <= Phi(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhiPDFIntegratesToOne(t *testing.T) {
	// Trapezoidal integration over [-10, 10].
	const n = 20000
	h := 20.0 / n
	sum := 0.5 * (PhiPDF(-10) + PhiPDF(10))
	for i := 1; i < n; i++ {
		sum += PhiPDF(-10 + float64(i)*h)
	}
	sum *= h
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("integral of phi = %.12f, want 1", sum)
	}
}

func TestPhiPDFIsDerivativeOfPhi(t *testing.T) {
	for _, x := range []float64{-3, -1.2, 0, 0.5, 2.7} {
		const h = 1e-6
		num := (Phi(x+h) - Phi(x-h)) / (2 * h)
		if math.Abs(num-PhiPDF(x)) > 1e-8 {
			t.Errorf("d/dx Phi at %g = %g, PhiPDF = %g", x, num, PhiPDF(x))
		}
	}
}

func TestQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.95, 1.6448536269514722},
		{0.05, -1.6448536269514722},
		{0.975, 1.959963984540054},
		{0.8413447460685429, 1},
	}
	for _, c := range cases {
		if got := Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %.12g, want %.12g", c.p, got, c.want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsInf(Quantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(Quantile(1), +1) {
		t.Error("Quantile(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(Quantile(p)) {
			t.Errorf("Quantile(%g) should be NaN", p)
		}
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		// Map into (1e-12, 1-1e-12).
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-12 || p > 1-1e-12 {
			return true
		}
		x := Quantile(p)
		return math.Abs(Phi(x)-p) < 1e-11
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuantileTails(t *testing.T) {
	// Deep tails should still round-trip reasonably.
	for _, p := range []float64{1e-10, 1e-6, 1e-3, 1 - 1e-3, 1 - 1e-6} {
		x := Quantile(p)
		if rel := math.Abs(Phi(x)-p) / p; rel > 1e-6 {
			t.Errorf("tail round trip p=%g: Phi(Quantile) rel err %g", p, rel)
		}
	}
}

func TestNormalCDFAndQuantile(t *testing.T) {
	mu, sigma := 100.0, 15.0
	if got := NormalCDF(mu, mu, sigma); got != 0.5 {
		t.Errorf("NormalCDF at mean = %g", got)
	}
	x := NormalQuantile(0.95, mu, sigma)
	if math.Abs(NormalCDF(x, mu, sigma)-0.95) > 1e-10 {
		t.Errorf("quantile/CDF round trip failed: %g", NormalCDF(x, mu, sigma))
	}
	// Degenerate sigma behaves as a step.
	if NormalCDF(99, 100, 0) != 0 || NormalCDF(101, 100, 0) != 1 {
		t.Error("degenerate NormalCDF is not a step function")
	}
}

func TestNormalPDFPeak(t *testing.T) {
	if got := NormalPDF(5, 5, 2); math.Abs(got-InvSqrt2Pi/2) > 1e-15 {
		t.Errorf("NormalPDF peak = %g", got)
	}
}
