package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSigmaDiff(t *testing.T) {
	// Independent variables: variance adds.
	if got := SigmaDiff(3, 4, 0); math.Abs(got-5) > 1e-12 {
		t.Errorf("SigmaDiff(3,4,0) = %g, want 5", got)
	}
	// Perfect correlation with equal sigma: deterministic difference.
	if got := SigmaDiff(2, 2, 1); got != 0 {
		t.Errorf("SigmaDiff(2,2,1) = %g, want 0", got)
	}
	// Anti-correlation maximizes the spread.
	if got := SigmaDiff(2, 2, -1); math.Abs(got-4) > 1e-12 {
		t.Errorf("SigmaDiff(2,2,-1) = %g, want 4", got)
	}
}

func TestProbGreaterComplementarity(t *testing.T) {
	// Lemma 2: P(T1>T2) + P(T2>T1) = 1 for any pair.
	f := func(m1, s1r, m2, s2r, rhoR float64) bool {
		m1, m2 = sane(m1, 100), sane(m2, 100)
		s1 := math.Abs(sane(s1r, 10))
		s2 := math.Abs(sane(s2r, 10))
		rho := math.Mod(sane(rhoR, 1), 1)
		p := ProbGreater(m1, s1, m2, s2, rho)
		q := ProbGreater(m2, s2, m1, s1, rho)
		return math.Abs(p+q-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbGreaterKnownValues(t *testing.T) {
	// Equal means: exactly 0.5.
	if got := ProbGreater(5, 1, 5, 2, 0.3); got != 0.5 {
		t.Errorf("equal means: %g, want 0.5", got)
	}
	// Deterministic difference.
	if got := ProbGreater(6, 2, 5, 2, 1); got != 1 {
		t.Errorf("perfectly correlated larger mean: %g, want 1", got)
	}
	if got := ProbGreater(4, 2, 5, 2, 1); got != 0 {
		t.Errorf("perfectly correlated smaller mean: %g, want 0", got)
	}
	// Both deterministic.
	if got := ProbGreater(1, 0, 2, 0, 0); got != 0 {
		t.Errorf("deterministic: %g, want 0", got)
	}
	// Eq. 8 hand check: mu diff 1, independent unit sigmas -> Phi(1/sqrt 2).
	want := Phi(1 / math.Sqrt2)
	if got := ProbGreater(1, 1, 0, 1, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("eq.8 check: %g, want %g", got, want)
	}
}

func TestProbGreaterLemma4MeanOrdering(t *testing.T) {
	// Lemma 4: P(T1 > T2) > 0.5 iff mu1 > mu2 (when not degenerate).
	f := func(m1, m2, s1r, s2r, rhoR float64) bool {
		m1, m2 = sane(m1, 100), sane(m2, 100)
		s1 := math.Abs(sane(s1r, 10)) + 0.1
		s2 := math.Abs(sane(s2r, 10)) + 0.2 // distinct so sd>0 even at rho=1
		rho := 0.9 * math.Mod(sane(rhoR, 1), 1)
		p := ProbGreater(m1, s1, m2, s2, rho)
		switch {
		case m1 > m2:
			return p > 0.5
		case m1 < m2:
			return p < 0.5
		default:
			return p == 0.5
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTransitivityTheorem2 is the property test for the paper's Theorem 2:
// for jointly normal T1, T2, T3, if P(T1>T2) > pbar and P(T2>T3) > pbar
// then P(T1>T3) > pbar for any pbar in [0.5, 1).
func TestTransitivityTheorem2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 20000
	checked := 0
	for trial := 0; trial < trials; trial++ {
		// Build a random joint normal triple from a random 3x4 loading
		// matrix over 4 independent sources: guarantees a valid joint
		// normal with arbitrary correlations.
		var load [3][4]float64
		for i := range load {
			for j := range load[i] {
				load[i][j] = rng.NormFloat64()
			}
		}
		mu := [3]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		sigma := func(i int) float64 {
			s := 0.0
			for _, a := range load[i] {
				s += a * a
			}
			return math.Sqrt(s)
		}
		rho := func(i, j int) float64 {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += load[i][k] * load[j][k]
			}
			si, sj := sigma(i), sigma(j)
			if si == 0 || sj == 0 {
				return 0
			}
			return s / (si * sj)
		}
		pbar := 0.5 + 0.49*rng.Float64()
		p12 := ProbGreater(mu[0], sigma(0), mu[1], sigma(1), rho(0, 1))
		p23 := ProbGreater(mu[1], sigma(1), mu[2], sigma(2), rho(1, 2))
		if p12 <= pbar || p23 <= pbar {
			continue // premise not satisfied; resample
		}
		checked++
		p13 := ProbGreater(mu[0], sigma(0), mu[2], sigma(2), rho(0, 2))
		if p13 <= pbar {
			t.Fatalf("transitivity violated: pbar=%.3f p12=%.4f p23=%.4f p13=%.4f",
				pbar, p12, p23, p13)
		}
	}
	if checked < 100 {
		t.Fatalf("only %d triples satisfied the premise; test is vacuous", checked)
	}
}

func TestMinNormalsAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ mu1, s1, mu2, s2, rho float64 }{
		{0, 1, 0, 1, 0},
		{0, 1, 1, 2, 0.5},
		{-3, 0.5, -2.8, 0.7, 0.9},
		{10, 2, 4, 1, -0.6},
	}
	const n = 400000
	for _, c := range cases {
		m := MinNormals(c.mu1, c.s1, c.mu2, c.s2, c.rho)
		var sum, sum2, tight float64
		for i := 0; i < n; i++ {
			z1 := rng.NormFloat64()
			z2 := c.rho*z1 + math.Sqrt(1-c.rho*c.rho)*rng.NormFloat64()
			x := c.mu1 + c.s1*z1
			y := c.mu2 + c.s2*z2
			v := math.Min(x, y)
			sum += v
			sum2 += v * v
			if x < y {
				tight++
			}
		}
		mean := sum / n
		varMC := sum2/n - mean*mean
		if math.Abs(mean-m.Mean) > 0.02 {
			t.Errorf("case %+v: MC mean %.4f vs Clark %.4f", c, mean, m.Mean)
		}
		if math.Abs(varMC-m.Var) > 0.05*math.Max(1, m.Var) {
			t.Errorf("case %+v: MC var %.4f vs Clark %.4f", c, varMC, m.Var)
		}
		if math.Abs(tight/n-m.Tightness) > 0.01 {
			t.Errorf("case %+v: MC tightness %.4f vs %.4f", c, tight/n, m.Tightness)
		}
	}
}

func TestMinNormalsDegenerate(t *testing.T) {
	// Deterministic difference: exact min of means.
	m := MinNormals(3, 2, 5, 2, 1)
	if m.Mean != 3 || m.Var != 4 || m.Tightness != 1 {
		t.Errorf("degenerate min = %+v", m)
	}
	m = MinNormals(5, 2, 3, 2, 1)
	if m.Mean != 3 || m.Tightness != 0 {
		t.Errorf("degenerate min (swapped) = %+v", m)
	}
	// Identical variables.
	m = MinNormals(4, 1.5, 4, 1.5, 1)
	if m.Mean != 4 || m.Tightness != 0.5 {
		t.Errorf("identical variables min = %+v", m)
	}
}

func TestMinMeanBelowBothMeans(t *testing.T) {
	f := func(m1r, m2r, s1r, s2r, rhoR float64) bool {
		m1, m2 := sane(m1r, 50), sane(m2r, 50)
		s1 := math.Abs(sane(s1r, 5))
		s2 := math.Abs(sane(s2r, 5))
		rho := math.Mod(sane(rhoR, 1), 1)
		m := MinNormals(m1, s1, m2, s2, rho)
		return m.Mean <= math.Min(m1, m2)+1e-9 && m.Var >= 0 &&
			m.Tightness >= 0 && m.Tightness <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxNormalsMirrorsMin(t *testing.T) {
	mx := MaxNormals(1, 2, 3, 1, 0.4)
	mn := MinNormals(-1, 2, -3, 1, 0.4)
	if math.Abs(mx.Mean+mn.Mean) > 1e-12 || math.Abs(mx.Var-mn.Var) > 1e-12 {
		t.Errorf("max/min mirror broken: %+v vs %+v", mx, mn)
	}
	if mx.Mean < 3 {
		t.Errorf("E[max] = %g below larger mean", mx.Mean)
	}
}

func TestMinNormalsTightnessComplementarity(t *testing.T) {
	// P(T1 < T2) from Min(a, b) and P(T2 < T1) from Min(b, a) sum to 1.
	f := func(m1r, m2r, s1r, s2r, rhoR float64) bool {
		m1, m2 := sane(m1r, 50), sane(m2r, 50)
		s1 := math.Abs(sane(s1r, 5))
		s2 := math.Abs(sane(s2r, 5))
		rho := math.Mod(sane(rhoR, 1), 1)
		a := MinNormals(m1, s1, m2, s2, rho)
		b := MinNormals(m2, s2, m1, s1, rho)
		return math.Abs(a.Tightness+b.Tightness-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinNormalsSymmetricMean(t *testing.T) {
	// min is symmetric: swapping the arguments preserves mean and var.
	f := func(m1r, m2r, s1r, s2r, rhoR float64) bool {
		m1, m2 := sane(m1r, 50), sane(m2r, 50)
		s1 := math.Abs(sane(s1r, 5))
		s2 := math.Abs(sane(s2r, 5))
		rho := math.Mod(sane(rhoR, 1), 1)
		a := MinNormals(m1, s1, m2, s2, rho)
		b := MinNormals(m2, s2, m1, s1, rho)
		return math.Abs(a.Mean-b.Mean) < 1e-9 && math.Abs(a.Var-b.Var) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sane maps arbitrary quick-generated floats into a bounded usable range.
func sane(x, scale float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, scale)
}
