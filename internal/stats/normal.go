// Package stats implements the probability and numerical machinery the
// variation-aware buffer inserter is built on: the standard normal CDF/PDF
// and quantile, closed-form comparison of two correlated normal variables
// (eq. 8–9 of the paper), Clark's moments for the MIN of two correlated
// normals (the tightness-probability construction of eq. 38–40), simple
// least-squares fitting (used to extract first-order device sensitivities),
// and descriptive statistics, histograms, and goodness-of-fit distances for
// the Monte-Carlo validation experiments.
package stats

import "math"

// InvSqrt2Pi is 1/sqrt(2*pi), the peak of the standard normal PDF.
const InvSqrt2Pi = 0.3989422804014327

// Phi returns the standard normal cumulative distribution function at x.
func Phi(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// PhiPDF returns the standard normal probability density function at x.
func PhiPDF(x float64) float64 {
	return InvSqrt2Pi * math.Exp(-0.5*x*x)
}

// Quantile returns the standard normal quantile (inverse CDF) at p in
// (0, 1). Quantile(0.5) == 0. It returns ±Inf at p == 0 or p == 1 and NaN
// outside [0, 1].
func Quantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	x := acklam(p)
	// One Halley refinement step pushes the approximation to near machine
	// precision across the whole open interval.
	e := Phi(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(0.5*x*x)
	x -= u / (1 + 0.5*x*u)
	return x
}

// acklam is Peter Acklam's rational approximation to the inverse normal
// CDF, accurate to about 1.15e-9 before refinement.
func acklam(p float64) float64 {
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		plow  = 0.02425
		phigh = 1 - plow
	)
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

// NormalPDF returns the density of N(mu, sigma) at x. sigma must be
// positive.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return PhiPDF(z) / sigma
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma). A zero sigma yields a
// step function at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma == 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return Phi((x - mu) / sigma)
}

// NormalQuantile returns the p-quantile of N(mu, sigma).
func NormalQuantile(p, mu, sigma float64) float64 {
	return mu + sigma*Quantile(p)
}
