package stats

import (
	"fmt"
	"math"
)

// Histogram bins scalar samples over a fixed range. It is used to compare
// Monte-Carlo sample distributions against the model-predicted normal PDFs
// (Figures 3 and 6).
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count samples falling outside [Min, Max).
	Under, Over int
	total       int
}

// NewHistogram creates a histogram with the given number of bins covering
// [min, max).
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram range [%g, %g) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// HistogramOf builds a histogram spanning the sample range of xs, slightly
// padded so every sample lands in a bin.
func HistogramOf(xs []float64, bins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: histogram of empty sample")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo == hi {
		lo -= 0.5
		hi += 0.5
	}
	pad := (hi - lo) * 1e-9
	h, err := NewHistogram(lo, hi+pad+math.SmallestNonzeroFloat64, bins)
	if err != nil {
		return nil, err
	}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Min {
		h.Under++
		return
	}
	if x >= h.Max {
		h.Over++
		return
	}
	idx := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if idx >= len(h.Counts) { // guard against floating rounding at the edge
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of one bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// PDF returns the empirical density estimate per bin: counts normalized so
// the histogram integrates to 1 over [Min, Max).
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	norm := 1.0 / (float64(h.total) * h.BinWidth())
	for i, c := range h.Counts {
		out[i] = float64(c) * norm
	}
	return out
}

// MaxDensityError returns the largest absolute difference between the
// empirical bin density and the N(mu, sigma) density evaluated at the bin
// centers — the cheap "are these two PDFs close" metric used by the
// Figure 3 / Figure 6 reproductions.
func (h *Histogram) MaxDensityError(mu, sigma float64) float64 {
	worst := 0.0
	for i, d := range h.PDF() {
		ref := NormalPDF(h.BinCenter(i), mu, sigma)
		worst = math.Max(worst, math.Abs(d-ref))
	}
	return worst
}
