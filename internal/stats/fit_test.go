package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", fit.R2)
	}
	if got := fit.Eval(10); math.Abs(got-23) > 1e-12 {
		t.Errorf("Eval(10) = %g", got)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = -7 + 0.5*xs[i] + rng.NormFloat64()
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.01 {
		t.Errorf("slope = %g, want ~0.5", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %g, want near 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLine([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should error")
	}
	// Constant y is a legal horizontal line with R2 = 1.
	fit, err := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.Intercept != 5 || fit.R2 != 1 {
		t.Errorf("constant-y fit = %+v", fit)
	}
}

func TestFitPolyRecoversCubic(t *testing.T) {
	want := []float64{1, -2, 0.5, 0.25}
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i)/5 - 3
		ys[i] = EvalPoly(want, xs[i])
	}
	got, err := FitPoly(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("coeff[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFitPolyErrors(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("too few points should error")
	}
}

func TestEvalPoly(t *testing.T) {
	if got := EvalPoly(nil, 3); got != 0 {
		t.Errorf("EvalPoly(nil) = %g", got)
	}
	if got := EvalPoly([]float64{2, 3, 4}, 2); got != 2+6+16 {
		t.Errorf("EvalPoly = %g, want 24", got)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	// Inputs must be unmodified.
	if a[0][0] != 2 || b[0] != 8 {
		t.Error("SolveLinearSystem modified its inputs")
	}
}

func TestSolveLinearSystemNeedsPivot(t *testing.T) {
	// Zero in the leading position forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, err := SolveLinearSystem(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 4 || x[1] != 3 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := SolveLinearSystem(a, []float64{1, 2}); err == nil {
		t.Error("singular system should error")
	}
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Error("empty system should error")
	}
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system should error")
	}
}
