package stats

import (
	"fmt"
	"math"
)

// LinearFit holds the result of an ordinary least-squares straight-line
// fit y ≈ Intercept + Slope·x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination in [0, 1]; 1 is a perfect fit.
	R2 float64
}

// FitLine performs an ordinary least-squares fit of ys against xs. It is
// used both to extract first-order device sensitivities (eq. 19–20) from
// simulated samples and to verify the linear runtime scaling of Figure 5.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs at least 2 points, got %d", len(xs))
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLine x values are all identical")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // constant y fitted exactly by the horizontal line
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Eval returns the fitted value at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// FitPoly fits a polynomial of the given degree by solving the normal
// equations with Gaussian elimination and partial pivoting. Coefficients
// are returned lowest order first: y ≈ c[0] + c[1]x + … + c[deg]x^deg.
func FitPoly(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("stats: FitPoly degree %d is negative", degree)
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: FitPoly length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < degree+1 {
		return nil, fmt.Errorf("stats: FitPoly needs >= %d points for degree %d, got %d",
			degree+1, degree, len(xs))
	}
	n := degree + 1
	// Build the normal-equation matrix A (n x n) and RHS b.
	a := make([][]float64, n)
	b := make([]float64, n)
	// powSums[k] = sum of x^k for k = 0..2*degree.
	powSums := make([]float64, 2*degree+1)
	for _, x := range xs {
		p := 1.0
		for k := range powSums {
			powSums[k] += p
			p *= x
		}
	}
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = powSums[i+j]
		}
	}
	for i := range xs {
		p := 1.0
		for k := 0; k < n; k++ {
			b[k] += p * ys[i]
			p *= xs[i]
		}
	}
	coeffs, err := SolveLinearSystem(a, b)
	if err != nil {
		return nil, fmt.Errorf("stats: FitPoly: %w", err)
	}
	return coeffs, nil
}

// EvalPoly evaluates a polynomial with coefficients lowest order first at x.
func EvalPoly(coeffs []float64, x float64) float64 {
	y := 0.0
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = y*x + coeffs[i]
	}
	return y
}

// SolveLinearSystem solves A·x = b in place via Gaussian elimination with
// partial pivoting. A must be square with len(A) == len(b). The inputs are
// not modified.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system dimensions %dx? vs %d", n, len(b))
	}
	// Copy into augmented matrix.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: matrix row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("stats: singular system at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
