package stats

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func TestRunningMatchesMeanVar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
	}
	var r Running
	r.AddAll(xs)
	mean, variance := MeanVar(xs)
	if math.Abs(r.Mean()-mean) > 1e-12 {
		t.Errorf("running mean %g vs batch %g", r.Mean(), mean)
	}
	if math.Abs(r.Var()-variance) > 1e-9 {
		t.Errorf("running var %g vs batch %g", r.Var(), variance)
	}
	if r.N() != len(xs) {
		t.Errorf("N = %d, want %d", r.N(), len(xs))
	}
}

func TestMeanCIHalfWidthShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var r Running
	for i := 0; i < 100; i++ {
		r.Add(rng.NormFloat64())
	}
	hw100 := r.MeanCIHalfWidth(0.95)
	for i := 0; i < 9900; i++ {
		r.Add(rng.NormFloat64())
	}
	hw10k := r.MeanCIHalfWidth(0.95)
	if hw100 <= 0 || hw10k <= 0 {
		t.Fatalf("non-positive half-widths %g, %g", hw100, hw10k)
	}
	// √100 more samples shrinks the half-width by ~10×.
	if ratio := hw100 / hw10k; ratio < 5 || ratio > 20 {
		t.Errorf("half-width ratio %g, want ~10", ratio)
	}
}

// TestQuantileCICoverage draws repeated standard-normal samples and
// checks the 95% CI for the 5% quantile covers the true value at
// roughly the nominal rate.
func TestQuantileCICoverage(t *testing.T) {
	const (
		trials = 200
		n      = 2000
		q      = 0.05
	)
	truth := Quantile(q)
	rng := rand.New(rand.NewSource(11))
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		slices.Sort(xs)
		lo, hi, err := QuantileCI(xs, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("inverted CI [%g, %g]", lo, hi)
		}
		if lo <= truth && truth <= hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 {
		t.Errorf("CI covered the true quantile in %.0f%% of trials, want ≥ 88%%", 100*rate)
	}
}

func TestQuantileEstimate(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	est, hw, err := QuantileEstimate(xs, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if est != 50 {
		t.Errorf("median estimate %g, want 50", est)
	}
	if hw <= 0 {
		t.Errorf("half-width %g, want > 0", hw)
	}
	if _, _, err := QuantileEstimate(nil, 0.5, 0.95); err == nil {
		t.Error("empty sample: want error")
	}
	if _, _, err := QuantileCI(xs, 0, 0.95); err == nil {
		t.Error("q=0: want error")
	}
	if _, _, err := QuantileCI(xs, 0.5, 1); err == nil {
		t.Error("confidence=1: want error")
	}
}
