package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVar(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, v := MeanVar(xs)
	if m != 5 {
		t.Errorf("mean = %g, want 5", m)
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("var = %g, want %g", v, 32.0/7.0)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("stddev = %g", got)
	}
}

func TestMeanVarEdge(t *testing.T) {
	if m, v := MeanVar(nil); m != 0 || v != 0 {
		t.Errorf("empty MeanVar = %g, %g", m, v)
	}
	if m, v := MeanVar([]float64{42}); m != 42 || v != 0 {
		t.Errorf("single MeanVar = %g, %g", m, v)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestMeanVarMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		m, v := MeanVar(xs)
		nm := Mean(xs)
		var s float64
		for _, x := range xs {
			s += (x - nm) * (x - nm)
		}
		nv := s / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(nv))
		return math.Abs(m-nm) < 1e-6 && math.Abs(v-nv)/scale < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input is untouched.
	if xs[0] != 5 {
		t.Error("Percentile sorted the caller's slice")
	}
	if _, err := Percentile(nil, 0.5); err == nil {
		t.Error("empty percentile should error")
	}
	if _, err := Percentile(xs, 1.5); err == nil {
		t.Error("out-of-range p should error")
	}
	got, err := Percentile([]float64{7}, 0.99)
	if err != nil || got != 7 {
		t.Errorf("single-element percentile = %g, %v", got, err)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	cov, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-5) > 1e-12 {
		t.Errorf("cov = %g, want 5", cov)
	}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anti-correlation = %g", r)
	}
	if _, err := Covariance(xs, ys[:3]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Covariance(xs[:1], ys[:1]); err == nil {
		t.Error("single sample should error")
	}
	if _, err := Correlation(xs, []float64{3, 3, 3, 3, 3}); err == nil {
		t.Error("constant sample correlation should error")
	}
}

func TestCorrelationBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64() + 0.5*xs[i]
		}
		r, err := Correlation(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if r < -1-1e-12 || r > 1+1e-12 {
			t.Fatalf("correlation %g out of [-1,1]", r)
		}
	}
}

func TestKSNormalGoodFit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
	}
	d, err := KSNormal(xs, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.02 {
		t.Errorf("KS distance for true normal sample = %g, want small", d)
	}
	// Badly mismatched parameters should give a large distance.
	d2, err := KSNormal(xs, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d2 < 0.5 {
		t.Errorf("KS distance for wrong mean = %g, want large", d2)
	}
	if _, err := KSNormal(nil, 0, 1); err == nil {
		t.Error("empty KS should error")
	}
	if _, err := KSNormal(xs, 0, 0); err == nil {
		t.Error("zero sigma KS should error")
	}
}
