package stats

import (
	"fmt"
	"math"
)

// Sequential-stopping helpers for adaptive Monte Carlo: a streaming
// moment accumulator plus confidence intervals for the mean and for
// empirical quantiles. The adaptive samplers in internal/yield and
// internal/sta run in shard-sized chunks and stop as soon as the CI
// half-width of the estimate they care about reaches a requested
// tolerance — the sequential analogue of the fixed-budget estimators in
// descriptive.go.

// Running accumulates a sample stream one value at a time (Welford's
// algorithm, the streaming twin of MeanVar). The zero value is ready to
// use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddAll folds a batch of observations into the accumulator.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of observations folded in so far.
func (r *Running) N() int { return r.n }

// Mean returns the running sample mean (0 before any observation).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the running unbiased sample variance (0 while n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Sigma returns the running unbiased sample standard deviation.
func (r *Running) Sigma() float64 { return math.Sqrt(r.Var()) }

// MeanCIHalfWidth returns the half-width of the confidence interval for
// the mean at the given two-sided confidence level (e.g. 0.95), using
// the normal approximation z·s/√n. It is 0 while n < 2.
func (r *Running) MeanCIHalfWidth(confidence float64) float64 {
	if r.n < 2 {
		return 0
	}
	z := Quantile(0.5 + confidence/2)
	return z * r.Sigma() / math.Sqrt(float64(r.n))
}

// QuantileCI returns a distribution-free confidence interval for the
// q-quantile of the population from a sorted sample, via the normal
// approximation to the binomial order-statistic bracket: the interval
// endpoints are the order statistics at ranks n·q ± z·√(n·q·(1-q)),
// clamped to the sample. confidence is the two-sided level (e.g. 0.95).
// The sample must be sorted ascending and non-empty.
func QuantileCI(sorted []float64, q, confidence float64) (lo, hi float64, err error) {
	n := len(sorted)
	if n == 0 {
		return 0, 0, fmt.Errorf("stats: quantile CI of empty sample")
	}
	if q <= 0 || q >= 1 {
		return 0, 0, fmt.Errorf("stats: quantile q=%g outside (0,1)", q)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %g outside (0,1)", confidence)
	}
	z := Quantile(0.5 + confidence/2)
	center := float64(n) * q
	delta := z * math.Sqrt(float64(n)*q*(1-q))
	loIdx := int(math.Floor(center-delta)) - 1
	hiIdx := int(math.Ceil(center + delta))
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	return sorted[loIdx], sorted[hiIdx], nil
}

// QuantileEstimate reduces a sorted sample to the interpolated q-quantile
// plus the half-width of its distribution-free CI — the stopping signal
// of the adaptive Monte-Carlo loop. The sample must be sorted ascending.
func QuantileEstimate(sorted []float64, q, confidence float64) (est, halfWidth float64, err error) {
	if len(sorted) == 0 {
		return 0, 0, fmt.Errorf("stats: quantile estimate of empty sample")
	}
	lo, hi, err := QuantileCI(sorted, q, confidence)
	if err != nil {
		return 0, 0, err
	}
	return percentileSorted(sorted, q), (hi - lo) / 2, nil
}
