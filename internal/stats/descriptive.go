package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanVar returns the sample mean and the unbiased (n-1) sample variance
// of xs in one pass (Welford's algorithm). The variance is 0 when
// len(xs) < 2.
func MeanVar(xs []float64) (mean, variance float64) {
	var m, m2 float64
	for i, x := range xs {
		d := x - m
		m += d / float64(i+1)
		m2 += d * (x - m)
	}
	if len(xs) > 1 {
		variance = m2 / float64(len(xs)-1)
	}
	return m, variance
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	_, v := MeanVar(xs)
	return math.Sqrt(v)
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty sample")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: percentile p=%g outside [0,1]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// percentileSorted returns the p-quantile of an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Covariance returns the unbiased sample covariance of xs and ys, which
// must have equal length >= 2.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: covariance length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: covariance needs at least 2 samples, got %d", len(xs))
	}
	mx := Mean(xs)
	my := Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1), nil
}

// Correlation returns the sample Pearson correlation of xs and ys.
func Correlation(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx := StdDev(xs)
	sy := StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, fmt.Errorf("stats: correlation undefined for constant sample")
	}
	return cov / (sx * sy), nil
}

// KSNormal returns the one-sample Kolmogorov–Smirnov distance between the
// empirical distribution of xs and N(mu, sigma). Smaller is a better fit;
// the statistic lies in [0, 1].
func KSNormal(xs []float64, mu, sigma float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: KS distance of empty sample")
	}
	if sigma <= 0 {
		return 0, fmt.Errorf("stats: KS distance needs positive sigma, got %g", sigma)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		cdf := NormalCDF(x, mu, sigma)
		lo := float64(i) / n
		hi := float64(i+1) / n
		d = math.Max(d, math.Max(cdf-lo, hi-cdf))
	}
	return d, nil
}
