package stats

import "math"

// SigmaDiff returns the standard deviation of the difference T1 - T2 of
// two jointly normal variables with standard deviations s1, s2 and
// correlation coefficient rho (eq. 9 of the paper):
//
//	sigma_{T1,T2} = sqrt(s1^2 - 2*rho*s1*s2 + s2^2)
//
// The result is zero when the variables are perfectly correlated with
// equal spread (or both deterministic), in which case the difference is a
// constant.
func SigmaDiff(s1, s2, rho float64) float64 {
	v := s1*s1 - 2*rho*s1*s2 + s2*s2
	if v <= 0 {
		// Guard against tiny negative values from cancellation.
		return 0
	}
	return math.Sqrt(v)
}

// ProbGreater returns P(T1 > T2) for jointly normal T1 ~ N(mu1, s1),
// T2 ~ N(mu2, s2) with correlation rho, via the closed form of eq. 8:
//
//	P(T1 > T2) = Phi((mu1 - mu2) / sigma_{T1,T2})
//
// When the difference is deterministic (sigma_{T1,T2} == 0) the result is
// 1, 0 or 0.5 depending on the sign of mu1 - mu2, with ties at 0.5 so that
// ProbGreater(a,b) + ProbGreater(b,a) == 1 always holds.
func ProbGreater(mu1, s1, mu2, s2, rho float64) float64 {
	sd := SigmaDiff(s1, s2, rho)
	d := mu1 - mu2
	if sd == 0 {
		switch {
		case d > 0:
			return 1
		case d < 0:
			return 0
		default:
			return 0.5
		}
	}
	return Phi(d / sd)
}

// MinMoments holds the first two moments of min(T1, T2) for jointly normal
// T1, T2, together with the tightness probability used to keep the result
// in first-order canonical form (eq. 38–40).
type MinMoments struct {
	// Mean is E[min(T1, T2)].
	Mean float64
	// Var is Var[min(T1, T2)] from Clark's second-moment formula.
	Var float64
	// Tightness is t_{1,2} = P(T1 < T2): the probability that T1 is the
	// smaller (dominant for a MIN) input.
	Tightness float64
	// SigmaDiff is the standard deviation of T1 - T2 (eq. 9/40).
	SigmaDiff float64
}

// MinNormals computes Clark's moments for min(T1, T2) where T1 ~ N(mu1, s1)
// and T2 ~ N(mu2, s2) with correlation rho. Using min(X,Y) = -max(-X,-Y)
// on Clark's classical max-moment formulas:
//
//	a     = (mu1 - mu2)/sd          sd = SigmaDiff(s1, s2, rho)
//	E     = mu1*Phi(-a) + mu2*Phi(a) - sd*phi(a)
//	E2    = (mu1^2+s1^2)*Phi(-a) + (mu2^2+s2^2)*Phi(a) - (mu1+mu2)*sd*phi(a)
//	Var   = E2 - E^2
//
// When sd == 0 the two variables differ by a constant and the exact
// min is whichever has the smaller mean.
func MinNormals(mu1, s1, mu2, s2, rho float64) MinMoments {
	sd := SigmaDiff(s1, s2, rho)
	if sd == 0 {
		m := MinMoments{SigmaDiff: 0}
		if mu1 <= mu2 {
			m.Mean = mu1
			m.Var = s1 * s1
			if mu1 == mu2 {
				m.Tightness = 0.5
			} else {
				m.Tightness = 1
			}
		} else {
			m.Mean = mu2
			m.Var = s2 * s2
			m.Tightness = 0
		}
		return m
	}
	a := (mu1 - mu2) / sd
	t := Phi(-a) // P(T1 < T2)
	pdf := PhiPDF(a)
	mean := mu1*t + mu2*(1-t) - sd*pdf
	e2 := (mu1*mu1+s1*s1)*t + (mu2*mu2+s2*s2)*(1-t) - (mu1+mu2)*sd*pdf
	v := e2 - mean*mean
	if v < 0 {
		v = 0
	}
	return MinMoments{Mean: mean, Var: v, Tightness: t, SigmaDiff: sd}
}

// MaxNormals computes Clark's moments for max(T1, T2); the Tightness field
// is P(T1 > T2), the probability that T1 dominates the MAX.
func MaxNormals(mu1, s1, mu2, s2, rho float64) MinMoments {
	m := MinNormals(-mu1, s1, -mu2, s2, rho)
	return MinMoments{
		Mean:      -m.Mean,
		Var:       m.Var,
		Tightness: m.Tightness,
		SigmaDiff: m.SigmaDiff,
	}
}
