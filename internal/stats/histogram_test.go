package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(10, 0, 5); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := HistogramOf(nil, 5); err == nil {
		t.Error("empty sample should error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0)    // bin 0
	h.Add(0.5)  // bin 0
	h.Add(9.99) // bin 9
	h.Add(-1)   // under
	h.Add(10)   // over (half-open range)
	h.Add(42)   // over
	if h.Counts[0] != 2 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.BinWidth() != 1 {
		t.Errorf("bin width = %g", h.BinWidth())
	}
	if h.BinCenter(3) != 3.5 {
		t.Errorf("bin center = %g", h.BinCenter(3))
	}
}

func TestHistogramOfCoversAllSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	h, err := HistogramOf(xs, 40)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 0 || h.Over != 0 {
		t.Errorf("HistogramOf dropped samples: under=%d over=%d", h.Under, h.Over)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(xs) {
		t.Errorf("binned %d of %d samples", sum, len(xs))
	}
}

func TestHistogramOfConstantSample(t *testing.T) {
	h, err := HistogramOf([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 0 || h.Over != 0 {
		t.Error("constant sample fell outside the padded range")
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 100 + 7*rng.NormFloat64()
	}
	h, err := HistogramOf(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	integral := 0.0
	for _, d := range h.PDF() {
		integral += d * h.BinWidth()
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("PDF integral = %g, want 1", integral)
	}
}

func TestPDFEmpty(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range h.PDF() {
		if d != 0 {
			t.Errorf("empty histogram PDF = %v", h.PDF())
		}
	}
}

func TestMaxDensityErrorMatchesNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = 50 + 5*rng.NormFloat64()
	}
	h, err := HistogramOf(xs, 60)
	if err != nil {
		t.Fatal(err)
	}
	peak := NormalPDF(50, 50, 5)
	if e := h.MaxDensityError(50, 5); e > 0.1*peak {
		t.Errorf("density error vs true parameters = %g (peak %g)", e, peak)
	}
	if e := h.MaxDensityError(0, 5); e < 0.5*peak {
		t.Errorf("density error vs wrong mean = %g, expected large", e)
	}
}
