package yield

import (
	"math"
	"math/rand"
	"testing"

	"vabuf/internal/geom"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

func TestCriticalitySumsToOne(t *testing.T) {
	tr, model, lib := testSetup(t, 30, 14)
	assign := someAssignment(tr)
	crit, err := Criticality(tr, lib, assign, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(crit) != tr.NumSinks() {
		t.Fatalf("criticality covers %d sinks, want %d", len(crit), tr.NumSinks())
	}
	sum := 0.0
	for id, p := range crit {
		if p < 0 || p > 1 {
			t.Errorf("sink %d criticality %g outside [0,1]", id, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("criticalities sum to %g", sum)
	}
}

func TestCriticalityDeterministicPicksWorstSink(t *testing.T) {
	// Symmetric fork with one much-worse sink: all mass lands there.
	tr := rctree.New(rctree.DefaultWire, 0.3, geom.Point{})
	good := tr.AddSink(tr.Root, geom.Point{X: 100, Y: 50}, 100, 10, 0)
	bad := tr.AddSink(tr.Root, geom.Point{X: 100, Y: -50}, 100, 10, -500)
	crit, err := Criticality(tr, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if crit[bad] != 1 || crit[good] != 0 {
		t.Errorf("criticality = %v, want all mass on sink %d", crit, bad)
	}
}

func TestCriticalityDeterministicTieSplits(t *testing.T) {
	// Perfectly symmetric deterministic fork: exact tie splits 0.5/0.5.
	tr := rctree.New(rctree.DefaultWire, 0.3, geom.Point{})
	a := tr.AddSink(tr.Root, geom.Point{X: 100, Y: 50}, 100, 10, 0)
	b := tr.AddSink(tr.Root, geom.Point{X: 100, Y: -50}, 100, 10, 0)
	crit, err := Criticality(tr, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(crit[a]-0.5) > 1e-12 || math.Abs(crit[b]-0.5) > 1e-12 {
		t.Errorf("tie did not split evenly: %v", crit)
	}
}

func TestCriticalityMatchesMonteCarlo(t *testing.T) {
	// Count, per MC sample, which sink realizes the minimum slack at the
	// root, and compare frequencies against the analytic criticality.
	tr, model, lib := testSetup(t, 12, 19)
	assign := someAssignment(tr)
	crit, err := Criticality(tr, lib, assign, model)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	counts := make(map[rctree.NodeID]int)
	const n = 20000
	var buf []float64
	// Pre-resolve buffer deviations.
	type inst struct {
		b   int
		dev variation.Form
	}
	devs := make(map[rctree.NodeID]inst, len(assign))
	for id, bi := range assign {
		devs[id] = inst{b: bi, dev: model.Deviation(int(id), tr.Node(id).Loc)}
	}
	order := tr.PostOrder()
	type st struct {
		L, T float64
		crit rctree.NodeID
	}
	vals := make([]st, tr.Len())
	for s := 0; s < n; s++ {
		buf = model.Space.Sample(rng, buf)
		for _, id := range order {
			node := tr.Node(id)
			var cur st
			switch node.Kind {
			case rctree.KindSink:
				cur = st{L: node.CapLoad, T: node.RAT, crit: id}
			default:
				first := true
				for _, cid := range node.Children {
					cn := tr.Node(cid)
					child := vals[cid]
					if l := cn.WireLen; l > 0 {
						child.T -= tr.Wire.R*l*child.L + 0.5*tr.Wire.R*tr.Wire.C*l*l
						child.L += tr.Wire.C * l
					}
					if first {
						cur = child
						first = false
					} else {
						cur.L += child.L
						if child.T < cur.T {
							cur.T = child.T
							cur.crit = child.crit
						}
					}
				}
			}
			if in, ok := devs[id]; ok {
				b := lib[in.b]
				d := in.dev.Eval(buf)
				cur = st{
					L:    b.Cb0 * (1 + d),
					T:    cur.T - b.Tb0*(1+d) - b.Rb*cur.L,
					crit: cur.crit,
				}
			}
			vals[id] = cur
		}
		counts[vals[tr.Root].crit]++
	}
	for id, p := range crit {
		freq := float64(counts[id]) / n
		if math.Abs(freq-p) > 0.04 {
			t.Errorf("sink %d: MC criticality %.3f vs analytic %.3f", id, freq, p)
		}
	}
}

func TestCriticalityValidation(t *testing.T) {
	tr, model, lib := testSetup(t, 5, 1)
	if _, err := Criticality(tr, lib, map[rctree.NodeID]int{99: 0}, model); err == nil {
		t.Error("bad node accepted")
	}
	if _, err := Criticality(tr, lib, map[rctree.NodeID]int{1: 99}, model); err == nil {
		t.Error("bad buffer index accepted")
	}
	bad := tr.Clone()
	bad.Wire.C = 0
	if _, err := Criticality(bad, lib, nil, model); err == nil {
		t.Error("invalid tree accepted")
	}
}
