package yield

import (
	"testing"
)

// TestAdaptiveFullBudgetMatchesParallel: with Tol <= 0 the adaptive run
// burns the whole budget, and its sample vector is bit-identical to
// MonteCarloParallel for the same (n, seed) — the prefix property at
// full length.
func TestAdaptiveFullBudgetMatchesParallel(t *testing.T) {
	tr, model, lib := testSetup(t, 20, 15)
	assign := someAssignment(tr)
	ref, err := MonteCarloParallel(tr, lib, assign, nil, model, 800, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, est, err := MonteCarloAdaptive(tr, lib, assign, nil, model, AdaptiveOptions{
		MaxSamples: 800,
		Seed:       7,
		Workers:    4,
		Quantile:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Converged {
		t.Error("Tol=0 run reports convergence")
	}
	if est.Samples != 800 || len(got) != 800 {
		t.Fatalf("full-budget run used %d samples, want 800", est.Samples)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, got[i], ref[i])
		}
	}
}

// TestAdaptiveStopsEarly: a loose tolerance converges well under the
// cap, and the committed samples are a shard-aligned prefix of the
// fixed-budget stream.
func TestAdaptiveStopsEarly(t *testing.T) {
	tr, model, lib := testSetup(t, 20, 15)
	assign := someAssignment(tr)
	const cap = 16000
	got, est, err := MonteCarloAdaptive(tr, lib, assign, nil, model, AdaptiveOptions{
		MaxSamples: cap,
		Seed:       7,
		Quantile:   0.05,
		Tol:        0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Converged {
		t.Fatalf("loose tolerance did not converge within %d samples", cap)
	}
	if est.Samples >= cap {
		t.Errorf("converged run used the full budget (%d samples)", est.Samples)
	}
	if est.Samples%(cap/mcShards) != 0 {
		t.Errorf("stop at %d samples is not shard-aligned", est.Samples)
	}
	ref, err := MonteCarloParallel(tr, lib, assign, nil, model, cap, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("sample %d differs from fixed-budget stream", i)
		}
	}
	if est.HalfWidth <= 0 || est.Sigma <= 0 {
		t.Errorf("degenerate estimate: %+v", est)
	}
}

// TestAdaptiveWorkerInvariance: the stopping point and the returned
// samples depend only on (MaxSamples, Seed), never on the worker count.
func TestAdaptiveWorkerInvariance(t *testing.T) {
	tr, model, lib := testSetup(t, 10, 4)
	assign := someAssignment(tr)
	opts := AdaptiveOptions{MaxSamples: 8000, Seed: 3, Quantile: 0.05, Tol: 0.06}
	opts.Workers = 1
	ref, refEst, err := MonteCarloAdaptive(tr, lib, assign, nil, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		opts.Workers = workers
		got, est, err := MonteCarloAdaptive(tr, lib, assign, nil, model, opts)
		if err != nil {
			t.Fatal(err)
		}
		if est != refEst {
			t.Fatalf("workers=%d: estimate %+v, want %+v", workers, est, refEst)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d samples, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: sample %d differs", workers, i)
			}
		}
	}
}

// TestAdaptiveOnEstimateAbort: the observer sees every committed shard
// and can stop the run.
func TestAdaptiveOnEstimateAbort(t *testing.T) {
	tr, model, lib := testSetup(t, 10, 4)
	assign := someAssignment(tr)
	var seen []int
	got, est, err := MonteCarloAdaptive(tr, lib, assign, nil, model, AdaptiveOptions{
		MaxSamples: 1600,
		Seed:       1,
		Quantile:   0.05,
		OnEstimate: func(e Estimate) bool {
			seen = append(seen, e.Samples)
			return len(seen) < 3
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("observer fired %d times, want 3", len(seen))
	}
	if est.Converged {
		t.Error("aborted run reports convergence")
	}
	if len(got) != est.Samples || est.Samples != 300 {
		t.Errorf("aborted after %d samples (len %d), want 300", est.Samples, len(got))
	}
}

func TestAdaptiveValidation(t *testing.T) {
	tr, model, lib := testSetup(t, 5, 1)
	assign := someAssignment(tr)
	cases := []AdaptiveOptions{
		{MaxSamples: 0, Quantile: 0.05},
		{MaxSamples: 100, Quantile: 0},
		{MaxSamples: 100, Quantile: 1},
		{MaxSamples: 100, Quantile: 0.05, Confidence: 1},
	}
	for i, opts := range cases {
		if _, _, err := MonteCarloAdaptive(tr, lib, assign, nil, model, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, _, err := MonteCarloAdaptive(tr, lib, assign, nil, nil, AdaptiveOptions{MaxSamples: 100, Quantile: 0.05}); err == nil {
		t.Error("nil model accepted")
	}
}
