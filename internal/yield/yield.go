// Package yield evaluates a *fixed* buffered routing tree under a process
// variation model: canonical (first-order) propagation of the root RAT
// distribution, per-sample Monte-Carlo evaluation with deterministic
// Elmore, and the timing-yield metrics of §5.3 (the q%-yield RAT and the
// yield at a target RAT). It is the measurement side of Tables 3–5 and
// Figure 6, deliberately independent from the optimizer in internal/core.
package yield

import (
	"cmp"
	"fmt"
	"math/rand"
	"runtime"
	"slices"

	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// Propagate pushes canonical (L, T) forms bottom-up through a buffered
// tree using exactly the three key operations of §4.2 and returns the root
// RAT form including the driver delay. A nil model yields the
// deterministic evaluation as a constant form.
func Propagate(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	model *variation.Model) (variation.Form, error) {
	return PropagateSized(tree, lib, assign, nil, model)
}

// PropagateSized is Propagate with per-edge wire overrides, evaluating a
// simultaneously buffered and wire-sized design (the [8] extension).
func PropagateSized(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	wires rctree.WireAssignment, model *variation.Model) (variation.Form, error) {
	if err := tree.Validate(); err != nil {
		return variation.Form{}, err
	}
	space := variation.NewSpace()
	if model != nil {
		space = model.Space
	}
	for id, bi := range assign {
		if id < 0 || int(id) >= tree.Len() {
			return variation.Form{}, fmt.Errorf("yield: assignment node %d out of range", id)
		}
		if !tree.Node(id).BufferOK {
			return variation.Form{}, fmt.Errorf("yield: node %d is not a buffer position", id)
		}
		if bi < 0 || bi >= len(lib) {
			return variation.Form{}, fmt.Errorf("yield: buffer index %d out of library range", bi)
		}
	}
	for id, wp := range wires {
		if id < 0 || int(id) >= tree.Len() || id == tree.Root {
			return variation.Form{}, fmt.Errorf("yield: wire assignment node %d invalid", id)
		}
		if wp.R <= 0 || wp.C <= 0 {
			return variation.Form{}, fmt.Errorf("yield: non-positive wire override at node %d", id)
		}
	}
	type lt struct{ L, T variation.Form }
	vals := make([]lt, tree.Len())
	for _, id := range tree.PostOrder() {
		n := tree.Node(id)
		var cur lt
		switch n.Kind {
		case rctree.KindSink:
			cur = lt{L: variation.Const(n.CapLoad), T: variation.Const(n.RAT)}
		default:
			first := true
			for _, cid := range n.Children {
				cn := tree.Node(cid)
				child := vals[cid]
				wp := tree.Wire
				if ov, ok := wires[cid]; ok {
					wp = ov
				}
				r, c := wp.R, wp.C
				if l := cn.WireLen; l > 0 {
					child.T = child.T.AXPY(-r*l, child.L).Shift(-0.5 * r * c * l * l)
					child.L = child.L.Shift(c * l)
				}
				if first {
					cur = child
					first = false
				} else {
					cur.L = cur.L.Add(child.L)
					cur.T = variation.Min(cur.T, child.T, space).Form
				}
			}
		}
		if bi, ok := assign[id]; ok {
			b := lib[bi]
			dev := variation.Form{}
			if model != nil {
				dev = model.Deviation(int(id), n.Loc)
			}
			cbForm := variation.Const(b.Cb0).Add(dev.Scale(b.Cb0))
			tbForm := variation.Const(b.Tb0).Add(dev.Scale(b.Tb0))
			cur = lt{
				L: cbForm,
				T: cur.T.Sub(tbForm).AXPY(-b.Rb, cur.L),
			}
		}
		vals[id] = cur
	}
	root := vals[tree.Root]
	return root.T.AXPY(-tree.DriverR, root.L), nil
}

// MonteCarlo draws n realizations of the model's sources and evaluates the
// buffered tree's root RAT with deterministic Elmore per sample — the
// ground-truth distribution the canonical model approximates (Figure 6).
// The model must be non-nil.
func MonteCarlo(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	model *variation.Model, n int, seed int64) ([]float64, error) {
	return MonteCarloSized(tree, lib, assign, nil, model, n, seed)
}

// MonteCarloSized is MonteCarlo with per-edge wire overrides.
func MonteCarloSized(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	wires rctree.WireAssignment, model *variation.Model, n int, seed int64) ([]float64, error) {
	if model == nil {
		return nil, fmt.Errorf("yield: MonteCarlo requires a variation model")
	}
	if n <= 0 {
		return nil, fmt.Errorf("yield: sample count %d must be positive", n)
	}
	// Pre-resolve per-buffer deviation forms once; evaluating a form per
	// sample is cheap.
	type inst struct {
		id  rctree.NodeID
		b   device.BufferType
		dev variation.Form
	}
	insts := make([]inst, 0, len(assign))
	for id, bi := range assign {
		if bi < 0 || bi >= len(lib) {
			return nil, fmt.Errorf("yield: buffer index %d out of library range", bi)
		}
		if id < 0 || int(id) >= tree.Len() {
			return nil, fmt.Errorf("yield: assignment node %d out of range", id)
		}
		insts = append(insts, inst{
			id:  id,
			b:   lib[bi],
			dev: model.Deviation(int(id), tree.Node(id).Loc),
		})
	}
	// Deterministic iteration order for reproducibility.
	slices.SortFunc(insts, func(a, b inst) int { return cmp.Compare(a.id, b.id) })
	run := func(count int, shardSeed int64, dst []float64) error {
		rng := rand.New(rand.NewSource(shardSeed))
		var buf []float64
		bv := make(rctree.Assignment, len(insts))
		for s := 0; s < count; s++ {
			buf = model.Space.Sample(rng, buf)
			for _, in := range insts {
				d := in.dev.Eval(buf)
				bv[in.id] = rctree.BufferValues{
					C: in.b.Cb0 * (1 + d),
					T: in.b.Tb0 * (1 + d),
					R: in.b.Rb,
				}
			}
			ev, err := rctree.EvaluateSized(tree, bv, wires)
			if err != nil {
				return err
			}
			dst[s] = ev.RootRAT
		}
		return nil
	}
	out := make([]float64, n)
	if err := run(n, seed, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MonteCarloParallel is MonteCarloSized fanned out over worker
// goroutines. Sampling is sharded deterministically — shard i draws its
// samples from seed+i — so the result is identical for any worker count,
// including 1, but is NOT the same stream as MonteCarloSized(seed).
func MonteCarloParallel(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	wires rctree.WireAssignment, model *variation.Model, n int, seed int64, workers int) ([]float64, error) {
	if model == nil {
		return nil, fmt.Errorf("yield: MonteCarlo requires a variation model")
	}
	if n <= 0 {
		return nil, fmt.Errorf("yield: sample count %d must be positive", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Fixed shard layout independent of the worker count.
	plan := mcPlan(n, seed)
	// Force the lazy per-site source allocation to happen once, serially,
	// before any concurrency touches the model.
	for id := range assign {
		model.Deviation(int(id), tree.Node(id).Loc)
	}
	out := make([]float64, n)
	errc := make(chan error, len(plan))
	sem := make(chan struct{}, workers)
	for _, sh := range plan {
		sh := sh
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			part, err := MonteCarloSized(tree, lib, assign, wires, model, sh.count, sh.seed)
			if err == nil {
				copy(out[sh.from:sh.from+sh.count], part)
			}
			errc <- err
		}()
	}
	for range plan {
		if err := <-errc; err != nil {
			return nil, err
		}
	}
	return out, nil
}

// YieldAtTarget returns the fraction of samples meeting the target RAT
// (sample RAT >= target: the arrival-time budget is satisfied).
func YieldAtTarget(samples []float64, target float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range samples {
		if s >= target {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// NormalYieldAtTarget returns P(RAT >= target) for the canonical form.
func NormalYieldAtTarget(rat variation.Form, space *variation.Space, target float64) float64 {
	sigma := rat.Sigma(space)
	if sigma == 0 {
		if rat.Nominal >= target {
			return 1
		}
		return 0
	}
	return 1 - stats.Phi((target-rat.Nominal)/sigma)
}

// Report summarizes one buffered design under a model: the figures of
// merit of Tables 3–5.
type Report struct {
	// Mean and Sigma describe the canonical root RAT.
	Mean, Sigma float64
	// YieldRAT is the q%-tile RAT (paper: q = 0.05, the "95% timing
	// yield" RAT — the design meets this RAT with 95% probability).
	YieldRAT float64
	// NumBuffers is the number of inserted buffers.
	NumBuffers int
}

// Evaluate produces a Report for a buffered tree under the model using
// canonical propagation. q is the yield quantile (0.05 for 95% yield).
func Evaluate(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	model *variation.Model, q float64) (Report, error) {
	if q <= 0 || q >= 1 {
		return Report{}, fmt.Errorf("yield: quantile %g outside (0, 1)", q)
	}
	rat, err := Propagate(tree, lib, assign, model)
	if err != nil {
		return Report{}, err
	}
	space := variation.NewSpace()
	if model != nil {
		space = model.Space
	}
	return Report{
		Mean:       rat.Nominal,
		Sigma:      rat.Sigma(space),
		YieldRAT:   rat.Quantile(q, space),
		NumBuffers: len(assign),
	}, nil
}
