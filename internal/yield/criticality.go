package yield

import (
	"fmt"

	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// Criticality computes, for a fixed buffered tree under a variation
// model, the probability that each sink is the *statistically critical*
// one — the sink whose path realizes the minimum slack at the root. The
// probabilities are assembled from the tightness probabilities of the
// statistical MIN at every merge (eq. 39) and sum to 1 over the sinks.
//
// A nil model gives the deterministic criticality: mass 1 on the sink
// with the worst propagated RAT (ties split by the 0.5 tightness of
// deterministic ties).
func Criticality(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	model *variation.Model) (map[rctree.NodeID]float64, error) {
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	space := variation.NewSpace()
	if model != nil {
		space = model.Space
	}
	for id, bi := range assign {
		if id < 0 || int(id) >= tree.Len() || !tree.Node(id).BufferOK {
			return nil, fmt.Errorf("yield: bad assignment node %d", id)
		}
		if bi < 0 || bi >= len(lib) {
			return nil, fmt.Errorf("yield: buffer index %d out of range", bi)
		}
	}
	type lt struct{ L, T variation.Form }
	vals := make([]lt, tree.Len())
	// childShare[id] is the probability mass fraction flowing from id's
	// parent merge into id's subtree (1 for single children).
	childShare := make([]float64, tree.Len())
	for i := range childShare {
		childShare[i] = 1
	}
	r := tree.Wire.R
	c := tree.Wire.C
	for _, id := range tree.PostOrder() {
		n := tree.Node(id)
		var cur lt
		switch n.Kind {
		case rctree.KindSink:
			cur = lt{L: variation.Const(n.CapLoad), T: variation.Const(n.RAT)}
		default:
			first := true
			// accShare tracks how the already-merged prefix of children
			// shares mass, so a k-way merge distributes correctly.
			var prefix []rctree.NodeID
			for _, cid := range n.Children {
				cn := tree.Node(cid)
				child := vals[cid]
				if l := cn.WireLen; l > 0 {
					child.T = child.T.AXPY(-r*l, child.L).Shift(-0.5 * r * c * l * l)
					child.L = child.L.Shift(c * l)
				}
				if first {
					cur = child
					first = false
					prefix = append(prefix, cid)
					continue
				}
				res := variation.Min(cur.T, child.T, space)
				t := res.Moments.Tightness // P(prefix is the min)
				for _, p := range prefix {
					childShare[p] *= t
				}
				childShare[cid] *= 1 - t
				prefix = append(prefix, cid)
				cur.L = cur.L.Add(child.L)
				cur.T = res.Form
			}
		}
		if bi, ok := assign[id]; ok {
			b := lib[bi]
			dev := variation.Form{}
			if model != nil {
				dev = model.Deviation(int(id), n.Loc)
			}
			cbForm := variation.Const(b.Cb0).Add(dev.Scale(b.Cb0))
			tbForm := variation.Const(b.Tb0).Add(dev.Scale(b.Tb0))
			cur = lt{
				L: cbForm,
				T: cur.T.Sub(tbForm).AXPY(-b.Rb, cur.L),
			}
		}
		vals[id] = cur
	}
	// Top-down: multiply shares along root-to-sink paths.
	out := make(map[rctree.NodeID]float64, tree.NumSinks())
	var walk func(id rctree.NodeID, mass float64)
	walk = func(id rctree.NodeID, mass float64) {
		n := tree.Node(id)
		if n.Kind == rctree.KindSink {
			out[id] = mass
			return
		}
		for _, cid := range n.Children {
			walk(cid, mass*childShare[cid])
		}
	}
	walk(tree.Root, 1)
	return out, nil
}
