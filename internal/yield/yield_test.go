package yield

import (
	"math"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

func testSetup(t *testing.T, sinks int, seed int64) (*rctree.Tree, *variation.Model, device.Library) {
	t.Helper()
	tr, err := benchgen.Random(benchgen.Spec{Sinks: sinks, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	return tr, model, device.DefaultLibrary()
}

// someAssignment puts the mid-size buffer on every third buffer position.
func someAssignment(tr *rctree.Tree) map[rctree.NodeID]int {
	out := make(map[rctree.NodeID]int)
	k := 0
	for i := range tr.Nodes {
		if tr.Nodes[i].BufferOK {
			if k%3 == 0 {
				out[tr.Nodes[i].ID] = 1
			}
			k++
		}
	}
	return out
}

func TestPropagateDeterministicMatchesElmore(t *testing.T) {
	tr, _, lib := testSetup(t, 35, 3)
	assign := someAssignment(tr)
	rat, err := Propagate(tr, lib, assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rat.IsDeterministic() {
		t.Error("nil-model propagation has variation terms")
	}
	bv := make(rctree.Assignment, len(assign))
	for id, bi := range assign {
		b := lib[bi]
		bv[id] = rctree.BufferValues{C: b.Cb0, T: b.Tb0, R: b.Rb}
	}
	ev, err := rctree.Evaluate(tr, bv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rat.Nominal-ev.RootRAT) > 1e-9 {
		t.Errorf("Propagate %g != Elmore %g", rat.Nominal, ev.RootRAT)
	}
}

func TestPropagateValidatesInput(t *testing.T) {
	tr, model, lib := testSetup(t, 5, 1)
	if _, err := Propagate(tr, lib, map[rctree.NodeID]int{99: 0}, model); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Propagate(tr, lib, map[rctree.NodeID]int{tr.Root: 0}, model); err == nil {
		t.Error("buffer at driver accepted")
	}
	if _, err := Propagate(tr, lib, map[rctree.NodeID]int{1: 99}, model); err == nil {
		t.Error("out-of-range buffer index accepted")
	}
	bad := tr.Clone()
	bad.Wire.C = 0
	if _, err := Propagate(bad, lib, nil, model); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestMonteCarloMatchesCanonical(t *testing.T) {
	// Figure 6's claim: the canonical model predicts the MC RAT
	// distribution accurately.
	tr, model, lib := testSetup(t, 40, 8)
	assign := someAssignment(tr)
	rat, err := Propagate(tr, lib, assign, model)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MonteCarlo(tr, lib, assign, model, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	mean, v := stats.MeanVar(samples)
	sigma := math.Sqrt(v)
	if math.Abs(mean-rat.Nominal) > 4*sigma/math.Sqrt(float64(len(samples)))+1e-3*math.Abs(rat.Nominal) {
		t.Errorf("MC mean %.4f vs canonical %.4f", mean, rat.Nominal)
	}
	cs := rat.Sigma(model.Space)
	if cs > 0 && math.Abs(sigma-cs)/cs > 0.1 {
		t.Errorf("MC sigma %.4f vs canonical %.4f", sigma, cs)
	}
	// Distribution shape: KS distance against the canonical normal.
	ks, err := stats.KSNormal(samples, rat.Nominal, cs)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.05 {
		t.Errorf("KS distance MC vs canonical normal = %.4f", ks)
	}
}

func TestMonteCarloDeterministicSeed(t *testing.T) {
	tr, model, lib := testSetup(t, 10, 4)
	assign := someAssignment(tr)
	a, err := MonteCarlo(tr, lib, assign, model, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(tr, lib, assign, model, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MonteCarlo not reproducible for fixed seed")
		}
	}
}

func TestMonteCarloParallelDeterministic(t *testing.T) {
	tr, model, lib := testSetup(t, 20, 15)
	assign := someAssignment(tr)
	// Identical output for different worker counts, including 1.
	one, err := MonteCarloParallel(tr, lib, assign, nil, model, 1000, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := MonteCarloParallel(tr, lib, assign, nil, model, 1000, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1000 || len(many) != 1000 {
		t.Fatalf("lengths %d, %d", len(one), len(many))
	}
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, one[i], many[i])
		}
	}
	// Statistically consistent with the serial sampler.
	serial, err := MonteCarlo(tr, lib, assign, model, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := stats.MeanVar(many)
	m2, _ := stats.MeanVar(serial)
	if math.Abs(m1-m2) > 0.01*math.Abs(m2) {
		t.Errorf("parallel mean %.3f vs serial %.3f", m1, m2)
	}
}

func TestMonteCarloParallelValidation(t *testing.T) {
	tr, model, lib := testSetup(t, 5, 1)
	if _, err := MonteCarloParallel(tr, lib, nil, nil, nil, 10, 1, 2); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := MonteCarloParallel(tr, lib, nil, nil, model, 0, 1, 2); err == nil {
		t.Error("zero samples accepted")
	}
	// Fewer samples than shards still works.
	out, err := MonteCarloParallel(tr, lib, someAssignment(tr), nil, model, 3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("len = %d", len(out))
	}
}

func TestMonteCarloValidation(t *testing.T) {
	tr, model, lib := testSetup(t, 5, 1)
	if _, err := MonteCarlo(tr, lib, nil, nil, 10, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := MonteCarlo(tr, lib, nil, model, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := MonteCarlo(tr, lib, map[rctree.NodeID]int{1: 99}, model, 10, 1); err == nil {
		t.Error("bad buffer index accepted")
	}
	if _, err := MonteCarlo(tr, lib, map[rctree.NodeID]int{1234: 0}, model, 10, 1); err == nil {
		t.Error("bad node accepted")
	}
}

func TestYieldAtTarget(t *testing.T) {
	samples := []float64{-10, -5, 0, 5, 10}
	if got := YieldAtTarget(samples, 0); got != 0.6 {
		t.Errorf("yield = %g, want 0.6", got)
	}
	if got := YieldAtTarget(samples, -100); got != 1 {
		t.Errorf("yield = %g, want 1", got)
	}
	if got := YieldAtTarget(samples, 100); got != 0 {
		t.Errorf("yield = %g, want 0", got)
	}
	if got := YieldAtTarget(nil, 0); got != 0 {
		t.Errorf("empty yield = %g", got)
	}
}

func TestNormalYieldAtTarget(t *testing.T) {
	space := variation.NewSpace()
	id := space.Add(variation.ClassRandom, 1, "x")
	rat := variation.NewForm(-100, []variation.Term{{ID: id, Coef: 10}})
	// Target at the mean: 50%.
	if got := NormalYieldAtTarget(rat, space, -100); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("yield at mean = %g", got)
	}
	// One sigma below the mean: ~84%.
	if got := NormalYieldAtTarget(rat, space, -110); math.Abs(got-0.8413447460685429) > 1e-9 {
		t.Errorf("yield at mean-sigma = %g", got)
	}
	// Deterministic form: step.
	det := variation.Const(-100)
	if NormalYieldAtTarget(det, space, -99) != 0 || NormalYieldAtTarget(det, space, -101) != 1 {
		t.Error("deterministic yield not a step")
	}
}

func TestEvaluateReport(t *testing.T) {
	tr, model, lib := testSetup(t, 20, 6)
	assign := someAssignment(tr)
	rep, err := Evaluate(tr, lib, assign, model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumBuffers != len(assign) {
		t.Errorf("NumBuffers = %d, want %d", rep.NumBuffers, len(assign))
	}
	if rep.Sigma <= 0 {
		t.Error("sigma not positive under variation")
	}
	// The 5%-tile is below the mean by 1.645 sigma.
	want := rep.Mean - 1.6448536269514722*rep.Sigma
	if math.Abs(rep.YieldRAT-want) > 1e-9 {
		t.Errorf("YieldRAT = %g, want %g", rep.YieldRAT, want)
	}
	if _, err := Evaluate(tr, lib, assign, model, 0); err == nil {
		t.Error("quantile 0 accepted")
	}
	if _, err := Evaluate(tr, lib, assign, model, 1); err == nil {
		t.Error("quantile 1 accepted")
	}
}

// TestD2DAssignmentEvaluatedUnderWIDModel mirrors the Tables 3–4 flow:
// an assignment optimized under one model must be evaluable under another
// (the full WID model) without errors.
func TestD2DAssignmentEvaluatedUnderWIDModel(t *testing.T) {
	tr, widModel, lib := testSetup(t, 25, 7)
	assign := someAssignment(tr)
	rep, err := Evaluate(tr, lib, assign, widModel, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.YieldRAT >= rep.Mean {
		t.Error("5th-percentile RAT above the mean")
	}
}
