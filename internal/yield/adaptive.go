package yield

// Adaptive (early-stopping) Monte Carlo. The fixed-budget samplers burn
// their whole sample budget even when the estimate converged orders of
// magnitude earlier; the adaptive sampler runs the same deterministic
// 16-shard layout as MonteCarloParallel in shard-sized chunks, keeps a
// running confidence interval of the target quantile, and stops at the
// first shard boundary where the CI half-width reaches the requested
// tolerance (or the sample cap).
//
// Determinism: the sample stream is identical to MonteCarloParallel's —
// shard i draws from seed+i — and the stopping decision after shard k
// depends only on shards 0..k, so the result is invariant to the worker
// count. A run that never converges returns exactly the
// MonteCarloParallel(n, seed) sample vector; a run that converges early
// returns a shard-aligned prefix of it.

import (
	"fmt"
	"math"
	"runtime"
	"slices"

	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// mcShards is the fixed shard count of the deterministic Monte-Carlo
// layout, shared by the parallel and adaptive samplers so their streams
// coincide.
const mcShards = 16

// mcShard is one deterministic sampling chunk: samples [from, from+count)
// drawn from its own seed.
type mcShard struct {
	from, count int
	seed        int64
}

// mcPlan splits n samples over the fixed shard layout. Shard i is seeded
// seed+i; empty shards (n < mcShards) are dropped.
func mcPlan(n int, seed int64) []mcShard {
	per := n / mcShards
	rem := n % mcShards
	plan := make([]mcShard, 0, mcShards)
	from := 0
	for i := 0; i < mcShards; i++ {
		count := per
		if i < rem {
			count++
		}
		if count == 0 {
			continue
		}
		plan = append(plan, mcShard{from: from, count: count, seed: seed + int64(i)})
		from += count
	}
	return plan
}

// AdaptiveOptions configures an early-stopping Monte-Carlo run.
type AdaptiveOptions struct {
	// MaxSamples is the sample cap — the fixed budget the adaptive run
	// never exceeds. Required > 0.
	MaxSamples int
	// Seed seeds the deterministic shard streams (shard i uses Seed+i).
	Seed int64
	// Workers bounds concurrent shard evaluations (lookahead); <=0
	// selects GOMAXPROCS. The result never depends on it.
	Workers int
	// Quantile is the q whose empirical quantile drives the stopping
	// rule (and is reported in Estimate). Required inside (0, 1).
	Quantile float64
	// Confidence is the two-sided CI level of the stopping rule;
	// 0 selects 0.95.
	Confidence float64
	// Tol is the relative CI half-width target: the run stops once
	// halfWidth <= Tol·|quantile estimate| (absolute Tol when the
	// estimate is 0). <=0 disables early stopping — the run burns the
	// full budget, still emitting progress estimates.
	Tol float64
	// OnEstimate, when non-nil, observes the running estimate after
	// every committed shard. Returning false aborts the run (the
	// samples so far are returned with Converged=false) — the hook a
	// streaming client uses to stop on disconnect.
	OnEstimate func(Estimate) bool
}

// Estimate is the running (or final) state of an adaptive Monte-Carlo
// run after an integral number of shards.
type Estimate struct {
	// Samples is the number of samples folded in so far.
	Samples int
	// Mean and Sigma are the running sample moments.
	Mean, Sigma float64
	// Quantile is the interpolated empirical q-quantile and HalfWidth
	// the half-width of its distribution-free CI at the configured
	// confidence.
	Quantile, HalfWidth float64
	// Converged reports whether the stopping rule fired (always false
	// while Tol <= 0).
	Converged bool
}

func (o AdaptiveOptions) withDefaults() (AdaptiveOptions, error) {
	if o.MaxSamples <= 0 {
		return o, fmt.Errorf("yield: adaptive MC sample cap %d must be positive", o.MaxSamples)
	}
	if o.Quantile <= 0 || o.Quantile >= 1 {
		return o, fmt.Errorf("yield: adaptive MC quantile %g outside (0, 1)", o.Quantile)
	}
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return o, fmt.Errorf("yield: adaptive MC confidence %g outside (0, 1)", o.Confidence)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o, nil
}

// converged applies the stopping rule to one estimate.
func (o AdaptiveOptions) converged(est, halfWidth float64) bool {
	if o.Tol <= 0 {
		return false
	}
	if est != 0 {
		return halfWidth <= o.Tol*math.Abs(est)
	}
	return halfWidth <= o.Tol
}

// MonteCarloAdaptive is MonteCarloSized with the sequential stopping
// rule of AdaptiveOptions: shard-sized chunks of the deterministic
// 16-shard stream are committed in order until the quantile CI converges
// or the budget is exhausted. The returned samples are a shard-aligned
// prefix of the MonteCarloParallel(MaxSamples, Seed) stream.
func MonteCarloAdaptive(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	wires rctree.WireAssignment, model *variation.Model, opts AdaptiveOptions) ([]float64, Estimate, error) {
	if model == nil {
		return nil, Estimate{}, fmt.Errorf("yield: MonteCarlo requires a variation model")
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, Estimate{}, err
	}
	// Force the lazy per-site source allocation once, serially, before
	// any concurrency touches the model (same dance as MonteCarloParallel).
	for id := range assign {
		model.Deviation(int(id), tree.Node(id).Loc)
	}
	eval := func(sh mcShard) ([]float64, error) {
		return MonteCarloSized(tree, lib, assign, wires, model, sh.count, sh.seed)
	}
	return runAdaptive(opts, mcPlan(opts.MaxSamples, opts.Seed), eval)
}

// shardOutcome is the completion of one speculatively launched shard.
type shardOutcome struct {
	samples []float64
	err     error
}

// runAdaptive drives the sequential stopping loop over a shard plan:
// shards are evaluated with up to opts.Workers of lookahead but committed
// strictly in shard order, so the stopping point — and therefore the
// returned sample vector — depends only on (plan, seed), never on timing
// or worker count. Speculative shards past the stopping point are
// discarded (their cost is bounded by the lookahead window).
func runAdaptive(opts AdaptiveOptions, plan []mcShard,
	eval func(mcShard) ([]float64, error)) ([]float64, Estimate, error) {
	futures := make([]chan shardOutcome, len(plan))
	launched := 0
	launchThrough := func(limit int) {
		for ; launched < limit && launched < len(plan); launched++ {
			ch := make(chan shardOutcome, 1)
			futures[launched] = ch
			sh := plan[launched]
			go func() {
				samples, err := eval(sh)
				ch <- shardOutcome{samples: samples, err: err}
			}()
		}
	}
	// drain waits out any speculative shards still in flight so no
	// goroutine outlives the call (the model is only guarded by the
	// caller for the duration of the run).
	drain := func(from int) {
		for i := from; i < launched; i++ {
			<-futures[i]
		}
	}

	samples := make([]float64, 0, opts.MaxSamples)
	var run stats.Running
	var est Estimate
	for i := range plan {
		launchThrough(i + opts.Workers)
		out := <-futures[i]
		if out.err != nil {
			drain(i + 1)
			return nil, Estimate{}, out.err
		}
		samples = append(samples, out.samples...)
		run.AddAll(out.samples)

		sorted := slices.Clone(samples)
		slices.Sort(sorted)
		q, hw, err := stats.QuantileEstimate(sorted, opts.Quantile, opts.Confidence)
		if err != nil {
			drain(i + 1)
			return nil, Estimate{}, err
		}
		est = Estimate{
			Samples:   len(samples),
			Mean:      run.Mean(),
			Sigma:     run.Sigma(),
			Quantile:  q,
			HalfWidth: hw,
			Converged: opts.converged(q, hw),
		}
		keepGoing := true
		if opts.OnEstimate != nil {
			keepGoing = opts.OnEstimate(est)
		}
		if est.Converged || !keepGoing {
			drain(i + 1)
			return samples, est, nil
		}
	}
	return samples, est, nil
}
