package sta

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"vabuf/internal/variation"
)

// chainGraph builds a small random DAG with shared and private sources.
func chainGraph(t *testing.T, seed int64) (*Graph, *variation.Space) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := variation.NewSpace()
	shared := space.Add(variation.ClassInterDie, 1, "G")
	g := NewGraph()
	const layers, width = 4, 3
	prev := make([]PinID, width)
	for i := range prev {
		prev[i] = g.AddPin("")
	}
	for l := 0; l < layers; l++ {
		cur := make([]PinID, width)
		for i := range cur {
			cur[i] = g.AddPin("")
			for j := range prev {
				if rng.Float64() < 0.7 {
					priv := space.Add(variation.ClassRandom, 1, "x")
					d := variation.NewForm(5+5*rng.Float64(), []variation.Term{
						{ID: shared, Coef: 0.5},
						{ID: priv, Coef: 0.5 + rng.Float64()},
					})
					if err := g.AddArc(prev[j], cur[i], d); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		prev = cur
	}
	return g, space
}

// TestMonteCarloParallelWorkerInvariance: the sharded sampler returns
// bit-identical matrices for every worker count, because the shard layout
// and per-shard RNG streams depend only on (n, seed).
func TestMonteCarloParallelWorkerInvariance(t *testing.T) {
	g, space := chainGraph(t, 11)
	ref, err := MonteCarloParallel(g, nil, space, 1001, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		got, err := MonteCarloParallel(g, nil, space, 1001, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			for s := range ref[i] {
				if got[i][s] != ref[i][s] {
					t.Fatalf("workers=%d: sample [%d][%d] = %v, want %v",
						workers, i, s, got[i][s], ref[i][s])
				}
			}
		}
	}
}

// TestMonteCarloParallelQuantiles: the sharded stream reproduces the
// serial sampler's distribution — quantiles agree to sampling noise even
// though the streams differ sample-by-sample.
func TestMonteCarloParallelQuantiles(t *testing.T) {
	g, space := chainGraph(t, 23)
	const n = 20000
	serial, err := MonteCarlo(g, nil, space, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := MonteCarloParallel(g, nil, space, n, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	quantile := func(xs []float64, q float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[int(q*float64(len(s)-1))]
	}
	for i := range serial {
		for _, q := range []float64{0.05, 0.5, 0.95} {
			a := quantile(serial[i], q)
			b := quantile(sharded[i], q)
			if a == 0 && b == 0 {
				continue // unreachable output pin
			}
			if math.Abs(a-b) > 0.02*math.Abs(a)+0.2 {
				t.Errorf("output %d q%.2f: serial %.3f vs sharded %.3f", i, q, a, b)
			}
		}
	}
}

func TestMonteCarloParallelValidation(t *testing.T) {
	g, space := chainGraph(t, 3)
	if _, err := MonteCarloParallel(g, nil, space, 0, 1, 2); err == nil {
		t.Error("zero samples accepted")
	}
	// Fewer samples than shards still covers every sample exactly once.
	out, err := MonteCarloParallel(g, nil, space, 3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if len(out[i]) != 3 {
			t.Errorf("output %d: %d samples, want 3", i, len(out[i]))
		}
	}
}
