package sta

import (
	"fmt"
	"math/rand"
	"runtime"

	"vabuf/internal/variation"
)

// MonteCarlo samples the variation space n times and evaluates the graph
// deterministically per sample, returning per-sample arrival times at
// every output pin (indexed as out[outputIdx][sample]) in the order of
// g.Outputs(). It is the exact oracle the canonical MAX approximates.
func MonteCarlo(g *Graph, inputs map[PinID]variation.Form, space *variation.Space,
	n int, seed int64) ([][]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sta: sample count %d must be positive", n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	outs := g.Outputs()
	res := make([][]float64, len(outs))
	for i := range res {
		res[i] = make([]float64, n)
	}
	outIdx := make(map[PinID]int, len(outs))
	for i, id := range outs {
		outIdx[id] = i
	}
	sampleRange(g, inputs, space, order, outs, outIdx, res, 0, n, seed)
	return res, nil
}

// sampleRange evaluates samples [from, from+count) of the result matrix
// with an RNG stream seeded by seed. All inputs are read-only; distinct
// ranges may be filled concurrently.
func sampleRange(g *Graph, inputs map[PinID]variation.Form, space *variation.Space,
	order, outs []PinID, outIdx map[PinID]int, res [][]float64, from, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	arr := make([]float64, g.NumPins())
	seen := make([]bool, g.NumPins())
	var buf []float64
	for s := from; s < from+count; s++ {
		buf = space.Sample(rng, buf)
		for i := range seen {
			seen[i] = false
			arr[i] = 0
		}
		for _, id := range g.Inputs() {
			if f, ok := inputs[id]; ok {
				arr[id] = f.Eval(buf)
			}
			seen[id] = true
		}
		for _, id := range order {
			for _, a := range g.out[id] {
				cand := arr[id] + a.Delay.Eval(buf)
				if !seen[a.To] || cand > arr[a.To] {
					arr[a.To] = cand
					seen[a.To] = true
				}
			}
		}
		for _, id := range outs {
			res[outIdx[id]][s] = arr[id]
		}
	}
}

// MonteCarloParallel is MonteCarlo fanned out over worker goroutines.
// Sampling is sharded deterministically — shard i draws its samples from
// seed+i — so the result is identical for any worker count, including 1,
// but is NOT the same stream as MonteCarlo(seed). workers <= 0 selects
// GOMAXPROCS.
func MonteCarloParallel(g *Graph, inputs map[PinID]variation.Form, space *variation.Space,
	n int, seed int64, workers int) ([][]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sta: sample count %d must be positive", n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outs := g.Outputs()
	res := make([][]float64, len(outs))
	for i := range res {
		res[i] = make([]float64, n)
	}
	outIdx := make(map[PinID]int, len(outs))
	for i, id := range outs {
		outIdx[id] = i
	}
	// Fixed shard layout independent of the worker count, so the result
	// depends only on (n, seed).
	const shards = 16
	type shard struct {
		from, count int
		seed        int64
	}
	per := n / shards
	rem := n % shards
	plan := make([]shard, 0, shards)
	from := 0
	for i := 0; i < shards; i++ {
		count := per
		if i < rem {
			count++
		}
		if count == 0 {
			continue
		}
		plan = append(plan, shard{from: from, count: count, seed: seed + int64(i)})
		from += count
	}
	sem := make(chan struct{}, workers)
	done := make(chan struct{}, len(plan))
	for _, sh := range plan {
		sh := sh
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			sampleRange(g, inputs, space, order, outs, outIdx, res, sh.from, sh.count, sh.seed)
			done <- struct{}{}
		}()
	}
	for range plan {
		<-done
	}
	return res, nil
}
