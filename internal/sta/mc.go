package sta

import (
	"fmt"
	"math/rand"

	"vabuf/internal/variation"
)

// MonteCarlo samples the variation space n times and evaluates the graph
// deterministically per sample, returning per-sample arrival times at
// every output pin (indexed as out[outputIdx][sample]) in the order of
// g.Outputs(). It is the exact oracle the canonical MAX approximates.
func MonteCarlo(g *Graph, inputs map[PinID]variation.Form, space *variation.Space,
	n int, seed int64) ([][]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sta: sample count %d must be positive", n)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	outs := g.Outputs()
	res := make([][]float64, len(outs))
	for i := range res {
		res[i] = make([]float64, n)
	}
	outIdx := make(map[PinID]int, len(outs))
	for i, id := range outs {
		outIdx[id] = i
	}
	rng := rand.New(rand.NewSource(seed))
	arr := make([]float64, g.NumPins())
	seen := make([]bool, g.NumPins())
	var buf []float64
	for s := 0; s < n; s++ {
		buf = space.Sample(rng, buf)
		for i := range seen {
			seen[i] = false
			arr[i] = 0
		}
		for _, id := range g.Inputs() {
			if f, ok := inputs[id]; ok {
				arr[id] = f.Eval(buf)
			}
			seen[id] = true
		}
		for _, id := range order {
			for _, a := range g.out[id] {
				cand := arr[id] + a.Delay.Eval(buf)
				if !seen[a.To] || cand > arr[a.To] {
					arr[a.To] = cand
					seen[a.To] = true
				}
			}
		}
		for _, id := range outs {
			res[outIdx[id]][s] = arr[id]
		}
	}
	return res, nil
}
