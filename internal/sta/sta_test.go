package sta

import (
	"math"
	"math/rand"
	"testing"

	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// diamond builds the classic reconvergent graph:
//
//	in → a → out
//	in → b → out
//
// with the given arc delay forms.
func diamond(da, db, daOut, dbOut variation.Form) (*Graph, PinID, PinID) {
	g := NewGraph()
	in := g.AddPin("in")
	a := g.AddPin("a")
	b := g.AddPin("b")
	out := g.AddPin("out")
	_ = g.AddArc(in, a, da)
	_ = g.AddArc(in, b, db)
	_ = g.AddArc(a, out, daOut)
	_ = g.AddArc(b, out, dbOut)
	return g, in, out
}

func TestGraphBasics(t *testing.T) {
	g, in, out := diamond(variation.Const(1), variation.Const(2),
		variation.Const(3), variation.Const(4))
	if g.NumPins() != 4 {
		t.Fatalf("pins = %d", g.NumPins())
	}
	if ins := g.Inputs(); len(ins) != 1 || ins[0] != in {
		t.Errorf("inputs = %v", ins)
	}
	if outs := g.Outputs(); len(outs) != 1 || outs[0] != out {
		t.Errorf("outputs = %v", outs)
	}
	if g.Pin(in).Name != "in" {
		t.Errorf("pin name = %q", g.Pin(in).Name)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[PinID]int)
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[in] < pos[out]) {
		t.Error("topological order broken")
	}
}

func TestAddArcValidation(t *testing.T) {
	g := NewGraph()
	a := g.AddPin("a")
	if err := g.AddArc(a, 99, variation.Const(1)); err == nil {
		t.Error("bad target accepted")
	}
	if err := g.AddArc(99, a, variation.Const(1)); err == nil {
		t.Error("bad source accepted")
	}
	if err := g.AddArc(a, a, variation.Const(1)); err == nil {
		t.Error("self arc accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	a := g.AddPin("a")
	b := g.AddPin("b")
	if err := g.AddArc(a, b, variation.Const(1)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(b, a, variation.Const(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if _, err := Analyze(g, nil, nil, variation.NewSpace()); err == nil {
		t.Error("Analyze accepted cyclic graph")
	}
	if _, err := MonteCarlo(g, nil, variation.NewSpace(), 10, 1); err == nil {
		t.Error("MonteCarlo accepted cyclic graph")
	}
	if _, err := Analyze(NewGraph(), nil, nil, variation.NewSpace()); err == nil {
		t.Error("Analyze accepted empty graph")
	}
}

func TestDeterministicLongestPath(t *testing.T) {
	g, _, out := diamond(variation.Const(1), variation.Const(2),
		variation.Const(3), variation.Const(4))
	space := variation.NewSpace()
	res, err := Analyze(g, nil, nil, space)
	if err != nil {
		t.Fatal(err)
	}
	// Longest path: in→b→out = 2+4 = 6.
	if res.Arrival[out].Nominal != 6 {
		t.Errorf("arrival = %g, want 6", res.Arrival[out].Nominal)
	}
	// Required at out defaults to 0; slack = -6 there.
	if res.Slack[out].Nominal != -6 {
		t.Errorf("slack = %g, want -6", res.Slack[out].Nominal)
	}
	// Slack identity holds everywhere.
	for i := range res.Slack {
		want := res.Required[i].Nominal - res.Arrival[i].Nominal
		if math.Abs(res.Slack[i].Nominal-want) > 1e-12 {
			t.Errorf("pin %d slack identity broken", i)
		}
	}
	// WNS equals the single endpoint's slack; criticality 1.
	if res.WNS.Nominal != -6 {
		t.Errorf("WNS = %g", res.WNS.Nominal)
	}
	if res.EndpointCriticality[out] != 1 {
		t.Errorf("criticality = %v", res.EndpointCriticality)
	}
}

func TestRequiredTimesAndYield(t *testing.T) {
	g, _, out := diamond(variation.Const(1), variation.Const(2),
		variation.Const(3), variation.Const(4))
	space := variation.NewSpace()
	res, err := Analyze(g, nil, map[PinID]variation.Form{out: variation.Const(10)}, space)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slack[out].Nominal != 4 {
		t.Errorf("slack at out = %g, want 4", res.Slack[out].Nominal)
	}
	if y := res.YieldAtClock(space); y != 1 {
		t.Errorf("deterministic positive-slack yield = %g", y)
	}
	res2, err := Analyze(g, nil, map[PinID]variation.Form{out: variation.Const(5)}, space)
	if err != nil {
		t.Fatal(err)
	}
	if y := res2.YieldAtClock(space); y != 0 {
		t.Errorf("deterministic negative-slack yield = %g", y)
	}
}

func TestReconvergenceCorrelationHandled(t *testing.T) {
	// Both branches share one source: their delays are perfectly
	// correlated, so MAX(a, b) is exact with no Clark inflation and the
	// arrival variance equals the branch variance.
	space := variation.NewSpace()
	src := space.Add(variation.ClassInterDie, 1, "G")
	dShared := variation.NewForm(5, []variation.Term{{ID: src, Coef: 1}})
	g, _, out := diamond(dShared, dShared, variation.Const(1), variation.Const(1))
	res, err := Analyze(g, nil, nil, space)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Arrival[out].Nominal-6) > 1e-9 {
		t.Errorf("arrival mean = %g, want 6", res.Arrival[out].Nominal)
	}
	if v := res.Arrival[out].Var(space); math.Abs(v-1) > 1e-9 {
		t.Errorf("arrival variance = %g, want exactly 1 (correlation must cancel)", v)
	}
}

func TestAnalyzeAgainstMonteCarlo(t *testing.T) {
	// Random DAG with shared and private variation sources: canonical
	// arrival moments at every output must match sampling.
	rng := rand.New(rand.NewSource(3))
	space := variation.NewSpace()
	shared := space.Add(variation.ClassInterDie, 1, "G")
	g := NewGraph()
	const layers, width = 5, 4
	prev := make([]PinID, width)
	for i := range prev {
		prev[i] = g.AddPin("")
	}
	for l := 0; l < layers; l++ {
		cur := make([]PinID, width)
		for i := range cur {
			cur[i] = g.AddPin("")
			for j := range prev {
				if rng.Float64() < 0.6 {
					priv := space.Add(variation.ClassRandom, 1, "x")
					d := variation.NewForm(5+5*rng.Float64(), []variation.Term{
						{ID: shared, Coef: 0.5},
						{ID: priv, Coef: 0.5 + rng.Float64()},
					})
					if err := g.AddArc(prev[j], cur[i], d); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		prev = cur
	}
	res, err := Analyze(g, nil, nil, space)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := MonteCarlo(g, nil, space, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	outs := g.Outputs()
	for i, id := range outs {
		mean, v := stats.MeanVar(samples[i])
		am := res.Arrival[id].Nominal
		av := res.Arrival[id].Sigma(space)
		if am == 0 && mean == 0 {
			continue // unreachable output pin
		}
		if math.Abs(mean-am) > 0.02*math.Abs(mean)+0.2 {
			t.Errorf("output %d: MC mean %.3f vs model %.3f", id, mean, am)
		}
		if av > 0 && math.Abs(math.Sqrt(v)-av)/av > 0.12 {
			t.Errorf("output %d: MC sigma %.3f vs model %.3f", id, math.Sqrt(v), av)
		}
	}
}

func TestEndpointCriticalitySumsToOne(t *testing.T) {
	space := variation.NewSpace()
	g := NewGraph()
	in := g.AddPin("in")
	var outs []PinID
	for i := 0; i < 4; i++ {
		o := g.AddPin("")
		outs = append(outs, o)
		priv := space.Add(variation.ClassRandom, 1, "x")
		d := variation.NewForm(10+float64(i), []variation.Term{{ID: priv, Coef: 2}})
		if err := g.AddArc(in, o, d); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Analyze(g, nil, nil, space)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, o := range outs {
		p := res.EndpointCriticality[o]
		if p < 0 || p > 1 {
			t.Errorf("criticality %g outside [0,1]", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("criticalities sum to %g", sum)
	}
	// The slowest endpoint (largest arrival, equal required) is the most
	// critical.
	best := outs[3]
	for _, o := range outs {
		if res.EndpointCriticality[o] > res.EndpointCriticality[best] {
			t.Errorf("endpoint %d more critical than the slowest", o)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g, _, _ := diamond(variation.Const(1), variation.Const(1),
		variation.Const(1), variation.Const(1))
	if _, err := MonteCarlo(g, nil, variation.NewSpace(), 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	a, err := MonteCarlo(g, nil, variation.NewSpace(), 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(g, nil, variation.NewSpace(), 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatal("MC not reproducible")
		}
	}
}

func TestInputArrivalTimes(t *testing.T) {
	g, in, out := diamond(variation.Const(1), variation.Const(2),
		variation.Const(3), variation.Const(4))
	space := variation.NewSpace()
	res, err := Analyze(g, map[PinID]variation.Form{in: variation.Const(100)}, nil, space)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival[out].Nominal != 106 {
		t.Errorf("arrival with offset input = %g, want 106", res.Arrival[out].Nominal)
	}
}
