package sta

// Early-stopping Monte Carlo for timing graphs: the same deterministic
// 16-shard layout as MonteCarloParallel, committed strictly in shard
// order, with a distribution-free confidence interval per output pin.
// The run stops at the first shard boundary where EVERY output's
// q-quantile CI half-width is inside the requested relative tolerance,
// so multi-output graphs converge on their slowest-converging pin.

import (
	"fmt"
	"math"
	"runtime"
	"slices"

	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// AdaptiveOptions configures an early-stopping Monte-Carlo run over a
// timing graph. Semantics mirror yield.AdaptiveOptions: the sample
// stream is a shard-aligned prefix of MonteCarloParallel(MaxSamples,
// Seed), and the stopping point never depends on Workers.
type AdaptiveOptions struct {
	// MaxSamples is the sample cap. Required > 0.
	MaxSamples int
	// Seed seeds the deterministic shard streams (shard i uses Seed+i).
	Seed int64
	// Workers bounds concurrent shard evaluations; <=0 selects
	// GOMAXPROCS. The result never depends on it.
	Workers int
	// Quantile is the q whose empirical quantile drives the stopping
	// rule. Required inside (0, 1).
	Quantile float64
	// Confidence is the two-sided CI level; 0 selects 0.95.
	Confidence float64
	// Tol is the relative CI half-width target applied to every output
	// pin. <=0 disables early stopping (full budget).
	Tol float64
}

// Estimate summarizes an adaptive run by its worst-converged output: the
// pin whose relative CI half-width was largest at the stopping point.
type Estimate struct {
	// Samples is the number of samples committed per output.
	Samples int
	// Output is the index (into g.Outputs()) of the worst-converged pin.
	Output int
	// Quantile and HalfWidth are that pin's q-quantile estimate and CI
	// half-width.
	Quantile, HalfWidth float64
	// Converged reports whether every output met the tolerance.
	Converged bool
}

// MonteCarloAdaptive is MonteCarloParallel with a sequential stopping
// rule: shards are committed in order and the run ends once every
// output's quantile CI half-width falls within Tol·|estimate| (or the
// budget is exhausted). Returns the per-output sample prefixes — exactly
// the first Samples columns of the MonteCarloParallel result.
func MonteCarloAdaptive(g *Graph, inputs map[PinID]variation.Form, space *variation.Space,
	opts AdaptiveOptions) ([][]float64, Estimate, error) {
	if opts.MaxSamples <= 0 {
		return nil, Estimate{}, fmt.Errorf("sta: adaptive MC sample cap %d must be positive", opts.MaxSamples)
	}
	if opts.Quantile <= 0 || opts.Quantile >= 1 {
		return nil, Estimate{}, fmt.Errorf("sta: adaptive MC quantile %g outside (0, 1)", opts.Quantile)
	}
	if opts.Confidence == 0 {
		opts.Confidence = 0.95
	}
	if opts.Confidence <= 0 || opts.Confidence >= 1 {
		return nil, Estimate{}, fmt.Errorf("sta: adaptive MC confidence %g outside (0, 1)", opts.Confidence)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, Estimate{}, err
	}
	outs := g.Outputs()
	if len(outs) == 0 {
		return nil, Estimate{}, fmt.Errorf("sta: adaptive MC on a graph with no outputs")
	}
	res := make([][]float64, len(outs))
	for i := range res {
		res[i] = make([]float64, opts.MaxSamples)
	}
	outIdx := make(map[PinID]int, len(outs))
	for i, id := range outs {
		outIdx[id] = i
	}

	// Fixed shard layout independent of the worker count (identical to
	// MonteCarloParallel).
	const shards = 16
	type shard struct {
		from, count int
		seed        int64
	}
	per := opts.MaxSamples / shards
	rem := opts.MaxSamples % shards
	plan := make([]shard, 0, shards)
	from := 0
	for i := 0; i < shards; i++ {
		count := per
		if i < rem {
			count++
		}
		if count == 0 {
			continue
		}
		plan = append(plan, shard{from: from, count: count, seed: opts.Seed + int64(i)})
		from += count
	}

	// Shards write disjoint column ranges of res, so speculative
	// evaluation up to `Workers` shards ahead of the committed frontier
	// is safe; in-flight shards are drained before returning so no
	// goroutine writes into res after the caller regains ownership.
	futures := make([]chan struct{}, len(plan))
	launched := 0
	launchThrough := func(limit int) {
		for ; launched < limit && launched < len(plan); launched++ {
			ch := make(chan struct{})
			futures[launched] = ch
			sh := plan[launched]
			go func() {
				sampleRange(g, inputs, space, order, outs, outIdx, res, sh.from, sh.count, sh.seed)
				close(ch)
			}()
		}
	}
	drain := func(from int) {
		for i := from; i < launched; i++ {
			<-futures[i]
		}
	}

	finish := func(n int, est Estimate) [][]float64 {
		trimmed := make([][]float64, len(res))
		for i := range res {
			trimmed[i] = res[i][:n:n]
		}
		return trimmed
	}

	n := 0
	var est Estimate
	for i, sh := range plan {
		launchThrough(i + opts.Workers)
		<-futures[i]
		n = sh.from + sh.count

		// Evaluate every output; the run converges only when all do.
		worst := Estimate{Samples: n, Converged: true}
		worstRel := -1.0
		for oi := range res {
			sorted := slices.Clone(res[oi][:n])
			slices.Sort(sorted)
			q, hw, qerr := stats.QuantileEstimate(sorted, opts.Quantile, opts.Confidence)
			if qerr != nil {
				drain(i + 1)
				return nil, Estimate{}, qerr
			}
			scale := math.Abs(q)
			rel := hw
			if scale > 0 {
				rel = hw / scale
			}
			ok := opts.Tol > 0 && rel <= opts.Tol
			if !ok {
				worst.Converged = false
			}
			if rel > worstRel {
				worstRel = rel
				worst.Output = oi
				worst.Quantile = q
				worst.HalfWidth = hw
			}
		}
		est = worst
		if est.Converged {
			drain(i + 1)
			return finish(n, est), est, nil
		}
	}
	return finish(n, est), est, nil
}
