package sta

import "testing"

// TestAdaptiveFullBudgetMatchesParallel: with Tol <= 0 the adaptive run
// commits the full budget and every output's sample vector is
// bit-identical to MonteCarloParallel for the same (n, seed).
func TestAdaptiveFullBudgetMatchesParallel(t *testing.T) {
	g, space := chainGraph(t, 11)
	ref, err := MonteCarloParallel(g, nil, space, 1600, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, est, err := MonteCarloAdaptive(g, nil, space, AdaptiveOptions{
		MaxSamples: 1600,
		Seed:       7,
		Quantile:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Converged || est.Samples != 1600 {
		t.Fatalf("full-budget estimate %+v", est)
	}
	for i := range ref {
		if len(got[i]) != len(ref[i]) {
			t.Fatalf("output %d: %d samples, want %d", i, len(got[i]), len(ref[i]))
		}
		for s := range ref[i] {
			if got[i][s] != ref[i][s] {
				t.Fatalf("output %d sample %d differs", i, s)
			}
		}
	}
}

// TestAdaptiveStopsEarlyAndIsWorkerInvariant: a loose tolerance stops
// under the cap at a point independent of the worker count, returning a
// prefix of the fixed-budget stream for every output.
func TestAdaptiveStopsEarlyAndIsWorkerInvariant(t *testing.T) {
	g, space := chainGraph(t, 23)
	const cap = 32000
	opts := AdaptiveOptions{MaxSamples: cap, Seed: 9, Quantile: 0.05, Tol: 0.05, Workers: 1}
	ref, refEst, err := MonteCarloAdaptive(g, nil, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !refEst.Converged {
		t.Fatalf("loose tolerance did not converge within %d samples", cap)
	}
	if refEst.Samples >= cap {
		t.Errorf("converged run used the full budget (%d samples)", refEst.Samples)
	}
	full, err := MonteCarloParallel(g, nil, space, cap, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		for s := range ref[i] {
			if ref[i][s] != full[i][s] {
				t.Fatalf("output %d sample %d differs from fixed-budget stream", i, s)
			}
		}
	}
	for _, workers := range []int{4, 0} {
		opts.Workers = workers
		_, est, err := MonteCarloAdaptive(g, nil, space, opts)
		if err != nil {
			t.Fatal(err)
		}
		if est != refEst {
			t.Fatalf("workers=%d: estimate %+v, want %+v", workers, est, refEst)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	g, space := chainGraph(t, 5)
	cases := []AdaptiveOptions{
		{MaxSamples: 0, Quantile: 0.05},
		{MaxSamples: 100, Quantile: 0},
		{MaxSamples: 100, Quantile: 0.05, Confidence: 2},
	}
	for i, opts := range cases {
		if _, _, err := MonteCarloAdaptive(g, nil, space, opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, _, err := MonteCarloAdaptive(NewGraph(), nil, space, AdaptiveOptions{MaxSamples: 100, Quantile: 0.05}); err == nil {
		t.Error("graph with no outputs accepted")
	}
}
