// Package sta implements block-based statistical static timing analysis
// over combinational timing graphs — the substrate of the paper's §1
// references [1] and [3], and the context the first-order variation model
// of §3 was developed in. Arrival times propagate through the DAG as
// canonical first-order forms: arc delays add, converging paths take the
// statistical MAX (so path-reconvergence correlation is handled by the
// shared variation sources), and required times propagate backward with
// the statistical MIN. Slacks, endpoint criticalities, and a Monte-Carlo
// oracle complete the kit.
package sta

import (
	"fmt"

	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// PinID identifies one pin (graph vertex).
type PinID int32

// Pin is a vertex of the timing graph.
type Pin struct {
	ID   PinID
	Name string
}

// Arc is a directed timing arc with a (possibly varying) delay.
type Arc struct {
	From, To PinID
	Delay    variation.Form
}

// Graph is a combinational timing graph: a DAG of pins and delay arcs.
type Graph struct {
	pins []Pin
	// out[from] lists the arcs leaving each pin.
	out [][]Arc
	// in-degree bookkeeping for topological sorting.
	indeg []int
}

// NewGraph returns an empty timing graph.
func NewGraph() *Graph { return &Graph{} }

// AddPin registers a pin and returns its ID.
func (g *Graph) AddPin(name string) PinID {
	id := PinID(len(g.pins))
	if name == "" {
		name = fmt.Sprintf("p%d", id)
	}
	g.pins = append(g.pins, Pin{ID: id, Name: name})
	g.out = append(g.out, nil)
	g.indeg = append(g.indeg, 0)
	return id
}

// NumPins returns the number of registered pins.
func (g *Graph) NumPins() int { return len(g.pins) }

// Pin returns pin metadata.
func (g *Graph) Pin(id PinID) Pin { return g.pins[id] }

// AddArc adds a delay arc between two existing pins.
func (g *Graph) AddArc(from, to PinID, delay variation.Form) error {
	if int(from) >= len(g.pins) || from < 0 {
		return fmt.Errorf("sta: arc source %d out of range", from)
	}
	if int(to) >= len(g.pins) || to < 0 {
		return fmt.Errorf("sta: arc target %d out of range", to)
	}
	if from == to {
		return fmt.Errorf("sta: self-arc on pin %d", from)
	}
	g.out[from] = append(g.out[from], Arc{From: from, To: to, Delay: delay})
	g.indeg[to]++
	return nil
}

// Inputs returns all pins with no incoming arcs.
func (g *Graph) Inputs() []PinID {
	var out []PinID
	for i, d := range g.indeg {
		if d == 0 {
			out = append(out, PinID(i))
		}
	}
	return out
}

// Outputs returns all pins with no outgoing arcs.
func (g *Graph) Outputs() []PinID {
	var out []PinID
	for i, arcs := range g.out {
		if len(arcs) == 0 {
			out = append(out, PinID(i))
		}
	}
	return out
}

// TopoOrder returns a topological order of all pins, or an error if the
// graph has a cycle.
func (g *Graph) TopoOrder() ([]PinID, error) {
	indeg := make([]int, len(g.indeg))
	copy(indeg, g.indeg)
	queue := make([]PinID, 0, len(g.pins))
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, PinID(i))
		}
	}
	order := make([]PinID, 0, len(g.pins))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, a := range g.out[id] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != len(g.pins) {
		return nil, fmt.Errorf("sta: timing graph has a cycle (%d of %d pins ordered)",
			len(order), len(g.pins))
	}
	return order, nil
}

// Result holds the analysis outputs, indexed by PinID.
type Result struct {
	// Arrival is the statistical arrival time at each pin.
	Arrival []variation.Form
	// Required is the statistical required time at each pin (backward
	// pass); Slack = Required − Arrival.
	Required []variation.Form
	Slack    []variation.Form
	// EndpointCriticality maps each output pin to the probability that it
	// has the smallest slack among the outputs.
	EndpointCriticality map[PinID]float64
	// WNS is the statistical worst negative slack form: the MIN of the
	// output slacks.
	WNS variation.Form
}

// Analyze runs the forward (arrival, statistical MAX) and backward
// (required, statistical MIN) passes. inputs gives arrival-time forms at
// the primary inputs (missing inputs default to 0); required gives
// required times at the primary outputs (missing outputs default to 0).
func Analyze(g *Graph, inputs, required map[PinID]variation.Form,
	space *variation.Space) (*Result, error) {
	if g.NumPins() == 0 {
		return nil, fmt.Errorf("sta: empty graph")
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumPins()
	arrival := make([]variation.Form, n)
	seen := make([]bool, n)
	for _, id := range g.Inputs() {
		if f, ok := inputs[id]; ok {
			arrival[id] = f
		}
		seen[id] = true
	}
	for _, id := range order {
		for _, a := range g.out[id] {
			cand := arrival[id].Add(a.Delay)
			if !seen[a.To] {
				arrival[a.To] = cand
				seen[a.To] = true
			} else {
				arrival[a.To] = variation.Max(arrival[a.To], cand, space).Form
			}
		}
	}
	// Backward pass.
	req := make([]variation.Form, n)
	reqSeen := make([]bool, n)
	for _, id := range g.Outputs() {
		if f, ok := required[id]; ok {
			req[id] = f
		}
		reqSeen[id] = true
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		for _, a := range g.out[id] {
			cand := req[a.To].Sub(a.Delay)
			if !reqSeen[id] {
				req[id] = cand
				reqSeen[id] = true
			} else {
				req[id] = variation.Min(req[id], cand, space).Form
			}
		}
	}
	slack := make([]variation.Form, n)
	for i := range slack {
		slack[i] = req[i].Sub(arrival[i])
	}
	res := &Result{
		Arrival:             arrival,
		Required:            req,
		Slack:               slack,
		EndpointCriticality: make(map[PinID]float64),
	}
	// Endpoint criticality and WNS over the outputs via sequential
	// statistical MIN with tightness-probability mass splitting.
	outs := g.Outputs()
	first := true
	shares := make([]float64, 0, len(outs))
	for _, id := range outs {
		if first {
			res.WNS = slack[id]
			shares = append(shares, 1)
			first = false
			continue
		}
		m := variation.Min(res.WNS, slack[id], space)
		t := m.Moments.Tightness // P(accumulated < new)
		for j := range shares {
			shares[j] *= t
		}
		shares = append(shares, 1-t)
		res.WNS = m.Form
	}
	for i, id := range outs {
		res.EndpointCriticality[id] = shares[i]
	}
	return res, nil
}

// YieldAtClock returns P(WNS >= 0) when the output required times are set
// to the clock period: the timing yield of the block.
func (r *Result) YieldAtClock(space *variation.Space) float64 {
	sigma := r.WNS.Sigma(space)
	if sigma == 0 {
		if r.WNS.Nominal >= 0 {
			return 1
		}
		return 0
	}
	return 1 - stats.Phi(-r.WNS.Nominal/sigma)
}
