package rctree

import "fmt"

// WireChoice is one routing option for an edge: a named width/layer with
// its per-unit parasitics. Widening a wire divides its resistance and
// multiplies its area capacitance.
type WireChoice struct {
	Name   string
	Params WireParams
}

// DefaultWireLibrary returns three widths of the default global wire:
// resistance scales as 1/width, capacitance as area·width plus a constant
// fringe term.
func DefaultWireLibrary() []WireChoice {
	const (
		r0     = 1e-4 // kΩ/µm at 1x
		cArea  = 0.12 // fF/µm per width unit
		cFring = 0.08 // fF/µm fringe
	)
	mk := func(w float64) WireParams {
		return WireParams{R: r0 / w, C: cArea*w + cFring}
	}
	return []WireChoice{
		{Name: "w1", Params: mk(1)},
		{Name: "w2", Params: mk(2)},
		{Name: "w4", Params: mk(4)},
	}
}

// WireAssignment maps a node to the wire parasitics of the edge from that
// node up to its parent. Edges absent from the map use the tree default.
type WireAssignment map[NodeID]WireParams

// EvaluateSized is Evaluate with per-edge wire overrides (simultaneous
// buffer insertion and wire sizing, after [8]). A nil wires map reduces to
// Evaluate.
func EvaluateSized(t *Tree, buffers Assignment, wires WireAssignment) (Evaluation, error) {
	for id := range buffers {
		if id < 0 || int(id) >= len(t.Nodes) {
			return Evaluation{}, fmt.Errorf("rctree: assignment references node %d outside tree", id)
		}
		if !t.Nodes[id].BufferOK {
			return Evaluation{}, fmt.Errorf("rctree: node %d is not a legal buffer position", id)
		}
	}
	for id, wp := range wires {
		if id < 0 || int(id) >= len(t.Nodes) {
			return Evaluation{}, fmt.Errorf("rctree: wire assignment references node %d outside tree", id)
		}
		if id == t.Root {
			return Evaluation{}, fmt.Errorf("rctree: wire assignment on the root (no parent edge)")
		}
		if wp.R <= 0 || wp.C <= 0 {
			return Evaluation{}, fmt.Errorf("rctree: non-positive wire override %+v at node %d", wp, id)
		}
	}
	type lt struct{ L, T float64 }
	vals := make([]lt, len(t.Nodes))
	for _, id := range t.PostOrder() {
		n := &t.Nodes[id]
		var cur lt
		switch n.Kind {
		case KindSink:
			cur = lt{L: n.CapLoad, T: n.RAT}
		default:
			first := true
			for _, cid := range n.Children {
				c := &t.Nodes[cid]
				child := vals[cid]
				wp := t.Wire
				if ov, ok := wires[cid]; ok {
					wp = ov
				}
				l := c.WireLen
				child.T -= wp.R * l * child.L
				child.T -= 0.5 * wp.R * wp.C * l * l
				child.L += wp.C * l
				if first {
					cur = child
					first = false
				} else {
					cur.L += child.L
					if child.T < cur.T {
						cur.T = child.T
					}
				}
			}
			if first {
				return Evaluation{}, fmt.Errorf("rctree: internal node %d has no children", id)
			}
		}
		if bv, ok := buffers[id]; ok {
			cur = lt{L: bv.C, T: cur.T - bv.T - bv.R*cur.L}
		}
		vals[id] = cur
	}
	root := vals[t.Root]
	return Evaluation{
		RootRAT:  root.T - t.DriverR*root.L,
		RootLoad: root.L,
	}, nil
}
