package rctree

import (
	"math"
	"testing"

	"vabuf/internal/geom"
)

func TestDefaultWireLibrary(t *testing.T) {
	lib := DefaultWireLibrary()
	if len(lib) != 3 {
		t.Fatalf("library size = %d", len(lib))
	}
	// w1 must equal the tree default so that enabling wire sizing with the
	// default library can never lose to the fixed-wire optimum.
	if lib[0].Params != DefaultWire {
		t.Errorf("w1 = %+v, want %+v", lib[0].Params, DefaultWire)
	}
	for i := 1; i < len(lib); i++ {
		if !(lib[i].Params.R < lib[i-1].Params.R) {
			t.Errorf("R not decreasing with width at %d", i)
		}
		if !(lib[i].Params.C > lib[i-1].Params.C) {
			t.Errorf("C not increasing with width at %d", i)
		}
	}
}

func TestEvaluateSizedNilMatchesEvaluate(t *testing.T) {
	tr, _, _, _ := forkTree()
	a, err := Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateSized(tr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("EvaluateSized(nil) = %+v, Evaluate = %+v", b, a)
	}
}

func TestEvaluateSizedWideWireHelpsResistivePath(t *testing.T) {
	// A long wire into a big sink load behind a strong driver: widening
	// (lower R, higher C) reduces both the R·C_load term and the r·c
	// product, and the strong driver keeps the added wire cap cheap.
	tr := New(DefaultWire, 0.01, geom.Point{})
	sink := tr.AddSink(tr.Root, geom.Point{X: 5000, Y: 0}, 5000, 50, 0)
	base, err := EvaluateSized(tr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wide := DefaultWireLibrary()[2].Params // w4
	sized, err := EvaluateSized(tr, nil, WireAssignment{sink: wide})
	if err != nil {
		t.Fatal(err)
	}
	if sized.RootRAT <= base.RootRAT {
		t.Errorf("widening did not help: %g vs %g", sized.RootRAT, base.RootRAT)
	}
	// Hand check against the formula.
	l := 5000.0
	load := 50.0
	want := 0 - wide.R*l*load - 0.5*wide.R*wide.C*l*l
	wantLoad := load + wide.C*l
	want -= tr.DriverR * wantLoad
	if math.Abs(sized.RootRAT-want) > 1e-9 {
		t.Errorf("sized RAT = %g, want %g", sized.RootRAT, want)
	}
}

func TestEvaluateSizedValidation(t *testing.T) {
	tr, _, k := chainTree(100, 100)
	good := WireParams{R: 1e-4, C: 0.2}
	if _, err := EvaluateSized(tr, nil, WireAssignment{99: good}); err == nil {
		t.Error("out-of-range wire node accepted")
	}
	if _, err := EvaluateSized(tr, nil, WireAssignment{tr.Root: good}); err == nil {
		t.Error("wire override on root accepted")
	}
	if _, err := EvaluateSized(tr, nil, WireAssignment{k: {R: 0, C: 1}}); err == nil {
		t.Error("zero-R override accepted")
	}
	if _, err := EvaluateSized(tr, Assignment{99: {}}, nil); err == nil {
		t.Error("bad buffer assignment accepted")
	}
}

func TestEvaluateSizedMixedEdges(t *testing.T) {
	// Overriding one edge leaves the other on the tree default.
	tr, s, a, b := forkTree()
	_ = s
	wide := DefaultWireLibrary()[1].Params
	mixed, err := EvaluateSized(tr, nil, WireAssignment{a: wide})
	if err != nil {
		t.Fatal(err)
	}
	// Load at root changes only by the delta on edge a (150 µm).
	base, err := Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := (wide.C - tr.Wire.C) * 150
	if math.Abs((mixed.RootLoad-base.RootLoad)-wantDelta) > 1e-9 {
		t.Errorf("load delta = %g, want %g", mixed.RootLoad-base.RootLoad, wantDelta)
	}
	_ = b
}
