package rctree

import (
	"strings"
	"testing"

	"vabuf/internal/geom"
)

// seedTree builds a small valid tree through the construction API, so the
// fuzz corpus starts from well-formed inputs the mutator can distort.
func seedTree() *Tree {
	t := New(WireParams{R: 0.1, C: 0.2}, 0.12, geom.Point{})
	s1 := t.AddSteiner(0, geom.Point{X: 100, Y: 0}, 100)
	t.AddSink(s1, geom.Point{X: 200, Y: 50}, 120, 0.01, 500)
	t.AddSink(s1, geom.Point{X: 200, Y: -50}, 120, 0.02, 480)
	return t
}

// FuzzParseTree asserts the parser's crash-safety contract: Read must
// return (*Tree, nil) or (nil, error) for arbitrary bytes — never panic,
// never both, never a tree that fails its own Validate. On success the
// text format must round-trip: Write(Read(x)) reparses to an equal tree.
func FuzzParseTree(f *testing.F) {
	var buf strings.Builder
	if err := Write(&buf, seedTree()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("tree v1\nwire 0.1 0.2\ndriver 0.1\nnode 0 driver 0 0 -1 0 0 0 0 drv\n")
	// Regression seeds for panics the parser used to hit: a parent below
	// -1 indexed the node slice out of range, and 2^32-scale ids
	// truncated through the int32 NodeID into aliases of valid ids.
	f.Add("tree v1\nnode 0 driver 0 0 -1 0 0 0 0 drv\nnode 1 sink 1 1 -5 1 1 0.1 100 s\n")
	f.Add("tree v1\nnode 0 driver 0 0 -1 0 0 0 0 drv\nnode 4294967297 sink 1 1 0 1 1 0.1 100 s\n")
	f.Add("tree v1\nwire NaN Inf\ndriver -Inf\nnode 0 driver NaN 0 -1 0 0 0 0 drv\n")
	f.Add("# comment only\n\n")
	f.Add("tree v1\nnode 0 sink 0 0 0 0 0 0 0 self\n")

	f.Fuzz(func(t *testing.T, input string) {
		tree, err := Read(strings.NewReader(input))
		if err != nil {
			if tree != nil {
				t.Fatalf("Read returned both a tree and error %v", err)
			}
			return
		}
		if tree == nil {
			t.Fatal("Read returned (nil, nil)")
		}
		if verr := tree.Validate(); verr != nil {
			t.Fatalf("Read accepted a tree that fails Validate: %v", verr)
		}
		// Round-trip: the accepted tree must serialize and reparse equal.
		var out strings.Builder
		if err := Write(&out, tree); err != nil {
			t.Fatalf("Write failed on accepted tree: %v", err)
		}
		back, err := Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("reparsing written tree: %v\ntext:\n%s", err, out.String())
		}
		if len(back.Nodes) != len(tree.Nodes) {
			t.Fatalf("round-trip node count %d != %d", len(back.Nodes), len(tree.Nodes))
		}
		for i := range tree.Nodes {
			a, b := &tree.Nodes[i], &back.Nodes[i]
			if a.ID != b.ID || a.Kind != b.Kind || a.Parent != b.Parent ||
				a.Loc != b.Loc || a.WireLen != b.WireLen || a.BufferOK != b.BufferOK ||
				a.CapLoad != b.CapLoad || a.RAT != b.RAT {
				t.Fatalf("round-trip node %d mismatch:\n  got  %+v\n  want %+v", i, b, a)
			}
		}
	})
}
