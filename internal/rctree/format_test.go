package rctree

import (
	"bytes"
	"strings"
	"testing"

	"vabuf/internal/geom"
)

func TestRoundTrip(t *testing.T) {
	tr, _, _, _ := forkTree()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v\ntext:\n%s", err, buf.String())
	}
	if got.Len() != tr.Len() || got.Wire != tr.Wire || got.DriverR != tr.DriverR {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.Nodes {
		a, b := tr.Nodes[i], got.Nodes[i]
		if a.Kind != b.Kind || a.Loc != b.Loc || a.Parent != b.Parent ||
			a.WireLen != b.WireLen || a.CapLoad != b.CapLoad || a.RAT != b.RAT ||
			a.BufferOK != b.BufferOK || a.Name != b.Name {
			t.Errorf("node %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Same Elmore result.
	e1, err := Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Evaluate(got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Errorf("evaluations differ after round trip: %+v vs %+v", e1, e2)
	}
}

func TestReadIgnoresCommentsAndBlanks(t *testing.T) {
	text := `# a comment
tree v1

wire 1e-4 0.2
driver 0.5
# nodes
node 0 driver 0 0 -1 0 0 0 0 drv
node 1 sink 100 0 0 100 1 10 0 s1
`
	tr, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.NumSinks() != 1 {
		t.Errorf("parsed tree = %+v", tr)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no header", "wire 1 1\n"},
		{"bad header", "tree v99\n"},
		{"unknown record", "tree v1\nbogus 1\n"},
		{"wire fields", "tree v1\nwire 1\n"},
		{"wire value", "tree v1\nwire x 1\n"},
		{"driver fields", "tree v1\ndriver\n"},
		{"driver value", "tree v1\ndriver z\n"},
		{"empty", ""},
		{"node short", "tree v1\nnode 0 driver 0 0\n"},
		{"node id", "tree v1\nnode x driver 0 0 -1 0 0 0 0 drv\n"},
		{"node kind", "tree v1\nnode 0 gate 0 0 -1 0 0 0 0 drv\n"},
		{"node bufok", "tree v1\nnode 0 driver 0 0 -1 0 7 0 0 drv\n"},
		{"node order", "tree v1\nwire 1e-4 0.2\ndriver 0.5\nnode 1 driver 0 0 -1 0 0 0 0 drv\n"},
		{"forward parent", "tree v1\nwire 1e-4 0.2\ndriver 0.5\nnode 0 driver 0 0 -1 0 0 0 0 d\nnode 1 sink 1 1 2 1 1 1 0 s\n"},
		{"bad numeric", "tree v1\nnode 0 driver a 0 -1 0 0 0 0 drv\n"},
		{"bad parent", "tree v1\nnode 0 driver 0 0 q 0 0 0 0 drv\n"},
		{"invalid tree", "tree v1\nwire 1e-4 0.2\ndriver 0.5\nnode 0 sink 0 0 -1 0 1 1 0 s\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: Read accepted bad input", c.name)
		}
	}
}

func TestReadWithoutName(t *testing.T) {
	// The name field is optional on parse (10 fields).
	text := "tree v1\nwire 1e-4 0.2\ndriver 0.5\n" +
		"node 0 driver 0 0 -1 0 0 0 0\n" +
		"node 1 sink 5 5 0 7 1 10 -3\n"
	tr, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Node(1).RAT != -3 || tr.Node(1).CapLoad != 10 || tr.Node(1).WireLen != 7 {
		t.Errorf("node 1 = %+v", tr.Node(1))
	}
	if tr.Node(1).Loc != (geom.Point{X: 5, Y: 5}) {
		t.Errorf("node 1 loc = %v", tr.Node(1).Loc)
	}
}
