package rctree

import (
	"math"
	"testing"

	"vabuf/internal/geom"
)

// chainTree builds driver → steiner → sink with the given wire lengths.
func chainTree(l1, l2 float64) (*Tree, NodeID, NodeID) {
	t := New(DefaultWire, 0.5, geom.Point{X: 0, Y: 0})
	s := t.AddSteiner(t.Root, geom.Point{X: l1, Y: 0}, l1)
	k := t.AddSink(s, geom.Point{X: l1 + l2, Y: 0}, l2, 10, 0)
	return t, s, k
}

// forkTree builds a driver with one steiner that fans out to two sinks.
func forkTree() (*Tree, NodeID, NodeID, NodeID) {
	t := New(DefaultWire, 0.5, geom.Point{})
	s := t.AddSteiner(t.Root, geom.Point{X: 100, Y: 0}, 100)
	a := t.AddSink(s, geom.Point{X: 200, Y: 50}, 150, 10, 0)
	b := t.AddSink(s, geom.Point{X: 200, Y: -50}, 150, 20, -100)
	return t, s, a, b
}

func TestTreeConstruction(t *testing.T) {
	tr, s, k := chainTree(100, 200)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.NumSinks() != 1 || tr.NumBufferPositions() != 2 {
		t.Errorf("sinks=%d positions=%d", tr.NumSinks(), tr.NumBufferPositions())
	}
	if got := tr.Sinks(); len(got) != 1 || got[0] != k {
		t.Errorf("Sinks = %v", got)
	}
	if tr.Node(s).Kind != KindSteiner || tr.Node(k).Kind != KindSink {
		t.Error("node kinds wrong")
	}
	if tr.TotalWireLength() != 300 {
		t.Errorf("total wire = %g", tr.TotalWireLength())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindDriver.String() != "driver" || KindSink.String() != "sink" ||
		KindSteiner.String() != "steiner" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestPostOrderChildrenFirst(t *testing.T) {
	tr, s, a, b := forkTree()
	order := tr.PostOrder()
	if len(order) != 4 {
		t.Fatalf("post order covers %d nodes", len(order))
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	if !(pos[a] < pos[s] && pos[b] < pos[s] && pos[s] < pos[tr.Root]) {
		t.Errorf("post order wrong: %v", order)
	}
	if order[len(order)-1] != tr.Root {
		t.Error("root not last")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		breakIt func(*Tree)
	}{
		{"sink with child", func(tr *Tree) {
			tr.Nodes[2].Kind = KindSteiner
			tr.Nodes[1].Kind = KindSink // steiner (has child) relabeled sink
		}},
		{"negative wire", func(tr *Tree) { tr.Nodes[1].WireLen = -5 }},
		{"negative load", func(tr *Tree) { tr.Nodes[2].CapLoad = -1 }},
		{"root buffered", func(tr *Tree) { tr.Nodes[0].BufferOK = true }},
		{"two drivers", func(tr *Tree) { tr.Nodes[1].Kind = KindDriver }},
		{"bad wire params", func(tr *Tree) { tr.Wire.R = 0 }},
		{"negative driver R", func(tr *Tree) { tr.DriverR = -1 }},
		{"orphan child link", func(tr *Tree) { tr.Nodes[1].Children = nil }},
		{"id mismatch", func(tr *Tree) { tr.Nodes[2].ID = 7 }},
		{"leaf steiner", func(tr *Tree) { tr.Nodes[2].Kind = KindSteiner }},
	}
	for _, c := range cases {
		tr, _, _ := chainTree(100, 100)
		c.breakIt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt tree", c.name)
		}
	}
	if err := (&Tree{}).Validate(); err == nil {
		t.Error("empty tree validated")
	}
}

func TestClone(t *testing.T) {
	tr, _, _, _ := forkTree()
	cp := tr.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone leaves the original untouched.
	cp.Nodes[1].Children[0] = 99
	cp.Nodes[2].CapLoad = 777
	if tr.Nodes[1].Children[0] == 99 || tr.Nodes[2].CapLoad == 777 {
		t.Error("Clone shares storage with original")
	}
}

func TestBoundingBox(t *testing.T) {
	tr, _, _, _ := forkTree()
	bb := tr.BoundingBox()
	if bb.Min != (geom.Point{X: 0, Y: -50}) || bb.Max != (geom.Point{X: 200, Y: 50}) {
		t.Errorf("bbox = %+v", bb)
	}
}

func TestEvaluateUnbufferedChain(t *testing.T) {
	// Hand-computed Elmore for driver -R1=0.5kΩ-> 100µm wire -> sink 10fF.
	tr := New(DefaultWire, 0.5, geom.Point{})
	tr.AddSink(tr.Root, geom.Point{X: 100, Y: 0}, 100, 10, 0)
	ev, err := Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Wire: r·l = 0.01 kΩ, c·l = 20 fF.
	// T at root before driver = 0 - 0.01*10 - 0.5*1e-4*0.2*100*100 = -0.1 - 0.1 = -0.2
	// L at root = 30 fF; driver delay = 0.5*30 = 15.
	wantL := 30.0
	wantT := -0.2 - 15.0
	if math.Abs(ev.RootLoad-wantL) > 1e-12 {
		t.Errorf("RootLoad = %g, want %g", ev.RootLoad, wantL)
	}
	if math.Abs(ev.RootRAT-wantT) > 1e-12 {
		t.Errorf("RootRAT = %g, want %g", ev.RootRAT, wantT)
	}
}

func TestEvaluateMergeTakesMinAndSumsLoad(t *testing.T) {
	tr, _, a, b := forkTree()
	ev, err := Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sink b has RAT -100, strictly worse; the root RAT must be driven by b.
	// Compute by hand: child wire op for both sinks (150 µm each).
	wire := func(l, load, rat float64) (float64, float64) {
		return load + tr.Wire.C*l, rat - tr.Wire.R*l*load - 0.5*tr.Wire.R*tr.Wire.C*l*l
	}
	la, ta := wire(150, tr.Node(a).CapLoad, 0)
	lb, tb := wire(150, tr.Node(b).CapLoad, -100)
	lm := la + lb
	tm := math.Min(ta, tb)
	ls, ts := wire(100, lm, tm)
	want := ts - tr.DriverR*ls
	if math.Abs(ev.RootRAT-want) > 1e-9 {
		t.Errorf("RootRAT = %g, want %g", ev.RootRAT, want)
	}
	if math.Abs(ev.RootLoad-ls) > 1e-9 {
		t.Errorf("RootLoad = %g, want %g", ev.RootLoad, ls)
	}
}

func TestEvaluateBufferDecouplesLoad(t *testing.T) {
	// A buffer at the steiner node must present only its input cap upstream.
	tr, s, _ := chainTree(100, 5000)
	bv := BufferValues{C: 5, T: 30, R: 0.3}
	evB, err := Evaluate(tr, Assignment{s: bv})
	if err != nil {
		t.Fatal(err)
	}
	// Downstream of buffer: 5000 µm wire to a 10 fF sink.
	lDown := 10 + tr.Wire.C*5000
	tDown := 0 - tr.Wire.R*5000*10 - 0.5*tr.Wire.R*tr.Wire.C*5000*5000
	// Buffer at s.
	tBuf := tDown - bv.T - bv.R*lDown
	// Wire from s to root.
	lUp := bv.C + tr.Wire.C*100
	tUp := tBuf - tr.Wire.R*100*bv.C - 0.5*tr.Wire.R*tr.Wire.C*100*100
	want := tUp - tr.DriverR*lUp
	if math.Abs(evB.RootRAT-want) > 1e-9 {
		t.Errorf("buffered RootRAT = %g, want %g", evB.RootRAT, want)
	}
	if math.Abs(evB.RootLoad-lUp) > 1e-9 {
		t.Errorf("buffered RootLoad = %g, want %g", evB.RootLoad, lUp)
	}
	// For this long wire the buffer should win over the unbuffered tree.
	evU, err := Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if evB.RootRAT <= evU.RootRAT {
		t.Errorf("buffer did not help: %g vs %g", evB.RootRAT, evU.RootRAT)
	}
}

func TestEvaluateBufferAtSink(t *testing.T) {
	tr, _, k := chainTree(100, 100)
	bv := BufferValues{C: 3, T: 20, R: 0.2}
	ev, err := Evaluate(tr, Assignment{k: bv})
	if err != nil {
		t.Fatal(err)
	}
	// Sink (10 fF, RAT 0) behind the buffer: T = 0 - 20 - 0.2*10 = -22, L = 3.
	// Then two 100 µm wires with no branching.
	l, rat := 3.0, -22.0
	for i := 0; i < 2; i++ {
		rat -= tr.Wire.R*100*l + 0.5*tr.Wire.R*tr.Wire.C*100*100
		l += tr.Wire.C * 100
	}
	want := rat - tr.DriverR*l
	if math.Abs(ev.RootRAT-want) > 1e-9 {
		t.Errorf("RootRAT = %g, want %g", ev.RootRAT, want)
	}
}

func TestEvaluateRejectsBadAssignment(t *testing.T) {
	tr, _, _ := chainTree(100, 100)
	if _, err := Evaluate(tr, Assignment{99: {}}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := Evaluate(tr, Assignment{tr.Root: {}}); err == nil {
		t.Error("buffer at driver accepted")
	}
}

func TestWireDelay(t *testing.T) {
	tr, _, _ := chainTree(1, 1)
	got := tr.WireDelay(100, 10)
	want := tr.Wire.R*100*10 + 0.5*tr.Wire.R*tr.Wire.C*100*100
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("WireDelay = %g, want %g", got, want)
	}
}

func TestElmoreAdditivityAlongPath(t *testing.T) {
	// Splitting one wire into two segments (with a zero-size steiner in the
	// middle and no branching) must not change the Elmore RAT.
	whole := New(DefaultWire, 0.5, geom.Point{})
	whole.AddSink(whole.Root, geom.Point{X: 400, Y: 0}, 400, 12, 0)
	split := New(DefaultWire, 0.5, geom.Point{})
	mid := split.AddSteiner(split.Root, geom.Point{X: 250, Y: 0}, 250)
	split.AddSink(mid, geom.Point{X: 400, Y: 0}, 150, 12, 0)
	e1, err := Evaluate(whole, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Evaluate(split, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1.RootRAT-e2.RootRAT) > 1e-9 {
		t.Errorf("splitting a wire changed RAT: %g vs %g", e1.RootRAT, e2.RootRAT)
	}
	if math.Abs(e1.RootLoad-e2.RootLoad) > 1e-9 {
		t.Errorf("splitting a wire changed load: %g vs %g", e1.RootLoad, e2.RootLoad)
	}
}
