package rctree

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The plain-text tree format, one record per line:
//
//	tree v1
//	wire <r kΩ/µm> <c fF/µm>
//	driver <R kΩ>
//	node <id> <driver|sink|steiner> <x> <y> <parent|-1> <wirelen> <bufok 0|1> <cap> <rat> <name>
//
// Lines starting with '#' and blank lines are ignored. Nodes must appear
// in ID order with parents before children.

// Write serializes the tree in the text format.
func Write(w io.Writer, t *Tree) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "tree v1")
	fmt.Fprintf(bw, "wire %g %g\n", t.Wire.R, t.Wire.C)
	fmt.Fprintf(bw, "driver %g\n", t.DriverR)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		bufok := 0
		if n.BufferOK {
			bufok = 1
		}
		fmt.Fprintf(bw, "node %d %s %g %g %d %g %d %g %g %s\n",
			n.ID, n.Kind, n.Loc.X, n.Loc.Y, n.Parent, n.WireLen, bufok,
			n.CapLoad, n.RAT, n.Name)
	}
	return bw.Flush()
}

// Read parses a tree from the text format and validates it.
func Read(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Tree{}
	sawHeader := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "tree":
			if len(fields) != 2 || fields[1] != "v1" {
				return nil, fmt.Errorf("rctree: line %d: unsupported header %q", lineNo, line)
			}
			sawHeader = true
		case "wire":
			if !sawHeader {
				return nil, fmt.Errorf("rctree: line %d: wire before header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("rctree: line %d: wire needs 2 values", lineNo)
			}
			var err error
			if t.Wire.R, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("rctree: line %d: bad wire r: %w", lineNo, err)
			}
			if t.Wire.C, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("rctree: line %d: bad wire c: %w", lineNo, err)
			}
			if !isFinite(t.Wire.R) || !isFinite(t.Wire.C) {
				return nil, fmt.Errorf("rctree: line %d: non-finite wire parasitics", lineNo)
			}
		case "driver":
			if len(fields) != 2 {
				return nil, fmt.Errorf("rctree: line %d: driver needs 1 value", lineNo)
			}
			var err error
			if t.DriverR, err = strconv.ParseFloat(fields[1], 64); err != nil {
				return nil, fmt.Errorf("rctree: line %d: bad driver R: %w", lineNo, err)
			}
			if !isFinite(t.DriverR) {
				return nil, fmt.Errorf("rctree: line %d: non-finite driver R", lineNo)
			}
		case "node":
			n, err := parseNode(fields)
			if err != nil {
				return nil, fmt.Errorf("rctree: line %d: %w", lineNo, err)
			}
			if int(n.ID) != len(t.Nodes) {
				return nil, fmt.Errorf("rctree: line %d: node ID %d out of order (want %d)",
					lineNo, n.ID, len(t.Nodes))
			}
			t.Nodes = append(t.Nodes, n)
			if n.Parent != NoNode {
				// parseNode guarantees Parent >= -1, so the only invalid
				// references left are self/forward ones.
				if n.Parent >= n.ID {
					return nil, fmt.Errorf("rctree: line %d: node %d references later parent %d",
						lineNo, n.ID, n.Parent)
				}
				p := &t.Nodes[n.Parent]
				p.Children = append(p.Children, n.ID)
			}
		default:
			return nil, fmt.Errorf("rctree: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rctree: read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("rctree: missing 'tree v1' header")
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("rctree: no nodes")
	}
	t.Root = 0
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func parseNode(fields []string) (Node, error) {
	if len(fields) < 10 {
		return Node{}, fmt.Errorf("node record needs >= 10 fields, got %d", len(fields))
	}
	var n Node
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return Node{}, fmt.Errorf("bad node id: %w", err)
	}
	// NodeID is int32: reject ids outside its range before the conversion
	// silently truncates them (a huge id could otherwise alias a valid one).
	if id < 0 || id > math.MaxInt32 {
		return Node{}, fmt.Errorf("node id %d out of range", id)
	}
	n.ID = NodeID(id)
	switch fields[2] {
	case "driver":
		n.Kind = KindDriver
	case "sink":
		n.Kind = KindSink
	case "steiner":
		n.Kind = KindSteiner
	default:
		return Node{}, fmt.Errorf("unknown node kind %q", fields[2])
	}
	floats := make([]float64, 0, 6)
	for _, idx := range []int{3, 4, 6, 8, 9} {
		v, err := strconv.ParseFloat(fields[idx], 64)
		if err != nil {
			return Node{}, fmt.Errorf("bad numeric field %d: %w", idx, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Node{}, fmt.Errorf("non-finite numeric field %d: %s", idx, fields[idx])
		}
		floats = append(floats, v)
	}
	n.Loc.X, n.Loc.Y = floats[0], floats[1]
	n.WireLen = floats[2]
	n.CapLoad, n.RAT = floats[3], floats[4]
	parent, err := strconv.Atoi(fields[5])
	if err != nil {
		return Node{}, fmt.Errorf("bad parent: %w", err)
	}
	// -1 (NoNode) marks the root; anything more negative would index the
	// node slice out of range, and anything past int32 would truncate.
	if parent < int(NoNode) || parent > math.MaxInt32 {
		return Node{}, fmt.Errorf("parent %d out of range", parent)
	}
	n.Parent = NodeID(parent)
	switch fields[7] {
	case "0":
		n.BufferOK = false
	case "1":
		n.BufferOK = true
	default:
		return Node{}, fmt.Errorf("bad bufok flag %q", fields[7])
	}
	if len(fields) >= 11 {
		n.Name = fields[10]
	}
	return n, nil
}
