package rctree

// BufferValues are the electrical values of one buffer instance: input
// capacitance C (fF), intrinsic delay T (ps) and output resistance R (kΩ).
// For deterministic evaluation these are the nominal library values; for
// Monte-Carlo evaluation they are one sampled realization.
type BufferValues struct {
	C, T, R float64
}

// Assignment maps node IDs to buffer instances. Nodes absent from the map
// are unbuffered.
type Assignment map[NodeID]BufferValues

// Evaluation is the result of an Elmore evaluation of a buffered tree.
type Evaluation struct {
	// RootRAT is the required arrival time at the driver output including
	// the driver delay DriverR·L_root (ps). Larger is better.
	RootRAT float64
	// RootLoad is the downstream capacitance seen by the driver (fF).
	RootLoad float64
}

// Evaluate computes the required arrival time at the root of a buffered
// tree under the Elmore delay model with π-model wires, mirroring the
// three key DP operations of eq. 25–30 exactly:
//
//   - sink:   (L, T) = (CapLoad, RAT)
//   - buffer: applied at a node after its subtree is merged:
//     (L, T) → (C_b, T − T_b − R_b·L)
//   - wire:   edge of length l up to the parent:
//     L → L + c·l,  T → T − r·l·L − ½·r·c·l²
//   - merge:  L = ΣL_i, T = min T_i
//
// It is the independent re-evaluation oracle used to verify DP results and
// the per-sample kernel of the Monte-Carlo yield analysis. See
// EvaluateSized for the wire-sizing variant this delegates to.
func Evaluate(t *Tree, buffers Assignment) (Evaluation, error) {
	return EvaluateSized(t, buffers, nil)
}

// WireDelay returns the Elmore delay of a wire of length l loaded by
// downstream capacitance load, under the tree's wire parasitics — the
// amount the wire operation subtracts from T.
func (t *Tree) WireDelay(l, load float64) float64 {
	return t.Wire.R*l*load + 0.5*t.Wire.R*t.Wire.C*l*l
}
