// Package rctree provides the distributed RC routing-tree substrate the
// buffer inserter operates on: tree topology with sinks, Steiner points and
// a driver, per-edge wire lengths with π-model parasitics, legal buffer
// positions, Elmore-delay evaluation of a buffered tree, and a plain-text
// interchange format.
//
// Units follow the repo convention: µm, fF, kΩ, ps (1 kΩ·fF = 1 ps).
package rctree

import (
	"fmt"

	"vabuf/internal/geom"
)

// NodeID indexes a node within its Tree. IDs are dense, assigned in
// creation order.
type NodeID int32

// NoNode is the nil NodeID (e.g. the root's parent).
const NoNode NodeID = -1

// Kind distinguishes the three node roles.
type Kind uint8

// Node kinds.
const (
	// KindDriver is the net's source; exactly one per tree, always the root.
	KindDriver Kind = iota
	// KindSink is a leaf with a capacitive load and a required arrival time.
	KindSink
	// KindSteiner is an internal branching or wiring point.
	KindSteiner
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDriver:
		return "driver"
	case KindSink:
		return "sink"
	case KindSteiner:
		return "steiner"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// WireParams holds per-unit-length interconnect parasitics.
type WireParams struct {
	// R is wire sheet resistance per unit length, kΩ/µm.
	R float64
	// C is wire capacitance per unit length, fF/µm.
	C float64
}

// DefaultWire is a 65 nm-flavoured global wire: 0.1 Ω/µm and 0.2 fF/µm.
var DefaultWire = WireParams{R: 1e-4, C: 0.2}

// Node is one vertex of the routing tree.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	Loc  geom.Point
	// Parent is NoNode for the root. WireLen is the routed length of the
	// edge from this node up to Parent, in µm (0 for the root).
	Parent  NodeID
	WireLen float64
	// Children lists direct downstream nodes in insertion order.
	Children []NodeID
	// CapLoad (fF) and RAT (ps) are meaningful for sinks only.
	CapLoad float64
	RAT     float64
	// BufferOK marks a legal buffer position. The root driver is never a
	// legal position.
	BufferOK bool
}

// Tree is a rooted RC routing tree.
type Tree struct {
	Nodes []Node
	Root  NodeID
	Wire  WireParams
	// DriverR is the output resistance of the root driver, kΩ. The final
	// RAT at the driver includes the driver delay DriverR·L_root.
	DriverR float64
}

// New creates a tree containing only a driver node at loc.
func New(wire WireParams, driverR float64, loc geom.Point) *Tree {
	t := &Tree{Wire: wire, DriverR: driverR, Root: 0}
	t.Nodes = append(t.Nodes, Node{
		ID:     0,
		Kind:   KindDriver,
		Name:   "drv",
		Loc:    loc,
		Parent: NoNode,
	})
	return t
}

// AddSteiner appends an internal node under parent, connected by a wire of
// the given length, and returns its ID. Steiner nodes are legal buffer
// positions.
func (t *Tree) AddSteiner(parent NodeID, loc geom.Point, wireLen float64) NodeID {
	return t.add(Node{
		Kind:     KindSteiner,
		Loc:      loc,
		Parent:   parent,
		WireLen:  wireLen,
		BufferOK: true,
	})
}

// AddSink appends a sink under parent and returns its ID. Sinks are legal
// buffer positions (a buffer may be placed directly at a sink's input).
func (t *Tree) AddSink(parent NodeID, loc geom.Point, wireLen, capLoad, rat float64) NodeID {
	return t.add(Node{
		Kind:     KindSink,
		Loc:      loc,
		Parent:   parent,
		WireLen:  wireLen,
		CapLoad:  capLoad,
		RAT:      rat,
		BufferOK: true,
	})
}

func (t *Tree) add(n Node) NodeID {
	n.ID = NodeID(len(t.Nodes))
	if n.Name == "" {
		n.Name = fmt.Sprintf("n%d", n.ID)
	}
	t.Nodes = append(t.Nodes, n)
	t.Nodes[n.Parent].Children = append(t.Nodes[n.Parent].Children, n.ID)
	return n.ID
}

// Node returns a pointer to the node with the given ID.
func (t *Tree) Node(id NodeID) *Node { return &t.Nodes[id] }

// Len returns the number of nodes including the driver.
func (t *Tree) Len() int { return len(t.Nodes) }

// NumSinks counts sink nodes.
func (t *Tree) NumSinks() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].Kind == KindSink {
			n++
		}
	}
	return n
}

// NumBufferPositions counts legal buffer positions.
func (t *Tree) NumBufferPositions() int {
	n := 0
	for i := range t.Nodes {
		if t.Nodes[i].BufferOK {
			n++
		}
	}
	return n
}

// Sinks returns the IDs of all sink nodes in ID order.
func (t *Tree) Sinks() []NodeID {
	var out []NodeID
	for i := range t.Nodes {
		if t.Nodes[i].Kind == KindSink {
			out = append(out, t.Nodes[i].ID)
		}
	}
	return out
}

// TotalWireLength sums every edge length, in µm.
func (t *Tree) TotalWireLength() float64 {
	s := 0.0
	for i := range t.Nodes {
		s += t.Nodes[i].WireLen
	}
	return s
}

// PostOrder returns all node IDs so every node appears after all of its
// children (the reverse-topological traversal order of the DP).
func (t *Tree) PostOrder() []NodeID {
	out := make([]NodeID, 0, len(t.Nodes))
	type frame struct {
		id    NodeID
		child int
	}
	stack := []frame{{t.Root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := t.Nodes[f.id].Children
		if f.child < len(kids) {
			next := kids[f.child]
			f.child++
			stack = append(stack, frame{next, 0})
			continue
		}
		out = append(out, f.id)
		stack = stack[:len(stack)-1]
	}
	return out
}

// Validate checks structural invariants: a single driver root, consistent
// parent/child links, sinks as leaves, non-negative wire lengths, full
// reachability, and sane electrical values. It returns the first problem
// found.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("rctree: empty tree")
	}
	if t.Root < 0 || int(t.Root) >= len(t.Nodes) {
		return fmt.Errorf("rctree: root %d out of range", t.Root)
	}
	root := t.Nodes[t.Root]
	if root.Kind != KindDriver {
		return fmt.Errorf("rctree: root %d is %v, want driver", t.Root, root.Kind)
	}
	if root.Parent != NoNode {
		return fmt.Errorf("rctree: root has parent %d", root.Parent)
	}
	if root.BufferOK {
		return fmt.Errorf("rctree: root driver marked as buffer position")
	}
	if t.Wire.R <= 0 || t.Wire.C <= 0 {
		return fmt.Errorf("rctree: non-positive wire parasitics %+v", t.Wire)
	}
	if t.DriverR < 0 {
		return fmt.Errorf("rctree: negative driver resistance %g", t.DriverR)
	}
	drivers := 0
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("rctree: node at index %d has ID %d", i, n.ID)
		}
		switch n.Kind {
		case KindDriver:
			drivers++
		case KindSink:
			if len(n.Children) != 0 {
				return fmt.Errorf("rctree: sink %d has %d children", n.ID, len(n.Children))
			}
			if n.CapLoad < 0 {
				return fmt.Errorf("rctree: sink %d has negative load %g", n.ID, n.CapLoad)
			}
		case KindSteiner:
			if len(n.Children) == 0 {
				return fmt.Errorf("rctree: steiner %d is a leaf", n.ID)
			}
		default:
			return fmt.Errorf("rctree: node %d has unknown kind %d", n.ID, n.Kind)
		}
		if n.ID != t.Root {
			if n.Parent < 0 || int(n.Parent) >= len(t.Nodes) {
				return fmt.Errorf("rctree: node %d parent %d out of range", n.ID, n.Parent)
			}
			if n.WireLen < 0 {
				return fmt.Errorf("rctree: node %d has negative wire length %g", n.ID, n.WireLen)
			}
			found := false
			for _, c := range t.Nodes[n.Parent].Children {
				if c == n.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("rctree: node %d missing from parent %d child list", n.ID, n.Parent)
			}
		}
	}
	if drivers != 1 {
		return fmt.Errorf("rctree: %d driver nodes, want exactly 1", drivers)
	}
	if got := len(t.PostOrder()); got != len(t.Nodes) {
		return fmt.Errorf("rctree: %d of %d nodes reachable from root", got, len(t.Nodes))
	}
	return nil
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		Nodes:   make([]Node, len(t.Nodes)),
		Root:    t.Root,
		Wire:    t.Wire,
		DriverR: t.DriverR,
	}
	copy(out.Nodes, t.Nodes)
	for i := range out.Nodes {
		if ch := t.Nodes[i].Children; ch != nil {
			out.Nodes[i].Children = append([]NodeID(nil), ch...)
		}
	}
	return out
}

// BoundingBox returns the bounding box of all node locations.
func (t *Tree) BoundingBox() geom.Rect {
	pts := make([]geom.Point, len(t.Nodes))
	for i := range t.Nodes {
		pts[i] = t.Nodes[i].Loc
	}
	return geom.BoundingBox(pts)
}
