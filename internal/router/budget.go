package router

// Retry budget. Every retry the router sends — a failover hop after the
// first attempt, a hedged duplicate, a synchronous peer lookup, an async
// peer fill — is traffic the client did not send. Under a partial outage
// that extra traffic is exactly what turns a brownout into a retry storm:
// each backend failure mints more requests against the survivors. The
// budget bounds it Finagle-style: each backend has a token bucket that
// earns a fraction of a token (the ratio, default 10%) for every *first*
// attempt routed to it and pays one whole token for every extra request
// sent to it. When a bucket is dry the router stops manufacturing
// traffic for that backend and surfaces the best answer it already has.
//
// Buckets start full (at the burst cap) so a fresh router can still fail
// over before any credit has accrued, and they are keyed by backend URL
// like every other piece of router state, so membership churn never
// renumbers anyone's balance.

import "sync"

// retryBudget is the per-backend token-bucket set. A nil *retryBudget
// (budget disabled by config) allows everything.
type retryBudget struct {
	mu     sync.Mutex
	ratio  float64 // tokens credited per first attempt
	burst  float64 // bucket cap, also the initial balance
	tokens map[string]float64
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	return &retryBudget{
		ratio:  ratio,
		burst:  float64(burst),
		tokens: make(map[string]float64),
	}
}

// bucket returns the balance entry of a backend, creating it full.
// Callers must hold b.mu.
func (b *retryBudget) bucket(url string) float64 {
	t, ok := b.tokens[url]
	if !ok {
		t = b.burst
		b.tokens[url] = t
	}
	return t
}

// credit earns ratio tokens for one first attempt routed to url.
func (b *retryBudget) credit(url string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	t := b.bucket(url) + b.ratio
	if t > b.burst {
		t = b.burst
	}
	b.tokens[url] = t
	b.mu.Unlock()
}

// spend pays one token for an extra request (retry, hedge, lookup,
// fill) about to be sent to url, reporting false when the bucket is dry
// — the caller must not send.
func (b *retryBudget) spend(url string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.bucket(url)
	if t < 1 {
		return false
	}
	b.tokens[url] = t - 1
	return true
}

// retire forgets a backend that left the ring.
func (b *retryBudget) retire(url string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	delete(b.tokens, url)
	b.mu.Unlock()
}
