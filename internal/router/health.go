package router

// Health probing. A background poller per backend hits GET /readyz on a
// jittered interval (so a fleet of routers never probes in lockstep) and
// applies hysteresis: consecutive failures mark a backend down,
// consecutive successes bring it back, and a single flapping probe moves
// nothing. A failed *proxy* attempt is stronger evidence than a failed
// probe — the backend just dropped a real request — so it marks the
// backend down immediately and kicks an out-of-band probe, which is what
// bounds failover latency to at most one probe interval after a kill.
//
// Membership is dynamic: add starts a poll loop for a new backend,
// remove stops and forgets one. State is keyed by backend URL, so a
// ring rebuild never renumbers anyone's health history.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// probeConfig sizes the poller. Zero values select the defaults.
type probeConfig struct {
	interval     time.Duration // base poll interval (default 2s, ±30% jitter)
	timeout      time.Duration // per-probe deadline (default 1s)
	failAfter    int           // consecutive probe failures to mark down (default 2)
	recoverAfter int           // consecutive probe successes to mark up (default 2)
}

func (c probeConfig) withDefaults() probeConfig {
	if c.interval <= 0 {
		c.interval = 2 * time.Second
	}
	if c.timeout <= 0 {
		c.timeout = time.Second
	}
	if c.failAfter <= 0 {
		c.failAfter = 2
	}
	if c.recoverAfter <= 0 {
		c.recoverAfter = 2
	}
	return c
}

// backendState is the prober's view of one backend.
type backendState struct {
	mu      sync.Mutex
	healthy bool
	fails   int // consecutive probe failures (while healthy)
	oks     int // consecutive probe successes (while down)
	// instance and epoch are learned from the /readyz body, so router
	// metrics can attribute backends without extra round trips.
	instance    string
	epoch       string
	lastErr     string
	probes      int64
	transitions int64
	lastProbe   time.Time
}

// readyzBody is the slice of the vabufd /readyz response the prober reads.
type readyzBody struct {
	Status   string `json:"status"`
	Instance string `json:"instance"`
	Epoch    string `json:"epoch"`
}

// probeEntry is one probed backend: its state plus the channels driving
// its poll loop.
type probeEntry struct {
	state *backendState
	// kick wakes the poll loop early: after a proxy error (re-confirm
	// the death quickly) and in tests.
	kick chan struct{}
	// stop ends the poll loop (backend removed, or prober closing).
	stop     chan struct{}
	stopOnce sync.Once
}

// prober runs one polling goroutine per current backend.
type prober struct {
	cfg    probeConfig
	client *http.Client

	mu      sync.Mutex
	entries map[string]*probeEntry // keyed by backend URL
	closed  bool
	wg      sync.WaitGroup
	// onTransition observes health flips (logging); may be nil.
	onTransition func(backend string, healthy bool, reason string)
}

func newProber(cfg probeConfig, client *http.Client,
	onTransition func(string, bool, string)) *prober {
	return &prober{
		cfg:          cfg.withDefaults(),
		client:       client,
		entries:      make(map[string]*probeEntry),
		onTransition: onTransition,
	}
}

// add starts probing a backend. A backend starts *down*: it takes no
// traffic until its first recoverAfter consecutive successful probes.
// Adding an already-probed backend is a no-op.
func (p *prober) add(url string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.entries[url] != nil {
		return
	}
	e := &probeEntry{
		state: &backendState{},
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	p.entries[url] = e
	p.wg.Add(1)
	go p.loop(url, e)
}

// remove stops probing a backend and forgets its state; healthy()
// answers false for it from now on. A no-op for unknown backends.
func (p *prober) remove(url string) {
	p.mu.Lock()
	e := p.entries[url]
	delete(p.entries, url)
	p.mu.Unlock()
	if e != nil {
		e.stopOnce.Do(func() { close(e.stop) })
	}
}

// close stops every poll loop and waits for them to exit.
func (p *prober) close() {
	p.mu.Lock()
	p.closed = true
	entries := p.entries
	p.entries = make(map[string]*probeEntry)
	p.mu.Unlock()
	for _, e := range entries {
		e.stopOnce.Do(func() { close(e.stop) })
	}
	p.wg.Wait()
}

// entry fetches the live entry of a backend (nil when unknown/removed).
func (p *prober) entry(url string) *probeEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.entries[url]
}

// urls snapshots the currently probed backends.
func (p *prober) urls() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.entries))
	for u := range p.entries {
		out = append(out, u)
	}
	return out
}

// loop probes one backend forever: immediately on start, then on the
// jittered interval, or earlier when kicked. It exits when the entry is
// stopped (backend removed or prober closed).
func (p *prober) loop(url string, e *probeEntry) {
	defer p.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		default:
		}
		p.probeOnce(url, e)
		// ±30% jitter decorrelates the probes of multiple routers (and of
		// this router's backends) so a fleet never sees probe bursts.
		d := time.Duration(float64(p.cfg.interval) * (0.7 + 0.6*rand.Float64()))
		t := time.NewTimer(d)
		select {
		case <-e.stop:
			t.Stop()
			return
		case <-e.kick:
			t.Stop()
		case <-t.C:
		}
	}
}

// probeOnce performs one /readyz probe and applies the hysteresis rules.
func (p *prober) probeOnce(url string, e *probeEntry) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		p.recordProbe(url, e, false, "", "", err.Error())
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.recordProbe(url, e, false, "", "", err.Error())
		return
	}
	defer resp.Body.Close()
	var body readyzBody
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&body) // identity fields are best-effort
	if resp.StatusCode != http.StatusOK {
		reason := body.Status
		if reason == "" {
			reason = resp.Status
		}
		p.recordProbe(url, e, false, body.Instance, body.Epoch, "readyz: "+reason)
		return
	}
	p.recordProbe(url, e, true, body.Instance, body.Epoch, "")
}

// recordProbe folds one probe outcome into the backend's state.
func (p *prober) recordProbe(url string, e *probeEntry, ok bool, instance, epoch, errMsg string) {
	st := e.state
	st.mu.Lock()
	st.probes++
	st.lastProbe = time.Now()
	if instance != "" {
		st.instance = instance
		st.epoch = epoch
	}
	var flipped bool
	var nowHealthy bool
	if ok {
		st.lastErr = ""
		st.fails = 0
		if !st.healthy {
			st.oks++
			if st.oks >= p.cfg.recoverAfter {
				st.healthy, st.oks = true, 0
				st.transitions++
				flipped, nowHealthy = true, true
			}
		}
	} else {
		st.lastErr = errMsg
		st.oks = 0
		if st.healthy {
			st.fails++
			if st.fails >= p.cfg.failAfter {
				st.healthy, st.fails = false, 0
				st.transitions++
				flipped, nowHealthy = true, false
			}
		}
	}
	st.mu.Unlock()
	if flipped && p.onTransition != nil {
		p.onTransition(url, nowHealthy, errMsg)
	}
}

// noteProxyError marks a backend down immediately — a dropped live
// request outranks probe hysteresis — and kicks its poll loop so
// recovery detection starts right away. A no-op for removed backends.
func (p *prober) noteProxyError(url string, err error) {
	e := p.entry(url)
	if e == nil {
		return
	}
	st := e.state
	st.mu.Lock()
	st.lastErr = err.Error()
	st.oks = 0
	st.fails = 0
	flipped := st.healthy
	if st.healthy {
		st.healthy = false
		st.transitions++
	}
	st.mu.Unlock()
	if flipped && p.onTransition != nil {
		p.onTransition(url, false, err.Error())
	}
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// healthy reports whether a backend currently takes traffic. Unknown
// (removed) backends answer false.
func (p *prober) healthy(url string) bool {
	e := p.entry(url)
	if e == nil {
		return false
	}
	e.state.mu.Lock()
	defer e.state.mu.Unlock()
	return e.state.healthy
}

// reachable reports whether a backend's process is believed alive even
// if it is not taking traffic: healthy, or its last failure was an
// HTTP-level /readyz refusal (draining, warming, shedding) rather than
// a transport error. A reachable-but-down backend can still answer
// cheap read-only requests — the synchronous peer lookup uses this to
// rescue cached results from a draining owner without paying a connect
// timeout to a truly dead one.
func (p *prober) reachable(url string) bool {
	e := p.entry(url)
	if e == nil {
		return false
	}
	e.state.mu.Lock()
	defer e.state.mu.Unlock()
	return e.state.healthy || strings.HasPrefix(e.state.lastErr, "readyz:")
}

// anyHealthy reports whether at least one backend takes traffic — the
// router's own readiness condition.
func (p *prober) anyHealthy() bool {
	for _, url := range p.urls() {
		if p.healthy(url) {
			return true
		}
	}
	return false
}

// epochOf returns the last epoch learned from a backend's /readyz.
func (p *prober) epochOf(url string) string {
	e := p.entry(url)
	if e == nil {
		return ""
	}
	e.state.mu.Lock()
	defer e.state.mu.Unlock()
	return e.state.epoch
}

// stateSnapshot returns the metrics view of a backend's probe state
// (zero-valued for unknown backends, e.g. one added an instant ago).
func (p *prober) stateSnapshot(url string) map[string]any {
	e := p.entry(url)
	if e == nil {
		return map[string]any{
			"healthy": false, "instance": "", "epoch": "",
			"probes": int64(0), "transitions": int64(0), "last_error": "",
		}
	}
	return e.state.snapshot()
}

// snapshot returns the metrics view of one backend's probe state.
func (st *backendState) snapshot() map[string]any {
	st.mu.Lock()
	defer st.mu.Unlock()
	return map[string]any{
		"healthy":     st.healthy,
		"instance":    st.instance,
		"epoch":       st.epoch,
		"probes":      st.probes,
		"transitions": st.transitions,
		"last_error":  st.lastErr,
	}
}
