package router

// Health probing. A background poller per backend hits GET /readyz on a
// jittered interval (so a fleet of routers never probes in lockstep) and
// applies hysteresis: consecutive failures mark a backend down,
// consecutive successes bring it back, and a single flapping probe moves
// nothing. A failed *proxy* attempt is stronger evidence than a failed
// probe — the backend just dropped a real request — so it marks the
// backend down immediately and kicks an out-of-band probe, which is what
// bounds failover latency to at most one probe interval after a kill.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// probeConfig sizes the poller. Zero values select the defaults.
type probeConfig struct {
	interval     time.Duration // base poll interval (default 2s, ±30% jitter)
	timeout      time.Duration // per-probe deadline (default 1s)
	failAfter    int           // consecutive probe failures to mark down (default 2)
	recoverAfter int           // consecutive probe successes to mark up (default 2)
}

func (c probeConfig) withDefaults() probeConfig {
	if c.interval <= 0 {
		c.interval = 2 * time.Second
	}
	if c.timeout <= 0 {
		c.timeout = time.Second
	}
	if c.failAfter <= 0 {
		c.failAfter = 2
	}
	if c.recoverAfter <= 0 {
		c.recoverAfter = 2
	}
	return c
}

// backendState is the prober's view of one backend.
type backendState struct {
	mu      sync.Mutex
	healthy bool
	fails   int // consecutive probe failures (while healthy)
	oks     int // consecutive probe successes (while down)
	// instance and epoch are learned from the /readyz body, so router
	// metrics can attribute backends without extra round trips.
	instance    string
	epoch       string
	lastErr     string
	probes      int64
	transitions int64
	lastProbe   time.Time
}

// readyzBody is the slice of the vabufd /readyz response the prober reads.
type readyzBody struct {
	Status   string `json:"status"`
	Instance string `json:"instance"`
	Epoch    string `json:"epoch"`
}

// prober runs one polling goroutine per backend.
type prober struct {
	cfg      probeConfig
	backends []string
	client   *http.Client
	states   []*backendState
	// kick channels wake a backend's poll loop early: after a proxy
	// error (re-confirm the death quickly) and in tests.
	kick []chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	// onTransition observes health flips (logging); may be nil.
	onTransition func(backend string, healthy bool, reason string)
}

func newProber(backends []string, cfg probeConfig, client *http.Client,
	onTransition func(string, bool, string)) *prober {
	p := &prober{
		cfg:          cfg.withDefaults(),
		backends:     backends,
		client:       client,
		states:       make([]*backendState, len(backends)),
		kick:         make([]chan struct{}, len(backends)),
		stop:         make(chan struct{}),
		onTransition: onTransition,
	}
	for i := range backends {
		p.states[i] = &backendState{}
		p.kick[i] = make(chan struct{}, 1)
	}
	return p
}

// start launches the poll loops. Backends start *down*: the router's own
// /readyz answers 503 until the first successful probe proves at least
// one backend can take traffic.
func (p *prober) start() {
	for i := range p.backends {
		p.wg.Add(1)
		go p.loop(i)
	}
}

func (p *prober) close() {
	close(p.stop)
	p.wg.Wait()
}

// loop probes backend i forever: immediately on start, then on the
// jittered interval, or earlier when kicked.
func (p *prober) loop(i int) {
	defer p.wg.Done()
	for {
		p.probeOnce(i)
		// ±30% jitter decorrelates the probes of multiple routers (and of
		// this router's backends) so a fleet never sees probe bursts.
		d := time.Duration(float64(p.cfg.interval) * (0.7 + 0.6*rand.Float64()))
		t := time.NewTimer(d)
		select {
		case <-p.stop:
			t.Stop()
			return
		case <-p.kick[i]:
			t.Stop()
		case <-t.C:
		}
	}
}

// probeOnce performs one /readyz probe and applies the hysteresis rules.
func (p *prober) probeOnce(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.backends[i]+"/readyz", nil)
	if err != nil {
		p.recordProbe(i, false, "", "", err.Error())
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.recordProbe(i, false, "", "", err.Error())
		return
	}
	defer resp.Body.Close()
	var body readyzBody
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&body) // identity fields are best-effort
	if resp.StatusCode != http.StatusOK {
		reason := body.Status
		if reason == "" {
			reason = resp.Status
		}
		p.recordProbe(i, false, body.Instance, body.Epoch, "readyz: "+reason)
		return
	}
	p.recordProbe(i, true, body.Instance, body.Epoch, "")
}

// recordProbe folds one probe outcome into the backend's state.
func (p *prober) recordProbe(i int, ok bool, instance, epoch, errMsg string) {
	st := p.states[i]
	st.mu.Lock()
	st.probes++
	st.lastProbe = time.Now()
	if instance != "" {
		st.instance = instance
		st.epoch = epoch
	}
	var flipped bool
	var nowHealthy bool
	if ok {
		st.lastErr = ""
		st.fails = 0
		if !st.healthy {
			st.oks++
			if st.oks >= p.cfg.recoverAfter {
				st.healthy, st.oks = true, 0
				st.transitions++
				flipped, nowHealthy = true, true
			}
		}
	} else {
		st.lastErr = errMsg
		st.oks = 0
		if st.healthy {
			st.fails++
			if st.fails >= p.cfg.failAfter {
				st.healthy, st.fails = false, 0
				st.transitions++
				flipped, nowHealthy = true, false
			}
		}
	}
	st.mu.Unlock()
	if flipped && p.onTransition != nil {
		p.onTransition(p.backends[i], nowHealthy, errMsg)
	}
}

// noteProxyError marks backend i down immediately — a dropped live
// request outranks probe hysteresis — and kicks its poll loop so
// recovery detection starts right away.
func (p *prober) noteProxyError(i int, err error) {
	st := p.states[i]
	st.mu.Lock()
	st.lastErr = err.Error()
	st.oks = 0
	st.fails = 0
	flipped := st.healthy
	if st.healthy {
		st.healthy = false
		st.transitions++
	}
	st.mu.Unlock()
	if flipped && p.onTransition != nil {
		p.onTransition(p.backends[i], false, err.Error())
	}
	select {
	case p.kick[i] <- struct{}{}:
	default:
	}
}

// healthy reports whether backend i currently takes traffic.
func (p *prober) healthy(i int) bool {
	st := p.states[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.healthy
}

// anyHealthy reports whether at least one backend takes traffic — the
// router's own readiness condition.
func (p *prober) anyHealthy() bool {
	for i := range p.states {
		if p.healthy(i) {
			return true
		}
	}
	return false
}

// epochOf returns the last epoch learned from backend i's /readyz.
func (p *prober) epochOf(i int) string {
	st := p.states[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch
}

// snapshot returns the metrics view of backend i's probe state.
func (st *backendState) snapshot() map[string]any {
	st.mu.Lock()
	defer st.mu.Unlock()
	return map[string]any{
		"healthy":     st.healthy,
		"instance":    st.instance,
		"epoch":       st.epoch,
		"probes":      st.probes,
		"transitions": st.transitions,
		"last_error":  st.lastErr,
	}
}
