package router

// Synchronous peer lookup. The async peer fill (fill.go) re-warms a
// cache *eventually*; this path rescues the very first request after a
// key changed hands. Two events move a key: a ring rebuild reassigned
// it to a different backend, or its owner died and a failover successor
// is standing in. Either way some *other* backend very likely still
// holds the computed result — so before letting the new target compute
// cold, the router asks that backend's cache directly (POST
// /v1/cache/lookup: fingerprint in, cached result or 404 out) with a
// tight deadline. A hit is served to the client verbatim and replayed
// to the target through the normal async fill; a miss, error, or
// timeout falls through to the normal proxy path, so the lookup can
// only ever add bounded latency, never an error.
//
// Only the single-request endpoints (insert, yield) consult peers:
// batch requests amortize computation across items (a sub-batch lookup
// fan-out would multiply tail latency for a cache optimization), and a
// stream's value is the progress events, which a cache hit cannot
// replay. This tradeoff is documented in DESIGN.md §11.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"vabuf/internal/server"
)

// lookupCandidate picks the backend whose cache most plausibly holds
// fp's result when `target` is about to serve it, or "" when there is
// no better place to ask than the target itself.
func lookupCandidate(mem *membership, fp, target string) string {
	// A rebuild moved the key: its previous owner (old ring) differs
	// from the target and is still a member. Consulted only within the
	// post-rebuild window — past it the fills have warmed the new
	// owners and the old entry is just an LRU eviction candidate.
	if mem.prev != nil && time.Now().Before(mem.prevExpires) {
		if prev := mem.prev.owner(fp); prev != target && mem.member[prev] {
			return prev
		}
	}
	// Failover: the current ring's owner is not the backend about to
	// serve (it is down or draining) — its cache is the warm one.
	if owner := mem.ring.owner(fp); owner != target {
		return owner
	}
	return ""
}

// peerLookup asks the candidate backend for fp's cached result and
// returns the proxied answer on a hit, nil otherwise. The candidate
// must be reachable (healthy, or refusing /readyz at the HTTP level —
// e.g. draining — which still answers read-only lookups); a
// transport-dead backend is not worth a connect timeout.
func (rt *Router) peerLookup(ctx context.Context, mem *membership, kind, fp, target string, reqBody []byte) *attempt {
	if rt.cfg.LookupTimeout < 0 {
		return nil
	}
	cand := lookupCandidate(mem, fp, target)
	if cand == "" || cand == target || !rt.prober.reachable(cand) {
		return nil
	}
	// A peer lookup is manufactured traffic against the candidate; when
	// its budget is dry the target just computes cold.
	if !rt.spendRetry(cand) {
		return nil
	}
	rt.met.recordAttempt(cand)
	payload, err := json.Marshal(server.CacheLookupRequest{
		Kind: kind,
		// The lookup carries the *target's* epoch: the answer must be
		// one the target itself would compute, and the candidate 409s
		// anything from another library generation.
		Epoch:   rt.prober.epochOf(target),
		Request: json.RawMessage(reqBody),
	})
	if err != nil {
		return nil
	}
	lctx, cancel := context.WithTimeout(ctx, rt.cfg.LookupTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(lctx, http.MethodPost,
		cand+"/v1/cache/lookup", bytes.NewReader(payload))
	if err != nil {
		rt.met.recordLookup(cand, lookupError)
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.met.recordLookup(cand, lookupError)
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxRequestBytes))
	if err != nil {
		rt.met.recordLookup(cand, lookupError)
		return nil
	}
	switch resp.StatusCode {
	case http.StatusOK:
		rt.met.recordLookup(cand, lookupHit)
		return &attempt{backend: cand, status: http.StatusOK, header: resp.Header, body: body}
	case http.StatusNotFound:
		rt.met.recordLookup(cand, lookupMiss)
		return nil
	default:
		// 409 (epoch mismatch), 400, 5xx — all non-answers.
		rt.met.recordLookup(cand, lookupError)
		return nil
	}
}
