package router

// Churn tests: ring membership changes at runtime, synchronous peer
// lookup, and the regression tests for the cold-start, head-of-line,
// and gather-error bugs.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vabuf/internal/server"
)

// newTestRouterCfg is newTestRouter with a config hook, for tests that
// need slower probes or different queue behavior.
func newTestRouterCfg(t *testing.T, fleet []*fleetBackend, mut func(*Config)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Backends:      fleetURLs(fleet),
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailAfter:     1,
		RecoverAfter:  1,
		FillWait:      10 * time.Second,
		Logf:          func(string, ...any) {},
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

// routerLookups reads the router's /metrics lookups section.
func routerLookups(t *testing.T, ts *httptest.Server, field string) float64 {
	t.Helper()
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	lk, ok := met["lookups"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics has no lookups section")
	}
	v, _ := lk[field].(float64)
	return v
}

// backendStat reads one float field from a nested backend /metrics
// path. Transport errors (e.g. a pooled connection that died while the
// backend was "killed") answer -1 so waitFor conditions just retry.
func backendStat(t *testing.T, b *fleetBackend, section, field string) float64 {
	t.Helper()
	resp, err := http.Get(b.ts.URL + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var met map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		return -1
	}
	sec, ok := met[section].(map[string]any)
	if !ok {
		return 0
	}
	v, _ := sec[field].(float64)
	return v
}

// TestResizeServesMovedKeyFromOldOwner is the churn acceptance test:
// grow a 2-backend ring to 3 under concurrent load — every request
// answers 200 throughout — and a key whose owner changed is served from
// the old owner's cache via the synchronous peer lookup (not
// recomputed), while the async fill warms the new owner.
func TestResizeServesMovedKeyFromOldOwner(t *testing.T) {
	fleet := newFleet(t, 3, "")
	rt, ts := newTestRouter(t, fleet[:2])

	// Warm a spread of keys through the 2-backend ring and remember
	// each one's answer.
	const nKeys = 20
	reqs := make([]server.InsertRequest, nKeys)
	warm := make([][]byte, nKeys)
	oldOwner := make([]int, nKeys)
	for i := range reqs {
		reqs[i] = server.InsertRequest{Tree: treeText(t, int64(100+i)), Algo: "nom"}
		oldOwner[i] = ownerOf(t, rt, fleet, reqs[i])
		resp, raw := postJSON(t, ts.URL+"/v1/insert", reqs[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm insert %d: status %d: %s", i, resp.StatusCode, raw)
		}
		warm[i] = raw
	}

	// Rebuild the ring to 3 backends while warm keys are being
	// re-requested concurrently: no request may fail across the swap.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 8; n++ {
				i := (w*8 + n) % nKeys
				resp, raw := postJSON(t, ts.URL+"/v1/insert", reqs[i])
				if resp.StatusCode != http.StatusOK {
					errs <- string(raw)
				}
			}
		}(w)
	}
	if err := rt.Reload(fleetURLs(fleet)); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("request failed during resize: %s", e)
	}
	if n := rt.met.ringRebuildCount(); n != 2 {
		t.Errorf("ring_rebuilds = %d after one reload, want 2 (boot + reload)", n)
	}
	waitFor(t, "new backend healthy", func() bool { return rt.prober.healthy(fleet[2].ts.URL) })

	// Find a key the rebuild moved to the new backend.
	moved := -1
	for i := range reqs {
		if ownerOf(t, rt, fleet, reqs[i]) == 2 {
			moved = i
			break
		}
	}
	if moved < 0 {
		t.Fatalf("no key of %d moved to the new backend — ring did not rebalance", nKeys)
	}

	hitsBefore := rt.met.lookupHitCount()
	resp, raw := postJSON(t, ts.URL+"/v1/insert", reqs[moved])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moved-key insert: status %d: %s", resp.StatusCode, raw)
	}
	// Served by the *old* owner's cache, byte-identical, via lookup.
	if inst := resp.Header.Get("Vabuf-Instance"); inst != fleet[oldOwner[moved]].name {
		t.Errorf("moved key served by %q, want previous owner %q (lookup rescue)",
			inst, fleet[oldOwner[moved]].name)
	}
	if string(raw) != string(warm[moved]) {
		t.Error("lookup-served answer differs from the original computation")
	}
	if hits := rt.met.lookupHitCount(); hits <= hitsBefore {
		t.Errorf("lookup hits = %d, want > %d", hits, hitsBefore)
	}
	if h := routerLookups(t, ts, "hits"); h < 1 {
		t.Errorf("/metrics lookups.hits = %g, want >= 1", h)
	}
	if h := backendStat(t, fleet[oldOwner[moved]], "peer_lookups", "hits"); h < 1 {
		t.Errorf("old owner peer_lookups.hits = %g, want >= 1", h)
	}
	// The new owner gets warmed by the async fill, never recomputing.
	waitFor(t, "fill to warm the new owner", func() bool {
		return resultCacheStat(t, fleet[2], "size") >= 1
	})
	if runs := backendStat(t, fleet[2], "pruning", "runs"); runs != 0 {
		t.Errorf("new owner ran %g computations; the moved key should arrive via lookup+fill", runs)
	}
	// Within the lookup window, repeats keep being rescued by the old
	// owner; once it closes the moved key routes to the new owner and
	// its fill-warmed cache serves directly.
	rt.expirePrev()
	resp2, raw2 := postJSON(t, ts.URL+"/v1/insert", reqs[moved])
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-fill repeat: status %d: %s", resp2.StatusCode, raw2)
	}
	if inst := resp2.Header.Get("Vabuf-Instance"); inst != fleet[2].name {
		t.Errorf("post-fill repeat served by %q, want new owner %q", inst, fleet[2].name)
	}
}

// TestReloadManagesProbers: a reload starts probers for added backends
// and retires removed ones; a same-set reload is a no-op.
func TestReloadManagesProbers(t *testing.T) {
	fleet := newFleet(t, 3, "")
	rt, _ := newTestRouter(t, fleet[:2])
	urls := fleetURLs(fleet)

	has := func(url string) bool {
		for _, u := range rt.prober.urls() {
			if u == url {
				return true
			}
		}
		return false
	}
	if has(urls[2]) {
		t.Fatal("prober watching a backend that is not a member yet")
	}
	if err := rt.Reload(urls); err != nil {
		t.Fatal(err)
	}
	if !has(urls[2]) {
		t.Error("reload did not start a prober for the added backend")
	}
	// Same set, different order: no-op, no rebuild counted.
	before := rt.met.ringRebuildCount()
	if err := rt.Reload([]string{urls[2], urls[0], urls[1]}); err != nil {
		t.Fatal(err)
	}
	if n := rt.met.ringRebuildCount(); n != before {
		t.Errorf("same-set reload bumped ring_rebuilds %d -> %d", before, n)
	}
	// Shrink: the removed backend's prober stops and healthy() is false.
	if err := rt.Reload(urls[1:]); err != nil {
		t.Fatal(err)
	}
	if has(urls[0]) {
		t.Error("reload did not stop the removed backend's prober")
	}
	if rt.prober.healthy(urls[0]) {
		t.Error("removed backend still reports healthy")
	}
	// An empty reload is rejected and changes nothing.
	if err := rt.Reload(nil); err == nil {
		t.Error("empty reload accepted")
	}
	if got := rt.Backends(); len(got) != 2 {
		t.Errorf("membership = %v after rejected reload, want 2 backends", got)
	}
}

// TestAdminBackendsEndpoint: the HTTP twin of SIGHUP reload, gated on
// EnableAdmin.
func TestAdminBackendsEndpoint(t *testing.T) {
	fleet := newFleet(t, 3, "")
	_, plain := newTestRouter(t, fleet[:2])
	resp, _ := postJSON(t, plain.URL+"/admin/backends",
		adminBackendsRequest{Backends: fleetURLs(fleet)})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("admin endpoint without EnableAdmin answered %d, want 404", resp.StatusCode)
	}

	rt, ts := newTestRouterCfg(t, fleet[:2], func(c *Config) { c.EnableAdmin = true })
	var got adminBackendsResult
	getJSON(t, ts.URL+"/admin/backends", &got)
	if len(got.Backends) != 2 || got.RingRebuilds != 1 {
		t.Errorf("GET /admin/backends = %+v, want 2 backends and 1 rebuild", got)
	}
	resp, raw := postJSON(t, ts.URL+"/admin/backends",
		adminBackendsRequest{Backends: fleetURLs(fleet)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /admin/backends: status %d: %s", resp.StatusCode, raw)
	}
	getJSON(t, ts.URL+"/admin/backends", &got)
	if len(got.Backends) != 3 || got.RingRebuilds != 2 {
		t.Errorf("after resize: %+v, want 3 backends and 2 rebuilds", got)
	}
	if rt.met.ringRebuildCount() != 2 {
		t.Errorf("ring_rebuilds = %d, want 2", rt.met.ringRebuildCount())
	}
	resp, _ = postJSON(t, ts.URL+"/admin/backends", adminBackendsRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty membership accepted with status %d, want 400", resp.StatusCode)
	}
}

// TestAnyBackendColdStart is the regression test for the cold-start 503:
// before any backend has probed healthy (here: hysteresis needs 3
// successes but only the boot probe has run), GET /v1/benchmarks must
// still be proxied by trying every backend rather than answering 503.
func TestAnyBackendColdStart(t *testing.T) {
	fleet := newFleet(t, 2, "")
	rt, ts := newTestRouterCfg(t, fleet, func(c *Config) {
		c.ProbeInterval = time.Hour // only the boot probe ever runs
		c.RecoverAfter = 3          // which can never reach healthy
	})
	if rt.prober.anyHealthy() {
		t.Fatal("test premise broken: a backend probed healthy")
	}
	resp, raw := postJSON(t, ts.URL+"/v1/insert",
		server.InsertRequest{Tree: treeText(t, 40), Algo: "nom"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cold-start insert status = %d, want 200: %s", resp.StatusCode, raw)
	}
	gr, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Body.Close()
	if gr.StatusCode != http.StatusOK {
		t.Errorf("cold-start GET /v1/benchmarks = %d, want 200", gr.StatusCode)
	}
}

// TestFillNoHeadOfLineBlocking is the regression test for the fill
// queue: with fills pending for two down owners, recovering one owner
// must land its fill promptly even though the other owner — whose job
// was enqueued first — stays down for the whole FillWait.
func TestFillNoHeadOfLineBlocking(t *testing.T) {
	fleet := newFleet(t, 3, "")
	rt, ts := newTestRouterCfg(t, fleet, func(c *Config) {
		c.FillWait = 5 * time.Minute // a blocked queue would stall far past the test deadline
	})
	waitFor(t, "router ready", func() bool { return rt.prober.anyHealthy() })

	// Two requests with two distinct owners.
	reqA := server.InsertRequest{Tree: treeText(t, 50), Algo: "nom"}
	ownerA := ownerOf(t, rt, fleet, reqA)
	var reqB server.InsertRequest
	ownerB := ownerA
	for seed := int64(51); ownerB == ownerA; seed++ {
		reqB = server.InsertRequest{Tree: treeText(t, seed), Algo: "nom"}
		ownerB = ownerOf(t, rt, fleet, reqB)
	}

	// Kill both owners; serve both requests via failover, queueing a
	// fill per owner — A's strictly first.
	fleet[ownerA].down.Store(true)
	fleet[ownerB].down.Store(true)
	waitFor(t, "both owners down", func() bool {
		return !rt.prober.healthy(fleet[ownerA].ts.URL) && !rt.prober.healthy(fleet[ownerB].ts.URL)
	})
	for _, req := range []server.InsertRequest{reqA, reqB} {
		resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover insert: status %d: %s", resp.StatusCode, raw)
		}
	}
	waitFor(t, "both fills queued", func() bool { return rt.filler.backlog() >= 2 })

	// Recover only B. Its fill must not wait behind A's.
	fleet[ownerB].down.Store(false)
	waitFor(t, "B's fill delivered while A is still down", func() bool {
		return backendStat(t, fleet[ownerB], "peer_fills", "accepted") >= 1
	})
	if rt.filler.backlog() < 1 {
		t.Error("A's fill vanished from the queue instead of waiting for recovery")
	}
	// A's fill is merely waiting, not lost: recovery delivers it too.
	fleet[ownerA].down.Store(false)
	waitFor(t, "A's fill delivered after recovery", func() bool {
		return backendStat(t, fleet[ownerA], "peer_fills", "accepted") >= 1
	})
}

// TestGatherGroupDistinguishesBadBody: the regression test for the
// misleading 502 — an unparsable sub-batch body must not be reported as
// an item-count mismatch ("0 items for N sent").
func TestGatherGroupDistinguishesBadBody(t *testing.T) {
	rt := &Router{cfg: Config{}.withDefaults(), met: newRMetrics()}
	items := []preparedItem{{index: 0, owner: "http://a"}, {index: 1, owner: "http://a"}}

	out := rawBatchResult{Items: make([]rawBatchItem, 2)}
	rt.gatherGroup("insert", "/v1/insert:batch", &out,
		&attempt{backend: "http://a", status: 200, header: http.Header{}, body: []byte("<html>gateway error</html>")},
		items)
	for i, it := range out.Items {
		if it.Status != http.StatusBadGateway {
			t.Fatalf("item %d status = %d, want 502", i, it.Status)
		}
		if !strings.Contains(it.Error, "unparsable") {
			t.Errorf("item %d error %q should name the unparsable body", i, it.Error)
		}
		if strings.Contains(it.Error, "0 items") {
			t.Errorf("item %d error %q misreports a corrupt body as a count mismatch", i, it.Error)
		}
	}

	out = rawBatchResult{Items: make([]rawBatchItem, 2)}
	rt.gatherGroup("insert", "/v1/insert:batch", &out,
		&attempt{backend: "http://a", status: 200, header: http.Header{},
			body: []byte(`{"items":[{"index":0,"status":200}],"succeeded":1,"errors":0}`)},
		items)
	for i, it := range out.Items {
		if it.Status != http.StatusBadGateway {
			t.Fatalf("item %d status = %d, want 502", i, it.Status)
		}
		if !strings.Contains(it.Error, "1 items for 2 sent") {
			t.Errorf("item %d error %q should report the 1-for-2 count mismatch", i, it.Error)
		}
	}
}

// TestRouterCloseMidStream: closing the router while a proxied stream is
// in flight must drain the prober and filler goroutines — no leak under
// -race. The backend streams NDJSON until its client disappears.
func TestRouterCloseMidStream(t *testing.T) {
	baseline := runtime.NumGoroutine()

	streaming := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/readyz"):
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]string{"status": "ready", "instance": "fake"})
		case strings.HasSuffix(r.URL.Path, "/v1/yield:stream"):
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			fl, _ := w.(http.Flusher)
			if fl != nil {
				fl.Flush() // push headers so the relay chain unblocks
			}
			select {
			case streaming <- struct{}{}:
			case <-r.Context().Done():
				return
			}
			for {
				if _, err := w.Write([]byte(`{"type":"progress"}` + "\n")); err != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
				select {
				case <-r.Context().Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	rt, err := New(Config{
		Backends:      []string{backend.URL},
		ProbeInterval: 25 * time.Millisecond,
		FailAfter:     1,
		RecoverAfter:  1,
		Logf:          func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	waitFor(t, "backend healthy", func() bool { return rt.prober.healthy(backend.URL) })

	body, err := json.Marshal(server.YieldRequest{
		InsertRequest: server.InsertRequest{Tree: treeText(t, 60), Algo: "nom"},
		MonteCarlo:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{}
	resp, err := client.Post(ts.URL+"/v1/yield:stream", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	<-streaming // the stream is live end to end

	// Close the router mid-stream: must return, not hang on the stream.
	closed := make(chan struct{})
	go func() { rt.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Router.Close hung while a stream was in flight")
	}
	resp.Body.Close()
	ts.Close()
	backend.Close()
	client.CloseIdleConnections()
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}

	waitFor(t, "goroutines to drain after Close", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}
