package router

// Hedged requests. Tail latency on the single-request endpoints is
// dominated by the occasional slow backend — a GC pause, a queue blip, a
// chaos-injected stall. Since insert and yield are idempotent pure
// computations (and the backends coalesce identical in-flight requests),
// the router may safely send a second copy of a request that is taking
// suspiciously long and serve whichever answer lands first. "Suspiciously
// long" adapts to the observed traffic: the hedge fires at the p95 of
// recent successful proxy latencies, floored by the configured
// HedgeAfter, so hedges stay rare (~5% of requests by construction) and
// never trigger on a uniformly slow workload profile. The duplicate
// spends a retry-budget token like any other manufactured request, and
// the losing arm is canceled the moment the winner commits.

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyWindow is the ring-buffer size of the hedge latency tracker.
const latencyWindow = 128

// latencyMinSamples is how many observations p95 needs before it trusts
// itself; below it the hedge delay falls back to the configured floor.
const latencyMinSamples = 16

// latencyTracker keeps a sliding window of successful proxy latencies
// and answers their p95 — the adaptive half of the hedge trigger.
type latencyTracker struct {
	mu      sync.Mutex
	samples [latencyWindow]time.Duration
	n       int // total observations (ring index = n % latencyWindow)
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.n%latencyWindow] = d
	t.n++
	t.mu.Unlock()
}

// p95 returns the 95th-percentile latency of the window, or 0 until
// enough samples have accrued.
func (t *latencyTracker) p95() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < latencyMinSamples {
		return 0
	}
	size := t.n
	if size > latencyWindow {
		size = latencyWindow
	}
	sorted := make([]time.Duration, size)
	copy(sorted, t.samples[:size])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (size*95+99)/100 - 1 // ⌈0.95·size⌉ - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// hedgeDelay is the adaptive hedge trigger: the observed p95, floored by
// the configured HedgeAfter so a cold tracker (or an unusually fast
// window) cannot make hedging aggressive.
func (rt *Router) hedgeDelay() time.Duration {
	d := rt.lat.p95()
	if d < rt.cfg.HedgeAfter {
		d = rt.cfg.HedgeAfter
	}
	return d
}

// retryable5xx reports a status worth retrying on another backend: the
// backend accepted the request and broke on it. 503/429 are saturation
// (handled separately), 504 is the request's own deadline expiring —
// retrying either elsewhere cannot help.
func retryable5xx(status int) bool {
	return status == http.StatusInternalServerError || status == http.StatusBadGateway
}

// armResult is the outcome of one hedge arm.
type armResult struct {
	att       *attempt
	backend   string
	secondary bool
}

// tryHedged serves one single-endpoint request with hedging: the primary
// goes out immediately; if no answer lands within hedgeDelay, a budgeted
// duplicate goes to the next usable backend and first conclusive answer
// wins, the loser canceled. Both arms failing falls back to the normal
// budgeted walk over the remaining candidates. The contract mirrors
// tryBackends: (served, saturated-fallback).
func (rt *Router) tryHedged(ctx context.Context, order []string, path string, payload []byte) (served, sat *attempt) {
	var cands []string
	for _, b := range order {
		if rt.prober.healthy(b) && !rt.breaker.isOpen(b) {
			cands = append(cands, b)
		}
	}
	if len(cands) < 2 {
		// Nothing to hedge against; the plain walk handles the
		// none-healthy fallback too.
		return rt.tryBackends(ctx, order, path, payload)
	}
	primary, secondary := cands[0], cands[1]

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	// Buffered to both arms' capacity: a losing arm finishing after the
	// winner returns parks its result here and its goroutine exits.
	results := make(chan armResult, 2)

	arm := func(actx context.Context, b string, sec bool) {
		rt.met.recordAttempt(b)
		t0 := time.Now()
		att, err := rt.post(actx, b, path, payload)
		if err != nil {
			// A canceled arm (winner landed, or the client went away) is
			// not backend evidence — only genuine faults mark it down.
			if actx.Err() == nil && ctx.Err() == nil {
				rt.prober.noteProxyError(b, err)
				rt.breaker.failure(b)
			}
			results <- armResult{backend: b, secondary: sec}
			return
		}
		switch {
		case saturated(att.status):
			// Saturation is back-pressure, not failure.
		case retryable5xx(att.status):
			rt.breaker.failure(b)
		default:
			rt.breaker.success(b)
			rt.lat.observe(time.Since(t0))
		}
		results <- armResult{att: att, backend: b, secondary: sec}
	}

	rt.budget.credit(primary)
	go arm(pctx, primary, false)
	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	pending, hedged := 1, false
	var failed *attempt
	for pending > 0 {
		select {
		case <-timer.C:
			if !hedged && rt.spendRetry(secondary) {
				hedged = true
				pending++
				rt.met.recordHedge()
				go arm(sctx, secondary, true)
			}
		case res := <-results:
			pending--
			switch {
			case res.att == nil:
				// transport failure; fall through to the next arm/walk
			case saturated(res.att.status):
				sat = res.att
			case retryable5xx(res.att.status):
				failed = res.att
			default:
				if res.secondary {
					rt.met.recordHedgeWin()
				}
				rt.met.recordProxied(res.backend)
				pcancel()
				scancel()
				return res.att, sat
			}
		case <-ctx.Done():
			return nil, sat
		}
	}
	// Every launched arm failed conclusively. Keep walking the untouched
	// candidates under the normal budget rules before surfacing the
	// failure the hedge already has in hand. When the primary died before
	// the hedge timer ever fired, the secondary was never launched — it
	// is still untouched and leads the fallback walk.
	rest := cands[2:]
	if !hedged {
		rest = cands[1:]
	}
	if len(rest) > 0 {
		if served, sat2 := rt.tryBackends(ctx, rest, path, payload); served != nil {
			return served, sat
		} else if sat2 != nil {
			sat = sat2
		}
	}
	if failed != nil {
		return failed, sat
	}
	return nil, sat
}
