package router

// Fleet integration tests: real internal/server instances behind
// httptest listeners, fronted by a real Router. Backends can be
// "killed" without losing their address — the wrapper hijacks and
// closes the connection, which the router sees as a transport error,
// exactly like a dead process behind a still-routable address.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vabuf"
	"vabuf/internal/server"
)

// fleetBackend is one vabufd-equivalent test instance with a kill switch.
type fleetBackend struct {
	name string
	srv  *server.Server
	ts   *httptest.Server
	down atomic.Bool
}

func (b *fleetBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if b.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close() // looks like a dead process, not a clean 5xx
				return
			}
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	b.srv.Handler().ServeHTTP(w, r)
}

// newFleet starts n backends named b0..b{n-1}, all with the given epoch.
func newFleet(t *testing.T, n int, epoch string) []*fleetBackend {
	t.Helper()
	fleet := make([]*fleetBackend, n)
	for i := range fleet {
		b := &fleetBackend{name: fmt.Sprintf("b%d", i)}
		b.srv = server.New(server.Config{
			Workers:  2,
			Instance: b.name,
			Epoch:    epoch,
		})
		b.ts = httptest.NewServer(b)
		t.Cleanup(func() {
			b.ts.Close()
			b.srv.Close()
		})
		fleet[i] = b
	}
	return fleet
}

func fleetURLs(fleet []*fleetBackend) []string {
	urls := make([]string, len(fleet))
	for i, b := range fleet {
		urls[i] = b.ts.URL
	}
	return urls
}

// newTestRouter fronts the fleet with fast probes (single-probe
// hysteresis, 25ms interval) so tests converge quickly.
func newTestRouter(t *testing.T, fleet []*fleetBackend) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(Config{
		Backends:      fleetURLs(fleet),
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
		FailAfter:     1,
		RecoverAfter:  1,
		FillWait:      10 * time.Second,
		Logf:          func(string, ...any) {}, // prober logs race test teardown
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	waitFor(t, "router ready", func() bool {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	return rt, ts
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func treeText(t *testing.T, seed int64) string {
	t.Helper()
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{
		Name: fmt.Sprintf("t%d", seed), Sinks: 8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vabuf.WriteTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("unmarshal %s: %v\n%s", url, err, raw)
	}
}

// resultCacheStat reads one field of a backend's result-cache metrics.
func resultCacheStat(t *testing.T, b *fleetBackend, field string) float64 {
	t.Helper()
	var met map[string]any
	getJSON(t, b.ts.URL+"/metrics", &met)
	result, ok := met["caches"].(map[string]any)["result"].(map[string]any)
	if !ok {
		return 0
	}
	v, _ := result[field].(float64)
	return v
}

// ownerOf computes the ring owner of a request the way the router does
// (normalize, fingerprint with the empty epoch) and returns its fleet
// index.
func ownerOf(t *testing.T, rt *Router, fleet []*fleetBackend, req server.InsertRequest) int {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	url := rt.mem.Load().ring.owner(req.Fingerprint(""))
	for i, b := range fleet {
		if b.ts.URL == url {
			return i
		}
	}
	t.Fatalf("ring owner %s is not a fleet member", url)
	return -1
}

// TestRouterRepeatHitsSameOwner: repeats of one request land on one
// backend (the ring owner), whose result cache answers the second call —
// the fleet behaves like one big cache.
func TestRouterRepeatHitsSameOwner(t *testing.T) {
	fleet := newFleet(t, 3, "")
	rt, ts := newTestRouter(t, fleet)
	req := server.InsertRequest{Tree: treeText(t, 1), Algo: "wid"}

	resp1, raw1 := postJSON(t, ts.URL+"/v1/insert", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first insert: status %d: %s", resp1.StatusCode, raw1)
	}
	inst1 := resp1.Header.Get("Vabuf-Instance")
	if inst1 == "" {
		t.Fatal("response missing Vabuf-Instance header")
	}
	owner := ownerOf(t, rt, fleet, req)
	if want := fleet[owner].name; inst1 != want {
		t.Errorf("request served by %s, ring owner is %s", inst1, want)
	}

	resp2, raw2 := postJSON(t, ts.URL+"/v1/insert", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second insert: status %d: %s", resp2.StatusCode, raw2)
	}
	if inst2 := resp2.Header.Get("Vabuf-Instance"); inst2 != inst1 {
		t.Errorf("repeat served by %s, first by %s — routing is not sticky", inst2, inst1)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("repeat answered different bytes than the original")
	}
	if hits := resultCacheStat(t, fleet[owner], "hits"); hits < 1 {
		t.Errorf("owner result cache hits = %g after a repeat, want >= 1", hits)
	}
	// The other backends never saw the request.
	for i, b := range fleet {
		if i == owner {
			continue
		}
		if size := resultCacheStat(t, b, "size"); size != 0 {
			t.Errorf("non-owner %s cached %g results", b.name, size)
		}
	}
}

// TestBatchScatterGatherParity: a mixed batch through the router answers
// item-for-item (order, statuses, partial failure) what a single backend
// answers.
func TestBatchScatterGatherParity(t *testing.T) {
	fleet := newFleet(t, 3, "")
	_, ts := newTestRouter(t, fleet)
	_, ref := newSingleBackend(t)

	batch := server.BatchInsertRequest{Items: []server.InsertRequest{
		{Tree: treeText(t, 10), Algo: "nom"},
		{Tree: treeText(t, 11), Algo: "bogus"}, // per-item 400
		{Tree: treeText(t, 12), Algo: "wid"},
		{Tree: treeText(t, 13), Algo: "d2d"},
	}}
	respR, rawR := postJSON(t, ts.URL+"/v1/insert:batch", batch)
	respS, rawS := postJSON(t, ref+"/v1/insert:batch", batch)
	if respR.StatusCode != http.StatusOK || respS.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status router=%d single=%d, want 200/200:\n%s\n%s",
			respR.StatusCode, respS.StatusCode, rawR, rawS)
	}
	var outR, outS server.BatchInsertResult
	if err := json.Unmarshal(rawR, &outR); err != nil {
		t.Fatalf("router batch response: %v\n%s", err, rawR)
	}
	if err := json.Unmarshal(rawS, &outS); err != nil {
		t.Fatal(err)
	}
	if outR.Succeeded != outS.Succeeded || outR.Errors != outS.Errors {
		t.Errorf("aggregate counts diverge: router %d/%d, single %d/%d",
			outR.Succeeded, outR.Errors, outS.Succeeded, outS.Errors)
	}
	if len(outR.Items) != len(batch.Items) {
		t.Fatalf("router returned %d items for %d sent", len(outR.Items), len(batch.Items))
	}
	for i := range outR.Items {
		r, s := outR.Items[i], outS.Items[i]
		if r.Index != i {
			t.Errorf("item %d came back with index %d — order not preserved", i, r.Index)
		}
		if r.Status != s.Status {
			t.Errorf("item %d status: router %d, single %d", i, r.Status, s.Status)
		}
		if (r.Result == nil) != (s.Result == nil) {
			t.Errorf("item %d result presence diverges", i)
		}
		if r.Result != nil && s.Result != nil && r.Result.NumBuffers != s.Result.NumBuffers {
			t.Errorf("item %d: router %d buffers, single %d", i, r.Result.NumBuffers, s.Result.NumBuffers)
		}
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	if fan := met["scatter_fanout"].(map[string]any); len(fan) == 0 {
		t.Error("scatter_fanout histogram empty after a batch")
	}
}

// newSingleBackend is the parity reference: one plain server instance.
func newSingleBackend(t *testing.T) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

// TestFailoverOnBackendKill: killing the owner mid-fleet reroutes its
// requests to the ring successor; the router counts the failover and
// recovery restores ownership.
func TestFailoverOnBackendKill(t *testing.T) {
	fleet := newFleet(t, 2, "")
	rt, ts := newTestRouter(t, fleet)
	req := server.InsertRequest{Tree: treeText(t, 2), Algo: "nom"}
	owner := ownerOf(t, rt, fleet, req)

	fleet[owner].down.Store(true)
	waitFor(t, "prober to mark owner down", func() bool { return !rt.prober.healthy(fleet[owner].ts.URL) })

	resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover insert: status %d: %s", resp.StatusCode, raw)
	}
	if inst := resp.Header.Get("Vabuf-Instance"); inst != fleet[1-owner].name {
		t.Errorf("failover served by %q, want successor %q", inst, fleet[1-owner].name)
	}
	if n := rt.met.failoversOf(fleet[owner].ts.URL); n < 1 {
		t.Errorf("owner failover count = %d, want >= 1", n)
	}

	// Recovery: ownership returns to the ring owner.
	fleet[owner].down.Store(false)
	waitFor(t, "prober to mark owner healthy", func() bool { return rt.prober.healthy(fleet[owner].ts.URL) })
	resp2, raw2 := postJSON(t, ts.URL+"/v1/insert", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery insert: status %d: %s", resp2.StatusCode, raw2)
	}
	if inst := resp2.Header.Get("Vabuf-Instance"); inst != fleet[owner].name {
		t.Errorf("post-recovery request served by %q, want owner %q", inst, fleet[owner].name)
	}
}

// TestRouterAllDown: with every backend dead the router answers 503
// (retryable) and its /readyz flips to 503.
func TestRouterAllDown(t *testing.T) {
	fleet := newFleet(t, 2, "")
	rt, ts := newTestRouter(t, fleet)
	for _, b := range fleet {
		b.down.Store(true)
	}
	waitFor(t, "all backends down", func() bool { return !rt.prober.anyHealthy() })

	resp, _ := postJSON(t, ts.URL+"/v1/insert",
		server.InsertRequest{Tree: treeText(t, 3), Algo: "nom"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("all-down insert status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("all-down 503 missing Retry-After")
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d with no healthy backends, want 503", rz.StatusCode)
	}
}

// TestPeerFillConvergence: a failover-served miss is replayed to the
// recovered owner, which then serves the repeat from its cache without
// recomputing.
func TestPeerFillConvergence(t *testing.T) {
	fleet := newFleet(t, 2, "")
	rt, ts := newTestRouter(t, fleet)
	req := server.InsertRequest{Tree: treeText(t, 4), Algo: "wid"}
	owner := ownerOf(t, rt, fleet, req)
	sibling := 1 - owner

	// Kill the owner before it ever sees the request: the sibling computes.
	fleet[owner].down.Store(true)
	waitFor(t, "owner down", func() bool { return !rt.prober.healthy(fleet[owner].ts.URL) })
	resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover insert: status %d: %s", resp.StatusCode, raw)
	}
	if inst := resp.Header.Get("Vabuf-Instance"); inst != fleet[sibling].name {
		t.Fatalf("served by %q, want sibling %q", inst, fleet[sibling].name)
	}

	// Recover the owner: the queued fill must land in its result cache.
	fleet[owner].down.Store(false)
	waitFor(t, "peer fill accepted by owner", func() bool {
		var met map[string]any
		getJSON(t, fleet[owner].ts.URL+"/metrics", &met)
		pf, ok := met["peer_fills"].(map[string]any)
		if !ok {
			return false
		}
		accepted, _ := pf["accepted"].(float64)
		return accepted >= 1
	})
	if size := resultCacheStat(t, fleet[owner], "size"); size < 1 {
		t.Fatalf("owner result cache size = %g after fill, want >= 1", size)
	}

	// Kill the sibling: the repeat routes to the owner and must be a
	// cache hit — the fill carried the answer, nothing recomputes.
	fleet[sibling].down.Store(true)
	waitFor(t, "sibling down", func() bool { return !rt.prober.healthy(fleet[sibling].ts.URL) })
	resp2, raw2 := postJSON(t, ts.URL+"/v1/insert", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-fill insert: status %d: %s", resp2.StatusCode, raw2)
	}
	if inst := resp2.Header.Get("Vabuf-Instance"); inst != fleet[owner].name {
		t.Errorf("post-fill request served by %q, want owner %q", inst, fleet[owner].name)
	}
	if hits := resultCacheStat(t, fleet[owner], "hits"); hits < 1 {
		t.Errorf("owner result cache hits = %g — the fill did not serve the repeat", hits)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("fill-served repeat answered different bytes than the original computation")
	}
}

// TestYieldThroughRouter exercises the second proxied kind end to end.
func TestYieldThroughRouter(t *testing.T) {
	fleet := newFleet(t, 2, "")
	_, ts := newTestRouter(t, fleet)
	req := server.YieldRequest{
		InsertRequest: server.InsertRequest{Tree: treeText(t, 5), Algo: "wid"},
		MonteCarlo:    256,
		Seed:          7,
	}
	resp, raw := postJSON(t, ts.URL+"/v1/yield", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("yield: status %d: %s", resp.StatusCode, raw)
	}
	var res server.YieldResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.MonteCarlo == nil || res.MonteCarlo.Samples == 0 {
		t.Error("yield result missing Monte-Carlo section")
	}
}

// TestRouterRejectsBadRequestLocally: validation parity — a request the
// backends would 400 never leaves the router.
func TestRouterRejectsBadRequestLocally(t *testing.T) {
	fleet := newFleet(t, 2, "")
	rt, ts := newTestRouter(t, fleet)
	resp, raw := postJSON(t, ts.URL+"/v1/insert",
		map[string]any{"algo": "nom"}) // neither bench nor tree
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", resp.StatusCode, raw)
	}
	var e server.ErrorResult
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Errorf("400 body is not an ErrorResult: %s", raw)
	}
	// No backend was bothered.
	for _, b := range fleet {
		if n := rt.met.proxiedOf(b.ts.URL); n != 0 {
			t.Errorf("backend %s proxied %d requests for a locally-rejected body", b.name, n)
		}
	}
}
