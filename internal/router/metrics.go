package router

import (
	"strconv"
	"sync"
	"time"
)

// backendCounters are the per-backend traffic counters of the router.
type backendCounters struct {
	proxied    int64 // requests (or sub-batches) this backend answered
	failovers  int64 // requests this backend owned but another served
	fillsSent  int64 // peer cache fills delivered to this backend
	fillErrors int64 // fills that failed (post error or non-200)
}

// rmetrics is the registry behind the router's GET /metrics.
type rmetrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]map[string]int64 // endpoint -> status -> count
	backends []backendCounters
	// fanout histograms how many distinct backends each batch request
	// scattered to (key = owner-group count).
	fanout map[int]int64
	// ringRebuilds counts ring constructions (membership is static per
	// process today, so this is 1 until dynamic membership lands).
	ringRebuilds int64
	fillQueued   int64
	fillDropped  int64
}

func newRMetrics(nBackends int) *rmetrics {
	return &rmetrics{
		start:    time.Now(),
		requests: make(map[string]map[string]int64),
		backends: make([]backendCounters, nBackends),
		fanout:   make(map[int]int64),
	}
}

func (m *rmetrics) recordRequest(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[string]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[strconv.Itoa(status)]++
}

func (m *rmetrics) recordProxied(backend int) {
	m.mu.Lock()
	m.backends[backend].proxied++
	m.mu.Unlock()
}

// recordFailover counts a request against the owner that missed it.
func (m *rmetrics) recordFailover(owner int) {
	m.mu.Lock()
	m.backends[owner].failovers++
	m.mu.Unlock()
}

func (m *rmetrics) recordFanout(groups int) {
	m.mu.Lock()
	m.fanout[groups]++
	m.mu.Unlock()
}

func (m *rmetrics) recordRingRebuild() {
	m.mu.Lock()
	m.ringRebuilds++
	m.mu.Unlock()
}

func (m *rmetrics) recordFillQueued(dropped bool) {
	m.mu.Lock()
	if dropped {
		m.fillDropped++
	} else {
		m.fillQueued++
	}
	m.mu.Unlock()
}

func (m *rmetrics) recordFillOutcome(backend int, ok bool) {
	m.mu.Lock()
	if ok {
		m.backends[backend].fillsSent++
	} else {
		m.backends[backend].fillErrors++
	}
	m.mu.Unlock()
}

// failoversOf returns the failover count charged to a backend (tests).
func (m *rmetrics) failoversOf(backend int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backends[backend].failovers
}

// proxiedOf returns the proxied-request count of a backend (tests).
func (m *rmetrics) proxiedOf(backend int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.backends[backend].proxied
}

// snapshot assembles the /metrics document. Probe state is merged per
// backend so one document answers "who is down, who serves what, where
// do the fills go".
func (m *rmetrics) snapshot(backends []string, prober *prober, ring *hashRing,
	fillBacklog int, ready bool) map[string]any {
	m.mu.Lock()
	requests := make(map[string]map[string]int64, len(m.requests))
	for ep, byStatus := range m.requests {
		cp := make(map[string]int64, len(byStatus))
		for st, n := range byStatus {
			cp[st] = n
		}
		requests[ep] = cp
	}
	fanout := make(map[string]int64, len(m.fanout))
	for groups, n := range m.fanout {
		fanout[strconv.Itoa(groups)] = n
	}
	counters := make([]backendCounters, len(m.backends))
	copy(counters, m.backends)
	rebuilds := m.ringRebuilds
	queued, dropped := m.fillQueued, m.fillDropped
	m.mu.Unlock()

	bs := make([]map[string]any, len(backends))
	for i, url := range backends {
		doc := prober.states[i].snapshot()
		doc["url"] = url
		doc["proxied"] = counters[i].proxied
		doc["failovers"] = counters[i].failovers
		doc["fills_sent"] = counters[i].fillsSent
		doc["fill_errors"] = counters[i].fillErrors
		bs[i] = doc
	}
	state := "ready"
	if !ready {
		state = "no_healthy_backends"
	}
	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"state":          state,
		"requests":       requests,
		"backends":       bs,
		"ring": map[string]any{
			"backends": len(backends),
			"points":   len(ring.points),
			"rebuilds": rebuilds,
		},
		// scatter_fanout: how many owner groups each batch split into —
		// "1" means the whole batch shared one owner (perfect affinity).
		"scatter_fanout": fanout,
		"fills": map[string]any{
			"queued":  queued,
			"dropped": dropped,
			"backlog": fillBacklog,
		},
	}
}
