package router

import (
	"runtime"
	"strconv"
	"sync"
	"time"
)

// backendCounters are the per-backend traffic counters of the router.
type backendCounters struct {
	proxied    int64 // requests (or sub-batches) this backend answered
	failovers  int64 // requests this backend owned but another served
	fillsSent  int64 // peer cache fills delivered to this backend
	fillErrors int64 // fills that failed (post error, non-200, or expiry)
	lookupHits int64 // synchronous peer lookups this backend answered
	// attempts counts every outbound request the router sent this
	// backend — first tries, failover hops, hedges, peer lookups, peer
	// fills alike. Summed across backends it is the fleet's true
	// amplification numerator: injected faults that never reach a
	// backend's own mux still show up here.
	attempts int64
}

// rmetrics is the registry behind the router's GET /metrics. Counters
// are keyed by backend URL, never by ring index, so a membership change
// renumbers nothing: a backend that leaves and rejoins keeps its
// history, and in-flight requests recording against a just-removed
// backend land harmlessly in its retained entry.
type rmetrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]map[string]int64 // endpoint -> status -> count
	backends map[string]*backendCounters // backend URL -> counters
	// fanout histograms how many distinct backends each batch request
	// scattered to (key = owner-group count).
	fanout map[int]int64
	// ringRebuilds counts ring constructions: 1 at boot, +1 per
	// membership reload that changed the member set.
	ringRebuilds int64
	fillQueued   int64
	fillDropped  int64
	// Synchronous peer-lookup outcomes: hits served a moved/failover key
	// from the previous owner's cache, misses fell through to a normal
	// (cold) proxy, errors are transport failures or refusals.
	lookupHits   int64
	lookupMisses int64
	lookupErrors int64
	// Resilience counters: hedged duplicates sent / won, manufactured
	// requests denied by a dry retry budget, and requests answered 504
	// locally because their propagated deadline was already spent.
	hedges           int64
	hedgeWins        int64
	budgetExhausted  int64
	deadlineRejected map[string]int64 // endpoint -> local 504s
}

func newRMetrics() *rmetrics {
	return &rmetrics{
		start:            time.Now(),
		requests:         make(map[string]map[string]int64),
		backends:         make(map[string]*backendCounters),
		fanout:           make(map[int]int64),
		deadlineRejected: make(map[string]int64),
	}
}

// of returns the counters of a backend, creating them on first touch.
// Callers must hold m.mu.
func (m *rmetrics) of(url string) *backendCounters {
	c := m.backends[url]
	if c == nil {
		c = &backendCounters{}
		m.backends[url] = c
	}
	return c
}

func (m *rmetrics) recordRequest(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[string]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[strconv.Itoa(status)]++
}

func (m *rmetrics) recordProxied(url string) {
	m.mu.Lock()
	m.of(url).proxied++
	m.mu.Unlock()
}

// recordFailover counts a request against the owner that missed it.
func (m *rmetrics) recordFailover(owner string) {
	m.mu.Lock()
	m.of(owner).failovers++
	m.mu.Unlock()
}

// recordAttempt counts one outbound request to a backend (any kind).
func (m *rmetrics) recordAttempt(url string) {
	m.mu.Lock()
	m.of(url).attempts++
	m.mu.Unlock()
}

// recordHedge counts one hedged duplicate sent.
func (m *rmetrics) recordHedge() {
	m.mu.Lock()
	m.hedges++
	m.mu.Unlock()
}

// recordHedgeWin counts one hedged duplicate that answered first.
func (m *rmetrics) recordHedgeWin() {
	m.mu.Lock()
	m.hedgeWins++
	m.mu.Unlock()
}

// recordBudgetExhausted counts one manufactured request the retry
// budget refused to send.
func (m *rmetrics) recordBudgetExhausted() {
	m.mu.Lock()
	m.budgetExhausted++
	m.mu.Unlock()
}

// recordDeadlineRejected counts one request answered 504 locally
// because its propagated deadline was already spent.
func (m *rmetrics) recordDeadlineRejected(endpoint string) {
	m.mu.Lock()
	m.deadlineRejected[endpoint]++
	m.mu.Unlock()
}

func (m *rmetrics) recordFanout(groups int) {
	m.mu.Lock()
	m.fanout[groups]++
	m.mu.Unlock()
}

func (m *rmetrics) recordRingRebuild() {
	m.mu.Lock()
	m.ringRebuilds++
	m.mu.Unlock()
}

func (m *rmetrics) recordFillQueued(dropped bool) {
	m.mu.Lock()
	if dropped {
		m.fillDropped++
	} else {
		m.fillQueued++
	}
	m.mu.Unlock()
}

// recordFillDrops counts n fills dropped in bulk (retired owner).
func (m *rmetrics) recordFillDrops(n int) {
	m.mu.Lock()
	m.fillDropped += int64(n)
	m.mu.Unlock()
}

func (m *rmetrics) recordFillOutcome(url string, ok bool) {
	m.mu.Lock()
	if ok {
		m.of(url).fillsSent++
	} else {
		m.of(url).fillErrors++
	}
	m.mu.Unlock()
}

// recordLookup counts one synchronous peer-lookup outcome; hits also
// credit the backend that answered.
func (m *rmetrics) recordLookup(url string, outcome lookupOutcome) {
	m.mu.Lock()
	switch outcome {
	case lookupHit:
		m.lookupHits++
		m.of(url).lookupHits++
	case lookupMiss:
		m.lookupMisses++
	default:
		m.lookupErrors++
	}
	m.mu.Unlock()
}

// lookupOutcome classifies one peer-lookup attempt.
type lookupOutcome int

const (
	lookupHit lookupOutcome = iota
	lookupMiss
	lookupError
)

// ringRebuildCount returns the rebuild counter (tests, admin endpoint).
func (m *rmetrics) ringRebuildCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ringRebuilds
}

// lookupHitCount returns the lookup-hit counter (tests).
func (m *rmetrics) lookupHitCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lookupHits
}

// failoversOf returns the failover count charged to a backend (tests).
func (m *rmetrics) failoversOf(url string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.of(url).failovers
}

// proxiedOf returns the proxied-request count of a backend (tests).
func (m *rmetrics) proxiedOf(url string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.of(url).proxied
}

// snapshot assembles the /metrics document over the *current*
// membership. Probe state is merged per backend so one document answers
// "who is down, who serves what, where do the fills go".
func (m *rmetrics) snapshot(mem *membership, prober *prober,
	fillBacklog int, ready bool, breakerOpen int, breakerOpens int64) map[string]any {
	m.mu.Lock()
	requests := make(map[string]map[string]int64, len(m.requests))
	for ep, byStatus := range m.requests {
		cp := make(map[string]int64, len(byStatus))
		for st, n := range byStatus {
			cp[st] = n
		}
		requests[ep] = cp
	}
	fanout := make(map[string]int64, len(m.fanout))
	for groups, n := range m.fanout {
		fanout[strconv.Itoa(groups)] = n
	}
	counters := make(map[string]backendCounters, len(mem.backends))
	for _, url := range mem.backends {
		counters[url] = *m.of(url)
	}
	rebuilds := m.ringRebuilds
	queued, dropped := m.fillQueued, m.fillDropped
	lhits, lmisses, lerrors := m.lookupHits, m.lookupMisses, m.lookupErrors
	hedges, hedgeWins, budgetDry := m.hedges, m.hedgeWins, m.budgetExhausted
	var attemptsTotal int64
	for _, c := range m.backends {
		attemptsTotal += c.attempts
	}
	dlRejected := make(map[string]int64, len(m.deadlineRejected))
	var dlTotal int64
	for ep, n := range m.deadlineRejected {
		dlRejected[ep] = n
		dlTotal += n
	}
	m.mu.Unlock()

	bs := make([]map[string]any, len(mem.backends))
	for i, url := range mem.backends {
		doc := prober.stateSnapshot(url)
		c := counters[url]
		doc["url"] = url
		doc["proxied"] = c.proxied
		doc["failovers"] = c.failovers
		doc["fills_sent"] = c.fillsSent
		doc["fill_errors"] = c.fillErrors
		doc["lookup_hits"] = c.lookupHits
		doc["attempts"] = c.attempts
		bs[i] = doc
	}
	state := "ready"
	if !ready {
		state = "no_healthy_backends"
	}
	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"state":          state,
		"goroutines":     runtime.NumGoroutine(),
		"requests":       requests,
		"backends":       bs,
		"ring": map[string]any{
			"backends": len(mem.backends),
			"points":   len(mem.ring.points),
			"rebuilds": rebuilds,
			"members":  append([]string(nil), mem.backends...),
		},
		// scatter_fanout: how many owner groups each batch split into —
		// "1" means the whole batch shared one owner (perfect affinity).
		"scatter_fanout": fanout,
		"fills": map[string]any{
			"queued":  queued,
			"dropped": dropped,
			"backlog": fillBacklog,
		},
		// lookups: synchronous peer-cache probes at a key's previous
		// owner before a new/failover owner computes it cold.
		"lookups": map[string]any{
			"hits":   lhits,
			"misses": lmisses,
			"errors": lerrors,
		},
		// resilience: the retry-storm dials. attempts_total over the sum
		// of client requests is the fleet's amplification factor.
		"resilience": map[string]any{
			"hedges":                 hedges,
			"hedge_wins":             hedgeWins,
			"retry_budget_exhausted": budgetDry,
			"breaker_open":           breakerOpen,
			"breaker_opens":          breakerOpens,
			"attempts_total":         attemptsTotal,
		},
		// deadline: requests answered 504 by the router itself because
		// their propagated budget was already spent on arrival.
		"deadline": map[string]any{
			"rejected":       dlRejected,
			"rejected_total": dlTotal,
		},
	}
}
