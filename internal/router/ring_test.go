package router

import (
	"fmt"
	"testing"
)

// testKeys returns n distinct synthetic partition keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fp2|key=%d", i)
	}
	return keys
}

// ownersByName maps each key to the address of its owner.
func ownersByName(r *hashRing, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.owner(k)
	}
	return out
}

func TestRingRejectsEmptyAndDuplicate(t *testing.T) {
	if _, err := newRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := newRing([]string{"http://a", "http://b", "http://a"}, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
}

func TestRingOwnerDeterministic(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	r1, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(200) {
		if r1.owner(k) != r2.owner(k) {
			t.Fatalf("key %q owner differs between identical rings", k)
		}
	}
}

// TestRingResizeStability is the consistent-hashing contract: growing
// the ring moves keys only *to* the new backend, and shrinking it moves
// only the removed backend's keys — every other key→owner assignment is
// untouched. This is what makes membership changes cheap for the fleet's
// caches: a resize cold-starts one partition, not all of them.
func TestRingResizeStability(t *testing.T) {
	base := []string{"http://a", "http://b", "http://c", "http://d"}
	keys := testKeys(500)
	r0, err := newRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := ownersByName(r0, keys)

	// Grow: add a fifth backend.
	grown, err := newRing(append(append([]string{}, base...), "http://e"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, after := range ownersByName(grown, keys) {
		if after != before[k] {
			if after != "http://e" {
				t.Fatalf("key %q moved %s -> %s on grow; only moves to the new backend are allowed",
					k, before[k], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("adding a backend moved no keys at all — it would never take load")
	}
	if moved > len(keys)/2 {
		t.Errorf("adding 1 of 5 backends moved %d/%d keys; expected roughly 1/5", moved, len(keys))
	}

	// Shrink: drop http://b. Keys b owned must move; nothing else may.
	shrunk, err := newRing([]string{"http://a", "http://c", "http://d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, after := range ownersByName(shrunk, keys) {
		if before[k] == "http://b" {
			if after == "http://b" {
				t.Fatalf("key %q still owned by removed backend", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved %s -> %s on shrink of an unrelated backend",
				k, before[k], after)
		}
	}
}

// TestRingSuccessors checks the failover order: distinct backends, the
// owner first, and full coverage when n equals the fleet size.
func TestRingSuccessors(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	r, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		succ := r.successors(k, len(backends))
		if len(succ) != len(backends) {
			t.Fatalf("successors(%q) = %v, want %d distinct backends", k, succ, len(backends))
		}
		if succ[0] != r.owner(k) {
			t.Fatalf("successors(%q)[0] = %s, owner = %s", k, succ[0], r.owner(k))
		}
		seen := make(map[string]bool)
		for _, b := range succ {
			if seen[b] {
				t.Fatalf("successors(%q) = %v repeats backend %s", k, succ, b)
			}
			seen[b] = true
		}
	}
	// n larger than the fleet clamps.
	if got := r.successors("k", 99); len(got) != len(backends) {
		t.Errorf("successors with n=99 returned %d backends, want %d", len(got), len(backends))
	}
}

// TestRingBalance sanity-checks the virtual-node split: with the default
// 64 vnodes no backend should own a wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c", "http://d"}
	r, err := newRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	keys := testKeys(4000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	mean := len(keys) / len(backends)
	for b, c := range counts {
		if c < mean/3 || c > mean*3 {
			t.Errorf("backend %s owns %d of %d keys (mean %d) — split too skewed",
				b, c, len(keys), mean)
		}
	}
}
