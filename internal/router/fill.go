package router

// Peer cache fill. When the owner of a fingerprint is down, a successor
// serves the request — correct, but now the *successor's* cache holds
// the answer while the owner, once it recovers, is as cold as a fresh
// boot for exactly the keys it owns. The filler closes that gap: every
// failover-served 200 is enqueued here, and a background worker waits
// for the owner's probe to recover, then replays the answer to the
// owner's POST /v1/cache/fill. The fleet's partition re-converges
// without recomputing anything and without blocking any client request.
//
// The queue is bounded and lossy by design: a fill is an optimization,
// never a correctness requirement (the owner would simply recompute on
// the next repeat), so under pressure the router drops fills and counts
// them instead of holding request goroutines hostage.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"time"

	"vabuf/internal/server"
)

// fillJob is one pending peer cache fill.
type fillJob struct {
	owner int    // backend index whose cache went cold
	kind  string // "insert" or "yield"
	epoch string // epoch of the backend that computed the result
	// request/result are the original request and the serving backend's
	// answer, verbatim.
	request json.RawMessage
	result  json.RawMessage
	// deadline bounds how long the filler waits for the owner to
	// recover before giving the fill up.
	deadline time.Time
}

// filler owns the fill queue and its single delivery worker. One worker
// is enough: fills are tiny POSTs, and serializing them keeps a
// recovering backend from being hammered with its whole backlog at once.
type filler struct {
	ch       chan fillJob
	backends []string
	prober   *prober
	client   *http.Client
	met      *rmetrics
	wait     time.Duration // per-job recovery wait (deadline at enqueue)
	poll     time.Duration // how often to re-check the owner while down
	stop     chan struct{}
	done     chan struct{}
	logf     func(format string, args ...any)
}

func newFiller(backends []string, prober *prober, client *http.Client,
	met *rmetrics, queue int, wait, poll time.Duration,
	logf func(string, ...any)) *filler {
	f := &filler{
		ch:       make(chan fillJob, queue),
		backends: backends,
		prober:   prober,
		client:   client,
		met:      met,
		wait:     wait,
		poll:     poll,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		logf:     logf,
	}
	go f.run()
	return f
}

func (f *filler) close() {
	close(f.stop)
	<-f.done
}

// enqueue queues one fill, dropping it (counted) when the queue is full.
func (f *filler) enqueue(job fillJob) {
	job.deadline = time.Now().Add(f.wait)
	select {
	case f.ch <- job:
		f.met.recordFillQueued(false)
	default:
		f.met.recordFillQueued(true)
	}
}

// backlog reports the queued-but-undelivered fill count (metrics).
func (f *filler) backlog() int { return len(f.ch) }

func (f *filler) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		case job := <-f.ch:
			f.deliver(job)
		}
	}
}

// deliver waits for the owner to recover, then posts the fill once.
func (f *filler) deliver(job fillJob) {
	for !f.prober.healthy(job.owner) {
		if time.Now().After(job.deadline) {
			f.met.recordFillOutcome(job.owner, false)
			return
		}
		select {
		case <-f.stop:
			return
		case <-time.After(f.poll):
		}
	}
	payload, err := json.Marshal(server.CacheFillRequest{
		Kind:    job.kind,
		Epoch:   job.epoch,
		Request: job.request,
		Result:  job.result,
	})
	if err != nil {
		f.met.recordFillOutcome(job.owner, false)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		f.backends[job.owner]+"/v1/cache/fill", bytes.NewReader(payload))
	if err != nil {
		f.met.recordFillOutcome(job.owner, false)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		f.met.recordFillOutcome(job.owner, false)
		f.logf("vabufr: peer fill to %s failed: %v", f.backends[job.owner], err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// 409 = epoch mismatch: the owner moved to a new library
		// generation while the fill waited — exactly the stale result the
		// epoch exists to refuse. Count it and move on.
		f.met.recordFillOutcome(job.owner, false)
		f.logf("vabufr: peer fill to %s refused: %s", f.backends[job.owner], resp.Status)
		return
	}
	f.met.recordFillOutcome(job.owner, true)
}
