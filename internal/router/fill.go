package router

// Peer cache fill. When the owner of a fingerprint is down, a successor
// serves the request — correct, but now the *successor's* cache holds
// the answer while the owner, once it recovers, is as cold as a fresh
// boot for exactly the keys it owns. The filler closes that gap: every
// failover-served 200 is enqueued here, and a background worker waits
// for the owner's probe to recover, then replays the answer to the
// owner's POST /v1/cache/fill. The fleet's partition re-converges
// without recomputing anything and without blocking any client request.
//
// The queue is bounded and lossy by design: a fill is an optimization,
// never a correctness requirement (the owner would simply recompute on
// the next repeat), so under pressure the router drops fills and counts
// them instead of holding request goroutines hostage.
//
// Pending fills are kept in per-owner lists, not one FIFO: a single
// queue would let one dead owner head-of-line-block fills destined for
// healthy owners for up to the whole recovery wait. The delivery worker
// sweeps the owners on every wake and delivers every job whose owner is
// currently healthy, while jobs for still-down owners simply wait in
// their own list until they recover or their deadline expires.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"vabuf/internal/server"
)

// fillJob is one pending peer cache fill.
type fillJob struct {
	owner string // backend URL whose cache went cold
	kind  string // "insert" or "yield"
	epoch string // epoch of the backend that computed the result
	// request/result are the original request and the serving backend's
	// answer, verbatim.
	request json.RawMessage
	result  json.RawMessage
	// deadline bounds how long the filler waits for the owner to
	// recover before giving the fill up.
	deadline time.Time
}

// filler owns the pending fills and their single delivery worker. One
// worker is enough: fills are tiny POSTs, and serializing them keeps a
// recovering backend from being hammered with its whole backlog at once.
type filler struct {
	prober *prober
	client *http.Client
	met    *rmetrics
	budget *retryBudget  // fills are manufactured traffic; they pay too
	wait   time.Duration // per-job recovery wait (deadline at enqueue)
	poll   time.Duration // how often to re-sweep owners between wakes
	logf   func(format string, args ...any)

	mu      sync.Mutex
	pending map[string][]fillJob // owner URL -> FIFO of its jobs
	total   int                  // jobs across all owners, bounded by cap
	cap     int

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

func newFiller(prober *prober, client *http.Client, met *rmetrics,
	budget *retryBudget, queue int, wait, poll time.Duration,
	logf func(string, ...any)) *filler {
	f := &filler{
		prober:  prober,
		client:  client,
		met:     met,
		budget:  budget,
		wait:    wait,
		poll:    poll,
		logf:    logf,
		pending: make(map[string][]fillJob),
		cap:     queue,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go f.run()
	return f
}

func (f *filler) close() {
	close(f.stop)
	<-f.done
}

// enqueue queues one fill, dropping it (counted) when the queue is full.
func (f *filler) enqueue(job fillJob) {
	job.deadline = time.Now().Add(f.wait)
	f.mu.Lock()
	if f.total >= f.cap {
		f.mu.Unlock()
		f.met.recordFillQueued(true)
		return
	}
	f.pending[job.owner] = append(f.pending[job.owner], job)
	f.total++
	f.mu.Unlock()
	f.met.recordFillQueued(false)
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// retire drops every pending fill of a backend that left the ring — its
// cache keys moved with it, so the fills have nowhere useful to go.
func (f *filler) retire(owner string) {
	f.mu.Lock()
	n := len(f.pending[owner])
	delete(f.pending, owner)
	f.total -= n
	f.mu.Unlock()
	if n > 0 {
		f.met.recordFillDrops(n)
	}
}

// backlog reports the queued-but-undelivered fill count (metrics).
func (f *filler) backlog() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

func (f *filler) run() {
	defer close(f.done)
	t := time.NewTicker(f.poll)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-f.wake:
		case <-t.C:
		}
		f.sweep()
	}
}

// sweep visits every owner with pending jobs: healthy owners get their
// whole list delivered (serially), down owners only shed jobs whose
// recovery deadline passed. A dead owner never delays anyone else's
// fills — its list just sits there until its probe recovers.
func (f *filler) sweep() {
	f.mu.Lock()
	deliverable := make(map[string][]fillJob)
	now := time.Now()
	for owner, jobs := range f.pending {
		if f.prober.healthy(owner) {
			deliverable[owner] = jobs
			delete(f.pending, owner)
			f.total -= len(jobs)
			continue
		}
		kept := jobs[:0]
		expired := 0
		for _, j := range jobs {
			if now.After(j.deadline) {
				expired++
				continue
			}
			kept = append(kept, j)
		}
		if expired > 0 {
			f.total -= expired
			if len(kept) == 0 {
				delete(f.pending, owner)
			} else {
				f.pending[owner] = kept
			}
			for i := 0; i < expired; i++ {
				f.met.recordFillOutcome(owner, false)
			}
		}
	}
	f.mu.Unlock()
	for _, jobs := range deliverable {
		for _, job := range jobs {
			select {
			case <-f.stop:
				return
			default:
			}
			f.deliver(job)
		}
	}
}

// deliver posts one fill to its (healthy) owner.
func (f *filler) deliver(job fillJob) {
	// A fill is pure re-warming; when the owner's budget is dry it just
	// recomputes on the next repeat instead.
	if !f.budget.spend(job.owner) {
		f.met.recordBudgetExhausted()
		f.met.recordFillOutcome(job.owner, false)
		return
	}
	f.met.recordAttempt(job.owner)
	payload, err := json.Marshal(server.CacheFillRequest{
		Kind:    job.kind,
		Epoch:   job.epoch,
		Request: job.request,
		Result:  job.result,
	})
	if err != nil {
		f.met.recordFillOutcome(job.owner, false)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		job.owner+"/v1/cache/fill", bytes.NewReader(payload))
	if err != nil {
		f.met.recordFillOutcome(job.owner, false)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		f.met.recordFillOutcome(job.owner, false)
		f.logf("vabufr: peer fill to %s failed: %v", job.owner, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// 409 = epoch mismatch: the owner moved to a new library
		// generation while the fill waited — exactly the stale result the
		// epoch exists to refuse. Count it and move on.
		f.met.recordFillOutcome(job.owner, false)
		f.logf("vabufr: peer fill to %s refused: %s", job.owner, resp.Status)
		return
	}
	f.met.recordFillOutcome(job.owner, true)
}
