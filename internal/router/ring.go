// Package router implements vabufr, the consistent-hash front of a
// vabufd fleet. It owns no DP engine — only routing: each request's
// content-addressed fingerprint (internal/server, hashed with an empty
// epoch) is mapped onto a hash ring of backends so that repeats of a
// request always land on the same instance and N result caches behave
// like one big cache instead of N cold ones. Health-aware failover walks
// the ring's successor order when the owner is down, batch requests are
// split per owner and scatter-gathered, and failover-served answers are
// asynchronously replayed to the recovered owner (peer cache fill) so
// the partition re-converges. Membership is dynamic: the ring can be
// rebuilt at runtime (config reload, admin endpoint) without dropping
// in-flight requests, and a key whose owner changed is served from the
// previous owner's cache via a synchronous peer lookup before the new
// owner computes it cold.
package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// defaultVNodes is the number of virtual nodes per backend. 64 points
// per backend keeps the keyspace split within a few percent of uniform
// for fleets of 2–64 instances while the whole ring stays small enough
// to rebuild in microseconds.
const defaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a backend.
type ringPoint struct {
	hash    uint64
	backend string // backend base URL
}

// hashRing is a consistent-hash ring with a bounded number of virtual
// nodes per backend. Virtual-node positions depend only on the backend's
// address and the vnode ordinal — never on the membership set — so
// adding or removing a backend moves only the keys that backend gains or
// loses and leaves every other key→owner assignment stable. The ring is
// immutable after construction: membership changes build a new ring and
// swap it in atomically (see Router.Reload), so in-flight requests keep
// a consistent view.
type hashRing struct {
	backends []string
	points   []ringPoint // sorted by hash
}

// newRing builds the ring over the backend addresses. vnodes <= 0
// selects the default.
func newRing(backends []string, vnodes int) (*hashRing, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("consistent-hash ring needs at least one backend")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(backends))
	r := &hashRing{
		backends: backends,
		points:   make([]ringPoint, 0, len(backends)*vnodes),
	}
	for _, b := range backends {
		if seen[b] {
			return nil, fmt.Errorf("duplicate backend %q in ring", b)
		}
		seen[b] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(b, v), backend: b})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// pointHash positions virtual node v of a backend on the circle.
func pointHash(backend string, v int) uint64 {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00vnode=%d", backend, v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a partition key (a request fingerprint) on the circle.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// owner returns the backend URL owning key: the backend of the first
// ring point at or after the key's position, wrapping at the top.
func (r *hashRing) owner(key string) string {
	return r.points[r.search(keyHash(key))].backend
}

// search finds the index of the first point with hash >= h (mod ring).
func (r *hashRing) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// successors returns up to n distinct backends in ring order starting at
// key's owner — the failover order: when the owner is down, the next
// distinct backend on the circle serves, which is also where consistent
// hashing would send the key if the owner actually left the ring.
func (r *hashRing) successors(key string, n int) []string {
	if n > len(r.backends) {
		n = len(r.backends)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	start := r.search(keyHash(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}
