package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vabuf/internal/server"
)

// Config sizes one Router. Zero values select the documented defaults.
type Config struct {
	// Backends are the vabufd base URLs forming the initial ring
	// (required). Membership can change at runtime via Reload.
	Backends []string
	// VNodes is the number of virtual nodes per backend; <=0 selects 64.
	VNodes int
	// ProbeInterval/ProbeTimeout drive the background /readyz poller
	// (defaults 2s / 1s; the interval is jittered ±30%).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter/RecoverAfter are the probe hysteresis thresholds
	// (defaults 2 / 2). A failed proxy attempt bypasses FailAfter: the
	// backend just dropped a real request and is marked down immediately.
	FailAfter    int
	RecoverAfter int
	// MaxRequestBytes bounds request bodies; <=0 selects 8 MiB.
	MaxRequestBytes int64
	// FillQueue bounds the pending peer-cache-fill queue; 0 selects 256,
	// negative disables peer fill.
	FillQueue int
	// FillWait bounds how long a queued fill waits for its owner to
	// recover before being dropped; <=0 selects 2 minutes.
	FillWait time.Duration
	// LookupTimeout bounds one synchronous peer lookup (POST
	// /v1/cache/lookup at a key's previous owner before the new or
	// failover owner computes it cold); <=0 selects 500ms. Negative
	// disables peer lookup entirely.
	LookupTimeout time.Duration
	// LookupWindow bounds how long after a ring rebuild moved keys are
	// still looked up at their previous owner; <=0 selects 1 minute.
	// The window is a transition aid: within it the async fills warm
	// the new owners, after it moved keys route normally.
	LookupWindow time.Duration
	// RetryBudget is the per-backend retry token ratio: each first
	// attempt routed to a backend earns it this fraction of a token, and
	// every manufactured request sent to it (failover hop, hedge, peer
	// lookup, peer fill) pays one whole token. 0 selects 0.1 (~10% extra
	// traffic at steady state); negative disables budgeting.
	RetryBudget float64
	// RetryBurst is the token-bucket cap and initial balance (<=0
	// selects 10) — the headroom for failover bursts before any credit
	// has accrued.
	RetryBurst int
	// HedgeAfter enables hedged sends on the idempotent single-request
	// endpoints (insert, yield): when the first attempt has produced no
	// answer within max(HedgeAfter, observed p95 latency), a budgeted
	// duplicate goes to the next usable backend and the first conclusive
	// answer wins. <=0 (the default) disables hedging.
	HedgeAfter time.Duration
	// BreakerFailures is the consecutive-failure threshold of the
	// per-backend circuit breaker (transport errors and retryable 5xx
	// count; saturation does not). 0 selects 5; negative disables the
	// breakers.
	BreakerFailures int
	// BreakerCooldown is how long an open breaker routes around its
	// backend before letting one half-open probe request through
	// (<=0 selects 5s).
	BreakerCooldown time.Duration
	// EnableAdmin mounts the membership admin endpoints (GET/POST
	// /admin/backends). Off by default: resizing the fleet over HTTP is
	// opt-in via the vabufr -admin flag.
	EnableAdmin bool
	// Client is the proxy HTTP client; nil selects a default without a
	// global timeout (streams are long-lived; per-attempt deadlines come
	// from the inbound request context).
	Client *http.Client
	// Logf receives operational log lines; nil selects log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.FillQueue == 0 {
		c.FillQueue = 256
	}
	if c.FillWait <= 0 {
		c.FillWait = 2 * time.Minute
	}
	if c.LookupTimeout == 0 {
		c.LookupTimeout = 500 * time.Millisecond
	}
	if c.LookupWindow <= 0 {
		c.LookupWindow = time.Minute
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 0.1
	}
	if c.RetryBurst <= 0 {
		c.RetryBurst = 10
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// membership is one immutable view of the fleet: the member URLs, the
// ring over them, and the ring before the last rebuild. Handlers load
// it once per request from the Router's atomic pointer, so a concurrent
// Reload never changes the ground under an in-flight request — it keeps
// routing against the view it started with and the next request sees
// the new one.
type membership struct {
	backends []string        // member base URLs, in configured order
	member   map[string]bool // set view of backends
	ring     *hashRing
	// prev is the ring before the last rebuild (nil until the first
	// Reload). It answers "who owned this key a moment ago" — the
	// backend whose cache is still warm for a key the rebuild moved.
	// It is consulted only until prevExpires: past that the async fills
	// have had their chance to warm the new owners and moved keys
	// should route (and cache) normally.
	prev        *hashRing
	prevExpires time.Time
}

// Router is the vabufr HTTP front: consistent-hash routing with dynamic
// membership, health-aware failover, batch scatter-gather, synchronous
// peer lookup, and asynchronous peer cache fill over a fleet of vabufd
// backends. Create with New, expose via Handler, Close after the
// listener has shut down.
type Router struct {
	cfg    Config
	mem    atomic.Pointer[membership]
	prober *prober
	filler *filler // nil when peer fill is disabled
	met    *rmetrics
	mux    *http.ServeMux
	// budget bounds manufactured traffic (nil = disabled, unlimited);
	// breaker benches backends failing their accepted requests (nil =
	// disabled); lat feeds the adaptive hedge trigger.
	budget  *retryBudget
	breaker *breakerSet
	lat     latencyTracker

	reloadMu  sync.Mutex // serializes Reload against itself
	closeOnce sync.Once
}

// New builds a Router over the configured backends and starts its
// health probers (and, unless disabled, the peer-fill worker).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	backends, err := normalizeBackends(cfg.Backends)
	if err != nil {
		return nil, err
	}
	ring, err := newRing(backends, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg: cfg,
		met: newRMetrics(),
		mux: http.NewServeMux(),
	}
	if cfg.RetryBudget > 0 {
		rt.budget = newRetryBudget(cfg.RetryBudget, cfg.RetryBurst)
	}
	if cfg.BreakerFailures > 0 {
		rt.breaker = newBreakerSet(cfg.BreakerFailures, cfg.BreakerCooldown)
	}
	rt.mem.Store(&membership{backends: backends, member: memberSet(backends), ring: ring})
	rt.met.recordRingRebuild()
	rt.prober = newProber(probeConfig{
		interval:     cfg.ProbeInterval,
		timeout:      cfg.ProbeTimeout,
		failAfter:    cfg.FailAfter,
		recoverAfter: cfg.RecoverAfter,
	}, cfg.Client, func(backend string, healthy bool, reason string) {
		if healthy {
			// A recovered probe is recovery evidence for the breaker too:
			// without this a backend could pass /readyz yet sit benched
			// for a full cooldown after its failure streak.
			rt.breaker.reset(backend)
			cfg.Logf("vabufr: backend %s recovered", backend)
		} else {
			cfg.Logf("vabufr: backend %s marked down (%s)", backend, reason)
		}
	})
	if cfg.FillQueue > 0 {
		// Re-check a down owner at a quarter of the probe interval so a
		// fill lands within one probe of the recovery, bounded to stay
		// polite on long intervals and responsive in tests.
		poll := rt.prober.cfg.interval / 4
		if poll < 5*time.Millisecond {
			poll = 5 * time.Millisecond
		}
		if poll > 500*time.Millisecond {
			poll = 500 * time.Millisecond
		}
		rt.filler = newFiller(rt.prober, cfg.Client, rt.met, rt.budget,
			cfg.FillQueue, cfg.FillWait, poll, cfg.Logf)
	}

	rt.mux.HandleFunc("POST /v1/insert", rt.single("/v1/insert", "insert"))
	rt.mux.HandleFunc("POST /v1/yield", rt.single("/v1/yield", "yield"))
	rt.mux.HandleFunc("POST /v1/yield:stream", rt.stream)
	rt.mux.HandleFunc("POST /v1/insert:batch", rt.batch("/v1/insert:batch", "insert"))
	rt.mux.HandleFunc("POST /v1/yield:batch", rt.batch("/v1/yield:batch", "yield"))
	rt.mux.HandleFunc("GET /v1/benchmarks", rt.anyBackend("/v1/benchmarks"))
	rt.mux.HandleFunc("GET /healthz", rt.healthz)
	rt.mux.HandleFunc("GET /readyz", rt.readyz)
	rt.mux.HandleFunc("GET /metrics", rt.metricsHandler)
	if cfg.EnableAdmin {
		rt.mux.HandleFunc("GET /admin/backends", rt.adminGetBackends)
		rt.mux.HandleFunc("POST /admin/backends", rt.adminSetBackends)
	}

	for _, b := range backends {
		rt.prober.add(b)
	}
	return rt, nil
}

// normalizeBackends trims whitespace and trailing slashes and drops
// empties; duplicates surface later as a newRing error.
func normalizeBackends(in []string) ([]string, error) {
	var out []string
	for _, b := range in {
		b = strings.TrimSpace(b)
		b = strings.TrimRight(b, "/")
		if b != "" {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("backend list is empty")
	}
	return out, nil
}

func memberSet(backends []string) map[string]bool {
	set := make(map[string]bool, len(backends))
	for _, b := range backends {
		set[b] = true
	}
	return set
}

// sameMembers reports whether two backend lists name the same set
// (order is routing-irrelevant: ring points depend only on addresses).
func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := memberSet(a)
	for _, url := range b {
		if !set[url] {
			return false
		}
	}
	return true
}

// Reload rebuilds the ring over a new backend set and swaps it in
// atomically. In-flight requests keep the membership view they started
// with; new requests route on the new ring. Probers start for added
// backends (which begin *down* and take traffic only after their first
// healthy probes) and stop for removed ones, whose pending peer fills
// are dropped. A reload naming the same member set is a no-op. The
// previous ring is retained so keys the rebuild moved are served from
// their previous owner's cache via synchronous peer lookup instead of
// being recomputed cold.
func (rt *Router) Reload(backends []string) error {
	normalized, err := normalizeBackends(backends)
	if err != nil {
		return err
	}
	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	old := rt.mem.Load()
	if sameMembers(old.backends, normalized) {
		return nil
	}
	ring, err := newRing(normalized, rt.cfg.VNodes)
	if err != nil {
		return err
	}
	next := &membership{
		backends:    normalized,
		member:      memberSet(normalized),
		ring:        ring,
		prev:        old.ring,
		prevExpires: time.Now().Add(rt.cfg.LookupWindow),
	}
	// Start probing additions before the swap so the first request
	// routed to a new backend finds prober state (down, not unknown).
	added, removed := 0, 0
	for _, url := range normalized {
		if !old.member[url] {
			rt.prober.add(url)
			added++
		}
	}
	rt.mem.Store(next)
	// Retire removals after the swap: requests still holding the old
	// membership degrade gracefully (healthy() answers false for a
	// removed backend, so they prefer surviving members).
	for _, url := range old.backends {
		if !next.member[url] {
			rt.prober.remove(url)
			if rt.filler != nil {
				rt.filler.retire(url)
			}
			rt.budget.retire(url)
			rt.breaker.retire(url)
			removed++
		}
	}
	rt.met.recordRingRebuild()
	rt.cfg.Logf("vabufr: ring rebuilt: %d backends (%d added, %d removed)",
		len(normalized), added, removed)
	return nil
}

// expirePrev drops the previous ring immediately, as if the lookup
// window had elapsed (tests).
func (rt *Router) expirePrev() {
	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	old := rt.mem.Load()
	if old.prev == nil {
		return
	}
	next := *old
	next.prev = nil
	rt.mem.Store(&next)
}

// Backends returns the current member URLs.
func (rt *Router) Backends() []string {
	return append([]string(nil), rt.mem.Load().backends...)
}

// Handler returns the root handler for an http.Server.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the probers and the fill worker. Pending fills are
// dropped — they are an optimization, and the owners will simply
// recompute.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		rt.prober.close()
		if rt.filler != nil {
			rt.filler.close()
		}
	})
}

// writeJSON emits a JSON body with the vabufd response conventions
// (indented, Retry-After on overload statuses).
func (rt *Router) writeJSON(w http.ResponseWriter, endpoint string, status int, body any) {
	rt.met.recordRequest(endpoint, status)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func errorBody(err error) server.ErrorResult { return server.ErrorResult{Error: err.Error()} }

// readBody reads the request body under the configured limit, mapping
// overruns to 413 like the backends do.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf(
				"request body exceeds the %d-byte limit", tooBig.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading request: %w", err)
	}
	return body, 0, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// data — the router validates exactly as strictly as the backends so a
// request it answers 400 locally would have been a 400 there too.
func strictUnmarshal(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return fmt.Errorf("request body has trailing data after the JSON document")
	}
	return nil
}

// routingKey normalizes a copy of the request and returns its partition
// key: the content-addressed fingerprint hashed with an *empty* epoch,
// so an epoch bump invalidates caches without moving any partition.
func routingKey(kind string, body []byte) (string, error) {
	switch kind {
	case "insert":
		var req server.InsertRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return "", err
		}
		if err := req.Normalize(); err != nil {
			return "", err
		}
		return req.Fingerprint(""), nil
	default: // yield (and its stream)
		var req server.YieldRequest
		if err := strictUnmarshal(body, &req); err != nil {
			return "", err
		}
		if err := req.Normalize(); err != nil {
			return "", err
		}
		return req.Fingerprint(""), nil
	}
}

// attempt is the outcome of one proxied call that received an HTTP
// response (transport failures never produce one).
type attempt struct {
	backend string
	status  int
	header  http.Header
	body    []byte
}

// post forwards payload to a backend's path, buffering the response.
// The remaining deadline budget of ctx (when it has one) rides along in
// Vabuf-Deadline-Ms — stamped at send time, so queue and transit time
// already spent is naturally subtracted at every hop.
func (rt *Router) post(ctx context.Context, url, path string, payload []byte) (*attempt, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		url+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	server.SetDeadlineHeader(req.Header, ctx)
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &attempt{backend: url, status: resp.StatusCode, header: resp.Header, body: body}, nil
}

// statusClientClosed mirrors the backends' non-standard 499 for requests
// whose client went away while the router was serving them.
const statusClientClosed = 499

// errDeadlineSpent answers requests whose propagated deadline budget is
// already gone; errDeadlineExpired answers those whose budget ran out
// while the router was still trying backends.
var (
	errDeadlineSpent   = errors.New("request deadline already spent before routing")
	errDeadlineExpired = errors.New("request deadline expired while contacting backends")
)

// deadlineContext derives a handler's working context from the
// propagated Vabuf-Deadline-Ms header. A spent budget is answered 504
// here (ok=false — the handler must return); otherwise the returned
// context carries the remaining budget as its deadline and every
// outbound hop re-stamps what is left.
func (rt *Router) deadlineContext(endpoint string, w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	remaining, has := server.DeadlineFromHeader(r.Header)
	if !has {
		return r.Context(), func() {}, true
	}
	if remaining <= 0 {
		rt.met.recordDeadlineRejected(endpoint)
		rt.writeJSON(w, endpoint, http.StatusGatewayTimeout, errorBody(errDeadlineSpent))
		return nil, nil, false
	}
	ctx, cancel := context.WithTimeout(r.Context(), remaining)
	return ctx, cancel, true
}

// finishUnserved answers a request no backend served: 504 when its
// deadline expired mid-walk, 499 when the client went away (written
// best-effort — the connection is usually gone — but recorded either
// way), 503 when the ring is genuinely down.
func (rt *Router) finishUnserved(w http.ResponseWriter, endpoint string, ctx context.Context) {
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			rt.writeJSON(w, endpoint, http.StatusGatewayTimeout, errorBody(errDeadlineExpired))
		} else {
			rt.writeJSON(w, endpoint, statusClientClosed, errorBody(
				fmt.Errorf("client closed request: %w", err)))
		}
		return
	}
	rt.writeJSON(w, endpoint, http.StatusServiceUnavailable, errorBody(errNoBackend))
}

// clientFault reports whether a transport error is the *client's* doing
// — its context died, or the request's deadline ran out — rather than
// backend evidence. Such errors must not mark the backend down, trip
// its breaker, or consume retry budget.
func clientFault(ctx context.Context, err error) bool {
	return ctx.Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// spendRetry pays one retry-budget token for a manufactured request to
// url, counting the denial when the bucket is dry.
func (rt *Router) spendRetry(url string) bool {
	if rt.budget.spend(url) {
		return true
	}
	rt.met.recordBudgetExhausted()
	return false
}

// saturated reports an explicit back-off signal: the backend is up but
// refusing work (queue full, draining, shedding) — worth trying the next
// ring node, and surfaced verbatim when the whole ring answers it.
func saturated(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// tryBackends walks the candidate backends in order: unhealthy and
// breaker-open ones are skipped (unless every candidate is — probes may
// simply not have run yet), transport errors mark the backend down, trip
// its breaker, and move on, retryable 5xx answers (500/502) are retried
// on the next backend, and 429/503 answers are remembered but passed
// over. Only the first send is free: every further hop pays a
// retry-budget token, and a dry bucket stops the walk — the router must
// never amplify an outage into a retry storm. It returns the first
// conclusive answer; failing that the last retryable 5xx (the truth
// beats a made-up 503); failing that the last saturated answer; failing
// that nil. The client's context dying stops the walk without marking
// anyone down — retrying for a caller that hung up only burns backends.
func (rt *Router) tryBackends(ctx context.Context, order []string, path string, payload []byte) (served, sat *attempt) {
	usable := func(b string) bool {
		return rt.prober.healthy(b) && !rt.breaker.isOpen(b)
	}
	anyUsable := false
	for _, b := range order {
		if usable(b) {
			anyUsable = true
			break
		}
	}
	sent := 0
	var failed *attempt
	for _, b := range order {
		if ctx.Err() != nil {
			return nil, sat
		}
		if anyUsable && !usable(b) {
			continue
		}
		if sent > 0 && !rt.spendRetry(b) {
			break
		}
		if !rt.breaker.allow(b) {
			continue // lost the half-open probe slot to a sibling request
		}
		if sent == 0 {
			rt.budget.credit(b)
		}
		sent++
		rt.met.recordAttempt(b)
		att, err := rt.post(ctx, b, path, payload)
		if err != nil {
			if clientFault(ctx, err) {
				return nil, sat
			}
			rt.prober.noteProxyError(b, err)
			rt.breaker.failure(b)
			continue
		}
		if saturated(att.status) {
			sat = att
			continue
		}
		if retryable5xx(att.status) {
			rt.breaker.failure(b)
			failed = att
			continue
		}
		rt.breaker.success(b)
		rt.met.recordProxied(b)
		return att, sat
	}
	if failed != nil {
		return failed, sat
	}
	return nil, sat
}

// copyProxied relays a buffered backend response verbatim: status, body,
// and the headers that matter to clients (content type, backpressure,
// backend identity).
func (rt *Router) copyProxied(w http.ResponseWriter, endpoint string, att *attempt) {
	rt.met.recordRequest(endpoint, att.status)
	for _, h := range []string{"Content-Type", "Retry-After", "Vabuf-Instance", "Vabuf-Epoch"} {
		if v := att.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(att.status)
	w.Write(att.body)
}

// errNoBackend is the whole-ring-down answer; 503 keeps it retryable for
// clients already handling backend saturation.
var errNoBackend = errors.New("no vabufd backend could serve the request; ring is down or unreachable")

// servingTarget is the backend tryBackends will actually hit first: the
// first healthy backend of the order, or the owner when none is healthy.
func (rt *Router) servingTarget(order []string) string {
	for _, b := range order {
		if rt.prober.healthy(b) {
			return b
		}
	}
	return order[0]
}

// single returns the handler proxying one non-batch endpoint.
func (rt *Router) single(endpoint, kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel, ok := rt.deadlineContext(endpoint, w, r)
		if !ok {
			return
		}
		defer cancel()
		body, status, err := rt.readBody(w, r)
		if err != nil {
			rt.writeJSON(w, endpoint, status, errorBody(err))
			return
		}
		fp, err := routingKey(kind, body)
		if err != nil {
			rt.writeJSON(w, endpoint, http.StatusBadRequest, errorBody(err))
			return
		}
		mem := rt.mem.Load()
		order := mem.ring.successors(fp, len(mem.backends))
		target := rt.servingTarget(order)
		// Before the target computes a key it may never have seen —
		// because a rebuild moved the key to it, or because it is a
		// failover successor standing in for a down owner — ask the
		// previous owner's cache synchronously. A hit serves the client
		// immediately and warms the target via the async fill path.
		if att := rt.peerLookup(ctx, mem, kind, fp, target, body); att != nil {
			rt.maybeFill(kind, target, body, att)
			rt.copyProxied(w, endpoint, att)
			return
		}
		var served, sat *attempt
		if rt.cfg.HedgeAfter > 0 {
			// insert and yield are idempotent pure computations (and the
			// backends coalesce identical in-flight requests), so a
			// duplicate send is safe.
			served, sat = rt.tryHedged(ctx, order, endpoint, body)
		} else {
			t0 := time.Now()
			served, sat = rt.tryBackends(ctx, order, endpoint, body)
			if served != nil && served.status == http.StatusOK {
				rt.lat.observe(time.Since(t0))
			}
		}
		switch {
		case served != nil:
			if served.backend != order[0] {
				rt.met.recordFailover(order[0])
				rt.maybeFill(kind, order[0], body, served)
			}
			rt.copyProxied(w, endpoint, served)
		case sat != nil:
			rt.copyProxied(w, endpoint, sat)
		default:
			rt.finishUnserved(w, endpoint, ctx)
		}
	}
}

// maybeFill enqueues a peer cache fill for a success served by a
// backend other than `owner` (a failover successor, or the previous
// owner answering a synchronous lookup).
func (rt *Router) maybeFill(kind, owner string, reqBody []byte, served *attempt) {
	if rt.filler == nil || served.status != http.StatusOK || served.backend == owner {
		return
	}
	epoch := served.header.Get("Vabuf-Epoch")
	rt.filler.enqueue(fillJob{
		owner:   owner,
		kind:    kind,
		epoch:   epoch,
		request: json.RawMessage(reqBody),
		result:  json.RawMessage(served.body),
	})
}

// stream proxies POST /v1/yield:stream. Failover happens only up to the
// first accepted response: once NDJSON bytes have been flushed to the
// client, a mid-stream backend death cannot be replayed transparently
// (the client has already seen part of the event stream) and surfaces as
// a truncated stream the client retries.
func (rt *Router) stream(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/yield:stream"
	ctx, cancel, ok := rt.deadlineContext(endpoint, w, r)
	if !ok {
		return
	}
	defer cancel()
	body, status, err := rt.readBody(w, r)
	if err != nil {
		rt.writeJSON(w, endpoint, status, errorBody(err))
		return
	}
	fp, err := routingKey("yield", body)
	if err != nil {
		rt.writeJSON(w, endpoint, http.StatusBadRequest, errorBody(err))
		return
	}
	mem := rt.mem.Load()
	order := mem.ring.successors(fp, len(mem.backends))
	usable := func(b string) bool {
		return rt.prober.healthy(b) && !rt.breaker.isOpen(b)
	}
	anyUsable := false
	for _, b := range order {
		if usable(b) {
			anyUsable = true
			break
		}
	}
	var sat *http.Response
	sent := 0
	for _, b := range order {
		if ctx.Err() != nil {
			break
		}
		if anyUsable && !usable(b) {
			continue
		}
		// Failover to a second backend is manufactured traffic like any
		// other retry — it pays a budget token.
		if sent > 0 && !rt.spendRetry(b) {
			break
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			b+endpoint, bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		server.SetDeadlineHeader(req.Header, ctx)
		if sent == 0 {
			rt.budget.credit(b)
		}
		sent++
		rt.met.recordAttempt(b)
		resp, err := rt.cfg.Client.Do(req)
		if err != nil {
			if clientFault(ctx, err) {
				break
			}
			rt.prober.noteProxyError(b, err)
			rt.breaker.failure(b)
			continue
		}
		if saturated(resp.StatusCode) {
			if sat != nil {
				sat.Body.Close()
			}
			sat = resp
			continue
		}
		if b != order[0] {
			rt.met.recordFailover(order[0])
		}
		rt.breaker.success(b)
		rt.met.recordProxied(b)
		if sat != nil {
			sat.Body.Close()
		}
		rt.relayStream(w, endpoint, resp)
		return
	}
	if sat != nil {
		defer sat.Body.Close()
		satBody, _ := io.ReadAll(io.LimitReader(sat.Body, rt.cfg.MaxRequestBytes))
		rt.copyProxied(w, endpoint, &attempt{
			status: sat.StatusCode, header: sat.Header, body: satBody})
		return
	}
	rt.finishUnserved(w, endpoint, ctx)
}

// relayStream copies an accepted streaming response chunk by chunk,
// flushing after every read so progress events reach the client as the
// backend emits them.
func (rt *Router) relayStream(w http.ResponseWriter, endpoint string, resp *http.Response) {
	defer resp.Body.Close()
	rt.met.recordRequest(endpoint, resp.StatusCode)
	for _, h := range []string{"Content-Type", "Vabuf-Instance", "Vabuf-Epoch"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers now: the client should see the stream open
		// as soon as the backend accepts, not after the first event.
		flusher.Flush()
	}
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client gone; backend stops via context propagation
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// anyBackend proxies a read-only GET (e.g. /v1/benchmarks) to the first
// healthy backend — they all answer identically. When no backend has
// probed healthy yet (cold start: probes may simply not have run, or
// hysteresis not converged), every backend is tried anyway — the same
// fallback tryBackends applies, so a freshly booted router doesn't
// answer 503 for up to a probe interval while the whole fleet is live.
func (rt *Router) anyBackend(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel, ok := rt.deadlineContext(path, w, r)
		if !ok {
			return
		}
		defer cancel()
		mem := rt.mem.Load()
		healthyExists := false
		for _, b := range mem.backends {
			if rt.prober.healthy(b) {
				healthyExists = true
				break
			}
		}
		for _, b := range mem.backends {
			if ctx.Err() != nil {
				break
			}
			if healthyExists && !rt.prober.healthy(b) {
				continue
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				b+path, nil)
			if err != nil {
				continue
			}
			server.SetDeadlineHeader(req.Header, ctx)
			rt.met.recordAttempt(b)
			resp, err := rt.cfg.Client.Do(req)
			if err != nil {
				// A vanished client is not backend evidence: marking the
				// backend down here would let one impatient caller bench a
				// healthy instance for the whole fleet.
				if clientFault(ctx, err) {
					break
				}
				rt.prober.noteProxyError(b, err)
				continue
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			rt.met.recordProxied(b)
			rt.copyProxied(w, path, &attempt{
				backend: b, status: resp.StatusCode, header: resp.Header, body: body})
			return
		}
		rt.finishUnserved(w, path, ctx)
	}
}

func (rt *Router) healthz(w http.ResponseWriter, _ *http.Request) {
	rt.writeJSON(w, "/healthz", http.StatusOK, map[string]any{"status": "ok"})
}

// readyz answers 200 once at least one backend is healthy — before that
// the router could only answer 503s, so it should not take traffic.
func (rt *Router) readyz(w http.ResponseWriter, _ *http.Request) {
	if rt.prober.anyHealthy() {
		rt.writeJSON(w, "/readyz", http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	rt.writeJSON(w, "/readyz", http.StatusServiceUnavailable,
		map[string]any{"status": "no_healthy_backends"})
}

func (rt *Router) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	backlog := 0
	if rt.filler != nil {
		backlog = rt.filler.backlog()
	}
	openNow, opens := rt.breaker.stats()
	rt.writeJSON(w, "/metrics", http.StatusOK,
		rt.met.snapshot(rt.mem.Load(), rt.prober, backlog, rt.prober.anyHealthy(),
			openNow, opens))
}

// adminBackendsRequest is the body of POST /admin/backends.
type adminBackendsRequest struct {
	Backends []string `json:"backends"`
}

// adminBackendsResult answers both admin endpoints.
type adminBackendsResult struct {
	Backends     []string `json:"backends"`
	RingRebuilds int64    `json:"ring_rebuilds"`
}

func (rt *Router) adminGetBackends(w http.ResponseWriter, _ *http.Request) {
	rt.writeJSON(w, "/admin/backends", http.StatusOK, adminBackendsResult{
		Backends:     rt.Backends(),
		RingRebuilds: rt.met.ringRebuildCount(),
	})
}

// adminSetBackends replaces the fleet membership over HTTP — the
// programmatic twin of SIGHUP + -backends-file.
func (rt *Router) adminSetBackends(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/admin/backends"
	body, status, err := rt.readBody(w, r)
	if err != nil {
		rt.writeJSON(w, endpoint, status, errorBody(err))
		return
	}
	var req adminBackendsRequest
	if err := strictUnmarshal(body, &req); err != nil {
		rt.writeJSON(w, endpoint, http.StatusBadRequest, errorBody(err))
		return
	}
	if err := rt.Reload(req.Backends); err != nil {
		rt.writeJSON(w, endpoint, http.StatusBadRequest, errorBody(err))
		return
	}
	rt.writeJSON(w, endpoint, http.StatusOK, adminBackendsResult{
		Backends:     rt.Backends(),
		RingRebuilds: rt.met.ringRebuildCount(),
	})
}

// --- batch scatter-gather ---

// rawBatch is the kind-agnostic shape of a batch request: items stay raw
// so one scatter implementation serves both insert and yield.
type rawBatch struct {
	Defaults json.RawMessage   `json:"defaults,omitempty"`
	Items    []json.RawMessage `json:"items"`
}

// rawBatchItem mirrors server.BatchItemResult / BatchYieldItemResult
// with the result kept raw — reassembled sub-batch answers round-trip
// byte-identically.
type rawBatchItem struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// rawBatchResult is the aggregate response shape (both kinds).
type rawBatchResult struct {
	Items     []rawBatchItem `json:"items"`
	Succeeded int            `json:"succeeded"`
	Errors    int            `json:"errors"`
}

// preparedItem is one batch item after defaults + normalization: its
// routing state plus the normalized payload forwarded in the sub-batch.
type preparedItem struct {
	index   int
	owner   string   // ring owner (order[0]) — the fill target
	order   []string // full successor order of the item's fingerprint
	payload json.RawMessage
}

// prepareItem applies the batch defaults and normalizes one item,
// returning its fingerprint and normalized payload.
func prepareItem(kind string, defaults, item json.RawMessage) (fp string, payload json.RawMessage, err error) {
	switch kind {
	case "insert":
		var d *server.InsertRequest
		if len(defaults) > 0 {
			d = new(server.InsertRequest)
			if err := strictUnmarshal(defaults, d); err != nil {
				return "", nil, err
			}
		}
		var req server.InsertRequest
		if err := strictUnmarshal(item, &req); err != nil {
			return "", nil, err
		}
		req.ApplyDefaults(d)
		if err := req.Normalize(); err != nil {
			return "", nil, err
		}
		payload, err := json.Marshal(req)
		if err != nil {
			return "", nil, err
		}
		return req.Fingerprint(""), payload, nil
	default: // yield
		var d *server.YieldRequest
		if len(defaults) > 0 {
			d = new(server.YieldRequest)
			if err := strictUnmarshal(defaults, d); err != nil {
				return "", nil, err
			}
		}
		var req server.YieldRequest
		if err := strictUnmarshal(item, &req); err != nil {
			return "", nil, err
		}
		req.ApplyDefaults(d)
		if err := req.Normalize(); err != nil {
			return "", nil, err
		}
		payload, err := json.Marshal(req)
		if err != nil {
			return "", nil, err
		}
		return req.Fingerprint(""), payload, nil
	}
}

// batch returns the scatter-gather handler of one batch endpoint: split
// the items per ring owner, fan the sub-batches out concurrently (each
// with the usual failover walk), and reassemble the per-item results in
// the original order with single-backend partial-failure semantics.
func (rt *Router) batch(endpoint, kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel, ok := rt.deadlineContext(endpoint, w, r)
		if !ok {
			return
		}
		defer cancel()
		body, status, err := rt.readBody(w, r)
		if err != nil {
			rt.writeJSON(w, endpoint, status, errorBody(err))
			return
		}
		var breq rawBatch
		if err := strictUnmarshal(body, &breq); err != nil {
			rt.writeJSON(w, endpoint, http.StatusBadRequest, errorBody(err))
			return
		}
		if len(breq.Items) == 0 {
			rt.writeJSON(w, endpoint, http.StatusBadRequest,
				errorBody(fmt.Errorf(`"items" must contain at least one request`)))
			return
		}

		mem := rt.mem.Load()
		out := rawBatchResult{Items: make([]rawBatchItem, len(breq.Items))}
		// Split: invalid items answer their 400 locally (parity with the
		// backend's per-item validation); valid ones group under the
		// first *healthy* backend of their successor order so a dead
		// owner's items fail over together instead of one by one.
		groups := make(map[string][]preparedItem)
		for i, raw := range breq.Items {
			out.Items[i].Index = i
			fp, payload, err := prepareItem(kind, breq.Defaults, raw)
			if err != nil {
				out.Items[i].Status, out.Items[i].Error = http.StatusBadRequest, err.Error()
				continue
			}
			order := mem.ring.successors(fp, len(mem.backends))
			target := rt.servingTarget(order)
			groups[target] = append(groups[target], preparedItem{
				index: i, owner: order[0], order: order, payload: payload})
		}
		rt.met.recordFanout(len(groups))

		// Scatter concurrently; each group writes only its own items.
		type groupOutcome struct {
			target string
			att    *attempt // HTTP answer (any status), nil on transport exhaustion
			sat    *attempt
			items  []preparedItem
		}
		outcomes := make(chan groupOutcome, len(groups))
		for target, items := range groups {
			go func(target string, items []preparedItem) {
				payloads := make([]json.RawMessage, len(items))
				for j, it := range items {
					payloads[j] = it.payload
				}
				sub, _ := json.Marshal(rawBatch{Items: payloads})
				served, sat := rt.tryBackends(ctx, rt.groupOrder(mem, target, items), endpoint, sub)
				outcomes <- groupOutcome{target: target, att: served, sat: sat, items: items}
			}(target, items)
		}

		groupsOK, groupsSat429, groupsSat503, groupsDead := 0, 0, 0, 0
		var retryAfter string
		for range groups {
			oc := <-outcomes
			switch {
			case oc.att != nil && oc.att.status == http.StatusOK:
				groupsOK++
				rt.gatherGroup(kind, endpoint, &out, oc.att, oc.items)
			case oc.att != nil:
				// A conclusive non-200 aggregate (e.g. 400 batch too
				// large): every item of the group inherits it.
				groupsOK++ // conclusively answered, not saturation
				var e server.ErrorResult
				json.Unmarshal(oc.att.body, &e)
				for _, it := range oc.items {
					out.Items[it.index].Status = oc.att.status
					out.Items[it.index].Error = e.Error
				}
			case oc.sat != nil:
				if oc.sat.status == http.StatusTooManyRequests {
					groupsSat429++
				} else {
					groupsSat503++
				}
				if ra := oc.sat.header.Get("Retry-After"); ra != "" {
					retryAfter = ra
				}
				var e server.ErrorResult
				json.Unmarshal(oc.sat.body, &e)
				for _, it := range oc.items {
					out.Items[it.index].Status = oc.sat.status
					out.Items[it.index].Error = e.Error
				}
			default:
				groupsDead++
				for _, it := range oc.items {
					out.Items[it.index].Status = http.StatusServiceUnavailable
					out.Items[it.index].Error = errNoBackend.Error()
				}
			}
		}
		for i := range out.Items {
			if out.Items[i].Status == http.StatusOK {
				out.Succeeded++
			} else {
				out.Errors++
			}
		}
		// Aggregate parity with a single backend: partial failure never
		// fails the batch; only a batch where no group got work enqueued
		// answers 503 (draining/shedding/dead ring) or 429 (queues full).
		status = http.StatusOK
		if groupsOK == 0 {
			switch {
			case groupsSat503 > 0 || groupsDead > 0:
				status = http.StatusServiceUnavailable
			case groupsSat429 > 0:
				status = http.StatusTooManyRequests
			}
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
		}
		rt.writeJSON(w, endpoint, status, out)
	}
}

// groupOrder is the failover order of one scatter group: the target
// first, then the remaining backends in the first item's ring order —
// after the target, cache affinity is already lost, so any order works,
// but ring order keeps retries deterministic.
func (rt *Router) groupOrder(mem *membership, target string, items []preparedItem) []string {
	order := []string{target}
	seen := map[string]bool{target: true}
	if len(items) > 0 {
		for _, b := range items[0].order {
			if !seen[b] {
				seen[b] = true
				order = append(order, b)
			}
		}
	}
	for _, b := range mem.backends {
		if !seen[b] {
			seen[b] = true
			order = append(order, b)
		}
	}
	return order
}

// gatherGroup maps one sub-batch answer back to the aggregate by
// original index and enqueues peer fills for failover-served items.
func (rt *Router) gatherGroup(kind, endpoint string, out *rawBatchResult, att *attempt, items []preparedItem) {
	var sub rawBatchResult
	if err := json.Unmarshal(att.body, &sub); err != nil {
		// Unparsable body: say so — reporting an item count from the
		// zero-valued struct ("0 items for N sent") would misdiagnose a
		// corrupt response as a miscounted one.
		for _, it := range items {
			out.Items[it.index].Status = http.StatusBadGateway
			out.Items[it.index].Error = fmt.Sprintf(
				"backend answered an unparsable sub-batch body: %v", err)
		}
		return
	}
	if len(sub.Items) != len(items) {
		for _, it := range items {
			out.Items[it.index].Status = http.StatusBadGateway
			out.Items[it.index].Error = fmt.Sprintf(
				"backend answered a mismatched sub-batch: %d items for %d sent",
				len(sub.Items), len(items))
		}
		return
	}
	epoch := att.header.Get("Vabuf-Epoch")
	for j, it := range items {
		res := sub.Items[j]
		out.Items[it.index].Status = res.Status
		out.Items[it.index].Result = res.Result
		out.Items[it.index].Error = res.Error
		if it.owner != att.backend {
			rt.met.recordFailover(it.owner)
			if rt.filler != nil && res.Status == http.StatusOK {
				rt.filler.enqueue(fillJob{
					owner:   it.owner,
					kind:    kind,
					epoch:   epoch,
					request: it.payload,
					result:  res.Result,
				})
			}
		}
	}
}

// ownersOf reports the distinct ring owners of a key set — test helper
// for asserting scatter grouping.
func (rt *Router) ownersOf(keys []string) []string {
	mem := rt.mem.Load()
	seen := map[string]bool{}
	var out []string
	for _, k := range keys {
		o := mem.ring.owner(k)
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Strings(out)
	return out
}
