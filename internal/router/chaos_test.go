package router

// Chaos integration: the whole fleet misbehaves (injected 500s and
// resets in front of every backend) while the router's retry budget,
// breaker, and failover walk keep the client-visible success rate high
// and the request amplification bounded. This is the in-process version
// of scripts/chaos.sh — same envelopes, assertable under -race.

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vabuf/internal/chaos"
	"vabuf/internal/server"
)

// TestFleetUnderChaos: 10% injected faults (server-side 500s and
// connection resets) across a 3-backend fleet. With the default retry
// budget the router must keep interactive success >= 99% and send at
// most 1.3x as many backend attempts as it received client requests.
func TestFleetUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not a -short test")
	}
	fleet := newFleet(t, 3, "")
	urls := make([]string, len(fleet))
	for i, b := range fleet {
		inj, err := chaos.Parse("seed=7,error=0.07,reset=0.03")
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(inj.Middleware(b))
		defer ts.Close()
		urls[i] = ts.URL
	}
	rt, ts := newTestRouterCfg(t, fleet, func(cfg *Config) {
		cfg.Backends = urls
		// Production-shaped resilience settings, scaled to test time.
		cfg.RetryBudget = 0.2
		cfg.RetryBurst = 20
		cfg.BreakerFailures = 5
		cfg.BreakerCooldown = 250 * time.Millisecond
		cfg.LookupTimeout = -1 // lookups would skew the amplification count
		cfg.FillQueue = -1     // so would async peer fills
	})
	waitFor(t, "all chaos-wrapped backends healthy", func() bool {
		for _, u := range urls {
			if !rt.prober.healthy(u) {
				return false
			}
		}
		return true
	})

	const n = 120
	ok, failed := 0, 0
	for i := 0; i < n; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/insert",
			server.InsertRequest{Tree: treeText(t, int64(1000+i)), Algo: "nom"})
		if resp.StatusCode == http.StatusOK {
			ok++
		} else {
			failed++
		}
	}
	if ok < n*99/100 {
		t.Errorf("success rate %d/%d under 10%% faults, want >= 99%%", ok, n)
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	attempts := int64(0)
	for _, b := range met["backends"].([]any) {
		attempts += int64(b.(map[string]any)["attempts"].(float64))
	}
	// ~10% of attempts fault and are retried once from the budget; the
	// envelope leaves headroom for a retry that faults again.
	if float64(attempts) > 1.3*float64(n) {
		t.Errorf("amplification: %d backend attempts for %d client requests (%.2fx)",
			attempts, n, float64(attempts)/float64(n))
	}
	if attempts < int64(n) {
		t.Errorf("attempts (%d) below request count (%d): attempts metric undercounts", attempts, n)
	}
	t.Logf("chaos envelope: %d/%d ok, %d attempts (%.2fx amplification)",
		ok, n, attempts, float64(attempts)/float64(n))
}
