package router

// Resilience tests: retry budgets, circuit breakers, hedged requests,
// and deadline propagation through the router. Faulty backends here are
// hand-built handlers (healthy /readyz, failing request paths) — the
// exact failure mode the prober cannot see and the breaker exists for.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"vabuf/internal/server"
)

func TestRetryBudgetSpendAndCredit(t *testing.T) {
	b := newRetryBudget(0.5, 2)
	// Fresh bucket starts full at burst.
	if !b.spend("u") || !b.spend("u") {
		t.Fatal("fresh bucket refused its burst")
	}
	if b.spend("u") {
		t.Fatal("dry bucket allowed a spend")
	}
	// Two first attempts at ratio 0.5 earn one token back.
	b.credit("u")
	b.credit("u")
	if !b.spend("u") {
		t.Fatal("credited bucket refused a spend")
	}
	if b.spend("u") {
		t.Fatal("bucket overdrew its credit")
	}
	// A nil budget (disabled) allows everything.
	var nilB *retryBudget
	nilB.credit("u")
	if !nilB.spend("u") {
		t.Fatal("nil budget refused a spend")
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	s := newBreakerSet(3, 50*time.Millisecond)
	for i := 0; i < 2; i++ {
		s.failure("u")
	}
	if s.isOpen("u") {
		t.Fatal("breaker open below threshold")
	}
	s.failure("u")
	if !s.isOpen("u") {
		t.Fatal("breaker closed at threshold")
	}
	if s.allow("u") {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	time.Sleep(60 * time.Millisecond)
	if !s.allow("u") {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if s.allow("u") {
		t.Fatal("breaker allowed a second probe in the same half-open window")
	}
	s.success("u")
	if s.isOpen("u") || !s.allow("u") {
		t.Fatal("successful probe did not close the breaker")
	}
	if open, opens := s.stats(); open != 0 || opens != 1 {
		t.Fatalf("stats = (%d open, %d opens), want (0, 1)", open, opens)
	}
}

func TestLatencyTrackerP95(t *testing.T) {
	var lt latencyTracker
	if lt.p95() != 0 {
		t.Fatal("empty tracker reported a p95")
	}
	for i := 1; i <= 100; i++ {
		lt.observe(time.Duration(i) * time.Millisecond)
	}
	if got := lt.p95(); got != 95*time.Millisecond {
		t.Fatalf("p95 of 1..100ms = %v, want 95ms", got)
	}
}

// faultyBackend answers /readyz 200 (the prober keeps it healthy) but
// fails every request endpoint with 500 until fixed.
type faultyBackend struct {
	fixed atomic.Bool
	hits  atomic.Int64
}

func (f *faultyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz", "/readyz":
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
		return
	}
	f.hits.Add(1)
	if f.fixed.Load() {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"num_buffers":1}`)
		return
	}
	http.Error(w, `{"error":"wedged"}`, http.StatusInternalServerError)
}

// TestBreakerBenchesErroringBackend: a backend that probes healthy but
// answers 500s gets routed around after BreakerFailures, and the good
// sibling serves everything; the 500s stop leaking to clients.
func TestBreakerBenchesErroringBackend(t *testing.T) {
	bad := &faultyBackend{}
	badTS := httptest.NewServer(bad)
	defer badTS.Close()
	fleet := newFleet(t, 1, "")
	rt, ts := newTestRouterCfg(t, fleet, func(cfg *Config) {
		cfg.Backends = []string{badTS.URL, fleet[0].ts.URL}
		cfg.BreakerFailures = 3
		cfg.BreakerCooldown = time.Minute // stays benched for the whole test
		cfg.RetryBurst = 100              // budget is not under test here
		cfg.LookupTimeout = -1            // lookups would muddy the hit counts
		cfg.FillQueue = -1                // fill replays would too
	})
	waitFor(t, "both backends healthy", func() bool {
		return rt.prober.healthy(badTS.URL) && rt.prober.healthy(fleet[0].ts.URL)
	})

	var tail500 int
	for i := 0; i < 20; i++ {
		resp, raw := postJSON(t, ts.URL+"/v1/insert",
			server.InsertRequest{Tree: treeText(t, int64(i)), Algo: "nom"})
		if resp.StatusCode != http.StatusOK {
			tail500++
			_ = raw
		}
	}
	// Every request must succeed: owner-side 500s retry on the sibling.
	if tail500 != 0 {
		t.Errorf("%d requests failed despite a healthy sibling", tail500)
	}
	if open, _ := rt.breaker.stats(); open != 1 {
		t.Errorf("open breakers = %d, want 1 (the erroring backend)", open)
	}
	// Once open, the bad backend stops seeing traffic: its hit count
	// freezes while further requests flow.
	frozen := bad.hits.Load()
	for i := 20; i < 30; i++ {
		postJSON(t, ts.URL+"/v1/insert",
			server.InsertRequest{Tree: treeText(t, int64(i)), Algo: "nom"})
	}
	if got := bad.hits.Load(); got != frozen {
		t.Errorf("benched backend still saw %d new requests", got-frozen)
	}
}

// TestRetryBudgetBoundsAmplification: with a tiny budget and no breaker,
// the router stops manufacturing retries against a failing backend once
// the bucket runs dry — the 500 surfaces instead of a retry storm.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	bad := &faultyBackend{}
	badTS := httptest.NewServer(bad)
	defer badTS.Close()
	fleet := newFleet(t, 1, "")
	good := fleet[0]
	rt, ts := newTestRouterCfg(t, fleet, func(cfg *Config) {
		cfg.Backends = []string{badTS.URL, good.ts.URL}
		cfg.RetryBudget = 0.01 // almost no credit per first attempt
		cfg.RetryBurst = 1     // one manufactured request, total
		cfg.BreakerFailures = -1
		cfg.LookupTimeout = -1 // lookups would also draw on the budget
	})
	waitFor(t, "both backends healthy", func() bool {
		return rt.prober.healthy(badTS.URL) && rt.prober.healthy(good.ts.URL)
	})

	okN, failN := 0, 0
	for i := 0; i < 12; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/insert",
			server.InsertRequest{Tree: treeText(t, int64(i)), Algo: "nom"})
		if resp.StatusCode == http.StatusOK {
			okN++
		} else {
			failN++
		}
	}
	// Keys owned by the good backend succeed on the free first attempt;
	// bad-owned keys get at most ~1 budgeted failover, then surface 500.
	if okN == 0 {
		t.Fatal("no request succeeded at all")
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	res := met["resilience"].(map[string]any)
	if got, _ := res["retry_budget_exhausted"].(float64); got == 0 {
		t.Error("retry_budget_exhausted = 0, want > 0 (the budget never bit)")
	}
	// Amplification bound: the bad backend absorbs one attempt per
	// bad-owned request plus at most burst+earned manufactured ones; it
	// must see nowhere near one retry per failure.
	attempts := int64(0)
	for _, b := range met["backends"].([]any) {
		attempts += int64(b.(map[string]any)["attempts"].(float64))
	}
	if attempts > 12+3 {
		t.Errorf("total attempts = %d for 12 requests with burst 1", attempts)
	}
}

// slowBackend wraps a real server, delaying request endpoints.
type slowBackend struct {
	inner http.Handler
	delay time.Duration
	hits  atomic.Int64
}

func (s *slowBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz", "/readyz":
		s.inner.ServeHTTP(w, r)
		return
	}
	s.hits.Add(1)
	time.Sleep(s.delay)
	s.inner.ServeHTTP(w, r)
}

// TestHedgedRequestWinsOverSlowBackend: when the owner is slow, the
// hedge fires after HedgeAfter and the fast sibling's answer serves the
// client well before the slow owner finishes.
func TestHedgedRequestWinsOverSlowBackend(t *testing.T) {
	fleet := newFleet(t, 2, "")
	slow := &slowBackend{inner: fleet[0], delay: 600 * time.Millisecond}
	slowTS := httptest.NewServer(slow)
	defer slowTS.Close()
	rt, ts := newTestRouterCfg(t, fleet, func(cfg *Config) {
		cfg.Backends = []string{slowTS.URL, fleet[1].ts.URL}
		cfg.HedgeAfter = 40 * time.Millisecond
		cfg.RetryBurst = 100
		cfg.LookupTimeout = -1
	})
	waitFor(t, "both backends healthy", func() bool {
		return rt.prober.healthy(slowTS.URL) && rt.prober.healthy(fleet[1].ts.URL)
	})

	// Find a tree owned by the slow backend so the hedge has something
	// to win; distinct seeds spread keys over both owners.
	wins := 0
	for i := 0; i < 8; i++ {
		body := server.InsertRequest{Tree: treeText(t, int64(40+i)), Algo: "nom"}
		t0 := time.Now()
		resp, raw := postJSON(t, ts.URL+"/v1/insert", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, raw)
		}
		if time.Since(t0) > 500*time.Millisecond {
			t.Errorf("request %d took %v: hedge never rescued it", i, time.Since(t0))
		}
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	res := met["resilience"].(map[string]any)
	wins = int(res["hedge_wins"].(float64))
	if wins == 0 {
		t.Error("hedge_wins = 0: no slow-owned key was rescued by its hedge")
	}
}

// TestRouterRejectsSpentDeadline: a request arriving at the router with
// Vabuf-Deadline-Ms: 0 is answered 504 locally — no backend attempt, no
// DP work anywhere in the fleet.
func TestRouterRejectsSpentDeadline(t *testing.T) {
	fleet := newFleet(t, 2, "")
	rt, ts := newTestRouterCfg(t, fleet, nil)
	_ = rt
	attemptsBefore := routerAttemptsTotal(t, ts)

	for _, ep := range []string{"/v1/insert", "/v1/yield", "/v1/insert:batch", "/v1/yield:stream", "/v1/benchmarks"} {
		method := http.MethodPost
		var body []byte
		switch ep {
		case "/v1/benchmarks":
			method = http.MethodGet
		case "/v1/insert:batch":
			body = []byte(`{"items":[{"bench":"p1","algo":"nom"}]}`)
		default:
			body = []byte(`{"bench":"p1","algo":"nom"}`)
		}
		req, err := http.NewRequest(method, ts.URL+ep, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(server.DeadlineHeader, "0")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("%s with spent deadline: status %d, want 504", ep, resp.StatusCode)
		}
	}
	if after := routerAttemptsTotal(t, ts); after != attemptsBefore {
		t.Errorf("spent-deadline requests caused %d backend attempts", after-attemptsBefore)
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	dl := met["deadline"].(map[string]any)
	if got, _ := dl["rejected_total"].(float64); got != 5 {
		t.Errorf("deadline.rejected_total = %v, want 5", got)
	}
}

// headerCapture wraps a backend and records the deadline header of the
// last request endpoint it served.
type headerCapture struct {
	inner http.Handler
	last  atomic.Value // string
}

func (h *headerCapture) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz", "/readyz":
	default:
		h.last.Store(r.Header.Get(server.DeadlineHeader))
	}
	h.inner.ServeHTTP(w, r)
}

// TestDeadlinePropagatesToBackend: the router re-stamps the REMAINING
// budget on its outbound hop — the backend sees a positive value no
// larger than what the client sent, not a forwarded copy and not
// nothing.
func TestDeadlinePropagatesToBackend(t *testing.T) {
	fleet := newFleet(t, 1, "")
	cap := &headerCapture{inner: fleet[0]}
	capTS := httptest.NewServer(cap)
	defer capTS.Close()
	rt, ts := newTestRouterCfg(t, fleet, func(cfg *Config) {
		cfg.Backends = []string{capTS.URL}
	})
	waitFor(t, "backend healthy", func() bool { return rt.prober.healthy(capTS.URL) })

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/insert",
		bytes.NewReader([]byte(`{"bench":"p1","algo":"nom"}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.DeadlineHeader, "30000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("30s budget: status %d, want 200", resp.StatusCode)
	}

	got, _ := cap.last.Load().(string)
	if got == "" {
		t.Fatal("backend hop carried no deadline header")
	}
	ms, err := strconv.ParseInt(got, 10, 64)
	if err != nil {
		t.Fatalf("backend hop deadline header %q is not an integer", got)
	}
	if ms <= 0 || ms > 30000 {
		t.Errorf("backend hop got %dms of budget, want (0, 30000]", ms)
	}

	// Without a client deadline, the router must not invent one.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/insert",
		server.InsertRequest{Tree: treeText(t, 77), Algo: "nom"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("no-deadline insert: status %d (%s)", resp2.StatusCode, raw2)
	}
	if got, _ := cap.last.Load().(string); got != "" {
		t.Errorf("router invented a deadline header %q for a request without one", got)
	}
}

func routerAttemptsTotal(t *testing.T, ts *httptest.Server) int64 {
	t.Helper()
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	res, ok := met["resilience"].(map[string]any)
	if !ok {
		t.Fatal("/metrics has no resilience section")
	}
	return int64(res["attempts_total"].(float64))
}
