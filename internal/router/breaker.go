package router

// Per-backend circuit breakers, layered *under* the prober. The prober
// answers "is this process alive" on a multi-second probe cadence; the
// breaker answers "is this backend currently failing the requests it
// accepts" on a per-request cadence. A backend that connects fine but
// answers 500s (a wedged cache, a chaos-injected fault) keeps its
// /readyz green, so the prober never benches it — the breaker does:
// after threshold consecutive request failures it opens and the router
// routes around it, and after the cooldown one half-open probe request
// is let through to test the water. A success closes the breaker; the
// prober flipping the backend healthy resets it too (a passed /readyz
// after a down period is equivalent evidence of recovery).

import (
	"sync"
	"time"
)

// breakerState is one backend's breaker.
type breakerState struct {
	fails     int       // consecutive request failures while closed
	open      bool      // tripped: route around this backend
	openUntil time.Time // while open: when the next half-open probe may go
}

// breakerSet holds the breakers, keyed by backend URL. A nil
// *breakerSet (disabled by config) allows everything.
type breakerSet struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open duration between half-open probes
	states    map[string]*breakerState
	opens     int64 // lifetime count of trips (metrics)
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		states:    make(map[string]*breakerState),
	}
}

// state returns the breaker of a backend, creating it closed. Callers
// must hold s.mu.
func (s *breakerSet) state(url string) *breakerState {
	st := s.states[url]
	if st == nil {
		st = &breakerState{}
		s.states[url] = st
	}
	return st
}

// isOpen reports whether the breaker currently routes traffic around
// url. Past openUntil it answers false — the half-open window — but the
// actual probe slot is claimed via allow.
func (s *breakerSet) isOpen(url string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.states[url]
	return st != nil && st.open && time.Now().Before(st.openUntil)
}

// allow claims the right to send one request to url: always true while
// closed; while open, true only for the single half-open probe per
// cooldown (claiming it pushes openUntil forward so concurrent requests
// don't all probe at once).
func (s *breakerSet) allow(url string) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(url)
	if !st.open {
		return true
	}
	now := time.Now()
	if now.Before(st.openUntil) {
		return false
	}
	st.openUntil = now.Add(s.cooldown)
	return true
}

// success records a request url answered conclusively; it closes the
// breaker and clears the failure streak.
func (s *breakerSet) success(url string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	st := s.state(url)
	st.fails = 0
	st.open = false
	s.mu.Unlock()
}

// failure records a request url failed (transport error or retryable
// 5xx); at threshold consecutive failures the breaker trips open.
func (s *breakerSet) failure(url string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	st := s.state(url)
	st.fails++
	if !st.open && st.fails >= s.threshold {
		st.open = true
		st.openUntil = time.Now().Add(s.cooldown)
		s.opens++
	} else if st.open {
		// A failed half-open probe re-arms the cooldown.
		st.openUntil = time.Now().Add(s.cooldown)
	}
	s.mu.Unlock()
}

// reset closes a backend's breaker (probe-driven recovery).
func (s *breakerSet) reset(url string) {
	s.success(url)
}

// retire forgets a backend that left the ring.
func (s *breakerSet) retire(url string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.states, url)
	s.mu.Unlock()
}

// stats reports (currently open breakers, lifetime trips) for /metrics.
func (s *breakerSet) stats() (openNow int, opens int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for _, st := range s.states {
		if st.open && now.Before(st.openUntil) {
			openNow++
		}
	}
	return openNow, s.opens
}
