// Package server implements vabufd, a long-running buffer-insertion
// service over the vabuf library. It amortizes the expensive per-request
// setup — benchmark generation, variation-grid and source construction —
// across requests with LRU caches, bounds concurrency with a fixed worker
// pool behind a bounded queue (overload answers 429 instead of queuing
// unboundedly), maps the library's capacity guards to HTTP statuses
// (ErrTimeout → 504, ErrCapacity → 413), and reports counters, latency
// histograms, queue depth, and cache hit rates on GET /metrics.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vabuf"
)

// Config sizes one Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of insertion workers; <1 selects GOMAXPROCS.
	Workers int
	// QueueDepth is the number of interactive waiting slots behind the
	// workers; <=0 selects 64. A full queue answers 429 with Retry-After.
	QueueDepth int
	// SweepQueueDepth is the number of waiting slots of the sweep class
	// (batch items and requests with "priority": "sweep"); <=0 selects
	// 256, enough to admit one full default-size batch.
	SweepQueueDepth int
	// SweepEvery is the starvation guard of the two-class queue: every
	// SweepEvery-th dispatch prefers the sweep class even under
	// interactive load. <=0 selects 4 (one in four); 1 disables the
	// guard (sweep runs only when no interactive job waits).
	SweepEvery int
	// MaxBatchItems bounds the items of one batch request; <=0 selects 256.
	MaxBatchItems int
	// TreeCacheSize and ModelCacheSize bound the two LRU caches
	// (entries); <=0 selects 32.
	TreeCacheSize  int
	ModelCacheSize int
	// ResultCacheSize bounds the content-addressed result cache
	// (entries): completed /v1/insert and /v1/yield responses keyed by
	// request fingerprint, answered from memory on an exact repeat.
	// 0 selects 128; negative disables the cache (request coalescing
	// stays on — it needs no storage).
	ResultCacheSize int
	// SubtreeCacheMB bounds the shared subtree DP-frontier cache
	// (megabytes): every variation-aware run memoizes pruned per-subtree
	// candidate frontiers keyed by canonical subtree fingerprint, so an
	// ECO re-insert of a lightly edited tree recomputes only the changed
	// branches. 0 selects 64 MiB; negative disables the cache.
	SubtreeCacheMB int
	// DefaultTimeout caps runs whose request omits timeout_ms; 0 means
	// no server-side deadline.
	DefaultTimeout time.Duration
	// MaxRequestBytes bounds request bodies; <=0 selects 8 MiB.
	MaxRequestBytes int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiling endpoints expose internals and cost CPU, so
	// they are opt-in via the vabufd -pprof flag.
	EnablePprof bool
	// SnapshotPath, when set, is the cache snapshot file: Close writes a
	// final snapshot there after draining, and the -snapshot-every ticker
	// (SnapshotEvery) refreshes it while serving. Restore-on-boot is the
	// caller's move (RestoreSnapshot / RestoreSnapshotAsync).
	SnapshotPath string
	// SnapshotEvery, when positive together with SnapshotPath, writes a
	// periodic snapshot so even a crash (no graceful drain) loses at most
	// one interval of cache warm-up.
	SnapshotEvery time.Duration
	// ShedAfter is the sustained-saturation window of the shed gate: once
	// the job queue has been saturated for this long, sweep-class work is
	// rejected early with 503 + Retry-After and /readyz reports not-ready,
	// while interactive work keeps its normal admission path. 0 disables
	// shedding.
	ShedAfter time.Duration
	// Epoch is the cache epoch: a buffer-library / device-model version
	// string mixed into every result fingerprint. Bumping it (the vabufd
	// -epoch flag) invalidates all previously cached results fleet-wide —
	// restored snapshot entries keyed under the old epoch simply never
	// hit again. Empty means the built-in library generation.
	Epoch string
	// Instance is the instance identity surfaced in /metrics, the
	// /readyz body, and the Vabuf-Instance response header so router
	// metrics and failover logs can attribute per-backend. vabufd
	// defaults it to hostname:port once the listener is bound
	// (SetInstanceID).
	Instance string
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SweepQueueDepth <= 0 {
		c.SweepQueueDepth = 256
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = 4
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.TreeCacheSize <= 0 {
		c.TreeCacheSize = 32
	}
	if c.ModelCacheSize <= 0 {
		c.ModelCacheSize = 32
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 128
	}
	if c.SubtreeCacheMB == 0 {
		c.SubtreeCacheMB = 64
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	return c
}

// Server is the vabufd HTTP service. Create with New, expose via
// Handler, and Close after the HTTP listener has shut down.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	pool   *workerPool
	trees  *lruCache
	models *lruCache
	// results is the content-addressed result cache (nil when disabled);
	// flights coalesces concurrent identical requests onto one job.
	results *lruCache
	// subtrees is the shared subtree DP-frontier cache (nil when
	// disabled): one instance serves every run, so repeat and
	// lightly-edited trees reuse each other's pruned frontiers.
	subtrees *vabuf.SubtreeCache
	flights  flightGroup
	met      *metrics
	state    serverState
	// instance holds the instance identity (a string); vabufd overwrites
	// the configured value with hostname:port after binding the listener.
	instance atomic.Value

	closeOnce  sync.Once
	tickerStop chan struct{}
	tickerDone chan struct{}

	// testHookJob, when set, runs at the start of every pool job. Tests
	// use it to hold workers busy deterministically.
	testHookJob func()
	// faults, when set, injects failures at instrumented points — test
	// only, see faults.go. Production code never assigns it.
	faults *faultHooks
}

// New builds a Server and starts its worker pool (and, when configured,
// the periodic snapshot writer).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		pool:   newWorkerPool(cfg.Workers, cfg.QueueDepth, cfg.SweepQueueDepth, cfg.SweepEvery),
		trees:  newLRU(cfg.TreeCacheSize),
		models: newLRU(cfg.ModelCacheSize),
		met:    newMetrics(),
	}
	s.instance.Store(cfg.Instance)
	if cfg.ResultCacheSize > 0 {
		s.results = newLRU(cfg.ResultCacheSize)
	}
	if cfg.SubtreeCacheMB > 0 {
		s.subtrees = vabuf.NewSubtreeCache(int64(cfg.SubtreeCacheMB) << 20)
	}
	s.mux.HandleFunc("POST /v1/insert", s.instrument("/v1/insert", s.insert))
	s.mux.HandleFunc("POST /v1/insert:batch", s.instrument("/v1/insert:batch", s.insertBatch))
	s.mux.HandleFunc("POST /v1/yield", s.instrument("/v1/yield", s.yield))
	s.mux.HandleFunc("POST /v1/yield:stream", s.yieldStream)
	s.mux.HandleFunc("POST /v1/yield:batch", s.instrument("/v1/yield:batch", s.yieldBatch))
	s.mux.HandleFunc("POST /v1/cache/fill", s.instrument("/v1/cache/fill", s.cacheFill))
	s.mux.HandleFunc("POST /v1/cache/lookup", s.instrument("/v1/cache/lookup", s.cacheLookup))
	s.mux.HandleFunc("GET /v1/benchmarks", s.instrument("/v1/benchmarks", s.benchmarks))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.healthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.readyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.metricsHandler))
	if cfg.EnablePprof {
		// The server owns its mux, so the pprof handlers are mounted
		// explicitly instead of through net/http/pprof's init side effect.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if cfg.SnapshotPath != "" && cfg.SnapshotEvery > 0 {
		s.tickerStop = make(chan struct{})
		s.tickerDone = make(chan struct{})
		go s.snapshotLoop()
	}
	return s
}

// snapshotLoop periodically refreshes the cache snapshot until Close.
func (s *Server) snapshotLoop() {
	defer close(s.tickerDone)
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
				log.Printf("server: periodic snapshot: %v", err)
			}
		case <-s.tickerStop:
			return
		}
	}
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// SetInstanceID overrides the instance identity after construction —
// vabufd calls it with hostname:port once the listener is bound (before
// serving begins), so an -addr of :0 still reports the real port.
func (s *Server) SetInstanceID(id string) { s.instance.Store(id) }

// InstanceID returns the instance identity ("" when unset).
func (s *Server) InstanceID() string {
	id, _ := s.instance.Load().(string)
	return id
}

// StartDrain flips the server into the draining state: /readyz answers
// 503 and every new job submission is refused with 503 + Retry-After,
// while jobs already queued or running finish normally. Call it before
// http.Server.Shutdown so requests racing the listener teardown get a
// clean retry signal instead of a dropped connection.
func (s *Server) StartDrain() { s.state.draining.Store(true) }

// Close gracefully shuts the service down: it starts the drain, blocks
// until every queued and in-flight job has finished, and — when
// Config.SnapshotPath is set — writes a final cache snapshot so the
// next boot starts warm. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.StartDrain()
		if s.tickerStop != nil {
			close(s.tickerStop)
			<-s.tickerDone
		}
		s.pool.close()
		if s.cfg.SnapshotPath != "" {
			if err := s.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
				log.Printf("server: final snapshot: %v", err)
			}
		}
	})
}

// instrument wraps an endpoint: it enforces the propagated request
// deadline (a spent budget answers 504 before the handler runs; a live
// one becomes the request context's deadline), records the request
// counter, stamps the identity headers, attaches Retry-After to
// overload/unavailable responses, and writes the JSON body.
func (s *Server) instrument(endpoint string, h func(*http.Request) (int, any)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var status int
		var body any
		if dr, cancel, doomed := withRequestDeadline(r); doomed {
			s.met.recordDeadlineRejected(endpoint)
			status, body = http.StatusGatewayTimeout, errBody(errDeadlineSpent)
		} else {
			defer cancel()
			status, body = h(dr)
		}
		s.met.recordRequest(endpoint, status)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		s.identityHeaders(w)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	}
}

// Sentinel errors of the request path.
var (
	errOverloaded    = errors.New("server overloaded: job queue full")
	errDraining      = errors.New("server is draining; retry against another instance")
	errShedding      = errors.New("server is shedding sweep work under sustained overload")
	errDeadlineSpent = errors.New("request deadline already spent before admission")
)

// statusClientClosed mirrors nginx's non-standard 499 "client closed
// request" for requests abandoned while their job was queued or running.
const statusClientClosed = 499

func errBody(err error) ErrorResult { return ErrorResult{Error: err.Error()} }

// decodeJSON decodes the request body into dst, returning the HTTP
// status of the failure: 413 when the body exceeds limit, 400 for
// malformed JSON or trailing data after the document.
func decodeJSON(r *http.Request, limit int64, dst any) (int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf(
				"request body exceeds the %d-byte limit", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("decoding request: %w", err)
	}
	// Exactly one JSON document: a second decode must hit EOF, or the
	// body carries trailing garbage the first decode silently ignored.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf(
				"request body exceeds the %d-byte limit", tooBig.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf(
			"request body has trailing data after the JSON document")
	}
	return 0, nil
}

// preparedRun is everything a worker needs for one insertion job.
type preparedRun struct {
	tree     *vabuf.Tree
	lib      vabuf.Library
	opts     vabuf.Options
	entry    *modelEntry // nil for deterministic (nom) runs
	treeHit  bool
	modelHit bool
}

// prepare resolves the tree and model through the caches and assembles
// the insertion options. Errors are client errors (400).
func (s *Server) prepare(req *InsertRequest) (*preparedRun, error) {
	tree, treeHit, err := s.loadTree(req)
	if err != nil {
		return nil, err
	}
	lib := vabuf.DefaultLibrary()
	if req.Inverters {
		lib = append(lib, vabuf.InverterLibrary()...)
	}
	opts := vabuf.Options{
		Library:        lib,
		PbarL:          req.Pbar,
		PbarT:          req.Pbar,
		SelectQuantile: req.Quantile,
		MaxCandidates:  req.MaxCandidates,
		Timeout:        s.cfg.DefaultTimeout,
		Parallelism:    req.Parallelism,
		SubtreeCache:   s.subtrees,
	}
	if req.TimeoutMS > 0 {
		opts.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if req.Rule == "4p" {
		opts.Rule = vabuf.Rule4P
	}
	// Normalize already validated the string; the error branch is dead.
	opts.HullBuffering, _ = vabuf.ParseHullMode(req.Hull)
	if req.WireSizing {
		opts.WireLibrary = vabuf.DefaultWireLibrary()
	}
	p := &preparedRun{tree: tree, lib: lib, opts: opts, treeHit: treeHit}
	if req.Algo != "nom" {
		entry, modelHit, err := s.loadModel(req, tree)
		if err != nil {
			return nil, err
		}
		p.entry = entry
		p.modelHit = modelHit
	}
	return p, nil
}

// treeCacheKey is the tree-LRU key of the request's tree: built-in
// benchmarks by name, inline rctree text by content hash. The snapshot
// file stores these keys verbatim.
func treeCacheKey(req *InsertRequest) string {
	if req.Bench != "" {
		return "bench:" + req.Bench
	}
	sum := sha256.Sum256([]byte(req.Tree))
	return "text:" + hex.EncodeToString(sum[:])
}

// loadTree resolves the request's tree through the LRU cache. Cached
// trees are shared across concurrent runs — insertion never mutates them.
func (s *Server) loadTree(req *InsertRequest) (*vabuf.Tree, bool, error) {
	var build func() (any, error)
	if req.Bench != "" {
		build = func() (any, error) { return vabuf.GenerateBenchmark(req.Bench) }
	} else {
		build = func() (any, error) { return vabuf.ReadTree(strings.NewReader(req.Tree)) }
	}
	v, hit, err := s.trees.do(treeCacheKey(req), build)
	if err != nil {
		return nil, false, err
	}
	return v.(*vabuf.Tree), hit, nil
}

// buildModelEntry constructs a variation model from its recipe. The
// request path and the snapshot-restore path share it, so a restored
// model is bit-identical to one built for a live request.
func buildModelEntry(tree *vabuf.Tree, treeKey, algo string, budget float64, hetero bool) (*modelEntry, error) {
	cfg := vabuf.DefaultModelConfig(tree)
	cfg.RandomFrac = budget
	cfg.InterDieFrac = budget
	cfg.SpatialFrac = budget
	cfg.Heterogeneous = hetero
	if algo == "d2d" {
		cfg.SpatialFrac = 0
		cfg.Heterogeneous = false
	}
	model, err := vabuf.NewVariationModel(cfg)
	if err != nil {
		return nil, err
	}
	return &modelEntry{
		model:   model,
		treeKey: treeKey,
		algo:    algo,
		budget:  budget,
		hetero:  hetero,
	}, nil
}

// loadModel resolves the variation model for (tree, algo, budget,
// heterogeneity) through the LRU cache, skipping the grid and source
// construction on a hit.
func (s *Server) loadModel(req *InsertRequest, tree *vabuf.Tree) (*modelEntry, bool, error) {
	treeKey := treeCacheKey(req)
	key := fmt.Sprintf("%s|algo=%s|budget=%g|hetero=%t",
		treeKey, req.Algo, req.Budget, req.heterogeneous())
	v, hit, err := s.models.do(key, func() (any, error) {
		return buildModelEntry(tree, treeKey, req.Algo, req.Budget, req.heterogeneous())
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*modelEntry), hit, nil
}

// execute submits fn to the pool under the given class and waits for it
// or for the client to go away. A non-zero status reports the failure.
// The job runs under recover(): a panic inside fn becomes a structured
// 500 for this request only — the worker survives and returns to the
// pool. Submission is refused with 503 while draining, and sweep-class
// submission with 503 while the shed gate is active.
func (s *Server) execute(ctx context.Context, endpoint string, class jobClass, fn func()) (int, error) {
	if s.isDraining() {
		return http.StatusServiceUnavailable, errDraining
	}
	if class == classSweep && s.shedding() {
		s.met.recordShed(endpoint)
		return http.StatusServiceUnavailable, errShedding
	}
	if err := ctx.Err(); err != nil {
		// Dead on arrival — the deadline (or the client) gave up between
		// admission and submit. Refuse before consuming a queue slot.
		if errors.Is(err, context.DeadlineExceeded) {
			s.met.recordDeadlineRejected(endpoint)
			return http.StatusGatewayTimeout, fmt.Errorf("deadline spent before enqueue: %w", err)
		}
		return statusClientClosed, fmt.Errorf("client closed request: %w", err)
	}
	done := make(chan struct{})
	var panicked error
	var droppedQueued bool
	job := func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				panicked = s.met.panicRecovered(endpoint, r)
			}
		}()
		// Dequeue gate: a job whose deadline passed (or whose client
		// vanished) while it waited is dropped without running — its
		// requester has already been answered, so the run could only
		// burn a worker the live requests need.
		if ctx.Err() != nil {
			droppedQueued = true
			s.pool.noteExpired(class)
			s.met.recordDeadlineExpired(endpoint)
			return
		}
		if s.testHookJob != nil {
			s.testHookJob()
		}
		s.faultBeforeJob(endpoint)
		fn()
	}
	if !s.pool.trySubmit(job, class) {
		return http.StatusTooManyRequests, errOverloaded
	}
	select {
	case <-done:
		if panicked != nil {
			return http.StatusInternalServerError, panicked
		}
		if droppedQueued {
			// Reachable only when ctx died and the dequeue raced the
			// select; classify the same way as the ctx.Done arm below.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return http.StatusGatewayTimeout, fmt.Errorf("deadline expired while queued: %w", ctx.Err())
			}
			return statusClientClosed, fmt.Errorf("client closed request: %w", ctx.Err())
		}
		return 0, nil
	case <-ctx.Done():
		// The job still runs (or is dropped) on its worker; the closure
		// owns every variable it writes, so nothing races.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return http.StatusGatewayTimeout, fmt.Errorf("deadline expired: %w", ctx.Err())
		}
		return statusClientClosed, fmt.Errorf("client closed request: %w", ctx.Err())
	}
}

// statusForRunError maps an insertion failure to an HTTP status: the
// Table 2 capacity guards become 504/413; anything else stems from the
// request's tree or options and is a 400.
func statusForRunError(err error) int {
	switch {
	case errors.Is(err, vabuf.ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, vabuf.ErrCapacity):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, vabuf.ErrCanceled):
		return statusClientClosed
	default:
		return http.StatusBadRequest
	}
}

// runPrepared executes one prepared insertion on the calling goroutine
// (a pool worker) and assembles the result DTO. A non-zero status
// reports the failure. It is the shared item body of /v1/insert and
// each /v1/insert:batch item.
func (s *Server) runPrepared(ctx context.Context, req *InsertRequest,
	p *preparedRun) (*InsertResult, int, error) {
	opts := p.opts
	// Abandoned requests cancel the DP instead of burning the worker
	// until the run finishes on its own.
	opts.Context = ctx
	if p.entry != nil {
		// Serialize runs sharing one cached model: it allocates
		// per-site sources lazily (see modelEntry).
		p.entry.mu.Lock()
		defer p.entry.mu.Unlock()
		opts.Model = p.entry.model
	}
	t0 := time.Now()
	res, err := vabuf.Insert(p.tree, opts)
	elapsed := time.Since(t0)
	if err != nil {
		return nil, statusForRunError(err), err
	}
	s.met.recordRun(req.Algo, p.opts.Rule.String(), elapsed, res)
	out := NewInsertResult(p.tree, p.lib, req.Algo, p.opts, res, elapsed, req.IncludeAssignment)
	out.Bench = req.Bench
	out.TreeCacheHit = p.treeHit
	out.ModelCacheHit = p.modelHit
	return &out, 0, nil
}

// runPreparedYield is runPrepared plus yield analysis and optional
// Monte-Carlo validation — the shared item body of /v1/yield, each
// /v1/yield:batch item, and /v1/yield:stream. onEstimate, when non-nil,
// receives adaptive-sampler progress (streaming only).
func (s *Server) runPreparedYield(ctx context.Context, req *YieldRequest,
	p *preparedRun, onEstimate func(vabuf.MCEstimate) bool) (*YieldResult, int, error) {
	opts := p.opts
	opts.Context = ctx
	var model *vabuf.VariationModel
	if p.entry != nil {
		p.entry.mu.Lock()
		defer p.entry.mu.Unlock()
		model = p.entry.model
		opts.Model = model
	}
	t0 := time.Now()
	res, err := vabuf.Insert(p.tree, opts)
	elapsed := time.Since(t0)
	if err != nil {
		return nil, statusForRunError(err), err
	}
	report, err := vabuf.EvaluateYield(p.tree, p.lib, res.Assignment, model, req.Quantile)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	mc, err := s.runMonteCarlo(req, p, model, res.Assignment, onEstimate)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	s.met.recordRun(req.Algo, p.opts.Rule.String(), elapsed, res)

	insert := NewInsertResult(p.tree, p.lib, req.Algo, p.opts, res, elapsed, req.IncludeAssignment)
	insert.Bench = req.Bench
	insert.TreeCacheHit = p.treeHit
	insert.ModelCacheHit = p.modelHit
	return &YieldResult{
		Insert:     insert,
		MeanPS:     report.Mean,
		SigmaPS:    report.Sigma,
		YieldRATPS: report.YieldRAT,
		MonteCarlo: mc,
	}, 0, nil
}

// resultGet answers a request from the content-addressed result cache.
// The cached value is the response body of the cold run, served
// verbatim: warm responses are byte-identical to the original, with the
// cache hit visible only in /metrics.
func (s *Server) resultGet(fp string) (any, bool) {
	if s.results == nil {
		return nil, false
	}
	return s.results.get(fp)
}

// resultStore saves a successful response body under its fingerprint.
func (s *Server) resultStore(fp string, body any) {
	if s.results != nil {
		s.results.add(fp, body)
	}
}

// memoized wraps an endpoint's leader path with the serve-path
// memoization: answer from the result cache when possible, otherwise
// coalesce onto an identical in-flight request, otherwise run leader()
// and publish its outcome. Waiters adopt a leader's 200 verbatim; any
// other outcome (failure, or a leader whose client vanished mid-run)
// makes each waiter retry the full path itself, so errors never fan out
// beyond the requests that truly shared the failing run.
func (s *Server) memoized(r *http.Request, endpoint, fp string,
	leader func() (int, any)) (int, any) {
	for {
		if body, ok := s.resultGet(fp); ok {
			return http.StatusOK, body
		}
		f, isLeader := s.flights.join(fp)
		if !isLeader {
			s.met.recordCoalesced(endpoint)
			select {
			case <-f.done:
				if f.status == http.StatusOK {
					return http.StatusOK, f.val
				}
				continue
			case <-r.Context().Done():
				// Same classification as execute: a waiter whose budget
				// ran out is a timeout (504), not a hung-up client (499).
				if err := r.Context().Err(); errors.Is(err, context.DeadlineExceeded) {
					return http.StatusGatewayTimeout, errBody(
						fmt.Errorf("deadline expired awaiting coalesced result: %w", err))
				}
				return statusClientClosed, errBody(
					fmt.Errorf("client closed request: %w", r.Context().Err()))
			}
		}
		status, body := leader()
		if status == http.StatusOK {
			s.resultStore(fp, body)
		}
		s.flights.finish(fp, f, status, body)
		return status, body
	}
}

func (s *Server) insert(r *http.Request) (int, any) {
	var req InsertRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &req); err != nil {
		return st, errBody(err)
	}
	if err := req.Normalize(); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	return s.memoized(r, "/v1/insert", req.Fingerprint(s.cfg.Epoch), func() (int, any) {
		p, err := s.prepare(&req)
		if err != nil {
			return http.StatusBadRequest, errBody(err)
		}
		var (
			out       *InsertResult
			runStatus int
			runErr    error
		)
		status, err := s.execute(r.Context(), "/v1/insert", classFor(req.Priority), func() {
			out, runStatus, runErr = s.runPrepared(r.Context(), &req, p)
		})
		if err != nil {
			return status, errBody(err)
		}
		if runErr != nil {
			return runStatus, errBody(runErr)
		}
		return http.StatusOK, out
	})
}

func (s *Server) yield(r *http.Request) (int, any) {
	var req YieldRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &req); err != nil {
		return st, errBody(err)
	}
	if err := req.Normalize(); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	return s.memoized(r, "/v1/yield", req.Fingerprint(s.cfg.Epoch), func() (int, any) {
		p, err := s.prepare(&req.InsertRequest)
		if err != nil {
			return http.StatusBadRequest, errBody(err)
		}
		var (
			out       *YieldResult
			runStatus int
			runErr    error
		)
		status, err := s.execute(r.Context(), "/v1/yield", classFor(req.Priority), func() {
			out, runStatus, runErr = s.runPreparedYield(r.Context(), &req, p, nil)
		})
		if err != nil {
			return status, errBody(err)
		}
		if runErr != nil {
			return runStatus, errBody(runErr)
		}
		return http.StatusOK, out
	})
}

// runMonteCarlo draws the yield request's Monte-Carlo samples with the
// sampler the request selects — serial, sharded (parallelism > 1), or
// adaptive (mc_tol > 0) — and reduces them to the DTO. onEstimate, when
// non-nil, observes every committed shard of an adaptive run (the
// streaming endpoint's progress feed) and may stop it early.
func (s *Server) runMonteCarlo(req *YieldRequest, p *preparedRun,
	model *vabuf.VariationModel, assignment map[vabuf.NodeID]int,
	onEstimate func(vabuf.MCEstimate) bool) (*MonteCarloDTO, error) {
	if req.MonteCarlo <= 0 || model == nil {
		return nil, nil
	}
	if req.MCTol > 0 || onEstimate != nil {
		samples, est, err := vabuf.MonteCarloRATAdaptive(p.tree, p.lib, assignment,
			model, vabuf.MCAdaptiveOptions{
				MaxSamples: req.MonteCarlo,
				Seed:       req.Seed,
				Workers:    req.Parallelism,
				Quantile:   req.Quantile,
				Tol:        req.MCTol,
				OnEstimate: onEstimate,
			})
		if err != nil {
			return nil, err
		}
		// Reduce via the same two-pass helpers as the fixed-budget path,
		// so a full-budget adaptive run reports numbers bit-identical to
		// the sharded sampler's.
		mc := summarizeSamples(samples, req.Quantile)
		if mc != nil {
			mc.CIHalfWidthPS = est.HalfWidth
			mc.Converged = est.Converged
		}
		return mc, nil
	}
	var samples []float64
	var err error
	if req.Parallelism > 1 {
		// The sharded sampler's stream depends only on (n, seed) but
		// differs from the serial one, so it is opt-in: existing
		// clients keep their recorded quantiles.
		samples, err = vabuf.MonteCarloRATParallel(p.tree, p.lib, assignment,
			model, req.MonteCarlo, req.Seed, req.Parallelism)
	} else {
		samples, err = vabuf.MonteCarloRAT(p.tree, p.lib, assignment,
			model, req.MonteCarlo, req.Seed)
	}
	if err != nil {
		return nil, err
	}
	return summarizeSamples(samples, req.Quantile), nil
}

// summarizeSamples reduces Monte-Carlo RATs to the DTO: sample mean,
// unbiased sigma, and the interpolated empirical q-quantile — via the
// same vabuf facade helpers (stats.MeanVar, stats.Percentile) the
// experiments pipeline uses, so /v1/yield numbers match cmd/experiments
// for identical (n, seed).
func summarizeSamples(samples []float64, q float64) *MonteCarloDTO {
	n := len(samples)
	if n == 0 {
		return nil
	}
	mean, variance := vabuf.MeanVar(samples)
	quantile, err := vabuf.Percentile(samples, q)
	if err != nil {
		// q was validated to lie inside (0, 1) and n > 0; unreachable.
		return nil
	}
	return &MonteCarloDTO{
		Samples:     n,
		MeanPS:      mean,
		SigmaPS:     math.Sqrt(variance),
		QuantileRAT: quantile,
	}
}

func (s *Server) benchmarks(*http.Request) (int, any) {
	return http.StatusOK, BenchmarksResult{Benchmarks: vabuf.Benchmarks()}
}

func (s *Server) healthz(*http.Request) (int, any) {
	return http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	}
}

func (s *Server) metricsHandler(*http.Request) (int, any) {
	doc := s.met.snapshot(s.pool, s.trees, s.models, s.results, s.subtrees,
		s.cfg.TreeCacheSize, s.cfg.ModelCacheSize, s.cfg.ResultCacheSize,
		s.flights.inflight(), s.readyState())
	// Identity of this backend, so fleet dashboards can attribute the
	// counters to an instance and spot epoch skew at a glance.
	doc["instance"] = s.InstanceID()
	doc["epoch"] = s.cfg.Epoch
	return http.StatusOK, doc
}

// identityHeaders stamps the per-backend attribution headers on a
// response: the vabufr router reads Vabuf-Epoch off proxied responses to
// tag peer cache fills, and Vabuf-Instance makes failover logs and
// client traces attributable without a /metrics round trip.
func (s *Server) identityHeaders(w http.ResponseWriter) {
	if id := s.InstanceID(); id != "" {
		w.Header().Set("Vabuf-Instance", id)
	}
	if s.cfg.Epoch != "" {
		w.Header().Set("Vabuf-Epoch", s.cfg.Epoch)
	}
}
