package server

// Tests for POST /v1/cache/lookup, the synchronous peer-cache read the
// router uses to rescue a moved key's result from its previous owner.

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestCacheLookupServesCachedResult: a lookup for a computed request
// answers the cached body verbatim; an unknown request answers 404.
func TestCacheLookupServesCachedResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Epoch: "v1", Instance: "i1"})
	req := InsertRequest{Tree: smallTreeText(t), Algo: "nom"}
	resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed insert: status %d: %s", resp.StatusCode, raw)
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	look := CacheLookupRequest{Kind: "insert", Epoch: "v1", Request: reqJSON}
	lresp, lraw := postJSON(t, ts.URL+"/v1/cache/lookup", look)
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("lookup of a cached result: status %d: %s", lresp.StatusCode, lraw)
	}
	if string(lraw) != string(raw) {
		t.Error("lookup body differs from the original insert response")
	}
	if inst := lresp.Header.Get("Vabuf-Instance"); inst == "" {
		t.Error("lookup response missing Vabuf-Instance header")
	}

	// A request this instance never computed: 404, nothing else.
	other := InsertRequest{Tree: smallTreeText(t), Algo: "wid"}
	otherJSON, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	miss := CacheLookupRequest{Kind: "insert", Epoch: "v1", Request: otherJSON}
	if mresp, mraw := postJSON(t, ts.URL+"/v1/cache/lookup", miss); mresp.StatusCode != http.StatusNotFound {
		t.Fatalf("lookup miss: status %d, want 404: %s", mresp.StatusCode, mraw)
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	pl := met["peer_lookups"].(map[string]any)
	if h := pl["hits"].(float64); h != 1 {
		t.Errorf("peer_lookups.hits = %g, want 1", h)
	}
	if m := pl["misses"].(float64); m != 1 {
		t.Errorf("peer_lookups.misses = %g, want 1", m)
	}
}

// TestCacheLookupEpochGuard: a lookup carrying another epoch is refused
// with 409 (like /v1/cache/fill), and an unknown kind with 400.
func TestCacheLookupEpochGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Epoch: "v2"})
	req := InsertRequest{Tree: smallTreeText(t), Algo: "nom"}
	if resp, raw := postJSON(t, ts.URL+"/v1/insert", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed insert: status %d: %s", resp.StatusCode, raw)
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	stale := CacheLookupRequest{Kind: "insert", Epoch: "v1", Request: reqJSON}
	if resp, raw := postJSON(t, ts.URL+"/v1/cache/lookup", stale); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch lookup: status %d, want 409: %s", resp.StatusCode, raw)
	}
	bad := CacheLookupRequest{Kind: "mystery", Epoch: "v2", Request: reqJSON}
	if resp, raw := postJSON(t, ts.URL+"/v1/cache/lookup", bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-kind lookup: status %d, want 400: %s", resp.StatusCode, raw)
	}
}

// TestCacheLookupAllowedWhileDraining: unlike the fill (a write), the
// read-only lookup keeps answering during drain — that is what lets a
// router rescue a draining instance's cache before it goes away.
func TestCacheLookupAllowedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := InsertRequest{Tree: smallTreeText(t), Algo: "nom"}
	resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed insert: status %d: %s", resp.StatusCode, raw)
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	s.StartDrain()
	look := CacheLookupRequest{Kind: "insert", Request: reqJSON}
	lresp, lraw := postJSON(t, ts.URL+"/v1/cache/lookup", look)
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("draining lookup: status %d, want 200: %s", lresp.StatusCode, lraw)
	}
	if string(lraw) != string(raw) {
		t.Error("draining lookup body differs from the original response")
	}
	// The fill stays refused while draining (control).
	fill := CacheFillRequest{Kind: "insert", Request: reqJSON, Result: raw}
	if fresp, fraw := postJSON(t, ts.URL+"/v1/cache/fill", fill); fresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining fill: status %d, want 503: %s", fresp.StatusCode, fraw)
	}
}
