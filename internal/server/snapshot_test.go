package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// warmServer runs one nom request on bench p1 (tree only) and one wid
// request on an inline tree (tree + variation model), so both caches
// hold something worth snapshotting.
func warmServer(t *testing.T, url, treeText string) {
	t.Helper()
	for _, req := range []InsertRequest{
		{Bench: "p1", Algo: "nom"},
		{Tree: treeText, Algo: "wid"},
	} {
		resp, raw := postJSON(t, url+"/v1/insert", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up status %d: %s", resp.StatusCode, raw)
		}
	}
}

func TestSnapshotSaveRestoreWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	treeText := smallTreeText(t)

	s1, ts1 := newTestServer(t, Config{Workers: 2})
	warmServer(t, ts1.URL, treeText)
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	// A fresh server restores the snapshot: both trees and the wid model
	// come back, so the first request for a previously-seen tree is a
	// cache hit on both layers.
	s2, ts2 := newTestServer(t, Config{Workers: 2})
	stats, err := s2.RestoreSnapshot(path)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if stats.Trees != 2 || stats.Models != 1 || stats.Skipped != 0 {
		t.Fatalf("restore stats = %+v, want {Trees:2 Models:1 Skipped:0}", stats)
	}

	// A quantile-distinct request misses the restored result cache (the
	// warm-up's exact request would answer from it verbatim) but still
	// resolves its tree and model through the restored LRUs.
	resp, raw := postJSON(t, ts2.URL+"/v1/insert",
		InsertRequest{Tree: treeText, Algo: "wid", Quantile: 0.25})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore status %d: %s", resp.StatusCode, raw)
	}
	var res InsertResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !res.TreeCacheHit || !res.ModelCacheHit {
		t.Errorf("post-restore hits: tree=%t model=%t, want both true",
			res.TreeCacheHit, res.ModelCacheHit)
	}

	var met map[string]any
	getJSON(t, ts2.URL+"/metrics", &met)
	snap := met["snapshot"].(map[string]any)
	if got := snap["restored_trees"].(float64); got != 2 {
		t.Errorf("snapshot.restored_trees = %g, want 2", got)
	}
	if got := snap["restored_models"].(float64); got != 1 {
		t.Errorf("snapshot.restored_models = %g, want 1", got)
	}
	if got := snap["skipped"].(float64); got != 0 {
		t.Errorf("snapshot.skipped = %g, want 0", got)
	}
	// The saving server counted its write.
	getJSON(t, ts1.URL+"/metrics", &met)
	if got := met["snapshot"].(map[string]any)["saves"].(float64); got != 1 {
		t.Errorf("snapshot.saves = %g, want 1", got)
	}
}

func TestSnapshotCorruptEntriesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	treeText := smallTreeText(t)

	s1, ts1 := newTestServer(t, Config{Workers: 2})
	// Flip the checksum of the inline tree's entry after it is computed:
	// restore must reject the tree, and then the model built against it
	// (its tree neither restored nor regenerable) falls with it.
	s1.faults = &faultHooks{corruptSnapshotEntry: func(e *snapshotEntry) {
		if e.Kind == "tree" && e.Key[:5] == "text:" {
			e.SHA256 = "0000" + e.SHA256[4:]
		}
	}}
	warmServer(t, ts1.URL, treeText)
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2})
	stats, err := s2.RestoreSnapshot(path)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if stats.Trees != 1 || stats.Models != 0 || stats.Skipped != 2 {
		t.Fatalf("restore stats = %+v, want {Trees:1 Models:0 Skipped:2}", stats)
	}
	// The surviving benchmark tree still warm-starts, and the server keeps
	// serving the corrupted tree's requests from cold.
	resp, raw := postJSON(t, ts2.URL+"/v1/insert", InsertRequest{Tree: treeText, Algo: "wid"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore status %d: %s", resp.StatusCode, raw)
	}
	var met map[string]any
	getJSON(t, ts2.URL+"/metrics", &met)
	if got := met["snapshot"].(map[string]any)["skipped"].(float64); got != 2 {
		t.Errorf("snapshot.skipped = %g, want 2", got)
	}
}

func TestSnapshotWriteFailureCountedAndAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	if err := os.WriteFile(path, []byte("previous good snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{Workers: 1})
	s.faults = &faultHooks{snapshotWrite: func([]byte) ([]byte, error) {
		return nil, errors.New("disk full")
	}}
	if err := s.SaveSnapshot(path); err == nil {
		t.Fatal("SaveSnapshot succeeded despite injected write failure")
	}
	// The failed write never touched the previous snapshot.
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "previous good snapshot" {
		t.Fatalf("previous snapshot disturbed: %q, %v", data, err)
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	snap := met["snapshot"].(map[string]any)
	if got := snap["save_errors"].(float64); got != 1 {
		t.Errorf("snapshot.save_errors = %g, want 1", got)
	}
	if got := snap["saves"].(float64); got != 0 {
		t.Errorf("snapshot.saves = %g, want 0", got)
	}
}

func TestSnapshotRejectsBadFile(t *testing.T) {
	dir := t.TempDir()
	s, _ := newTestServer(t, Config{Workers: 1})

	if _, err := s.RestoreSnapshot(filepath.Join(dir, "missing.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}

	garbled := filepath.Join(dir, "garbled.snap")
	os.WriteFile(garbled, []byte("{not json"), 0o644)
	if _, err := s.RestoreSnapshot(garbled); err == nil {
		t.Error("garbled snapshot restored without error")
	}

	wrongVersion := filepath.Join(dir, "v99.snap")
	os.WriteFile(wrongVersion, []byte(`{"version": 99, "entries": []}`), 0o644)
	if _, err := s.RestoreSnapshot(wrongVersion); err == nil {
		t.Error("future-version snapshot restored without error")
	}
}

func TestPeriodicSnapshotTicker(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	_, ts := newTestServer(t, Config{
		Workers:       1,
		SnapshotPath:  path,
		SnapshotEvery: 10 * time.Millisecond,
	})
	resp, raw := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Bench: "p1", Algo: "nom"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	waitFor(t, func() bool {
		data, err := os.ReadFile(path)
		if err != nil {
			return false
		}
		var doc snapshotFile
		return json.Unmarshal(data, &doc) == nil && len(doc.Entries) >= 1
	}, "periodic snapshot written with at least one entry")
}
