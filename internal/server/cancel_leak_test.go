package server

// Goroutine-leak regression tests for canceled mid-DP work: a client
// that disconnects during /v1/insert or mid-/v1/yield:stream must leave
// no goroutine behind and return every worker to the pool. Run under
// -race in CI; the assertions are on the pool's own gauges plus the
// process goroutine count, the same signals scripts/fleet.sh gates on.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"vabuf"
)

// treeTextSeed serializes a distinct small tree per seed.
func treeTextSeed(t *testing.T, seed int64) string {
	t.Helper()
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{
		Name: fmt.Sprintf("leak%d", seed), Sinks: 8, Seed: 100 + seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := vabuf.WriteTree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// waitPoolIdle polls until the pool has no queued or in-flight jobs.
func waitPoolIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s.pool.depth() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker pool never returned to idle: depth %d", s.pool.depth())
}

// waitGoroutines polls until the process goroutine count drops to the
// baseline plus slack (probe goroutines from the HTTP stack wind down
// asynchronously after CloseIdleConnections).
func waitGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	n := 0
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Errorf("goroutines did not return to baseline: %d now, %d at start (+%d allowed)",
		n, baseline, slack)
}

func TestCanceledInsertReleasesWorkers(t *testing.T) {
	// Result caching off: a canceled run that slipped through to a 200
	// would otherwise answer later iterations from cache, without a job.
	s, ts := newTestServer(t, Config{Workers: 2, ResultCacheSize: -1})
	started := make(chan struct{}, 16)
	s.testHookJob = func() {
		select {
		case started <- struct{}{}:
		default:
		}
	}
	client := &http.Client{}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 4; i++ {
		// A distinct tree per iteration: identical requests would
		// coalesce instead of exercising the cancel path each time.
		payload, err := json.Marshal(InsertRequest{
			Tree: treeTextSeed(t, int64(i)), Algo: "wid", Quantile: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/insert", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := client.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
		// Cancel the moment the job lands on a worker: the DP is either
		// about to start or mid-run — exactly the leak-prone window.
		<-started
		cancel()
		<-done
	}

	waitPoolIdle(t, s)
	client.CloseIdleConnections()
	waitGoroutines(t, baseline, 4)
	if got := s.pool.workerPanics(); got != 0 {
		t.Errorf("worker panics = %d, want 0", got)
	}
}

func TestCanceledStreamReleasesWorkers(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, ResultCacheSize: -1})
	client := &http.Client{}
	baseline := runtime.NumGoroutine()

	for i := 0; i < 3; i++ {
		payload, err := json.Marshal(YieldRequest{
			InsertRequest: InsertRequest{
				Tree: treeTextSeed(t, int64(10+i)), Algo: "wid"},
			// The full request cap with an unreachable tolerance: only
			// the client disconnect can end this run early.
			MonteCarlo: 1_000_000,
			MCTol:      1e-9,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+"/v1/yield:stream", "application/json",
			bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		// Read one NDJSON event so the run is demonstrably mid-stream,
		// then hang up without draining the rest.
		if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
			t.Fatalf("reading first stream event: %v", err)
		}
		resp.Body.Close()
	}

	waitPoolIdle(t, s)
	client.CloseIdleConnections()
	waitGoroutines(t, baseline, 4)
}
