package server

// Request-deadline propagation. A client that gave itself a timeout
// tells the fleet about it: bufins mints a Vabuf-Deadline-Ms header from
// its -timeout, vabufr decrements it per hop (queue and transit time
// eat into it naturally — the forwarded value is the *remaining* budget
// at send time), and vabufd enforces it at three points:
//
//   - admission: a request whose budget is already spent is refused with
//     504 before it touches a cache or the queue (deadline_rejected);
//   - dequeue: a job whose deadline passed while it waited in the queue
//     is dropped without running (deadline_expired) — the client has
//     already timed out, running the DP would only burn a worker;
//   - mid-run: the deadline lives on the request context, which
//     Options.Context threads into the DP, so a run that outlives its
//     budget cancels at the next pruning checkpoint.
//
// The header is milliseconds-remaining rather than an absolute
// timestamp so it never depends on clock agreement between hops.

import (
	"context"
	"net/http"
	"strconv"
	"time"
)

// DeadlineHeader carries the remaining request budget in integer
// milliseconds. Absent or malformed means "no deadline"; zero or
// negative means "already expired".
const DeadlineHeader = "Vabuf-Deadline-Ms"

// DeadlineFromHeader parses the propagated deadline. ok reports whether
// a parseable value was present; remaining may be <= 0 (doomed work).
func DeadlineFromHeader(h http.Header) (remaining time.Duration, ok bool) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0, false
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// SetDeadlineHeader stamps the remaining budget of ctx's deadline onto
// h, clamping to at least 1ms so "expired" stays the receiver's call
// (an actually-expired context never gets this far — callers check
// first). A ctx without a deadline stamps nothing.
func SetDeadlineHeader(h http.Header, ctx context.Context) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	h.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
}

// FormatDeadline renders a remaining budget for the header.
func FormatDeadline(remaining time.Duration) string {
	ms := remaining.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return strconv.FormatInt(ms, 10)
}

// withRequestDeadline derives the request's working context from the
// propagated deadline header: expired budgets report doomed=true (the
// caller answers 504 without doing any work), live ones return a
// context that cancels when the budget runs out. Requests without the
// header pass through untouched.
func withRequestDeadline(r *http.Request) (req *http.Request, cancel context.CancelFunc, doomed bool) {
	remaining, ok := DeadlineFromHeader(r.Header)
	if !ok {
		return r, func() {}, false
	}
	if remaining <= 0 {
		return r, func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), remaining)
	return r.WithContext(ctx), cancel, false
}
