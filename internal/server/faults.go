package server

// Test-only fault injection. A Server carries an optional *faultHooks
// that production code never sets (there is no flag or config field for
// it); the failure-mode tests in faults_test.go install hooks before
// serving traffic to force panics, slow jobs, snapshot-write failures,
// and snapshot corruption deterministically. Every hook site is a nil
// check on the hot path — zero cost when unset.
type faultHooks struct {
	// beforeJob runs at the start of every pool job with the endpoint
	// that submitted it. Panic here to simulate a crashing DP run; sleep
	// to simulate a slow one.
	beforeJob func(endpoint string)

	// snapshotWrite intercepts the serialized snapshot before it reaches
	// the filesystem. Return an error to fail the write, or transformed
	// bytes to corrupt the file wholesale.
	snapshotWrite func(data []byte) ([]byte, error)

	// corruptSnapshotEntry mutates one snapshot entry after its checksum
	// has been computed, so the restore-side validation must catch the
	// mismatch and skip the entry.
	corruptSnapshotEntry func(e *snapshotEntry)

	// beforeRestoreEntry runs before each snapshot entry is restored.
	// Block here to hold the server in the restoring state.
	beforeRestoreEntry func(kind, key string)
}

// faultBeforeJob fires the beforeJob hook, if any.
func (s *Server) faultBeforeJob(endpoint string) {
	if s.faults != nil && s.faults.beforeJob != nil {
		s.faults.beforeJob(endpoint)
	}
}
