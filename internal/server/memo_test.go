package server

// Tests for the serve-path memoization layer: the content-addressed
// result cache, single-flight request coalescing, batch dedupe, the
// streaming adaptive Monte-Carlo endpoint, and result persistence in
// cache snapshots.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// fingerprintOf normalizes a copy of the request and returns its cache
// key — the same key the serve path computes.
func fingerprintOf(t *testing.T, req InsertRequest) string {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return req.Fingerprint("")
}

func yieldFingerprintOf(t *testing.T, req YieldRequest) string {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return req.Fingerprint("")
}

// pruningRuns reads the lifetime DP-run counter from /metrics.
func pruningRuns(t *testing.T, url string) float64 {
	t.Helper()
	var met map[string]any
	getJSON(t, url+"/metrics", &met)
	return met["pruning"].(map[string]any)["runs"].(float64)
}

// TestResultCacheWarmByteIdentical is the memoization contract: the
// warm repeat of a completed request answers the stored response body
// verbatim — byte-identical to the cold response, ElapsedMS and all —
// without running the DP again.
func TestResultCacheWarmByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	treeText := smallTreeText(t)

	cases := []struct {
		name string
		path string
		body any
	}{
		{"insert", "/v1/insert", InsertRequest{Tree: treeText, Algo: "wid"}},
		{"yield", "/v1/yield", YieldRequest{
			InsertRequest: InsertRequest{Tree: treeText, Algo: "wid"},
			MonteCarlo:    64,
			Seed:          3,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			respCold, cold := postJSON(t, ts.URL+tc.path, tc.body)
			if respCold.StatusCode != http.StatusOK {
				t.Fatalf("cold status %d: %s", respCold.StatusCode, cold)
			}
			runsAfterCold := pruningRuns(t, ts.URL)

			respWarm, warm := postJSON(t, ts.URL+tc.path, tc.body)
			if respWarm.StatusCode != http.StatusOK {
				t.Fatalf("warm status %d: %s", respWarm.StatusCode, warm)
			}
			if !bytes.Equal(cold, warm) {
				t.Errorf("warm response differs from cold:\ncold: %s\nwarm: %s", cold, warm)
			}
			if runs := pruningRuns(t, ts.URL); runs != runsAfterCold {
				t.Errorf("warm repeat ran the DP: runs %g -> %g", runsAfterCold, runs)
			}
		})
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	result := met["caches"].(map[string]any)["result"].(map[string]any)
	if hits := result["hits"].(float64); hits < 2 {
		t.Errorf("result cache hits = %g after two warm repeats, want >= 2", hits)
	}
	if size := result["size"].(float64); size != 2 {
		t.Errorf("result cache size = %g, want 2", size)
	}
}

// TestCoalescedIdenticalRequestsRunOnce holds the leader's job on the
// worker while N-1 identical requests arrive: they must join its flight
// (no extra pool jobs), adopt the same bytes, and the DP must have run
// exactly once.
func TestCoalescedIdenticalRequestsRunOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testHookJob = func() { started <- struct{}{}; <-release }

	req := InsertRequest{Tree: smallTreeText(t), Algo: "wid"}
	fp := fingerprintOf(t, req)

	const n = 8
	raws := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
			statuses[i], raws[i] = resp.StatusCode, raw
		}(i)
	}

	<-started // the leader is on the worker, holding the flight open
	waitFor(t, func() bool { return s.flights.waitersOf(fp) == n-1 },
		"all other requests joined the leader's flight")
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], raws[i])
		}
		if !bytes.Equal(raws[i], raws[0]) {
			t.Errorf("request %d answered different bytes than request 0", i)
		}
	}
	if runs := pruningRuns(t, ts.URL); runs != 1 {
		t.Errorf("pruning.runs = %g after %d coalesced requests, want 1", runs, n)
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	coal := met["coalescing"].(map[string]any)
	if got := coal["coalesced"].(map[string]any)["/v1/insert"].(float64); got != n-1 {
		t.Errorf("coalesced[/v1/insert] = %g, want %d", got, n-1)
	}
	if got := coal["inflight"].(float64); got != 0 {
		t.Errorf("inflight flights = %g after drain, want 0", got)
	}
}

// TestFingerprintTable pins the fingerprint inclusion set: every
// output-affecting field must change the key, spelling and scheduling
// must not.
func TestFingerprintTable(t *testing.T) {
	base := InsertRequest{Bench: "r1", Algo: "wid"}
	baseFP := fingerprintOf(t, base)

	t.Run("insert_same", func(t *testing.T) {
		same := []struct {
			name string
			req  InsertRequest
		}{
			{"explicit defaults", InsertRequest{Bench: "r1", Algo: "wid", Rule: "2p",
				Pbar: 0.5, Budget: 0.15, Quantile: 0.05}},
			{"rule case-insensitive", InsertRequest{Bench: "r1", Algo: "wid", Rule: "2P"}},
			{"timeout excluded", InsertRequest{Bench: "r1", Algo: "wid", TimeoutMS: 5000}},
			{"priority excluded", InsertRequest{Bench: "r1", Algo: "wid", Priority: "sweep"}},
			{"parallelism excluded", InsertRequest{Bench: "r1", Algo: "wid", Parallelism: 7}},
			{"hull excluded", InsertRequest{Bench: "r1", Algo: "wid", Hull: "off"}},
		}
		for _, tc := range same {
			if fp := fingerprintOf(t, tc.req); fp != baseFP {
				t.Errorf("%s: fingerprint changed", tc.name)
			}
		}
	})

	t.Run("insert_diff", func(t *testing.T) {
		hetero := false
		diff := []struct {
			name string
			req  InsertRequest
		}{
			{"bench", InsertRequest{Bench: "r2", Algo: "wid"}},
			{"algo", InsertRequest{Bench: "r1", Algo: "d2d"}},
			{"rule", InsertRequest{Bench: "r1", Algo: "wid", Rule: "4p"}},
			{"pbar", InsertRequest{Bench: "r1", Algo: "wid", Pbar: 0.6}},
			{"budget", InsertRequest{Bench: "r1", Algo: "wid", Budget: 0.2}},
			{"quantile", InsertRequest{Bench: "r1", Algo: "wid", Quantile: 0.1}},
			{"max_candidates", InsertRequest{Bench: "r1", Algo: "wid", MaxCandidates: 9}},
			{"wire_sizing", InsertRequest{Bench: "r1", Algo: "wid", WireSizing: true}},
			{"inverters", InsertRequest{Bench: "r1", Algo: "wid", Inverters: true}},
			{"include_assignment", InsertRequest{Bench: "r1", Algo: "wid", IncludeAssignment: true}},
			{"heterogeneous", InsertRequest{Bench: "r1", Algo: "wid", Heterogeneous: &hetero}},
		}
		seen := map[string]string{baseFP: "base"}
		for _, tc := range diff {
			fp := fingerprintOf(t, tc.req)
			if prev, dup := seen[fp]; dup {
				t.Errorf("%s: fingerprint collides with %s", tc.name, prev)
			}
			seen[fp] = tc.name
		}
	})

	t.Run("yield", func(t *testing.T) {
		ybase := YieldRequest{InsertRequest: base, MonteCarlo: 128}
		ybaseFP := yieldFingerprintOf(t, ybase)
		if ybaseFP == baseFP {
			t.Error("yield and insert fingerprints share a key space")
		}
		diff := []YieldRequest{
			{InsertRequest: base, MonteCarlo: 256},              // sample budget
			{InsertRequest: base, MonteCarlo: 128, Seed: 2},     // seed
			{InsertRequest: base, MonteCarlo: 128, MCTol: 0.01}, // adaptive sampler
			{InsertRequest: base},                               // no MC at all
			{InsertRequest: InsertRequest{Bench: "r1", Algo: "wid", Parallelism: 4},
				MonteCarlo: 128}, // sharded sampler: parallelism changes the stream here
		}
		seen := map[string]int{ybaseFP: -1}
		for i, req := range diff {
			fp := yieldFingerprintOf(t, req)
			if prev, dup := seen[fp]; dup {
				t.Errorf("yield case %d: fingerprint collides with case %d", i, prev)
			}
			seen[fp] = i
		}
		// Parallelism does not change the *adaptive* stream (in-order
		// commit is worker-invariant), so there it is excluded again.
		a1 := yieldFingerprintOf(t, YieldRequest{InsertRequest: base, MonteCarlo: 128, MCTol: 0.01})
		a8 := yieldFingerprintOf(t, YieldRequest{
			InsertRequest: InsertRequest{Bench: "r1", Algo: "wid", Parallelism: 8},
			MonteCarlo:    128, MCTol: 0.01,
		})
		if a1 != a8 {
			t.Error("adaptive fingerprint depends on parallelism")
		}
	})
}

// TestBatchDedupeIdenticalItems posts a batch with three identical items
// and one distinct one: the DP must run twice, the duplicates adopt the
// leader's result, and the intra-batch coalescing counter records them.
func TestBatchDedupeIdenticalItems(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	treeText := smallTreeText(t)
	dup := InsertRequest{Tree: treeText, Algo: "wid"}
	distinct := InsertRequest{Tree: treeText, Algo: "wid", Quantile: 0.25}

	resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{
		Items: []InsertRequest{dup, dup, distinct, dup},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var out BatchInsertResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 4 || out.Errors != 0 {
		t.Fatalf("succeeded/errors = %d/%d, want 4/0: %s", out.Succeeded, out.Errors, raw)
	}
	for _, i := range []int{1, 3} {
		if !reflect.DeepEqual(out.Items[i].Result, out.Items[0].Result) {
			t.Errorf("duplicate item %d diverged from its leader", i)
		}
		if out.Items[i].Index != i {
			t.Errorf("item %d echoes index %d", i, out.Items[i].Index)
		}
	}
	if runs := pruningRuns(t, ts.URL); runs != 2 {
		t.Errorf("pruning.runs = %g for 3 identical + 1 distinct items, want 2", runs)
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	coal := met["coalescing"].(map[string]any)["coalesced"].(map[string]any)
	if got := coal["/v1/insert:batch"].(float64); got != 2 {
		t.Errorf("coalesced[/v1/insert:batch] = %g, want 2", got)
	}
}

// TestSnapshotRoundTripResultCache saves a warm server's snapshot and
// restores it into a fresh one: the repeated requests must answer
// byte-identically to the original responses without any DP run.
func TestSnapshotRoundTripResultCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	treeText := smallTreeText(t)
	insertReq := InsertRequest{Tree: treeText, Algo: "wid"}
	yieldReq := YieldRequest{
		InsertRequest: InsertRequest{Tree: treeText, Algo: "wid"},
		MonteCarlo:    64,
		Seed:          3,
	}

	s1, ts1 := newTestServer(t, Config{Workers: 2})
	_, insertCold := postJSON(t, ts1.URL+"/v1/insert", insertReq)
	_, yieldCold := postJSON(t, ts1.URL+"/v1/yield", yieldReq)
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 2})
	stats, err := s2.RestoreSnapshot(path)
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	if stats.Results != 2 || stats.Skipped != 0 {
		t.Fatalf("restore stats = %+v, want 2 results, 0 skipped", stats)
	}

	resp, warm := postJSON(t, ts2.URL+"/v1/insert", insertReq)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(warm, insertCold) {
		t.Errorf("restored insert repeat: status %d, bytes equal %t",
			resp.StatusCode, bytes.Equal(warm, insertCold))
	}
	resp, warm = postJSON(t, ts2.URL+"/v1/yield", yieldReq)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(warm, yieldCold) {
		t.Errorf("restored yield repeat: status %d, bytes equal %t",
			resp.StatusCode, bytes.Equal(warm, yieldCold))
	}
	if runs := pruningRuns(t, ts2.URL); runs != 0 {
		t.Errorf("restored server ran the DP %g times for cached repeats, want 0", runs)
	}

	// A server with the cache disabled restores the same snapshot
	// cleanly, dropping the result entries without counting them skipped.
	s3, _ := newTestServer(t, Config{Workers: 1, ResultCacheSize: -1})
	stats, err = s3.RestoreSnapshot(path)
	if err != nil {
		t.Fatalf("RestoreSnapshot (cache off): %v", err)
	}
	if stats.Results != 0 || stats.Skipped != 0 {
		t.Errorf("cache-off restore stats = %+v, want 0 results, 0 skipped", stats)
	}
}

// TestYieldStreamMatchesFixedSharded drives /v1/yield:stream to its full
// budget (mc_tol 0) and checks the final result against the plain
// endpoint's sharded sampler: same seed, same numbers — the adaptive
// stream is a bit-exact prefix (here: the whole) of the sharded one.
func TestYieldStreamMatchesFixedSharded(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := YieldRequest{
		InsertRequest: InsertRequest{Tree: smallTreeText(t), Algo: "wid", Parallelism: 4},
		MonteCarlo:    320,
		Seed:          5,
	}
	respPlain, rawPlain := postJSON(t, ts.URL+"/v1/yield", req)
	if respPlain.StatusCode != http.StatusOK {
		t.Fatalf("plain yield status %d: %s", respPlain.StatusCode, rawPlain)
	}
	var plain YieldResult
	if err := json.Unmarshal(rawPlain, &plain); err != nil {
		t.Fatal(err)
	}

	payload, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/yield:stream", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q, want application/x-ndjson", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("stream emitted %d events, want >= 2 (progress + result)", len(events))
	}
	final := events[len(events)-1]
	if final.Type != "result" || final.Result == nil {
		t.Fatalf("final event = %+v, want a result", final)
	}
	sawProgress := false
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "progress" || ev.Progress == nil {
			t.Fatalf("non-progress event before the result: %+v", ev)
		}
		if ev.Progress.Samples%(req.MonteCarlo/16) != 0 {
			t.Errorf("progress at %d samples is not shard-aligned", ev.Progress.Samples)
		}
		sawProgress = true
	}
	if !sawProgress {
		t.Error("stream carried no progress events")
	}

	got, want := final.Result.MonteCarlo, plain.MonteCarlo
	if got == nil || want == nil {
		t.Fatalf("missing MC summary: stream %+v, plain %+v", got, want)
	}
	if got.Samples != want.Samples || got.MeanPS != want.MeanPS ||
		got.SigmaPS != want.SigmaPS || got.QuantileRAT != want.QuantileRAT {
		t.Errorf("streamed full-budget MC differs from sharded:\nstream: %+v\nplain:  %+v", got, want)
	}
	// Full budget burned: the stream reports the run as not converged.
	if got.Converged {
		t.Error("mc_tol 0 run reports converged")
	}
	if got.CIHalfWidthPS <= 0 {
		t.Error("streamed result missing the CI half-width")
	}

	// Streaming requires samples to stream: monte_carlo 0 answers a plain 400.
	bad, _ := json.Marshal(YieldRequest{InsertRequest: req.InsertRequest})
	respBad, err := http.Post(ts.URL+"/v1/yield:stream", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	respBad.Body.Close()
	if respBad.StatusCode != http.StatusBadRequest {
		t.Errorf("stream without monte_carlo: status %d, want 400", respBad.StatusCode)
	}
}

// TestYieldAdaptiveEarlyStop exercises mc_tol on the plain endpoint: the
// run must stop at a shard boundary short of the cap, flag convergence,
// and report the CI half-width it stopped at.
func TestYieldAdaptiveEarlyStop(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := YieldRequest{
		InsertRequest: InsertRequest{Tree: smallTreeText(t), Algo: "wid"},
		MonteCarlo:    4096,
		Seed:          1,
		MCTol:         0.2,
	}
	resp, raw := postJSON(t, ts.URL+"/v1/yield", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out YieldResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	mc := out.MonteCarlo
	if mc == nil {
		t.Fatal("response missing the Monte-Carlo summary")
	}
	if !mc.Converged {
		t.Fatalf("adaptive run did not converge within %d samples: %+v", req.MonteCarlo, mc)
	}
	if mc.Samples >= req.MonteCarlo {
		t.Errorf("adaptive run burned the full budget (%d samples)", mc.Samples)
	}
	shard := req.MonteCarlo / 16
	if mc.Samples%shard != 0 {
		t.Errorf("stopped at %d samples, not a multiple of the %d-sample shard", mc.Samples, shard)
	}
	if mc.CIHalfWidthPS <= 0 {
		t.Error("converged run missing the CI half-width")
	}
}
