package server

// POST /v1/cache/lookup — the synchronous peer-cache read endpoint.
// Where /v1/cache/fill lets a router *push* a result into a recovered
// owner's cache, this endpoint lets a router *pull* one out: when a ring
// rebuild or a failover moves a key to a backend that has never seen
// it, the router first asks the key's previous owner whether its result
// cache still holds the answer. A hit means the client is served the
// cached body immediately and the new owner is warmed through the
// normal async fill; a miss is a plain 404 and costs one LRU probe.
//
// Like the fill, the lookup carries the *request* (this instance
// normalizes it and computes its own fingerprint — peer-supplied cache
// keys are never trusted) plus the epoch the answer must belong to. An
// epoch mismatch is refused with 409: a result from another library
// generation must never be served as current. Unlike the fill, the
// lookup is allowed while draining — it is read-only and racing the
// final snapshot write is harmless — which is exactly what lets a
// router rescue a draining instance's cache before it goes away.

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// CacheLookupRequest is the body of POST /v1/cache/lookup.
type CacheLookupRequest struct {
	// Kind is "insert" or "yield" — the result space to look in.
	Kind string `json:"kind"`
	// Epoch is the cache epoch the caller needs the answer to belong to
	// (typically the epoch of the backend that would otherwise compute).
	Epoch string `json:"epoch,omitempty"`
	// Request is the original client request, verbatim; the receiving
	// instance normalizes it and computes its own fingerprint.
	Request json.RawMessage `json:"request"`
}

// cacheLookup handles POST /v1/cache/lookup. A hit answers 200 with the
// cached result body itself — byte-compatible with what this instance
// would have answered on /v1/insert or /v1/yield — so the router can
// relay it to the client verbatim. A miss answers 404.
func (s *Server) cacheLookup(r *http.Request) (int, any) {
	var look CacheLookupRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &look); err != nil {
		return st, errBody(err)
	}
	if look.Epoch != s.cfg.Epoch {
		s.met.recordPeerLookup(false)
		return http.StatusConflict, errBody(fmt.Errorf(
			"cache lookup epoch %q does not match instance epoch %q",
			look.Epoch, s.cfg.Epoch))
	}
	fp, err := s.lookupFingerprint(&look)
	if err != nil {
		s.met.recordPeerLookup(false)
		return http.StatusBadRequest, errBody(err)
	}
	body, ok := s.resultGet(fp)
	if !ok {
		s.met.recordPeerLookup(false)
		return http.StatusNotFound, errBody(fmt.Errorf(
			"no cached result for fingerprint %s", fp))
	}
	s.met.recordPeerLookup(true)
	return http.StatusOK, body
}

// lookupFingerprint normalizes the embedded request and returns the
// fingerprint this instance files its result under.
func (s *Server) lookupFingerprint(look *CacheLookupRequest) (string, error) {
	switch look.Kind {
	case "insert":
		var req InsertRequest
		if err := json.Unmarshal(look.Request, &req); err != nil {
			return "", fmt.Errorf("decoding lookup request: %w", err)
		}
		if err := req.Normalize(); err != nil {
			return "", fmt.Errorf("normalizing lookup request: %w", err)
		}
		return req.Fingerprint(s.cfg.Epoch), nil
	case "yield":
		var req YieldRequest
		if err := json.Unmarshal(look.Request, &req); err != nil {
			return "", fmt.Errorf("decoding lookup request: %w", err)
		}
		if err := req.Normalize(); err != nil {
			return "", fmt.Errorf("normalizing lookup request: %w", err)
		}
		return req.Fingerprint(s.cfg.Epoch), nil
	default:
		return "", fmt.Errorf("unknown lookup kind %q (want insert or yield)", look.Kind)
	}
}
