package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Serve-path memoization benchmarks. Cold disables the result cache, so
// every iteration of the identical request runs the full DP (the tree and
// model LRUs stay warm — the result cache is the only knob under test).
// Warm answers from the content-addressed cache. Their ratio is the
// memoization win scripts/bench.sh snapshots (acceptance: >= 10x).
func benchServeInsert(b *testing.B, resultCacheSize int) {
	s := New(Config{Workers: 2, ResultCacheSize: resultCacheSize})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	payload, err := json.Marshal(InsertRequest{Bench: "r3", Algo: "wid"})
	if err != nil {
		b.Fatal(err)
	}
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post() // warm the tree/model LRUs and, when enabled, the result cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

func BenchmarkServeInsertCold(b *testing.B) { benchServeInsert(b, -1) }
func BenchmarkServeInsertWarm(b *testing.B) { benchServeInsert(b, 128) }
