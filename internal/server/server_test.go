package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vabuf"
)

// newTestServer starts a Server behind httptest with the given config.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallTreeText serializes a small random routing tree in the rctree
// text format — fast enough for race-enabled concurrency tests.
func smallTreeText(t *testing.T) string {
	t.Helper()
	tree, err := vabuf.GenerateTree(vabuf.BenchmarkSpec{Name: "t8", Sinks: 8, Seed: 7})
	if err != nil {
		t.Fatalf("generating tree: %v", err)
	}
	var buf bytes.Buffer
	if err := vabuf.WriteTree(&buf, tree); err != nil {
		t.Fatalf("writing tree: %v", err)
	}
	return buf.String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if dst != nil {
		if err := json.Unmarshal(raw, dst); err != nil {
			t.Fatalf("unmarshal %s: %v\n%s", url, err, raw)
		}
	}
	return resp
}

func TestInsertBenchmarkNom(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, raw := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Bench: "p1", Algo: "nom"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var res InsertResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if res.Sinks != 269 {
		t.Errorf("sinks = %d, want 269", res.Sinks)
	}
	if res.NumBuffers == 0 {
		t.Error("no buffers inserted")
	}
	if res.SigmaPS != 0 {
		t.Errorf("deterministic run has sigma %g", res.SigmaPS)
	}
	if res.Algo != "nom" || res.Rule != "2P" {
		t.Errorf("echoed algo/rule = %q/%q", res.Algo, res.Rule)
	}
}

func TestInsertCacheHit(t *testing.T) {
	// Result caching off: this test is about the tree/model LRUs, which
	// only show on the repeat if the identical request actually re-runs.
	_, ts := newTestServer(t, Config{Workers: 2, ResultCacheSize: -1})
	req := InsertRequest{Tree: smallTreeText(t), Algo: "wid"}

	resp1, raw1 := postJSON(t, ts.URL+"/v1/insert", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp1.StatusCode, raw1)
	}
	var first InsertResult
	if err := json.Unmarshal(raw1, &first); err != nil {
		t.Fatal(err)
	}
	if first.TreeCacheHit || first.ModelCacheHit {
		t.Errorf("first request reported cache hits: tree=%t model=%t",
			first.TreeCacheHit, first.ModelCacheHit)
	}

	resp2, raw2 := postJSON(t, ts.URL+"/v1/insert", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d: %s", resp2.StatusCode, raw2)
	}
	var second InsertResult
	if err := json.Unmarshal(raw2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.TreeCacheHit || !second.ModelCacheHit {
		t.Errorf("second request missed the caches: tree=%t model=%t",
			second.TreeCacheHit, second.ModelCacheHit)
	}
	if first.MeanPS != second.MeanPS || first.SigmaPS != second.SigmaPS ||
		first.ObjectivePS != second.ObjectivePS || first.NumBuffers != second.NumBuffers {
		t.Errorf("cached run diverged: first %+v, second %+v", first, second)
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	caches := met["caches"].(map[string]any)
	model := caches["model"].(map[string]any)
	if hits := model["hits"].(float64); hits < 1 {
		t.Errorf("model cache hits = %g, want >= 1", hits)
	}
	tree := caches["tree"].(map[string]any)
	if hits := tree["hits"].(float64); hits < 1 {
		t.Errorf("tree cache hits = %g, want >= 1", hits)
	}
	pruning := met["pruning"].(map[string]any)
	if gen := pruning["generated"].(float64); gen <= 0 {
		t.Errorf("pruning.generated = %g, want > 0", gen)
	}
	latency := met["latency_ms"].(map[string]any)
	hist, ok := latency["wid/2P"].(map[string]any)
	if !ok {
		t.Fatalf("latency_ms missing wid/2P: %v", latency)
	}
	if count := hist["count"].(float64); count < 2 {
		t.Errorf("wid/2P latency count = %g, want >= 2", count)
	}
}

func TestConcurrentInserts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	treeText := smallTreeText(t)
	algos := []string{"nom", "d2d", "wid"}

	const n = 12
	results := make([]InsertResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _ := json.Marshal(InsertRequest{Tree: treeText, Algo: algos[i%len(algos)]})
			resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			errs[i] = json.Unmarshal(raw, &results[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, algos[i%len(algos)], err)
		}
	}
	// Same algo + same tree must give identical numbers regardless of
	// which worker ran it or whether the model came from the cache.
	byAlgo := make(map[string]InsertResult)
	for i, res := range results {
		algo := algos[i%len(algos)]
		if prev, ok := byAlgo[algo]; ok {
			if prev.MeanPS != res.MeanPS || prev.NumBuffers != res.NumBuffers {
				t.Errorf("%s runs diverged: %+v vs %+v", algo, prev, res)
			}
		} else {
			byAlgo[algo] = res
		}
	}
}

func TestOverloadRejectsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookJob = func() {
		started <- struct{}{}
		<-release
	}

	treeText := smallTreeText(t)
	type outcome struct {
		status int
		err    error
	}
	firstDone := make(chan outcome, 1)
	go func() {
		payload, _ := json.Marshal(InsertRequest{Tree: treeText, Algo: "nom"})
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(payload))
		if err != nil {
			firstDone <- outcome{err: err}
			return
		}
		resp.Body.Close()
		firstDone <- outcome{status: resp.StatusCode}
	}()

	<-started // the single worker is now held busy
	if !s.pool.trySubmit(func() { <-release }, classInteractive) {
		t.Fatal("could not fill the single queue slot")
	}

	// A distinct quantile keeps this probe from coalescing onto the held
	// identical request — it must reach the full queue and bounce.
	resp, raw := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Tree: treeText, Algo: "nom", Quantile: 0.25})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(release)
	out := <-firstDone
	if out.err != nil || out.status != http.StatusOK {
		t.Fatalf("held request finished with %d/%v", out.status, out.err)
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	queue := met["queue"].(map[string]any)
	if rejected := queue["rejected"].(float64); rejected < 1 {
		t.Errorf("queue.rejected = %g, want >= 1", rejected)
	}
}

func TestRequestDeadlineMapsTo504(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, raw := postJSON(t, ts.URL+"/v1/insert",
		InsertRequest{Bench: "r1", Algo: "wid", TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, raw)
	}
	var e ErrorResult
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "time limit") {
		t.Errorf("error %q does not mention the time limit", e.Error)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	treeText := smallTreeText(t)
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", `{"bench":`},
		{"unknown field", `{"bench":"p1","frobnicate":1}`},
		{"no tree", `{}`},
		{"both bench and tree", fmt.Sprintf(`{"bench":"p1","tree":%q}`, treeText)},
		{"unknown bench", `{"bench":"nope"}`},
		{"garbage tree text", `{"tree":"this is not a tree"}`},
		{"unknown algo", `{"bench":"p1","algo":"fast"}`},
		{"unknown rule", `{"bench":"p1","rule":"5p"}`},
		{"unknown hull", `{"bench":"p1","hull":"convex"}`},
		{"pbar out of range", `{"bench":"p1","pbar":1.5}`},
		{"quantile out of range", `{"bench":"p1","quantile":-0.1}`},
		{"negative timeout", `{"bench":"p1","timeout_ms":-5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/insert", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, raw)
			}
			var e ErrorResult
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Errorf("malformed error body: %s", raw)
			}
		})
	}
}

func TestBenchmarksAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var bm BenchmarksResult
	if resp := getJSON(t, ts.URL+"/v1/benchmarks", &bm); resp.StatusCode != http.StatusOK {
		t.Fatalf("benchmarks status %d", resp.StatusCode)
	}
	want := vabuf.Benchmarks()
	if len(bm.Benchmarks) != len(want) {
		t.Fatalf("benchmarks = %v, want %v", bm.Benchmarks, want)
	}
	for i := range want {
		if bm.Benchmarks[i] != want[i] {
			t.Errorf("benchmarks[%d] = %q, want %q", i, bm.Benchmarks[i], want[i])
		}
	}

	var hz map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if hz["status"] != "ok" {
		t.Errorf("healthz = %v", hz)
	}
}

func TestYieldWithMonteCarlo(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, raw := postJSON(t, ts.URL+"/v1/yield", map[string]any{
		"tree":        smallTreeText(t),
		"algo":        "wid",
		"monte_carlo": 256,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var res YieldResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.SigmaPS <= 0 {
		t.Errorf("yield sigma = %g, want > 0", res.SigmaPS)
	}
	// q = 0.05 is the lower tail: the 95%-yield RAT sits below the mean.
	if res.YieldRATPS >= res.MeanPS {
		t.Errorf("yield RAT %g >= mean %g", res.YieldRATPS, res.MeanPS)
	}
	if res.MonteCarlo == nil || res.MonteCarlo.Samples != 256 {
		t.Fatalf("monte carlo block = %+v, want 256 samples", res.MonteCarlo)
	}
	// Canonical and sampled moments should roughly agree.
	if diff := res.MonteCarlo.MeanPS - res.MeanPS; diff > 5*res.SigmaPS || diff < -5*res.SigmaPS {
		t.Errorf("MC mean %g far from canonical mean %g (sigma %g)",
			res.MonteCarlo.MeanPS, res.MeanPS, res.SigmaPS)
	}
}

func TestCloseDrainsInFlightJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	if !s.pool.trySubmit(func() { close(started); <-release }, classInteractive) {
		t.Fatal("submit failed")
	}
	<-started

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the job finished")
	}
}
