package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLockSnapshotRefusesLiveHolder(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "caches.snap")
	release, err := LockSnapshot(snap)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer release()

	// Second acquisition from the same (live) process must refuse with a
	// message that names the holder and the misconfiguration.
	if _, err := LockSnapshot(snap); err == nil {
		t.Fatal("second acquire succeeded while the lock was held")
	} else {
		for _, want := range []string{fmt.Sprint(os.Getpid()), "share a snapshot path"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("lock error %q does not mention %q", err, want)
			}
		}
	}

	// Releasing frees the path for the next instance.
	release()
	release2, err := LockSnapshot(snap)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	release2()
}

func TestLockSnapshotTakesOverStaleLock(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "caches.snap")
	lock := snap + ".lock"

	// A lock stamped with a pid that cannot be running (beyond
	// kernel.pid_max) is stale: a crashed instance left it behind.
	if err := os.WriteFile(lock, []byte("2147483646\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	release, err := LockSnapshot(snap)
	if err != nil {
		t.Fatalf("acquire over stale lock: %v", err)
	}
	release()

	// A garbage lock file (no pid) is likewise taken over, not fatal.
	if err := os.WriteFile(lock, []byte("not a pid"), 0o644); err != nil {
		t.Fatal(err)
	}
	release, err = LockSnapshot(snap)
	if err != nil {
		t.Fatalf("acquire over garbage lock: %v", err)
	}
	release()

	if _, err := os.Stat(lock); !os.IsNotExist(err) {
		t.Errorf("lock file still present after release: %v", err)
	}
}
