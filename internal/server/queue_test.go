package server

import (
	"sync"
	"testing"
)

// recordPool builds a single-worker pool whose first job is held at a
// gate, so the test can enqueue a deterministic backlog before any
// dispatch decision is made. It returns the pool, the gate release,
// an append-to-order job factory, and the recorded order (read it only
// after close() has drained every job).
func recordPool(t *testing.T, sweepEvery int) (p *workerPool, release func(), tag func(string) func(), order *[]string) {
	t.Helper()
	p = newWorkerPool(1, 16, 16, sweepEvery)
	gate := make(chan struct{})
	started := make(chan struct{})
	if !p.trySubmit(func() { close(started); <-gate }, classInteractive) {
		t.Fatal("submitting the hold job failed")
	}
	<-started // the single worker is now held; later submits only queue

	var mu sync.Mutex
	order = new([]string)
	tag = func(name string) func() {
		return func() {
			mu.Lock()
			*order = append(*order, name)
			mu.Unlock()
		}
	}
	release = func() { close(gate) }
	return p, release, tag, order
}

func TestPoolInteractiveBeatsQueuedSweep(t *testing.T) {
	// sweepEvery 1 disables the guard: pure interactive-first priority.
	p, release, tag, order := recordPool(t, 1)
	mustSubmit(t, p, tag("s1"), classSweep)
	mustSubmit(t, p, tag("s2"), classSweep)
	mustSubmit(t, p, tag("i1"), classInteractive)
	release()
	p.close()
	assertOrder(t, *order, []string{"i1", "s1", "s2"})
}

func TestPoolStarvationGuard(t *testing.T) {
	// Every 2nd dispatch prefers sweep. The hold job was dispatch #1, so
	// the drain goes: #2 sweep, #3 interactive, #4 sweep, #5, #6.
	p, release, tag, order := recordPool(t, 2)
	mustSubmit(t, p, tag("i1"), classInteractive)
	mustSubmit(t, p, tag("i2"), classInteractive)
	mustSubmit(t, p, tag("i3"), classInteractive)
	mustSubmit(t, p, tag("s1"), classSweep)
	mustSubmit(t, p, tag("s2"), classSweep)
	release()
	p.close()
	assertOrder(t, *order, []string{"s1", "i1", "s2", "i2", "i3"})
}

func TestPoolDepthExactUnderHeldWorker(t *testing.T) {
	p, release, tag, _ := recordPool(t, 1)
	for i := 0; i < 3; i++ {
		mustSubmit(t, p, tag("x"), classInteractive)
	}
	mustSubmit(t, p, tag("y"), classSweep)
	// One in flight plus four queued: the gauge must be exactly 5 — the
	// dequeue/in-flight handoff happens under one lock, so there is no
	// window where a dispatched job is counted in neither bucket.
	if d := p.depth(); d != 5 {
		t.Fatalf("depth = %d with 1 in-flight + 4 queued, want exactly 5", d)
	}
	if q := p.queuedLen(classInteractive); q != 3 {
		t.Errorf("interactive queued = %d, want 3", q)
	}
	if q := p.queuedLen(classSweep); q != 1 {
		t.Errorf("sweep queued = %d, want 1", q)
	}
	release()
	p.close()
	if d := p.depth(); d != 0 {
		t.Fatalf("depth = %d after drain, want 0", d)
	}
}

func TestPoolPerClassRejection(t *testing.T) {
	p := newWorkerPool(1, 1, 1, 1)
	gate := make(chan struct{})
	started := make(chan struct{})
	mustSubmit(t, p, func() { close(started); <-gate }, classInteractive)
	<-started
	// One slot per class: the second queued submit of each class refuses.
	mustSubmit(t, p, func() {}, classInteractive)
	mustSubmit(t, p, func() {}, classSweep)
	if p.trySubmit(func() {}, classInteractive) {
		t.Error("interactive submit accepted beyond capacity")
	}
	if p.trySubmit(func() {}, classSweep) {
		t.Error("sweep submit accepted beyond capacity")
	}
	snap := p.classSnapshot()
	for _, class := range []string{"interactive", "sweep"} {
		cs := snap[class].(map[string]any)
		if rej := cs["rejected"].(int64); rej != 1 {
			t.Errorf("%s rejected = %d, want 1", class, rej)
		}
	}
	if tot := p.rejectedTotal(); tot != 2 {
		t.Errorf("rejectedTotal = %d, want 2", tot)
	}
	close(gate)
	p.close()
}

func mustSubmit(t *testing.T, p *workerPool, fn func(), class jobClass) {
	t.Helper()
	if !p.trySubmit(fn, class) {
		t.Fatalf("trySubmit(%s) refused with free capacity", classNames[class])
	}
}

func assertOrder(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("ran %d jobs %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}
