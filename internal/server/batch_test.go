package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vabuf"
	"vabuf/internal/stats"
)

func TestBatchInsertMixedWithPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	treeText := smallTreeText(t)
	algos := []string{"nom", "d2d", "wid"}

	const n = 32
	const bad = 17
	items := make([]InsertRequest, n)
	for i := range items {
		items[i] = InsertRequest{Algo: algos[i%len(algos)]}
	}
	items[bad].Algo = "frobnicate" // one invalid item must not fail the batch

	resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{
		Defaults: &InsertRequest{Tree: treeText},
		Items:    items,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200: %s", resp.StatusCode, raw)
	}
	var out BatchInsertResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != n {
		t.Fatalf("batch returned %d items, want %d", len(out.Items), n)
	}
	if out.Succeeded != n-1 || out.Errors != 1 {
		t.Fatalf("succeeded/errors = %d/%d, want %d/1", out.Succeeded, out.Errors, n-1)
	}
	byAlgo := make(map[string]*InsertResult)
	for i, item := range out.Items {
		if item.Index != i {
			t.Errorf("items[%d].Index = %d", i, item.Index)
		}
		if i == bad {
			if item.Status != http.StatusBadRequest || item.Error == "" || item.Result != nil {
				t.Errorf("invalid item = %+v, want a 400 with an error", item)
			}
			continue
		}
		if item.Status != http.StatusOK || item.Result == nil {
			t.Fatalf("items[%d] = status %d error %q, want 200", i, item.Status, item.Error)
		}
		if item.Result.NumBuffers == 0 {
			t.Errorf("items[%d] inserted no buffers", i)
		}
		// Identical (tree, algo) items must agree regardless of worker.
		algo := algos[i%len(algos)]
		if prev, ok := byAlgo[algo]; ok {
			if prev.MeanPS != item.Result.MeanPS || prev.NumBuffers != item.Result.NumBuffers {
				t.Errorf("%s batch items diverged: %+v vs %+v", algo, prev, item.Result)
			}
		} else {
			byAlgo[algo] = item.Result
		}
	}
}

func TestBatchInsertCacheHitsAcrossIdenticalItems(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// The items share one tree and one model but differ in quantile, so
	// they fingerprint-distinctly (no dedupe) and each runs its own DP —
	// exercising the tree/model LRUs, not the result cache.
	base := InsertRequest{Tree: smallTreeText(t), Algo: "wid"}
	items := make([]InsertRequest, 4)
	for i := range items {
		items[i] = base
		items[i].Quantile = 0.05 + 0.05*float64(i)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var out BatchInsertResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	// prepare resolves items sequentially on the handler goroutine, so
	// the first item builds the tree and model and the rest hit the LRUs.
	for i, item := range out.Items {
		if item.Status != http.StatusOK {
			t.Fatalf("items[%d] status %d: %s", i, item.Status, item.Error)
		}
		wantHit := i > 0
		if item.Result.TreeCacheHit != wantHit || item.Result.ModelCacheHit != wantHit {
			t.Errorf("items[%d] cache hits tree=%t model=%t, want %t",
				i, item.Result.TreeCacheHit, item.Result.ModelCacheHit, wantHit)
		}
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	caches := met["caches"].(map[string]any)
	for _, which := range []string{"tree", "model"} {
		c := caches[which].(map[string]any)
		if hits := c["hits"].(float64); hits < 3 {
			t.Errorf("%s cache hits = %g after 4 identical items, want >= 3", which, hits)
		}
	}
}

func TestBatchYield(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, raw := postJSON(t, ts.URL+"/v1/yield:batch", BatchYieldRequest{
		Defaults: &YieldRequest{
			InsertRequest: InsertRequest{Tree: smallTreeText(t), Algo: "wid"},
			MonteCarlo:    128,
		},
		Items: []YieldRequest{{}, {InsertRequest: InsertRequest{Algo: "d2d"}}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var out BatchYieldResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 2 || out.Errors != 0 {
		t.Fatalf("succeeded/errors = %d/%d: %s", out.Succeeded, out.Errors, raw)
	}
	for i, item := range out.Items {
		if item.Result.MonteCarlo == nil || item.Result.MonteCarlo.Samples != 128 {
			t.Errorf("items[%d] monte carlo = %+v, want 128 samples", i, item.Result.MonteCarlo)
		}
		if item.Result.SigmaPS <= 0 {
			t.Errorf("items[%d] sigma = %g, want > 0", i, item.Result.SigmaPS)
		}
	}
}

func TestBatchBounds(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxBatchItems: 2})
	resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status %d, want 400: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{
		Items: make([]InsertRequest, 3),
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "cap") {
		t.Errorf("oversized batch status %d, want 400 naming the cap: %s", resp.StatusCode, raw)
	}
}

func TestBatchOverload(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, SweepQueueDepth: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	// Hold the single worker, then fill the one sweep slot.
	if !s.pool.trySubmit(func() { close(started); <-release }, classInteractive) {
		t.Fatal("hold submit failed")
	}
	<-started
	if !s.pool.trySubmit(func() {}, classSweep) {
		t.Fatal("could not fill the sweep queue slot")
	}
	defer close(release)

	treeText := smallTreeText(t)
	resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{
		Defaults: &InsertRequest{Tree: treeText, Algo: "nom"},
		Items:    make([]InsertRequest, 2),
	})
	// Nothing could be enqueued: the aggregate answers 429 but still
	// carries the per-item statuses.
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full-overload batch status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 batch response missing Retry-After")
	}
	var out BatchInsertResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Errors != 2 || out.Succeeded != 0 {
		t.Fatalf("succeeded/errors = %d/%d, want 0/2", out.Succeeded, out.Errors)
	}
	for i, item := range out.Items {
		if item.Status != http.StatusTooManyRequests {
			t.Errorf("items[%d].Status = %d, want 429", i, item.Status)
		}
	}
}

// TestInteractiveBeatsQueuedBatch is the acceptance scenario: an
// interactive /v1/insert submitted while a batch is queued must be
// dispatched before the remaining sweep items.
func TestInteractiveBeatsQueuedBatch(t *testing.T) {
	// SweepEvery 1 disables the starvation guard so the preference is
	// purely interactive-first and the dispatch order is deterministic.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, SweepQueueDepth: 8, SweepEvery: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	s.testHookJob = func() { started <- struct{}{}; <-gate }

	treeText := smallTreeText(t)
	type reply struct {
		status int
		raw    []byte
	}
	// Distinct quantiles keep the three items (and the interactive probe,
	// which uses the 0.05 default) fingerprint-distinct, so nothing
	// coalesces and all three items really occupy the sweep queue.
	items := make([]InsertRequest, 3)
	for i := range items {
		items[i].Quantile = 0.1 + 0.05*float64(i)
	}
	batchDone := make(chan reply, 1)
	go func() {
		resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", BatchInsertRequest{
			Defaults: &InsertRequest{Tree: treeText, Algo: "nom"},
			Items:    items,
		})
		batchDone <- reply{resp.StatusCode, raw}
	}()
	<-started // batch item 1 holds the single worker; items 2–3 queued

	interactiveDone := make(chan reply, 1)
	go func() {
		resp, raw := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Tree: treeText, Algo: "nom"})
		interactiveDone <- reply{resp.StatusCode, raw}
	}()
	waitFor(t, func() bool { return s.pool.queuedLen(classInteractive) == 1 },
		"interactive request queued")

	gate <- struct{}{} // finish batch item 1; the next dispatch decides
	<-started          // a job started: with priority it is the interactive one
	gate <- struct{}{} // let it finish

	select {
	case r := <-interactiveDone:
		if r.status != http.StatusOK {
			t.Fatalf("interactive status %d: %s", r.status, r.raw)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interactive request not dispatched ahead of queued sweep items")
	}
	select {
	case r := <-batchDone:
		t.Fatalf("batch finished before its remaining sweep items ran: %+v", r)
	default:
	}

	close(gate) // drain the two remaining sweep items
	r := <-batchDone
	if r.status != http.StatusOK {
		t.Fatalf("batch status %d: %s", r.status, r.raw)
	}
	var out BatchInsertResult
	if err := json.Unmarshal(r.raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Succeeded != 3 {
		t.Fatalf("batch succeeded = %d, want 3: %s", out.Succeeded, r.raw)
	}
}

// TestMonteCarloSummaryParity pins the server's Monte-Carlo reduction to
// the library's own descriptive stats: the /v1/yield quantile must equal
// stats.Percentile and the sigma the unbiased stats.MeanVar — the same
// helpers the experiments pipeline uses.
func TestMonteCarloSummaryParity(t *testing.T) {
	samples := make([]float64, 999)
	for i := range samples {
		// Deterministic, irregular, unsorted sample vector.
		samples[i] = math.Sin(float64(i)*12.9898) * 43758.5453
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		got := summarizeSamples(samples, q)
		if got == nil || got.Samples != len(samples) {
			t.Fatalf("q=%g: summary = %+v", q, got)
		}
		wantQ, err := stats.Percentile(samples, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.QuantileRAT != wantQ {
			t.Errorf("q=%g: quantile = %v, want stats.Percentile = %v", q, got.QuantileRAT, wantQ)
		}
		wantMean, wantVar := stats.MeanVar(samples)
		if got.MeanPS != wantMean || got.SigmaPS != math.Sqrt(wantVar) {
			t.Errorf("q=%g: mean/sigma = %v/%v, want %v/%v",
				q, got.MeanPS, got.SigmaPS, wantMean, math.Sqrt(wantVar))
		}
		// And the facade re-exports agree with the internal package.
		if fq, _ := vabuf.Percentile(samples, q); fq != wantQ {
			t.Errorf("facade Percentile = %v, want %v", fq, wantQ)
		}
	}
	if summarizeSamples(nil, 0.5) != nil {
		t.Error("empty sample vector should summarize to nil")
	}
}

func TestOversizedBodyReturns413(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxRequestBytes: 64})
	body := fmt.Sprintf(`{"bench":"p1","algo":"nom","tree":%q}`, strings.Repeat("x", 256))
	resp, err := http.Post(ts.URL+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e ErrorResult
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, e.Error)
	}
	if !strings.Contains(e.Error, "64-byte limit") {
		t.Errorf("error %q does not name the byte limit", e.Error)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{"bench":"p1","algo":"nom"} garbage`,
		`{"bench":"p1","algo":"nom"}{"bench":"p2"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResult
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if !strings.Contains(e.Error, "trailing") {
			t.Errorf("body %q: error %q does not mention trailing data", body, e.Error)
		}
	}
}

// TestQueueDepthGaugeExact holds the single worker via testHookJob and
// checks that the /metrics queue-depth gauge counts queued + in-flight
// exactly — no transient low reading between dequeue and execution.
func TestQueueDepthGaugeExact(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testHookJob = func() { started <- struct{}{}; <-release }

	treeText := smallTreeText(t)
	httpDone := make(chan struct{})
	go func() {
		defer close(httpDone)
		postJSON(t, ts.URL+"/v1/insert", InsertRequest{Tree: treeText, Algo: "nom"})
	}()
	<-started // the worker is in the held job: in-flight = 1, queued = 0

	var drained sync.WaitGroup
	for i := 0; i < 3; i++ {
		drained.Add(1)
		if !s.pool.trySubmit(func() { drained.Done() }, classInteractive) {
			t.Fatal("queueing filler job failed")
		}
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	queue := met["queue"].(map[string]any)
	if depth := queue["depth"].(float64); depth != 4 {
		t.Fatalf("queue depth = %g with 1 in-flight + 3 queued, want exactly 4", depth)
	}
	classes := queue["classes"].(map[string]any)
	inter := classes["interactive"].(map[string]any)
	if q, f := inter["queued"].(float64), inter["in_flight"].(float64); q != 3 || f != 1 {
		t.Fatalf("interactive queued/in_flight = %g/%g, want 3/1", q, f)
	}

	close(release)
	drained.Wait()
	<-httpDone
	waitFor(t, func() bool { return s.pool.depth() == 0 }, "queue drained to depth 0")
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
