package server

// Cache snapshot / warm restart. A restart used to cold-start both LRU
// caches, so the first request for every tree paid benchmark generation
// (or parsing) and variation-grid construction again. vabufd now writes
// a snapshot file on graceful drain (and on a -snapshot-every ticker)
// and restores it on boot:
//
//   - Tree entries persist the rctree text (the format already
//     round-trips bit-exactly) plus a SHA-256 checksum.
//   - Model entries persist only the build recipe (tree key, algo,
//     budget, heterogeneity) — variation models rebuild
//     deterministically from config, so serializing the grids would be
//     pure bloat.
//
// The write is atomic (temp file + rename in the target directory), so a
// crash mid-write leaves the previous snapshot intact. Restore validates
// every entry (checksum, then parse/rebuild) and skips corrupt ones with
// a counter instead of failing startup — a truncated or hand-edited
// snapshot degrades to a partial warm start, never a crash loop.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vabuf"
)

// snapshotVersion is bumped when the entry schema changes; restore
// refuses other versions (counted as a restore error, not a crash).
const snapshotVersion = 1

// snapshotEntry is one cache slot in the snapshot file.
type snapshotEntry struct {
	// Kind is "tree", "model", "insert_result", or "yield_result".
	Kind string `json:"kind"`
	// Key is the LRU key the entry is restored under, verbatim (for
	// result kinds, the request fingerprint).
	Key string `json:"key"`
	// Tree is the rctree text (kind "tree" only).
	Tree string `json:"tree,omitempty"`
	// TreeKey/Algo/Budget/Heterogeneous are the model build recipe
	// (kind "model" only). TreeKey names the tree-cache entry the model
	// is built against.
	TreeKey       string  `json:"tree_key,omitempty"`
	Algo          string  `json:"algo,omitempty"`
	Budget        float64 `json:"budget,omitempty"`
	Heterogeneous bool    `json:"heterogeneous,omitempty"`
	// Result is the cached response body, verbatim (result kinds only).
	Result json.RawMessage `json:"result,omitempty"`
	// SHA256 covers every semantic field above; restore recomputes and
	// skips the entry on mismatch.
	SHA256 string `json:"sha256"`
}

// computeChecksum hashes the semantic fields of the entry. Result bytes
// are folded in only when present, so tree/model checksums are
// unchanged from snapshots written before result entries existed. The
// Result JSON is hashed in compact form: MarshalIndent re-indents raw
// messages on the way to disk, and the checksum must survive that.
func (e *snapshotEntry) computeChecksum() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%s\x00%g\x00%t",
		e.Kind, e.Key, e.Tree, e.TreeKey, e.Algo, e.Budget, e.Heterogeneous)
	if len(e.Result) > 0 {
		h.Write([]byte{0})
		var compact bytes.Buffer
		if err := json.Compact(&compact, e.Result); err == nil {
			h.Write(compact.Bytes())
		} else {
			h.Write(e.Result)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// snapshotFile is the on-disk document.
type snapshotFile struct {
	Version int    `json:"version"`
	SavedAt string `json:"saved_at"`
	// Entries are ordered most-recently-used first, trees before models.
	Entries []snapshotEntry `json:"entries"`
}

// RestoreStats reports the outcome of a snapshot restore.
type RestoreStats struct {
	Trees   int // tree entries restored
	Models  int // model entries restored (rebuilt from their recipe)
	Results int // insert/yield result entries restored into the result cache
	Skipped int // entries dropped: bad checksum, parse error, missing tree
}

// marshalSnapshot assembles the snapshot document from the live caches.
func (s *Server) marshalSnapshot() ([]byte, error) {
	doc := snapshotFile{
		Version: snapshotVersion,
		SavedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, ce := range s.trees.entries() {
		tree, ok := ce.val.(*vabuf.Tree)
		if !ok {
			continue
		}
		var buf strings.Builder
		if err := vabuf.WriteTree(&buf, tree); err != nil {
			return nil, fmt.Errorf("serializing tree %q: %w", ce.key, err)
		}
		e := snapshotEntry{Kind: "tree", Key: ce.key, Tree: buf.String()}
		e.SHA256 = e.computeChecksum()
		if s.faults != nil && s.faults.corruptSnapshotEntry != nil {
			s.faults.corruptSnapshotEntry(&e)
		}
		doc.Entries = append(doc.Entries, e)
	}
	for _, ce := range s.models.entries() {
		me, ok := ce.val.(*modelEntry)
		if !ok {
			continue
		}
		e := snapshotEntry{
			Kind:          "model",
			Key:           ce.key,
			TreeKey:       me.treeKey,
			Algo:          me.algo,
			Budget:        me.budget,
			Heterogeneous: me.hetero,
		}
		e.SHA256 = e.computeChecksum()
		if s.faults != nil && s.faults.corruptSnapshotEntry != nil {
			s.faults.corruptSnapshotEntry(&e)
		}
		doc.Entries = append(doc.Entries, e)
	}
	if s.results != nil {
		for _, ce := range s.results.entries() {
			var kind string
			switch ce.val.(type) {
			case *InsertResult:
				kind = "insert_result"
			case *YieldResult:
				kind = "yield_result"
			default:
				continue
			}
			body, err := json.Marshal(ce.val)
			if err != nil {
				return nil, fmt.Errorf("serializing result %q: %w", ce.key, err)
			}
			e := snapshotEntry{Kind: kind, Key: ce.key, Result: body}
			e.SHA256 = e.computeChecksum()
			if s.faults != nil && s.faults.corruptSnapshotEntry != nil {
				s.faults.corruptSnapshotEntry(&e)
			}
			doc.Entries = append(doc.Entries, e)
		}
	}
	return json.MarshalIndent(doc, "", " ")
}

// SaveSnapshot atomically writes the current cache contents to path:
// the document lands in a temp file in the same directory and is
// renamed over the target, so readers (and a crash mid-write) only ever
// see a complete snapshot. Failures are counted in /metrics under
// snapshot.save_errors and never disturb serving.
func (s *Server) SaveSnapshot(path string) error {
	err := s.saveSnapshot(path)
	s.met.recordSnapshotSave(err)
	return err
}

func (s *Server) saveSnapshot(path string) error {
	data, err := s.marshalSnapshot()
	if err != nil {
		return err
	}
	if s.faults != nil && s.faults.snapshotWrite != nil {
		if data, err = s.faults.snapshotWrite(data); err != nil {
			return fmt.Errorf("writing snapshot: %w", err)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("writing snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("renaming snapshot into place: %w", err)
	}
	return nil
}

// RestoreSnapshot loads a snapshot written by SaveSnapshot, marking the
// server restoring (503 on /readyz) for the duration. Corrupt entries —
// checksum mismatch, unparsable tree, a model whose tree is gone — are
// skipped and counted, never fatal: the worst snapshot yields a cold
// cache, not a dead server. Only a missing/unreadable file or an
// unusable document returns an error, and callers are expected to log
// it and serve cold.
func (s *Server) RestoreSnapshot(path string) (RestoreStats, error) {
	s.state.restoring.Store(true)
	defer s.state.restoring.Store(false)
	return s.restoreSnapshot(path)
}

// RestoreSnapshotAsync marks the server restoring immediately and
// restores in the background, so the caller can bring the listener up
// first: /readyz answers 503 restoring until the warm-up finishes,
// while requests that race it still succeed against the cold caches.
func (s *Server) RestoreSnapshotAsync(path string, onDone func(RestoreStats, error)) {
	s.state.restoring.Store(true)
	go func() {
		defer s.state.restoring.Store(false)
		stats, err := s.restoreSnapshot(path)
		if onDone != nil {
			onDone(stats, err)
		}
	}()
}

func (s *Server) restoreSnapshot(path string) (RestoreStats, error) {
	var stats RestoreStats
	data, err := os.ReadFile(path)
	if err != nil {
		return stats, err
	}
	var doc snapshotFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return stats, fmt.Errorf("parsing snapshot %s: %w", path, err)
	}
	if doc.Version != snapshotVersion {
		return stats, fmt.Errorf("snapshot %s has version %d, want %d", path, doc.Version, snapshotVersion)
	}
	// Entries were saved most-recently-used first; restore in reverse so
	// the rebuilt LRU ends up in the original recency order. Trees first:
	// models resolve their tree through the tree cache.
	for i := len(doc.Entries) - 1; i >= 0; i-- {
		e := &doc.Entries[i]
		if e.Kind != "tree" {
			continue
		}
		if s.faults != nil && s.faults.beforeRestoreEntry != nil {
			s.faults.beforeRestoreEntry(e.Kind, e.Key)
		}
		if e.SHA256 != e.computeChecksum() {
			stats.Skipped++
			continue
		}
		tree, err := vabuf.ReadTree(strings.NewReader(e.Tree))
		if err != nil {
			stats.Skipped++
			continue
		}
		s.trees.add(e.Key, tree)
		stats.Trees++
	}
	for i := len(doc.Entries) - 1; i >= 0; i-- {
		e := &doc.Entries[i]
		if e.Kind == "tree" {
			continue
		}
		if s.faults != nil && s.faults.beforeRestoreEntry != nil {
			s.faults.beforeRestoreEntry(e.Kind, e.Key)
		}
		if e.SHA256 != e.computeChecksum() {
			stats.Skipped++
			continue
		}
		switch e.Kind {
		case "model":
			tree, err := s.treeForModelRestore(e.TreeKey)
			if err != nil {
				stats.Skipped++
				continue
			}
			entry, err := buildModelEntry(tree, e.TreeKey, e.Algo, e.Budget, e.Heterogeneous)
			if err != nil {
				stats.Skipped++
				continue
			}
			s.models.add(e.Key, entry)
			stats.Models++
		case "insert_result", "yield_result":
			// Dropped without counting when the result cache is off: the
			// entries are intact, this instance just chose not to keep them.
			if s.results == nil {
				continue
			}
			var val any
			var err error
			if e.Kind == "insert_result" {
				res := new(InsertResult)
				err = json.Unmarshal(e.Result, res)
				val = res
			} else {
				res := new(YieldResult)
				err = json.Unmarshal(e.Result, res)
				val = res
			}
			if err != nil {
				stats.Skipped++
				continue
			}
			s.results.add(e.Key, val)
			stats.Results++
		default:
			stats.Skipped++
		}
	}
	s.met.recordSnapshotRestore(stats)
	return stats, nil
}

// treeForModelRestore resolves the tree a snapshotted model was built
// against: from the (just-restored) tree cache, or by regenerating a
// built-in benchmark. An inline tree whose text entry was corrupt or
// evicted cannot be recovered — the model entry is skipped.
func (s *Server) treeForModelRestore(treeKey string) (*vabuf.Tree, error) {
	if v, ok := s.trees.peek(treeKey); ok {
		if tree, ok := v.(*vabuf.Tree); ok {
			return tree, nil
		}
	}
	if name, ok := strings.CutPrefix(treeKey, "bench:"); ok {
		tree, err := vabuf.GenerateBenchmark(name)
		if err != nil {
			return nil, err
		}
		s.trees.add(treeKey, tree)
		return tree, nil
	}
	return nil, fmt.Errorf("tree %q not in snapshot", treeKey)
}
