package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPanicInJobIsolatedToRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	var arm atomic.Bool
	arm.Store(true)
	s.faults = &faultHooks{beforeJob: func(endpoint string) {
		if arm.Swap(false) {
			panic("injected DP crash")
		}
	}}

	req := InsertRequest{Bench: "p1", Algo: "nom"}
	resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request status = %d, want 500: %s", resp.StatusCode, raw)
	}
	var eres ErrorResult
	if err := json.Unmarshal(raw, &eres); err != nil || !strings.Contains(eres.Error, "panic") {
		t.Fatalf("500 body = %s (err %v), want a structured panic error", raw, err)
	}

	// The worker survived: the next request runs normally.
	resp, raw = postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200: %s", resp.StatusCode, raw)
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	panics := met["panics_recovered"].(map[string]any)
	if got := panics["/v1/insert"].(float64); got != 1 {
		t.Errorf("panics_recovered[/v1/insert] = %g, want 1", got)
	}
	// The panic was recovered at the job layer, not the worker backstop.
	if got := met["queue"].(map[string]any)["worker_panics"].(float64); got != 0 {
		t.Errorf("queue.worker_panics = %g, want 0", got)
	}
}

func TestBatchItemPanicIsolated(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// Exactly one of the batch's jobs panics; which item draws it is
	// scheduling-dependent, and irrelevant — the point is that exactly one
	// item fails with a 500 while its siblings succeed.
	var calls atomic.Int64
	s.faults = &faultHooks{beforeJob: func(endpoint string) {
		if endpoint == "/v1/insert:batch" && calls.Add(1) == 2 {
			panic("injected batch-item crash")
		}
	}}

	breq := BatchInsertRequest{Items: []InsertRequest{
		{Bench: "p1", Algo: "nom"},
		{Bench: "p2", Algo: "nom"},
		{Bench: "r1", Algo: "nom"},
	}}
	resp, raw := postJSON(t, ts.URL+"/v1/insert:batch", breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate status = %d, want 200: %s", resp.StatusCode, raw)
	}
	var out BatchInsertResult
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Succeeded != 2 || out.Errors != 1 {
		t.Fatalf("succeeded/errors = %d/%d, want 2/1", out.Succeeded, out.Errors)
	}
	panicked := 0
	for _, item := range out.Items {
		switch item.Status {
		case http.StatusOK:
			if item.Result == nil {
				t.Errorf("item %d: 200 with nil result", item.Index)
			}
		case http.StatusInternalServerError:
			panicked++
			if !strings.Contains(item.Error, "panic") {
				t.Errorf("item %d: 500 error %q does not mention the panic", item.Index, item.Error)
			}
		default:
			t.Errorf("item %d: unexpected status %d (%s)", item.Index, item.Status, item.Error)
		}
	}
	if panicked != 1 {
		t.Fatalf("%d items answered 500, want exactly 1", panicked)
	}

	// Subsequent traffic is unaffected.
	resp, raw = postJSON(t, ts.URL+"/v1/insert", InsertRequest{Bench: "p1", Algo: "nom"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d, want 200: %s", resp.StatusCode, raw)
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	panics := met["panics_recovered"].(map[string]any)
	if got := panics["/v1/insert:batch"].(float64); got != 1 {
		t.Errorf("panics_recovered[/v1/insert:batch] = %g, want 1", got)
	}
}

func TestDrainRejectsNewWorkAndSnapshots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "final.snap")
	s, ts := newTestServer(t, Config{Workers: 1, SnapshotPath: path})

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.testHookJob = func() {
		started <- struct{}{}
		<-release
	}

	// An in-flight batch rides through the drain.
	batchDone := make(chan *http.Response, 1)
	go func() {
		payload, _ := json.Marshal(BatchInsertRequest{Items: []InsertRequest{
			{Bench: "p1", Algo: "nom"},
			{Bench: "p1", Algo: "nom"},
		}})
		resp, err := http.Post(ts.URL+"/v1/insert:batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Error(err)
			batchDone <- nil
			return
		}
		resp.Body.Close()
		batchDone <- resp
	}()
	<-started // first item is on the single worker

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	waitFor(t, s.isDraining, "server entered the draining state")

	// New work is refused with 503 + Retry-After while draining.
	resp, raw := postJSON(t, ts.URL+"/v1/insert", InsertRequest{Bench: "p1", Algo: "nom"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain status = %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/insert:batch",
		BatchInsertRequest{Items: []InsertRequest{{Bench: "p1", Algo: "nom"}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drain batch status = %d, want 503", resp.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/readyz", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", r.StatusCode)
	}

	select {
	case <-closed:
		t.Fatal("Close returned while batch items were still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the batch finished")
	}
	if resp := <-batchDone; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight batch finished with %v, want 200", resp)
	}

	// Close wrote the final snapshot with the batch's tree in it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	var doc snapshotFile
	if err := json.Unmarshal(data, &doc); err != nil || len(doc.Entries) == 0 {
		t.Fatalf("final snapshot unusable (err %v, %d entries)", err, len(doc.Entries))
	}
}

func TestSheddingRejectsSweepKeepsInteractive(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:         1,
		QueueDepth:      1,
		SweepQueueDepth: 1,
		ShedAfter:       30 * time.Millisecond,
	})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.testHookJob = func() {
		started <- struct{}{}
		<-release
	}

	// Hold the single worker, fill both class queues, then trip the
	// saturation mark with one refused submit.
	firstDone := make(chan int, 1)
	go func() {
		payload, _ := json.Marshal(InsertRequest{Bench: "p1", Algo: "nom"})
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Error(err)
			firstDone <- 0
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started
	if !s.pool.trySubmit(func() { <-release }, classInteractive) ||
		!s.pool.trySubmit(func() { <-release }, classSweep) {
		t.Fatal("could not fill the class queues")
	}
	if s.pool.trySubmit(func() {}, classSweep) {
		t.Fatal("overfull submit unexpectedly accepted")
	}
	time.Sleep(2 * s.cfg.ShedAfter) // age the saturation episode past the window

	// Sweep-class work is now shed with 503 before touching the queue...
	// (Priority is not part of the fingerprint, so a distinct quantile
	// keeps the probe from coalescing onto the held identical request.)
	sweep := InsertRequest{Bench: "p1", Algo: "nom", Priority: "sweep", Quantile: 0.15}
	resp, raw := postJSON(t, ts.URL+"/v1/insert", sweep)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed sweep status = %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 missing Retry-After")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/insert:batch",
		BatchInsertRequest{Items: []InsertRequest{{Bench: "p1", Algo: "nom"}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shed batch status = %d, want 503", resp.StatusCode)
	}
	// ...while interactive work keeps its normal admission path (the full
	// queue answers 429, not the shed gate's 503). Again quantile-distinct
	// from the held request so it reaches the queue instead of coalescing.
	resp, _ = postJSON(t, ts.URL+"/v1/insert", InsertRequest{Bench: "p1", Algo: "nom", Quantile: 0.25})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("interactive status under shed = %d, want 429", resp.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/readyz", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while shedding = %d, want 503", r.StatusCode)
	}
	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	if got := met["state"].(string); got != stateShedding {
		t.Errorf("metrics state = %q, want %q", got, stateShedding)
	}
	shed := met["shed"].(map[string]any)
	if got := shed["/v1/insert"].(float64); got < 1 {
		t.Errorf("shed[/v1/insert] = %g, want >= 1", got)
	}

	// Draining the backlog ends the episode: sweep work is admitted again.
	close(release)
	if st := <-firstDone; st != http.StatusOK {
		t.Fatalf("held request finished with %d", st)
	}
	waitFor(t, func() bool { return s.pool.depth() == 0 }, "queue drained")
	if r := getJSON(t, ts.URL+"/readyz", nil); r.StatusCode != http.StatusOK {
		t.Errorf("/readyz after drain = %d, want 200", r.StatusCode)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/insert", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("sweep after recovery = %d, want 200: %s", resp.StatusCode, raw)
	}
}

func TestReadyzReportsRestoring(t *testing.T) {
	path := filepath.Join(t.TempDir(), "caches.snap")
	s1, ts1 := newTestServer(t, Config{Workers: 1})
	resp, raw := postJSON(t, ts1.URL+"/v1/insert", InsertRequest{Bench: "p1", Algo: "nom"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", resp.StatusCode, raw)
	}
	if err := s1.SaveSnapshot(path); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	s2, ts2 := newTestServer(t, Config{Workers: 1})
	entered := make(chan struct{})
	hold := make(chan struct{})
	var once sync.Once
	s2.faults = &faultHooks{beforeRestoreEntry: func(kind, key string) {
		once.Do(func() { close(entered) })
		<-hold
	}}
	restored := make(chan RestoreStats, 1)
	s2.RestoreSnapshotAsync(path, func(stats RestoreStats, err error) {
		if err != nil {
			t.Errorf("async restore: %v", err)
		}
		restored <- stats
	})
	<-entered

	var body map[string]any
	if r := getJSON(t, ts2.URL+"/readyz", &body); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while restoring = %d, want 503", r.StatusCode)
	}
	if body["status"] != stateRestoring {
		t.Errorf("readyz status = %v, want %q", body["status"], stateRestoring)
	}
	// Requests racing the restore still work against the cold caches.
	resp, raw = postJSON(t, ts2.URL+"/v1/insert", InsertRequest{Bench: "p2", Algo: "nom"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("request during restore = %d: %s", resp.StatusCode, raw)
	}

	close(hold)
	stats := <-restored
	if stats.Trees != 1 {
		t.Errorf("restored trees = %d, want 1", stats.Trees)
	}
	waitFor(t, func() bool { return s2.readyState() == stateReady }, "server became ready")
	if r := getJSON(t, ts2.URL+"/readyz", nil); r.StatusCode != http.StatusOK {
		t.Errorf("/readyz after restore = %d, want 200", r.StatusCode)
	}
}
