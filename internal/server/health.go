package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// serverState tracks the conditions that make an instance not-ready.
// Liveness (GET /healthz) stays 200 through all of them — the process is
// up — while readiness (GET /readyz) turns 503 so a load balancer or
// client-side router steers traffic elsewhere without killing the
// instance.
type serverState struct {
	// draining is set by Close/StartDrain: the server finishes in-flight
	// jobs but admits no new ones.
	draining atomic.Bool
	// restoring is set while a cache snapshot is being restored; requests
	// that arrive early still work, they just miss the still-cold caches.
	restoring atomic.Bool
}

// Readiness reason strings, also exported in /metrics under "state".
const (
	stateReady     = "ready"
	stateDraining  = "draining"
	stateRestoring = "restoring"
	stateShedding  = "shedding"
)

// isDraining reports whether graceful drain has begun.
func (s *Server) isDraining() bool { return s.state.draining.Load() }

// shedding reports whether the queue has been saturated for longer than
// Config.ShedAfter. In that state sweep-class work is rejected before it
// reaches the queue (503 + Retry-After) while interactive work keeps its
// normal admission path — graceful degradation instead of a cliff where
// bulk sweeps crowd out every interactive user.
func (s *Server) shedding() bool {
	return s.cfg.ShedAfter > 0 && s.pool.saturatedFor() >= s.cfg.ShedAfter
}

// readyState reduces the state flags to one reason string, most severe
// first: a draining server is gone for good, a restoring one will be
// ready shortly, a shedding one recovers as soon as backlog drains.
func (s *Server) readyState() string {
	switch {
	case s.isDraining():
		return stateDraining
	case s.state.restoring.Load():
		return stateRestoring
	case s.shedding():
		return stateShedding
	default:
		return stateReady
	}
}

// readyz is GET /readyz: 200 when the instance should receive traffic,
// 503 with the reason while draining, restoring a snapshot, or shedding
// under sustained saturation. Pair it with /healthz — liveness restarts
// the process, readiness only steers traffic away.
func (s *Server) readyz(*http.Request) (int, any) {
	state := s.readyState()
	body := map[string]any{
		"status":         state,
		"uptime_seconds": time.Since(s.met.start).Seconds(),
		// instance and epoch let a probing router attribute this backend
		// and tag peer cache fills without a separate /metrics call.
		"instance": s.InstanceID(),
		"epoch":    s.cfg.Epoch,
	}
	if state != stateReady {
		return http.StatusServiceUnavailable, body
	}
	return http.StatusOK, body
}
