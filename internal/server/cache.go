package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vabuf"
)

// lruCache is a concurrency-safe LRU of build-once slots. A lookup
// reserves a slot under the cache lock, then builds the value outside it
// (guarded by the slot's sync.Once), so an expensive build — benchmark
// generation, variation-grid construction — never blocks unrelated keys
// and never runs twice for concurrent identical requests.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	slots map[string]*list.Element

	hits, misses atomic.Int64
}

type cacheSlot struct {
	key  string
	once sync.Once
	val  any
	err  error
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		slots: make(map[string]*list.Element),
	}
}

// do returns the value for key, building it at most once per residency.
// hit reports whether the slot already existed (a returning request). A
// failed build evicts its slot so a later request can retry.
func (c *lruCache) do(key string, build func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	el, ok := c.slots[key]
	if ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		el = c.order.PushFront(&cacheSlot{key: key})
		c.slots[key] = el
		if c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.slots, oldest.Value.(*cacheSlot).key)
		}
	}
	slot := el.Value.(*cacheSlot)
	c.mu.Unlock()

	slot.once.Do(func() { slot.val, slot.err = build() })
	if slot.err != nil {
		c.mu.Lock()
		if cur, ok := c.slots[key]; ok && cur == el {
			c.order.Remove(el)
			delete(c.slots, key)
		}
		c.mu.Unlock()
		return nil, ok, slot.err
	}
	return slot.val, ok, nil
}

// stats returns the cumulative hit/miss counters and the current size.
func (c *lruCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	size = c.order.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), size
}

// modelEntry pairs a cached variation model with a mutex serializing the
// runs that share it: variation.Model allocates per-site random sources
// lazily, so two concurrent insertions over one instance would race. Runs
// on distinct (tree, config) keys still proceed in parallel.
type modelEntry struct {
	mu    sync.Mutex
	model *vabuf.VariationModel
}
