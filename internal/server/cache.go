package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vabuf"
)

// lruCache is a concurrency-safe LRU of build-once slots. A lookup
// reserves a slot under the cache lock, then builds the value outside it
// (guarded by the slot's sync.Once), so an expensive build — benchmark
// generation, variation-grid construction — never blocks unrelated keys
// and never runs twice for concurrent identical requests.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	slots map[string]*list.Element

	hits, misses atomic.Int64
}

type cacheSlot struct {
	key  string
	once sync.Once
	val  any
	err  error
	// ready is set (after once has run) once val/err are safe to read
	// without holding the slot's once — the snapshot writer iterates
	// finished slots while requests may still be building others.
	ready atomic.Bool
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		slots: make(map[string]*list.Element),
	}
}

// do returns the value for key, building it at most once per residency.
// hit reports whether the slot already existed (a returning request). A
// failed build evicts its slot so a later request can retry.
func (c *lruCache) do(key string, build func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	el, ok := c.slots[key]
	if ok {
		c.order.MoveToFront(el)
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
		el = c.order.PushFront(&cacheSlot{key: key})
		c.slots[key] = el
		if c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.slots, oldest.Value.(*cacheSlot).key)
		}
	}
	slot := el.Value.(*cacheSlot)
	c.mu.Unlock()

	slot.once.Do(func() { slot.val, slot.err = build() })
	slot.ready.Store(true)
	if slot.err != nil {
		c.mu.Lock()
		if cur, ok := c.slots[key]; ok && cur == el {
			c.order.Remove(el)
			delete(c.slots, key)
		}
		c.mu.Unlock()
		return nil, ok, slot.err
	}
	return slot.val, ok, nil
}

// add inserts an already-built value — the snapshot-restore path. It
// counts as neither hit nor miss; a later do() for the same key reports
// a hit, which is exactly what a warm restart should look like.
func (c *lruCache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.slots[key]; ok {
		return
	}
	slot := &cacheSlot{key: key, val: val}
	slot.once.Do(func() {}) // consume the once so do() never rebuilds
	slot.ready.Store(true)
	c.slots[key] = c.order.PushFront(slot)
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.slots, oldest.Value.(*cacheSlot).key)
	}
}

// get returns the finished value for key, counting a hit or miss and
// refreshing recency — the read path of the result cache, whose values
// are stored with add (never built in place like do's slots).
func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.slots[key]
	if ok {
		slot := el.Value.(*cacheSlot)
		if slot.ready.Load() && slot.err == nil {
			c.order.MoveToFront(el)
			c.hits.Add(1)
			c.mu.Unlock()
			return slot.val, true
		}
	}
	c.misses.Add(1)
	c.mu.Unlock()
	return nil, false
}

// peek returns the finished value for key without counting a hit or
// reordering the LRU. It reports false for absent or still-building slots.
func (c *lruCache) peek(key string) (any, bool) {
	c.mu.Lock()
	el, ok := c.slots[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	slot := el.Value.(*cacheSlot)
	if !slot.ready.Load() || slot.err != nil {
		return nil, false
	}
	return slot.val, true
}

// cacheEntry is one finished cache slot, as seen by the snapshot writer.
type cacheEntry struct {
	key string
	val any
}

// entries returns the finished slots in LRU order (most recent first).
// Slots still building — or whose build failed — are skipped: the
// snapshot only ever persists values a request actually received.
func (c *lruCache) entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		slot := el.Value.(*cacheSlot)
		if !slot.ready.Load() || slot.err != nil {
			continue
		}
		out = append(out, cacheEntry{key: slot.key, val: slot.val})
	}
	return out
}

// stats returns the cumulative hit/miss counters and the current size.
func (c *lruCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	size = c.order.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), size
}

// flight is one in-flight computation of the request-coalescing
// registry. The leader publishes its outcome through finish; waiters
// block on done and then read status/val without further locking.
type flight struct {
	done    chan struct{}
	waiters int // requests coalesced onto this flight (excluding the leader)
	status  int // HTTP status of the leader's outcome
	val     any // response body when status is 200
}

// flightGroup is a singleflight registry keyed by result fingerprint:
// while a request with some fingerprint is running, concurrent
// identical requests join its flight instead of submitting their own
// pool job — they consume no worker slot and adopt the leader's
// successful response verbatim. Only successes are adopted: when a
// leader fails (or its client walks away mid-run), each waiter retries
// the full path itself, so an error — retryable by nature — is never
// fanned out beyond the requests that truly shared the failing run.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// join enters the flight for key, creating it when absent. The creator
// is the leader (must call finish exactly once); everyone else is a
// waiter and must block on f.done.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		f.waiters++
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// finish publishes the leader's outcome and retires the flight, so a
// request arriving after this instant starts a fresh one.
func (g *flightGroup) finish(key string, f *flight, status int, val any) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	f.status, f.val = status, val
	close(f.done)
}

// waiters reports the current waiter count of key's flight (0 when no
// flight is active) — test and metrics introspection only.
func (g *flightGroup) waitersOf(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		return f.waiters
	}
	return 0
}

// inflight reports the number of active flights.
func (g *flightGroup) inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// modelEntry pairs a cached variation model with a mutex serializing the
// runs that share it: variation.Model allocates per-site random sources
// lazily, so two concurrent insertions over one instance would race. Runs
// on distinct (tree, config) keys still proceed in parallel.
//
// The build parameters ride along so the snapshot writer can persist the
// recipe instead of the model itself — models rebuild deterministically
// from (tree, algo, budget, heterogeneous) on restore.
type modelEntry struct {
	mu    sync.Mutex
	model *vabuf.VariationModel

	treeKey string // tree-cache key the model was built against
	algo    string
	budget  float64
	hetero  bool
}
