package server

// POST /v1/cache/fill — the peer-cache-fill admission endpoint. When a
// vabufr router fails a request over to a non-owner backend, the owner's
// result cache stays cold even after the owner recovers: the next repeat
// routed to it would recompute from scratch. The router therefore
// replays the serving backend's answer here once the owner's /readyz
// probe recovers, and the owner stores it under its own fingerprint —
// the fleet's caches re-converge without burning a worker.
//
// The fill carries the *request* (so this instance computes the
// fingerprint itself — it never trusts a peer-supplied cache key) and
// the serving backend's epoch. An epoch mismatch is refused with 409:
// a result computed against another library generation must never be
// admitted under this instance's keys, or an epoch bump would silently
// resurrect exactly the stale results it exists to kill.

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// CacheFillRequest is the body of POST /v1/cache/fill.
type CacheFillRequest struct {
	// Kind is "insert" or "yield" — the result space of the fill.
	Kind string `json:"kind"`
	// Epoch is the cache epoch of the backend that computed Result.
	Epoch string `json:"epoch,omitempty"`
	// Request is the original client request, verbatim; the receiving
	// instance normalizes it and computes its own fingerprint.
	Request json.RawMessage `json:"request"`
	// Result is the response body the serving backend answered with.
	Result json.RawMessage `json:"result"`
}

// CacheFillResult is the response of POST /v1/cache/fill.
type CacheFillResult struct {
	Stored      bool   `json:"stored"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Reason explains a Stored=false outcome that is not an error
	// (result cache disabled).
	Reason string `json:"reason,omitempty"`
}

// cacheFill handles POST /v1/cache/fill. It runs on the handler
// goroutine — admission is a decode plus an LRU insert, far too cheap to
// queue — and is refused while draining so a fill can never race the
// final snapshot write.
func (s *Server) cacheFill(r *http.Request) (int, any) {
	if s.isDraining() {
		return http.StatusServiceUnavailable, errBody(errDraining)
	}
	var fill CacheFillRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &fill); err != nil {
		return st, errBody(err)
	}
	if fill.Epoch != s.cfg.Epoch {
		s.met.recordPeerFill(false)
		return http.StatusConflict, errBody(fmt.Errorf(
			"cache fill epoch %q does not match instance epoch %q (stale peer result refused)",
			fill.Epoch, s.cfg.Epoch))
	}
	fp, val, err := s.decodeFill(&fill)
	if err != nil {
		s.met.recordPeerFill(false)
		return http.StatusBadRequest, errBody(err)
	}
	if s.results == nil {
		return http.StatusOK, CacheFillResult{Stored: false, Reason: "result cache disabled"}
	}
	s.resultStore(fp, val)
	s.met.recordPeerFill(true)
	return http.StatusOK, CacheFillResult{Stored: true, Fingerprint: fp}
}

// decodeFill validates one fill: the request must normalize (it yields
// the fingerprint) and the result must parse as the matching DTO, so a
// corrupt fill can never plant an unserveable cache entry.
func (s *Server) decodeFill(fill *CacheFillRequest) (fp string, val any, err error) {
	switch fill.Kind {
	case "insert":
		var req InsertRequest
		if err := json.Unmarshal(fill.Request, &req); err != nil {
			return "", nil, fmt.Errorf("decoding fill request: %w", err)
		}
		if err := req.Normalize(); err != nil {
			return "", nil, fmt.Errorf("normalizing fill request: %w", err)
		}
		res := new(InsertResult)
		if err := json.Unmarshal(fill.Result, res); err != nil {
			return "", nil, fmt.Errorf("decoding fill result: %w", err)
		}
		return req.Fingerprint(s.cfg.Epoch), res, nil
	case "yield":
		var req YieldRequest
		if err := json.Unmarshal(fill.Request, &req); err != nil {
			return "", nil, fmt.Errorf("decoding fill request: %w", err)
		}
		if err := req.Normalize(); err != nil {
			return "", nil, fmt.Errorf("normalizing fill request: %w", err)
		}
		res := new(YieldResult)
		if err := json.Unmarshal(fill.Result, res); err != nil {
			return "", nil, fmt.Errorf("decoding fill result: %w", err)
		}
		return req.Fingerprint(s.cfg.Epoch), res, nil
	default:
		return "", nil, fmt.Errorf("unknown fill kind %q (want insert or yield)", fill.Kind)
	}
}
