package server

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"vabuf"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the latency
// histogram buckets; a final +Inf bucket catches the rest.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	count   int64
	sumMS   float64
	buckets []int64 // len(latencyBucketsMS)+1, last = +Inf
}

func (h *histogram) observe(ms float64) {
	h.count++
	h.sumMS += ms
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(latencyBucketsMS)]++
}

func (h *histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(h.buckets))
	for i, ub := range latencyBucketsMS {
		buckets[fmt.Sprintf("le_%g", ub)] = h.buckets[i]
	}
	buckets["inf"] = h.buckets[len(latencyBucketsMS)]
	return map[string]any{
		"count":   h.count,
		"sum_ms":  h.sumMS,
		"buckets": buckets,
	}
}

// pruneTotals accumulates core.Result.Stats across every successful run —
// the service-lifetime view of the paper's Table 2 counters.
type pruneTotals struct {
	runs      int64
	generated int64
	pruned    int64
	merges    int64
	nodes     int64
	peakList  int
	// Worker/arena totals of the parallel allocation-lean engine.
	workers         int64
	arenaCandidates int64
	arenaTerms      int64
	arenaBytes      int64
}

// metrics is the expvar-style registry behind GET /metrics.
type metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]map[string]int64 // endpoint -> status code -> count
	latency  map[string]*histogram       // "algo/rule" -> run latency
	prune    pruneTotals
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		requests: make(map[string]map[string]int64),
		latency:  make(map[string]*histogram),
	}
}

func (m *metrics) recordRequest(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[string]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[strconv.Itoa(status)]++
}

// recordRun records one successful insertion run: its latency under the
// algo/rule key and its pruning counters.
func (m *metrics) recordRun(algo, rule string, elapsed time.Duration, res *vabuf.Result) {
	key := algo + "/" + rule
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[key]
	if h == nil {
		h = &histogram{buckets: make([]int64, len(latencyBucketsMS)+1)}
		m.latency[key] = h
	}
	h.observe(float64(elapsed) / float64(time.Millisecond))
	m.prune.runs++
	m.prune.generated += res.Stats.Generated
	m.prune.pruned += res.Stats.Pruned
	m.prune.merges += res.Stats.Merges
	m.prune.nodes += int64(res.Stats.Nodes)
	if res.Stats.PeakList > m.prune.peakList {
		m.prune.peakList = res.Stats.PeakList
	}
	m.prune.workers += int64(res.Stats.Workers)
	m.prune.arenaCandidates += res.Stats.ArenaCandidates
	m.prune.arenaTerms += res.Stats.ArenaTerms
	m.prune.arenaBytes += res.Stats.ArenaBytes
}

func cacheSnapshot(c *lruCache, capacity int) map[string]any {
	hits, misses, size := c.stats()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return map[string]any{
		"hits":     hits,
		"misses":   misses,
		"size":     size,
		"capacity": capacity,
		"hit_rate": rate,
	}
}

// snapshot assembles the full /metrics document.
func (m *metrics) snapshot(pool *workerPool, trees, models *lruCache,
	treeCap, modelCap int) map[string]any {
	m.mu.Lock()
	requests := make(map[string]map[string]int64, len(m.requests))
	for ep, byStatus := range m.requests {
		cp := make(map[string]int64, len(byStatus))
		for st, n := range byStatus {
			cp[st] = n
		}
		requests[ep] = cp
	}
	latency := make(map[string]any, len(m.latency))
	for key, h := range m.latency {
		latency[key] = h.snapshot()
	}
	prune := map[string]any{
		"runs":             m.prune.runs,
		"generated":        m.prune.generated,
		"pruned":           m.prune.pruned,
		"merges":           m.prune.merges,
		"nodes":            m.prune.nodes,
		"peak_list":        m.prune.peakList,
		"workers":          m.prune.workers,
		"arena_candidates": m.prune.arenaCandidates,
		"arena_terms":      m.prune.arenaTerms,
		"arena_bytes":      m.prune.arenaBytes,
	}
	m.mu.Unlock()

	return map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"requests":       requests,
		"latency_ms":     latency,
		// depth/capacity/rejected keep their pre-priority-queue meaning
		// (existing dashboards); "classes" splits them per class with
		// queue-wait latency histograms.
		"queue": map[string]any{
			"depth":       pool.depth(),
			"capacity":    pool.capacity(),
			"workers":     pool.workers,
			"rejected":    pool.rejectedTotal(),
			"sweep_every": pool.sweepEvery,
			"classes":     pool.classSnapshot(),
		},
		"caches": map[string]any{
			"tree":  cacheSnapshot(trees, treeCap),
			"model": cacheSnapshot(models, modelCap),
		},
		"pruning": prune,
	}
}
