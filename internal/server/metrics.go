package server

import (
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"vabuf"
)

// latencyBucketsMS are the upper bounds (milliseconds) of the latency
// histogram buckets; a final +Inf bucket catches the rest.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	count   int64
	sumMS   float64
	buckets []int64 // len(latencyBucketsMS)+1, last = +Inf
}

func (h *histogram) observe(ms float64) {
	h.count++
	h.sumMS += ms
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(latencyBucketsMS)]++
}

func (h *histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(h.buckets))
	for i, ub := range latencyBucketsMS {
		buckets[fmt.Sprintf("le_%g", ub)] = h.buckets[i]
	}
	buckets["inf"] = h.buckets[len(latencyBucketsMS)]
	return map[string]any{
		"count":   h.count,
		"sum_ms":  h.sumMS,
		"buckets": buckets,
	}
}

// pruneTotals accumulates core.Result.Stats across every successful run —
// the service-lifetime view of the paper's Table 2 counters.
type pruneTotals struct {
	runs      int64
	generated int64
	pruned    int64
	merges    int64
	nodes     int64
	peakList  int
	// Worker/arena totals of the parallel allocation-lean engine.
	workers         int64
	arenaCandidates int64
	arenaTerms      int64
	arenaBytes      int64
	arenaUsedBytes  int64
	// Subtree DP-frontier cache totals across runs (per-run counters;
	// the cache's own lifetime view sits under caches.subtree).
	subtreeHits   int64
	subtreeMisses int64
	subtreeStores int64
	// Convex-hull buffering kernel totals: skipped counts candidates
	// never generated (the kernel's savings), fallbacks sites that took
	// the exact path because the certification preconditions failed.
	hullSites     int64
	hullSkipped   int64
	hullFallbacks int64
}

// snapshotCounters tracks the cache snapshot/warm-restart machinery.
type snapshotCounters struct {
	restoredTrees   int64
	restoredModels  int64
	restoredResults int64
	skipped         int64 // corrupt/unrecoverable entries dropped on restore
	saves           int64
	saveErrors      int64
}

// metrics is the expvar-style registry behind GET /metrics.
type metrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[string]map[string]int64 // endpoint -> status code -> count
	latency  map[string]*histogram       // "algo/rule" -> run latency
	prune    pruneTotals
	panics   map[string]int64 // endpoint -> panics recovered in its jobs
	shed     map[string]int64 // endpoint -> sweep submissions shed early
	// coalesced counts requests answered by joining an identical
	// in-flight request (single-flight waiters), per endpoint. Batch
	// endpoints count intra-batch duplicate items here too.
	coalesced map[string]int64
	snap      snapshotCounters
	// peerFills counts /v1/cache/fill admissions: accepted entries stored
	// in the result cache, rejected ones refused (epoch mismatch or
	// malformed fill).
	peerFillsAccepted int64
	peerFillsRejected int64
	// peerLookups counts /v1/cache/lookup probes: hits served a cached
	// result to a peer router, misses cover 404s plus refused lookups
	// (epoch mismatch or malformed request).
	peerLookupHits   int64
	peerLookupMisses int64
	// deadlineRejected counts requests refused with 504 at admission
	// because their propagated Vabuf-Deadline-Ms budget was already spent
	// — they never touched a cache or the queue. deadlineExpired counts
	// queued jobs dropped at dequeue because their deadline passed (or
	// their client vanished) while they waited. Both keyed by endpoint.
	deadlineRejected map[string]int64
	deadlineExpired  map[string]int64
}

func newMetrics() *metrics {
	return &metrics{
		start:            time.Now(),
		requests:         make(map[string]map[string]int64),
		latency:          make(map[string]*histogram),
		panics:           make(map[string]int64),
		shed:             make(map[string]int64),
		coalesced:        make(map[string]int64),
		deadlineRejected: make(map[string]int64),
		deadlineExpired:  make(map[string]int64),
	}
}

// recordCoalesced counts a request (or batch item) answered by an
// identical in-flight or sibling computation instead of its own run.
func (m *metrics) recordCoalesced(endpoint string) {
	m.mu.Lock()
	m.coalesced[endpoint]++
	m.mu.Unlock()
}

// panicRecovered records a panic recovered inside a pool job submitted
// by endpoint, logs the stack, and returns the error the request (or
// batch item) answers as its structured 500. The worker that ran the
// job survives and returns to the pool.
func (m *metrics) panicRecovered(endpoint string, v any) error {
	m.mu.Lock()
	m.panics[endpoint]++
	m.mu.Unlock()
	log.Printf("%s: recovered panic in job: %v\n%s", endpoint, v, debug.Stack())
	return fmt.Errorf("internal panic in insertion job (recovered): %v", v)
}

// recordPeerFill counts one /v1/cache/fill admission outcome.
func (m *metrics) recordPeerFill(accepted bool) {
	m.mu.Lock()
	if accepted {
		m.peerFillsAccepted++
	} else {
		m.peerFillsRejected++
	}
	m.mu.Unlock()
}

// recordPeerLookup counts one /v1/cache/lookup outcome.
func (m *metrics) recordPeerLookup(hit bool) {
	m.mu.Lock()
	if hit {
		m.peerLookupHits++
	} else {
		m.peerLookupMisses++
	}
	m.mu.Unlock()
}

// recordDeadlineRejected counts one request refused at admission because
// its propagated deadline was already spent.
func (m *metrics) recordDeadlineRejected(endpoint string) {
	m.mu.Lock()
	m.deadlineRejected[endpoint]++
	m.mu.Unlock()
}

// recordDeadlineExpired counts one queued job dropped at dequeue because
// its deadline passed (or its client vanished) while it waited.
func (m *metrics) recordDeadlineExpired(endpoint string) {
	m.mu.Lock()
	m.deadlineExpired[endpoint]++
	m.mu.Unlock()
}

// recordShed counts a sweep-class submission rejected by the shed gate.
func (m *metrics) recordShed(endpoint string) {
	m.mu.Lock()
	m.shed[endpoint]++
	m.mu.Unlock()
}

// recordSnapshotSave counts a snapshot write attempt.
func (m *metrics) recordSnapshotSave(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err != nil {
		m.snap.saveErrors++
		return
	}
	m.snap.saves++
}

// recordSnapshotRestore accumulates the outcome of a snapshot restore.
func (m *metrics) recordSnapshotRestore(stats RestoreStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.restoredTrees += int64(stats.Trees)
	m.snap.restoredModels += int64(stats.Models)
	m.snap.restoredResults += int64(stats.Results)
	m.snap.skipped += int64(stats.Skipped)
}

func (m *metrics) recordRequest(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus := m.requests[endpoint]
	if byStatus == nil {
		byStatus = make(map[string]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[strconv.Itoa(status)]++
}

// recordRun records one successful insertion run: its latency under the
// algo/rule key and its pruning counters.
func (m *metrics) recordRun(algo, rule string, elapsed time.Duration, res *vabuf.Result) {
	key := algo + "/" + rule
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[key]
	if h == nil {
		h = &histogram{buckets: make([]int64, len(latencyBucketsMS)+1)}
		m.latency[key] = h
	}
	h.observe(float64(elapsed) / float64(time.Millisecond))
	m.prune.runs++
	m.prune.generated += res.Stats.Generated
	m.prune.pruned += res.Stats.Pruned
	m.prune.merges += res.Stats.Merges
	m.prune.nodes += int64(res.Stats.Nodes)
	if res.Stats.PeakList > m.prune.peakList {
		m.prune.peakList = res.Stats.PeakList
	}
	m.prune.workers += int64(res.Stats.Workers)
	m.prune.arenaCandidates += res.Stats.ArenaCandidates
	m.prune.arenaTerms += res.Stats.ArenaTerms
	m.prune.arenaBytes += res.Stats.ArenaBytes
	m.prune.arenaUsedBytes += res.Stats.ArenaUsedBytes
	m.prune.subtreeHits += res.Stats.SubtreeHits
	m.prune.subtreeMisses += res.Stats.SubtreeMisses
	m.prune.subtreeStores += res.Stats.SubtreeStores
	m.prune.hullSites += res.Stats.HullSites
	m.prune.hullSkipped += res.Stats.HullSkipped
	m.prune.hullFallbacks += res.Stats.HullFallbacks
}

func cacheSnapshot(c *lruCache, capacity int) map[string]any {
	hits, misses, size := c.stats()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return map[string]any{
		"hits":     hits,
		"misses":   misses,
		"size":     size,
		"capacity": capacity,
		"hit_rate": rate,
	}
}

// subtreeCacheSnapshot renders the subtree DP-frontier cache's lifetime
// counters for the caches section of /metrics.
func subtreeCacheSnapshot(c *vabuf.SubtreeCache) map[string]any {
	st := c.Stats()
	rate := 0.0
	if st.Hits+st.Misses > 0 {
		rate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return map[string]any{
		"hits":      st.Hits,
		"misses":    st.Misses,
		"stores":    st.Stores,
		"evictions": st.Evictions,
		"entries":   st.Entries,
		"bytes":     st.Bytes,
		"max_bytes": st.MaxBytes,
		"hit_rate":  rate,
	}
}

// snapshot assembles the full /metrics document. results may be nil
// (result cache disabled), as may subtrees (subtree cache disabled);
// state is the current readiness reason (see Server.readyState).
func (m *metrics) snapshot(pool *workerPool, trees, models, results *lruCache,
	subtrees *vabuf.SubtreeCache,
	treeCap, modelCap, resultCap, inflight int, state string) map[string]any {
	m.mu.Lock()
	requests := make(map[string]map[string]int64, len(m.requests))
	for ep, byStatus := range m.requests {
		cp := make(map[string]int64, len(byStatus))
		for st, n := range byStatus {
			cp[st] = n
		}
		requests[ep] = cp
	}
	latency := make(map[string]any, len(m.latency))
	for key, h := range m.latency {
		latency[key] = h.snapshot()
	}
	panics := make(map[string]int64, len(m.panics))
	for ep, n := range m.panics {
		panics[ep] = n
	}
	shed := make(map[string]int64, len(m.shed))
	for ep, n := range m.shed {
		shed[ep] = n
	}
	coalesced := make(map[string]int64, len(m.coalesced))
	for ep, n := range m.coalesced {
		coalesced[ep] = n
	}
	peerFills := map[string]any{
		"accepted": m.peerFillsAccepted,
		"rejected": m.peerFillsRejected,
	}
	peerLookups := map[string]any{
		"hits":   m.peerLookupHits,
		"misses": m.peerLookupMisses,
	}
	var rejectedTotal, expiredTotal int64
	deadlineRejected := make(map[string]int64, len(m.deadlineRejected))
	for ep, n := range m.deadlineRejected {
		deadlineRejected[ep] = n
		rejectedTotal += n
	}
	deadlineExpired := make(map[string]int64, len(m.deadlineExpired))
	for ep, n := range m.deadlineExpired {
		deadlineExpired[ep] = n
		expiredTotal += n
	}
	snap := map[string]any{
		"restored_trees":   m.snap.restoredTrees,
		"restored_models":  m.snap.restoredModels,
		"restored_results": m.snap.restoredResults,
		"skipped":          m.snap.skipped,
		"saves":            m.snap.saves,
		"save_errors":      m.snap.saveErrors,
	}
	prune := map[string]any{
		"runs":             m.prune.runs,
		"generated":        m.prune.generated,
		"pruned":           m.prune.pruned,
		"merges":           m.prune.merges,
		"nodes":            m.prune.nodes,
		"peak_list":        m.prune.peakList,
		"workers":          m.prune.workers,
		"arena_candidates": m.prune.arenaCandidates,
		"arena_terms":      m.prune.arenaTerms,
		"arena_bytes":      m.prune.arenaBytes,
		"arena_used_bytes": m.prune.arenaUsedBytes,
		"subtree_hits":     m.prune.subtreeHits,
		"subtree_misses":   m.prune.subtreeMisses,
		"subtree_stores":   m.prune.subtreeStores,
		"hull_sites":       m.prune.hullSites,
		"hull_skipped":     m.prune.hullSkipped,
		"hull_fallbacks":   m.prune.hullFallbacks,
	}
	m.mu.Unlock()

	doc := map[string]any{
		"uptime_seconds": time.Since(m.start).Seconds(),
		"state":          state,
		// goroutines is the live goroutine count — fleet.sh and chaos.sh
		// compare it across a run to catch leaks in the serve path.
		"goroutines": runtime.NumGoroutine(),
		"requests":   requests,
		"latency_ms": latency,
		// deadline tracks Vabuf-Deadline-Ms enforcement: rejected counts
		// 504s at admission (budget spent before any work), expired counts
		// queued jobs dropped at dequeue — both per endpoint plus totals,
		// so a soak can assert doomed work never reached a DP worker.
		"deadline": map[string]any{
			"rejected":       deadlineRejected,
			"expired":        deadlineExpired,
			"rejected_total": rejectedTotal,
			"expired_total":  expiredTotal,
		},
		// panics_recovered counts jobs whose panic was converted into a
		// structured 500 for that request/item, keyed by the endpoint
		// that submitted them; the worker always survives.
		"panics_recovered": panics,
		// shed counts sweep-class submissions rejected early (503) while
		// the queue was saturated past -shed-after.
		"shed": shed,
		// snapshot tracks cache persistence: restore/skip counts from
		// warm restarts plus save attempts and failures.
		"snapshot": snap,
		// peer_fills tracks /v1/cache/fill: results replayed by a router
		// after serving a failover miss, accepted into the result cache
		// or refused (epoch mismatch / malformed).
		"peer_fills": peerFills,
		// peer_lookups tracks /v1/cache/lookup: synchronous cache probes
		// from a router rescuing a moved key's result, hits vs misses.
		"peer_lookups": peerLookups,
		// depth/capacity/rejected keep their pre-priority-queue meaning
		// (existing dashboards); "classes" splits them per class with
		// queue-wait latency histograms.
		"queue": map[string]any{
			"depth":         pool.depth(),
			"capacity":      pool.capacity(),
			"workers":       pool.workers,
			"rejected":      pool.rejectedTotal(),
			"sweep_every":   pool.sweepEvery,
			"worker_panics": pool.workerPanics(),
			"classes":       pool.classSnapshot(),
		},
		"pruning": prune,
	}
	caches := map[string]any{
		"tree":  cacheSnapshot(trees, treeCap),
		"model": cacheSnapshot(models, modelCap),
	}
	if results != nil {
		caches["result"] = cacheSnapshot(results, resultCap)
	}
	if subtrees != nil {
		caches["subtree"] = subtreeCacheSnapshot(subtrees)
	}
	doc["caches"] = caches
	// coalesced counts requests answered by an identical in-flight or
	// intra-batch sibling computation; inflight is the current number of
	// active single-flight leaders.
	doc["coalescing"] = map[string]any{
		"coalesced": coalesced,
		"inflight":  inflight,
	}
	return doc
}
