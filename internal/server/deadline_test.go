package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestDeadlineHeaderParsing(t *testing.T) {
	h := make(http.Header)
	if _, ok := DeadlineFromHeader(h); ok {
		t.Error("absent header parsed as a deadline")
	}
	h.Set(DeadlineHeader, "garbage")
	if _, ok := DeadlineFromHeader(h); ok {
		t.Error("malformed header parsed as a deadline")
	}
	h.Set(DeadlineHeader, "250")
	if d, ok := DeadlineFromHeader(h); !ok || d != 250*time.Millisecond {
		t.Errorf("250 parsed as (%v, %v), want (250ms, true)", d, ok)
	}
	h.Set(DeadlineHeader, "0")
	if d, ok := DeadlineFromHeader(h); !ok || d > 0 {
		t.Errorf("0 parsed as (%v, %v), want spent deadline", d, ok)
	}

	h = make(http.Header)
	SetDeadlineHeader(h, context.Background())
	if h.Get(DeadlineHeader) != "" {
		t.Error("SetDeadlineHeader stamped a context without a deadline")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	SetDeadlineHeader(h, ctx)
	if d, ok := DeadlineFromHeader(h); !ok || d <= 0 || d > time.Second {
		t.Errorf("round-tripped deadline = (%v, %v)", d, ok)
	}
}

// postDeadline posts body with a Vabuf-Deadline-Ms header.
func postDeadline(t *testing.T, url, ms string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, ms)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// metricsSection fetches /metrics and returns one top-level section.
func metricsSection(t *testing.T, url, section string) map[string]any {
	t.Helper()
	var met map[string]any
	getJSON(t, url+"/metrics", &met)
	sec, ok := met[section].(map[string]any)
	if !ok {
		t.Fatalf("/metrics has no %q section", section)
	}
	return sec
}

// TestSpentDeadlineRejectedAtAdmission: a request arriving with its
// budget already spent is answered 504 before touching the queue — the
// acceptance criterion that an expired request never reaches a worker.
func TestSpentDeadlineRejectedAtAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ran := make(chan struct{}, 4)
	s.testHookJob = func() { ran <- struct{}{} }

	for _, ep := range []string{"/v1/insert", "/v1/yield", "/v1/yield:stream"} {
		resp, raw := postDeadline(t, ts.URL+ep, "0",
			InsertRequest{Bench: "p1", Algo: "nom"})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("%s with spent deadline: status %d (%s), want 504",
				ep, resp.StatusCode, raw)
		}
	}
	select {
	case <-ran:
		t.Fatal("a spent-deadline request reached a DP worker")
	default:
	}
	dl := metricsSection(t, ts.URL, "deadline")
	if got, _ := dl["rejected_total"].(float64); got != 3 {
		t.Errorf("deadline.rejected_total = %v, want 3", got)
	}
	if got, _ := dl["expired_total"].(float64); got != 0 {
		t.Errorf("deadline.expired_total = %v, want 0", got)
	}
}

// TestDeadlineExpiredWhileQueued: a job whose budget runs out while it
// waits behind a busy worker is dropped at dequeue — counted as expired,
// never run.
func TestDeadlineExpiredWhileQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // a failing assertion must still free the worker
	var once sync.Once
	started := make(chan struct{})
	s.testHookJob = func() {
		once.Do(func() { close(started) })
		<-release
	}

	// Occupy the lone worker.
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		payload, _ := json.Marshal(InsertRequest{Bench: "p1", Algo: "nom"})
		resp, err := http.Post(ts.URL+"/v1/insert", "application/json",
			bytes.NewReader(payload))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	// This one queues behind the blocker and its 60ms budget dies there.
	// A different tree than the blocker's: an identical request would
	// coalesce onto the in-flight run instead of queueing.
	resp, raw := postDeadline(t, ts.URL+"/v1/insert", "60",
		InsertRequest{Tree: smallTreeText(t), Algo: "nom"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued-past-deadline request: status %d (%s), want 504",
			resp.StatusCode, raw)
	}

	unblock()
	<-blockerDone
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.expiredTotal() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.pool.expiredTotal(); got != 1 {
		t.Errorf("pool expired total = %d, want 1", got)
	}
	dl := metricsSection(t, ts.URL, "deadline")
	if got, _ := dl["expired_total"].(float64); got != 1 {
		t.Errorf("deadline.expired_total = %v, want 1", got)
	}
}

// TestQueueWaitCountsRejections: the queue-wait histogram counts every
// admission outcome, including refused submissions (observed as 0 wait),
// so overload is visible in the histogram itself.
func TestQueueWaitCountsRejections(t *testing.T) {
	p := newWorkerPool(1, 0, 0, 1) // zero queue depth: every submit refused
	defer p.close()
	for i := 0; i < 3; i++ {
		if p.trySubmit(func() {}, classInteractive) {
			t.Fatal("submit into a zero-depth queue succeeded")
		}
	}
	snap := p.classSnapshot()
	inter := snap["interactive"].(map[string]any)
	wait := inter["wait_ms"].(map[string]any)
	if got := wait["count"].(int64); got != 3 {
		t.Errorf("wait histogram count = %v, want 3 (rejections counted)", got)
	}
	if got := inter["rejected"].(int64); got != 3 {
		t.Errorf("rejected = %v, want 3", got)
	}
}
