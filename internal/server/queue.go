package server

import (
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// jobClass is the scheduling class of a queued job. Interactive requests
// (the default) are dispatched ahead of sweep work; sweep is the class
// of batch items and of any request that sets "priority": "sweep".
type jobClass int

const (
	classInteractive jobClass = iota
	classSweep
	numClasses
)

var classNames = [numClasses]string{"interactive", "sweep"}

// className maps a request priority string to its class. normalize has
// already validated the string, so anything but "sweep" is interactive.
func classFor(priority string) jobClass {
	if priority == "sweep" {
		return classSweep
	}
	return classInteractive
}

// queuedJob is one waiting pool job with its admission timestamp, so
// dispatch can record per-class queue-wait latency.
type queuedJob struct {
	fn       func()
	class    jobClass
	enqueued time.Time
}

// classState is the per-class half of the priority queue: a FIFO of
// waiting jobs plus its counters. Everything is guarded by workerPool.mu,
// including inFlight — a dequeue moves a job from the FIFO into inFlight
// under one critical section, so depth (queued + in-flight) can never
// transiently read low between the two.
type classState struct {
	queued     []queuedJob
	capacity   int
	inFlight   int
	rejected   int64
	dispatched int64
	// expired counts dequeued jobs dropped without running because their
	// deadline passed (or their client vanished) while they waited —
	// doomed work the pool refused to burn a worker on.
	expired int64
	// wait observes queue-wait latency (ms) for every admission outcome:
	// dispatched jobs their true wait, expired jobs the wait that doomed
	// them, and rejected submissions a 0 — so the histogram count always
	// equals admissions + rejections and drops are visible in it.
	wait *histogram
}

// workerPool runs insertion jobs on a fixed set of goroutines fed by a
// two-class priority queue. Dispatch prefers the interactive class;
// every sweepEvery-th dispatch prefers sweep instead, so bulk batches
// make progress even under sustained interactive load (starvation
// guard). When a class's queue is full, trySubmit refuses immediately —
// the server answers 429 with Retry-After instead of queuing unboundedly
// and melting under load.
type workerPool struct {
	mu         sync.Mutex
	cond       *sync.Cond
	classes    [numClasses]classState
	closed     bool
	dispatches int64
	// panics counts jobs that panicked all the way to the worker loop —
	// the backstop recover. Server-submitted jobs recover (and answer a
	// structured 500) inside their own closure, so this stays zero unless
	// a raw pool submission escapes its own guard.
	panics int64
	// saturatedSince is the start of the current saturation episode: set
	// when a submit is refused with a full queue, cleared lazily once both
	// class queues have free slots again. The server's shed gate compares
	// its age against Config.ShedAfter.
	saturatedSince time.Time

	wg         sync.WaitGroup
	workers    int
	sweepEvery int
}

// newWorkerPool starts workers goroutines (<1 selects GOMAXPROCS) behind
// an interactive queue of depth waiting slots and a sweep queue of
// sweepDepth slots. Every sweepEvery-th dispatch prefers the sweep
// class (<=1 disables the preference and sweep runs only when the
// interactive queue is empty).
func newWorkerPool(workers, depth, sweepDepth, sweepEvery int) *workerPool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 0 {
		depth = 0
	}
	if sweepDepth < 0 {
		sweepDepth = 0
	}
	p := &workerPool{
		workers:    workers,
		sweepEvery: sweepEvery,
	}
	p.cond = sync.NewCond(&p.mu)
	p.classes[classInteractive].capacity = depth
	p.classes[classSweep].capacity = sweepDepth
	for c := range p.classes {
		p.classes[c].wait = &histogram{buckets: make([]int64, len(latencyBucketsMS)+1)}
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *workerPool) run() {
	defer p.wg.Done()
	for {
		job, ok := p.next()
		if !ok {
			return
		}
		p.runJob(job)
		p.finish(job.class)
	}
}

// runJob executes one dequeued job under a backstop recover: a panic
// kills the job, never the worker. The pool stays at full strength and
// keeps draining the queue.
func (p *workerPool) runJob(job queuedJob) {
	defer func() {
		if r := recover(); r != nil {
			p.mu.Lock()
			p.panics++
			p.mu.Unlock()
			log.Printf("worker: recovered panic in %s job: %v\n%s",
				classNames[job.class], r, debug.Stack())
		}
	}()
	job.fn()
}

// next blocks until a job is available and dequeues it, or reports false
// when the pool is closed and drained. The dequeue and the in-flight
// increment happen under one lock, so depth() is always exact.
func (p *workerPool) next() (queuedJob, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if n := len(p.classes[classInteractive].queued) + len(p.classes[classSweep].queued); n == 0 {
			if p.closed {
				return queuedJob{}, false
			}
			p.cond.Wait()
			continue
		}
		p.dispatches++
		class := classInteractive
		if p.sweepEvery > 1 && p.dispatches%int64(p.sweepEvery) == 0 {
			class = classSweep
		}
		if len(p.classes[class].queued) == 0 {
			class = numClasses - 1 - class
		}
		st := &p.classes[class]
		job := st.queued[0]
		st.queued[0] = queuedJob{} // release the closure for GC
		st.queued = st.queued[1:]
		st.inFlight++
		st.dispatched++
		st.wait.observe(float64(time.Since(job.enqueued)) / float64(time.Millisecond))
		return job, true
	}
}

func (p *workerPool) finish(class jobClass) {
	p.mu.Lock()
	p.classes[class].inFlight--
	p.mu.Unlock()
}

// trySubmit enqueues job under the given class, reporting false when
// that class's queue is full or the pool has begun closing (a job
// admitted after the workers exit would never run — refusing lets the
// caller answer the request instead of hanging on it).
func (p *workerPool) trySubmit(job func(), class jobClass) bool {
	p.mu.Lock()
	st := &p.classes[class]
	if p.closed || len(st.queued) >= st.capacity {
		st.rejected++
		st.wait.observe(0) // rejected work never waited, but is counted
		if !p.closed && p.saturatedSince.IsZero() {
			p.saturatedSince = time.Now()
		}
		p.mu.Unlock()
		return false
	}
	st.queued = append(st.queued, queuedJob{fn: job, class: class, enqueued: time.Now()})
	p.mu.Unlock()
	p.cond.Signal()
	return true
}

// saturatedFor reports how long the queues have been saturated: the age
// of the saturation mark set by the first refused submit, or zero once
// both class queues have free slots again (the episode ends as soon as
// backlog drains, even if no new submit arrives to observe it).
func (p *workerPool) saturatedFor() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.saturatedSince.IsZero() {
		return 0
	}
	full := false
	for c := range p.classes {
		if len(p.classes[c].queued) >= p.classes[c].capacity {
			full = true
			break
		}
	}
	if !full {
		p.saturatedSince = time.Time{}
		return 0
	}
	return time.Since(p.saturatedSince)
}

// noteExpired counts one dequeued job dropped without running: its
// deadline passed (or its client vanished) while it waited. The job's
// queue wait was already observed at dequeue.
func (p *workerPool) noteExpired(class jobClass) {
	p.mu.Lock()
	p.classes[class].expired++
	p.mu.Unlock()
}

// expiredTotal is the number of dequeued-but-dropped jobs across classes.
func (p *workerPool) expiredTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.classes[classInteractive].expired + p.classes[classSweep].expired
}

// workerPanics is the number of panics the backstop recover absorbed.
func (p *workerPool) workerPanics() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.panics
}

// close stops accepting work and blocks until every queued and in-flight
// job has finished (the drain step of graceful shutdown).
func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// depth is the number of queued plus in-flight jobs across both classes.
// Dequeues move jobs between the two counts under the pool lock, so the
// gauge is exact — it can never transiently read low.
func (p *workerPool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for c := range p.classes {
		n += len(p.classes[c].queued) + p.classes[c].inFlight
	}
	return n
}

// queuedLen is the number of waiting (not yet dispatched) jobs of one
// class. Tests use it to synchronize on enqueue.
func (p *workerPool) queuedLen(class jobClass) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.classes[class].queued)
}

// capacity is the number of interactive waiting slots (the historical
// single-queue figure; per-class capacities are in classSnapshot).
func (p *workerPool) capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.classes[classInteractive].capacity
}

// rejectedTotal is the number of refused submissions across both classes.
func (p *workerPool) rejectedTotal() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.classes[classInteractive].rejected + p.classes[classSweep].rejected
}

// classSnapshot assembles the per-class /metrics block: queue depth
// split into queued/in-flight, capacity, rejected and dispatched
// counters, and the queue-wait latency histogram.
func (p *workerPool) classSnapshot() map[string]any {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]any, numClasses)
	for c := range p.classes {
		st := &p.classes[c]
		out[classNames[c]] = map[string]any{
			"queued":     len(st.queued),
			"in_flight":  st.inFlight,
			"depth":      len(st.queued) + st.inFlight,
			"capacity":   st.capacity,
			"rejected":   st.rejected,
			"dispatched": st.dispatched,
			"expired":    st.expired,
			"wait_ms":    st.wait.snapshot(),
		}
	}
	return out
}
