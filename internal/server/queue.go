package server

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool runs insertion jobs on a fixed set of goroutines fed by a
// bounded queue. When the queue is full, trySubmit refuses immediately —
// the server answers 429 with Retry-After instead of queuing unboundedly
// and melting under load.
type workerPool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int

	inFlight atomic.Int64
	rejected atomic.Int64
}

// newWorkerPool starts workers goroutines (<1 selects GOMAXPROCS) behind
// a queue of depth waiting slots.
func newWorkerPool(workers, depth int) *workerPool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 0 {
		depth = 0
	}
	p := &workerPool{
		jobs:    make(chan func(), depth),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.inFlight.Add(1)
				job()
				p.inFlight.Add(-1)
			}
		}()
	}
	return p
}

// trySubmit enqueues job, reporting false when the queue is full.
// Must not be called after close.
func (p *workerPool) trySubmit(job func()) bool {
	select {
	case p.jobs <- job:
		return true
	default:
		p.rejected.Add(1)
		return false
	}
}

// close stops accepting work and blocks until every queued and in-flight
// job has finished (the drain step of graceful shutdown).
func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// depth is the number of queued plus in-flight jobs.
func (p *workerPool) depth() int { return len(p.jobs) + int(p.inFlight.Load()) }

// capacity is the number of waiting slots behind the workers.
func (p *workerPool) capacity() int { return cap(p.jobs) }
