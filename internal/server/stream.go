package server

// POST /v1/yield:stream — the chunked-JSON face of the adaptive
// Monte-Carlo sampler. The response is newline-delimited JSON: one
// "progress" event per committed sampling shard (running mean/sigma,
// quantile estimate, CI half-width), then a final "result" event
// carrying the same YieldResult the plain /v1/yield endpoint would
// return, or an "error" event when the run fails after streaming began.
// Failures before the first byte (bad request, overload, drain) answer
// a plain JSON error with the usual status instead.
//
// The endpoint bypasses the result cache and the coalescing registry on
// purpose: a stream's value is watching the run converge, and two
// clients joining one flight would see each other's progress cadence.
// Client disconnects propagate into the sampler through OnEstimate, so
// an abandoned stream stops burning its worker at the next shard
// boundary.

import (
	"encoding/json"
	"errors"
	"net/http"

	"vabuf"
)

// ProgressDTO is one adaptive Monte-Carlo progress event: the running
// estimate after an integral number of sampling shards.
type ProgressDTO struct {
	Samples       int     `json:"samples"`
	MeanPS        float64 `json:"mean_ps"`
	SigmaPS       float64 `json:"sigma_ps"`
	QuantileRAT   float64 `json:"quantile_rat_ps"`
	CIHalfWidthPS float64 `json:"ci_half_width_ps"`
	Converged     bool    `json:"converged"`
}

// StreamEvent is one line of the /v1/yield:stream response.
type StreamEvent struct {
	// Type is "progress", "result", or "error".
	Type     string       `json:"type"`
	Progress *ProgressDTO `json:"progress,omitempty"`
	Result   *YieldResult `json:"result,omitempty"`
	Error    string       `json:"error,omitempty"`
	// Status carries the HTTP status the failure would have had on the
	// plain endpoint (error events only — the stream itself is already
	// committed to 200 by then).
	Status int `json:"status,omitempty"`
}

func (s *Server) yieldStream(w http.ResponseWriter, r *http.Request) {
	// The stream bypasses instrument, so it enforces the propagated
	// deadline itself: spent budgets answer 504 before any work, live
	// ones bound the run through the request context.
	dr, cancel, doomed := withRequestDeadline(r)
	if doomed {
		s.met.recordDeadlineRejected("/v1/yield:stream")
		s.met.recordRequest("/v1/yield:stream", http.StatusGatewayTimeout)
		s.identityHeaders(w)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(errBody(errDeadlineSpent))
		return
	}
	defer cancel()
	r = dr

	status, errResult, run := s.prepareYieldStream(r)
	if run == nil {
		s.met.recordRequest("/v1/yield:stream", status)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		s.identityHeaders(w)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(errResult)
		return
	}

	// events is drained by this handler goroutine while the job runs on
	// a pool worker. Progress sends are non-blocking (a slow client skips
	// intermediate events instead of stalling the worker); the final
	// result/error event is sent blocking after the channel's progress
	// backlog, so it is never lost.
	events := make(chan StreamEvent, 16)
	outcome := make(chan streamOutcome, 1)
	go func() {
		outcome <- run(events)
		close(events)
	}()

	s.identityHeaders(w)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for ev := range events {
		if err := enc.Encode(ev); err != nil {
			break // client gone; the job stops via r.Context()
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	out := <-outcome
	s.met.recordRequest("/v1/yield:stream", out.status)
}

// streamOutcome is the terminal state of one streamed run, recorded in
// the request metrics (the wire already carried it as an event).
type streamOutcome struct {
	status int
}

// prepareYieldStream validates and admits a streaming request. On any
// pre-stream failure it returns (status, body, nil); otherwise the
// returned run executes the job, feeds events, and reports the terminal
// status.
func (s *Server) prepareYieldStream(r *http.Request) (int, any, func(chan<- StreamEvent) streamOutcome) {
	var req YieldRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &req); err != nil {
		return st, errBody(err), nil
	}
	if err := req.Normalize(); err != nil {
		return http.StatusBadRequest, errBody(err), nil
	}
	if req.MonteCarlo <= 0 || req.Algo == "nom" {
		return http.StatusBadRequest, errBody(
			errStreamNeedsMC), nil
	}
	p, err := s.prepare(&req.InsertRequest)
	if err != nil {
		return http.StatusBadRequest, errBody(err), nil
	}
	run := func(events chan<- StreamEvent) streamOutcome {
		var (
			out       *YieldResult
			runStatus int
			runErr    error
		)
		onEstimate := func(est vabuf.MCEstimate) bool {
			ev := StreamEvent{Type: "progress", Progress: &ProgressDTO{
				Samples:       est.Samples,
				MeanPS:        est.Mean,
				SigmaPS:       est.Sigma,
				QuantileRAT:   est.Quantile,
				CIHalfWidthPS: est.HalfWidth,
				Converged:     est.Converged,
			}}
			select {
			case events <- ev:
			default: // slow client: drop the intermediate event
			}
			return r.Context().Err() == nil
		}
		status, err := s.execute(r.Context(), "/v1/yield:stream", classFor(req.Priority), func() {
			out, runStatus, runErr = s.runPreparedYield(r.Context(), &req, p, onEstimate)
		})
		switch {
		case err != nil:
			events <- StreamEvent{Type: "error", Error: err.Error(), Status: status}
			return streamOutcome{status: status}
		case runErr != nil:
			events <- StreamEvent{Type: "error", Error: runErr.Error(), Status: runStatus}
			return streamOutcome{status: runStatus}
		default:
			events <- StreamEvent{Type: "result", Result: out}
			return streamOutcome{status: http.StatusOK}
		}
	}
	return 0, nil, run
}

// errStreamNeedsMC rejects streaming requests that would never emit a
// progress event.
var errStreamNeedsMC = errors.New(
	`/v1/yield:stream requires "monte_carlo" > 0 and a variation-aware algo (d2d or wid)`)
