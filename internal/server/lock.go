package server

// Snapshot path locking. Two vabufd instances pointed at the same
// -snapshot file would alternately rename their atomic rewrites over
// each other: no corruption of any single file read, but each boot
// would restore the *other* instance's cache and every drain would
// silently discard half the fleet's warm-up — a footgun the moment
// someone launches a local fleet with copy-pasted flags. LockSnapshot
// makes the collision a clear startup error instead.
//
// The lock is a pid-stamped file beside the snapshot (O_CREATE|O_EXCL,
// so creation is atomic on every filesystem the daemon runs on). A
// crashed instance leaves its lock behind; acquisition treats a lock
// whose pid no longer names a live process as stale and takes it over,
// so a kill -9 never requires manual cleanup.

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// LockSnapshot acquires the exclusive lock guarding a snapshot path and
// returns the release function (remove the lock file; call it after the
// final snapshot write on shutdown). It fails with a descriptive error
// when another live process holds the lock — the "two instances, one
// snapshot" misconfiguration — and silently takes over stale locks left
// by crashed processes.
func LockSnapshot(path string) (release func(), err error) {
	lockPath := path + ".lock"
	// Two attempts: the second runs only after a stale lock was removed,
	// and a loss of the re-create race means a live competitor — report it.
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(lockPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			if err := f.Close(); err != nil {
				os.Remove(lockPath)
				return nil, fmt.Errorf("writing snapshot lock %s: %w", lockPath, err)
			}
			return func() { os.Remove(lockPath) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("creating snapshot lock %s: %w", lockPath, err)
		}
		pid, readErr := readLockPID(lockPath)
		if readErr == nil && pidAlive(pid) {
			return nil, fmt.Errorf(
				"snapshot %s is locked by running process %d (lock file %s): "+
					"two vabufd instances must not share a snapshot path — "+
					"give each instance its own -snapshot file", path, pid, lockPath)
		}
		// Unreadable or stale lock: the owner is gone (crash, reboot);
		// remove it and retry the exclusive create once.
		if err := os.Remove(lockPath); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("removing stale snapshot lock %s: %w", lockPath, err)
		}
	}
	return nil, fmt.Errorf("snapshot lock %s: lost the takeover race to another instance", lockPath)
}

// readLockPID parses the pid stamped into a lock file.
func readLockPID(lockPath string) (int, error) {
	raw, err := os.ReadFile(lockPath)
	if err != nil {
		return 0, err
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil || pid <= 0 {
		return 0, fmt.Errorf("lock file %s holds no pid: %q", lockPath, raw)
	}
	return pid, nil
}

// pidAlive reports whether pid names a live process. Signal 0 probes
// existence without delivering anything; EPERM still means alive (owned
// by another user), only ESRCH means gone.
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = proc.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}
