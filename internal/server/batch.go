package server

// Batch endpoints of vabufd: POST /v1/insert:batch and
// POST /v1/yield:batch. A batch carries up to Config.MaxBatchItems
// requests plus an optional shared-defaults block; the server resolves
// trees and models through the LRU caches once per distinct key, fans
// the items out over the worker pool under the sweep class, and answers
// one aggregate response with per-item results or per-item errors.
// Partial failure never fails the batch: a panicking item answers a
// per-item 500 while its siblings run to completion, the overall status
// is 200 with an "errors" count, and only a batch where nothing could
// be enqueued answers 429 (pool full) or 503 (draining/shedding).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// batchBounds validates the item count of a batch request.
func (s *Server) batchBounds(n int) error {
	if n == 0 {
		return fmt.Errorf(`"items" must contain at least one request`)
	}
	if n > s.cfg.MaxBatchItems {
		return fmt.Errorf("batch of %d items exceeds the %d-item cap", n, s.cfg.MaxBatchItems)
	}
	return nil
}

// submitResult is the admission outcome of one batch item.
type submitResult int

const (
	submitOK submitResult = iota
	submitOverloaded
	submitShed
)

// submitBatchItem queues fn under the sweep class. The job runs under
// recover(): a panic calls onPanic with the structured error instead of
// killing the worker, and wg.Done fires only after recovery, so the
// aggregate never reads a half-written item. While the shed gate is
// active, sweep items are refused before touching the queue. At dequeue
// the job checks ctx — the batch request's deadline-aware context — and
// an item whose deadline passed (or whose client vanished) while it
// queued calls onDoomed instead of running, so doomed batch work never
// burns a worker.
func (s *Server) submitBatchItem(ctx context.Context, endpoint string, wg *sync.WaitGroup,
	fn func(), onPanic func(error), onDoomed func(error)) submitResult {
	if s.shedding() {
		s.met.recordShed(endpoint)
		return submitShed
	}
	job := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				onPanic(s.met.panicRecovered(endpoint, r))
			}
		}()
		if err := ctx.Err(); err != nil {
			s.pool.noteExpired(classSweep)
			s.met.recordDeadlineExpired(endpoint)
			onDoomed(err)
			return
		}
		if s.testHookJob != nil {
			s.testHookJob()
		}
		s.faultBeforeJob(endpoint)
		fn()
	}
	if !s.pool.trySubmit(job, classSweep) {
		return submitOverloaded
	}
	return submitOK
}

// doomedItemStatus maps a dropped queued item's context error to its
// per-item status: 504 when the deadline expired, 499 when the client
// went away.
func doomedItemStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return statusClientClosed
}

// batchStatus maps the enqueue outcome to the aggregate HTTP status: the
// batch fails as a whole only when nothing at all could be enqueued —
// 503 when the shed gate (or drain) refused the items, 429 when the
// pool was full.
func batchStatus(enqueued, overloaded, shed int) int {
	if enqueued == 0 && shed > 0 {
		return http.StatusServiceUnavailable
	}
	if enqueued == 0 && overloaded > 0 {
		return http.StatusTooManyRequests
	}
	return http.StatusOK
}

func (s *Server) insertBatch(r *http.Request) (int, any) {
	if s.isDraining() {
		return http.StatusServiceUnavailable, errBody(errDraining)
	}
	var breq BatchInsertRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &breq); err != nil {
		return st, errBody(err)
	}
	if err := s.batchBounds(len(breq.Items)); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	out := BatchInsertResult{Items: make([]BatchItemResult, len(breq.Items))}
	var wg sync.WaitGroup
	enqueued, overloaded, shed := 0, 0, 0
	// Fingerprint-level dedupe: identical items run once, duplicates
	// adopt the leader's result after the pool drains; items whose
	// result is already cached never reach the queue at all.
	leaders := make(map[string]int)  // fingerprint -> leader item index
	dupOf := make(map[int]int)       // duplicate item index -> leader index
	leaderFP := make(map[int]string) // enqueued leader index -> fingerprint
	for i := range breq.Items {
		item := &out.Items[i]
		item.Index = i
		req := breq.Items[i]
		req.ApplyDefaults(breq.Defaults)
		if err := req.Normalize(); err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		fp := req.Fingerprint(s.cfg.Epoch)
		if v, ok := s.resultGet(fp); ok {
			item.Status, item.Result = http.StatusOK, v.(*InsertResult)
			continue
		}
		if li, ok := leaders[fp]; ok {
			dupOf[i] = li
			s.met.recordCoalesced("/v1/insert:batch")
			continue
		}
		leaders[fp] = i
		// prepare runs on the handler goroutine: the LRU caches build
		// each distinct tree/model once, and identical later items hit.
		p, err := s.prepare(&req)
		if err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		leaderFP[i] = fp
		wg.Add(1)
		res := s.submitBatchItem(r.Context(), "/v1/insert:batch", &wg, func() {
			res, st, err := s.runPrepared(r.Context(), &req, p)
			if err != nil {
				item.Status, item.Error = st, err.Error()
				return
			}
			item.Status, item.Result = http.StatusOK, res
		}, func(perr error) {
			item.Status, item.Error = http.StatusInternalServerError, perr.Error()
		}, func(derr error) {
			item.Status, item.Error = doomedItemStatus(derr), derr.Error()
		})
		if res != submitOK {
			wg.Done()
			switch res {
			case submitOverloaded:
				overloaded++
				item.Status, item.Error = http.StatusTooManyRequests, errOverloaded.Error()
			case submitShed:
				shed++
				item.Status, item.Error = http.StatusServiceUnavailable, errShedding.Error()
			}
			continue
		}
		enqueued++
	}
	// Every job owns its distinct Items element, so waiting for the pool
	// is the only synchronization the aggregate needs. Abandoned clients
	// cancel the runs through r.Context(); the jobs still finish fast.
	wg.Wait()
	for i, fp := range leaderFP {
		if out.Items[i].Status == http.StatusOK {
			s.resultStore(fp, out.Items[i].Result)
		}
	}
	for i, li := range dupOf {
		out.Items[i].Status = out.Items[li].Status
		out.Items[i].Result = out.Items[li].Result
		out.Items[i].Error = out.Items[li].Error
	}
	for i := range out.Items {
		if out.Items[i].Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Errors++
		}
	}
	return batchStatus(enqueued, overloaded, shed), out
}

func (s *Server) yieldBatch(r *http.Request) (int, any) {
	if s.isDraining() {
		return http.StatusServiceUnavailable, errBody(errDraining)
	}
	var breq BatchYieldRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &breq); err != nil {
		return st, errBody(err)
	}
	if err := s.batchBounds(len(breq.Items)); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	out := BatchYieldResult{Items: make([]BatchYieldItemResult, len(breq.Items))}
	var wg sync.WaitGroup
	enqueued, overloaded, shed := 0, 0, 0
	leaders := make(map[string]int)  // fingerprint -> leader item index
	dupOf := make(map[int]int)       // duplicate item index -> leader index
	leaderFP := make(map[int]string) // enqueued leader index -> fingerprint
	for i := range breq.Items {
		item := &out.Items[i]
		item.Index = i
		req := breq.Items[i]
		req.ApplyDefaults(breq.Defaults)
		if err := req.Normalize(); err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		fp := req.Fingerprint(s.cfg.Epoch)
		if v, ok := s.resultGet(fp); ok {
			item.Status, item.Result = http.StatusOK, v.(*YieldResult)
			continue
		}
		if li, ok := leaders[fp]; ok {
			dupOf[i] = li
			s.met.recordCoalesced("/v1/yield:batch")
			continue
		}
		leaders[fp] = i
		p, err := s.prepare(&req.InsertRequest)
		if err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		leaderFP[i] = fp
		wg.Add(1)
		res := s.submitBatchItem(r.Context(), "/v1/yield:batch", &wg, func() {
			res, st, err := s.runPreparedYield(r.Context(), &req, p, nil)
			if err != nil {
				item.Status, item.Error = st, err.Error()
				return
			}
			item.Status, item.Result = http.StatusOK, res
		}, func(perr error) {
			item.Status, item.Error = http.StatusInternalServerError, perr.Error()
		}, func(derr error) {
			item.Status, item.Error = doomedItemStatus(derr), derr.Error()
		})
		if res != submitOK {
			wg.Done()
			switch res {
			case submitOverloaded:
				overloaded++
				item.Status, item.Error = http.StatusTooManyRequests, errOverloaded.Error()
			case submitShed:
				shed++
				item.Status, item.Error = http.StatusServiceUnavailable, errShedding.Error()
			}
			continue
		}
		enqueued++
	}
	wg.Wait()
	for i, fp := range leaderFP {
		if out.Items[i].Status == http.StatusOK {
			s.resultStore(fp, out.Items[i].Result)
		}
	}
	for i, li := range dupOf {
		out.Items[i].Status = out.Items[li].Status
		out.Items[i].Result = out.Items[li].Result
		out.Items[i].Error = out.Items[li].Error
	}
	for i := range out.Items {
		if out.Items[i].Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Errors++
		}
	}
	return batchStatus(enqueued, overloaded, shed), out
}
