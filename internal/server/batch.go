package server

// Batch endpoints of vabufd: POST /v1/insert:batch and
// POST /v1/yield:batch. A batch carries up to Config.MaxBatchItems
// requests plus an optional shared-defaults block; the server resolves
// trees and models through the LRU caches once per distinct key, fans
// the items out over the worker pool under the sweep class, and answers
// one aggregate response with per-item results or per-item errors.
// Partial failure never fails the batch: the overall status is 200 with
// an "errors" count, and 429 only when nothing could be enqueued.

import (
	"fmt"
	"net/http"
	"sync"
)

// batchBounds validates the item count of a batch request.
func (s *Server) batchBounds(n int) error {
	if n == 0 {
		return fmt.Errorf(`"items" must contain at least one request`)
	}
	if n > s.cfg.MaxBatchItems {
		return fmt.Errorf("batch of %d items exceeds the %d-item cap", n, s.cfg.MaxBatchItems)
	}
	return nil
}

// submitBatchItem queues fn under the sweep class, reporting false on
// pool overload. The test hook runs at job start, exactly as on the
// single-request path.
func (s *Server) submitBatchItem(fn func()) bool {
	return s.pool.trySubmit(func() {
		if s.testHookJob != nil {
			s.testHookJob()
		}
		fn()
	}, classSweep)
}

// batchStatus maps the enqueue outcome to the aggregate HTTP status:
// 429 only when the pool refused every item that made it past
// validation and nothing ran at all.
func batchStatus(enqueued, overloaded int) int {
	if enqueued == 0 && overloaded > 0 {
		return http.StatusTooManyRequests
	}
	return http.StatusOK
}

func (s *Server) insertBatch(r *http.Request) (int, any) {
	var breq BatchInsertRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &breq); err != nil {
		return st, errBody(err)
	}
	if err := s.batchBounds(len(breq.Items)); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	out := BatchInsertResult{Items: make([]BatchItemResult, len(breq.Items))}
	var wg sync.WaitGroup
	enqueued, overloaded := 0, 0
	for i := range breq.Items {
		item := &out.Items[i]
		item.Index = i
		req := breq.Items[i]
		req.applyDefaults(breq.Defaults)
		if err := req.normalize(); err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		// prepare runs on the handler goroutine: the LRU caches build
		// each distinct tree/model once, and identical later items hit.
		p, err := s.prepare(&req)
		if err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		wg.Add(1)
		ok := s.submitBatchItem(func() {
			defer wg.Done()
			res, st, err := s.runPrepared(r.Context(), &req, p)
			if err != nil {
				item.Status, item.Error = st, err.Error()
				return
			}
			item.Status, item.Result = http.StatusOK, res
		})
		if !ok {
			wg.Done()
			overloaded++
			item.Status, item.Error = http.StatusTooManyRequests, errOverloaded.Error()
			continue
		}
		enqueued++
	}
	// Every job owns its distinct Items element, so waiting for the pool
	// is the only synchronization the aggregate needs. Abandoned clients
	// cancel the runs through r.Context(); the jobs still finish fast.
	wg.Wait()
	for i := range out.Items {
		if out.Items[i].Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Errors++
		}
	}
	return batchStatus(enqueued, overloaded), out
}

func (s *Server) yieldBatch(r *http.Request) (int, any) {
	var breq BatchYieldRequest
	if st, err := decodeJSON(r, s.cfg.MaxRequestBytes, &breq); err != nil {
		return st, errBody(err)
	}
	if err := s.batchBounds(len(breq.Items)); err != nil {
		return http.StatusBadRequest, errBody(err)
	}
	out := BatchYieldResult{Items: make([]BatchYieldItemResult, len(breq.Items))}
	var wg sync.WaitGroup
	enqueued, overloaded := 0, 0
	for i := range breq.Items {
		item := &out.Items[i]
		item.Index = i
		req := breq.Items[i]
		req.applyDefaults(breq.Defaults)
		if err := req.normalize(); err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		p, err := s.prepare(&req.InsertRequest)
		if err != nil {
			item.Status, item.Error = http.StatusBadRequest, err.Error()
			continue
		}
		wg.Add(1)
		ok := s.submitBatchItem(func() {
			defer wg.Done()
			res, st, err := s.runPreparedYield(r.Context(), &req, p)
			if err != nil {
				item.Status, item.Error = st, err.Error()
				return
			}
			item.Status, item.Result = http.StatusOK, res
		})
		if !ok {
			wg.Done()
			overloaded++
			item.Status, item.Error = http.StatusTooManyRequests, errOverloaded.Error()
			continue
		}
		enqueued++
	}
	wg.Wait()
	for i := range out.Items {
		if out.Items[i].Status == http.StatusOK {
			out.Succeeded++
		} else {
			out.Errors++
		}
	}
	return batchStatus(enqueued, overloaded), out
}
