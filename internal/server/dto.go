// Request/response DTOs of the vabufd HTTP/JSON API. They live in their
// own file so the bufins CLI can emit the exact same machine-readable
// result shape (-json) that the service returns from POST /v1/insert.
package server

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"vabuf"
)

// InsertRequest is the body of POST /v1/insert. Exactly one of Bench or
// Tree selects the routing tree; the remaining fields mirror the bufins
// CLI flags. Zero values take the CLI defaults.
type InsertRequest struct {
	// Bench names a built-in Table 1 benchmark (see GET /v1/benchmarks).
	Bench string `json:"bench,omitempty"`
	// Tree is an inline routing tree in the rctree text format.
	Tree string `json:"tree,omitempty"`
	// Algo is nom (deterministic van Ginneken), d2d (random + inter-die
	// variation), or wid (all classes, the paper's algorithm). Default wid.
	Algo string `json:"algo,omitempty"`
	// Rule is the pruning rule for variation-aware runs: 2p (default) or 4p.
	Rule string `json:"rule,omitempty"`
	// Hull selects the buffering kernel: "auto" (default; convex-hull
	// kernel wherever it is certified bit-identical), "on", or "off".
	// Results are identical for every value — only candidate throughput
	// changes — so the field does not participate in result fingerprints.
	Hull string `json:"hull,omitempty"`
	// Pbar sets the 2P thresholds pbar_L = pbar_T. Default 0.5.
	Pbar float64 `json:"pbar,omitempty"`
	// Budget is the per-class variation budget. Default 0.15.
	Budget float64 `json:"budget,omitempty"`
	// Heterogeneous selects heterogeneous spatial variation. Default true.
	Heterogeneous *bool `json:"heterogeneous,omitempty"`
	// Quantile is the yield quantile for selection and reporting.
	// Default 0.05 (the 95%-yield RAT).
	Quantile float64 `json:"quantile,omitempty"`
	// MaxCandidates caps the candidate list length (0 = unlimited);
	// exceeding it fails the request with 413.
	MaxCandidates int `json:"max_candidates,omitempty"`
	// TimeoutMS is the wall-clock limit of the insertion run in
	// milliseconds (0 = the server default); exceeding it fails the
	// request with 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Parallelism bounds the DP worker goroutines of this run (0 =
	// GOMAXPROCS, 1 = serial). Results are identical for every value. The
	// yield endpoint also fans its Monte-Carlo validation out across this
	// many workers when > 1 (sharded deterministic streams).
	Parallelism int `json:"parallelism,omitempty"`
	// WireSizing enables simultaneous wire sizing with the default
	// three-width routing library.
	WireSizing bool `json:"wire_sizing,omitempty"`
	// Inverters adds the inverter library (polarity-aware insertion).
	Inverters bool `json:"inverters,omitempty"`
	// IncludeAssignment adds the full buffer assignment to the response.
	IncludeAssignment bool `json:"include_assignment,omitempty"`
	// Priority selects the scheduling class: "interactive" (default) or
	// "sweep". Sweep jobs yield to interactive ones in the worker-pool
	// queue; batch items always run as sweep regardless of this field.
	Priority string `json:"priority,omitempty"`
}

// YieldRequest is the body of POST /v1/yield: an insertion run followed
// by yield analysis of the buffered tree.
type YieldRequest struct {
	InsertRequest
	// MonteCarlo, when positive, additionally validates the canonical
	// report with that many Monte-Carlo samples (capped at 1e6).
	MonteCarlo int `json:"monte_carlo,omitempty"`
	// Seed seeds the Monte-Carlo sampler (default 1).
	Seed int64 `json:"seed,omitempty"`
	// MCTol, when positive, selects the adaptive (early-stopping)
	// sampler: sampling proceeds in deterministic shard-sized chunks and
	// stops once the CI half-width of the yield quantile falls within
	// MCTol (relative), or at the MonteCarlo cap. The samples are a
	// prefix of the sharded (parallelism > 1) stream for the same seed.
	MCTol float64 `json:"mc_tol,omitempty"`
}

// BatchInsertRequest is the body of POST /v1/insert:batch: up to
// Config.MaxBatchItems insertion requests answered as one aggregate
// response. Defaults, when present, fills the zero-valued fields of
// every item before validation (shared sweep parameters stated once).
type BatchInsertRequest struct {
	Defaults *InsertRequest  `json:"defaults,omitempty"`
	Items    []InsertRequest `json:"items"`
}

// BatchYieldRequest is the body of POST /v1/yield:batch.
type BatchYieldRequest struct {
	Defaults *YieldRequest  `json:"defaults,omitempty"`
	Items    []YieldRequest `json:"items"`
}

// BatchItemResult is the outcome of one item of a batch insert: either
// Result (Status 200) or Error with the status the item would have
// received as a standalone request. A failed item never fails the batch.
type BatchItemResult struct {
	Index  int           `json:"index"`
	Status int           `json:"status"`
	Result *InsertResult `json:"result,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// BatchYieldItemResult is the outcome of one item of a batch yield run.
type BatchYieldItemResult struct {
	Index  int          `json:"index"`
	Status int          `json:"status"`
	Result *YieldResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// BatchInsertResult is the response of POST /v1/insert:batch. The
// overall HTTP status is 200 even with per-item errors; only a batch
// where nothing could be enqueued (pool overload) answers 429.
type BatchInsertResult struct {
	Items     []BatchItemResult `json:"items"`
	Succeeded int               `json:"succeeded"`
	Errors    int               `json:"errors"`
}

// BatchYieldResult is the response of POST /v1/yield:batch.
type BatchYieldResult struct {
	Items     []BatchYieldItemResult `json:"items"`
	Succeeded int                    `json:"succeeded"`
	Errors    int                    `json:"errors"`
}

// StatsDTO mirrors core.Stats: the candidate-pruning counters behind the
// paper's Table 2 and Figure 5.
type StatsDTO struct {
	Generated int64   `json:"generated"`
	Pruned    int64   `json:"pruned"`
	PeakList  int     `json:"peak_list"`
	Merges    int64   `json:"merges"`
	Nodes     int     `json:"nodes"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Workers is the number of DP goroutines that participated;
	// ArenaCandidates/ArenaTerms/ArenaBytes describe the run's slab
	// allocations and ArenaUsedBytes the slab bytes actually occupied at
	// release (see core.Stats).
	Workers         int   `json:"workers"`
	ArenaCandidates int64 `json:"arena_candidates"`
	ArenaTerms      int64 `json:"arena_terms"`
	ArenaBytes      int64 `json:"arena_bytes"`
	ArenaUsedBytes  int64 `json:"arena_used_bytes"`
	// Subtree DP-frontier cache activity of this run (zero without a
	// cache wired into Options.SubtreeCache).
	SubtreeHits   int64 `json:"subtree_hits"`
	SubtreeMisses int64 `json:"subtree_misses"`
	SubtreeStores int64 `json:"subtree_stores"`
	// Convex-hull buffering kernel activity: sites handled by the kernel,
	// buffer candidates skipped before generation, sites that fell back to
	// the exact kernel, and the peak per-site hull size (zero when the
	// kernel is off or inapplicable, e.g. rule 4p).
	HullSites     int64 `json:"hull_sites,omitempty"`
	HullSkipped   int64 `json:"hull_skipped,omitempty"`
	HullFallbacks int64 `json:"hull_fallbacks,omitempty"`
	HullPeak      int   `json:"hull_peak,omitempty"`
}

// AssignmentEntry is one inserted buffer in an InsertResult.
type AssignmentEntry struct {
	Node   int     `json:"node"`
	Kind   string  `json:"kind"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Buffer string  `json:"buffer"`
}

// InsertResult is the response of POST /v1/insert and the bufins -json
// output: tree shape, the root RAT distribution, and run instrumentation.
type InsertResult struct {
	Bench           string            `json:"bench,omitempty"`
	Algo            string            `json:"algo"`
	Rule            string            `json:"rule"`
	Pbar            float64           `json:"pbar"`
	Quantile        float64           `json:"quantile"`
	Sinks           int               `json:"sinks"`
	BufferPositions int               `json:"buffer_positions"`
	WireLengthUM    float64           `json:"wire_length_um"`
	MeanPS          float64           `json:"mean_ps"`
	SigmaPS         float64           `json:"sigma_ps"`
	ObjectivePS     float64           `json:"objective_ps"`
	NumBuffers      int               `json:"num_buffers"`
	RootCandidates  int               `json:"root_candidates"`
	Stats           StatsDTO          `json:"stats"`
	ElapsedMS       float64           `json:"elapsed_ms"`
	TreeCacheHit    bool              `json:"tree_cache_hit,omitempty"`
	ModelCacheHit   bool              `json:"model_cache_hit,omitempty"`
	WireUsage       map[string]int    `json:"wire_usage,omitempty"`
	Assignment      []AssignmentEntry `json:"assignment,omitempty"`
}

// MonteCarloDTO summarizes a Monte-Carlo validation run. The CI fields
// are present only on adaptive (mc_tol > 0) and streamed runs.
type MonteCarloDTO struct {
	Samples     int     `json:"samples"`
	MeanPS      float64 `json:"mean_ps"`
	SigmaPS     float64 `json:"sigma_ps"`
	QuantileRAT float64 `json:"quantile_rat_ps"`
	// CIHalfWidthPS is the half-width of the distribution-free 95% CI of
	// the quantile estimate; Converged reports whether the adaptive
	// stopping rule fired before the sample cap.
	CIHalfWidthPS float64 `json:"ci_half_width_ps,omitempty"`
	Converged     bool    `json:"converged,omitempty"`
}

// YieldResult is the response of POST /v1/yield.
type YieldResult struct {
	Insert InsertResult `json:"insert"`
	// MeanPS/SigmaPS/YieldRATPS describe the canonical root RAT of the
	// buffered tree re-propagated under the model.
	MeanPS     float64        `json:"mean_ps"`
	SigmaPS    float64        `json:"sigma_ps"`
	YieldRATPS float64        `json:"yield_rat_ps"`
	MonteCarlo *MonteCarloDTO `json:"monte_carlo,omitempty"`
}

// BenchmarksResult is the response of GET /v1/benchmarks.
type BenchmarksResult struct {
	Benchmarks []string `json:"benchmarks"`
}

// ErrorResult is the body of every non-2xx response.
type ErrorResult struct {
	Error string `json:"error"`
}

// CheckUnitInterval returns an error unless 0 < v < 1. Shared by the
// server request validation and the bufins flag validation.
func CheckUnitInterval(name string, v float64) error {
	if !(v > 0 && v < 1) {
		return fmt.Errorf("%s must be inside (0, 1), got %g", name, v)
	}
	return nil
}

// Normalize fills defaults and validates the request, returning an error
// suitable for a 400 response. It is exported for the vabufr router,
// which normalizes a copy of each request to compute its routing
// fingerprint exactly as the owning backend will.
func (r *InsertRequest) Normalize() error {
	switch {
	case r.Bench != "" && r.Tree != "":
		return fmt.Errorf(`give either "bench" or "tree", not both`)
	case r.Bench == "" && r.Tree == "":
		return fmt.Errorf(`one of "bench" or "tree" is required`)
	}
	if r.Algo == "" {
		r.Algo = "wid"
	}
	switch r.Algo {
	case "nom", "d2d", "wid":
	default:
		return fmt.Errorf("unknown algo %q (want nom, d2d, or wid)", r.Algo)
	}
	if r.Rule == "" {
		r.Rule = "2p"
	}
	switch strings.ToLower(r.Rule) {
	case "2p", "4p":
		r.Rule = strings.ToLower(r.Rule)
	default:
		return fmt.Errorf("unknown rule %q (want 2p or 4p)", r.Rule)
	}
	if _, err := vabuf.ParseHullMode(r.Hull); err != nil {
		return err
	}
	if r.Pbar == 0 {
		r.Pbar = 0.5
	}
	if err := CheckUnitInterval("pbar", r.Pbar); err != nil {
		return err
	}
	if r.Budget == 0 {
		r.Budget = 0.15
	}
	if r.Budget < 0 || r.Budget > 1 {
		return fmt.Errorf("budget must be inside [0, 1], got %g", r.Budget)
	}
	if r.Quantile == 0 {
		r.Quantile = 0.05
	}
	if err := CheckUnitInterval("quantile", r.Quantile); err != nil {
		return err
	}
	if r.MaxCandidates < 0 {
		return fmt.Errorf("max_candidates must be >= 0, got %d", r.MaxCandidates)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", r.TimeoutMS)
	}
	if r.Parallelism < 0 {
		return fmt.Errorf("parallelism must be >= 0, got %d", r.Parallelism)
	}
	switch r.Priority {
	case "", "interactive", "sweep":
	default:
		return fmt.Errorf("unknown priority %q (want interactive or sweep)", r.Priority)
	}
	return nil
}

// Normalize fills defaults and validates the yield request.
func (r *YieldRequest) Normalize() error {
	if err := r.InsertRequest.Normalize(); err != nil {
		return err
	}
	if r.MonteCarlo < 0 || r.MonteCarlo > 1_000_000 {
		return fmt.Errorf("monte_carlo must be in [0, 1000000], got %d", r.MonteCarlo)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.MCTol < 0 || r.MCTol >= 1 {
		return fmt.Errorf("mc_tol must be in [0, 1), got %g", r.MCTol)
	}
	if r.MCTol > 0 && r.MonteCarlo == 0 {
		return fmt.Errorf("mc_tol requires monte_carlo > 0 (the sample cap)")
	}
	return nil
}

// ApplyDefaults fills the zero-valued fields of r from d — the
// shared-defaults block of a batch request. An item that states a field
// always wins; booleans merge only from false, so a default can enable
// but never disable an option per item. Exported for the vabufr router,
// which resolves defaults before splitting a batch across owners.
func (r *InsertRequest) ApplyDefaults(d *InsertRequest) {
	if d == nil {
		return
	}
	if r.Bench == "" && r.Tree == "" {
		r.Bench, r.Tree = d.Bench, d.Tree
	}
	if r.Algo == "" {
		r.Algo = d.Algo
	}
	if r.Rule == "" {
		r.Rule = d.Rule
	}
	if r.Hull == "" {
		r.Hull = d.Hull
	}
	if r.Pbar == 0 {
		r.Pbar = d.Pbar
	}
	if r.Budget == 0 {
		r.Budget = d.Budget
	}
	if r.Heterogeneous == nil {
		r.Heterogeneous = d.Heterogeneous
	}
	if r.Quantile == 0 {
		r.Quantile = d.Quantile
	}
	if r.MaxCandidates == 0 {
		r.MaxCandidates = d.MaxCandidates
	}
	if r.TimeoutMS == 0 {
		r.TimeoutMS = d.TimeoutMS
	}
	if r.Parallelism == 0 {
		r.Parallelism = d.Parallelism
	}
	if !r.WireSizing {
		r.WireSizing = d.WireSizing
	}
	if !r.Inverters {
		r.Inverters = d.Inverters
	}
	if !r.IncludeAssignment {
		r.IncludeAssignment = d.IncludeAssignment
	}
	if r.Priority == "" {
		r.Priority = d.Priority
	}
}

// ApplyDefaults fills the zero-valued fields of r from d.
func (r *YieldRequest) ApplyDefaults(d *YieldRequest) {
	if d == nil {
		return
	}
	r.InsertRequest.ApplyDefaults(&d.InsertRequest)
	if r.MonteCarlo == 0 {
		r.MonteCarlo = d.MonteCarlo
	}
	if r.Seed == 0 {
		r.Seed = d.Seed
	}
	if r.MCTol == 0 {
		r.MCTol = d.MCTol
	}
}

// heterogeneous reports the effective Heterogeneous setting (default true).
func (r *InsertRequest) heterogeneous() bool {
	if r.Heterogeneous == nil {
		return true
	}
	return *r.Heterogeneous
}

// NewInsertResult assembles the result DTO from an insertion run. The
// bufins CLI and the /v1/insert handler both use it, so the two output
// shapes can never drift apart.
func NewInsertResult(tree *vabuf.Tree, lib vabuf.Library, algo string,
	opts vabuf.Options, res *vabuf.Result, elapsed time.Duration,
	includeAssignment bool) InsertResult {
	out := InsertResult{
		Algo:            algo,
		Rule:            opts.Rule.String(),
		Pbar:            opts.PbarL,
		Quantile:        opts.SelectQuantile,
		Sinks:           tree.NumSinks(),
		BufferPositions: tree.NumBufferPositions(),
		WireLengthUM:    tree.TotalWireLength(),
		MeanPS:          res.Mean,
		SigmaPS:         res.Sigma,
		ObjectivePS:     res.Objective,
		NumBuffers:      res.NumBuffers,
		RootCandidates:  res.RootCandidates,
		Stats: StatsDTO{
			Generated:       res.Stats.Generated,
			Pruned:          res.Stats.Pruned,
			PeakList:        res.Stats.PeakList,
			Merges:          res.Stats.Merges,
			Nodes:           res.Stats.Nodes,
			ElapsedMS:       float64(res.Stats.Elapsed) / float64(time.Millisecond),
			Workers:         res.Stats.Workers,
			ArenaCandidates: res.Stats.ArenaCandidates,
			ArenaTerms:      res.Stats.ArenaTerms,
			ArenaBytes:      res.Stats.ArenaBytes,
			ArenaUsedBytes:  res.Stats.ArenaUsedBytes,
			SubtreeHits:     res.Stats.SubtreeHits,
			SubtreeMisses:   res.Stats.SubtreeMisses,
			SubtreeStores:   res.Stats.SubtreeStores,
			HullSites:       res.Stats.HullSites,
			HullSkipped:     res.Stats.HullSkipped,
			HullFallbacks:   res.Stats.HullFallbacks,
			HullPeak:        res.Stats.HullPeak,
		},
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if len(res.WireAssignment) > 0 {
		counts := make(map[int]int)
		for _, wi := range res.WireAssignment {
			counts[wi]++
		}
		out.WireUsage = make(map[string]int, len(opts.WireLibrary))
		for wi, wc := range opts.WireLibrary {
			out.WireUsage[wc.Name] = counts[wi]
		}
	}
	if includeAssignment {
		out.Assignment = make([]AssignmentEntry, 0, len(res.Assignment))
		for _, id := range sortedNodeIDs(res.Assignment) {
			n := tree.Node(id)
			out.Assignment = append(out.Assignment, AssignmentEntry{
				Node:   int(id),
				Kind:   n.Kind.String(),
				X:      n.Loc.X,
				Y:      n.Loc.Y,
				Buffer: lib[res.Assignment[id]].Name,
			})
		}
	}
	return out
}

func sortedNodeIDs(m map[vabuf.NodeID]int) []vabuf.NodeID {
	ids := make([]vabuf.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}
