package server

// Cache-epoch tests. The epoch is a version string mixed into result
// fingerprints (but not into the router's empty-epoch routing keys):
// bumping it — after a buffer-library or variation-model change —
// invalidates every cached result fleet-wide, including results
// persisted in snapshots, without moving any ring partition.

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
)

func TestEpochChangesFingerprintButNotRoutingKey(t *testing.T) {
	mk := func() InsertRequest {
		r := InsertRequest{Tree: smallTreeText(t), Algo: "wid"}
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	if a.Fingerprint("v1") == b.Fingerprint("v2") {
		t.Error("epoch bump did not change the cache fingerprint")
	}
	if a.Fingerprint("") != b.Fingerprint("") {
		t.Error("empty-epoch routing key is not stable across calls")
	}
	if a.Fingerprint("v1") != b.Fingerprint("v1") {
		t.Error("same-epoch fingerprints of identical requests differ")
	}
}

// TestEpochBumpInvalidatesWarmSnapshot is the fleet-wide invalidation
// path: a warm result cache snapshotted under epoch v1 must not serve
// hits after a restart with -epoch v2 — the restored entries are keyed
// by v1 fingerprints, which no v2 lookup ever computes.
func TestEpochBumpInvalidatesWarmSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "epoch.snapshot")
	req := InsertRequest{Tree: smallTreeText(t), Algo: "wid"}

	// Warm under v1 and verify the repeat hits, then snapshot.
	s1, ts1 := newTestServer(t, Config{Workers: 2, Epoch: "v1"})
	for i := 0; i < 2; i++ {
		if resp, raw := postJSON(t, ts1.URL+"/v1/insert", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up insert %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	var met map[string]any
	getJSON(t, ts1.URL+"/metrics", &met)
	result := met["caches"].(map[string]any)["result"].(map[string]any)
	if hits := result["hits"].(float64); hits < 1 {
		t.Fatalf("v1 repeat missed its own warm cache (hits = %g)", hits)
	}
	if err := s1.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}

	// Same epoch restore: the warm hit survives the restart (control).
	sSame, tsSame := newTestServer(t, Config{Workers: 2, Epoch: "v1"})
	if _, err := sSame.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if resp, raw := postJSON(t, tsSame.URL+"/v1/insert", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("same-epoch insert: status %d: %s", resp.StatusCode, raw)
	}
	getJSON(t, tsSame.URL+"/metrics", &met)
	result = met["caches"].(map[string]any)["result"].(map[string]any)
	if hits := result["hits"].(float64); hits < 1 {
		t.Errorf("same-epoch restore lost the warm hit (hits = %g)", hits)
	}

	// Bumped epoch restore: the identical request must recompute.
	s2, ts2 := newTestServer(t, Config{Workers: 2, Epoch: "v2"})
	if _, err := s2.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if resp, raw := postJSON(t, ts2.URL+"/v1/insert", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-bump insert: status %d: %s", resp.StatusCode, raw)
	}
	getJSON(t, ts2.URL+"/metrics", &met)
	result = met["caches"].(map[string]any)["result"].(map[string]any)
	if hits := result["hits"].(float64); hits != 0 {
		t.Errorf("epoch-bumped instance served %g hits from a stale snapshot", hits)
	}
}

// TestCacheFillEpochGuard: /v1/cache/fill refuses a fill computed under
// another epoch with 409 and admits a matching one, which then serves
// the repeat of the original request from cache.
func TestCacheFillEpochGuard(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Epoch: "v2"})
	req := InsertRequest{Tree: smallTreeText(t), Algo: "nom"}

	// Compute a legitimate result to replay (any instance's answer works;
	// here the same instance plays the "serving sibling").
	resp, raw := postJSON(t, ts.URL+"/v1/insert", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed insert: status %d: %s", resp.StatusCode, raw)
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	// Stale epoch: refused, nothing stored.
	fill := CacheFillRequest{Kind: "insert", Epoch: "v1", Request: reqJSON, Result: raw}
	if resp, body := postJSON(t, ts.URL+"/v1/cache/fill", fill); resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch fill: status %d, want 409: %s", resp.StatusCode, body)
	}

	// Matching epoch: stored under the instance's own fingerprint.
	fill.Epoch = "v2"
	respOK, body := postJSON(t, ts.URL+"/v1/cache/fill", fill)
	if respOK.StatusCode != http.StatusOK {
		t.Fatalf("matching-epoch fill: status %d: %s", respOK.StatusCode, body)
	}
	var out CacheFillResult
	if err := json.Unmarshal(body, &out); err != nil || !out.Stored {
		t.Fatalf("fill not stored: %s", body)
	}
	var norm InsertRequest
	if err := json.Unmarshal(reqJSON, &norm); err != nil {
		t.Fatal(err)
	}
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	if want := norm.Fingerprint("v2"); out.Fingerprint != want {
		t.Errorf("fill stored under %q, want the instance's own fingerprint %q", out.Fingerprint, want)
	}

	// Unknown kind is rejected before touching the cache.
	bad := CacheFillRequest{Kind: "mystery", Epoch: "v2", Request: reqJSON, Result: raw}
	if resp, body := postJSON(t, ts.URL+"/v1/cache/fill", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-kind fill: status %d, want 400: %s", resp.StatusCode, body)
	}

	var met map[string]any
	getJSON(t, ts.URL+"/metrics", &met)
	pf := met["peer_fills"].(map[string]any)
	if acc := pf["accepted"].(float64); acc != 1 {
		t.Errorf("peer_fills.accepted = %g, want 1", acc)
	}
	if rej := pf["rejected"].(float64); rej < 2 {
		t.Errorf("peer_fills.rejected = %g, want >= 2", rej)
	}
}
