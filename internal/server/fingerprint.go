package server

// Content-addressed result fingerprints. A fingerprint identifies the
// *outcome* of a request, not its spelling: it is computed over the
// normalized request (defaults filled, rule lowercased), trees are
// addressed by cache key (benchmarks by name, inline text by content
// hash), and fields that cannot change the response bytes are excluded —
// timeout_ms only caps the run, priority only schedules it, the DP
// engine returns identical results for every parallelism, and hull only
// selects the buffering kernel (bit-identical by contract). Two requests
// with equal fingerprints are therefore interchangeable: the result
// cache answers the second from memory, and the in-flight registry
// coalesces concurrent ones onto a single worker.
//
// The cache epoch (Config.Epoch, the vabufd -epoch flag) is mixed in as
// well: it names the buffer-library / device-model generation the
// instance serves, so bumping it fleet-wide turns every previously
// cached result cold instead of silently pinning results computed
// against the old library. The vabufr router hashes the same
// fingerprint with an *empty* epoch as its partition key — an epoch
// bump invalidates caches without reshuffling request ownership.
//
// Yield fingerprints do include the sampler identity: monte_carlo,
// seed, mc_tol, and whether the sharded stream was selected
// (parallelism > 1), because those change the sample vector and with it
// the reported quantiles.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// fingerprintVersion is folded into every fingerprint so a change to the
// inclusion set can never serve a stale cached result after an upgrade.
// fp2 added the cache epoch.
const fingerprintVersion = "fp2"

// writeFingerprint streams the output-affecting fields of a normalized
// insert request. kind separates the insert and yield result spaces;
// epoch is the instance's cache epoch ("" for routing keys).
func (r *InsertRequest) writeFingerprint(w io.Writer, kind, epoch string) {
	fmt.Fprintf(w,
		"%s\x00%s\x00epoch=%s\x00tree=%s\x00algo=%s\x00rule=%s\x00pbar=%g\x00budget=%g\x00hetero=%t\x00q=%g\x00maxcand=%d\x00ws=%t\x00inv=%t\x00assign=%t",
		fingerprintVersion, kind, epoch, treeCacheKey(r), r.Algo, r.Rule, r.Pbar,
		r.Budget, r.heterogeneous(), r.Quantile, r.MaxCandidates,
		r.WireSizing, r.Inverters, r.IncludeAssignment)
}

// Fingerprint returns the content-addressed result-cache key of a
// normalized insert request under the given cache epoch. Call it only
// after Normalize() — the normalization is what makes semantically-equal
// spellings hash equal. Routing callers (vabufr) pass epoch "": the
// partition key must survive an epoch bump unchanged.
func (r *InsertRequest) Fingerprint(epoch string) string {
	h := sha256.New()
	r.writeFingerprint(h, "insert", epoch)
	return "ins:" + hex.EncodeToString(h.Sum(nil))
}

// mcSampler names the Monte-Carlo sampler a normalized yield request
// selects; distinct samplers produce distinct streams, so the name is
// part of the fingerprint.
func (r *YieldRequest) mcSampler() string {
	switch {
	case r.MonteCarlo <= 0:
		return "none"
	case r.MCTol > 0:
		return "adaptive"
	case r.Parallelism > 1:
		return "sharded"
	default:
		return "serial"
	}
}

// Fingerprint returns the content-addressed result-cache key of a
// normalized yield request: the insert fingerprint fields plus the
// Monte-Carlo recipe.
func (r *YieldRequest) Fingerprint(epoch string) string {
	h := sha256.New()
	r.InsertRequest.writeFingerprint(h, "yield", epoch)
	fmt.Fprintf(h, "\x00mc=%d\x00seed=%d\x00sampler=%s\x00tol=%g",
		r.MonteCarlo, r.Seed, r.mcSampler(), r.MCTol)
	return "yld:" + hex.EncodeToString(h.Sum(nil))
}
