// Package skew implements the paper's stated future work (§6): applying
// the 2P pruning machinery to clock-skew minimization. Buffer insertion on
// a clock tree must equalize source-to-sink delays rather than maximize a
// required arrival time, so a candidate solution carries three canonical
// figures of merit — the downstream loading L and the maximum and minimum
// source-side delays Dmax, Dmin from the candidate's node to any sink
// below it. The dynamic program reuses the first-order variation model:
// wires and buffers shift Dmax and Dmin together (preserving skew and
// their correlation), merges take the statistical MAX of Dmax and MIN of
// Dmin, and the skew form Dmax − Dmin keeps all shared variation
// cancelled exactly.
//
// Ordering candidates "by mean" per coordinate is justified exactly as in
// §2.3 (Lemma 4), but with three figures of merit the dominance relation
// is a Pareto partial order rather than a chain, so pruning is a sweep
// against the kept Pareto set; capacity caps guard the worst case.
package skew

import (
	"fmt"
	"time"

	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// Options configures a skew-minimization run.
type Options struct {
	// Library is the buffer library. Required.
	Library device.Library
	// Model supplies variation sources; nil runs deterministically.
	Model *variation.Model
	// SkewQuantile selects the objective quantile: the run minimizes this
	// quantile of the skew distribution (default 0.95: minimize the skew
	// that 95% of dies will not exceed).
	SkewQuantile float64
	// LatencyWeight adds the same quantile of the insertion delay (Dmax)
	// to the objective, trading skew against latency. Zero minimizes pure
	// skew with latency as an implicit tie-breaker.
	LatencyWeight float64
	// Epsilon enables ε-dominance coarsening: a candidate within Epsilon
	// (ps / fF) of a kept candidate on all three mean figures of merit is
	// treated as dominated. This bounds the Pareto fronts that make the
	// three-criteria DP combinatorial, at a bounded objective error of
	// roughly Epsilon per tree level. Zero selects the 0.1 default; set
	// it negative for exact (exponential worst-case) pruning.
	Epsilon float64
	// MaxCandidates caps the per-node candidate list and merge products
	// (0 selects the 500k default).
	MaxCandidates int
	// Timeout bounds the wall clock (0 = unlimited).
	Timeout time.Duration
}

// Result is the outcome of a skew-minimization run.
type Result struct {
	// Assignment maps node IDs to buffer library indices.
	Assignment map[rctree.NodeID]int
	// Skew is the canonical form of Dmax - Dmin at the root.
	Skew variation.Form
	// SkewMean, SkewSigma and SkewQ summarize the skew distribution; SkewQ
	// is the SkewQuantile quantile that was minimized.
	SkewMean, SkewSigma, SkewQ float64
	// LatencyMean is the mean of the maximum insertion delay Dmax
	// (excluding the driver, which shifts every sink equally).
	LatencyMean float64
	// NumBuffers is len(Assignment).
	NumBuffers int
	// Candidates counts all candidates generated; PeakList the largest
	// surviving list.
	Candidates int64
	PeakList   int
}

type cand struct {
	L          variation.Form
	dmax, dmin variation.Form
	node       rctree.NodeID
	op         opKind
	buf        int16
	pred       *cand
	pred2      *cand
}

type opKind uint8

const (
	opLeaf opKind = iota
	opWire
	opBuffer
	opMerge
)

// Minimize runs the skew-aware buffer-insertion DP over the tree.
func Minimize(tree *rctree.Tree, opts Options) (*Result, error) {
	if err := opts.Library.Validate(); err != nil {
		return nil, err
	}
	for _, b := range opts.Library {
		if b.Inverting {
			return nil, fmt.Errorf("skew: inverting buffer %q not supported (skew engine does not track polarity)", b.Name)
		}
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if tree.NumSinks() == 0 {
		return nil, fmt.Errorf("skew: tree has no sinks")
	}
	if opts.SkewQuantile == 0 {
		opts.SkewQuantile = 0.95
	}
	if opts.SkewQuantile <= 0 || opts.SkewQuantile >= 1 {
		return nil, fmt.Errorf("skew: quantile %g outside (0, 1)", opts.SkewQuantile)
	}
	if opts.LatencyWeight < 0 {
		return nil, fmt.Errorf("skew: negative latency weight %g", opts.LatencyWeight)
	}
	switch {
	case opts.Epsilon == 0:
		opts.Epsilon = 0.1
	case opts.Epsilon < 0:
		opts.Epsilon = 0
	}
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 500_000
	}
	space := variation.NewSpace()
	if opts.Model != nil {
		space = opts.Model.Space
	}
	e := &skewEngine{
		tree:  tree,
		opts:  opts,
		space: space,
		start: time.Now(),
	}
	lists := make([][]*cand, tree.Len())
	for _, id := range tree.PostOrder() {
		if opts.Timeout > 0 && time.Since(e.start) > opts.Timeout {
			return nil, fmt.Errorf("skew: time limit exceeded after %d nodes", e.nodes)
		}
		node := tree.Node(id)
		var list []*cand
		switch node.Kind {
		case rctree.KindSink:
			list = []*cand{{
				L:    variation.Const(node.CapLoad),
				dmax: variation.Const(0),
				dmin: variation.Const(0),
				node: id,
				op:   opLeaf,
			}}
			e.generated++
		default:
			for k, child := range node.Children {
				cl := e.wireUp(child, lists[child])
				lists[child] = nil
				if k == 0 {
					list = cl
					continue
				}
				merged, err := e.merge(id, list, cl)
				if err != nil {
					return nil, err
				}
				list = e.prune(merged)
			}
		}
		if node.BufferOK {
			list = e.prune(e.addBuffers(id, node, list))
		}
		if opts.MaxCandidates > 0 && len(list) > opts.MaxCandidates {
			return nil, fmt.Errorf("skew: %d candidates exceed limit %d at node %d",
				len(list), opts.MaxCandidates, id)
		}
		if len(list) > e.peak {
			e.peak = len(list)
		}
		e.nodes++
		lists[id] = list
	}
	return e.selectRoot(lists[tree.Root])
}

type skewEngine struct {
	tree      *rctree.Tree
	opts      Options
	space     *variation.Space
	start     time.Time
	generated int64
	peak      int
	nodes     int
}

// wireUp adds the edge delay r·l·(c·l/2 + L) to both Dmax and Dmin — the
// shift is identical (and identically correlated) for every sink below.
func (e *skewEngine) wireUp(child rctree.NodeID, list []*cand) []*cand {
	l := e.tree.Node(child).WireLen
	if l == 0 {
		return list
	}
	r := e.tree.Wire.R
	c := e.tree.Wire.C
	halfRC := 0.5 * r * c * l * l
	out := make([]*cand, len(list))
	for i, s := range list {
		out[i] = &cand{
			L:    s.L.Shift(c * l),
			dmax: s.dmax.AXPY(r*l, s.L).Shift(halfRC),
			dmin: s.dmin.AXPY(r*l, s.L).Shift(halfRC),
			node: child,
			op:   opWire,
			pred: s,
		}
	}
	e.generated += int64(len(list))
	return out
}

// addBuffers inserts each library buffer at the node: delay T_b + R_b·L is
// added to both extremes and the upstream load becomes C_b (with the
// site's shared deviation on both C_b and T_b).
func (e *skewEngine) addBuffers(id rctree.NodeID, node *rctree.Node, list []*cand) []*cand {
	var dev variation.Form
	if e.opts.Model != nil {
		dev = e.opts.Model.Deviation(int(id), node.Loc)
	}
	out := list
	for bi, b := range e.opts.Library {
		cbForm := variation.Const(b.Cb0).Add(dev.Scale(b.Cb0))
		tbForm := variation.Const(b.Tb0).Add(dev.Scale(b.Tb0))
		for _, s := range list {
			if b.MaxLoad > 0 && s.L.Nominal > b.MaxLoad {
				continue
			}
			d := tbForm.AXPY(b.Rb, s.L)
			out = append(out, &cand{
				L:    cbForm,
				dmax: s.dmax.Add(d),
				dmin: s.dmin.Add(d),
				node: id,
				op:   opBuffer,
				buf:  int16(bi),
				pred: s,
			})
		}
		e.generated += int64(len(list))
	}
	return out
}

// merge joins two subtree solutions: loads add, Dmax takes the statistical
// MAX and Dmin the statistical MIN. The cross product is consumed in
// blocks with ε-dominance pruning between blocks, so the working set stays
// proportional to the Pareto front rather than to n·m.
func (e *skewEngine) merge(id rctree.NodeID, a, b []*cand) ([]*cand, error) {
	var out []*cand
	for _, ca := range a {
		for _, cb := range b {
			out = append(out, &cand{
				L:     ca.L.Add(cb.L),
				dmax:  variation.Max(ca.dmax, cb.dmax, e.space).Form,
				dmin:  variation.Min(ca.dmin, cb.dmin, e.space).Form,
				node:  id,
				op:    opMerge,
				pred:  ca,
				pred2: cb,
			})
			e.generated++
		}
		if len(out) >= 4096 {
			out = e.prune(out)
			if e.opts.MaxCandidates > 0 && len(out) > e.opts.MaxCandidates {
				return nil, fmt.Errorf("skew: merge front %d exceeds limit %d at node %d",
					len(out), e.opts.MaxCandidates, id)
			}
		}
	}
	return out, nil
}

// prune removes Pareto-dominated candidates: a dominates b when a's mean
// load, mean Dmax are no larger and its mean Dmin no smaller (with at
// least one strict or exact duplication), the three-figure analog of the
// 2P rule at pbar = 0.5.
func (e *skewEngine) prune(list []*cand) []*cand {
	if len(list) <= 1 {
		return list
	}
	// Sort by mean L, then Dmax, then descending Dmin so preferable
	// candidates come first.
	sortCands(list)
	eps := e.opts.Epsilon
	out := list[:0]
	for _, c := range list {
		dominated := false
		for _, k := range out {
			if k.L.Nominal <= c.L.Nominal+eps &&
				k.dmax.Nominal <= c.dmax.Nominal+eps &&
				k.dmin.Nominal >= c.dmin.Nominal-eps {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}

func sortCands(list []*cand) {
	// Insertion-friendly multi-key sort.
	lessFn := func(a, b *cand) bool {
		if a.L.Nominal != b.L.Nominal {
			return a.L.Nominal < b.L.Nominal
		}
		if a.dmax.Nominal != b.dmax.Nominal {
			return a.dmax.Nominal < b.dmax.Nominal
		}
		return a.dmin.Nominal > b.dmin.Nominal
	}
	sortSlice(list, lessFn)
}

// selectRoot minimizes the chosen quantile of skew (plus weighted
// latency).
func (e *skewEngine) selectRoot(rootList []*cand) (*Result, error) {
	if len(rootList) == 0 {
		return nil, fmt.Errorf("skew: no candidates survived to the root")
	}
	q := e.opts.SkewQuantile
	var best *cand
	var bestSkew variation.Form
	bestObj := 0.0
	for _, c := range rootList {
		skewForm := c.dmax.Sub(c.dmin)
		obj := skewForm.Quantile(q, e.space)
		if e.opts.LatencyWeight > 0 {
			obj += e.opts.LatencyWeight * c.dmax.Quantile(q, e.space)
		}
		// Ties (e.g. several zero-skew solutions) break toward the lower
		// insertion latency, which also avoids needless buffers.
		if best == nil || obj < bestObj ||
			(obj == bestObj && c.dmax.Nominal < best.dmax.Nominal) {
			best = c
			bestObj = obj
			bestSkew = skewForm
		}
	}
	assignment := make(map[rctree.NodeID]int)
	collect(best, assignment)
	return &Result{
		Assignment:  assignment,
		Skew:        bestSkew,
		SkewMean:    bestSkew.Nominal,
		SkewSigma:   bestSkew.Sigma(e.space),
		SkewQ:       bestSkew.Quantile(q, e.space),
		LatencyMean: best.dmax.Nominal,
		NumBuffers:  len(assignment),
		Candidates:  e.generated,
		PeakList:    e.peak,
	}, nil
}

func collect(c *cand, out map[rctree.NodeID]int) {
	stack := []*cand{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for cur != nil {
			switch cur.op {
			case opLeaf:
				cur = nil
			case opWire:
				cur = cur.pred
			case opBuffer:
				out[cur.node] = int(cur.buf)
				cur = cur.pred
			case opMerge:
				stack = append(stack, cur.pred2)
				cur = cur.pred
			}
		}
	}
}
