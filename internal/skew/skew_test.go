package skew

import (
	"math"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/geom"
	"vabuf/internal/rctree"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

func skewLib() device.Library {
	return device.Library{
		{Name: "s", Cb0: 1.2, Tb0: 25, Rb: 0.4},
		{Name: "l", Cb0: 3.5, Tb0: 25, Rb: 0.15},
	}
}

// unbalancedTree has one long and one short branch to equal sinks — a
// worst case for skew without balancing buffers.
func unbalancedTree() *rctree.Tree {
	tr := rctree.New(rctree.DefaultWire, 0.3, geom.Point{})
	tr.AddSink(tr.Root, geom.Point{X: 3000, Y: 0}, 3000, 10, 0)
	tr.AddSink(tr.Root, geom.Point{X: -200, Y: 0}, 200, 10, 0)
	return tr
}

// exactSkew computes the deterministic skew of an assignment by direct
// evaluation (Propagate with nil model is exact when forms are constant).
func exactSkew(t *testing.T, tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int) float64 {
	t.Helper()
	s, _, err := Propagate(tree, lib, assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsDeterministic() {
		t.Fatal("deterministic skew has variation terms")
	}
	return s.Nominal
}

// bruteForceMinSkew enumerates every assignment on a tiny tree.
func bruteForceMinSkew(t *testing.T, tree *rctree.Tree, lib device.Library) float64 {
	t.Helper()
	var positions []rctree.NodeID
	for i := range tree.Nodes {
		if tree.Nodes[i].BufferOK {
			positions = append(positions, tree.Nodes[i].ID)
		}
	}
	choices := len(lib) + 1
	total := 1
	for range positions {
		total *= choices
		if total > 1<<20 {
			t.Fatal("space too large")
		}
	}
	best := math.Inf(1)
	for code := 0; code < total; code++ {
		assign := make(map[rctree.NodeID]int)
		c := code
		for _, pos := range positions {
			pick := c % choices
			c /= choices
			if pick > 0 {
				assign[pos] = pick - 1
			}
		}
		if s := exactSkew(t, tree, lib, assign); s < best {
			best = s
		}
	}
	return best
}

func TestDeterministicSkewMatchesBruteForce(t *testing.T) {
	lib := skewLib()
	for _, seed := range []int64{1, 2, 3} {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 4, Seed: seed, DieSide: 5000, RATSpread: -1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Minimize(tr, Options{Library: lib, Epsilon: -1})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMinSkew(t, tr, lib)
		if math.Abs(res.SkewMean-want) > 1e-9 {
			t.Errorf("seed %d: DP skew %.6f != brute force %.6f", seed, res.SkewMean, want)
		}
		// The reported assignment re-evaluates to the reported skew.
		if got := exactSkew(t, tr, lib, res.Assignment); math.Abs(got-res.SkewMean) > 1e-9 {
			t.Errorf("seed %d: assignment re-evaluates to %.6f, DP said %.6f", seed, got, res.SkewMean)
		}
	}
}

func TestBufferBalancingReducesSkew(t *testing.T) {
	tr := unbalancedTree()
	lib := skewLib()
	bare := exactSkew(t, tr, lib, nil)
	if bare <= 0 {
		t.Fatalf("unbalanced tree should have positive skew, got %g", bare)
	}
	res, err := Minimize(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkewMean >= bare {
		t.Errorf("optimizer did not reduce skew: %.2f vs bare %.2f", res.SkewMean, bare)
	}
	if res.NumBuffers == 0 {
		t.Error("no buffers inserted to balance the tree")
	}
}

func TestSymmetricHTreeHasZeroDeterministicSkew(t *testing.T) {
	tr, err := benchgen.HTree(3, 6000, 10, rctree.WireParams{}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	lib := skewLib()
	res, err := Minimize(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SkewMean) > 1e-9 {
		t.Errorf("symmetric H-tree skew = %g, want 0", res.SkewMean)
	}
	if res.SkewSigma != 0 {
		t.Errorf("deterministic run has sigma %g", res.SkewSigma)
	}
}

func TestSkewOptimizerAvoidsNeedlessBuffers(t *testing.T) {
	// With deterministic wires, an unbuffered symmetric tree has exactly
	// zero skew, so a pure skew optimizer must insert nothing even under
	// a variation model (buffers only add variance).
	tr, err := benchgen.HTree(2, 4000, 10, rctree.WireParams{}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(tr, Options{Library: skewLib(), Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuffers != 0 || res.SkewQ > 1e-9 {
		t.Errorf("pure skew optimum should be unbuffered with zero skew; got %d buffers, skewQ %g",
			res.NumBuffers, res.SkewQ)
	}
}

func TestVariationSkewOnBufferedHTree(t *testing.T) {
	// A fixed buffered clock tree under random per-device variation
	// develops skew even though it is perfectly symmetric: the canonical
	// model predicts its distribution and MC agrees.
	tr, err := benchgen.HTree(3, 6000, 10, rctree.WireParams{}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := skewLib()
	// Buffer every first-level quadrant node.
	assign := make(map[rctree.NodeID]int)
	top := tr.Node(tr.Root).Children[0]
	for _, q := range tr.Node(top).Children {
		assign[q] = 1
	}
	skewForm, _, err := Propagate(tr, lib, assign, model)
	if err != nil {
		t.Fatal(err)
	}
	if skewForm.Nominal <= 0 {
		t.Fatalf("buffered symmetric tree skew mean = %g, want positive", skewForm.Nominal)
	}
	samples, err := MonteCarlo(tr, lib, assign, model, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mcMean, _ := stats.MeanVar(samples)
	// The canonical MAX/MIN approximation carries Clark-level error on
	// extreme-value statistics; 20% agreement on the mean is the right
	// order.
	if math.Abs(mcMean-skewForm.Nominal) > 0.2*mcMean {
		t.Errorf("MC skew mean %.3f vs model %.3f", mcMean, skewForm.Nominal)
	}
	for _, s := range samples {
		if s < -1e-9 {
			t.Fatalf("negative sampled skew %g", s)
		}
	}
}

func TestPropagateConsistentWithMinimize(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 12, Seed: 9, RATSpread: -1})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := skewLib()
	res, err := Minimize(tr, Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	s, lat, err := Propagate(tr, lib, res.Assignment, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Nominal-res.SkewMean) > 1e-6 {
		t.Errorf("propagated skew %.4f != DP %.4f", s.Nominal, res.SkewMean)
	}
	if math.Abs(lat.Nominal-res.LatencyMean) > 1e-6 {
		t.Errorf("propagated latency %.4f != DP %.4f", lat.Nominal, res.LatencyMean)
	}
}

func TestLatencyWeightTradesOff(t *testing.T) {
	tr := unbalancedTree()
	lib := skewLib()
	pure, err := Minimize(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Minimize(tr, Options{Library: lib, LatencyWeight: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A heavy latency weight must not produce worse latency than the pure
	// skew optimum.
	if weighted.LatencyMean > pure.LatencyMean+1e-9 {
		t.Errorf("latency weight increased latency: %.2f vs %.2f",
			weighted.LatencyMean, pure.LatencyMean)
	}
}

func TestMinimizeValidation(t *testing.T) {
	tr := unbalancedTree()
	lib := skewLib()
	if _, err := Minimize(tr, Options{}); err == nil {
		t.Error("empty library accepted")
	}
	if _, err := Minimize(tr, Options{Library: lib, SkewQuantile: 1.5}); err == nil {
		t.Error("bad quantile accepted")
	}
	if _, err := Minimize(tr, Options{Library: lib, LatencyWeight: -1}); err == nil {
		t.Error("negative latency weight accepted")
	}
	bad := tr.Clone()
	bad.Wire.R = 0
	if _, err := Minimize(bad, Options{Library: lib}); err == nil {
		t.Error("invalid tree accepted")
	}
	if _, err := Minimize(tr, Options{Library: lib, MaxCandidates: 1}); err == nil {
		t.Error("capacity violation not reported")
	}
}

func TestMonteCarloValidation(t *testing.T) {
	tr := unbalancedTree()
	lib := skewLib()
	if _, err := MonteCarlo(tr, lib, nil, nil, 10, 1); err == nil {
		t.Error("nil model accepted")
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MonteCarlo(tr, lib, nil, model, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := MonteCarlo(tr, lib, map[rctree.NodeID]int{1: 99}, model, 10, 1); err == nil {
		t.Error("bad assignment accepted")
	}
	a, err := MonteCarlo(tr, lib, map[rctree.NodeID]int{1: 0}, model, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(tr, lib, map[rctree.NodeID]int{1: 0}, model, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MonteCarlo not reproducible")
		}
	}
}
