package skew

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"

	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

func sortSlice(list []*cand, less func(a, b *cand) bool) {
	slices.SortFunc(list, func(a, b *cand) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// Propagate evaluates a fixed buffered clock tree: it returns the
// canonical forms of the skew (Dmax − Dmin) and the insertion latency
// (Dmax) at the root, independently of the optimizer.
func Propagate(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	model *variation.Model) (skewForm, latency variation.Form, err error) {
	if err := tree.Validate(); err != nil {
		return variation.Form{}, variation.Form{}, err
	}
	space := variation.NewSpace()
	if model != nil {
		space = model.Space
	}
	for id, bi := range assign {
		if id < 0 || int(id) >= tree.Len() || !tree.Node(id).BufferOK {
			return variation.Form{}, variation.Form{}, fmt.Errorf("skew: bad assignment node %d", id)
		}
		if bi < 0 || bi >= len(lib) {
			return variation.Form{}, variation.Form{}, fmt.Errorf("skew: buffer index %d out of range", bi)
		}
	}
	type state struct{ L, dmax, dmin variation.Form }
	vals := make([]state, tree.Len())
	r := tree.Wire.R
	c := tree.Wire.C
	for _, id := range tree.PostOrder() {
		n := tree.Node(id)
		var cur state
		switch n.Kind {
		case rctree.KindSink:
			cur = state{
				L:    variation.Const(n.CapLoad),
				dmax: variation.Const(0),
				dmin: variation.Const(0),
			}
		default:
			first := true
			for _, cid := range n.Children {
				cn := tree.Node(cid)
				child := vals[cid]
				if l := cn.WireLen; l > 0 {
					half := 0.5 * r * c * l * l
					child.dmax = child.dmax.AXPY(r*l, child.L).Shift(half)
					child.dmin = child.dmin.AXPY(r*l, child.L).Shift(half)
					child.L = child.L.Shift(c * l)
				}
				if first {
					cur = child
					first = false
				} else {
					cur.L = cur.L.Add(child.L)
					cur.dmax = variation.Max(cur.dmax, child.dmax, space).Form
					cur.dmin = variation.Min(cur.dmin, child.dmin, space).Form
				}
			}
		}
		if bi, ok := assign[id]; ok {
			b := lib[bi]
			dev := variation.Form{}
			if model != nil {
				dev = model.Deviation(int(id), n.Loc)
			}
			cbForm := variation.Const(b.Cb0).Add(dev.Scale(b.Cb0))
			d := variation.Const(b.Tb0).Add(dev.Scale(b.Tb0)).AXPY(b.Rb, cur.L)
			cur = state{
				L:    cbForm,
				dmax: cur.dmax.Add(d),
				dmin: cur.dmin.Add(d),
			}
		}
		vals[id] = cur
	}
	root := vals[tree.Root]
	return root.dmax.Sub(root.dmin), root.dmax, nil
}

// MonteCarlo samples the model and computes the exact per-sample skew
// (max minus min source-to-sink Elmore delay) of the buffered tree.
func MonteCarlo(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int,
	model *variation.Model, n int, seed int64) ([]float64, error) {
	if model == nil {
		return nil, fmt.Errorf("skew: MonteCarlo requires a variation model")
	}
	if n <= 0 {
		return nil, fmt.Errorf("skew: sample count %d must be positive", n)
	}
	type inst struct {
		id  rctree.NodeID
		b   device.BufferType
		dev variation.Form
	}
	insts := make([]inst, 0, len(assign))
	for id, bi := range assign {
		if bi < 0 || bi >= len(lib) || id < 0 || int(id) >= tree.Len() {
			return nil, fmt.Errorf("skew: bad assignment entry %d -> %d", id, bi)
		}
		insts = append(insts, inst{id: id, b: lib[bi], dev: model.Deviation(int(id), tree.Node(id).Loc)})
	}
	slices.SortFunc(insts, func(a, b inst) int { return cmp.Compare(a.id, b.id) })
	rng := rand.New(rand.NewSource(seed))
	order := tree.PostOrder()
	type dstate struct{ L, dmax, dmin float64 }
	vals := make([]dstate, tree.Len())
	bv := make(map[rctree.NodeID]rctree.BufferValues, len(insts))
	out := make([]float64, 0, n)
	var buf []float64
	r := tree.Wire.R
	c := tree.Wire.C
	for s := 0; s < n; s++ {
		buf = model.Space.Sample(rng, buf)
		for _, in := range insts {
			d := in.dev.Eval(buf)
			bv[in.id] = rctree.BufferValues{
				C: in.b.Cb0 * (1 + d),
				T: in.b.Tb0 * (1 + d),
				R: in.b.Rb,
			}
		}
		for _, id := range order {
			nn := tree.Node(id)
			var cur dstate
			switch nn.Kind {
			case rctree.KindSink:
				cur = dstate{L: nn.CapLoad}
			default:
				first := true
				for _, cid := range nn.Children {
					cn := tree.Node(cid)
					child := vals[cid]
					if l := cn.WireLen; l > 0 {
						d := r*l*child.L + 0.5*r*c*l*l
						child.dmax += d
						child.dmin += d
						child.L += c * l
					}
					if first {
						cur = child
						first = false
					} else {
						cur.L += child.L
						if child.dmax > cur.dmax {
							cur.dmax = child.dmax
						}
						if child.dmin < cur.dmin {
							cur.dmin = child.dmin
						}
					}
				}
			}
			if v, ok := bv[id]; ok {
				d := v.T + v.R*cur.L
				cur = dstate{L: v.C, dmax: cur.dmax + d, dmin: cur.dmin + d}
			}
			vals[id] = cur
		}
		root := vals[tree.Root]
		out = append(out, root.dmax-root.dmin)
	}
	return out, nil
}
