package benchgen

import (
	"math"
	"testing"

	"vabuf/internal/rctree"
)

// table1 is the ground truth from the paper's Table 1.
var table1 = []struct {
	name      string
	sinks     int
	positions int
}{
	{"p1", 269, 537},
	{"p2", 603, 1205},
	{"r1", 267, 533},
	{"r2", 598, 1195},
	{"r3", 862, 1723},
	{"r4", 1903, 3805},
	{"r5", 3101, 6201},
}

func TestPresetsMatchTable1(t *testing.T) {
	if len(Presets()) != len(table1) {
		t.Fatalf("preset count = %d", len(Presets()))
	}
	for _, row := range table1 {
		tr, err := Build(row.name)
		if err != nil {
			t.Fatalf("%s: %v", row.name, err)
		}
		if got := tr.NumSinks(); got != row.sinks {
			t.Errorf("%s: sinks = %d, want %d", row.name, got, row.sinks)
		}
		if got := tr.NumBufferPositions(); got != row.positions {
			t.Errorf("%s: buffer positions = %d, want %d", row.name, got, row.positions)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", row.name, err)
		}
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := Build("nope"); err == nil {
		t.Error("unknown build accepted")
	}
}

func TestRandomDeterministic(t *testing.T) {
	spec := Spec{Name: "x", Sinks: 50, Seed: 7}
	a, err := Random(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Nodes {
		if a.Nodes[i].Loc != b.Nodes[i].Loc || a.Nodes[i].CapLoad != b.Nodes[i].CapLoad {
			t.Fatalf("node %d differs between runs", i)
		}
	}
	// Different seed ⇒ different placement.
	c, err := Random(Spec{Name: "x", Sinks: 50, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nodes {
		if a.Nodes[i].Loc != c.Nodes[i].Loc {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical trees")
	}
}

func TestRandomValidation(t *testing.T) {
	if _, err := Random(Spec{Sinks: 0}); err == nil {
		t.Error("zero sinks accepted")
	}
	if _, err := Random(Spec{Sinks: 5, SinkCapMin: 10, SinkCapMax: 5}); err == nil {
		t.Error("inverted cap range accepted")
	}
}

func TestRandomSingleSink(t *testing.T) {
	tr, err := Random(Spec{Sinks: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumSinks() != 1 || tr.NumBufferPositions() != 1 || tr.Len() != 2 {
		t.Errorf("single-sink tree: %d nodes, %d positions", tr.Len(), tr.NumBufferPositions())
	}
}

func TestRandomGeometrySane(t *testing.T) {
	spec := Spec{Sinks: 200, Seed: 3}
	tr, err := Random(spec)
	if err != nil {
		t.Fatal(err)
	}
	side := spec.withDefaults().DieSide
	bb := tr.BoundingBox()
	if bb.Max.X > side || bb.Max.Y > side || bb.Min.X < 0 || bb.Min.Y < 0 {
		t.Errorf("nodes outside die: %+v vs side %g", bb, side)
	}
	// Sink caps respect the default range.
	for _, id := range tr.Sinks() {
		c := tr.Node(id).CapLoad
		if c < 5 || c > 20 {
			t.Errorf("sink %d cap %g outside [5, 20]", id, c)
		}
	}
	// Wire lengths are consistent with node locations (bisection uses
	// Manhattan distance between tree points).
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if n.Parent == rctree.NoNode {
			continue
		}
		want := tr.Node(n.Parent).Loc.Manhattan(n.Loc)
		if math.Abs(n.WireLen-want) > 1e-9 {
			t.Fatalf("node %d wirelen %g != Manhattan %g", i, n.WireLen, want)
		}
	}
}

func TestRATSpread(t *testing.T) {
	// Default: sink RATs spread over [-300, 0].
	tr, err := Random(Spec{Sinks: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0.0, -1e18
	for _, id := range tr.Sinks() {
		r := tr.Node(id).RAT
		if r > 0 || r < -300 {
			t.Fatalf("sink RAT %g outside [-300, 0]", r)
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo > -150 || hi < -10 {
		t.Errorf("RATs not spread: min %g max %g", lo, hi)
	}
	// Negative spread disables RAT diversity entirely.
	flat, err := Random(Spec{Sinks: 20, Seed: 4, RATSpread: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range flat.Sinks() {
		if flat.Node(id).RAT != 0 {
			t.Fatalf("RATSpread<0 left sink RAT %g", flat.Node(id).RAT)
		}
	}
	// Custom spread is respected.
	narrow, err := Random(Spec{Sinks: 50, Seed: 4, RATSpread: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range narrow.Sinks() {
		if r := narrow.Node(id).RAT; r < -10 || r > 0 {
			t.Fatalf("narrow spread violated: %g", r)
		}
	}
}

func TestHTreeCounts(t *testing.T) {
	for levels := 1; levels <= 4; levels++ {
		tr, err := HTree(levels, 8000, 10, rctree.WireParams{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantSinks := 1
		for i := 0; i < levels; i++ {
			wantSinks *= 4
		}
		if got := tr.NumSinks(); got != wantSinks {
			t.Errorf("levels=%d: sinks = %d, want %d", levels, got, wantSinks)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("levels=%d: %v", levels, err)
		}
	}
}

func TestHTreeSymmetric(t *testing.T) {
	// All sinks of an H-tree are electrically equidistant from the root:
	// path wire length must be identical for every sink.
	tr, err := HTree(3, 6400, 10, rctree.WireParams{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pathLen := func(id rctree.NodeID) float64 {
		s := 0.0
		for id != tr.Root {
			s += tr.Node(id).WireLen
			id = tr.Node(id).Parent
		}
		return s
	}
	sinks := tr.Sinks()
	want := pathLen(sinks[0])
	for _, s := range sinks[1:] {
		if math.Abs(pathLen(s)-want) > 1e-9 {
			t.Fatalf("sink %d path %g != %g", s, pathLen(s), want)
		}
	}
}

func TestHTreeValidation(t *testing.T) {
	if _, err := HTree(0, 1000, 10, rctree.WireParams{}, 0); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := HTree(11, 1000, 10, rctree.WireParams{}, 0); err == nil {
		t.Error("absurd levels accepted")
	}
	if _, err := HTree(2, 0, 10, rctree.WireParams{}, 0); err == nil {
		t.Error("zero die accepted")
	}
	if _, err := HTree(2, 1000, 0, rctree.WireParams{}, 0); err == nil {
		t.Error("zero sink cap accepted")
	}
}

func TestSegmentizePreservesElmore(t *testing.T) {
	tr, err := Random(Spec{Sinks: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Segmentize(tr, 200)
	if err != nil {
		t.Fatal(err)
	}
	if seg.NumBufferPositions() <= tr.NumBufferPositions() {
		t.Errorf("segmentize did not add positions: %d vs %d",
			seg.NumBufferPositions(), tr.NumBufferPositions())
	}
	if seg.NumSinks() != tr.NumSinks() {
		t.Errorf("sink count changed: %d vs %d", seg.NumSinks(), tr.NumSinks())
	}
	if math.Abs(seg.TotalWireLength()-tr.TotalWireLength()) > 1e-6 {
		t.Errorf("wire length changed: %g vs %g", seg.TotalWireLength(), tr.TotalWireLength())
	}
	e1, err := rctree.Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := rctree.Evaluate(seg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1.RootRAT-e2.RootRAT) > 1e-6 {
		t.Errorf("segmentize changed Elmore RAT: %g vs %g", e1.RootRAT, e2.RootRAT)
	}
	// No edge longer than maxLen (tolerate fp slop).
	for i := range seg.Nodes {
		if seg.Nodes[i].WireLen > 200+1e-9 {
			t.Fatalf("edge %d longer than maxLen: %g", i, seg.Nodes[i].WireLen)
		}
	}
}

func TestSegmentizeNoopForShortWires(t *testing.T) {
	tr, err := Random(Spec{Sinks: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Segmentize(tr, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Len() != tr.Len() {
		t.Errorf("noop segmentize changed node count: %d vs %d", seg.Len(), tr.Len())
	}
	if _, err := Segmentize(tr, 0); err == nil {
		t.Error("zero maxLen accepted")
	}
}
