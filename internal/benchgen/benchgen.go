// Package benchgen generates the benchmark routing trees of §5.1. The
// original p1/p2 and r1–r5 Steiner trees of [11] are not available
// offline, so the generator synthesizes random routing trees by recursive
// geometric bisection with exactly the Table 1 sink counts; a full binary
// topology over S sinks has S-1 internal Steiner nodes, so the number of
// legal buffer positions is 2S-1, matching Table 1's "Buffer Positions"
// column for every benchmark. It also builds the H-tree clock networks of
// footnote 4 and can segmentize long wires to add buffer positions.
package benchgen

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"vabuf/internal/device"
	"vabuf/internal/geom"
	"vabuf/internal/rctree"
)

// Spec describes one synthetic benchmark.
type Spec struct {
	Name  string
	Sinks int
	Seed  int64
	// DieSide is the square die edge in µm; 0 selects an area scaled to
	// the sink count (2 mm at 100 sinks, growing with sqrt(S)).
	DieSide float64
	// SinkCapMin/Max bound the uniformly drawn sink loads (fF).
	SinkCapMin, SinkCapMax float64
	// RATSpread is the span of uniformly drawn sink required arrival
	// times: each sink gets a RAT in [-RATSpread, 0] ps. Diverse sink
	// criticality is what makes merges contested (the r-benchmarks of
	// [11] carry per-sink RATs); 0 selects the 300 ps default. Set it
	// negative for exactly-zero RATs at every sink.
	RATSpread float64
	// Wire and DriverR configure the electrical environment.
	Wire    rctree.WireParams
	DriverR float64
}

// withDefaults fills zero fields with the repo-wide defaults.
func (s Spec) withDefaults() Spec {
	if s.DieSide == 0 {
		s.DieSide = 2000 * math.Sqrt(float64(s.Sinks)/100)
	}
	if s.SinkCapMin == 0 && s.SinkCapMax == 0 {
		s.SinkCapMin, s.SinkCapMax = 5, 20
	}
	if s.RATSpread == 0 {
		s.RATSpread = 300
	} else if s.RATSpread < 0 {
		s.RATSpread = 0
	}
	if s.Wire == (rctree.WireParams{}) {
		s.Wire = rctree.DefaultWire
	}
	if s.DriverR == 0 {
		s.DriverR = 0.3
	}
	return s
}

// presets lists the Table 1 benchmarks. Seeds are fixed so the whole
// experimental suite is reproducible.
var presets = []Spec{
	{Name: "p1", Sinks: 269, Seed: 101},
	{Name: "p2", Sinks: 603, Seed: 102},
	{Name: "r1", Sinks: 267, Seed: 201},
	{Name: "r2", Sinks: 598, Seed: 202},
	{Name: "r3", Sinks: 862, Seed: 203},
	{Name: "r4", Sinks: 1903, Seed: 204},
	{Name: "r5", Sinks: 3101, Seed: 205},
}

// Presets returns the Table 1 benchmark specs (p1, p2, r1–r5).
func Presets() []Spec {
	out := make([]Spec, len(presets))
	copy(out, presets)
	return out
}

// Preset returns the named Table 1 benchmark spec.
func Preset(name string) (Spec, error) {
	for _, p := range presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Spec{}, fmt.Errorf("benchgen: unknown preset %q (have p1, p2, r1–r5)", name)
}

// Random generates a routing tree for the spec: sinks placed uniformly at
// random on the die, topology built by recursive geometric bisection
// (split the point set across the wider bounding-box dimension), Steiner
// points at subset centroids, rectilinear wire lengths.
func Random(spec Spec) (*rctree.Tree, error) {
	if spec.Sinks < 1 {
		return nil, fmt.Errorf("benchgen: need at least 1 sink, got %d", spec.Sinks)
	}
	spec = spec.withDefaults()
	if spec.SinkCapMax < spec.SinkCapMin {
		return nil, fmt.Errorf("benchgen: sink cap range [%g, %g] inverted",
			spec.SinkCapMin, spec.SinkCapMax)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	type sinkPt struct {
		loc geom.Point
		cap float64
		rat float64
	}
	pts := make([]sinkPt, spec.Sinks)
	for i := range pts {
		pts[i] = sinkPt{
			loc: geom.Point{
				X: rng.Float64() * spec.DieSide,
				Y: rng.Float64() * spec.DieSide,
			},
			cap: spec.SinkCapMin + rng.Float64()*(spec.SinkCapMax-spec.SinkCapMin),
			rat: -rng.Float64() * spec.RATSpread,
		}
	}
	centroid := func(ps []sinkPt) geom.Point {
		var c geom.Point
		for _, p := range ps {
			c = c.Add(p.loc)
		}
		return c.Scale(1 / float64(len(ps)))
	}
	tree := rctree.New(spec.Wire, spec.DriverR, centroid(pts))

	var build func(parent rctree.NodeID, ps []sinkPt)
	build = func(parent rctree.NodeID, ps []sinkPt) {
		parentLoc := tree.Node(parent).Loc
		if len(ps) == 1 {
			tree.AddSink(parent, ps[0].loc, parentLoc.Manhattan(ps[0].loc), ps[0].cap, ps[0].rat)
			return
		}
		locs := make([]geom.Point, len(ps))
		for i, p := range ps {
			locs[i] = p.loc
		}
		bb := geom.BoundingBox(locs)
		if bb.Width() >= bb.Height() {
			slices.SortFunc(ps, func(a, b sinkPt) int { return cmp.Compare(a.loc.X, b.loc.X) })
		} else {
			slices.SortFunc(ps, func(a, b sinkPt) int { return cmp.Compare(a.loc.Y, b.loc.Y) })
		}
		mid := len(ps) / 2
		loc := centroid(ps)
		node := tree.AddSteiner(parent, loc, parentLoc.Manhattan(loc))
		build(node, ps[:mid])
		build(node, ps[mid:])
	}
	build(tree.Root, pts)
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: generated invalid tree: %w", err)
	}
	return tree, nil
}

// Build generates the named preset benchmark.
func Build(name string) (*rctree.Tree, error) {
	spec, err := Preset(name)
	if err != nil {
		return nil, err
	}
	return Random(spec)
}

// ScaledLibrary returns a deterministic n-cell buffer library shaped like
// a real standard-cell repeater family: a geometric width ladder from 1 to
// 64 µm with the ideal-scaling electricals of the repo's 65 nm substrate
// (C_b ∝ w, R_b ∝ 1/w, width-invariant intrinsic delay; the w = 2 cell
// reproduces DefaultLibrary's b2 exactly). Every third cell is a
// single-stage inverter at half the two-stage intrinsic delay, and all but
// the widest quarter of the ladder carry a drive-capability cap of 100×
// their input capacitance — the library-scaling benchmarks exercise
// polarity tracking and MaxLoad filtering, not just raw type count.
func ScaledLibrary(n int) (device.Library, error) {
	if n < 1 || n > 256 {
		return nil, fmt.Errorf("benchgen: library size %d outside [1, 256]", n)
	}
	// Anchors from device.DefaultLibrary / InverterLibrary at w = 2.
	const (
		cbPerMicron = 0.6625 / 2  // fF / µm
		rbTimesW    = 1.01495 * 2 // kΩ · µm
		bufTb       = 59.4767     // ps
		invTb       = 29.7384     // ps
		wMin, wMax  = 1.0, 64.0
	)
	lib := make(device.Library, 0, n)
	for i := 0; i < n; i++ {
		f := 0.0
		if n > 1 {
			f = float64(i) / float64(n-1)
		}
		w := wMin * math.Pow(wMax/wMin, f)
		b := device.BufferType{
			Cb0: cbPerMicron * w,
			Tb0: bufTb,
			Rb:  rbTimesW / w,
		}
		if i%3 == 2 {
			b.Inverting = true
			b.Tb0 = invTb
			b.Name = fmt.Sprintf("inv%d_w%.4g", i, w)
		} else {
			b.Name = fmt.Sprintf("buf%d_w%.4g", i, w)
		}
		if i < n-(n+3)/4 {
			b.MaxLoad = 100 * b.Cb0
		}
		lib = append(lib, b)
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: scaled library invalid: %w", err)
	}
	return lib, nil
}

// HTree builds a classic H-tree clock network with 4^levels sinks spread
// over a square die (footnote 4's capacity benchmark is levels = 8, which
// yields 65,536 sinks). Every node below the driver is a legal buffer
// position.
func HTree(levels int, dieSide, sinkCap float64, wire rctree.WireParams, driverR float64) (*rctree.Tree, error) {
	if levels < 1 || levels > 10 {
		return nil, fmt.Errorf("benchgen: H-tree levels %d outside [1, 10]", levels)
	}
	if dieSide <= 0 {
		return nil, fmt.Errorf("benchgen: die side %g must be positive", dieSide)
	}
	if sinkCap <= 0 {
		return nil, fmt.Errorf("benchgen: sink cap %g must be positive", sinkCap)
	}
	if wire == (rctree.WireParams{}) {
		wire = rctree.DefaultWire
	}
	if driverR <= 0 {
		driverR = 0.3
	}
	center := geom.Point{X: dieSide / 2, Y: dieSide / 2}
	tree := rctree.New(wire, driverR, center)

	var build func(parent rctree.NodeID, c geom.Point, half float64, level int)
	build = func(parent rctree.NodeID, c geom.Point, half float64, level int) {
		parentLoc := tree.Node(parent).Loc
		wl := parentLoc.Manhattan(c)
		if level == 0 {
			tree.AddSink(parent, c, wl, sinkCap, 0)
			return
		}
		node := tree.AddSteiner(parent, c, wl)
		q := half / 2
		for _, d := range []geom.Point{{X: -q, Y: q}, {X: q, Y: q}, {X: -q, Y: -q}, {X: q, Y: -q}} {
			build(node, c.Add(d), q, level-1)
		}
	}
	build(tree.Root, center, dieSide/2, levels)
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: generated invalid H-tree: %w", err)
	}
	return tree, nil
}

// Segmentize returns a copy of the tree in which every edge longer than
// maxLen is split into equal segments by inserting degree-2 Steiner nodes
// (each a new legal buffer position). Electrical behaviour is unchanged:
// splitting a π-model wire is Elmore-exact.
func Segmentize(t *rctree.Tree, maxLen float64) (*rctree.Tree, error) {
	if maxLen <= 0 {
		return nil, fmt.Errorf("benchgen: maxLen %g must be positive", maxLen)
	}
	out := rctree.New(t.Wire, t.DriverR, t.Node(t.Root).Loc)
	var emit func(oldID, newParent rctree.NodeID)
	emit = func(oldID, newParent rctree.NodeID) {
		n := t.Node(oldID)
		parent := newParent
		wl := n.WireLen
		if segs := int(math.Ceil(wl / maxLen)); segs > 1 {
			from := t.Node(n.Parent).Loc
			step := wl / float64(segs)
			for i := 1; i < segs; i++ {
				f := float64(i) / float64(segs)
				loc := geom.Point{
					X: from.X + f*(n.Loc.X-from.X),
					Y: from.Y + f*(n.Loc.Y-from.Y),
				}
				parent = out.AddSteiner(parent, loc, step)
			}
			wl = step
		}
		var id rctree.NodeID
		if n.Kind == rctree.KindSink {
			id = out.AddSink(parent, n.Loc, wl, n.CapLoad, n.RAT)
		} else {
			id = out.AddSteiner(parent, n.Loc, wl)
		}
		for _, c := range n.Children {
			emit(c, id)
		}
	}
	for _, c := range t.Node(t.Root).Children {
		emit(c, out.Root)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("benchgen: segmentize produced invalid tree: %w", err)
	}
	return out, nil
}
