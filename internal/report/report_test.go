package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X: demo", "Bench", "RAT", "Yield")
	tb.AddRow("p1", "-2673.5", "99.6%")
	tb.AddRow("r5", "-2934.9", "83.5%")
	tb.AddRule()
	tb.AddRow("Avg", "-9.7%", "45.0%")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table X: demo", "Bench", "p1", "r5", "Avg", "83.5%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows + rule + avg = 7 lines.
	if len(lines) != 7 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same prefix width up to col 2.
	if !strings.Contains(lines[1], "Bench") {
		t.Errorf("header missing: %q", lines[1])
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only-a")
	tb.AddRow("x", "y", "dropped-cell")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dropped-cell") {
		t.Error("extra cell not dropped")
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Pct(0.123, 1) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123, 1))
	}
}

func TestLinePlot(t *testing.T) {
	p := NewLinePlot("Fig: runtime", "sinks", "seconds")
	if err := p.Add('*', []float64{1, 2, 3}, []float64{1, 4, 9}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add('o', []float64{1, 2, 3}, []float64{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("marks missing from plot:\n%s", out)
	}
	if !strings.Contains(out, "Fig: runtime") || !strings.Contains(out, "sinks") {
		t.Error("labels missing")
	}
}

func TestLinePlotErrors(t *testing.T) {
	p := NewLinePlot("", "", "")
	if err := p.Add('*', []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := p.Add('*', nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	var sb strings.Builder
	if err := p.Render(&sb); err == nil {
		t.Error("empty plot rendered")
	}
}

func TestLinePlotDegenerateRanges(t *testing.T) {
	p := NewLinePlot("", "x", "y")
	if err := p.Add('#', []float64{5, 5}, []float64{7, 7}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#") {
		t.Error("degenerate-range point not drawn")
	}
}
