// Package report renders the experiment harness output: fixed-width text
// tables in the style of the paper's Tables 1–5 and small ASCII plots for
// the figures (runtime scaling, PDFs, probability curves).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows of string cells and renders them with aligned
// columns.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	hasRule []bool // horizontal rule before this row
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends one row; cells beyond the header width are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
	t.hasRule = append(t.hasRule, false)
}

// AddRule inserts a horizontal rule at this point in the row sequence.
func (t *Table) AddRule() {
	t.rows = append(t.rows, nil)
	t.hasRule = append(t.hasRule, true)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRule := func() {
		total := 0
		for _, w := range widths {
			total += w
		}
		total += 2 * (len(widths) - 1)
		b.WriteString(strings.Repeat("-", total))
		b.WriteString("\n")
	}
	writeRow(t.header)
	writeRule()
	for i, row := range t.rows {
		if t.hasRule[i] {
			writeRule()
			continue
		}
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given precision, for table cells.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// Pct formats a ratio as a percentage cell.
func Pct(v float64, prec int) string {
	return fmt.Sprintf("%.*f%%", prec, 100*v)
}

// LinePlot renders series of (x, y) points as a crude ASCII scatter chart
// sized rows x cols. Multiple series get distinct marks.
type LinePlot struct {
	Title      string
	XLabel     string
	YLabel     string
	Rows, Cols int
	series     []plotSeries
}

type plotSeries struct {
	mark rune
	xs   []float64
	ys   []float64
}

// NewLinePlot creates an empty plot with a default 20x64 canvas.
func NewLinePlot(title, xlabel, ylabel string) *LinePlot {
	return &LinePlot{Title: title, XLabel: xlabel, YLabel: ylabel, Rows: 20, Cols: 64}
}

// Add appends a series with the given point mark.
func (p *LinePlot) Add(mark rune, xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("report: series length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("report: empty series")
	}
	p.series = append(p.series, plotSeries{mark: mark, xs: xs, ys: ys})
	return nil
}

// Render draws the plot.
func (p *LinePlot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("report: plot has no series")
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			minX = math.Min(minX, s.xs[i])
			maxX = math.Max(maxX, s.xs[i])
			minY = math.Min(minY, s.ys[i])
			maxY = math.Max(maxY, s.ys[i])
		}
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}
	grid := make([][]rune, p.Rows)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", p.Cols))
	}
	for _, s := range p.series {
		for i := range s.xs {
			col := int((s.xs[i] - minX) / (maxX - minX) * float64(p.Cols-1))
			row := int((s.ys[i] - minY) / (maxY - minY) * float64(p.Rows-1))
			r := p.Rows - 1 - row // origin at the bottom
			grid[r][col] = s.mark
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	fmt.Fprintf(&b, "%s (vertical: %.4g .. %.4g)\n", p.YLabel, minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", p.Cols))
	fmt.Fprintf(&b, " %s (horizontal: %.4g .. %.4g)\n", p.XLabel, minX, maxX)
	_, err := io.WriteString(w, b.String())
	return err
}
