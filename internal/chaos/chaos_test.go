package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	if inj, err := Parse(""); inj != nil || err != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", inj, err)
	}
	if inj, err := Parse("  "); inj != nil || err != nil {
		t.Errorf("blank spec = (%v, %v), want (nil, nil)", inj, err)
	}
	inj, err := Parse("seed=7,latency=0.05:150ms,error=0.10,reset=0.02,truncate=0.01,stall=0.03:2s")
	if err != nil {
		t.Fatal(err)
	}
	if inj.seed != 7 || inj.latencyP != 0.05 || inj.latency != 150*time.Millisecond ||
		inj.errorP != 0.10 || inj.resetP != 0.02 || inj.truncP != 0.01 ||
		inj.stallP != 0.03 || inj.stall != 2*time.Second {
		t.Errorf("full spec parsed as %+v", inj)
	}

	for _, bad := range []string{
		"latency",            // not key=value
		"latency=0.05",       // missing required duration
		"error=0.1:50ms",     // stray duration
		"error=1.5",          // probability out of range
		"error=-0.1",         // probability out of range
		"error=x",            // not a number
		"latency=0.05:-1s",   // non-positive duration
		"latency=0.05:bogus", // unparsable duration
		"explode=0.5",        // unknown fault
		"seed=x",             // bad seed
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		inj, err := Parse(fmt.Sprintf("seed=%d,error=0.5", seed))
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 32)
		for i := range out {
			out[i] = inj.roll()
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault streams")
	}
}

// countingHandler answers 200 with a small body and counts invocations.
func countingHandler(hits *atomic.Int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, `{"ok":true}`)
	})
}

func TestMiddlewareErrorRate(t *testing.T) {
	inj, err := Parse("seed=1,error=0.25")
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(inj.Middleware(countingHandler(&hits)))
	defer ts.Close()

	const n = 400
	errs := 0
	for i := 0; i < n; i++ {
		resp, err := http.Get(ts.URL + "/v1/insert")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusInternalServerError {
			errs++
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	// A seeded stream at p=0.25 over 400 draws lands well inside ±10pt.
	if errs < n/4-40 || errs > n/4+40 {
		t.Errorf("injected %d/%d errors at p=0.25", errs, n)
	}
	if int(hits.Load())+errs != n {
		t.Errorf("handler ran %d times + %d faults != %d requests", hits.Load(), errs, n)
	}
}

func TestMiddlewareExemptsProbes(t *testing.T) {
	inj, err := Parse("seed=1,error=1.0,reset=1.0")
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(inj.Middleware(countingHandler(&hits)))
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s through all-faults injector: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d through exempt path, want 200", path, resp.StatusCode)
		}
	}
	if hits.Load() != 3 {
		t.Errorf("exempt paths reached the handler %d times, want 3", hits.Load())
	}
	// And the non-exempt path faults every time at p=1.
	resp, err := http.Get(ts.URL + "/v1/insert")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("non-exempt status %d under error=1.0", resp.StatusCode)
		}
	}
}

func TestMiddlewareReset(t *testing.T) {
	inj, err := Parse("seed=1,reset=1.0")
	if err != nil {
		t.Fatal(err)
	}
	var hits atomic.Int64
	ts := httptest.NewServer(inj.Middleware(countingHandler(&hits)))
	defer ts.Close()

	_, err = http.Get(ts.URL + "/v1/insert")
	if err == nil {
		t.Fatal("reset=1.0 request completed with a response")
	}
	if hits.Load() != 0 {
		t.Errorf("handler ran %d times behind a guaranteed reset", hits.Load())
	}
}

func TestTruncateCutsStreamAfterFirstWrite(t *testing.T) {
	inj, err := Parse("seed=1,truncate=1.0")
	if err != nil {
		t.Fatal(err)
	}
	stream := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, _ := w.(http.Flusher)
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "{\"event\":%d}\n", i)
			if f != nil {
				f.Flush()
			}
		}
	})
	ts := httptest.NewServer(inj.Middleware(stream))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/yield:stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	// The first event arrives, then the connection dies: a read error or
	// a short body, never the full five events.
	if err == nil && strings.Count(string(raw), "\n") >= 5 {
		t.Fatalf("truncated stream delivered all events: %q", raw)
	}
	if len(raw) > 0 && !strings.HasPrefix(string(raw), `{"event":0}`) {
		t.Errorf("surviving prefix is not the first event: %q", raw)
	}
}

func TestStallDelaysSecondWrite(t *testing.T) {
	inj, err := Parse("seed=1,stall=1.0:300ms")
	if err != nil {
		t.Fatal(err)
	}
	stream := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, _ := w.(http.Flusher)
		fmt.Fprint(w, "first\n")
		if f != nil {
			f.Flush()
		}
		fmt.Fprint(w, "second\n")
	})
	ts := httptest.NewServer(inj.Middleware(stream))
	defer ts.Close()

	t0 := time.Now()
	resp, err := http.Get(ts.URL + "/v1/yield:stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "first\nsecond\n" {
		t.Fatalf("stalled stream corrupted the body: %q", raw)
	}
	// jitter draws in (0, 300ms]; any measurable delay proves the stall
	// sat between the writes without corrupting them.
	if time.Since(t0) < time.Millisecond {
		t.Error("stall=1.0 added no delay before the second write")
	}
}

func TestTransportInjectsConnectionFaults(t *testing.T) {
	var backendHits atomic.Int64
	ts := httptest.NewServer(countingHandler(&backendHits))
	defer ts.Close()

	inj, err := Parse("seed=1,error=1.0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: inj.Transport(nil)}
	if _, err := client.Get(ts.URL + "/v1/insert"); err == nil {
		t.Fatal("error=1.0 transport completed a round-trip")
	}
	if backendHits.Load() != 0 {
		t.Errorf("backend saw %d requests through an all-faults transport", backendHits.Load())
	}
	// Exempt paths pass through untouched.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("exempt GET through faulty transport: %v", err)
	}
	resp.Body.Close()
	if backendHits.Load() != 1 {
		t.Errorf("exempt request did not reach the backend (hits=%d)", backendHits.Load())
	}
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var inj *Injector
	h := http.NewServeMux()
	if got := inj.Middleware(h); got != http.Handler(h) {
		t.Error("nil injector wrapped the handler")
	}
	base := http.DefaultTransport
	if got := inj.Transport(base); got != base {
		t.Error("nil injector wrapped the transport")
	}
}
