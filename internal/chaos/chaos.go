// Package chaos is the fleet's fault-injection harness: a handler
// middleware (server-side faults) and an http.RoundTripper (client-side
// faults) that misbehave on a configured fraction of requests. Faults
// are drawn from a seeded PRNG, so a chaos run is reproducible: the same
// seed against the same request sequence injects the same faults, which
// lets the soak script and the -race tests assert exact envelopes
// instead of eyeballing flakes.
//
// The injector is configuration, not policy: it never exempts itself
// from a fault it was asked for, except for the probe and metrics
// endpoints (/healthz, /readyz, /metrics) — poisoning those would test
// the prober's hysteresis, not the request path, and would make every
// assertion about routing unreadable.
//
// Spec grammar (comma-separated, all parts optional):
//
//	seed=N            PRNG seed (default 1)
//	latency=P:DUR     with probability P, sleep up to DUR before serving
//	error=P           with probability P, answer 500 (or fail the dial)
//	reset=P           with probability P, drop the connection mid-flight
//	truncate=P        with probability P, abort the response after the
//	                  first body write (truncated NDJSON stream)
//	stall=P:DUR       with probability P, freeze the response for DUR
//	                  after the first body write (stalled stream /
//	                  slow-read backend)
//
// Example: "seed=7,latency=0.05:150ms,error=0.10,reset=0.02".
package chaos

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Injector injects faults per its spec. The zero value injects nothing.
type Injector struct {
	seed     int64
	latencyP float64
	latency  time.Duration
	errorP   float64
	resetP   float64
	truncP   float64
	stallP   float64
	stall    time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Parse builds an Injector from a spec string. An empty spec returns
// nil — no injector, no overhead.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("chaos: %q is not key=value", part)
		}
		var err error
		switch key {
		case "seed":
			inj.seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			inj.latencyP, inj.latency, err = parseProbDur(val, true)
		case "error":
			inj.errorP, _, err = parseProbDur(val, false)
		case "reset":
			inj.resetP, _, err = parseProbDur(val, false)
		case "truncate":
			inj.truncP, _, err = parseProbDur(val, false)
		case "stall":
			inj.stallP, inj.stall, err = parseProbDur(val, true)
		default:
			return nil, fmt.Errorf("chaos: unknown fault %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: %s: %w", key, err)
		}
	}
	inj.rng = rand.New(rand.NewSource(inj.seed))
	return inj, nil
}

// parseProbDur parses "P" or "P:DUR". wantDur requires the duration.
func parseProbDur(val string, wantDur bool) (float64, time.Duration, error) {
	probStr, durStr, hasDur := strings.Cut(val, ":")
	p, err := strconv.ParseFloat(probStr, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad probability %q", probStr)
	}
	if p < 0 || p > 1 {
		return 0, 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	if !hasDur {
		if wantDur {
			return 0, 0, fmt.Errorf("%q needs prob:duration", val)
		}
		return p, 0, nil
	}
	if !wantDur {
		return 0, 0, fmt.Errorf("%q takes no duration", val)
	}
	d, err := time.ParseDuration(durStr)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("bad duration %q", durStr)
	}
	return p, d, nil
}

// roll draws one uniform [0,1) sample from the seeded stream.
func (inj *Injector) roll() float64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.rng.Float64()
}

// jitter draws a duration in (0, d] from the seeded stream.
func (inj *Injector) jitter(d time.Duration) time.Duration {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return time.Duration(inj.rng.Int63n(int64(d))) + 1
}

// exempt lists the endpoints the middleware never faults: probes keep
// answering truthfully (chaos tests routing, not probe hysteresis) and
// metrics stay readable so the harness can assert its envelopes.
func exempt(path string) bool {
	return path == "/healthz" || path == "/readyz" || path == "/metrics"
}

// Middleware wraps an http.Handler with server-side fault injection. A
// nil Injector returns next unchanged.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		if inj.latencyP > 0 && inj.roll() < inj.latencyP {
			select {
			case <-time.After(inj.jitter(inj.latency)):
			case <-r.Context().Done():
				return
			}
		}
		if inj.errorP > 0 && inj.roll() < inj.errorP {
			http.Error(w, `{"error":"chaos: injected fault"}`,
				http.StatusInternalServerError)
			return
		}
		if inj.resetP > 0 && inj.roll() < inj.resetP {
			// ErrAbortHandler drops the connection without a response —
			// the client sees a reset/EOF, exactly a crashed backend.
			panic(http.ErrAbortHandler)
		}
		switch {
		case inj.truncP > 0 && inj.roll() < inj.truncP:
			next.ServeHTTP(&faultWriter{ResponseWriter: w, mode: truncAfterFirst}, r)
		case inj.stallP > 0 && inj.roll() < inj.stallP:
			next.ServeHTTP(&faultWriter{
				ResponseWriter: w, mode: stallAfterFirst,
				stall: inj.jitter(inj.stall), ctx: r.Context(),
			}, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// faultWriter lets the first body write through, then misbehaves: a
// truncating writer aborts the connection (a stream cut mid-payload), a
// stalling writer freezes before the second write (a slow-read backend
// mid-NDJSON).
type faultWriter struct {
	http.ResponseWriter
	mode   faultMode
	stall  time.Duration
	ctx    interface{ Done() <-chan struct{} }
	writes int
}

type faultMode int

const (
	truncAfterFirst faultMode = iota
	stallAfterFirst
)

func (fw *faultWriter) Write(p []byte) (int, error) {
	fw.writes++
	if fw.writes > 1 {
		switch fw.mode {
		case truncAfterFirst:
			panic(http.ErrAbortHandler)
		case stallAfterFirst:
			if fw.stall > 0 {
				select {
				case <-time.After(fw.stall):
				case <-fw.ctx.Done():
				}
				fw.stall = 0 // stall once, not per write
			}
		}
	}
	return fw.ResponseWriter.Write(p)
}

// Flush keeps the wrapped writer streaming-capable — the NDJSON
// endpoint flushes per event, and losing that would serialize the
// stream the chaos run is trying to disturb.
func (fw *faultWriter) Flush() {
	if f, ok := fw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Transport wraps an http.RoundTripper with client-side fault
// injection: latency before the dial, fabricated transport errors
// (error and reset both surface as failed round-trips — the caller
// cannot tell a refused dial from a mid-flight reset, and neither can
// real clients). A nil Injector returns base unchanged.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if inj == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{inj: inj, base: base}
}

type faultTransport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *faultTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if exempt(r.URL.Path) {
		return t.base.RoundTrip(r)
	}
	inj := t.inj
	if inj.latencyP > 0 && inj.roll() < inj.latencyP {
		select {
		case <-time.After(inj.jitter(inj.latency)):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if p := inj.errorP + inj.resetP; p > 0 && inj.roll() < p {
		return nil, fmt.Errorf("chaos: injected connection fault to %s", r.URL.Host)
	}
	return t.base.RoundTrip(r)
}
