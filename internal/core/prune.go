package core

import (
	"cmp"
	"context"
	"slices"
	"time"

	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// pruner prunes a candidate frontier in place according to the active rule.
type pruner struct {
	space *variation.Space
	rule  Rule
	// 2P thresholds; exactMeans is the pbar == 0.5 fast path where the
	// probability order equals the mean order (Lemma 4).
	pbarL, pbarT float64
	exactMeans   bool
	// zL, zT are the standard-normal quantiles of pbarL, pbarT (the t̄ of
	// Theorem 2), cached for the pbar > 0.5 dominance test.
	zL, zT float64
	// 4P quantile z-values precomputed from FourPParams.
	zAlphaL, zAlphaU, zBetaL, zBetaU float64
	// deadline bounds the pairwise 4P prune, which is quadratic and can
	// dwarf the per-node timeout granularity of the engine. Zero means no
	// deadline. timedOut is latched when the deadline fires mid-prune.
	deadline time.Time
	timedOut bool
	// ctx, when non-nil, cancels the 4P prune at the same stride as the
	// deadline check; canceled is latched like timedOut.
	ctx      context.Context
	canceled bool
	// stats sink
	stats *Stats

	// Reusable sort/prune scratch, grown on demand and swapped with the
	// frontier's slices when applying a permutation (no per-prune allocs).
	perm    []int32
	scF64   [4][]float64
	scTerms [2][][]variation.Term
	scRef   []int32
	dead    []bool
}

func newPruner(space *variation.Space, opts Options, st *Stats) *pruner {
	p := &pruner{
		space: space,
		rule:  opts.Rule,
		pbarL: opts.PbarL,
		pbarT: opts.PbarT,
		stats: st,
	}
	p.exactMeans = opts.PbarL == 0.5 && opts.PbarT == 0.5
	if !p.exactMeans {
		p.zL = stats.Quantile(opts.PbarL)
		p.zT = stats.Quantile(opts.PbarT)
	}
	if opts.Rule == Rule4P {
		p.zAlphaL = stats.Quantile(opts.FourP.AlphaL)
		p.zAlphaU = stats.Quantile(opts.FourP.AlphaU)
		p.zBetaL = stats.Quantile(opts.FourP.BetaL)
		p.zBetaU = stats.Quantile(opts.FourP.BetaU)
	}
	return p
}

// needSigmas reports whether frontiers must carry cached standard
// deviations for this pruner.
func (p *pruner) needSigmas() bool {
	return p.rule == Rule4P || !p.exactMeans
}

// sortByMean orders the frontier ascending by mean loading, breaking ties
// by descending mean RAT so that the sweep keeps the better-T candidate of
// a tie first.
//
// The sort runs over an identity permutation with the element comparator,
// then applies the permutation to every parallel slice. slices.SortFunc is
// deterministic given the comparison results, and the comparator depends
// only on the originating candidate, so the resulting order is exactly the
// order the previous []*Candidate layout produced — a bit-identity the
// differential tests pin down.
func (p *pruner) sortByMean(f *frontier) {
	n := f.len()
	if cap(p.perm) < n {
		p.perm = make([]int32, n)
	}
	perm := p.perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	ln, tn := f.ln, f.tn
	slices.SortFunc(perm, func(a, b int32) int {
		if c := cmp.Compare(ln[a], ln[b]); c != 0 {
			return c
		}
		return cmp.Compare(tn[b], tn[a])
	})
	// Apply the permutation by gathering into scratch, then swapping the
	// slice headers — the frontier adopts the scratch backing arrays and
	// the old arrays become next prune's scratch.
	f.ln = p.gatherF64(0, f.ln, perm)
	f.tn = p.gatherF64(1, f.tn, perm)
	if f.sl != nil {
		f.sl = p.gatherF64(2, f.sl, perm)
		f.st = p.gatherF64(3, f.st, perm)
	}
	f.lt = p.gatherTerms(0, f.lt, perm)
	f.tt = p.gatherTerms(1, f.tt, perm)
	if cap(p.scRef) < n {
		p.scRef = make([]int32, n)
	}
	dst := p.scRef[:n]
	for i, j := range perm {
		dst[i] = f.ref[j]
	}
	p.scRef = f.ref[:0]
	f.ref = dst
}

func (p *pruner) gatherF64(slot int, src []float64, perm []int32) []float64 {
	if cap(p.scF64[slot]) < len(perm) {
		p.scF64[slot] = make([]float64, len(perm))
	}
	dst := p.scF64[slot][:len(perm)]
	for i, j := range perm {
		dst[i] = src[j]
	}
	p.scF64[slot] = src[:0]
	return dst
}

func (p *pruner) gatherTerms(slot int, src [][]variation.Term, perm []int32) [][]variation.Term {
	if cap(p.scTerms[slot]) < len(perm) {
		p.scTerms[slot] = make([][]variation.Term, len(perm))
	}
	dst := p.scTerms[slot][:len(perm)]
	for i, j := range perm {
		dst[i] = src[j]
	}
	clear(src) // drop term-slice references so the old backing array pins nothing
	p.scTerms[slot] = src[:0]
	return dst
}

// prune removes dominated candidates in place and returns the surviving
// frontier, sorted ascending by mean L (and, as a consequence of the
// sweep, ascending in mean T).
func (p *pruner) prune(f *frontier) *frontier {
	if f.len() <= 1 {
		return f
	}
	if p.rule == Rule4P {
		p.prune4P(f)
		return f
	}
	p.prune2P(f)
	return f
}

// prune2P is the paper's sweep (§2.3): sort by mean L, then drop every
// candidate some kept candidate dominates. At pbar = 0.5 dominance is
// exactly the mean order (Lemma 4), so testing the last-kept candidate is
// exact and the sweep is the linear deterministic van Ginneken prune
// (Theorem 1). For pbar > 0.5 the kept set is no longer a strict mean
// staircase; a candidate can only be dominated by a kept candidate with a
// strictly larger mean T (Lemma 4 again), so the sweep tests exactly
// those. In practice solutions from the same subtree are highly
// correlated, dominance probabilities are extreme, and the survivors stay
// close to the pbar = 0.5 staircase (§2.3's discussion of Figure 2).
func (p *pruner) prune2P(f *frontier) {
	p.sortByMean(f)
	n := f.len()
	if p.exactMeans {
		// Flat sweep over the T-key slice alone — no term lists, no sigmas.
		// move only writes slots < i, so tn[i] is always unclobbered when
		// read and tn[kept-1] is the last kept candidate.
		tn := f.tn
		kept := 0
		for i := 0; i < n; i++ {
			if kept > 0 && tn[i] <= tn[kept-1] {
				p.stats.Pruned++
				continue
			}
			f.move(kept, i)
			kept++
		}
		f.truncate(kept)
		return
	}
	kept := 0
	for i := 0; i < n; i++ {
		dominated := false
		for k := kept - 1; k >= 0; k-- {
			if f.tn[k] <= f.tn[i] {
				// Cannot dominate at pbar > 0.5 (Lemma 4).
				continue
			}
			if p.dominates2P(f, k, i) {
				dominated = true
				break
			}
		}
		if dominated {
			p.stats.Pruned++
			continue
		}
		f.move(kept, i)
		kept++
	}
	f.truncate(kept)
}

// dominates2P reports whether candidate a dominates candidate b under
// eq. 6–7, assuming meanL(a) <= meanL(b) from the sort. Thresholds are
// tested with >= so that exact duplicates (probability exactly 0.5) are
// treated as redundant. Only meaningful for pbar > 0.5 pruners; the
// exactMeans fast path is inlined in prune2P.
func (p *pruner) dominates2P(f *frontier, a, b int) bool {
	// P(X > Y) >= pbar ⇔ mean gap >= z(pbar)·sigma(X-Y). The exact sigma
	// needs the covariance of the two forms, but sigma(X-Y) is always in
	// [|sx-sy|, sx+sy], giving a certain-yes / certain-no sandwich that
	// usually avoids touching the term lists (the correlation argument of
	// §2.3 / Figure 2: solutions from the same subtree are so correlated
	// that a small mean edge is near-certain dominance).
	if !probAtLeast(f.ln[b]-f.ln[a], f.sl[a], f.sl[b], p.zL, f.lform(a), f.lform(b), p.space) {
		return false
	}
	return probAtLeast(f.tn[a]-f.tn[b], f.st[a], f.st[b], p.zT, f.tform(a), f.tform(b), p.space)
}

// probAtLeast reports whether Phi(gap / sigma(f-g)) >= Phi(z), i.e.
// gap >= z*sigma(f-g), trying the sigma bounds before the exact
// covariance. gap may be any sign; z >= 0.
func probAtLeast(gap, sf, sg, z float64, f, g variation.Form, space *variation.Space) bool {
	if z == 0 {
		return gap >= 0
	}
	if gap < 0 {
		return false
	}
	hi := sf + sg
	if gap >= z*hi {
		return true // certain even at the most pessimistic correlation
	}
	lo := sf - sg
	if lo < 0 {
		lo = -lo
	}
	if gap < z*lo {
		return false // impossible even at the most optimistic correlation
	}
	varDiff := sf*sf + sg*sg - 2*variation.Cov(f, g, space)
	if varDiff <= 0 {
		return true // deterministic positive gap
	}
	return gap*gap >= z*z*varDiff
}

// prune4P is the pairwise partial-order pruning of the 4P rule (§2.2):
// candidate j is removed when some candidate i has its upper loading
// quantile below j's lower loading quantile AND its lower RAT quantile
// above j's upper RAT quantile. This is inherently O(N²), but with the
// SoA layout the quantile quads are computed by four flat passes over
// contiguous float64 slices.
func (p *pruner) prune4P(f *frontier) {
	p.sortByMean(f) // helps locality; correctness does not depend on order
	n := f.len()
	// Quantile bounds, reusing the float64 scratch slots (the sort above
	// left the previous key arrays there).
	lLo := p.gatherQuad(0, f.ln, f.sl, p.zAlphaL)
	lHi := p.gatherQuad(1, f.ln, f.sl, p.zAlphaU)
	tLo := p.gatherQuad(2, f.tn, f.st, p.zBetaL)
	tHi := p.gatherQuad(3, f.tn, f.st, p.zBetaU)
	if cap(p.dead) < n {
		p.dead = make([]bool, n)
	}
	dead := p.dead[:n]
	clear(dead)
	for i := 0; i < n; i++ {
		if dead[i] {
			continue
		}
		if i%64 == 0 {
			if !p.deadline.IsZero() && time.Now().After(p.deadline) {
				p.timedOut = true
				break
			}
			if p.ctx != nil && p.ctx.Err() != nil {
				p.canceled = true
				break
			}
		}
		ilHi, itLo := lHi[i], tLo[i]
		for j := 0; j < n; j++ {
			if i == j || dead[j] {
				continue
			}
			// i dominates j per eq. 2–3.
			if ilHi < lLo[j] && itLo > tHi[j] {
				dead[j] = true
				p.stats.Pruned++
			}
		}
	}
	kept := 0
	for i := 0; i < n; i++ {
		if !dead[i] {
			f.move(kept, i)
			kept++
		}
	}
	f.truncate(kept)
	// The quad arrays borrowed the scratch slots; hand them back so the
	// next sort reuses the capacity.
	p.scF64[0], p.scF64[1], p.scF64[2], p.scF64[3] = lLo[:0], lHi[:0], tLo[:0], tHi[:0]
}

// gatherQuad fills one quantile-bound array nominal + z*sigma in scratch
// slot i, taking the slot's backing array.
func (p *pruner) gatherQuad(slot int, nom, sig []float64, z float64) []float64 {
	if cap(p.scF64[slot]) < len(nom) {
		p.scF64[slot] = make([]float64, len(nom))
	}
	dst := p.scF64[slot][:len(nom)]
	p.scF64[slot] = nil
	for i := range nom {
		dst[i] = nom[i] + z*sig[i]
	}
	return dst
}
