package core

import (
	"cmp"
	"context"
	"slices"
	"time"

	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// pruner prunes a candidate list in place according to the active rule.
type pruner struct {
	space *variation.Space
	rule  Rule
	// 2P thresholds; exactMeans is the pbar == 0.5 fast path where the
	// probability order equals the mean order (Lemma 4).
	pbarL, pbarT float64
	exactMeans   bool
	// zL, zT are the standard-normal quantiles of pbarL, pbarT (the t̄ of
	// Theorem 2), cached for the pbar > 0.5 dominance test.
	zL, zT float64
	// 4P quantile z-values precomputed from FourPParams.
	zAlphaL, zAlphaU, zBetaL, zBetaU float64
	// deadline bounds the pairwise 4P prune, which is quadratic and can
	// dwarf the per-node timeout granularity of the engine. Zero means no
	// deadline. timedOut is latched when the deadline fires mid-prune.
	deadline time.Time
	timedOut bool
	// ctx, when non-nil, cancels the 4P prune at the same stride as the
	// deadline check; canceled is latched like timedOut.
	ctx      context.Context
	canceled bool
	// stats sink
	stats *Stats
}

func newPruner(space *variation.Space, opts Options, st *Stats) *pruner {
	p := &pruner{
		space: space,
		rule:  opts.Rule,
		pbarL: opts.PbarL,
		pbarT: opts.PbarT,
		stats: st,
	}
	p.exactMeans = opts.PbarL == 0.5 && opts.PbarT == 0.5
	if !p.exactMeans {
		p.zL = stats.Quantile(opts.PbarL)
		p.zT = stats.Quantile(opts.PbarT)
	}
	if opts.Rule == Rule4P {
		p.zAlphaL = stats.Quantile(opts.FourP.AlphaL)
		p.zAlphaU = stats.Quantile(opts.FourP.AlphaU)
		p.zBetaL = stats.Quantile(opts.FourP.BetaL)
		p.zBetaU = stats.Quantile(opts.FourP.BetaU)
	}
	return p
}

// needSigmas reports whether candidates must carry cached standard
// deviations for this pruner.
func (p *pruner) needSigmas() bool {
	return p.rule == Rule4P || !p.exactMeans
}

// sortByMean orders candidates ascending by mean loading, breaking ties by
// descending mean RAT so that the sweep keeps the better-T candidate of a
// tie first.
func sortByMean(list []*Candidate) {
	// slices.SortFunc avoids the reflection overhead of sort.Slice — this
	// runs once per merge/prune and shows up in DP profiles.
	slices.SortFunc(list, func(a, b *Candidate) int {
		if c := cmp.Compare(a.L.Nominal, b.L.Nominal); c != 0 {
			return c
		}
		return cmp.Compare(b.T.Nominal, a.T.Nominal)
	})
}

// prune removes dominated candidates and returns the surviving list,
// sorted ascending by mean L (and, as a consequence of the sweep,
// ascending in mean T).
func (p *pruner) prune(list []*Candidate) []*Candidate {
	if len(list) <= 1 {
		return list
	}
	if p.rule == Rule4P {
		return p.prune4P(list)
	}
	return p.prune2P(list)
}

// prune2P is the paper's sweep (§2.3): sort by mean L, then drop every
// candidate some kept candidate dominates. At pbar = 0.5 dominance is
// exactly the mean order (Lemma 4), so testing the last-kept candidate is
// exact and the sweep is the linear deterministic van Ginneken prune
// (Theorem 1). For pbar > 0.5 the kept set is no longer a strict mean
// staircase; a candidate can only be dominated by a kept candidate with a
// strictly larger mean T (Lemma 4 again), so the sweep tests exactly
// those. In practice solutions from the same subtree are highly
// correlated, dominance probabilities are extreme, and the survivors stay
// close to the pbar = 0.5 staircase (§2.3's discussion of Figure 2).
func (p *pruner) prune2P(list []*Candidate) []*Candidate {
	sortByMean(list)
	out := list[:0]
	for _, c := range list {
		if p.exactMeans {
			if n := len(out); n > 0 && p.dominates2P(out[n-1], c) {
				p.stats.Pruned++
				continue
			}
			out = append(out, c)
			continue
		}
		dominated := false
		for i := len(out) - 1; i >= 0; i-- {
			k := out[i]
			if k.T.Nominal <= c.T.Nominal {
				// Cannot dominate at pbar > 0.5 (Lemma 4).
				continue
			}
			if p.dominates2P(k, c) {
				dominated = true
				break
			}
		}
		if dominated {
			p.stats.Pruned++
			continue
		}
		out = append(out, c)
	}
	return out
}

// dominates2P reports whether a dominates b under eq. 6–7, assuming
// a.MeanL <= b.MeanL from the sort. Thresholds are tested with >= so that
// exact duplicates (probability exactly 0.5) are treated as redundant.
func (p *pruner) dominates2P(a, b *Candidate) bool {
	if p.exactMeans {
		// Lemma 4: P(L_a < L_b) >= 0.5 ⇔ mean order; the sort guarantees
		// the L condition, so only the T condition remains.
		return b.T.Nominal <= a.T.Nominal
	}
	// P(X > Y) >= pbar ⇔ mean gap >= z(pbar)·sigma(X-Y). The exact sigma
	// needs the covariance of the two forms, but sigma(X-Y) is always in
	// [|sx-sy|, sx+sy], giving a certain-yes / certain-no sandwich that
	// usually avoids touching the term lists (the correlation argument of
	// §2.3 / Figure 2: solutions from the same subtree are so correlated
	// that a small mean edge is near-certain dominance).
	if !probAtLeast(b.L.Nominal-a.L.Nominal, a.sigmaL, b.sigmaL, p.zL, a.L, b.L, p.space) {
		return false
	}
	return probAtLeast(a.T.Nominal-b.T.Nominal, a.sigmaT, b.sigmaT, p.zT, a.T, b.T, p.space)
}

// probAtLeast reports whether Phi(gap / sigma(f-g)) >= Phi(z), i.e.
// gap >= z*sigma(f-g), trying the sigma bounds before the exact
// covariance. gap may be any sign; z >= 0.
func probAtLeast(gap, sf, sg, z float64, f, g variation.Form, space *variation.Space) bool {
	if z == 0 {
		return gap >= 0
	}
	if gap < 0 {
		return false
	}
	hi := sf + sg
	if gap >= z*hi {
		return true // certain even at the most pessimistic correlation
	}
	lo := sf - sg
	if lo < 0 {
		lo = -lo
	}
	if gap < z*lo {
		return false // impossible even at the most optimistic correlation
	}
	varDiff := sf*sf + sg*sg - 2*variation.Cov(f, g, space)
	if varDiff <= 0 {
		return true // deterministic positive gap
	}
	return gap*gap >= z*z*varDiff
}

// prune4P is the pairwise partial-order pruning of the 4P rule (§2.2):
// candidate j is removed when some candidate i has its upper loading
// quantile below j's lower loading quantile AND its lower RAT quantile
// above j's upper RAT quantile. This is inherently O(N²).
func (p *pruner) prune4P(list []*Candidate) []*Candidate {
	sortByMean(list) // helps locality; correctness does not depend on order
	type quad struct{ lLo, lHi, tLo, tHi float64 }
	qs := make([]quad, len(list))
	for i, c := range list {
		qs[i] = quad{
			lLo: c.L.Nominal + p.zAlphaL*c.sigmaL,
			lHi: c.L.Nominal + p.zAlphaU*c.sigmaL,
			tLo: c.T.Nominal + p.zBetaL*c.sigmaT,
			tHi: c.T.Nominal + p.zBetaU*c.sigmaT,
		}
	}
	dead := make([]bool, len(list))
	for i := range list {
		if dead[i] {
			continue
		}
		if i%64 == 0 {
			if !p.deadline.IsZero() && time.Now().After(p.deadline) {
				p.timedOut = true
				break
			}
			if p.ctx != nil && p.ctx.Err() != nil {
				p.canceled = true
				break
			}
		}
		for j := range list {
			if i == j || dead[j] {
				continue
			}
			// i dominates j per eq. 2–3.
			if qs[i].lHi < qs[j].lLo && qs[i].tLo > qs[j].tHi {
				dead[j] = true
				p.stats.Pruned++
			}
		}
	}
	out := list[:0]
	for i, c := range list {
		if !dead[i] {
			out = append(out, c)
		}
	}
	return out
}
