package core

import (
	"fmt"
	"time"

	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// engine carries the per-run state of the dynamic program.
type engine struct {
	tree    *rctree.Tree
	opts    Options
	space   *variation.Space
	prn     *pruner
	stats   Stats
	maxCand int
	start   time.Time
}

// Insert runs dynamic-programming buffer insertion on the tree and returns
// the chosen assignment together with the root RAT distribution. With a
// nil Options.Model it is exactly the deterministic van Ginneken algorithm
// over B buffer types; with a model it is the variation-aware algorithm of
// §4 under the pruning rule selected in the options.
func Insert(tree *rctree.Tree, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if tree.NumSinks() == 0 {
		return nil, fmt.Errorf("core: tree has no sinks")
	}
	e := &engine{
		tree:    tree,
		opts:    o,
		maxCand: o.MaxCandidates,
		start:   time.Now(),
	}
	if o.Model != nil {
		e.space = o.Model.Space
	} else {
		e.space = variation.NewSpace()
	}
	e.prn = newPruner(e.space, o, &e.stats)
	if o.Timeout > 0 {
		e.prn.deadline = e.start.Add(o.Timeout)
	}

	lists := make([]polarityLists, len(tree.Nodes))
	for _, id := range tree.PostOrder() {
		if o.Timeout > 0 && time.Since(e.start) > o.Timeout {
			return nil, fmt.Errorf("%w after %d nodes", ErrTimeout, e.stats.Nodes)
		}
		node := tree.Node(id)
		var pl polarityLists
		switch node.Kind {
		case rctree.KindSink:
			// A sink must receive the true polarity.
			pl[0] = []*Candidate{e.leaf(id, node)}
		default:
			first := true
			for _, child := range node.Children {
				var wired polarityLists
				for p := 0; p < 2; p++ {
					wired[p] = e.wireUp(id, child, lists[child][p])
				}
				lists[child] = polarityLists{} // release early
				if first {
					pl = wired
					first = false
					continue
				}
				// Subtrees sharing a driving point must require the same
				// polarity; a polarity unavailable on either side dies.
				for p := 0; p < 2; p++ {
					if len(pl[p]) == 0 || len(wired[p]) == 0 {
						pl[p] = nil
						continue
					}
					merged, err := e.merge(id, pl[p], wired[p])
					if err != nil {
						return nil, err
					}
					pl[p] = e.prn.prune(merged)
				}
			}
		}
		if node.BufferOK {
			raw := e.addBuffers(id, node, pl)
			if err := e.checkBudget(len(raw[0]) + len(raw[1])); err != nil {
				return nil, err
			}
			for p := 0; p < 2; p++ {
				pl[p] = e.prn.prune(raw[p])
			}
		}
		if e.prn.timedOut {
			return nil, fmt.Errorf("%w during pruning after %d nodes", ErrTimeout, e.stats.Nodes)
		}
		total := len(pl[0]) + len(pl[1])
		if err := e.checkBudget(total); err != nil {
			return nil, err
		}
		if total > e.stats.PeakList {
			e.stats.PeakList = total
		}
		e.stats.Nodes++
		lists[id] = pl
	}
	return e.selectRoot(lists[tree.Root][0])
}

// polarityLists holds the candidate lists per required signal polarity:
// index 0 is the true signal, index 1 the inverted one. Without inverting
// buffers in the library, list 1 stays empty everywhere and the engine
// behaves exactly as the classic single-list DP.
type polarityLists [2][]*Candidate

// leaf builds the sink candidate (eq. "L = CapLoad, T = RAT").
func (e *engine) leaf(id rctree.NodeID, node *rctree.Node) *Candidate {
	c := &Candidate{
		L:    variation.Const(node.CapLoad),
		T:    variation.Const(node.RAT),
		node: id,
		op:   opLeaf,
	}
	e.stats.Generated++
	return c
}

// wireUp propagates a candidate list along the edge child → parent
// (eq. 25–26 / 33–34). Without wire sizing the transformation is
// order-preserving, so a pruned, sorted input stays pruned and sorted;
// with a wire library every choice is generated and the union pruned.
func (e *engine) wireUp(parent, child rctree.NodeID, list []*Candidate) []*Candidate {
	l := e.tree.Node(child).WireLen
	if l == 0 {
		return list
	}
	if len(e.opts.WireLibrary) == 0 {
		return e.wireChoice(child, list, e.tree.Wire, -1)
	}
	out := make([]*Candidate, 0, len(list)*len(e.opts.WireLibrary))
	for wi, wc := range e.opts.WireLibrary {
		out = append(out, e.wireChoice(child, list, wc.Params, int16(wi))...)
	}
	return e.prn.prune(out)
}

// wireChoice applies one wire option along the edge child → parent. The
// candidate records the child node so backtracking can attribute the
// sizing decision to its edge.
func (e *engine) wireChoice(child rctree.NodeID, list []*Candidate, wp rctree.WireParams, wi int16) []*Candidate {
	l := e.tree.Node(child).WireLen
	halfRC := 0.5 * wp.R * wp.C * l * l
	out := make([]*Candidate, len(list))
	for i, s := range list {
		nc := &Candidate{
			L:    s.L.Shift(wp.C * l),
			T:    s.T.AXPY(-wp.R*l, s.L).Shift(-halfRC),
			node: child,
			op:   opWire,
			wire: wi,
			pred: s,
		}
		if e.prn.needSigmas() {
			nc.fillSigmas(e.space)
		}
		out[i] = nc
	}
	e.stats.Generated += int64(len(list))
	return out
}

// deviation returns the relative device deviation form at a site, or the
// zero form for deterministic runs.
func (e *engine) deviation(id rctree.NodeID, node *rctree.Node) variation.Form {
	if e.opts.Model == nil {
		return variation.Form{}
	}
	return e.opts.Model.Deviation(int(id), node.Loc)
}

// addBuffers augments the polarity lists with one buffered candidate per
// (existing candidate, buffer type) pair (eq. 27–28 / 35–36). Both C_b
// and T_b of a buffer at one site share the same underlying deviation
// (they are driven by the same device's process parameters), per
// eq. 23–24. A non-inverting buffer keeps the candidate's required
// polarity; an inverter flips it.
func (e *engine) addBuffers(id rctree.NodeID, node *rctree.Node, pl polarityLists) polarityLists {
	dev := e.deviation(id, node)
	out := pl
	for bi, b := range e.opts.Library {
		cbForm := variation.Const(b.Cb0).Add(dev.Scale(b.Cb0))
		tbForm := variation.Const(b.Tb0).Add(dev.Scale(b.Tb0))
		for p := 0; p < 2; p++ {
			target := p
			if b.Inverting {
				target = 1 - p
			}
			// Iterate the snapshot lists in pl, never the growing out
			// lists, so buffers do not chain at one position.
			for _, s := range pl[p] {
				// Drive-capability constraint: a buffer may not drive
				// more than its MaxLoad (checked on nominal load).
				if b.MaxLoad > 0 && s.L.Nominal > b.MaxLoad {
					continue
				}
				nc := &Candidate{
					L:    cbForm,
					T:    s.T.Sub(tbForm).AXPY(-b.Rb, s.L),
					node: id,
					op:   opBuffer,
					buf:  int16(bi),
					pred: s,
				}
				if e.prn.needSigmas() {
					nc.fillSigmas(e.space)
				}
				out[target] = append(out[target], nc)
				e.stats.Generated++
			}
		}
	}
	return out
}

// checkBudget enforces the candidate cap.
func (e *engine) checkBudget(n int) error {
	if e.maxCand > 0 && n > e.maxCand {
		return e.capacityErr(n)
	}
	return nil
}

func (e *engine) capacityErr(n int) error {
	total := 0
	if e.tree != nil {
		total = e.tree.Len()
	}
	return fmt.Errorf("%w: %d candidates > limit %d (rule %v, node %d of %d)",
		ErrCapacity, n, e.maxCand, e.opts.Rule, e.stats.Nodes, total)
}

// selectRoot applies the driver delay to every surviving root candidate
// and picks the one maximizing the objective: nominal RAT for
// deterministic runs, the SelectQuantile RAT quantile (e.g. the 95%-yield
// RAT at 0.05) for variation-aware runs.
func (e *engine) selectRoot(rootList []*Candidate) (*Result, error) {
	if len(rootList) == 0 {
		return nil, fmt.Errorf("core: no true-polarity candidates survived to the root" +
			" (an inverter-only library cannot always deliver even inversion counts)")
	}
	deterministic := e.opts.Model == nil
	var best *Candidate
	var bestRAT variation.Form
	bestObj := 0.0
	for _, c := range rootList {
		rat := c.T.AXPY(-e.tree.DriverR, c.L)
		obj := rat.Nominal
		if !deterministic {
			obj = rat.Quantile(e.opts.SelectQuantile, e.space)
		}
		if best == nil || obj > bestObj {
			best = c
			bestObj = obj
			bestRAT = rat
		}
	}
	assignment := make(map[rctree.NodeID]int)
	var wires map[rctree.NodeID]int
	if len(e.opts.WireLibrary) > 0 {
		wires = make(map[rctree.NodeID]int)
	}
	best.collectDecisions(assignment, wires)
	e.stats.Elapsed = time.Since(e.start)
	return &Result{
		Assignment:     assignment,
		WireAssignment: wires,
		RAT:            bestRAT,
		Mean:           bestRAT.Nominal,
		Sigma:          bestRAT.Sigma(e.space),
		Objective:      bestObj,
		NumBuffers:     len(assignment),
		RootCandidates: len(rootList),
		Stats:          e.stats,
	}, nil
}
