package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// engine carries the per-run shared state of the dynamic program: the
// immutable inputs (tree, options, precomputed site deviations) plus the
// synchronization needed when subtrees are processed concurrently.
type engine struct {
	tree    *rctree.Tree
	opts    Options
	space   *variation.Space
	ctx     context.Context
	maxCand int
	start   time.Time
	// hull routes buffering through the convex-hull kernel (hull.go).
	// Resolved once per run: HullBuffering != off and a 2P-family rule
	// (the 4P partial order has no per-type single-survivor property).
	hull bool
	// dev holds the precomputed device deviation form per buffer site.
	// Model.Deviation allocates sources lazily and is not goroutine-safe,
	// so the engine resolves every site up front — in post order, the same
	// source-allocation order as the serial engine, keeping SourceIDs (and
	// therefore every term-merge order) bit-identical.
	dev []variation.Form

	// prov is the shared provenance arena all workers append into.
	prov provArena

	// Subtree-cache state (nil/empty when Options.SubtreeCache is unset):
	// fps[id] is the canonical fingerprint of the subtree rooted at id,
	// subSize[id] its node count, cacheMin the eligibility floor.
	cache    *SubtreeCache
	fps      []subtreeKey
	subSize  []int32
	cacheMin int

	// sem holds the spawn tokens for extra DP workers (nil = serial).
	sem chan struct{}
	// abort flips on the first failure so sibling workers stop early.
	abort atomic.Bool

	mu      sync.Mutex
	stats   Stats
	err     error // first real failure (never errAborted)
	arenas  []*variation.Arena
	replays []*cachedList
}

// worker is the per-goroutine state of the DP: private stats, pruner,
// provenance writer, and term arena, merged into the engine when the
// worker retires. The serial engine is simply a run with one worker.
type worker struct {
	eng   *engine
	stats Stats
	prn   *pruner
	prov  provWriter
	terms *variation.Arena
	hull  hullScratch
}

// errAborted is the sentinel a worker returns when it stops because a
// sibling already failed; Insert resolves it to the first real error.
var errAborted = errors.New("core: aborted by concurrent failure")

// Insert runs dynamic-programming buffer insertion on the tree and returns
// the chosen assignment together with the root RAT distribution. With a
// nil Options.Model it is exactly the deterministic van Ginneken algorithm
// over B buffer types; with a model it is the variation-aware algorithm of
// §4 under the pruning rule selected in the options.
//
// Independent subtrees are processed by up to Options.Parallelism workers;
// the returned result is bit-identical for every parallelism level. Trees
// below Options.MinParallelNodes run serially regardless — on small trees
// the spawn/retire overhead costs more than the subtree concurrency wins.
func Insert(tree *rctree.Tree, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if tree.NumSinks() == 0 {
		return nil, fmt.Errorf("core: tree has no sinks")
	}
	minPar := o.MinParallelNodes
	if minPar == 0 {
		minPar = DefaultMinParallelNodes
	}
	if o.Parallelism > 1 && tree.Len() < minPar {
		o.Parallelism = 1
	}
	e := &engine{
		tree:    tree,
		opts:    o,
		ctx:     o.Context,
		maxCand: o.MaxCandidates,
		start:   time.Now(),
		hull:    o.HullBuffering != HullOff && o.Rule != Rule4P,
	}
	if o.Model != nil {
		e.space = o.Model.Space
		e.dev = make([]variation.Form, tree.Len())
		for _, id := range tree.PostOrder() {
			if n := tree.Node(id); n.BufferOK {
				e.dev[id] = o.Model.Deviation(int(id), n.Loc)
			}
		}
	} else {
		e.space = variation.NewSpace()
	}
	if o.SubtreeCache != nil {
		e.cache = o.SubtreeCache
		e.cacheMin = o.SubtreeCacheMinNodes
		if e.cacheMin <= 0 {
			e.cacheMin = DefaultSubtreeCacheMinNodes
		}
		e.fps, e.subSize = subtreeFingerprints(tree, &o)
	}
	if o.Parallelism > 1 {
		e.sem = make(chan struct{}, o.Parallelism-1)
	}

	w := e.newWorker()
	rootLists, err := w.dp(tree.Root)
	e.retire(w)
	if err != nil {
		if errors.Is(err, errAborted) {
			err = e.firstErr()
		}
		e.release()
		return nil, err
	}
	res, err := e.selectRoot(rootLists[0])
	e.release()
	return res, err
}

// newWorker creates a DP worker with private stats, pruner, and arenas.
func (e *engine) newWorker() *worker {
	w := &worker{eng: e, terms: variation.NewArena()}
	w.prov = provWriter{pa: &e.prov}
	w.prn = newPruner(e.space, e.opts, &w.stats)
	if e.opts.Timeout > 0 {
		w.prn.deadline = e.start.Add(e.opts.Timeout)
	}
	w.prn.ctx = e.ctx
	e.mu.Lock()
	e.arenas = append(e.arenas, w.terms)
	e.mu.Unlock()
	return w
}

// retire folds a worker's counters into the run totals. Sums and maxima
// commute, so the merge order does not affect the reported stats.
func (e *engine) retire(w *worker) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats.Generated += w.stats.Generated
	e.stats.Pruned += w.stats.Pruned
	e.stats.Merges += w.stats.Merges
	e.stats.Nodes += w.stats.Nodes
	if w.stats.PeakList > e.stats.PeakList {
		e.stats.PeakList = w.stats.PeakList
	}
	e.stats.Workers++
	e.stats.ArenaCandidates += w.prov.count
	e.stats.ArenaTerms += w.terms.Terms()
	e.stats.ArenaBytes += w.terms.Bytes()
	e.stats.ArenaUsedBytes += w.terms.UsedBytes()
	e.stats.SubtreeHits += w.stats.SubtreeHits
	e.stats.SubtreeMisses += w.stats.SubtreeMisses
	e.stats.SubtreeStores += w.stats.SubtreeStores
	e.stats.HullSites += w.stats.HullSites
	e.stats.HullSkipped += w.stats.HullSkipped
	e.stats.HullFallbacks += w.stats.HullFallbacks
	if w.stats.HullPeak > e.stats.HullPeak {
		e.stats.HullPeak = w.stats.HullPeak
	}
}

// release returns every term arena's slabs to the shared pool. Only legal
// once nothing can touch a candidate form again (Result detaches its RAT
// with Clone in selectRoot, and subtree-cache entries deep-copy their
// terms when stored).
func (e *engine) release() {
	e.mu.Lock()
	arenas := e.arenas
	e.arenas = nil
	e.mu.Unlock()
	for _, a := range arenas {
		a.Release()
	}
}

// fail records the first real failure and flips the abort flag so sibling
// workers wind down at their next node.
func (e *engine) fail(err error) error {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	e.abort.Store(true)
	return err
}

func (e *engine) firstErr() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return e.err
	}
	return errAborted
}

// addReplay registers a restored cache list for decision replay and
// returns its table index (stored in opCached provenance records).
func (e *engine) addReplay(cl *cachedList) int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.replays = append(e.replays, cl)
	return int32(len(e.replays) - 1)
}

// replayEntry resolves a replay-table index written by addReplay.
func (e *engine) replayEntry(idx int32) *cachedList {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replays[idx]
}

// dp computes the candidate frontiers of the subtree rooted at id, going
// through the subtree cache when the node is eligible. Per-node abort,
// timeout, and cancellation checks happen here so every node pays them
// exactly once, cached or not.
func (w *worker) dp(id rctree.NodeID) (polarityLists, error) {
	e := w.eng
	if e.abort.Load() {
		return polarityLists{}, errAborted
	}
	if e.opts.Timeout > 0 && time.Since(e.start) > e.opts.Timeout {
		return polarityLists{}, e.fail(fmt.Errorf("%w after %d nodes", ErrTimeout, w.stats.Nodes))
	}
	if e.ctx != nil {
		if cerr := e.ctx.Err(); cerr != nil {
			return polarityLists{}, e.fail(fmt.Errorf("%w after %d nodes: %v", ErrCanceled, w.stats.Nodes, cerr))
		}
	}
	if e.fps != nil && e.subSize[id] >= int32(e.cacheMin) {
		if ent := e.cache.lookup(e.fps[id]); ent != nil {
			w.stats.SubtreeHits++
			pl := w.restoreCached(id, ent)
			if total := pl[0].len() + pl[1].len(); total > w.stats.PeakList {
				w.stats.PeakList = total
			}
			w.stats.Nodes++
			return pl, nil
		}
		w.stats.SubtreeMisses++
		pl, err := w.dpCompute(id)
		if err == nil && e.storeSubtree(id, pl) {
			w.stats.SubtreeStores++
		}
		return pl, err
	}
	return w.dpCompute(id)
}

// dpCompute is the uncached DP step at one node. Children of multi-child
// nodes are DP'd concurrently when spawn tokens are available; the fold
// over child results always runs on this worker in child order, so the
// generated candidate sequence — and with it every sort, prune, and
// merge — matches the serial engine exactly.
func (w *worker) dpCompute(id rctree.NodeID) (polarityLists, error) {
	e := w.eng
	node := e.tree.Node(id)
	var pl polarityLists
	switch node.Kind {
	case rctree.KindSink:
		// A sink must receive the true polarity.
		pl[0] = w.leaf(id, node)
	default:
		kids := node.Children
		sub := make([]polarityLists, len(kids))
		errs := make([]error, len(kids))
		if e.sem != nil && len(kids) > 1 {
			// Fan out: children beyond the first run on spawned workers
			// when tokens are free; the rest run inline on this worker.
			var wg sync.WaitGroup
			inline := make([]int, 0, len(kids))
			inline = append(inline, 0)
			for i := 1; i < len(kids); i++ {
				select {
				case e.sem <- struct{}{}:
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						defer func() { <-e.sem }()
						cw := e.newWorker()
						sub[i], errs[i] = cw.dp(kids[i])
						e.retire(cw)
					}(i)
				default:
					inline = append(inline, i)
				}
			}
			for _, i := range inline {
				sub[i], errs[i] = w.dp(kids[i])
			}
			wg.Wait()
		} else {
			for i, child := range kids {
				sub[i], errs[i] = w.dp(child)
				if errs[i] != nil {
					break
				}
			}
		}
		for _, err := range errs {
			if err != nil {
				return polarityLists{}, err
			}
		}
		// Join: wire each subtree up to this node and merge in child
		// order — the same operation sequence as the serial engine.
		for i, child := range kids {
			var wired polarityLists
			for p := 0; p < 2; p++ {
				wired[p] = w.wireUp(id, child, sub[i][p])
			}
			sub[i] = polarityLists{} // release early
			if i == 0 {
				pl = wired
				continue
			}
			// Subtrees sharing a driving point must require the same
			// polarity; a polarity unavailable on either side dies.
			for p := 0; p < 2; p++ {
				if pl[p].len() == 0 || wired[p].len() == 0 {
					pl[p] = nil
					continue
				}
				merged, err := w.merge(id, pl[p], wired[p])
				if err != nil {
					return polarityLists{}, e.fail(err)
				}
				pl[p] = w.prn.prune(merged)
			}
		}
	}
	if node.BufferOK {
		raw := w.addBuffers(id, node, pl)
		if err := w.checkBudget(raw[0].len() + raw[1].len()); err != nil {
			return polarityLists{}, e.fail(err)
		}
		for p := 0; p < 2; p++ {
			if raw[p] != nil {
				pl[p] = w.prn.prune(raw[p])
			} else {
				pl[p] = nil
			}
		}
	}
	if w.prn.timedOut {
		return polarityLists{}, e.fail(fmt.Errorf("%w during pruning after %d nodes", ErrTimeout, w.stats.Nodes))
	}
	if w.prn.canceled {
		return polarityLists{}, e.fail(fmt.Errorf("%w during pruning after %d nodes", ErrCanceled, w.stats.Nodes))
	}
	total := pl[0].len() + pl[1].len()
	if err := w.checkBudget(total); err != nil {
		return polarityLists{}, e.fail(err)
	}
	if total > w.stats.PeakList {
		w.stats.PeakList = total
	}
	w.stats.Nodes++
	return pl, nil
}

// leaf builds the sink frontier (eq. "L = CapLoad, T = RAT").
func (w *worker) leaf(id rctree.NodeID, node *rctree.Node) *frontier {
	f := newFrontier(1, w.prn.needSigmas())
	ref := w.prov.alloc(prov{pred: -1, pred2: -1, node: id, aux: -1, op: opLeaf})
	f.push(variation.Const(node.CapLoad), variation.Const(node.RAT), ref, w.eng.space)
	w.stats.Generated++
	return f
}

// wireUp propagates a candidate frontier along the edge child → parent
// (eq. 25–26 / 33–34). Without wire sizing the transformation is
// order-preserving, so a pruned, sorted input stays pruned and sorted;
// with a wire library every choice is generated and the union pruned.
func (w *worker) wireUp(parent, child rctree.NodeID, f *frontier) *frontier {
	l := w.eng.tree.Node(child).WireLen
	if l == 0 {
		return f
	}
	if len(w.eng.opts.WireLibrary) == 0 {
		out := newFrontier(f.len(), w.prn.needSigmas())
		w.wireChoice(out, child, f, w.eng.tree.Wire, -1)
		return out
	}
	out := newFrontier(f.len()*len(w.eng.opts.WireLibrary), w.prn.needSigmas())
	for wi, wc := range w.eng.opts.WireLibrary {
		w.wireChoice(out, child, f, wc.Params, int32(wi))
	}
	return w.prn.prune(out)
}

// wireChoice applies one wire option along the edge child → parent,
// appending to out. The provenance records the child node so backtracking
// can attribute the sizing decision to its edge.
func (w *worker) wireChoice(out *frontier, child rctree.NodeID, f *frontier, wp rctree.WireParams, wi int32) {
	l := w.eng.tree.Node(child).WireLen
	halfRC := 0.5 * wp.R * wp.C * l * l
	n := f.len()
	for i := 0; i < n; i++ {
		sL := f.lform(i)
		nl := sL.Shift(wp.C * l)
		nt := f.tform(i).AXPYIn(w.terms, -wp.R*l, sL).Shift(-halfRC)
		ref := w.prov.alloc(prov{pred: f.ref[i], pred2: -1, node: child, aux: wi, op: opWire})
		out.push(nl, nt, ref, w.eng.space)
	}
	w.stats.Generated += int64(n)
}

// deviation returns the relative device deviation form at a site, or the
// zero form for deterministic runs. Sites were resolved up front, so this
// never touches the model.
func (e *engine) deviation(id rctree.NodeID) variation.Form {
	if e.dev == nil {
		return variation.Form{}
	}
	return e.dev[id]
}

// addBuffers augments the polarity frontiers with buffered candidates at
// a legal site, dispatching between the exact per-pair generator and the
// convex-hull kernel (hull.go). Both paths produce frontiers whose
// surviving candidates are bit-identical after the prune.
func (w *worker) addBuffers(id rctree.NodeID, node *rctree.Node, pl polarityLists) polarityLists {
	if w.eng.hull {
		return w.addBuffersHull(id, node, pl)
	}
	return w.addBuffersExact(id, node, pl)
}

// addBuffersExact augments the polarity frontiers with one buffered
// candidate per (existing candidate, buffer type) pair (eq. 27–28 /
// 35–36). Both C_b and T_b of a buffer at one site share the same
// underlying deviation (they are driven by the same device's process
// parameters), per eq. 23–24. A non-inverting buffer keeps the
// candidate's required polarity; an inverter flips it.
//
// Drive-capability semantics: MaxLoad is compared against the
// candidate's *nominal* downstream load only. Under variation the true
// load is a distribution (L = ln ± σ), and a buffer is considered able
// to drive any candidate whose mean load fits — load σ is deliberately
// ignored, mirroring the deterministic library characterization the
// MaxLoad figure comes from. A yield-aware drive check (e.g. nominal +
// k·σ ≤ MaxLoad) would be a semantic change to the DP's feasible set;
// TestMaxLoadNominalSemantics pins the current behavior. The hull
// kernel applies the identical gate.
func (w *worker) addBuffersExact(id rctree.NodeID, node *rctree.Node, pl polarityLists) polarityLists {
	dev := w.eng.deviation(id)
	out := pl
	// Snapshot the input lengths: buffered candidates are appended to the
	// same frontiers but must never be buffered again at this node.
	n0 := [2]int{pl[0].len(), pl[1].len()}
	for bi, b := range w.eng.opts.Library {
		cbForm := dev.ScaleIn(w.terms, b.Cb0).Shift(b.Cb0)
		tbForm := dev.ScaleIn(w.terms, b.Tb0).Shift(b.Tb0)
		for p := 0; p < 2; p++ {
			target := p
			if b.Inverting {
				target = 1 - p
			}
			src := pl[p]
			for i := 0; i < n0[p]; i++ {
				// Drive-capability constraint: a buffer may not drive
				// more than its MaxLoad (checked on nominal load).
				if b.MaxLoad > 0 && src.ln[i] > b.MaxLoad {
					continue
				}
				sT := src.tform(i)
				nt := sT.SubIn(w.terms, tbForm).AXPYIn(w.terms, -b.Rb, src.lform(i))
				ref := w.prov.alloc(prov{pred: src.ref[i], pred2: -1, node: id, aux: int32(bi), op: opBuffer})
				if out[target] == nil {
					out[target] = newFrontier(n0[p], w.prn.needSigmas())
				}
				out[target].push(cbForm, nt, ref, w.eng.space)
				w.stats.Generated++
			}
		}
	}
	return out
}

// checkBudget enforces the candidate cap.
func (w *worker) checkBudget(n int) error {
	if w.eng.maxCand > 0 && n > w.eng.maxCand {
		return w.capacityErr(n)
	}
	return nil
}

func (w *worker) capacityErr(n int) error {
	total := 0
	if w.eng.tree != nil {
		total = w.eng.tree.Len()
	}
	return fmt.Errorf("%w: %d candidates > limit %d (rule %v, node %d of %d)",
		ErrCapacity, n, w.eng.maxCand, w.eng.opts.Rule, w.stats.Nodes, total)
}

// selectRoot applies the driver delay to every surviving root candidate
// and picks the one maximizing the objective: nominal RAT for
// deterministic runs, the SelectQuantile RAT quantile (e.g. the 95%-yield
// RAT at 0.05) for variation-aware runs.
func (e *engine) selectRoot(rootList *frontier) (*Result, error) {
	if rootList.len() == 0 {
		return nil, fmt.Errorf("core: no true-polarity candidates survived to the root" +
			" (an inverter-only library cannot always deliver even inversion counts)")
	}
	deterministic := e.opts.Model == nil
	best := -1
	var bestRAT variation.Form
	bestObj := 0.0
	for i := 0; i < rootList.len(); i++ {
		rat := rootList.tform(i).AXPY(-e.tree.DriverR, rootList.lform(i))
		obj := rat.Nominal
		if !deterministic {
			obj = rat.Quantile(e.opts.SelectQuantile, e.space)
		}
		if best < 0 || obj > bestObj {
			best = i
			bestObj = obj
			bestRAT = rat
		}
	}
	assignment := make(map[rctree.NodeID]int)
	var wires map[rctree.NodeID]int
	if len(e.opts.WireLibrary) > 0 {
		wires = make(map[rctree.NodeID]int)
	}
	e.collectDecisions(rootList.ref[best], assignment, wires)
	e.stats.Elapsed = time.Since(e.start)
	// Detach the RAT from the (pooled) term arenas before they are
	// released: the fast path of AXPY can alias a candidate's terms.
	bestRAT = bestRAT.Clone()
	return &Result{
		Assignment:     assignment,
		WireAssignment: wires,
		RAT:            bestRAT,
		Mean:           bestRAT.Nominal,
		Sigma:          bestRAT.Sigma(e.space),
		Objective:      bestObj,
		NumBuffers:     len(assignment),
		RootCandidates: rootList.len(),
		Stats:          e.stats,
	}, nil
}
