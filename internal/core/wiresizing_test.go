package core

import (
	"math"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
	"vabuf/internal/yield"
)

// bruteForceSized enumerates every (buffer, wire) assignment on a tiny
// tree and returns the best nominal root RAT.
func bruteForceSized(t *testing.T, tree *rctree.Tree, lib device.Library, wlib []rctree.WireChoice) float64 {
	t.Helper()
	var positions, edges []rctree.NodeID
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if n.BufferOK {
			positions = append(positions, n.ID)
		}
		if n.ID != tree.Root && n.WireLen > 0 {
			edges = append(edges, n.ID)
		}
	}
	bufChoices := len(lib) + 1
	total := 1
	for range positions {
		total *= bufChoices
	}
	for range edges {
		total *= len(wlib)
	}
	if total > 1<<22 {
		t.Fatalf("sized brute force space too large: %d", total)
	}
	best := math.Inf(-1)
	bufs := make(rctree.Assignment)
	wires := make(rctree.WireAssignment)
	for code := 0; code < total; code++ {
		clear(bufs)
		clear(wires)
		c := code
		for _, pos := range positions {
			pick := c % bufChoices
			c /= bufChoices
			if pick > 0 {
				b := lib[pick-1]
				bufs[pos] = rctree.BufferValues{C: b.Cb0, T: b.Tb0, R: b.Rb}
			}
		}
		for _, e := range edges {
			wires[e] = wlib[c%len(wlib)].Params
			c /= len(wlib)
		}
		ev, err := rctree.EvaluateSized(tree, bufs, wires)
		if err != nil {
			t.Fatal(err)
		}
		if ev.RootRAT > best {
			best = ev.RootRAT
		}
	}
	return best
}

func TestWireSizingMatchesBruteForce(t *testing.T) {
	lib := smallLib()[:1]
	wlib := rctree.DefaultWireLibrary()[:2]
	for _, seed := range []int64{1, 2, 3} {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 3, Seed: seed, DieSide: 6000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Insert(tr, Options{Library: lib, WireLibrary: wlib})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceSized(t, tr, lib, wlib)
		if math.Abs(res.Mean-want) > 1e-9 {
			t.Errorf("seed %d: DP sized RAT %.6f != brute force %.6f", seed, res.Mean, want)
		}
	}
}

func TestWireSizingNeverHurts(t *testing.T) {
	// The wire library contains the tree default (w1), so enabling wire
	// sizing can only improve the deterministic optimum.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 60, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	fixed, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	sized, err := Insert(tr, Options{Library: lib, WireLibrary: rctree.DefaultWireLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	if sized.Mean < fixed.Mean-1e-9 {
		t.Errorf("wire sizing made things worse: %.3f vs %.3f", sized.Mean, fixed.Mean)
	}
	if sized.WireAssignment == nil {
		t.Fatal("no wire assignment returned")
	}
	if fixed.WireAssignment != nil {
		t.Error("fixed-wire run returned a wire assignment")
	}
	// Every positive-length non-root edge got a sizing decision.
	for i := range tr.Nodes {
		n := &tr.Nodes[i]
		if n.ID == tr.Root || n.WireLen == 0 {
			continue
		}
		if _, ok := sized.WireAssignment[n.ID]; !ok {
			t.Fatalf("edge of node %d missing from wire assignment", n.ID)
		}
	}
}

func TestWireSizingReEvaluates(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 40, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	wlib := rctree.DefaultWireLibrary()
	res, err := Insert(tr, Options{Library: lib, WireLibrary: wlib})
	if err != nil {
		t.Fatal(err)
	}
	wires := make(rctree.WireAssignment, len(res.WireAssignment))
	for id, wi := range res.WireAssignment {
		wires[id] = wlib[wi].Params
	}
	ev, err := rctree.EvaluateSized(tr, nominalAssignment(lib, res.Assignment), wires)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.RootRAT-res.Mean) > 1e-6 {
		t.Errorf("sized assignment re-evaluates to %.4f, DP said %.4f", ev.RootRAT, res.Mean)
	}
}

func TestWireSizingStatisticalConsistency(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 25, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	wlib := rctree.DefaultWireLibrary()
	res, err := Insert(tr, Options{Library: lib, Model: model, WireLibrary: wlib})
	if err != nil {
		t.Fatal(err)
	}
	wires := make(rctree.WireAssignment, len(res.WireAssignment))
	for id, wi := range res.WireAssignment {
		wires[id] = wlib[wi].Params
	}
	rat, err := yield.PropagateSized(tr, lib, res.Assignment, wires, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rat.Nominal-res.Mean) > 1e-6 {
		t.Errorf("propagated mean %.4f != DP %.4f", rat.Nominal, res.Mean)
	}
	if math.Abs(rat.Sigma(model.Space)-res.Sigma) > 1e-6 {
		t.Errorf("propagated sigma %.4f != DP %.4f", rat.Sigma(model.Space), res.Sigma)
	}
	// Monte Carlo on the sized design agrees with the canonical model.
	samples, err := yield.MonteCarloSized(tr, lib, res.Assignment, wires, model, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if math.Abs(mean-res.Mean) > 0.01*math.Abs(res.Mean) {
		t.Errorf("MC mean %.2f vs model %.2f", mean, res.Mean)
	}
}

func TestMaxLoadConstraint(t *testing.T) {
	// A buffer with a tight MaxLoad must never appear where the downstream
	// load exceeds it.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 30, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	lib := device.Library{
		{Name: "weak", Cb0: 1, Tb0: 20, Rb: 0.8, MaxLoad: 30},
		{Name: "strong", Cb0: 4, Tb0: 20, Rb: 0.1},
	}
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive the load each buffer drives by evaluating the subtree it
	// owns: walk the tree bottom-up exactly as Evaluate does and record
	// the load at each buffered node just before the buffer op.
	loads := bufferInputLoads(t, tr, lib, res.Assignment)
	for id, bi := range res.Assignment {
		if lib[bi].MaxLoad > 0 && loads[id] > lib[bi].MaxLoad+1e-9 {
			t.Errorf("buffer %q at node %d drives %.2f fF > MaxLoad %.2f",
				lib[bi].Name, id, loads[id], lib[bi].MaxLoad)
		}
	}
	// The constrained weak buffer is cheap (small Cb): without the
	// constraint it would be used heavily; make sure the run still
	// inserted buffers at all.
	if res.NumBuffers == 0 {
		t.Fatal("no buffers inserted")
	}
	// An infeasibly constrained library falls back to the strong type or
	// no buffering rather than erroring.
	allWeak := device.Library{{Name: "w", Cb0: 1, Tb0: 20, Rb: 0.8, MaxLoad: 0.5}}
	res2, err := Insert(tr, Options{Library: allWeak})
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumBuffers != 0 {
		t.Errorf("infeasible MaxLoad still inserted %d buffers", res2.NumBuffers)
	}
}

// bufferInputLoads computes the downstream load seen by each buffer in
// the assignment.
func bufferInputLoads(t *testing.T, tr *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int) map[rctree.NodeID]float64 {
	t.Helper()
	loads := make(map[rctree.NodeID]float64, len(assign))
	type lt struct{ L float64 }
	vals := make([]lt, tr.Len())
	for _, id := range tr.PostOrder() {
		n := tr.Node(id)
		var cur lt
		switch n.Kind {
		case rctree.KindSink:
			cur = lt{L: n.CapLoad}
		default:
			for _, cid := range n.Children {
				c := tr.Node(cid)
				child := vals[cid]
				child.L += tr.Wire.C * c.WireLen
				cur.L += child.L
			}
		}
		if bi, ok := assign[id]; ok {
			loads[id] = cur.L
			cur = lt{L: lib[bi].Cb0}
		}
		vals[id] = cur
	}
	return loads
}

func TestWireSizingOptionsValidation(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []rctree.WireChoice{{Name: "x", Params: rctree.WireParams{R: 0, C: 1}}}
	if _, err := Insert(tr, Options{Library: smallLib(), WireLibrary: bad}); err == nil {
		t.Error("invalid wire library accepted")
	}
}
