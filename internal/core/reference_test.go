package core

import (
	"cmp"
	"fmt"
	"math"
	"reflect"
	"slices"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
)

// This file implements a deliberately naive array-of-structs reference
// engine — heap-allocated forms, one struct per candidate, pointer-based
// provenance — mirroring the layout the production engine used before the
// struct-of-arrays rewrite. The differential test below runs both engines
// over a corpus of trees and configurations and asserts bit-identical
// results: same assignments, same RAT down to the float bits, same counter
// values. Any divergence in operation order, sort stability, or arena
// arithmetic in the SoA engine shows up here as a failed float comparison.

// refCand is the AoS candidate: forms on the heap, provenance by pointer.
type refCand struct {
	L, T        variation.Form
	op          opKind
	node        rctree.NodeID
	aux         int32
	pred, pred2 *refCand
}

type refEngine struct {
	tree  *rctree.Tree
	opts  Options
	space *variation.Space
	dev   []variation.Form
	stats Stats

	exactMeans         bool
	zL, zT             float64
	zAL, zAU, zBL, zBU float64
}

// refInsert is the reference entry point: a serial DP over []*refCand
// lists with the exact floating-point expressions of the SoA engine.
func refInsert(tr *rctree.Tree, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &refEngine{tree: tr, opts: o}
	if o.Model != nil {
		e.space = o.Model.Space
		e.dev = make([]variation.Form, tr.Len())
		for _, id := range tr.PostOrder() {
			if n := tr.Node(id); n.BufferOK {
				e.dev[id] = o.Model.Deviation(int(id), n.Loc)
			}
		}
	} else {
		e.space = variation.NewSpace()
	}
	e.exactMeans = o.PbarL == 0.5 && o.PbarT == 0.5
	if !e.exactMeans {
		e.zL = stats.Quantile(o.PbarL)
		e.zT = stats.Quantile(o.PbarT)
	}
	if o.Rule == Rule4P {
		e.zAL = stats.Quantile(o.FourP.AlphaL)
		e.zAU = stats.Quantile(o.FourP.AlphaU)
		e.zBL = stats.Quantile(o.FourP.BetaL)
		e.zBU = stats.Quantile(o.FourP.BetaU)
	}
	pl := e.dp(tr.Root)
	return e.selectRoot(pl[0])
}

func (e *refEngine) dp(id rctree.NodeID) [2][]*refCand {
	node := e.tree.Node(id)
	var pl [2][]*refCand
	if node.Kind == rctree.KindSink {
		e.stats.Generated++
		pl[0] = []*refCand{{
			L: variation.Const(node.CapLoad), T: variation.Const(node.RAT),
			op: opLeaf, node: id, aux: -1,
		}}
	} else {
		for i, child := range node.Children {
			sub := e.dp(child)
			var wired [2][]*refCand
			for p := 0; p < 2; p++ {
				wired[p] = e.wireUp(child, sub[p])
			}
			if i == 0 {
				pl = wired
				continue
			}
			for p := 0; p < 2; p++ {
				if len(pl[p]) == 0 || len(wired[p]) == 0 {
					pl[p] = nil
					continue
				}
				pl[p] = e.prune(e.merge(id, pl[p], wired[p]))
			}
		}
	}
	if node.BufferOK {
		var dev variation.Form
		if e.dev != nil {
			dev = e.dev[id]
		}
		out := pl
		n0 := [2]int{len(pl[0]), len(pl[1])}
		for bi, b := range e.opts.Library {
			cb := dev.Scale(b.Cb0).Shift(b.Cb0)
			tb := dev.Scale(b.Tb0).Shift(b.Tb0)
			for p := 0; p < 2; p++ {
				target := p
				if b.Inverting {
					target = 1 - p
				}
				src := pl[p]
				for i := 0; i < n0[p]; i++ {
					c := src[i]
					if b.MaxLoad > 0 && c.L.Nominal > b.MaxLoad {
						continue
					}
					nt := c.T.Sub(tb).AXPY(-b.Rb, c.L)
					out[target] = append(out[target], &refCand{
						L: cb, T: nt, op: opBuffer, node: id, aux: int32(bi), pred: c,
					})
					e.stats.Generated++
				}
			}
		}
		for p := 0; p < 2; p++ {
			pl[p] = e.prune(out[p])
		}
	}
	if total := len(pl[0]) + len(pl[1]); total > e.stats.PeakList {
		e.stats.PeakList = total
	}
	e.stats.Nodes++
	return pl
}

func (e *refEngine) wireUp(child rctree.NodeID, list []*refCand) []*refCand {
	l := e.tree.Node(child).WireLen
	if l == 0 {
		return list
	}
	if len(e.opts.WireLibrary) == 0 {
		return e.wireChoice(nil, child, list, e.tree.Wire, -1)
	}
	var out []*refCand
	for wi, wc := range e.opts.WireLibrary {
		out = e.wireChoice(out, child, list, wc.Params, int32(wi))
	}
	return e.prune(out)
}

func (e *refEngine) wireChoice(out []*refCand, child rctree.NodeID, list []*refCand, wp rctree.WireParams, wi int32) []*refCand {
	l := e.tree.Node(child).WireLen
	halfRC := 0.5 * wp.R * wp.C * l * l
	for _, c := range list {
		out = append(out, &refCand{
			L:  c.L.Shift(wp.C * l),
			T:  c.T.AXPY(-wp.R*l, c.L).Shift(-halfRC),
			op: opWire, node: child, aux: wi, pred: c,
		})
	}
	e.stats.Generated += int64(len(list))
	return out
}

func (e *refEngine) merge(node rctree.NodeID, a, b []*refCand) []*refCand {
	mk := func(x, y *refCand) *refCand {
		t := variation.Min(x.T, y.T, e.space).Form
		e.stats.Generated++
		return &refCand{L: x.L.Add(y.L), T: t, op: opMerge, node: node, pred: x, pred2: y}
	}
	var out []*refCand
	if e.opts.Rule == Rule4P {
		for _, x := range a {
			for _, y := range b {
				out = append(out, mk(x, y))
			}
		}
	} else {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			out = append(out, mk(a[i], b[j]))
			switch {
			case a[i].T.Nominal < b[j].T.Nominal:
				i++
			case a[i].T.Nominal > b[j].T.Nominal:
				j++
			default:
				i++
				j++
			}
		}
	}
	e.stats.Merges++
	return out
}

func (e *refEngine) sortByMean(list []*refCand) {
	slices.SortFunc(list, func(a, b *refCand) int {
		if c := cmp.Compare(a.L.Nominal, b.L.Nominal); c != 0 {
			return c
		}
		return cmp.Compare(b.T.Nominal, a.T.Nominal)
	})
}

func (e *refEngine) prune(list []*refCand) []*refCand {
	if len(list) <= 1 {
		return list
	}
	e.sortByMean(list)
	if e.opts.Rule == Rule4P {
		return e.prune4P(list)
	}
	kept := list[:0]
	if e.exactMeans {
		for _, c := range list {
			if len(kept) > 0 && c.T.Nominal <= kept[len(kept)-1].T.Nominal {
				e.stats.Pruned++
				continue
			}
			kept = append(kept, c)
		}
		return kept
	}
	for _, c := range list {
		dominated := false
		for k := len(kept) - 1; k >= 0; k-- {
			d := kept[k]
			if d.T.Nominal <= c.T.Nominal {
				continue
			}
			if probAtLeast(c.L.Nominal-d.L.Nominal, d.L.Sigma(e.space), c.L.Sigma(e.space),
				e.zL, d.L, c.L, e.space) &&
				probAtLeast(d.T.Nominal-c.T.Nominal, d.T.Sigma(e.space), c.T.Sigma(e.space),
					e.zT, d.T, c.T, e.space) {
				dominated = true
				break
			}
		}
		if dominated {
			e.stats.Pruned++
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

func (e *refEngine) prune4P(list []*refCand) []*refCand {
	n := len(list)
	lLo, lHi := make([]float64, n), make([]float64, n)
	tLo, tHi := make([]float64, n), make([]float64, n)
	for i, c := range list {
		sl, st := c.L.Sigma(e.space), c.T.Sigma(e.space)
		lLo[i] = c.L.Nominal + e.zAL*sl
		lHi[i] = c.L.Nominal + e.zAU*sl
		tLo[i] = c.T.Nominal + e.zBL*st
		tHi[i] = c.T.Nominal + e.zBU*st
	}
	dead := make([]bool, n)
	for i := 0; i < n; i++ {
		if dead[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || dead[j] {
				continue
			}
			if lHi[i] < lLo[j] && tLo[i] > tHi[j] {
				dead[j] = true
				e.stats.Pruned++
			}
		}
	}
	kept := list[:0]
	for i, c := range list {
		if !dead[i] {
			kept = append(kept, c)
		}
	}
	return kept
}

func (e *refEngine) selectRoot(root []*refCand) (*Result, error) {
	if len(root) == 0 {
		return nil, fmt.Errorf("reference: no true-polarity candidates at root")
	}
	deterministic := e.opts.Model == nil
	var best *refCand
	var bestRAT variation.Form
	bestObj := 0.0
	for _, c := range root {
		rat := c.T.AXPY(-e.tree.DriverR, c.L)
		obj := rat.Nominal
		if !deterministic {
			obj = rat.Quantile(e.opts.SelectQuantile, e.space)
		}
		if best == nil || obj > bestObj {
			best = c
			bestObj = obj
			bestRAT = rat
		}
	}
	assignment := make(map[rctree.NodeID]int)
	var wires map[rctree.NodeID]int
	if len(e.opts.WireLibrary) > 0 {
		wires = make(map[rctree.NodeID]int)
	}
	stack := []*refCand{best}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c != nil {
			switch c.op {
			case opWire:
				if wires != nil && c.aux >= 0 {
					wires[c.node] = int(c.aux)
				}
			case opBuffer:
				assignment[c.node] = int(c.aux)
			case opMerge:
				stack = append(stack, c.pred2)
			}
			c = c.pred
		}
	}
	return &Result{
		Assignment:     assignment,
		WireAssignment: wires,
		RAT:            bestRAT,
		Mean:           bestRAT.Nominal,
		Sigma:          bestRAT.Sigma(e.space),
		Objective:      bestObj,
		NumBuffers:     len(assignment),
		RootCandidates: len(root),
		Stats:          e.stats,
	}, nil
}

// assertBitIdentical fails unless the SoA result matches the reference in
// every promised field, down to the float bits.
func assertBitIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Errorf("%s: assignments differ (%d vs %d buffers)",
			label, len(got.Assignment), len(want.Assignment))
	}
	if !reflect.DeepEqual(got.WireAssignment, want.WireAssignment) {
		t.Errorf("%s: wire assignments differ", label)
	}
	if math.Float64bits(got.RAT.Nominal) != math.Float64bits(want.RAT.Nominal) {
		t.Errorf("%s: RAT nominal %v != %v", label, got.RAT.Nominal, want.RAT.Nominal)
	}
	if !reflect.DeepEqual(got.RAT.Terms, want.RAT.Terms) {
		t.Errorf("%s: RAT terms differ (%d vs %d)", label, len(got.RAT.Terms), len(want.RAT.Terms))
	}
	if math.Float64bits(got.Sigma) != math.Float64bits(want.Sigma) ||
		math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Errorf("%s: sigma/objective (%v, %v) != (%v, %v)",
			label, got.Sigma, got.Objective, want.Sigma, want.Objective)
	}
	if got.RootCandidates != want.RootCandidates {
		t.Errorf("%s: root candidates %d != %d", label, got.RootCandidates, want.RootCandidates)
	}
	g, w := got.Stats, want.Stats
	if g.Generated != w.Generated || g.Pruned != w.Pruned ||
		g.Merges != w.Merges || g.Nodes != w.Nodes || g.PeakList != w.PeakList {
		t.Errorf("%s: stats differ: soa {gen %d pr %d mg %d nd %d pk %d}"+
			" ref {gen %d pr %d mg %d nd %d pk %d}",
			label, g.Generated, g.Pruned, g.Merges, g.Nodes, g.PeakList,
			w.Generated, w.Pruned, w.Merges, w.Nodes, w.PeakList)
	}
}

// assertHullIdentical checks a hull-kernel run against the exact
// reference: the full Result must be bit-identical, and the only
// permitted stats difference is the generation deficit — candidates the
// kernel proved dominated and never materialized are missing from both
// Generated and Pruned, in exactly equal measure (HullSkipped).
func assertHullIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	patched := *got
	patched.Stats.Generated += got.Stats.HullSkipped
	patched.Stats.Pruned += got.Stats.HullSkipped
	assertBitIdentical(t, label, &patched, want)
	if got.Stats.HullSites == 0 && got.Stats.HullFallbacks == 0 {
		t.Errorf("%s: hull kernel never engaged", label)
	}
}

// refConfigs builds the option matrix for one tree. The model is shared
// between the engines so the lazily allocated variation sources line up.
func refConfigs(t *testing.T, tr *rctree.Tree, small bool) map[string]Options {
	t.Helper()
	lib := device.DefaultLibrary()
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	wireLib := []rctree.WireChoice{
		{Name: "w1", Params: tr.Wire},
		{Name: "w2", Params: rctree.WireParams{R: tr.Wire.R * 0.6, C: tr.Wire.C * 1.6}},
	}
	cfgs := map[string]Options{
		"vG":         {Library: lib},
		"2P-pbar0.5": {Library: lib, Model: model},
		"2P-pbar0.9": {Library: lib, Model: model, PbarL: 0.9, PbarT: 0.9},
		"inverters":  {Library: append(slices.Clone(lib), device.InverterLibrary()...), Model: model},
		"inverters-pbar0.9": {Library: append(slices.Clone(lib), device.InverterLibrary()...),
			Model: model, PbarL: 0.9, PbarT: 0.9},
	}
	if small {
		cfgs["wiresize"] = Options{Library: lib, Model: model, WireLibrary: wireLib}
	}
	// The 4P partial order explodes past a handful of sinks (the paper's
	// Table 2 point); run it only on the tiniest trees, one buffer type.
	if tr.NumSinks() <= 8 {
		cfgs["4P"] = Options{
			Library: lib[1:2], Model: model, Rule: Rule4P, MaxCandidates: 2_000_000,
		}
	}
	return cfgs
}

// TestSoAMatchesReference is the differential layout test: the SoA engine
// must reproduce the AoS reference bit-for-bit over the corpus, serial and
// parallel, under every pruning rule.
func TestSoAMatchesReference(t *testing.T) {
	type tc struct {
		name  string
		tr    *rctree.Tree
		small bool
	}
	var cases []tc
	for _, bench := range []string{"p1", "r1"} {
		tr, err := benchgen.Build(bench)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{bench, tr, false})
	}
	for seed := int64(1); seed <= 4; seed++ {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 5 + 2*int(seed), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, tc{fmt.Sprintf("rand%d", seed), tr, true})
	}
	for _, c := range cases {
		for name, opts := range refConfigs(t, c.tr, c.small) {
			t.Run(c.name+"/"+name, func(t *testing.T) {
				want, err := refInsert(c.tr, opts)
				if err != nil {
					t.Fatal(err)
				}
				serialOpts := opts
				serialOpts.Parallelism = 1
				serialOpts.HullBuffering = HullOff
				got, err := Insert(c.tr, serialOpts)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "serial", got, want)
				parOpts := opts
				parOpts.Parallelism = 4
				parOpts.MinParallelNodes = 1
				parOpts.HullBuffering = HullOff
				got, err = Insert(c.tr, parOpts)
				if err != nil {
					t.Fatal(err)
				}
				assertBitIdentical(t, "parallel", got, want)
				if opts.Rule == Rule4P {
					return // hull kernel does not engage under the 4P partial order
				}
				serialOpts.HullBuffering = HullAuto
				got, err = Insert(c.tr, serialOpts)
				if err != nil {
					t.Fatal(err)
				}
				assertHullIdentical(t, "serial-hull", got, want)
				parOpts.HullBuffering = HullAuto
				got, err = Insert(c.tr, parOpts)
				if err != nil {
					t.Fatal(err)
				}
				assertHullIdentical(t, "parallel-hull", got, want)
			})
		}
	}
}
