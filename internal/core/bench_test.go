package core

import (
	"math/rand"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/variation"
)

// benchList builds a candidate list with per-candidate private sources,
// the input shape of the statistical pruning rules.
func benchList(n int) ([]*Candidate, *variation.Space) {
	space := variation.NewSpace()
	rng := rand.New(rand.NewSource(7))
	list := make([]*Candidate, n)
	for i := range list {
		list[i] = mkStatCand(space, rng.Float64()*50, rng.Float64(),
			-rng.Float64()*50, rng.Float64())
	}
	return list, space
}

func benchmarkPrune(b *testing.B, rule Rule, n int) {
	base, space := benchList(n)
	opts := Options{Rule: rule, PbarL: 0.9, PbarT: 0.9, FourP: DefaultFourP()}
	var st Stats
	p := newPruner(space, opts, &st)
	work := make([]*Candidate, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// prune reorders the slice in place but never mutates candidates.
		copy(work, base)
		sinkList = p.prune(work)
	}
}

// sinkList defeats dead-code elimination.
var sinkList []*Candidate

func BenchmarkPrune2P256(b *testing.B)  { benchmarkPrune(b, Rule2P, 256) }
func BenchmarkPrune2P1024(b *testing.B) { benchmarkPrune(b, Rule2P, 1024) }
func BenchmarkPrune4P256(b *testing.B)  { benchmarkPrune(b, Rule4P, 256) }
func BenchmarkPrune4P1024(b *testing.B) { benchmarkPrune(b, Rule4P, 1024) }

// benchmarkInsert runs the full DP on a Table 1 preset. With a model it is
// the paper's 2P variation-aware engine; parallelism 1 forces the serial
// path, 4 exercises the worker fan-out.
func benchmarkInsert(b *testing.B, bench string, withModel bool, parallelism int) {
	tr, err := benchgen.Build(bench)
	if err != nil {
		b.Fatal(err)
	}
	lib := device.DefaultLibrary()
	var model *variation.Model
	if withModel {
		model, err = variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Insert(tr, Options{Library: lib, Model: model, Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		if res.NumBuffers == 0 {
			b.Fatal("no buffers inserted")
		}
	}
}

func BenchmarkInsertNOMp1Serial(b *testing.B) { benchmarkInsert(b, "p1", false, 1) }
func BenchmarkInsertNOMp1Par4(b *testing.B)   { benchmarkInsert(b, "p1", false, 4) }
func BenchmarkInsertWIDp1Serial(b *testing.B) { benchmarkInsert(b, "p1", true, 1) }
func BenchmarkInsertWIDp1Par4(b *testing.B)   { benchmarkInsert(b, "p1", true, 4) }
func BenchmarkInsertWIDr1Serial(b *testing.B) { benchmarkInsert(b, "r1", true, 1) }
func BenchmarkInsertWIDr1Par4(b *testing.B)   { benchmarkInsert(b, "r1", true, 4) }
