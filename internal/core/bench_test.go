package core

import (
	"math/rand"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// benchFrontier builds a frontier with per-candidate private sources, the
// input shape of the statistical pruning rules.
func benchFrontier(n int, sigmas bool) (*frontier, *variation.Space) {
	space := variation.NewSpace()
	rng := rand.New(rand.NewSource(7))
	f := newFrontier(n, sigmas)
	for i := 0; i < n; i++ {
		pushStatCand(f, space, rng.Float64()*50, rng.Float64(),
			-rng.Float64()*50, rng.Float64())
	}
	return f, space
}

// copyFrom refills f with src's candidates, reusing f's backing arrays.
func (f *frontier) copyFrom(src *frontier) {
	f.ln = append(f.ln[:0], src.ln...)
	f.tn = append(f.tn[:0], src.tn...)
	f.lt = append(f.lt[:0], src.lt...)
	f.tt = append(f.tt[:0], src.tt...)
	f.ref = append(f.ref[:0], src.ref...)
	if src.sl != nil {
		f.sl = append(f.sl[:0], src.sl...)
		f.st = append(f.st[:0], src.st...)
	} else {
		f.sl, f.st = nil, nil
	}
}

func benchmarkPrune(b *testing.B, rule Rule, pbar float64, n int) {
	opts := Options{Rule: rule, PbarL: pbar, PbarT: pbar, FourP: DefaultFourP()}
	needSig := rule == Rule4P || pbar != 0.5
	base, space := benchFrontier(n, needSig)
	var st Stats
	p := newPruner(space, opts, &st)
	work := newFrontier(n, needSig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// prune reorders the frontier in place but never mutates forms.
		work.copyFrom(base)
		sinkFrontier = p.prune(work)
	}
}

// sinkFrontier defeats dead-code elimination.
var sinkFrontier *frontier

// Prune2PMean* are the exactMeans flat scans (sort + sweep over contiguous
// float64 keys — the SoA fast path); Prune2P* run the pbar = 0.9 sigma
// sandwich, Prune4P* the quadratic quantile-quad pass.
func BenchmarkPrune2PMean256(b *testing.B)  { benchmarkPrune(b, Rule2P, 0.5, 256) }
func BenchmarkPrune2PMean1024(b *testing.B) { benchmarkPrune(b, Rule2P, 0.5, 1024) }
func BenchmarkPrune2P256(b *testing.B)      { benchmarkPrune(b, Rule2P, 0.9, 256) }
func BenchmarkPrune2P1024(b *testing.B)     { benchmarkPrune(b, Rule2P, 0.9, 1024) }
func BenchmarkPrune4P256(b *testing.B)      { benchmarkPrune(b, Rule4P, 0.9, 256) }
func BenchmarkPrune4P1024(b *testing.B)     { benchmarkPrune(b, Rule4P, 0.9, 1024) }

// benchmarkInsert runs the full DP on a Table 1 preset. With a model it is
// the paper's 2P variation-aware engine; parallelism 1 forces the serial
// path, 4 exercises the worker fan-out. minPar is Options.MinParallelNodes:
// benches pass 1 so Par4 measures the real fan-out cost even on small
// trees (the crossover evidence), except the Auto bench which keeps the
// default degrade.
func benchmarkInsert(b *testing.B, bench string, withModel bool, parallelism, minPar int) {
	tr, err := benchgen.Build(bench)
	if err != nil {
		b.Fatal(err)
	}
	lib := device.DefaultLibrary()
	var model *variation.Model
	if withModel {
		model, err = variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Insert(tr, Options{
			Library: lib, Model: model,
			Parallelism: parallelism, MinParallelNodes: minPar,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.NumBuffers == 0 {
			b.Fatal("no buffers inserted")
		}
	}
}

func BenchmarkInsertNOMp1Serial(b *testing.B) { benchmarkInsert(b, "p1", false, 1, 1) }
func BenchmarkInsertNOMp1Par4(b *testing.B)   { benchmarkInsert(b, "p1", false, 4, 1) }
func BenchmarkInsertWIDp1Serial(b *testing.B) { benchmarkInsert(b, "p1", true, 1, 1) }
func BenchmarkInsertWIDp1Par4(b *testing.B)   { benchmarkInsert(b, "p1", true, 4, 1) }

// InsertWIDp1Auto4 asks for 4 workers but keeps the default
// MinParallelNodes degrade: p1 (~538 nodes) runs serially, so this should
// track InsertWIDp1Serial, not InsertWIDp1Par4.
func BenchmarkInsertWIDp1Auto4(b *testing.B)  { benchmarkInsert(b, "p1", true, 4, 0) }
func BenchmarkInsertWIDr1Serial(b *testing.B) { benchmarkInsert(b, "r1", true, 1, 1) }
func BenchmarkInsertWIDr1Par4(b *testing.B)   { benchmarkInsert(b, "r1", true, 4, 1) }

// benchmarkInsertLib is the library-scaling benchmark: the full DP on a
// Table 1 preset with an n-cell ScaledLibrary (sized repeaters +
// inverters + MaxLoad caps). hull selects the buffering kernel — the
// Exact variants freeze the pre-hull cost so the convex-hull win is
// measured inside one binary.
func benchmarkInsertLib(b *testing.B, bench string, nlib int, withModel bool, hull HullMode) {
	tr, err := benchgen.Build(bench)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := benchgen.ScaledLibrary(nlib)
	if err != nil {
		b.Fatal(err)
	}
	var model *variation.Model
	if withModel {
		model, err = variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Insert(tr, Options{
			Library: lib, Model: model,
			Parallelism: 1, MinParallelNodes: 1,
			HullBuffering: hull,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.NumBuffers == 0 {
			b.Fatal("no buffers inserted")
		}
	}
}

func BenchmarkInsertLib8NOMr3Serial(b *testing.B)       { benchmarkInsertLib(b, "r3", 8, false, HullAuto) }
func BenchmarkInsertLib8NOMr3SerialExact(b *testing.B)  { benchmarkInsertLib(b, "r3", 8, false, HullOff) }
func BenchmarkInsertLib32NOMr3Serial(b *testing.B)      { benchmarkInsertLib(b, "r3", 32, false, HullAuto) }
func BenchmarkInsertLib32NOMr3SerialExact(b *testing.B) { benchmarkInsertLib(b, "r3", 32, false, HullOff) }
func BenchmarkInsertLib32WIDr3Serial(b *testing.B)      { benchmarkInsertLib(b, "r3", 32, true, HullAuto) }

// benchmarkInsertSubtree measures ECO-style re-insertion on r3 under the
// WID model: every iteration perturbs one sink RAT (a different sink and a
// unique delta each time, so no whole-tree result reuse is possible) and
// re-runs the DP. Cold pays the full recompute; Warm shares a subtree
// cache prewarmed on the base tree, so only the mutated root path
// recomputes.
func benchmarkInsertSubtree(b *testing.B, cache *SubtreeCache) {
	tr, err := benchgen.Build("r3")
	if err != nil {
		b.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{
		Library:      device.DefaultLibrary(),
		Model:        model,
		Parallelism:  1,
		SubtreeCache: cache,
	}
	var sinks []rctree.NodeID
	for i := range tr.Nodes {
		if tr.Nodes[i].Kind == rctree.KindSink {
			sinks = append(sinks, tr.Nodes[i].ID)
		}
	}
	if cache != nil {
		// Prewarm with the unmutated tree.
		if _, err := Insert(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := sinks[i%len(sinks)]
		orig := tr.Nodes[id].RAT
		tr.Nodes[id].RAT = orig + 1 + float64(i)*1e-3
		res, err := Insert(tr, opts)
		tr.Nodes[id].RAT = orig
		if err != nil {
			b.Fatal(err)
		}
		if res.NumBuffers == 0 {
			b.Fatal("no buffers inserted")
		}
	}
}

func BenchmarkInsertSubtreeColdWIDr3(b *testing.B) { benchmarkInsertSubtree(b, nil) }
func BenchmarkInsertSubtreeWarmWIDr3(b *testing.B) {
	benchmarkInsertSubtree(b, NewSubtreeCache(512<<20))
}
