package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/geom"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// assertIdenticalResults fails unless the two results are bit-identical in
// every field the engine promises to reproduce across parallelism levels.
func assertIdenticalResults(t *testing.T, label string, serial, parallel *Result) {
	t.Helper()
	if !reflect.DeepEqual(serial.Assignment, parallel.Assignment) {
		t.Errorf("%s: assignments differ (%d vs %d buffers)",
			label, len(serial.Assignment), len(parallel.Assignment))
	}
	if !reflect.DeepEqual(serial.WireAssignment, parallel.WireAssignment) {
		t.Errorf("%s: wire assignments differ", label)
	}
	if serial.RAT.Nominal != parallel.RAT.Nominal {
		t.Errorf("%s: RAT nominal %v != %v", label, serial.RAT.Nominal, parallel.RAT.Nominal)
	}
	if !reflect.DeepEqual(serial.RAT.Terms, parallel.RAT.Terms) {
		t.Errorf("%s: RAT terms differ (%d vs %d)",
			label, len(serial.RAT.Terms), len(parallel.RAT.Terms))
	}
	if serial.Mean != parallel.Mean || serial.Sigma != parallel.Sigma {
		t.Errorf("%s: moments (%v, %v) != (%v, %v)",
			label, serial.Mean, serial.Sigma, parallel.Mean, parallel.Sigma)
	}
	if serial.Objective != parallel.Objective {
		t.Errorf("%s: objective %v != %v", label, serial.Objective, parallel.Objective)
	}
	if serial.RootCandidates != parallel.RootCandidates {
		t.Errorf("%s: root candidates %d != %d",
			label, serial.RootCandidates, parallel.RootCandidates)
	}
	// The DP visits the same nodes and generates/prunes the same candidate
	// sequences regardless of which worker runs a subtree, so the summed
	// counters must match exactly too.
	s, p := serial.Stats, parallel.Stats
	if s.Generated != p.Generated || s.Pruned != p.Pruned ||
		s.Merges != p.Merges || s.Nodes != p.Nodes || s.PeakList != p.PeakList {
		t.Errorf("%s: stats differ: serial {gen %d pr %d mg %d nd %d pk %d}"+
			" parallel {gen %d pr %d mg %d nd %d pk %d}",
			label, s.Generated, s.Pruned, s.Merges, s.Nodes, s.PeakList,
			p.Generated, p.Pruned, p.Merges, p.Nodes, p.PeakList)
	}
}

// TestParallelDeterminism asserts the tentpole invariant: at Parallelism 4
// the engine returns byte-identical results to the serial engine for every
// rule. Run with -race this also exercises the worker fan-out for data
// races. The 4P cases run on a downsized tree with a one-buffer library —
// on the full p1/r1 benchmarks the partial order exceeds any reasonable
// candidate capacity (the paper's Table 2 point).
func TestParallelDeterminism(t *testing.T) {
	lib := device.DefaultLibrary()
	check := func(t *testing.T, label string, tr *rctree.Tree, opts Options) {
		t.Helper()
		serialOpts := opts
		serialOpts.Parallelism = 1
		serial, err := Insert(tr, serialOpts)
		if err != nil {
			t.Fatal(err)
		}
		parallelOpts := opts
		parallelOpts.Parallelism = 4
		// p1/r1 sit under the auto-serial cutoff; force the fan-out so the
		// test actually compares parallel against serial.
		parallelOpts.MinParallelNodes = 1
		parallel, err := Insert(tr, parallelOpts)
		if err != nil {
			t.Fatal(err)
		}
		if parallel.Stats.Workers < 1 {
			t.Errorf("parallel run reported %d workers", parallel.Stats.Workers)
		}
		assertIdenticalResults(t, label, serial, parallel)
	}
	for _, bench := range []string{"p1", "r1"} {
		tr, err := benchgen.Build(bench)
		if err != nil {
			t.Fatal(err)
		}
		model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			name string
			opts Options
		}{
			{"vG", Options{Library: lib}},
			{"2P-pbar0.5", Options{Library: lib, Model: model}},
			{"2P-pbar0.9", Options{Library: lib, Model: model, PbarL: 0.9, PbarT: 0.9}},
		}
		for _, tc := range cases {
			t.Run(bench+"/"+tc.name, func(t *testing.T) {
				check(t, bench+"/"+tc.name, tr, tc.opts)
			})
		}
	}
	t.Run("small/4P", func(t *testing.T) {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			t.Fatal(err)
		}
		check(t, "small/4P", tr, Options{
			Library:       lib[1:2],
			Model:         model,
			Rule:          Rule4P,
			MaxCandidates: 2_000_000,
		})
	})
}

// TestParallelRepeatedRunsStable: repeated parallel runs of the same input
// are identical to each other (goroutine scheduling must not leak into the
// result).
func TestParallelRepeatedRunsStable(t *testing.T) {
	tr, err := benchgen.Build("r1")
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Library: device.DefaultLibrary(), Model: model,
		Parallelism: 8, MinParallelNodes: 1,
	}
	first, err := Insert(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Insert(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalResults(t, "repeat", first, again)
	}
}

// TestContextCancellation: a canceled context aborts the run with
// ErrCanceled at the next node, serial and parallel alike.
func TestContextCancellation(t *testing.T) {
	tr, err := benchgen.Build("p1")
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already canceled: the engine must notice before finishing
		_, err := Insert(tr, Options{
			Library: lib, Parallelism: par, MinParallelNodes: 1, Context: ctx,
		})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("Parallelism=%d: got %v, want ErrCanceled", par, err)
		}
	}
	// A background context never cancels anything.
	if _, err := Insert(tr, Options{Library: lib, Context: context.Background()}); err != nil {
		t.Errorf("background context aborted the run: %v", err)
	}
}

// TestParallelismValidation: negative parallelism is rejected; zero takes
// the GOMAXPROCS default.
func TestParallelismValidation(t *testing.T) {
	tr := rctree.New(rctree.DefaultWire, 0.4, geom.Point{})
	tr.AddSink(tr.Root, geom.Point{X: 500, Y: 0}, 500, 10, 0)
	lib := device.DefaultLibrary()
	if _, err := Insert(tr, Options{Library: lib, Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers < 1 {
		t.Errorf("run reported %d workers", res.Stats.Workers)
	}
	if res.Stats.ArenaCandidates <= 0 {
		t.Errorf("run reported %d arena candidates", res.Stats.ArenaCandidates)
	}
}
