package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// Rule selects the dominance/pruning rule for variation-aware runs.
type Rule uint8

const (
	// Rule2P is the paper's two-parameter rule (§2.3): strict ordering by
	// probability thresholds pbar_L, pbar_T, giving linear-time pruning and
	// merging.
	Rule2P Rule = iota
	// Rule4P is the four-parameter quantile rule of [7] (§2.2): a partial
	// order, requiring O(n·m) merging and O(N²) pairwise pruning.
	Rule4P
)

// String implements fmt.Stringer.
func (r Rule) String() string {
	switch r {
	case Rule2P:
		return "2P"
	case Rule4P:
		return "4P"
	default:
		return fmt.Sprintf("rule(%d)", uint8(r))
	}
}

// FourPParams are the quantile levels of the 4P rule (eq. 1–3):
// 0 <= AlphaL < AlphaU <= 1 for loading, 0 <= BetaL < BetaU <= 1 for RAT.
type FourPParams struct {
	AlphaL, AlphaU float64
	BetaL, BetaU   float64
}

// DefaultFourP mirrors a designer accepting 90% certainty bands.
func DefaultFourP() FourPParams {
	return FourPParams{AlphaL: 0.05, AlphaU: 0.95, BetaL: 0.05, BetaU: 0.95}
}

func (p FourPParams) validate() error {
	if !(0 <= p.AlphaL && p.AlphaL < p.AlphaU && p.AlphaU <= 1) {
		return fmt.Errorf("core: 4P alpha levels (%g, %g) invalid", p.AlphaL, p.AlphaU)
	}
	if !(0 <= p.BetaL && p.BetaL < p.BetaU && p.BetaU <= 1) {
		return fmt.Errorf("core: 4P beta levels (%g, %g) invalid", p.BetaL, p.BetaU)
	}
	return nil
}

// DefaultMinParallelNodes is the tree size below which parallel runs are
// auto-degraded to serial when Options.MinParallelNodes is zero. The
// crossover sits between the p1/r1 nets (~535 nodes, where 4 workers lose
// to serial) and r3 (1724 nodes, where they win); see BENCH_core.json.
const DefaultMinParallelNodes = 1024

// HullMode controls the convex-hull buffering kernel (Li–Shi, arxiv
// 0710.4691): at each buffer site, instead of materializing one buffered
// candidate per (candidate, buffer type) pair and letting the pruner
// discard the dominated ones, the engine picks each type's hull-optimal
// candidate by a flat scan over the frontier's (C, Q) staircase and skips
// the rest before they are ever generated. Results are bit-identical to
// the exact path — the kernel only ever skips candidates the very same
// pruning sweep would provably remove (see DESIGN.md §14) — but
// Stats.Generated/Pruned shrink by exactly Stats.HullSkipped.
type HullMode uint8

const (
	// HullAuto (the default) enables the kernel wherever the active rule
	// supports it: deterministic runs, 2P at pbar = 0.5 (full predictive
	// pruning) and 2P at pbar > 0.5 (per-type sandwich pre-prune). 4P
	// sites always take the exact path.
	HullAuto HullMode = iota
	// HullOn behaves like HullAuto; it exists so flags and DTOs can state
	// the choice explicitly.
	HullOn
	// HullOff disables the kernel: every (candidate, type) pair is
	// materialized and pruned pairwise, the pre-PR behavior. The AoS
	// reference tests run with HullOff because they assert the exact
	// path's Generated/Pruned counters.
	HullOff
)

// String implements fmt.Stringer.
func (m HullMode) String() string {
	switch m {
	case HullAuto:
		return "auto"
	case HullOn:
		return "on"
	case HullOff:
		return "off"
	default:
		return fmt.Sprintf("hull(%d)", uint8(m))
	}
}

// ParseHullMode maps the flag/DTO spellings auto, on, off to a HullMode.
func ParseHullMode(s string) (HullMode, error) {
	switch s {
	case "", "auto":
		return HullAuto, nil
	case "on":
		return HullOn, nil
	case "off":
		return HullOff, nil
	default:
		return HullAuto, fmt.Errorf("core: unknown hull mode %q (want auto, on, or off)", s)
	}
}

// Options configures one buffer-insertion run.
type Options struct {
	// Library is the buffer library (B types). Required.
	Library device.Library
	// Model supplies the variation sources; nil runs the deterministic
	// van Ginneken algorithm (the NOM baseline).
	Model *variation.Model
	// WireLibrary enables simultaneous buffer insertion and wire sizing
	// (the extension of [8]): each edge independently picks one of these
	// routing choices instead of the tree's fixed wire parasitics. Empty
	// means no wire sizing. Complexity grows to O(B·W·N²).
	WireLibrary []rctree.WireChoice
	// Rule selects 2P (default) or 4P pruning for variation-aware runs.
	Rule Rule
	// PbarL, PbarT are the 2P thresholds of eq. 6–7, in [0.5, 1). Zero
	// values default to 0.5, where pruning is exactly the mean order
	// (Theorem 1).
	PbarL, PbarT float64
	// FourP configures the 4P rule; zero value takes DefaultFourP.
	FourP FourPParams
	// SelectQuantile picks the root solution maximizing this RAT quantile
	// for variation-aware runs; zero defaults to 0.05 (the 95%-yield RAT).
	// Deterministic runs always maximize the nominal RAT.
	SelectQuantile float64
	// MaxCandidates caps the candidate list length at any node (and the
	// cross-product size for 4P merging). Exceeding it aborts with
	// ErrCapacity — the "exceeds memory capacity" outcome of Table 2.
	// Zero means no cap.
	MaxCandidates int
	// Timeout aborts the run with ErrTimeout when exceeded — the
	// "tolerable time limit" outcome of Table 2. Zero means no limit.
	Timeout time.Duration
	// Parallelism bounds the number of DP workers that process independent
	// subtrees concurrently. 0 selects GOMAXPROCS; 1 forces the serial
	// engine. The result is bit-identical for every value — the fan-out
	// happens at multi-child Steiner nodes and the merge order is fixed.
	Parallelism int
	// MinParallelNodes is the tree size below which Parallelism > 1 is
	// degraded to the serial engine: on small trees the spawn/retire
	// overhead costs more than subtree concurrency wins (the WIDp1 bench
	// regresses 22.8 ms → 24.2 ms under 4 workers). 0 selects
	// DefaultMinParallelNodes; 1 disables the degrade entirely.
	MinParallelNodes int
	// SubtreeCache, when non-nil, memoizes per-subtree DP frontiers across
	// Insert calls keyed by canonical subtree fingerprints: re-inserts of
	// edited trees (ECO flows, batch sweeps sharing subtrees) recompute
	// only the changed branches. The cache may be shared freely across
	// goroutines, configurations, and variation models — the fingerprint
	// covers everything that influences a frontier. Results are identical
	// to uncached runs; Stats candidate/arena counters reflect only the
	// work actually performed.
	SubtreeCache *SubtreeCache
	// SubtreeCacheMinNodes is the smallest subtree (node count) worth
	// caching; 0 selects DefaultSubtreeCacheMinNodes.
	SubtreeCacheMinNodes int
	// HullBuffering selects the convex-hull buffering kernel for b-type
	// libraries (default HullAuto = on wherever the rule supports it).
	// Results are bit-identical in every mode; only the Stats counters
	// and the wall clock change. Note that MaxCandidates is checked on
	// the candidates actually materialized, so a run that exceeds the cap
	// on the exact path can succeed under the hull kernel — the cap
	// guards memory, and the skipped candidates never exist.
	HullBuffering HullMode
	// Context, when non-nil, cancels the run early: the engine checks it
	// at every node and inside the quadratic 4P prune, aborting with
	// ErrCanceled. Servers wire the per-request context here so abandoned
	// requests stop burning a worker.
	Context context.Context
}

// Sentinel errors for capacity-limited runs (Table 2's "-" entries).
var (
	// ErrCapacity reports that a candidate list or merge cross-product
	// outgrew Options.MaxCandidates.
	ErrCapacity = errors.New("core: candidate capacity exceeded")
	// ErrTimeout reports that the run exceeded Options.Timeout.
	ErrTimeout = errors.New("core: time limit exceeded")
	// ErrCanceled reports that Options.Context was canceled mid-run.
	ErrCanceled = errors.New("core: run canceled")
)

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if err := opts.Library.Validate(); err != nil {
		return opts, err
	}
	if opts.PbarL == 0 {
		opts.PbarL = 0.5
	}
	if opts.PbarT == 0 {
		opts.PbarT = 0.5
	}
	if opts.PbarL < 0.5 || opts.PbarL >= 1 || opts.PbarT < 0.5 || opts.PbarT >= 1 {
		return opts, fmt.Errorf("core: pbar (%g, %g) outside [0.5, 1)", opts.PbarL, opts.PbarT)
	}
	if opts.FourP == (FourPParams{}) {
		opts.FourP = DefaultFourP()
	}
	if err := opts.FourP.validate(); err != nil {
		return opts, err
	}
	if opts.SelectQuantile == 0 {
		opts.SelectQuantile = 0.05
	}
	if opts.SelectQuantile < 0 || opts.SelectQuantile > 1 {
		return opts, fmt.Errorf("core: SelectQuantile %g outside [0, 1]", opts.SelectQuantile)
	}
	if opts.MaxCandidates < 0 {
		return opts, fmt.Errorf("core: negative MaxCandidates %d", opts.MaxCandidates)
	}
	if opts.Parallelism < 0 {
		return opts, fmt.Errorf("core: negative Parallelism %d", opts.Parallelism)
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.MinParallelNodes < 0 {
		return opts, fmt.Errorf("core: negative MinParallelNodes %d", opts.MinParallelNodes)
	}
	if opts.SubtreeCacheMinNodes < 0 {
		return opts, fmt.Errorf("core: negative SubtreeCacheMinNodes %d", opts.SubtreeCacheMinNodes)
	}
	for i, wc := range opts.WireLibrary {
		if wc.Params.R <= 0 || wc.Params.C <= 0 {
			return opts, fmt.Errorf("core: wire choice %d (%q) has non-positive parasitics %+v",
				i, wc.Name, wc.Params)
		}
	}
	return opts, nil
}

// Stats instruments one run: the counters behind Table 2 and Figure 5.
type Stats struct {
	// Generated counts every candidate ever created; Pruned counts the
	// ones dominance removed.
	Generated, Pruned int64
	// PeakList is the largest candidate list observed at any node.
	PeakList int
	// Merges counts two-list merge operations.
	Merges int64
	// Nodes is the number of tree nodes processed.
	Nodes int
	// Elapsed is the wall-clock runtime of the DP.
	Elapsed time.Duration
	// Workers is the number of DP goroutines that participated (1 for a
	// serial run).
	Workers int
	// ArenaCandidates counts provenance records (one per candidate ever
	// created); ArenaTerms and ArenaBytes describe the pooled Term arenas
	// backing the canonical forms (see internal/variation.Arena).
	// ArenaBytes is reserved slab capacity; ArenaUsedBytes the bytes of
	// terms actually handed out — the live occupancy.
	ArenaCandidates int64
	ArenaTerms      int64
	ArenaBytes      int64
	ArenaUsedBytes  int64
	// SubtreeHits/Misses/Stores count subtree-cache outcomes for this run:
	// lookups that restored a memoized frontier, eligible lookups that
	// missed, and frontiers stored for future runs. All zero when
	// Options.SubtreeCache is nil.
	SubtreeHits   int64
	SubtreeMisses int64
	SubtreeStores int64
	// Hull-kernel counters (all zero with HullOff or under Rule4P).
	// HullSites counts buffer sites the kernel handled; HullSkipped the
	// buffered candidates it proved dead before generation (each one
	// would have been a Generated and a Pruned on the exact path);
	// HullFallbacks the sites that bailed to exact generation because the
	// staircase invariant could not be certified; HullPeak the largest
	// per-site count of hull-selected candidates actually emitted.
	HullSites     int64
	HullSkipped   int64
	HullFallbacks int64
	HullPeak      int
}

// Result is the outcome of a successful insertion.
type Result struct {
	// Assignment maps node IDs to buffer library indices.
	Assignment map[rctree.NodeID]int
	// WireAssignment maps a node to the WireLibrary index chosen for the
	// edge from that node up to its parent. Nil when wire sizing was off.
	WireAssignment map[rctree.NodeID]int
	// RAT is the root required arrival time as a canonical form, including
	// the driver delay.
	RAT variation.Form
	// Mean and Sigma summarize RAT's normal distribution.
	Mean, Sigma float64
	// Objective is the value the root selection maximized (nominal RAT for
	// deterministic runs, the SelectQuantile RAT quantile otherwise).
	Objective float64
	// NumBuffers is len(Assignment).
	NumBuffers int
	// RootCandidates is the number of non-dominated solutions that
	// survived to the root.
	RootCandidates int
	// Stats carries the instrumentation counters.
	Stats Stats
}
