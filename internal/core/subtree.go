package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"slices"
	"sync"

	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// DefaultSubtreeCacheMinNodes is the smallest subtree (node count) the
// cache will memoize when Options.SubtreeCacheMinNodes is zero. Tiny
// subtrees cost more to fingerprint-lookup and restore than to recompute.
const DefaultSubtreeCacheMinNodes = 16

// subtreeKey is the canonical fingerprint of (subtree, run configuration):
// equal keys guarantee the DP computes bit-identical candidate frontiers.
type subtreeKey [sha256.Size]byte

// nodeChoice is one materialized decision: a buffer or wire library index
// at a tree node.
type nodeChoice struct {
	node rctree.NodeID
	idx  int16
}

// candDecisions is the full decision set of one cached candidate,
// materialized at store time so restored candidates need no provenance
// from the run that produced them.
type candDecisions struct {
	bufs  []nodeChoice
	wires []nodeChoice
}

// cachedList is one polarity frontier detached from its run: scalar keys,
// term slices over a private flat backing array (safe to share read-only
// across runs — forms are immutable), and per-candidate decisions.
type cachedList struct {
	ln, tn []float64
	sl, st []float64 // nil when the config's rule needs no sigmas
	lt, tt [][]variation.Term
	terms  []variation.Term // flat backing of lt/tt
	dec    []candDecisions
}

// subtreeEntry is one cache entry: both polarity lists for one key.
type subtreeEntry struct {
	key   subtreeKey
	lists [2]*cachedList
	bytes int64
}

// SubtreeCache memoizes per-subtree DP frontiers across Insert calls,
// keyed by canonical subtree fingerprints. Batch sweeps and ECO-style
// re-inserts that share subtrees recompute only the changed branches.
// Safe for concurrent use; entries are evicted LRU under a byte budget.
type SubtreeCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[subtreeKey]*list.Element // value: *subtreeEntry
	lru      *list.List                   // front = most recently used

	hits, misses, stores, evictions int64
}

// DefaultSubtreeCacheBytes is the byte budget NewSubtreeCache applies when
// given a non-positive limit (64 MiB).
const DefaultSubtreeCacheBytes = 64 << 20

// NewSubtreeCache creates a subtree frontier cache bounded to maxBytes
// (<= 0 selects DefaultSubtreeCacheBytes). One cache may be shared by any
// number of concurrent Insert calls and configurations — the fingerprint
// covers everything that influences a frontier, including the variation
// model instance.
func NewSubtreeCache(maxBytes int64) *SubtreeCache {
	if maxBytes <= 0 {
		maxBytes = DefaultSubtreeCacheBytes
	}
	return &SubtreeCache{
		maxBytes: maxBytes,
		entries:  make(map[subtreeKey]*list.Element),
		lru:      list.New(),
	}
}

// SubtreeCacheStats is a point-in-time snapshot of cache counters.
type SubtreeCacheStats struct {
	Hits, Misses, Stores, Evictions int64
	Entries                         int
	Bytes, MaxBytes                 int64
}

// Stats returns a snapshot of the cache counters.
func (c *SubtreeCache) Stats() SubtreeCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SubtreeCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Stores:    c.stores,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}

// lookup returns the entry for key (refreshing its LRU position) or nil.
func (c *SubtreeCache) lookup(key subtreeKey) *subtreeEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*subtreeEntry)
}

// store inserts an entry, evicting LRU victims past the byte budget.
// Returns false when the key is already present (concurrent runs over
// shared subtrees race benignly) or the entry alone exceeds the budget.
func (c *SubtreeCache) store(ent *subtreeEntry) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[ent.key]; ok {
		return false
	}
	if ent.bytes > c.maxBytes {
		return false
	}
	c.entries[ent.key] = c.lru.PushFront(ent)
	c.bytes += ent.bytes
	c.stores++
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		victim := el.Value.(*subtreeEntry)
		c.lru.Remove(el)
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evictions++
	}
	return true
}

// fpWriter accumulates fingerprint input bytes into a reusable buffer.
type fpWriter struct{ buf []byte }

func (w *fpWriter) reset()         { w.buf = w.buf[:0] }
func (w *fpWriter) byte(b byte)    { w.buf = append(w.buf, b) }
func (w *fpWriter) u32(v uint32)   { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *fpWriter) u64(v uint64)   { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *fpWriter) f64(v float64)  { w.u64(math.Float64bits(v)) }
func (w *fpWriter) bytes(b []byte) { w.buf = append(w.buf, b...) }

func (w *fpWriter) bool(b bool) {
	if b {
		w.byte(1)
	} else {
		w.byte(0)
	}
}

// configFingerprint hashes every run parameter that can influence a
// subtree frontier: the pruning rule and its thresholds, the candidate
// budget (cache hits skip intra-subtree budget checks, so entries must
// never cross budgets), the buffer and wire libraries, the tree's default
// wire parasitics, and the variation model instance token. Root-only
// parameters (SelectQuantile, DriverR) and value-neutral ones (Timeout,
// Parallelism) are deliberately excluded to maximize hit rates.
func configFingerprint(tree *rctree.Tree, opts *Options) subtreeKey {
	var w fpWriter
	w.bytes([]byte("vabuf-subtree-v1"))
	tok := uint64(0)
	if opts.Model != nil {
		tok = opts.Model.Token()
	}
	w.u64(tok)
	w.byte(byte(opts.Rule))
	w.f64(opts.PbarL)
	w.f64(opts.PbarT)
	w.f64(opts.FourP.AlphaL)
	w.f64(opts.FourP.AlphaU)
	w.f64(opts.FourP.BetaL)
	w.f64(opts.FourP.BetaU)
	w.u64(uint64(opts.MaxCandidates))
	w.f64(tree.Wire.R)
	w.f64(tree.Wire.C)
	w.u32(uint32(len(opts.Library)))
	for _, b := range opts.Library {
		w.f64(b.Cb0)
		w.f64(b.Tb0)
		w.f64(b.Rb)
		w.f64(b.MaxLoad)
		w.bool(b.Inverting)
	}
	w.u32(uint32(len(opts.WireLibrary)))
	for _, wc := range opts.WireLibrary {
		w.f64(wc.Params.R)
		w.f64(wc.Params.C)
	}
	return sha256.Sum256(w.buf)
}

// subtreeFingerprints computes, in one post-order pass, the canonical
// fingerprint and node count of every subtree. A node's key covers the
// config fingerprint, its own DP-relevant fields — kind, BufferOK, sink
// CapLoad/RAT, and (only under a variation model, whose lazily allocated
// random sources are keyed by node ID and whose spatial weights depend on
// position) the node ID and location — plus, per child in order, the
// child's edge wire length and subtree key.
func subtreeFingerprints(tree *rctree.Tree, opts *Options) ([]subtreeKey, []int32) {
	cfg := configFingerprint(tree, opts)
	fps := make([]subtreeKey, tree.Len())
	size := make([]int32, tree.Len())
	hasModel := opts.Model != nil
	var w fpWriter
	for _, id := range tree.PostOrder() {
		n := tree.Node(id)
		w.reset()
		w.bytes(cfg[:])
		w.byte(byte(n.Kind))
		w.bool(n.BufferOK)
		if n.Kind == rctree.KindSink {
			w.f64(n.CapLoad)
			w.f64(n.RAT)
		}
		if hasModel && n.BufferOK {
			w.u32(uint32(id))
			w.f64(n.Loc.X)
			w.f64(n.Loc.Y)
		}
		sz := int32(1)
		for _, child := range n.Children {
			w.f64(tree.Node(child).WireLen)
			w.bytes(fps[child][:])
			sz += size[child]
		}
		fps[id] = sha256.Sum256(w.buf)
		size[id] = sz
	}
	return fps, size
}

// storeSubtree detaches the polarity frontiers computed for node id into a
// cache entry: scalars copied, terms deep-copied into a flat private
// backing (worker arenas are pooled and reused by later runs), and every
// candidate's decisions materialized by walking the provenance DAG now.
func (e *engine) storeSubtree(id rctree.NodeID, pl polarityLists) bool {
	ent := &subtreeEntry{key: e.fps[id]}
	needWires := len(e.opts.WireLibrary) > 0
	bytes := int64(256)
	bufs := make(map[rctree.NodeID]int)
	var wires map[rctree.NodeID]int
	if needWires {
		wires = make(map[rctree.NodeID]int)
	}
	for p := 0; p < 2; p++ {
		f := pl[p]
		n := f.len()
		if n == 0 {
			continue
		}
		cl := &cachedList{
			ln:  slices.Clone(f.ln),
			tn:  slices.Clone(f.tn),
			lt:  make([][]variation.Term, n),
			tt:  make([][]variation.Term, n),
			dec: make([]candDecisions, n),
		}
		if f.sl != nil {
			cl.sl = slices.Clone(f.sl)
			cl.st = slices.Clone(f.st)
		}
		nTerms := 0
		for i := 0; i < n; i++ {
			nTerms += len(f.lt[i]) + len(f.tt[i])
		}
		cl.terms = make([]variation.Term, 0, nTerms)
		detach := func(src []variation.Term) []variation.Term {
			if len(src) == 0 {
				return nil
			}
			a := len(cl.terms)
			cl.terms = append(cl.terms, src...)
			b := len(cl.terms)
			return cl.terms[a:b:b]
		}
		for i := 0; i < n; i++ {
			cl.lt[i] = detach(f.lt[i])
			cl.tt[i] = detach(f.tt[i])
		}
		for i := 0; i < n; i++ {
			clear(bufs)
			clear(wires)
			e.collectDecisions(f.ref[i], bufs, wires)
			cl.dec[i] = flattenDecisions(bufs, wires)
			bytes += int64(len(cl.dec[i].bufs)+len(cl.dec[i].wires)) * 8
		}
		bytes += int64(nTerms)*16 + int64(n)*(4*8+4*24+32)
		ent.lists[p] = cl
	}
	ent.bytes = bytes
	return e.cache.store(ent)
}

// flattenDecisions converts decision maps to compact slices sorted by node
// ID (deterministic entry layout; map order is not).
func flattenDecisions(bufs, wires map[rctree.NodeID]int) candDecisions {
	var d candDecisions
	if len(bufs) > 0 {
		d.bufs = make([]nodeChoice, 0, len(bufs))
		for node, idx := range bufs {
			d.bufs = append(d.bufs, nodeChoice{node: node, idx: int16(idx)})
		}
		slices.SortFunc(d.bufs, func(a, b nodeChoice) int { return int(a.node) - int(b.node) })
	}
	if len(wires) > 0 {
		d.wires = make([]nodeChoice, 0, len(wires))
		for node, idx := range wires {
			d.wires = append(d.wires, nodeChoice{node: node, idx: int16(idx)})
		}
		slices.SortFunc(d.wires, func(a, b nodeChoice) int { return int(a.node) - int(b.node) })
	}
	return d
}

// restoreCached rebuilds polarity frontiers from a cache entry. Scalar
// arrays are copied (downstream pruning mutates them in place); term
// slices share the entry's immutable backing. Each restored candidate gets
// an opCached provenance record pointing at a replay-table row, so final
// backtracking replays the stored decisions.
func (w *worker) restoreCached(id rctree.NodeID, ent *subtreeEntry) polarityLists {
	var pl polarityLists
	needSig := w.prn.needSigmas()
	for p := 0; p < 2; p++ {
		cl := ent.lists[p]
		if cl == nil {
			continue
		}
		ridx := w.eng.addReplay(cl)
		n := len(cl.ln)
		f := newFrontier(n, needSig)
		f.ln = append(f.ln, cl.ln...)
		f.tn = append(f.tn, cl.tn...)
		if needSig {
			f.sl = append(f.sl, cl.sl...)
			f.st = append(f.st, cl.st...)
		}
		f.lt = append(f.lt, cl.lt...)
		f.tt = append(f.tt, cl.tt...)
		for i := 0; i < n; i++ {
			f.ref = append(f.ref, w.prov.alloc(prov{
				pred: int32(i), pred2: -1, node: id, aux: ridx, op: opCached,
			}))
		}
		pl[p] = f
	}
	return pl
}
