// Package core implements the paper's contribution: dynamic-programming
// buffer insertion over RC routing trees with candidate solutions carried
// as first-order canonical forms, the two-parameter (2P) pruning rule of
// §2.3 with its linear-time pruning and merging, the four-parameter (4P)
// baseline rule of §2.2 ([7] — the DATE 2005 algorithm), and the classic
// deterministic van Ginneken algorithm as the zero-variation special case.
package core

import (
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// opKind records how a candidate was produced, for backtracking.
type opKind uint8

const (
	opLeaf opKind = iota
	opWire
	opBuffer
	opMerge
)

// Candidate is one (L, T) solution at a tree node. L is the downstream
// loading capacitance and T the required arrival time, both first-order
// canonical forms (deterministic candidates simply have no variation
// terms). Candidates form a DAG through pred/pred2 used to backtrack the
// chosen buffer assignment.
type Candidate struct {
	L, T variation.Form

	node rctree.NodeID
	op   opKind
	// buf is the library index of the buffer inserted at node (opBuffer
	// only). wire is the wire-library choice for the edge node→parent
	// (opWire with wire sizing enabled; -1 otherwise).
	buf   int16
	wire  int16
	pred  *Candidate
	pred2 *Candidate

	// Cached standard deviations, filled only when the active pruning rule
	// needs them (2P with pbar > 0.5, 4P, and final root selection).
	sigmaL, sigmaT float64
}

// MeanL and MeanT are the candidate ordering keys of the 2P rule at
// pbar = 0.5 (Lemma 4: mean order ⇔ probability order).
func (c *Candidate) MeanL() float64 { return c.L.Nominal }

// MeanT returns the mean required arrival time.
func (c *Candidate) MeanT() float64 { return c.T.Nominal }

// fillSigmas caches the standard deviations of both forms.
func (c *Candidate) fillSigmas(space *variation.Space) {
	c.sigmaL = c.L.Sigma(space)
	c.sigmaT = c.T.Sigma(space)
}

// collectDecisions walks the provenance DAG and records every buffer
// decision into bufs and (when non-nil) every wire-sizing decision into
// wires. The walk is iterative to stay safe on very deep candidate chains
// (segmentized wires, large H-trees).
func (c *Candidate) collectDecisions(bufs map[rctree.NodeID]int, wires map[rctree.NodeID]int) {
	stack := []*Candidate{c}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for cur != nil {
			switch cur.op {
			case opLeaf:
				cur = nil
			case opWire:
				if wires != nil && cur.wire >= 0 {
					wires[cur.node] = int(cur.wire)
				}
				cur = cur.pred
			case opBuffer:
				bufs[cur.node] = int(cur.buf)
				cur = cur.pred
			case opMerge:
				stack = append(stack, cur.pred2)
				cur = cur.pred
			}
		}
	}
}
