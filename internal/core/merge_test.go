package core

import (
	"math/rand"
	"sort"
	"testing"

	"vabuf/internal/variation"
)

func testWorker(rule Rule) *worker {
	opts := Options{Rule: rule, PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}
	e := &engine{opts: opts, space: variation.NewSpace()}
	w := &worker{eng: e, terms: variation.NewArena()}
	w.prov = provWriter{pa: &e.prov}
	w.prn = newPruner(w.eng.space, opts, &w.stats)
	return w
}

// mkLeafFrontier builds a frontier of deterministic (L, T) candidates with
// real opLeaf provenance records, so merges can be backtracked.
func (w *worker) mkLeafFrontier(pairs ...[2]float64) *frontier {
	f := newFrontier(len(pairs), w.prn.needSigmas())
	for _, c := range pairs {
		ref := w.prov.alloc(prov{pred: -1, pred2: -1, aux: -1, op: opLeaf})
		f.push(variation.Const(c[0]), variation.Const(c[1]), ref, w.eng.space)
	}
	return f
}

// TestLinearMergeFigure1 reproduces the mechanism of Figure 1: two sorted
// three-candidate lists merge in one linear pass into a sorted,
// non-dominated list of at most n+m-1 candidates.
func TestLinearMergeFigure1(t *testing.T) {
	w := testWorker(Rule2P)
	// Strictly sorted in both L and T (as in the figure).
	a := w.mkLeafFrontier([2]float64{1, -30}, [2]float64{2, -20}, [2]float64{3, -10})
	b := w.mkLeafFrontier([2]float64{1.5, -25}, [2]float64{2.5, -15}, [2]float64{4, -5})
	// Remember each leaf's mean T by provenance ref, to check the merged
	// RAT against its actual predecessors.
	leafT := make(map[int32]float64)
	for _, f := range []*frontier{a, b} {
		for i := 0; i < f.len(); i++ {
			leafT[f.ref[i]] = f.tn[i]
		}
	}
	out, err := w.mergeLinear(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.len() > a.len()+b.len()-1 {
		t.Fatalf("merge emitted %d candidates, linear bound is %d", out.len(), a.len()+b.len()-1)
	}
	out = w.prn.prune(out)
	// Loads add; RATs are the pairwise min.
	for i := 0; i < out.len(); i++ {
		if out.ln[i] < 2.5 || out.ln[i] > 7 {
			t.Errorf("merged load %g outside pairwise-sum range", out.ln[i])
		}
		pr := w.eng.prov.at(out.ref[i])
		if pr.op != opMerge || pr.pred < 0 || pr.pred2 < 0 {
			t.Error("merge provenance missing")
			continue
		}
		if out.tn[i] != min(leafT[pr.pred], leafT[pr.pred2]) {
			t.Errorf("merged T %g != min(%g, %g)", out.tn[i], leafT[pr.pred], leafT[pr.pred2])
		}
	}
	// Result is a strict staircase.
	assertStaircase(t, out)
	// The best-RAT combination must survive: max over pairs of min(Ta, Tb)
	// subject to it being on the staircase.
	bestT := out.tn[out.len()-1]
	wantBest := -10.0 // min(-10, -5) from the two best-T inputs
	if bestT != wantBest {
		t.Errorf("best merged T = %g, want %g", bestT, wantBest)
	}
}

// TestMergeLinearEquivalentToCrossProduct verifies on random sorted
// staircase lists that linear merging (after pruning) keeps exactly the
// same non-dominated set as the full cross product (after pruning) — the
// optimality argument behind the O(n+m) merge.
func TestMergeLinearEquivalentToCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		w := testWorker(Rule2P)
		mk := func(n int) *frontier {
			pairs := make([][2]float64, n)
			for i := range pairs {
				pairs[i] = [2]float64{rng.Float64() * 50, -rng.Float64() * 50}
			}
			return w.prn.prune(w.mkLeafFrontier(pairs...))
		}
		a := mk(1 + rng.Intn(12))
		b := mk(1 + rng.Intn(12))
		lin, err := w.mergeLinear(0, a, b)
		if err != nil {
			t.Fatal(err)
		}
		lin = w.prn.prune(lin)
		cross, err := w.mergeCross(0, a, b)
		if err != nil {
			t.Fatal(err)
		}
		cross = w.prn.prune(cross)
		if lin.len() != cross.len() {
			t.Fatalf("trial %d: linear kept %d, cross kept %d", trial, lin.len(), cross.len())
		}
		for i := 0; i < lin.len(); i++ {
			if lin.ln[i] != cross.ln[i] || lin.tn[i] != cross.tn[i] {
				t.Fatalf("trial %d: staircase differs at %d: (%g,%g) vs (%g,%g)",
					trial, i, lin.ln[i], lin.tn[i], cross.ln[i], cross.tn[i])
			}
		}
	}
}

func TestMergeCrossSize(t *testing.T) {
	w := testWorker(Rule4P)
	a := w.mkLeafFrontier([2]float64{1, -1}, [2]float64{2, -2})
	b := w.mkLeafFrontier([2]float64{3, -3}, [2]float64{4, -4}, [2]float64{5, -5})
	out, err := w.mergeCross(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.len() != 6 {
		t.Errorf("cross product size = %d, want 6", out.len())
	}
}

func TestMergeCrossCapacity(t *testing.T) {
	w := testWorker(Rule4P)
	w.eng.maxCand = 5
	a := w.mkLeafFrontier([2]float64{1, -1}, [2]float64{2, -2}, [2]float64{3, -3})
	b := w.mkLeafFrontier([2]float64{4, -4}, [2]float64{5, -5})
	if _, err := w.mergeCross(0, a, b); err == nil {
		t.Error("capacity-exceeding cross product accepted")
	}
}

func TestMergeStatisticalCorrelation(t *testing.T) {
	// Merging correlated subtrees must use the correlation-aware min: with
	// perfectly correlated equal-variance inputs, min is exactly the
	// smaller input (no Clark penalty).
	w := testWorker(Rule2P)
	src := w.eng.space.Add(variation.ClassInterDie, 1, "G")
	a := newFrontier(1, false)
	a.push(variation.Const(5),
		variation.NewForm(-10, []variation.Term{{ID: src, Coef: 2}}), -1, w.eng.space)
	b := newFrontier(1, false)
	b.push(variation.Const(5),
		variation.NewForm(-12, []variation.Term{{ID: src, Coef: 2}}), -1, w.eng.space)
	m := newFrontier(1, false)
	w.mergeCand(m, 0, a, 0, b, 0)
	if m.tn[0] != -12 {
		t.Errorf("correlated min mean = %g, want -12 exactly", m.tn[0])
	}
	if m.ln[0] != 10 {
		t.Errorf("merged load = %g, want 10", m.ln[0])
	}
	// Independent inputs do get the Clark penalty (mean below both).
	c := newFrontier(1, false)
	c.push(variation.Const(5),
		variation.NewForm(-10, []variation.Term{{ID: w.eng.space.Add(variation.ClassRandom, 1, "x"), Coef: 2}}),
		-1, w.eng.space)
	d := newFrontier(1, false)
	d.push(variation.Const(5),
		variation.NewForm(-10, []variation.Term{{ID: w.eng.space.Add(variation.ClassRandom, 1, "y"), Coef: 2}}),
		-1, w.eng.space)
	m2 := newFrontier(1, false)
	w.mergeCand(m2, 0, c, 0, d, 0)
	if !(m2.tn[0] < -10) {
		t.Errorf("independent equal-mean min = %g, want below -10", m2.tn[0])
	}
}

// TestMergePreservesBestUpperBound: the staircase after merge+prune always
// contains a candidate achieving the best possible merged T.
func TestMergePreservesBestUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		w := testWorker(Rule2P)
		mk := func(n int) *frontier {
			pairs := make([][2]float64, n)
			for i := range pairs {
				pairs[i] = [2]float64{rng.Float64() * 40, -rng.Float64() * 60}
			}
			return w.prn.prune(w.mkLeafFrontier(pairs...))
		}
		a := mk(1 + rng.Intn(10))
		b := mk(1 + rng.Intn(10))
		best := min(a.tn[a.len()-1], b.tn[b.len()-1])
		out, err := w.mergeLinear(0, a, b)
		if err != nil {
			t.Fatal(err)
		}
		out = w.prn.prune(out)
		got := make([]float64, out.len())
		copy(got, out.tn)
		sort.Float64s(got)
		if got[len(got)-1] != best {
			t.Fatalf("trial %d: best merged T %g, want %g", trial, got[len(got)-1], best)
		}
	}
}
