package core

import (
	"math/rand"
	"sort"
	"testing"

	"vabuf/internal/variation"
)

func testWorker(rule Rule) *worker {
	opts := Options{Rule: rule, PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}
	e := &engine{opts: opts, space: variation.NewSpace()}
	w := &worker{eng: e, terms: variation.NewArena()}
	w.prn = newPruner(w.eng.space, opts, &w.stats)
	return w
}

// TestLinearMergeFigure1 reproduces the mechanism of Figure 1: two sorted
// three-candidate lists merge in one linear pass into a sorted,
// non-dominated list of at most n+m-1 candidates.
func TestLinearMergeFigure1(t *testing.T) {
	w := testWorker(Rule2P)
	// Strictly sorted in both L and T (as in the figure).
	a := []*Candidate{mkCand(1, -30), mkCand(2, -20), mkCand(3, -10)}
	b := []*Candidate{mkCand(1.5, -25), mkCand(2.5, -15), mkCand(4, -5)}
	out, err := w.mergeLinear(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > len(a)+len(b)-1 {
		t.Fatalf("merge emitted %d candidates, linear bound is %d", len(out), len(a)+len(b)-1)
	}
	out = w.prn.prune(out)
	// Loads add; RATs are the pairwise min.
	for _, c := range out {
		if c.L.Nominal < 2.5 || c.L.Nominal > 7 {
			t.Errorf("merged load %g outside pairwise-sum range", c.L.Nominal)
		}
		if c.op != opMerge || c.pred == nil || c.pred2 == nil {
			t.Error("merge provenance missing")
		}
		if c.T.Nominal != min(c.pred.T.Nominal, c.pred2.T.Nominal) {
			t.Errorf("merged T %g != min(%g, %g)", c.T.Nominal, c.pred.T.Nominal, c.pred2.T.Nominal)
		}
	}
	// Result is a strict staircase.
	for i := 1; i < len(out); i++ {
		if !(out[i].MeanL() > out[i-1].MeanL() && out[i].MeanT() > out[i-1].MeanT()) {
			t.Error("merged+pruned output not strictly sorted")
		}
	}
	// The best-RAT combination must survive: max over pairs of min(Ta, Tb)
	// subject to it being on the staircase.
	bestT := out[len(out)-1].T.Nominal
	wantBest := -10.0 // min(-10, -5) from the two best-T inputs
	if bestT != wantBest {
		t.Errorf("best merged T = %g, want %g", bestT, wantBest)
	}
}

// TestMergeLinearEquivalentToCrossProduct verifies on random sorted
// staircase lists that linear merging (after pruning) keeps exactly the
// same non-dominated set as the full cross product (after pruning) — the
// optimality argument behind the O(n+m) merge.
func TestMergeLinearEquivalentToCrossProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		w := testWorker(Rule2P)
		mk := func(n int) []*Candidate {
			list := make([]*Candidate, n)
			for i := range list {
				list[i] = mkCand(rng.Float64()*50, -rng.Float64()*50)
			}
			return w.prn.prune(list)
		}
		a := mk(1 + rng.Intn(12))
		b := mk(1 + rng.Intn(12))
		lin, err := w.mergeLinear(0, a, b)
		if err != nil {
			t.Fatal(err)
		}
		lin = w.prn.prune(lin)
		cross, err := w.mergeCross(0, a, b)
		if err != nil {
			t.Fatal(err)
		}
		cross = w.prn.prune(cross)
		if len(lin) != len(cross) {
			t.Fatalf("trial %d: linear kept %d, cross kept %d", trial, len(lin), len(cross))
		}
		for i := range lin {
			if lin[i].L.Nominal != cross[i].L.Nominal || lin[i].T.Nominal != cross[i].T.Nominal {
				t.Fatalf("trial %d: staircase differs at %d: (%g,%g) vs (%g,%g)",
					trial, i,
					lin[i].L.Nominal, lin[i].T.Nominal,
					cross[i].L.Nominal, cross[i].T.Nominal)
			}
		}
	}
}

func TestMergeCrossSize(t *testing.T) {
	w := testWorker(Rule4P)
	a := []*Candidate{mkCand(1, -1), mkCand(2, -2)}
	b := []*Candidate{mkCand(3, -3), mkCand(4, -4), mkCand(5, -5)}
	out, err := w.mergeCross(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Errorf("cross product size = %d, want 6", len(out))
	}
}

func TestMergeCrossCapacity(t *testing.T) {
	w := testWorker(Rule4P)
	w.eng.maxCand = 5
	a := []*Candidate{mkCand(1, -1), mkCand(2, -2), mkCand(3, -3)}
	b := []*Candidate{mkCand(4, -4), mkCand(5, -5)}
	if _, err := w.mergeCross(0, a, b); err == nil {
		t.Error("capacity-exceeding cross product accepted")
	}
}

func TestMergeStatisticalCorrelation(t *testing.T) {
	// Merging correlated subtrees must use the correlation-aware min: with
	// perfectly correlated equal-variance inputs, min is exactly the
	// smaller input (no Clark penalty).
	w := testWorker(Rule2P)
	src := w.eng.space.Add(variation.ClassInterDie, 1, "G")
	a := &Candidate{
		L: variation.Const(5),
		T: variation.NewForm(-10, []variation.Term{{ID: src, Coef: 2}}),
	}
	b := &Candidate{
		L: variation.Const(5),
		T: variation.NewForm(-12, []variation.Term{{ID: src, Coef: 2}}),
	}
	m := w.mergeCand(0, a, b)
	if m.T.Nominal != -12 {
		t.Errorf("correlated min mean = %g, want -12 exactly", m.T.Nominal)
	}
	if m.L.Nominal != 10 {
		t.Errorf("merged load = %g, want 10", m.L.Nominal)
	}
	// Independent inputs do get the Clark penalty (mean below both).
	c := &Candidate{
		L: variation.Const(5),
		T: variation.NewForm(-10, []variation.Term{{ID: w.eng.space.Add(variation.ClassRandom, 1, "x"), Coef: 2}}),
	}
	d := &Candidate{
		L: variation.Const(5),
		T: variation.NewForm(-10, []variation.Term{{ID: w.eng.space.Add(variation.ClassRandom, 1, "y"), Coef: 2}}),
	}
	m2 := w.mergeCand(0, c, d)
	if !(m2.T.Nominal < -10) {
		t.Errorf("independent equal-mean min = %g, want below -10", m2.T.Nominal)
	}
}

// TestMergePreservesBestUpperBound: the staircase after merge+prune always
// contains a candidate achieving the best possible merged T.
func TestMergePreservesBestUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		w := testWorker(Rule2P)
		mk := func(n int) []*Candidate {
			list := make([]*Candidate, n)
			for i := range list {
				list[i] = mkCand(rng.Float64()*40, -rng.Float64()*60)
			}
			return w.prn.prune(list)
		}
		a := mk(1 + rng.Intn(10))
		b := mk(1 + rng.Intn(10))
		best := min(a[len(a)-1].T.Nominal, b[len(b)-1].T.Nominal)
		out, err := w.mergeLinear(0, a, b)
		if err != nil {
			t.Fatal(err)
		}
		out = w.prn.prune(out)
		got := make([]float64, len(out))
		for i, c := range out {
			got[i] = c.T.Nominal
		}
		sort.Float64s(got)
		if got[len(got)-1] != best {
			t.Fatalf("trial %d: best merged T %g, want %g", trial, got[len(got)-1], best)
		}
	}
}
