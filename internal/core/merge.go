package core

import (
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// mergeCand combines candidate i of frontier a with candidate j of
// frontier b at node (eq. 29–30 / eq. 37–38): loads add, RATs take the
// statistical minimum. The result is appended to dst.
func (w *worker) mergeCand(dst *frontier, node rctree.NodeID, a *frontier, i int, b *frontier, j int) {
	res := variation.MinIn(w.terms, a.tform(i), b.tform(j), w.eng.space)
	l := a.lform(i).AddIn(w.terms, b.lform(j))
	ref := w.prov.alloc(prov{
		pred:  a.ref[i],
		pred2: b.ref[j],
		node:  node,
		op:    opMerge,
	})
	dst.push(l, res.Form, ref, w.eng.space)
	w.stats.Generated++
}

// mergeLinear is the Figure 1 merge: both inputs are sorted ascending in
// mean L and mean T (the invariant the 2P prune sweep establishes), so a
// merge-sort-like walk emits at most n+m-1 non-dominated combinations.
// The pointer whose candidate currently limits the merged RAT (the smaller
// mean T) advances, because only a better version of that side can improve
// the combination. The walk itself touches only the contiguous mean-T
// slices; term lists are read just for the emitted combinations.
func (w *worker) mergeLinear(node rctree.NodeID, a, b *frontier) (*frontier, error) {
	out := newFrontier(a.len()+b.len(), w.prn.needSigmas())
	at, bt := a.tn, b.tn
	i, j := 0, 0
	for i < len(at) && j < len(bt) {
		w.mergeCand(out, node, a, i, b, j)
		// Advance the side with the smaller mean T; advance both on ties.
		switch {
		case at[i] < bt[j]:
			i++
		case at[i] > bt[j]:
			j++
		default:
			i++
			j++
		}
	}
	if err := w.checkBudget(out.len()); err != nil {
		return nil, err
	}
	w.stats.Merges++
	return out, nil
}

// mergeCross is the O(n·m) cross-product merge the 4P partial order forces
// (§2.2): without a strict ordering no combination can be skipped.
func (w *worker) mergeCross(node rctree.NodeID, a, b *frontier) (*frontier, error) {
	if w.eng.maxCand > 0 && a.len()*b.len() > w.eng.maxCand {
		return nil, w.capacityErr(a.len() * b.len())
	}
	out := newFrontier(a.len()*b.len(), w.prn.needSigmas())
	for i := 0; i < a.len(); i++ {
		for j := 0; j < b.len(); j++ {
			w.mergeCand(out, node, a, i, b, j)
		}
	}
	w.stats.Merges++
	return out, nil
}

// merge dispatches on the active rule.
func (w *worker) merge(node rctree.NodeID, a, b *frontier) (*frontier, error) {
	if w.eng.opts.Rule == Rule4P {
		return w.mergeCross(node, a, b)
	}
	return w.mergeLinear(node, a, b)
}
