package core

import (
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// mergeCand combines one candidate from each subtree at node (eq. 29–30 /
// eq. 37–38): loads add, RATs take the statistical minimum.
func (e *engine) mergeCand(node rctree.NodeID, a, b *Candidate) *Candidate {
	res := variation.Min(a.T, b.T, e.space)
	c := &Candidate{
		L:     a.L.Add(b.L),
		T:     res.Form,
		node:  node,
		op:    opMerge,
		pred:  a,
		pred2: b,
	}
	if e.prn.needSigmas() {
		c.fillSigmas(e.space)
	}
	e.stats.Generated++
	return c
}

// mergeLinear is the Figure 1 merge: both inputs are sorted ascending in
// mean L and mean T (the invariant the 2P prune sweep establishes), so a
// merge-sort-like walk emits at most n+m-1 non-dominated combinations.
// The pointer whose candidate currently limits the merged RAT (the smaller
// mean T) advances, because only a better version of that side can improve
// the combination.
func (e *engine) mergeLinear(node rctree.NodeID, a, b []*Candidate) ([]*Candidate, error) {
	out := make([]*Candidate, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		out = append(out, e.mergeCand(node, a[i], b[j]))
		// Advance the side with the smaller mean T; advance both on ties.
		switch {
		case a[i].T.Nominal < b[j].T.Nominal:
			i++
		case a[i].T.Nominal > b[j].T.Nominal:
			j++
		default:
			i++
			j++
		}
	}
	if err := e.checkBudget(len(out)); err != nil {
		return nil, err
	}
	e.stats.Merges++
	return out, nil
}

// mergeCross is the O(n·m) cross-product merge the 4P partial order forces
// (§2.2): without a strict ordering no combination can be skipped.
func (e *engine) mergeCross(node rctree.NodeID, a, b []*Candidate) ([]*Candidate, error) {
	if e.maxCand > 0 && len(a)*len(b) > e.maxCand {
		return nil, e.capacityErr(len(a) * len(b))
	}
	out := make([]*Candidate, 0, len(a)*len(b))
	for _, ca := range a {
		for _, cb := range b {
			out = append(out, e.mergeCand(node, ca, cb))
		}
	}
	e.stats.Merges++
	return out, nil
}

// merge dispatches on the active rule.
func (e *engine) merge(node rctree.NodeID, a, b []*Candidate) ([]*Candidate, error) {
	if e.opts.Rule == Rule4P {
		return e.mergeCross(node, a, b)
	}
	return e.mergeLinear(node, a, b)
}
