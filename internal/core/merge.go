package core

import (
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// mergeCand combines one candidate from each subtree at node (eq. 29–30 /
// eq. 37–38): loads add, RATs take the statistical minimum.
func (w *worker) mergeCand(node rctree.NodeID, a, b *Candidate) *Candidate {
	res := variation.MinIn(w.terms, a.T, b.T, w.eng.space)
	c := w.cands.alloc()
	c.L = a.L.AddIn(w.terms, b.L)
	c.T = res.Form
	c.node = node
	c.op = opMerge
	c.pred = a
	c.pred2 = b
	if w.prn.needSigmas() {
		c.fillSigmas(w.eng.space)
	}
	w.stats.Generated++
	return c
}

// mergeLinear is the Figure 1 merge: both inputs are sorted ascending in
// mean L and mean T (the invariant the 2P prune sweep establishes), so a
// merge-sort-like walk emits at most n+m-1 non-dominated combinations.
// The pointer whose candidate currently limits the merged RAT (the smaller
// mean T) advances, because only a better version of that side can improve
// the combination.
func (w *worker) mergeLinear(node rctree.NodeID, a, b []*Candidate) ([]*Candidate, error) {
	out := make([]*Candidate, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		out = append(out, w.mergeCand(node, a[i], b[j]))
		// Advance the side with the smaller mean T; advance both on ties.
		switch {
		case a[i].T.Nominal < b[j].T.Nominal:
			i++
		case a[i].T.Nominal > b[j].T.Nominal:
			j++
		default:
			i++
			j++
		}
	}
	if err := w.checkBudget(len(out)); err != nil {
		return nil, err
	}
	w.stats.Merges++
	return out, nil
}

// mergeCross is the O(n·m) cross-product merge the 4P partial order forces
// (§2.2): without a strict ordering no combination can be skipped.
func (w *worker) mergeCross(node rctree.NodeID, a, b []*Candidate) ([]*Candidate, error) {
	if w.eng.maxCand > 0 && len(a)*len(b) > w.eng.maxCand {
		return nil, w.capacityErr(len(a) * len(b))
	}
	out := make([]*Candidate, 0, len(a)*len(b))
	for _, ca := range a {
		for _, cb := range b {
			out = append(out, w.mergeCand(node, ca, cb))
		}
	}
	w.stats.Merges++
	return out, nil
}

// merge dispatches on the active rule.
func (w *worker) merge(node rctree.NodeID, a, b []*Candidate) ([]*Candidate, error) {
	if w.eng.opts.Rule == Rule4P {
		return w.mergeCross(node, a, b)
	}
	return w.mergeLinear(node, a, b)
}
