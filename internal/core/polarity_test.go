package core

import (
	"math"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
)

// invLib pairs one buffer with one inverter.
func invLib() device.Library {
	return device.Library{
		{Name: "buf", Cb0: 1.3, Tb0: 50, Rb: 0.5},
		{Name: "inv", Cb0: 1.3, Tb0: 25, Rb: 0.5, Inverting: true},
	}
}

// pathInversions counts inverters on the path from each sink to the root.
func pathInversions(tr *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int) map[rctree.NodeID]int {
	out := make(map[rctree.NodeID]int)
	for _, sink := range tr.Sinks() {
		count := 0
		for id := sink; id != rctree.NoNode; id = tr.Node(id).Parent {
			if bi, ok := assign[id]; ok && lib[bi].Inverting {
				count++
			}
		}
		out[sink] = count
	}
	return out
}

func TestInvertersPairUpOnEveryPath(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lib := invLib()
		res, err := Insert(tr, Options{Library: lib})
		if err != nil {
			t.Fatal(err)
		}
		for sink, n := range pathInversions(tr, lib, res.Assignment) {
			if n%2 != 0 {
				t.Fatalf("seed %d: sink %d sees %d inversions (odd!)", seed, sink, n)
			}
		}
		// The assignment still re-evaluates to the reported RAT
		// (electrically, inverters are just fast buffers).
		ev, err := rctree.Evaluate(tr, nominalAssignment(lib, res.Assignment))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.RootRAT-res.Mean) > 1e-6 {
			t.Errorf("seed %d: re-evaluates to %.4f, DP said %.4f", seed, ev.RootRAT, res.Mean)
		}
	}
}

func TestInvertersCanBeatBuffersAlone(t *testing.T) {
	// Inverters are faster (half the intrinsic delay); on a long chain the
	// inverter-enabled library should find at least as good a solution as
	// buffers alone.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bufOnly := device.Library{invLib()[0]}
	both := invLib()
	a, err := Insert(tr, Options{Library: bufOnly})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Insert(tr, Options{Library: both})
	if err != nil {
		t.Fatal(err)
	}
	if b.Mean < a.Mean-1e-9 {
		t.Errorf("adding inverters made the result worse: %.3f vs %.3f", b.Mean, a.Mean)
	}
	// On a net this large, the faster inverters should actually win
	// somewhere: at least one inverter in use.
	usedInv := false
	for _, bi := range b.Assignment {
		if both[bi].Inverting {
			usedInv = true
			break
		}
	}
	if !usedInv && b.Mean == a.Mean {
		t.Log("inverters unused; acceptable but unexpected on a 50-sink net")
	}
}

func TestInverterOnlyLibrary(t *testing.T) {
	// With only inverters the engine must still deliver even inversion
	// counts (pairs) or no buffering at all — never odd parity.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lib := device.Library{invLib()[1]}
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	for sink, n := range pathInversions(tr, lib, res.Assignment) {
		if n%2 != 0 {
			t.Fatalf("sink %d sees %d inversions with inverter-only library", sink, n)
		}
	}
}

func TestNonInvertingLibraryUnchanged(t *testing.T) {
	// The polarity machinery must be a no-op for plain buffer libraries:
	// same result as always (cross-checked against brute force).
	lib := smallLib()
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 4, Seed: 11, DieSide: 4000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceBest(t, tr, lib)
	if math.Abs(res.Mean-want) > 1e-9 {
		t.Errorf("polarity-aware engine broke the plain path: %.6f vs %.6f", res.Mean, want)
	}
}

func TestInverterBruteForceParity(t *testing.T) {
	// Exhaustive check on a tiny tree: the DP must match the best
	// even-parity assignment found by enumeration.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 3, Seed: 13, DieSide: 6000})
	if err != nil {
		t.Fatal(err)
	}
	lib := invLib()
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate all assignments; keep only even-parity ones.
	var positions []rctree.NodeID
	for i := range tr.Nodes {
		if tr.Nodes[i].BufferOK {
			positions = append(positions, tr.Nodes[i].ID)
		}
	}
	choices := len(lib) + 1
	total := 1
	for range positions {
		total *= choices
	}
	best := math.Inf(-1)
	for code := 0; code < total; code++ {
		assign := make(map[rctree.NodeID]int)
		c := code
		for _, pos := range positions {
			pick := c % choices
			c /= choices
			if pick > 0 {
				assign[pos] = pick - 1
			}
		}
		legal := true
		for _, n := range pathInversions(tr, lib, assign) {
			if n%2 != 0 {
				legal = false
				break
			}
		}
		if !legal {
			continue
		}
		ev, err := rctree.Evaluate(tr, nominalAssignment(lib, assign))
		if err != nil {
			t.Fatal(err)
		}
		if ev.RootRAT > best {
			best = ev.RootRAT
		}
	}
	if math.Abs(res.Mean-best) > 1e-9 {
		t.Errorf("DP %.6f != best even-parity assignment %.6f", res.Mean, best)
	}
}
