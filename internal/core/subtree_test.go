package core

import (
	"math"
	"reflect"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// assertSameSolution compares the result fields the cache promises to
// reproduce exactly. Work counters (Generated, Pruned, ...) are
// deliberately excluded: cached runs report only the work actually done.
func assertSameSolution(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Assignment, want.Assignment) {
		t.Errorf("%s: assignments differ (%d vs %d buffers)",
			label, len(got.Assignment), len(want.Assignment))
	}
	if !reflect.DeepEqual(got.WireAssignment, want.WireAssignment) {
		t.Errorf("%s: wire assignments differ", label)
	}
	if math.Float64bits(got.RAT.Nominal) != math.Float64bits(want.RAT.Nominal) ||
		!reflect.DeepEqual(got.RAT.Terms, want.RAT.Terms) {
		t.Errorf("%s: RAT differs: %v vs %v", label, got.RAT.Nominal, want.RAT.Nominal)
	}
	if math.Float64bits(got.Sigma) != math.Float64bits(want.Sigma) ||
		math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Errorf("%s: sigma/objective (%v, %v) != (%v, %v)",
			label, got.Sigma, got.Objective, want.Sigma, want.Objective)
	}
	if got.RootCandidates != want.RootCandidates {
		t.Errorf("%s: root candidates %d != %d", label, got.RootCandidates, want.RootCandidates)
	}
}

func subtreeTestTree(t *testing.T) (*rctree.Tree, *variation.Model) {
	t.Helper()
	tr, err := benchgen.Build("r1")
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	return tr, model
}

// TestSubtreeCacheWarmIdentical: a cold cached run matches the uncached
// run exactly, and a warm rerun (full-tree hit) matches again.
func TestSubtreeCacheWarmIdentical(t *testing.T) {
	tr, model := subtreeTestTree(t)
	base := Options{Library: device.DefaultLibrary(), Model: model, Parallelism: 1}
	want, err := Insert(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSubtreeCache(0)
	cached := base
	cached.SubtreeCache = cache
	cold, err := Insert(tr, cached)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, "cold", cold, want)
	if cold.Stats.SubtreeHits != 0 || cold.Stats.SubtreeStores == 0 {
		t.Errorf("cold run: hits %d stores %d, want 0 hits and > 0 stores",
			cold.Stats.SubtreeHits, cold.Stats.SubtreeStores)
	}
	// The cold run does the same DP work as the uncached run.
	if cold.Stats.Generated != want.Stats.Generated || cold.Stats.Pruned != want.Stats.Pruned {
		t.Errorf("cold run work differs: gen %d/%d pruned %d/%d",
			cold.Stats.Generated, want.Stats.Generated, cold.Stats.Pruned, want.Stats.Pruned)
	}
	warm, err := Insert(tr, cached)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, "warm", warm, want)
	if warm.Stats.SubtreeHits == 0 {
		t.Error("warm rerun recorded no subtree hits")
	}
	if warm.Stats.Generated >= want.Stats.Generated {
		t.Errorf("warm rerun generated %d candidates, uncached %d — no work saved",
			warm.Stats.Generated, want.Stats.Generated)
	}
	cs := cache.Stats()
	if cs.Entries == 0 || cs.Bytes <= 0 || cs.Bytes > cs.MaxBytes {
		t.Errorf("cache stats implausible: %+v", cs)
	}
}

// TestSubtreeCacheMutatedBranch: after mutating one sink, a warm run must
// equal the uncached run on the mutated tree while reusing every untouched
// subtree.
func TestSubtreeCacheMutatedBranch(t *testing.T) {
	tr, model := subtreeTestTree(t)
	base := Options{Library: device.DefaultLibrary(), Model: model, Parallelism: 1}
	cache := NewSubtreeCache(0)
	cached := base
	cached.SubtreeCache = cache
	if _, err := Insert(tr, cached); err != nil {
		t.Fatal(err)
	}
	// Mutate one sink's RAT.
	var sink rctree.NodeID = -1
	for i := range tr.Nodes {
		if tr.Nodes[i].Kind == rctree.KindSink {
			sink = tr.Nodes[i].ID
		}
	}
	tr.Nodes[sink].RAT -= 40
	want, err := Insert(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Insert(tr, cached)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, "mutated", warm, want)
	if warm.Stats.SubtreeHits == 0 {
		t.Error("mutated-branch rerun reused no subtrees")
	}
	if warm.Stats.SubtreeMisses == 0 {
		t.Error("mutated-branch rerun missed nowhere — the mutation was not seen")
	}
	if warm.Stats.Generated >= want.Stats.Generated {
		t.Errorf("mutated-branch rerun generated %d candidates, uncached %d — no work saved",
			warm.Stats.Generated, want.Stats.Generated)
	}
}

// TestSubtreeCacheConfigIsolation: entries stored under one configuration
// must never serve a run with different pruning parameters.
func TestSubtreeCacheConfigIsolation(t *testing.T) {
	tr, model := subtreeTestTree(t)
	cache := NewSubtreeCache(0)
	lib := device.DefaultLibrary()
	a := Options{Library: lib, Model: model, Parallelism: 1, SubtreeCache: cache}
	if _, err := Insert(tr, a); err != nil {
		t.Fatal(err)
	}
	b := a
	b.PbarL, b.PbarT = 0.9, 0.9
	want, err := Insert(tr, Options{
		Library: lib, Model: model, Parallelism: 1, PbarL: 0.9, PbarT: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Insert(tr, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.SubtreeHits != 0 {
		t.Errorf("pbar 0.9 run hit %d entries stored under pbar 0.5", got.Stats.SubtreeHits)
	}
	assertSameSolution(t, "cross-config", got, want)
	// A second model instance must also be isolated, even on the same tree.
	model2, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	c := a
	c.Model = model2
	got2, err := Insert(tr, c)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Stats.SubtreeHits != 0 {
		t.Errorf("second model instance hit %d entries from the first", got2.Stats.SubtreeHits)
	}
}

// TestSubtreeCacheEviction pins the LRU byte-budget mechanics on synthetic
// entries.
func TestSubtreeCacheEviction(t *testing.T) {
	c := NewSubtreeCache(1000)
	mk := func(tag byte, bytes int64) *subtreeEntry {
		var key subtreeKey
		key[0] = tag
		return &subtreeEntry{key: key, bytes: bytes}
	}
	if !c.store(mk(1, 400)) || !c.store(mk(2, 400)) {
		t.Fatal("stores under budget rejected")
	}
	if c.store(mk(1, 100)) {
		t.Error("duplicate key stored")
	}
	if c.store(mk(3, 2000)) {
		t.Error("entry exceeding the whole budget stored")
	}
	// Touch entry 1 so entry 2 is the LRU victim.
	if c.lookup(mk(1, 0).key) == nil {
		t.Fatal("entry 1 vanished")
	}
	if !c.store(mk(4, 400)) {
		t.Fatal("third store rejected")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 800 {
		t.Errorf("after eviction: %+v, want 1 eviction, 2 entries, 800 bytes", s)
	}
	if c.lookup(mk(2, 0).key) != nil {
		t.Error("LRU victim still resident")
	}
	if c.lookup(mk(1, 0).key) == nil || c.lookup(mk(4, 0).key) == nil {
		t.Error("recently used entries evicted")
	}
}

// TestSubtreeCacheParallel: the cache composes with the parallel engine and
// still yields identical results.
func TestSubtreeCacheParallel(t *testing.T) {
	tr, model := subtreeTestTree(t)
	base := Options{Library: device.DefaultLibrary(), Model: model, Parallelism: 1}
	want, err := Insert(tr, base)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSubtreeCache(0)
	par := base
	par.Parallelism = 4
	par.MinParallelNodes = 1
	par.SubtreeCache = cache
	for i := 0; i < 3; i++ {
		got, err := Insert(tr, par)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSolution(t, "parallel-cached", got, want)
	}
	if cache.Stats().Hits == 0 {
		t.Error("repeated parallel runs never hit the cache")
	}
}

// TestAutoSerialDegrade: small trees run serially even when parallelism is
// requested, unless the degrade is disabled.
func TestAutoSerialDegrade(t *testing.T) {
	tr, err := benchgen.Build("p1") // 538 nodes < DefaultMinParallelNodes
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() >= DefaultMinParallelNodes {
		t.Fatalf("p1 has %d nodes, expected < %d", tr.Len(), DefaultMinParallelNodes)
	}
	lib := device.DefaultLibrary()
	auto, err := Insert(tr, Options{Library: lib, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Stats.Workers != 1 {
		t.Errorf("auto-degraded run used %d workers, want 1", auto.Stats.Workers)
	}
	forced, err := Insert(tr, Options{Library: lib, Parallelism: 4, MinParallelNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Stats.Workers <= 1 {
		t.Errorf("MinParallelNodes=1 run used %d workers, want > 1", forced.Stats.Workers)
	}
	assertSameSolution(t, "auto-vs-forced", auto, forced)
	// A custom threshold above the tree size also degrades.
	high, err := Insert(tr, Options{Library: lib, Parallelism: 4, MinParallelNodes: tr.Len() + 1})
	if err != nil {
		t.Fatal(err)
	}
	if high.Stats.Workers != 1 {
		t.Errorf("threshold above tree size used %d workers, want 1", high.Stats.Workers)
	}
}
