// Package core implements the paper's contribution: dynamic-programming
// buffer insertion over RC routing trees with candidate solutions carried
// as first-order canonical forms, the two-parameter (2P) pruning rule of
// §2.3 with its linear-time pruning and merging, the four-parameter (4P)
// baseline rule of §2.2 ([7] — the DATE 2005 algorithm), and the classic
// deterministic van Ginneken algorithm as the zero-variation special case.
package core

import (
	"sync"
	"sync/atomic"

	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// opKind records how a candidate was produced, for backtracking.
type opKind uint8

const (
	opLeaf opKind = iota
	opWire
	opBuffer
	opMerge
	// opCached marks a candidate restored from the subtree cache. Its
	// buffer/wire decisions were materialized when the entry was stored and
	// replay from the engine's replay table instead of a provenance walk.
	opCached
)

// frontier is a candidate list in struct-of-arrays layout: the scalar keys
// every sort, prune, and merge touches live in contiguous float64 slices,
// so the hot DP passes are flat scans instead of pointer chases over
// per-candidate structs. The variation term lists behind the (L, T)
// canonical forms ride along in parallel slices and are materialized into
// variation.Form values only at the call sites that need them (wire AXPY
// folds, statistical MIN, covariance fallbacks).
//
// A nil *frontier is the empty list.
type frontier struct {
	// ln, tn are the mean loading and mean RAT — the candidate ordering
	// keys of the 2P rule at pbar = 0.5 (Lemma 4).
	ln, tn []float64
	// sl, st cache the standard deviations of L and T. They are allocated
	// and filled only when the active pruning rule needs them (2P with
	// pbar > 0.5, 4P); nil otherwise.
	sl, st []float64
	// lt, tt are the sparse variation terms of the L and T forms (nil
	// entries for deterministic candidates).
	lt, tt [][]variation.Term
	// ref is the provenance record index of each candidate (see provArena).
	ref []int32
}

// newFrontier returns an empty frontier with room for n candidates.
func newFrontier(n int, sigmas bool) *frontier {
	f := &frontier{
		ln:  make([]float64, 0, n),
		tn:  make([]float64, 0, n),
		lt:  make([][]variation.Term, 0, n),
		tt:  make([][]variation.Term, 0, n),
		ref: make([]int32, 0, n),
	}
	if sigmas {
		f.sl = make([]float64, 0, n)
		f.st = make([]float64, 0, n)
	}
	return f
}

// len reports the number of candidates; a nil frontier is empty.
func (f *frontier) len() int {
	if f == nil {
		return 0
	}
	return len(f.ln)
}

// lform materializes the loading form of candidate i.
func (f *frontier) lform(i int) variation.Form {
	return variation.Form{Nominal: f.ln[i], Terms: f.lt[i]}
}

// tform materializes the RAT form of candidate i.
func (f *frontier) tform(i int) variation.Form {
	return variation.Form{Nominal: f.tn[i], Terms: f.tt[i]}
}

// push appends one candidate, computing the cached sigmas when the
// frontier carries them (exactly the values Form.Sigma would cache).
func (f *frontier) push(l, t variation.Form, ref int32, space *variation.Space) {
	f.ln = append(f.ln, l.Nominal)
	f.tn = append(f.tn, t.Nominal)
	f.lt = append(f.lt, l.Terms)
	f.tt = append(f.tt, t.Terms)
	f.ref = append(f.ref, ref)
	if f.sl != nil {
		f.sl = append(f.sl, l.Sigma(space))
		f.st = append(f.st, t.Sigma(space))
	}
}

// move copies candidate src into slot dst (the prune compaction step).
func (f *frontier) move(dst, src int) {
	if dst == src {
		return
	}
	f.ln[dst] = f.ln[src]
	f.tn[dst] = f.tn[src]
	f.lt[dst] = f.lt[src]
	f.tt[dst] = f.tt[src]
	f.ref[dst] = f.ref[src]
	if f.sl != nil {
		f.sl[dst] = f.sl[src]
		f.st[dst] = f.st[src]
	}
}

// truncate shortens the frontier to n candidates.
func (f *frontier) truncate(n int) {
	f.ln = f.ln[:n]
	f.tn = f.tn[:n]
	f.lt = f.lt[:n]
	f.tt = f.tt[:n]
	f.ref = f.ref[:n]
	if f.sl != nil {
		f.sl = f.sl[:n]
		f.st = f.st[:n]
	}
}

// polarityLists holds the candidate frontiers per required signal polarity:
// index 0 is the true signal, index 1 the inverted one. Without inverting
// buffers in the library, list 1 stays empty everywhere and the engine
// behaves exactly as the classic single-list DP.
type polarityLists [2]*frontier

// prov is one provenance record: how a candidate was produced, addressed
// by index into the run's provArena. The DAG through pred/pred2 is walked
// only at the very end (backtracking the chosen assignment) and when a
// subtree frontier is stored into the cache.
type prov struct {
	// pred, pred2 are arena indices of the predecessor candidates
	// (-1 = none). For opCached, pred is the candidate's position in the
	// replay-table entry named by aux.
	pred, pred2 int32
	// node is the tree node the operation happened at (the wire edge's
	// child node for opWire).
	node rctree.NodeID
	// aux is the buffer library index (opBuffer), the wire library index
	// (opWire; -1 without wire sizing), or the replay-table index
	// (opCached).
	aux int32
	op  opKind
}

// provBlock is the number of records per arena chunk (~80 KiB).
const provBlock = 4096

type provChunk [provBlock]prov

// provArena stores provenance records in fixed-size chunks addressed by a
// dense global index. Each DP worker appends through its own provWriter;
// the chunk table is republished copy-on-write through an atomic pointer,
// so a worker storing a subtree into the cache can walk records written by
// its (already joined) child workers while unrelated workers keep
// allocating. Record contents are only ever read after the writing worker
// finished the subtree (WaitGroup join or run end), so the records
// themselves need no synchronization.
type provArena struct {
	mu     sync.Mutex
	chunks atomic.Pointer[[]*provChunk]
}

// grab hands a fresh chunk and its base index to a worker.
func (pa *provArena) grab() (int32, *provChunk) {
	pa.mu.Lock()
	defer pa.mu.Unlock()
	var old []*provChunk
	if p := pa.chunks.Load(); p != nil {
		old = *p
	}
	next := make([]*provChunk, len(old)+1)
	copy(next, old)
	c := new(provChunk)
	next[len(old)] = c
	pa.chunks.Store(&next)
	return int32(len(old) * provBlock), c
}

// at returns the record with the given index. Only call for indices whose
// writing worker has been joined (see provArena).
func (pa *provArena) at(idx int32) *prov {
	chunks := *pa.chunks.Load()
	return &chunks[idx/provBlock][idx%provBlock]
}

// provWriter is one worker's append handle into the shared provArena.
type provWriter struct {
	pa    *provArena
	chunk *provChunk
	base  int32
	off   int32
	count int64
}

// alloc appends a record and returns its arena index.
func (w *provWriter) alloc(p prov) int32 {
	if w.chunk == nil || w.off == provBlock {
		w.base, w.chunk = w.pa.grab()
		w.off = 0
	}
	w.chunk[w.off] = p
	idx := w.base + w.off
	w.off++
	w.count++
	return idx
}

// collectDecisions walks the provenance DAG from the record at idx and
// records every buffer decision into bufs and (when non-nil) every
// wire-sizing decision into wires. The walk is iterative to stay safe on
// very deep candidate chains (segmentized wires, large H-trees).
func (e *engine) collectDecisions(idx int32, bufs map[rctree.NodeID]int, wires map[rctree.NodeID]int) {
	stack := []int32{idx}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for cur >= 0 {
			p := e.prov.at(cur)
			switch p.op {
			case opLeaf:
				cur = -1
			case opWire:
				if wires != nil && p.aux >= 0 {
					wires[p.node] = int(p.aux)
				}
				cur = p.pred
			case opBuffer:
				bufs[p.node] = int(p.aux)
				cur = p.pred
			case opMerge:
				stack = append(stack, p.pred2)
				cur = p.pred
			case opCached:
				d := e.replayEntry(p.aux).dec[p.pred]
				for _, b := range d.bufs {
					bufs[b.node] = int(b.idx)
				}
				if wires != nil {
					for _, w := range d.wires {
						wires[w.node] = int(w.idx)
					}
				}
				cur = -1
			}
		}
	}
}
