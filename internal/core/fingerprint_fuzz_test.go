package core

import (
	"math"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
)

// FuzzSubtreeFingerprint property-tests the canonical subtree fingerprints
// behind the DP cache: they must be deterministic, and any DP-relevant
// mutation of a node must change the fingerprint of exactly the subtrees
// containing the mutation (the node's root path) while every disjoint
// subtree keeps its key — the incrementality that makes ECO re-inserts
// cheap and, more importantly, the safety property that no stale frontier
// can ever be served for a changed subtree.
func FuzzSubtreeFingerprint(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(3), 1.5)
	f.Add(int64(2), uint8(1), uint16(0), -2.25)
	f.Add(int64(3), uint8(2), uint16(9), 0.0625)
	f.Add(int64(4), uint8(3), uint16(100), 7.0)
	f.Fuzz(func(t *testing.T, seed int64, mutKind uint8, nodeSel uint16, delta float64) {
		if delta == 0 || math.IsNaN(delta) || math.IsInf(delta, 0) {
			t.Skip()
		}
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 4 + int(uint64(seed)%12), Seed: seed})
		if err != nil {
			t.Skip()
		}
		opts := Options{Library: device.DefaultLibrary()}
		fps, size := subtreeFingerprints(tr, &opts)
		again, _ := subtreeFingerprints(tr, &opts)
		for id := range fps {
			if fps[id] != again[id] {
				t.Fatalf("fingerprints not deterministic at node %d", id)
			}
		}
		if size[tr.Root] != int32(tr.Len()) {
			t.Fatalf("root subtree size %d != tree size %d", size[tr.Root], tr.Len())
		}

		id := rctree.NodeID(int(nodeSel) % tr.Len())
		// owner is the node whose subtree key must absorb the mutation; for
		// wire-length edits that is the parent (the key covers child edges).
		owner := id
		bumped := func(old float64) (float64, bool) {
			nv := old + delta
			return nv, math.Float64bits(nv) != math.Float64bits(old)
		}
		switch mutKind % 4 {
		case 0, 1: // sink RAT / CapLoad: retarget to a sink
			for tr.Nodes[id].Kind != rctree.KindSink {
				id = (id + 1) % rctree.NodeID(tr.Len())
			}
			owner = id
			var nv float64
			var ok bool
			if mutKind%4 == 0 {
				nv, ok = bumped(tr.Nodes[id].RAT)
				tr.Nodes[id].RAT = nv
			} else {
				nv, ok = bumped(tr.Nodes[id].CapLoad)
				tr.Nodes[id].CapLoad = nv
			}
			if !ok {
				t.Skip() // delta vanished in rounding
			}
		case 2: // edge wire length: visible in the parent's key
			if tr.Nodes[id].Parent == rctree.NoNode {
				t.Skip()
			}
			nv, ok := bumped(tr.Nodes[id].WireLen)
			if !ok {
				t.Skip()
			}
			tr.Nodes[id].WireLen = nv
			owner = tr.Nodes[id].Parent
		case 3: // buffer-site legality
			tr.Nodes[id].BufferOK = !tr.Nodes[id].BufferOK
			owner = id
		}

		onPath := make(map[rctree.NodeID]bool)
		for n := owner; n != rctree.NoNode; n = tr.Nodes[n].Parent {
			onPath[n] = true
		}
		mut, mutSize := subtreeFingerprints(tr, &opts)
		for i := range fps {
			nid := rctree.NodeID(i)
			changed := fps[i] != mut[i]
			if onPath[nid] && !changed {
				t.Errorf("node %d contains the mutation but kept its fingerprint", i)
			}
			if !onPath[nid] && changed {
				t.Errorf("node %d is disjoint from the mutation but changed its fingerprint", i)
			}
			if size[i] != mutSize[i] {
				t.Errorf("node %d subtree size changed %d -> %d", i, size[i], mutSize[i])
			}
		}
	})
}
