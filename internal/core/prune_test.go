package core

import (
	"math/rand"
	"testing"

	"vabuf/internal/variation"
)

// mkFrontier builds a frontier of deterministic (L, T) candidates with no
// provenance (ref -1); sigmas are carried when needSigmas is set.
func mkFrontier(space *variation.Space, needSigmas bool, pairs ...[2]float64) *frontier {
	f := newFrontier(len(pairs), needSigmas)
	for _, c := range pairs {
		f.push(variation.Const(c[0]), variation.Const(c[1]), -1, space)
	}
	return f
}

// pushStatCand appends a candidate whose L and T each load one private
// source.
func pushStatCand(f *frontier, space *variation.Space, l, sl, t, st float64) {
	f.push(
		variation.NewForm(l, []variation.Term{{ID: space.Add(variation.ClassRandom, 1, "l"), Coef: sl}}),
		variation.NewForm(t, []variation.Term{{ID: space.Add(variation.ClassRandom, 1, "t"), Coef: st}}),
		-1, space)
}

func defaultPruner(space *variation.Space) *pruner {
	var st Stats
	opts := Options{PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}
	return newPruner(space, opts, &st)
}

// assertStaircase checks the frontier is strictly ascending in both means.
func assertStaircase(t *testing.T, f *frontier) {
	t.Helper()
	for i := 1; i < f.len(); i++ {
		if !(f.ln[i] > f.ln[i-1] && f.tn[i] > f.tn[i-1]) {
			t.Errorf("output not strictly ascending at %d: (%g,%g) after (%g,%g)",
				i, f.ln[i], f.tn[i], f.ln[i-1], f.tn[i-1])
		}
	}
}

func TestPrune2PMeanPath(t *testing.T) {
	space := variation.NewSpace()
	p := defaultPruner(space)
	f := mkFrontier(space, false,
		[2]float64{5, -10}, // dominated by (3, -8)
		[2]float64{3, -8},
		[2]float64{1, -20},
		[2]float64{7, -5},
		[2]float64{9, -5}, // dominated: same T, more load
	)
	out := p.prune(f)
	if out.len() != 3 {
		t.Fatalf("kept %d candidates: %v / %v", out.len(), out.ln, out.tn)
	}
	assertStaircase(t, out)
	if p.stats.Pruned != 2 {
		t.Errorf("pruned counter = %d, want 2", p.stats.Pruned)
	}
}

func TestPrune2PDuplicates(t *testing.T) {
	space := variation.NewSpace()
	p := defaultPruner(space)
	out := p.prune(mkFrontier(space, false,
		[2]float64{2, -3}, [2]float64{2, -3}, [2]float64{2, -3}))
	if out.len() != 1 {
		t.Errorf("duplicates not collapsed: kept %d", out.len())
	}
}

func TestPrune2PSmallLists(t *testing.T) {
	space := variation.NewSpace()
	p := defaultPruner(space)
	if got := p.prune(nil); got.len() != 0 {
		t.Error("nil frontier changed")
	}
	one := mkFrontier(space, false, [2]float64{1, 1})
	if got := p.prune(one); got.len() != 1 {
		t.Error("singleton pruned")
	}
}

// TestPrune2PInvariantsRandom checks on random deterministic candidate
// sets that the survivors form a strict staircase and that no survivor is
// dominated by any other survivor (pairwise, not just adjacent).
func TestPrune2PInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		space := variation.NewSpace()
		p := defaultPruner(space)
		n := 2 + rng.Intn(60)
		f := newFrontier(n, false)
		for i := 0; i < n; i++ {
			f.push(variation.Const(rng.Float64()*100), variation.Const(-rng.Float64()*100), -1, space)
		}
		out := p.prune(f)
		for i := 1; i < out.len(); i++ {
			if !(out.ln[i] > out.ln[i-1]) || !(out.tn[i] > out.tn[i-1]) {
				t.Fatalf("trial %d: not a strict staircase", trial)
			}
		}
		for i := 0; i < out.len(); i++ {
			for j := 0; j < out.len(); j++ {
				if i == j {
					continue
				}
				if out.ln[i] <= out.ln[j] && out.tn[i] >= out.tn[j] {
					t.Fatalf("trial %d: survivor %d dominated by %d", trial, j, i)
				}
			}
		}
	}
}

func TestPrune2PHigherPbarKeepsMore(t *testing.T) {
	// With pbar > 0.5 dominance requires a confident win, so fewer
	// candidates are pruned than at pbar = 0.5 when variances overlap.
	space := variation.NewSpace()
	var stLow, stHigh Stats
	low := newPruner(space, Options{PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}, &stLow)
	high := newPruner(space, Options{PbarL: 0.95, PbarT: 0.95, FourP: DefaultFourP()}, &stHigh)
	mk := func(sigmas bool) *frontier {
		// Overlapping distributions: means differ by less than a sigma.
		f := newFrontier(8, sigmas)
		for i := 0; i < 8; i++ {
			pushStatCand(f, space, 10+0.2*float64(i), 2.0, -50-0.2*float64(i), 2.0)
		}
		return f
	}
	keptLow := low.prune(mk(low.needSigmas())).len()
	keptHigh := high.prune(mk(high.needSigmas())).len()
	if keptHigh <= keptLow {
		t.Errorf("pbar 0.95 kept %d, pbar 0.5 kept %d; want more at higher pbar",
			keptHigh, keptLow)
	}
	if keptLow != 1 {
		t.Errorf("pbar 0.5 staircase should collapse this chain to 1, kept %d", keptLow)
	}
}

func TestPrune4PPartialOrder(t *testing.T) {
	space := variation.NewSpace()
	var st Stats
	p := newPruner(space, Options{
		Rule: Rule4P, PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP(),
	}, &st)
	// Clearly separated candidates: 4P dominance applies.
	sep := newFrontier(2, true)
	pushStatCand(sep, space, 1, 0.01, -5, 0.01)   // tiny load, great RAT
	pushStatCand(sep, space, 50, 0.01, -80, 0.01) // huge load, poor RAT
	out := p.prune(sep)
	if out.len() != 1 || out.ln[0] != 1 {
		t.Fatalf("4P failed to prune a clearly dominated candidate: kept %d", out.len())
	}
	// Overlapping quantile bands: no pruning (the partial-order weakness).
	ovl := newFrontier(2, true)
	pushStatCand(ovl, space, 10, 5, -50, 5)
	pushStatCand(ovl, space, 11, 5, -51, 5)
	out = p.prune(ovl)
	if out.len() != 2 {
		t.Errorf("4P pruned overlapping candidates: kept %d", out.len())
	}
}

// TestDominates2PMatchesDirectProbability pins the bound-based fast path
// of dominates2P to the direct eq. 8 evaluation on the forms.
func TestDominates2PMatchesDirectProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	space := variation.NewSpace()
	nsrc := 6
	for i := 0; i < nsrc; i++ {
		space.Add(variation.ClassRandom, 1, "s")
	}
	mkForms := func() (variation.Form, variation.Form) {
		terms := func() []variation.Term {
			var ts []variation.Term
			for id := 0; id < nsrc; id++ {
				if rng.Float64() < 0.6 {
					ts = append(ts, variation.Term{ID: variation.SourceID(id), Coef: rng.NormFloat64() * 3})
				}
			}
			return ts
		}
		return variation.NewForm(rng.Float64()*20, terms()),
			variation.NewForm(-rng.Float64()*50, terms())
	}
	for _, pbar := range []float64{0.6, 0.8, 0.95} {
		var st Stats
		p := newPruner(space, Options{PbarL: pbar, PbarT: pbar, FourP: DefaultFourP()}, &st)
		for trial := 0; trial < 2000; trial++ {
			aL, aT := mkForms()
			bL, bT := mkForms()
			if aL.Nominal > bL.Nominal {
				aL, aT, bL, bT = bL, bT, aL, aT // the sweep guarantees this order
			}
			f := newFrontier(2, true)
			f.push(aL, aT, -1, space)
			f.push(bL, bT, -1, space)
			got := p.dominates2P(f, 0, 1)
			want := variation.ProbGreater(bL, aL, space) >= pbar &&
				variation.ProbGreater(aT, bT, space) >= pbar
			if got != want {
				t.Fatalf("pbar %g trial %d: dominates=%v direct=%v\na=(%+v, %+v)\nb=(%+v, %+v)",
					pbar, trial, got, want, aL, aT, bL, bT)
			}
		}
	}
}

func TestNeedSigmas(t *testing.T) {
	space := variation.NewSpace()
	var st Stats
	if newPruner(space, Options{PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}, &st).needSigmas() {
		t.Error("mean-path pruner claims to need sigmas")
	}
	if !newPruner(space, Options{PbarL: 0.7, PbarT: 0.5, FourP: DefaultFourP()}, &st).needSigmas() {
		t.Error("pbar>0.5 pruner does not need sigmas")
	}
	if !newPruner(space, Options{Rule: Rule4P, PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}, &st).needSigmas() {
		t.Error("4P pruner does not need sigmas")
	}
}
