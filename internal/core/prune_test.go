package core

import (
	"math/rand"
	"testing"

	"vabuf/internal/variation"
)

// mkCand builds a candidate with deterministic (L, T).
func mkCand(l, t float64) *Candidate {
	return &Candidate{L: variation.Const(l), T: variation.Const(t)}
}

// mkStatCand builds a candidate whose L and T each load one private source.
func mkStatCand(space *variation.Space, l, sl, t, st float64) *Candidate {
	c := &Candidate{
		L: variation.NewForm(l, []variation.Term{{ID: space.Add(variation.ClassRandom, 1, "l"), Coef: sl}}),
		T: variation.NewForm(t, []variation.Term{{ID: space.Add(variation.ClassRandom, 1, "t"), Coef: st}}),
	}
	c.fillSigmas(space)
	return c
}

func defaultPruner(space *variation.Space) *pruner {
	var st Stats
	opts := Options{PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}
	return newPruner(space, opts, &st)
}

func TestPrune2PMeanPath(t *testing.T) {
	space := variation.NewSpace()
	p := defaultPruner(space)
	list := []*Candidate{
		mkCand(5, -10), // dominated by (3, -8)
		mkCand(3, -8),
		mkCand(1, -20),
		mkCand(7, -5),
		mkCand(9, -5), // dominated: same T, more load
	}
	out := p.prune(list)
	if len(out) != 3 {
		t.Fatalf("kept %d candidates: %+v", len(out), out)
	}
	// Strictly ascending in both means.
	for i := 1; i < len(out); i++ {
		if !(out[i].MeanL() > out[i-1].MeanL() && out[i].MeanT() > out[i-1].MeanT()) {
			t.Errorf("output not strictly ascending at %d", i)
		}
	}
	if p.stats.Pruned != 2 {
		t.Errorf("pruned counter = %d, want 2", p.stats.Pruned)
	}
}

func TestPrune2PDuplicates(t *testing.T) {
	space := variation.NewSpace()
	p := defaultPruner(space)
	out := p.prune([]*Candidate{mkCand(2, -3), mkCand(2, -3), mkCand(2, -3)})
	if len(out) != 1 {
		t.Errorf("duplicates not collapsed: kept %d", len(out))
	}
}

func TestPrune2PSmallLists(t *testing.T) {
	space := variation.NewSpace()
	p := defaultPruner(space)
	if got := p.prune(nil); len(got) != 0 {
		t.Error("nil list changed")
	}
	one := []*Candidate{mkCand(1, 1)}
	if got := p.prune(one); len(got) != 1 {
		t.Error("singleton pruned")
	}
}

// TestPrune2PInvariantsRandom checks on random deterministic candidate
// sets that the survivors form a strict staircase and that no survivor is
// dominated by any other survivor (pairwise, not just adjacent).
func TestPrune2PInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		space := variation.NewSpace()
		p := defaultPruner(space)
		n := 2 + rng.Intn(60)
		list := make([]*Candidate, n)
		for i := range list {
			list[i] = mkCand(rng.Float64()*100, -rng.Float64()*100)
		}
		out := p.prune(list)
		for i := 1; i < len(out); i++ {
			if !(out[i].MeanL() > out[i-1].MeanL()) || !(out[i].MeanT() > out[i-1].MeanT()) {
				t.Fatalf("trial %d: not a strict staircase", trial)
			}
		}
		for i := range out {
			for j := range out {
				if i == j {
					continue
				}
				if out[i].MeanL() <= out[j].MeanL() && out[i].MeanT() >= out[j].MeanT() {
					t.Fatalf("trial %d: survivor %d dominated by %d", trial, j, i)
				}
			}
		}
	}
}

func TestPrune2PHigherPbarKeepsMore(t *testing.T) {
	// With pbar > 0.5 dominance requires a confident win, so fewer
	// candidates are pruned than at pbar = 0.5 when variances overlap.
	space := variation.NewSpace()
	var stLow, stHigh Stats
	low := newPruner(space, Options{PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}, &stLow)
	high := newPruner(space, Options{PbarL: 0.95, PbarT: 0.95, FourP: DefaultFourP()}, &stHigh)
	mk := func() []*Candidate {
		// Overlapping distributions: means differ by less than a sigma.
		out := make([]*Candidate, 0, 8)
		for i := 0; i < 8; i++ {
			out = append(out, mkStatCand(space, 10+0.2*float64(i), 2.0, -50-0.2*float64(i), 2.0))
		}
		return out
	}
	keptLow := len(low.prune(mk()))
	keptHigh := len(high.prune(mk()))
	if keptHigh <= keptLow {
		t.Errorf("pbar 0.95 kept %d, pbar 0.5 kept %d; want more at higher pbar",
			keptHigh, keptLow)
	}
	if keptLow != 1 {
		t.Errorf("pbar 0.5 staircase should collapse this chain to 1, kept %d", keptLow)
	}
}

func TestPrune4PPartialOrder(t *testing.T) {
	space := variation.NewSpace()
	var st Stats
	p := newPruner(space, Options{
		Rule: Rule4P, PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP(),
	}, &st)
	// Clearly separated candidates: 4P dominance applies.
	a := mkStatCand(space, 1, 0.01, -5, 0.01)   // tiny load, great RAT
	b := mkStatCand(space, 50, 0.01, -80, 0.01) // huge load, poor RAT
	out := p.prune([]*Candidate{a, b})
	if len(out) != 1 || out[0] != a {
		t.Fatalf("4P failed to prune a clearly dominated candidate: kept %d", len(out))
	}
	// Overlapping quantile bands: no pruning (the partial-order weakness).
	c := mkStatCand(space, 10, 5, -50, 5)
	d := mkStatCand(space, 11, 5, -51, 5)
	out = p.prune([]*Candidate{c, d})
	if len(out) != 2 {
		t.Errorf("4P pruned overlapping candidates: kept %d", len(out))
	}
}

// TestDominates2PMatchesDirectProbability pins the bound-based fast path
// of dominates2P to the direct eq. 8 evaluation on the forms.
func TestDominates2PMatchesDirectProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	space := variation.NewSpace()
	nsrc := 6
	for i := 0; i < nsrc; i++ {
		space.Add(variation.ClassRandom, 1, "s")
	}
	mk := func() *Candidate {
		terms := func() []variation.Term {
			var ts []variation.Term
			for id := 0; id < nsrc; id++ {
				if rng.Float64() < 0.6 {
					ts = append(ts, variation.Term{ID: variation.SourceID(id), Coef: rng.NormFloat64() * 3})
				}
			}
			return ts
		}
		c := &Candidate{
			L: variation.NewForm(rng.Float64()*20, terms()),
			T: variation.NewForm(-rng.Float64()*50, terms()),
		}
		c.fillSigmas(space)
		return c
	}
	for _, pbar := range []float64{0.6, 0.8, 0.95} {
		var st Stats
		p := newPruner(space, Options{PbarL: pbar, PbarT: pbar, FourP: DefaultFourP()}, &st)
		for trial := 0; trial < 2000; trial++ {
			a, b := mk(), mk()
			if a.L.Nominal > b.L.Nominal {
				a, b = b, a // the sweep guarantees this order
			}
			got := p.dominates2P(a, b)
			want := variation.ProbGreater(b.L, a.L, space) >= pbar &&
				variation.ProbGreater(a.T, b.T, space) >= pbar
			if got != want {
				t.Fatalf("pbar %g trial %d: dominates=%v direct=%v\na=%+v\nb=%+v",
					pbar, trial, got, want, a, b)
			}
		}
	}
}

func TestNeedSigmas(t *testing.T) {
	space := variation.NewSpace()
	var st Stats
	if newPruner(space, Options{PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}, &st).needSigmas() {
		t.Error("mean-path pruner claims to need sigmas")
	}
	if !newPruner(space, Options{PbarL: 0.7, PbarT: 0.5, FourP: DefaultFourP()}, &st).needSigmas() {
		t.Error("pbar>0.5 pruner does not need sigmas")
	}
	if !newPruner(space, Options{Rule: Rule4P, PbarL: 0.5, PbarT: 0.5, FourP: DefaultFourP()}, &st).needSigmas() {
		t.Error("4P pruner does not need sigmas")
	}
}
