// Convex-hull buffering kernel for b-type libraries (Li & Shi, "An
// O(bn²) Time Algorithm for Optimal Buffer Insertion with b Buffer
// Types", arxiv 0710.4691), extended to the paper's 2P variation-aware
// frontier.
//
// The exact path materializes one buffered candidate per (candidate,
// buffer type) pair — b·m forms, provenance records and frontier slots
// per site — and lets the next prune discard the dominated ones. But a
// buffer decouples the upstream tree from the downstream load: every
// buffered candidate of one type presents the same load C_b, so at most
// one of them (the one maximizing Q − R_b·C over the frontier) can
// survive the sweep, and that optimum lies on the upper convex hull of
// the (C, Q) staircase. The kernel exploits this:
//
//   - Deterministic / exact-means runs (pbar = 0.5): for each type, a
//     flat scan over the staircase picks the argmax of the exactly
//     mirrored buffered objective; Li–Shi predictive pruning then skips
//     the type entirely when an existing candidate or an
//     already-selected stronger type dominates it on arrival. The scan
//     visits every staircase point rather than only hull vertices — the
//     argmax must be computed with bit-exact float semantics to honor
//     the bit-identity contract, and at realistic frontier sizes the
//     O(b·m) flat scan over two contiguous float64 columns costs less
//     than the hull bookkeeping it would avoid. The win is not the scan,
//     it is what the scan makes unnecessary: O(b + m) materialized
//     candidates (forms, provenance, sort keys) per site instead of
//     O(b·m).
//
//   - 2P runs at pbar > 0.5: probabilistic dominance is no longer the
//     mean order, so per-type reduction to one candidate is unsound.
//     Instead a per-type pre-prune drops a candidate only when the
//     type's mean-best candidate *certainly* dominates it under the
//     existing probAtLeast sandwich: identical load forms make the
//     L-test a bitwise replica of the sweep's own test, and the T-test
//     is certified against the pessimistic sigma bound
//     σ(Tj − Ti) ≤ σTj + σTi with a relative safety margin.
//
//   - 4P runs and uncertifiable frontiers fall back to the exact path
//     (Stats.HullFallbacks).
//
// Soundness rests on a property of both sweep rules: a candidate that
// gets pruned never enters the kept set, so it never influences any
// other prune decision. Removing a provably-pruned candidate from the
// input therefore leaves every surviving candidate — keys, forms,
// provenance — bit-identical. DESIGN.md §14 carries the full argument,
// including the chain covering a pre-pruned candidate whose certifying
// dominator is itself pruned.
package core

import (
	"math"
	"sort"

	"vabuf/internal/rctree"
)

// hullSafety is the relative slack on the pbar > 0.5 certainty test:
// the kernel claims "the sweep will certainly prune this candidate"
// only when the pessimistic-bound inequality holds with this much
// margin, so the sweep's own float evaluation (relative error ~1e-16)
// can never disagree with the certificate.
const hullSafety = 1e-6

// hullEmit is the arrival key (mean load, mean RAT) of a type-best
// candidate already emitted at this site, kept for predictive pruning
// of later types.
type hullEmit struct {
	ln, tn float64
}

// hullScratch is the kernel's per-worker reusable state.
type hullScratch struct {
	// pmax[p][i] is max(tn[0..i]) over the polarity-p originals — the
	// running maximum the exact-means sweep would have seen before any
	// candidate with a larger load.
	pmax [2][]float64
	// emitted collects the type-best candidates appended to each target
	// polarity list at the current site.
	emitted [2][]hullEmit
}

// prep resets the per-site state for polarity p and builds the tn
// prefix-max over the n0 original candidates. It returns false when the
// originals are not weakly sorted by mean load — the invariant every
// frontier producer (leaf, wire propagation, merge + prune) maintains —
// in which case the caller must fall back to exact generation.
func (hs *hullScratch) prep(p int, f *frontier, n0 int) bool {
	hs.emitted[p] = hs.emitted[p][:0]
	if cap(hs.pmax[p]) < n0 {
		hs.pmax[p] = make([]float64, n0)
	}
	hs.pmax[p] = hs.pmax[p][:n0]
	pm := hs.pmax[p]
	run := math.Inf(-1)
	for i := 0; i < n0; i++ {
		if i > 0 && f.ln[i] < f.ln[i-1] {
			return false
		}
		if f.tn[i] > run {
			run = f.tn[i]
		}
		pm[i] = run
	}
	return true
}

// dominatedOnArrival reports whether a buffered candidate with keys
// (cbn, v) would certainly be removed by the exact-means sweep of the
// target list: some original or already-emitted type best sorts before
// it — smaller load, or equal load with strictly larger RAT — with a
// RAT at least v. This is exactly the sweep's pruning predicate at
// pbar = 0.5, so the skip is sound (and complete) for that rule.
func (hs *hullScratch) dominatedOnArrival(target int, tf *frontier, n0 int, cbn, v float64) bool {
	if n0 > 0 {
		ln := tf.ln[:n0]
		lo := sort.SearchFloat64s(ln, cbn) // first original with ln >= cbn
		if lo > 0 && hs.pmax[target][lo-1] >= v {
			return true
		}
		for i := lo; i < n0 && ln[i] == cbn; i++ {
			if tf.tn[i] > v {
				return true
			}
		}
	}
	for _, eb := range hs.emitted[target] {
		if (eb.ln < cbn && eb.tn >= v) || (eb.ln == cbn && eb.tn > v) {
			return true
		}
	}
	return false
}

// addBuffersHull is the hull-kernel replacement for addBuffersExact,
// dispatching on the active 2P flavor. The engine only routes here for
// 2P rules (4P keeps the exact path).
func (w *worker) addBuffersHull(id rctree.NodeID, node *rctree.Node, pl polarityLists) polarityLists {
	if w.prn.exactMeans {
		n0 := [2]int{pl[0].len(), pl[1].len()}
		for p := 0; p < 2; p++ {
			if !w.hull.prep(p, pl[p], n0[p]) {
				w.stats.HullFallbacks++
				return w.addBuffersExact(id, node, pl)
			}
		}
		return w.hullExactMeans(id, pl, n0)
	}
	return w.hull2P(id, pl)
}

// hullExactMeans handles deterministic runs and 2P at pbar = 0.5: per
// (type, source polarity) it materializes only the staircase argmax of
// the buffered objective, and skips even that when it is dominated on
// arrival. The drive-capability gate mirrors the exact path: MaxLoad is
// compared against the candidate's *nominal* load only (see
// addBuffersExact).
func (w *worker) hullExactMeans(id rctree.NodeID, pl polarityLists, n0 [2]int) polarityLists {
	e := w.eng
	dev := e.deviation(id)
	out := pl
	w.stats.HullSites++
	hs := &w.hull
	emitted := 0
	for bi, b := range e.opts.Library {
		// Materialize the device forms exactly as the exact path does, so
		// the scan keys below are read from the very floats that will be
		// pushed — no separately-computed mirror can drift.
		cbForm := dev.ScaleIn(w.terms, b.Cb0).Shift(b.Cb0)
		tbForm := dev.ScaleIn(w.terms, b.Tb0).Shift(b.Tb0)
		cbn, tbn := cbForm.Nominal, tbForm.Nominal
		nrb := -b.Rb
		for p := 0; p < 2; p++ {
			target := p
			if b.Inverting {
				target = 1 - p
			}
			src := pl[p]
			best, eligible := -1, 0
			bestV := 0.0
			for i := 0; i < n0[p]; i++ {
				if b.MaxLoad > 0 && src.ln[i] > b.MaxLoad {
					continue
				}
				eligible++
				// Mirrors the nominal arithmetic of SubIn + AXPYIn below:
				// tn + (-1)·tbn is bitwise tn − tbn, and the add-of-product
				// shape matches AXPYIn's so any FMA contraction the compiler
				// applies is applied to both.
				v := (src.tn[i] - tbn) + nrb*src.ln[i]
				if best < 0 || v > bestV {
					best, bestV = i, v
				}
			}
			if best < 0 {
				continue
			}
			if hs.dominatedOnArrival(target, pl[target], n0[target], cbn, bestV) {
				w.stats.HullSkipped += int64(eligible)
				continue
			}
			w.stats.HullSkipped += int64(eligible - 1)
			nt := src.tform(best).SubIn(w.terms, tbForm).AXPYIn(w.terms, nrb, src.lform(best))
			ref := w.prov.alloc(prov{pred: src.ref[best], pred2: -1, node: id, aux: int32(bi), op: opBuffer})
			if out[target] == nil {
				out[target] = newFrontier(n0[p], w.prn.needSigmas())
			}
			out[target].push(cbForm, nt, ref, e.space)
			w.stats.Generated++
			emitted++
			hs.emitted[target] = append(hs.emitted[target], hullEmit{ln: cbn, tn: nt.Nominal})
		}
	}
	if emitted > w.stats.HullPeak {
		w.stats.HullPeak = emitted
	}
	return out
}

// hull2P handles 2P runs at pbar > 0.5, where dominance is probabilistic
// and reduction to one candidate per type is unsound. Every type still
// emits its mean-best candidate; the other candidates of the type are
// emitted too unless the mean-best *certainly* dominates them:
//
//   - L: both share the identical load form cbForm, and L-dominance
//     between identical forms is decided by probAtLeast's covariance
//     fallback, whose outcome depends on how round(sqrt(Var))² compares
//     to Var — a per-type constant the kernel evaluates once with the
//     sweep's own code. When that test says no, the type pre-prunes
//     nothing.
//   - T: the mean gap must clear z_T times the pessimistic bound
//     σ(T_best) + σ(T_i), each bounded by the triangle inequality
//     σ(T) ≤ σ(T_src) + R_b·σ(L_src) + σ(tbForm) from the cached
//     frontier sigmas, with hullSafety slack. A gap that large passes
//     the sweep's certain-yes branch no matter the covariance — and the
//     chain in DESIGN.md §14 shows any kept candidate that pruned the
//     mean-best also certainly prunes i.
func (w *worker) hull2P(id rctree.NodeID, pl polarityLists) polarityLists {
	e := w.eng
	dev := e.deviation(id)
	out := pl
	n0 := [2]int{pl[0].len(), pl[1].len()}
	w.stats.HullSites++
	zT := w.prn.zT
	emitted := 0
	for bi, b := range e.opts.Library {
		cbForm := dev.ScaleIn(w.terms, b.Cb0).Shift(b.Cb0)
		tbForm := dev.ScaleIn(w.terms, b.Tb0).Shift(b.Tb0)
		tbn := tbForm.Nominal
		nrb := -b.Rb
		cbSigma := cbForm.Sigma(e.space) // the sigma push will cache
		tbSigma := tbForm.Sigma(e.space)
		lOK := probAtLeast(0, cbSigma, cbSigma, w.prn.zL, cbForm, cbForm, e.space)
		for p := 0; p < 2; p++ {
			target := p
			if b.Inverting {
				target = 1 - p
			}
			src := pl[p]
			best := -1
			bestV := 0.0
			for i := 0; i < n0[p]; i++ {
				if b.MaxLoad > 0 && src.ln[i] > b.MaxLoad {
					continue
				}
				v := (src.tn[i] - tbn) + nrb*src.ln[i]
				if best < 0 || v > bestV {
					best, bestV = i, v
				}
			}
			if best < 0 {
				continue
			}
			var ubBest float64
			if lOK {
				ubBest = (src.st[best] + b.Rb*src.sl[best]) + tbSigma
			}
			for i := 0; i < n0[p]; i++ {
				if b.MaxLoad > 0 && src.ln[i] > b.MaxLoad {
					continue
				}
				if i != best && lOK {
					vi := (src.tn[i] - tbn) + nrb*src.ln[i]
					gap := bestV - vi
					ub := (src.st[i] + b.Rb*src.sl[i]) + tbSigma
					// Slack terms: relative on the sigma bound (covers the
					// Sigma computations' rounding) and on the means (the
					// sweep's gap is one subtraction, so its error scales
					// with |tn|, which can dwarf the sigmas).
					slack := hullSafety * (zT*(ubBest+ub) + math.Abs(bestV) + math.Abs(vi))
					if gap > 0 && gap >= zT*(ubBest+ub)+slack {
						w.stats.HullSkipped++
						continue
					}
				}
				sT := src.tform(i)
				nt := sT.SubIn(w.terms, tbForm).AXPYIn(w.terms, nrb, src.lform(i))
				ref := w.prov.alloc(prov{pred: src.ref[i], pred2: -1, node: id, aux: int32(bi), op: opBuffer})
				if out[target] == nil {
					out[target] = newFrontier(n0[p], w.prn.needSigmas())
				}
				out[target].push(cbForm, nt, ref, e.space)
				w.stats.Generated++
				emitted++
			}
		}
	}
	if emitted > w.stats.HullPeak {
		w.stats.HullPeak = emitted
	}
	return out
}
