package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/geom"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
	"vabuf/internal/yield"
)

// smallLib is a two-type library keeping brute-force enumeration feasible.
func smallLib() device.Library {
	return device.Library{
		{Name: "s", Cb0: 1.2, Tb0: 9, Rb: 0.4},
		{Name: "l", Cb0: 3.5, Tb0: 9, Rb: 0.15},
	}
}

// nominalAssignment converts a library-index assignment to electrical
// values for rctree.Evaluate.
func nominalAssignment(lib device.Library, assign map[rctree.NodeID]int) rctree.Assignment {
	out := make(rctree.Assignment, len(assign))
	for id, bi := range assign {
		b := lib[bi]
		out[id] = rctree.BufferValues{C: b.Cb0, T: b.Tb0, R: b.Rb}
	}
	return out
}

// bruteForceBest enumerates every possible buffer assignment and returns
// the best nominal root RAT.
func bruteForceBest(t *testing.T, tree *rctree.Tree, lib device.Library) float64 {
	t.Helper()
	var positions []rctree.NodeID
	for i := range tree.Nodes {
		if tree.Nodes[i].BufferOK {
			positions = append(positions, tree.Nodes[i].ID)
		}
	}
	choices := len(lib) + 1
	total := 1
	for range positions {
		total *= choices
		if total > 1<<22 {
			t.Fatalf("brute force space too large: %d positions", len(positions))
		}
	}
	best := math.Inf(-1)
	assign := make(rctree.Assignment)
	for code := 0; code < total; code++ {
		clear(assign)
		c := code
		for _, pos := range positions {
			pick := c % choices
			c /= choices
			if pick > 0 {
				b := lib[pick-1]
				assign[pos] = rctree.BufferValues{C: b.Cb0, T: b.Tb0, R: b.Rb}
			}
		}
		ev, err := rctree.Evaluate(tree, assign)
		if err != nil {
			t.Fatal(err)
		}
		if ev.RootRAT > best {
			best = ev.RootRAT
		}
	}
	return best
}

// bfInvLib adds a small inverter to smallLib, keeping enumeration feasible
// while forcing the polarity-tracking machinery into the comparison.
func bfInvLib() device.Library {
	return device.Library{
		{Name: "s", Cb0: 1.2, Tb0: 9, Rb: 0.4},
		{Name: "i", Cb0: 1.0, Tb0: 5, Rb: 0.45, Inverting: true},
		{Name: "l", Cb0: 3.5, Tb0: 9, Rb: 0.15},
	}
}

// polarityLegal reports whether an assignment delivers true polarity at
// every sink: an even number of inverters on each sink-to-root path.
func polarityLegal(tree *rctree.Tree, lib device.Library, assign map[rctree.NodeID]int) bool {
	for i := range tree.Nodes {
		if tree.Nodes[i].Kind != rctree.KindSink {
			continue
		}
		inv := 0
		for id := tree.Nodes[i].ID; id != rctree.NoNode; id = tree.Node(id).Parent {
			if bi, ok := assign[id]; ok && lib[bi].Inverting {
				inv++
			}
		}
		if inv%2 != 0 {
			return false
		}
	}
	return true
}

// forEachAssignment enumerates every buffer assignment over the tree's
// legal positions (including "no buffer" per position), reusing one map.
func forEachAssignment(t *testing.T, tree *rctree.Tree, lib device.Library,
	visit func(map[rctree.NodeID]int)) {
	t.Helper()
	var positions []rctree.NodeID
	for i := range tree.Nodes {
		if tree.Nodes[i].BufferOK {
			positions = append(positions, tree.Nodes[i].ID)
		}
	}
	choices := len(lib) + 1
	total := 1
	for range positions {
		total *= choices
		if total > 1<<22 {
			t.Fatalf("brute force space too large: %d positions", len(positions))
		}
	}
	assign := make(map[rctree.NodeID]int)
	for code := 0; code < total; code++ {
		clear(assign)
		c := code
		for _, pos := range positions {
			pick := c % choices
			c /= choices
			if pick > 0 {
				assign[pos] = pick - 1
			}
		}
		visit(assign)
	}
}

// bruteForcePolarityBest enumerates every polarity-legal assignment and
// returns the best nominal root RAT (inverters are electrically plain
// buffers; polarity only constrains which assignments are admissible).
func bruteForcePolarityBest(t *testing.T, tree *rctree.Tree, lib device.Library) float64 {
	t.Helper()
	best := math.Inf(-1)
	forEachAssignment(t, tree, lib, func(assign map[rctree.NodeID]int) {
		if !polarityLegal(tree, lib, assign) {
			return
		}
		ev, err := rctree.Evaluate(tree, nominalAssignment(lib, assign))
		if err != nil {
			t.Fatal(err)
		}
		if ev.RootRAT > best {
			best = ev.RootRAT
		}
	})
	return best
}

// bruteForceQuantileBest enumerates every polarity-legal assignment,
// propagates the canonical RAT form, and returns the best q-quantile —
// the exact optimum of the variation-aware objective.
func bruteForceQuantileBest(t *testing.T, tree *rctree.Tree, lib device.Library,
	model *variation.Model, q float64) float64 {
	t.Helper()
	best := math.Inf(-1)
	forEachAssignment(t, tree, lib, func(assign map[rctree.NodeID]int) {
		if !polarityLegal(tree, lib, assign) {
			return
		}
		rat, err := yield.Propagate(tree, lib, assign, model)
		if err != nil {
			t.Fatal(err)
		}
		if obj := rat.Quantile(q, model.Space); obj > best {
			best = obj
		}
	})
	return best
}

// TestInvertingMatchesBruteForce: the deterministic DP over an inverting
// multi-type library must find the exact polarity-legal optimum.
func TestInvertingMatchesBruteForce(t *testing.T) {
	lib := bfInvLib()
	for _, seed := range []int64{1, 2, 3, 4} {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 4, Seed: seed, DieSide: 4000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Insert(tr, Options{Library: lib})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForcePolarityBest(t, tr, lib)
		if math.Abs(res.Mean-want) > 1e-9 {
			t.Errorf("seed %d: DP RAT %.6f != polarity-legal brute force %.6f", seed, res.Mean, want)
		}
		if !polarityLegal(tr, lib, res.Assignment) {
			t.Errorf("seed %d: DP assignment is polarity-illegal", seed)
		}
	}
}

// TestStatisticalBruteForcePbar09 cross-checks the variation-aware DP at
// pbar > 0.5 against exhaustive enumeration over a multi-type inverting
// library. The pbar > 0.5 sweep is deliberately lossy (probabilistic
// dominance can prune a candidate the exact quantile objective would have
// kept), so the DP is held to the paper's §5.3 envelope — within 1% of
// the true optimum — while its own reported objective must re-propagate
// exactly. Runs with the hull kernel on and off: both must land on the
// identical solution.
func TestStatisticalBruteForcePbar09(t *testing.T) {
	lib := bfInvLib()
	for _, seed := range []int64{1, 2, 3} {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 4, Seed: seed, DieSide: 4000})
		if err != nil {
			t.Fatal(err)
		}
		model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Library: lib, Model: model, PbarL: 0.9, PbarT: 0.9}
		res, err := Insert(tr, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		best := bruteForceQuantileBest(t, tr, lib, model, 0.05)
		if res.Objective > best+1e-6 {
			t.Errorf("seed %d: DP objective %.6f beats exhaustive optimum %.6f", seed, res.Objective, best)
		}
		if res.Objective < best-0.01*math.Abs(best) {
			t.Errorf("seed %d: DP objective %.6f more than 1%% below optimum %.6f", seed, res.Objective, best)
		}
		rat, err := yield.Propagate(tr, lib, res.Assignment, model)
		if err != nil {
			t.Fatal(err)
		}
		if got := rat.Quantile(0.05, model.Space); math.Abs(got-res.Objective) > 1e-6 {
			t.Errorf("seed %d: assignment re-propagates to %.6f, DP said %.6f", seed, got, res.Objective)
		}
		exactOpts := opts
		exactOpts.HullBuffering = HullOff
		exact, err := Insert(tr, exactOpts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(exact.Objective) != math.Float64bits(res.Objective) ||
			len(exact.Assignment) != len(res.Assignment) {
			t.Errorf("seed %d: hull/exact diverge: %.9f vs %.9f", seed, res.Objective, exact.Objective)
		}
	}
}

func TestDeterministicMatchesBruteForce(t *testing.T) {
	lib := smallLib()
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 4, Seed: seed, DieSide: 4000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Insert(tr, Options{Library: lib})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := bruteForceBest(t, tr, lib)
		if math.Abs(res.Mean-want) > 1e-9 {
			t.Errorf("seed %d: DP RAT %.6f != brute force %.6f", seed, res.Mean, want)
		}
		// The reported assignment must independently re-evaluate to the
		// reported RAT.
		ev, err := rctree.Evaluate(tr, nominalAssignment(lib, res.Assignment))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev.RootRAT-res.Mean) > 1e-9 {
			t.Errorf("seed %d: assignment re-evaluates to %.6f, DP said %.6f",
				seed, ev.RootRAT, res.Mean)
		}
	}
}

func TestDeterministicLargerTreeSelfConsistent(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 80, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := rctree.Evaluate(tr, nominalAssignment(lib, res.Assignment))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.RootRAT-res.Mean) > 1e-6 {
		t.Errorf("assignment re-evaluates to %.6f, DP said %.6f", ev.RootRAT, res.Mean)
	}
	// Buffering must beat the unbuffered tree on a net this size.
	bare, err := rctree.Evaluate(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean <= bare.RootRAT {
		t.Errorf("buffered RAT %.3f did not beat unbuffered %.3f", res.Mean, bare.RootRAT)
	}
	if res.NumBuffers == 0 {
		t.Error("no buffers inserted on an 80-sink net")
	}
	if res.Sigma != 0 {
		t.Errorf("deterministic run has sigma %g", res.Sigma)
	}
}

func TestDriverWithTwoSubtrees(t *testing.T) {
	// The root itself merges two children.
	tr := rctree.New(rctree.DefaultWire, 0.4, geom.Point{})
	tr.AddSink(tr.Root, geom.Point{X: 800, Y: 0}, 800, 10, 0)
	tr.AddSink(tr.Root, geom.Point{X: -900, Y: 0}, 900, 15, -50)
	lib := smallLib()
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceBest(t, tr, lib)
	if math.Abs(res.Mean-want) > 1e-9 {
		t.Errorf("root-merge DP %.6f != brute force %.6f", res.Mean, want)
	}
}

func TestStatisticalPropagationConsistency(t *testing.T) {
	// The RAT form the DP reports for its chosen assignment must agree
	// with an independent canonical propagation of that assignment.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 30, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	res, err := Insert(tr, Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	rat, err := yield.Propagate(tr, lib, res.Assignment, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rat.Nominal-res.Mean) > 1e-6 {
		t.Errorf("propagated mean %.6f != DP mean %.6f", rat.Nominal, res.Mean)
	}
	sp := model.Space
	if math.Abs(rat.Sigma(sp)-res.Sigma) > 1e-6 {
		t.Errorf("propagated sigma %.6f != DP sigma %.6f", rat.Sigma(sp), res.Sigma)
	}
	if res.Sigma <= 0 {
		t.Error("statistical run reported zero sigma")
	}
}

func TestTinyVariationDegeneratesToDeterministic(t *testing.T) {
	// As all budgets → 0 the variation-aware engine must reproduce the
	// deterministic van Ginneken result (the σ→0 invariant).
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cfg := variation.DefaultConfig(tr.BoundingBox().Expand(100))
	cfg.RandomFrac = 1e-9
	cfg.SpatialFrac = 1e-9
	cfg.InterDieFrac = 1e-9
	model, err := variation.NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	det, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := Insert(tr, Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.Mean-stat.Mean) > 1e-3 {
		t.Errorf("σ→0 statistical mean %.6f != deterministic %.6f", stat.Mean, det.Mean)
	}
	if det.NumBuffers != stat.NumBuffers {
		t.Errorf("σ→0 buffer count %d != deterministic %d", stat.NumBuffers, det.NumBuffers)
	}
}

func TestStatisticalAgainstMonteCarlo(t *testing.T) {
	// End-to-end moment check: the canonical RAT distribution the DP
	// reports must match Monte-Carlo sampling of its own assignment.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 25, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	res, err := Insert(tr, Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := yield.MonteCarlo(tr, lib, res.Assignment, model, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	var varSum float64
	for _, s := range samples {
		varSum += (s - mean) * (s - mean)
	}
	sigma := math.Sqrt(varSum / float64(len(samples)-1))
	if math.Abs(mean-res.Mean) > 0.05*math.Abs(res.Mean)+3*res.Sigma/math.Sqrt(float64(len(samples))) {
		t.Errorf("MC mean %.3f vs model %.3f", mean, res.Mean)
	}
	if res.Sigma > 0 && math.Abs(sigma-res.Sigma)/res.Sigma > 0.15 {
		t.Errorf("MC sigma %.3f vs model %.3f", sigma, res.Sigma)
	}
}

func TestPbarSweepStableRAT(t *testing.T) {
	// §5.3: different pbar choices change the final RAT by well under 1%.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 60, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()
	base, err := Insert(tr, Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	for _, pbar := range []float64{0.6, 0.75, 0.9} {
		res, err := Insert(tr, Options{Library: lib, Model: model, PbarL: pbar, PbarT: pbar})
		if err != nil {
			t.Fatalf("pbar %g: %v", pbar, err)
		}
		rel := math.Abs(res.Objective-base.Objective) / math.Abs(base.Objective)
		if rel > 0.01 {
			t.Errorf("pbar %g: objective %.4f differs from base %.4f by %.3f%%",
				pbar, res.Objective, base.Objective, rel*100)
		}
	}
}

func Test4PRunsOnSmallTree(t *testing.T) {
	// The 4P partial order keeps combinatorially many candidates (that is
	// the paper's complaint), so the test stays tiny: one buffer type,
	// eight sinks, and a generous cap as a safety net.
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	lib := device.DefaultLibrary()[1:2]
	res2P, err := Insert(tr, Options{Library: lib, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	res4P, err := Insert(tr, Options{Library: lib, Model: model, Rule: Rule4P, MaxCandidates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Both should find solutions in the same ballpark; 4P keeps more
	// candidates (weaker pruning), never fewer at the root.
	rel := math.Abs(res2P.Objective-res4P.Objective) / math.Abs(res2P.Objective)
	if rel > 0.05 {
		t.Errorf("4P objective %.3f far from 2P %.3f", res4P.Objective, res2P.Objective)
	}
	if res4P.RootCandidates < res2P.RootCandidates {
		t.Errorf("4P root candidates %d < 2P %d (partial order should keep more)",
			res4P.RootCandidates, res2P.RootCandidates)
	}
}

func Test4PCapacityExceeded(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 120, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Insert(tr, Options{
		Library:       device.DefaultLibrary(),
		Model:         model,
		Rule:          Rule4P,
		MaxCandidates: 300,
	})
	if !errors.Is(err, ErrCapacity) {
		t.Errorf("want ErrCapacity, got %v", err)
	}
}

func TestTimeout(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Insert(tr, Options{Library: device.DefaultLibrary(), Timeout: time.Nanosecond})
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want ErrTimeout, got %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lib := smallLib()
	cases := []Options{
		{},                                  // empty library
		{Library: lib, PbarL: 0.4},          // pbar below 0.5
		{Library: lib, PbarT: 1.0},          // pbar at 1
		{Library: lib, SelectQuantile: 1.5}, // bad quantile
		{Library: lib, MaxCandidates: -1},   // negative cap
		{Library: lib, FourP: FourPParams{AlphaL: 0.9, AlphaU: 0.1, BetaL: 0.1, BetaU: 0.9}},
	}
	for i, o := range cases {
		if _, err := Insert(tr, o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	// Invalid tree rejected.
	bad := rctree.New(rctree.DefaultWire, 0.5, geom.Point{})
	bad.AddSink(bad.Root, geom.Point{X: 1, Y: 0}, 1, 10, 0)
	bad.Wire.R = 0
	if _, err := Insert(bad, Options{Library: lib}); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestRuleString(t *testing.T) {
	if Rule2P.String() != "2P" || Rule4P.String() != "4P" {
		t.Error("rule strings wrong")
	}
	if Rule(7).String() == "" {
		t.Error("unknown rule empty string")
	}
}

func TestStatsPopulated(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Insert(tr, Options{Library: device.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Generated == 0 || st.Nodes != tr.Len() || st.PeakList == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	if st.Pruned == 0 {
		t.Error("no candidates pruned on a 50-sink net")
	}
	if st.Merges == 0 {
		t.Error("no merges recorded")
	}
	if res.RootCandidates == 0 {
		t.Error("no root candidates recorded")
	}
}

func TestPeakListLinearBound(t *testing.T) {
	// Theorem 1's engine-room fact: with the strict 2P order, the pruned
	// candidate list at any node never exceeds one entry per distinct
	// loading value, i.e. it is bounded by the number of legal buffer
	// positions plus one — linear, not combinatorial.
	tr, err := benchgen.Build("r1")
	if err != nil {
		t.Fatal(err)
	}
	bound := tr.NumBufferPositions() + 1
	det, err := Insert(tr, Options{Library: device.DefaultLibrary()})
	if err != nil {
		t.Fatal(err)
	}
	if det.Stats.PeakList > bound {
		t.Errorf("deterministic peak list %d exceeds linear bound %d", det.Stats.PeakList, bound)
	}
	model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
	if err != nil {
		t.Fatal(err)
	}
	wid, err := Insert(tr, Options{Library: device.DefaultLibrary(), Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if wid.Stats.PeakList > bound {
		t.Errorf("statistical peak list %d exceeds linear bound %d", wid.Stats.PeakList, bound)
	}
	// In practice the lists are far smaller than the bound; record the
	// observed numbers so regressions in pruning strength are visible.
	t.Logf("peak lists: deterministic %d, statistical %d (bound %d)",
		det.Stats.PeakList, wid.Stats.PeakList, bound)
}

func TestSingleSinkNet(t *testing.T) {
	tr, err := benchgen.Random(benchgen.Spec{Sinks: 1, Seed: 1, DieSide: 8000})
	if err != nil {
		t.Fatal(err)
	}
	lib := smallLib()
	res, err := Insert(tr, Options{Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceBest(t, tr, lib)
	if math.Abs(res.Mean-want) > 1e-9 {
		t.Errorf("single sink DP %.6f != brute force %.6f", res.Mean, want)
	}
}
