package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// randomLibrary draws a library with the shapes that stress the hull
// kernel: 2–18 cells on a random width ladder, a random subset inverting,
// a random subset drive-capped. The first cell is always a plain
// unconstrained buffer so every tree stays feasible.
func randomLibrary(rng *rand.Rand) device.Library {
	n := 2 + rng.Intn(17)
	lib := make(device.Library, 0, n)
	for i := 0; i < n; i++ {
		w := math.Pow(2, rng.Float64()*6) // 1..64 µm
		b := device.BufferType{
			Name: fmt.Sprintf("t%d", i),
			Cb0:  0.33125 * w,
			Tb0:  40 + rng.Float64()*40,
			Rb:   2.0299 / w,
		}
		if i > 0 {
			if rng.Intn(3) == 0 {
				b.Inverting = true
			}
			if rng.Intn(2) == 0 {
				b.MaxLoad = b.Cb0 * (20 + rng.Float64()*200)
			}
		}
		lib = append(lib, b)
	}
	return lib
}

// assertHullRun checks a hull-mode Insert against the exact-mode baseline
// on the same tree/options: the entire Result must be bit-identical, and
// the generation ledger must balance — every candidate the kernel skipped
// is one the exact path both generated and pruned.
func assertHullRun(t *testing.T, label string, hull, exact *Result) {
	t.Helper()
	if !reflect.DeepEqual(hull.Assignment, exact.Assignment) {
		t.Errorf("%s: assignments differ (%d vs %d buffers)", label, len(hull.Assignment), len(exact.Assignment))
	}
	if !reflect.DeepEqual(hull.WireAssignment, exact.WireAssignment) {
		t.Errorf("%s: wire assignments differ", label)
	}
	if math.Float64bits(hull.RAT.Nominal) != math.Float64bits(exact.RAT.Nominal) ||
		!reflect.DeepEqual(hull.RAT.Terms, exact.RAT.Terms) {
		t.Errorf("%s: RAT differs: %v vs %v (%d vs %d terms)",
			label, hull.RAT.Nominal, exact.RAT.Nominal, len(hull.RAT.Terms), len(exact.RAT.Terms))
	}
	if math.Float64bits(hull.Sigma) != math.Float64bits(exact.Sigma) ||
		math.Float64bits(hull.Objective) != math.Float64bits(exact.Objective) {
		t.Errorf("%s: sigma/objective differ", label)
	}
	if hull.RootCandidates != exact.RootCandidates || hull.NumBuffers != exact.NumBuffers {
		t.Errorf("%s: root candidates %d/%d buffers %d/%d",
			label, hull.RootCandidates, exact.RootCandidates, hull.NumBuffers, exact.NumBuffers)
	}
	h, e := hull.Stats, exact.Stats
	if h.Merges != e.Merges || h.Nodes != e.Nodes || h.PeakList != e.PeakList {
		t.Errorf("%s: merges/nodes/peak differ: {%d %d %d} vs {%d %d %d}",
			label, h.Merges, h.Nodes, h.PeakList, e.Merges, e.Nodes, e.PeakList)
	}
	if h.Generated+h.HullSkipped != e.Generated || h.Pruned+h.HullSkipped != e.Pruned {
		t.Errorf("%s: generation ledger off: gen %d + skipped %d != %d, or pruned %d + %d != %d",
			label, h.Generated, h.HullSkipped, e.Generated, h.Pruned, h.HullSkipped, e.Pruned)
	}
	if e.HullSites != 0 || e.HullSkipped != 0 || e.HullPeak != 0 {
		t.Errorf("%s: exact run reported hull stats %+v", label, e)
	}
}

// TestHullDifferentialFuzz is the randomized half of the bit-identity
// contract: random trees × random libraries × every 2P pbar flavor, hull
// on vs. off, serial and parallel.
func TestHullDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		tr, err := benchgen.Random(benchgen.Spec{Sinks: 6 + rng.Intn(35), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lib := randomLibrary(rng)
		model, err := variation.NewModel(variation.DefaultConfig(tr.BoundingBox().Expand(100)))
		if err != nil {
			t.Fatal(err)
		}
		wireLib := []rctree.WireChoice{
			{Name: "w1", Params: tr.Wire},
			{Name: "w2", Params: rctree.WireParams{R: tr.Wire.R * 0.55, C: tr.Wire.C * 1.7}},
		}
		configs := map[string]Options{
			"det":          {Library: lib},
			"2P-0.5":       {Library: lib, Model: model},
			"2P-0.9":       {Library: lib, Model: model, PbarL: 0.9, PbarT: 0.9},
			"2P-L0.9-T0.5": {Library: lib, Model: model, PbarL: 0.9, PbarT: 0.5},
			"2P-L0.5-T0.9": {Library: lib, Model: model, PbarL: 0.5, PbarT: 0.9},
			"wiresize":     {Library: lib, Model: model, WireLibrary: wireLib},
		}
		for name, opts := range configs {
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				exactOpts := opts
				exactOpts.HullBuffering = HullOff
				exact, err := Insert(tr, exactOpts)
				if err != nil {
					t.Fatal(err)
				}
				for _, mode := range []HullMode{HullAuto, HullOn} {
					hullOpts := opts
					hullOpts.HullBuffering = mode
					got, err := Insert(tr, hullOpts)
					if err != nil {
						t.Fatal(err)
					}
					assertHullRun(t, "serial/"+mode.String(), got, exact)
				}
				parOpts := opts
				parOpts.Parallelism = 4
				parOpts.MinParallelNodes = 1
				got, err := Insert(tr, parOpts) // HullAuto is the default
				if err != nil {
					t.Fatal(err)
				}
				assertHullRun(t, "parallel", got, exact)
			})
		}
	}
}

// TestHullFallbackUnsorted drives the certification guard directly: an
// input frontier that is not weakly load-sorted must take the exact path
// and count a fallback, producing the same candidates.
func TestHullFallbackUnsorted(t *testing.T) {
	lib := device.DefaultLibrary()
	mkInput := func() (*worker, polarityLists) {
		w := testWorker(Rule2P)
		w.eng.opts.Library = lib
		w.eng.hull = true
		f := w.mkLeafFrontier([2]float64{5, -10}, [2]float64{2, -30}, [2]float64{9, -5})
		return w, polarityLists{f, nil}
	}
	wh, plh := mkInput()
	hullOut := wh.addBuffersHull(0, nil, plh)
	if wh.stats.HullFallbacks != 1 {
		t.Fatalf("HullFallbacks = %d, want 1", wh.stats.HullFallbacks)
	}
	if wh.stats.HullSites != 0 || wh.stats.HullSkipped != 0 {
		t.Fatalf("fallback site still counted hull stats: %+v", wh.stats)
	}
	we, ple := mkInput()
	exactOut := we.addBuffersExact(0, nil, ple)
	if wh.stats.Generated != we.stats.Generated {
		t.Fatalf("generated %d vs exact %d", wh.stats.Generated, we.stats.Generated)
	}
	for p := 0; p < 2; p++ {
		ho, eo := hullOut[p], exactOut[p]
		if ho.len() != eo.len() {
			t.Fatalf("polarity %d: %d vs %d candidates", p, ho.len(), eo.len())
		}
		for i := 0; i < ho.len(); i++ {
			if math.Float64bits(ho.ln[i]) != math.Float64bits(eo.ln[i]) ||
				math.Float64bits(ho.tn[i]) != math.Float64bits(eo.tn[i]) {
				t.Fatalf("polarity %d candidate %d differs", p, i)
			}
		}
	}
}

// TestMaxLoadNominalSemantics pins the drive-capability contract for
// variation-aware runs: MaxLoad is checked against the nominal load only.
// A candidate whose mean load fits but whose +1σ load exceeds the cap is
// still buffered — by the exact path and the hull kernel alike. If this
// test breaks because a yield-aware check (nominal + k·σ) was introduced,
// that is a deliberate semantic change: update DESIGN.md §14 and the
// addBuffersExact comment together with this test.
func TestMaxLoadNominalSemantics(t *testing.T) {
	const (
		nominal = 50.0
		sigma   = 30.0
	)
	lib := device.Library{{Name: "b", Cb0: 1, Tb0: 10, Rb: 1, MaxLoad: nominal + 1}}
	for _, mode := range []HullMode{HullOff, HullAuto} {
		opts := Options{Rule: Rule2P, PbarL: 0.9, PbarT: 0.9, Library: lib}
		space := variation.NewSpace()
		e := &engine{opts: opts, space: space, hull: mode != HullOff}
		w := &worker{eng: e, terms: variation.NewArena()}
		w.prov = provWriter{pa: &e.prov}
		w.prn = newPruner(space, opts, &w.stats)
		f := newFrontier(2, w.prn.needSigmas())
		// Mean load under the cap, +1σ load far over it: must be buffered.
		pushStatCand(f, space, nominal, sigma, -20, 1)
		// Mean load over the cap: must be filtered, however small its σ.
		pushStatCand(f, space, nominal+2, 0.01, -5, 1)
		out := w.addBuffers(0, nil, polarityLists{f, nil})
		buffered := out[0].len() - 2 // minus the two original candidates
		if buffered != 1 {
			t.Fatalf("mode %v: %d buffered candidates, want exactly 1 (nominal-only MaxLoad)", mode, buffered)
		}
		if math.Float64bits(out[0].ln[2]) != math.Float64bits(lib[0].Cb0) {
			t.Fatalf("mode %v: buffered candidate has load %g, want Cb0", mode, out[0].ln[2])
		}
	}
}

// TestHullModeParsing covers the flag/DTO surface of HullMode.
func TestHullModeParsing(t *testing.T) {
	cases := map[string]HullMode{"": HullAuto, "auto": HullAuto, "on": HullOn, "off": HullOff}
	for in, want := range cases {
		got, err := ParseHullMode(in)
		if err != nil || got != want {
			t.Errorf("ParseHullMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseHullMode("banana"); err == nil {
		t.Error("ParseHullMode accepted garbage")
	}
	if HullAuto.String() != "auto" || HullOn.String() != "on" || HullOff.String() != "off" {
		t.Errorf("String() round-trip broken: %v %v %v", HullAuto, HullOn, HullOff)
	}
}
