package core

// candBlock is the number of Candidates per slab (~80 KiB per block).
const candBlock = 1024

// candArena slab-allocates Candidate structs for one DP worker. Candidates
// stay reachable through the pred DAG until the run ends, so individual
// frees are pointless — the whole slab set dies with the run. Blocks are
// not pooled across runs: Candidates hold pointers (pred/pred2), and a
// recycled block would keep an arbitrary amount of dead DAG alive.
type candArena struct {
	cur   []Candidate
	off   int
	count int64
}

// alloc returns a pointer to a zeroed Candidate from the current block.
func (a *candArena) alloc() *Candidate {
	if a.off == len(a.cur) {
		a.cur = make([]Candidate, candBlock)
		a.off = 0
	}
	c := &a.cur[a.off]
	a.off++
	a.count++
	return c
}
