package variation

import (
	"math"
	"math/rand"
	"testing"

	"vabuf/internal/stats"
)

func TestSpaceAddAndLookup(t *testing.T) {
	s := NewSpace()
	a := s.Add(ClassRandom, 1, "a")
	b := s.Add(ClassSpatial, 2, "b")
	c := s.Add(ClassInterDie, 3, "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if a != 0 || b != 1 || c != 2 {
		t.Errorf("IDs not dense: %d %d %d", a, b, c)
	}
	src := s.Source(b)
	if src.Class != ClassSpatial || src.Sigma != 2 || src.Label != "b" {
		t.Errorf("Source(b) = %+v", src)
	}
	if s.Sigma(c) != 3 {
		t.Errorf("Sigma(c) = %g", s.Sigma(c))
	}
	counts := s.CountByClass()
	if counts[ClassRandom] != 1 || counts[ClassSpatial] != 1 || counts[ClassInterDie] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestAddNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative sigma did not panic")
		}
	}()
	NewSpace().Add(ClassRandom, -1, "bad")
}

func TestClassString(t *testing.T) {
	if ClassRandom.String() != "random" ||
		ClassSpatial.String() != "spatial" ||
		ClassInterDie.String() != "inter-die" {
		t.Error("Class.String labels wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class produced empty string")
	}
}

func TestSampleMoments(t *testing.T) {
	s := NewSpace()
	s.Add(ClassRandom, 1, "u")
	s.Add(ClassRandom, 4, "w")
	rng := rand.New(rand.NewSource(99))
	const n = 100000
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	var buf []float64
	for i := 0; i < n; i++ {
		buf = s.Sample(rng, buf)
		xs = append(xs, buf[0])
		ys = append(ys, buf[1])
	}
	m0, v0 := stats.MeanVar(xs)
	m1, v1 := stats.MeanVar(ys)
	if math.Abs(m0) > 0.02 || math.Abs(m1) > 0.06 {
		t.Errorf("sample means = %g, %g, want ~0", m0, m1)
	}
	if math.Abs(v0-1) > 0.03 {
		t.Errorf("sample var source 0 = %g, want 1", v0)
	}
	if math.Abs(v1-16) > 0.5 {
		t.Errorf("sample var source 1 = %g, want 16", v1)
	}
	// Independence.
	r, err := stats.Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.02 {
		t.Errorf("sources correlated: %g", r)
	}
}

func TestSampleReusesBuffer(t *testing.T) {
	s := NewSpace()
	s.Add(ClassRandom, 1, "a")
	s.Add(ClassRandom, 1, "b")
	rng := rand.New(rand.NewSource(1))
	buf := make([]float64, 10)
	out := s.Sample(rng, buf)
	if len(out) != 2 {
		t.Errorf("sample len = %d", len(out))
	}
	if &out[0] != &buf[0] {
		t.Error("Sample reallocated despite sufficient capacity")
	}
}

func TestFormSamplingMatchesAnalyticMoments(t *testing.T) {
	// End-to-end: the analytic Var of a form equals the sample variance of
	// its evaluations.
	s := NewSpace()
	a := s.Add(ClassRandom, 1, "a")
	b := s.Add(ClassRandom, 2, "b")
	f := NewForm(10, []Term{{a, 3}, {b, -1}})
	rng := rand.New(rand.NewSource(5))
	const n = 200000
	vals := make([]float64, 0, n)
	var buf []float64
	for i := 0; i < n; i++ {
		buf = s.Sample(rng, buf)
		vals = append(vals, f.Eval(buf))
	}
	m, v := stats.MeanVar(vals)
	if math.Abs(m-10) > 0.05 {
		t.Errorf("sampled mean = %g, want 10", m)
	}
	if want := f.Var(s); math.Abs(v-want)/want > 0.03 {
		t.Errorf("sampled var = %g, want %g", v, want)
	}
}
