package variation

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"strings"

	"vabuf/internal/stats"
)

// Term is one first-order sensitivity: a coefficient on a single source.
type Term struct {
	ID   SourceID
	Coef float64
}

// Form is a sparse first-order (canonical) linear form over the sources of
// a Space (eq. 31–32 of the paper):
//
//	value = Nominal + Σ Terms[i].Coef · X_{Terms[i].ID}
//
// Terms are kept sorted by SourceID with no duplicates and no zero
// coefficients, so binary operations are linear merge walks. The zero value
// is the deterministic constant 0.
type Form struct {
	Nominal float64
	Terms   []Term
}

// Const returns a deterministic form with the given nominal value.
func Const(v float64) Form { return Form{Nominal: v} }

// NewForm builds a form from a nominal and a term list; the terms are
// copied, sorted and canonicalized (duplicates summed, zeros dropped).
func NewForm(nominal float64, terms []Term) Form {
	ts := make([]Term, len(terms))
	copy(ts, terms)
	slices.SortFunc(ts, func(a, b Term) int { return cmp.Compare(a.ID, b.ID) })
	out := ts[:0]
	for _, t := range ts {
		if n := len(out); n > 0 && out[n-1].ID == t.ID {
			out[n-1].Coef += t.Coef
		} else {
			out = append(out, t)
		}
	}
	// Drop zero coefficients (including duplicates that cancelled).
	final := out[:0]
	for _, t := range out {
		if t.Coef != 0 {
			final = append(final, t)
		}
	}
	return Form{Nominal: nominal, Terms: final}
}

// IsDeterministic reports whether the form has no variation terms.
func (f Form) IsDeterministic() bool { return len(f.Terms) == 0 }

// Mean returns the expected value of the form (its nominal).
func (f Form) Mean() float64 { return f.Nominal }

// Shift returns f + d for a deterministic offset d.
func (f Form) Shift(d float64) Form {
	return Form{Nominal: f.Nominal + d, Terms: f.Terms}
}

// Scale returns s·f.
func (f Form) Scale(s float64) Form {
	if s == 0 {
		return Form{}
	}
	terms := make([]Term, len(f.Terms))
	for i, t := range f.Terms {
		terms[i] = Term{t.ID, s * t.Coef}
	}
	return Form{Nominal: s * f.Nominal, Terms: terms}
}

// Add returns f + g.
func (f Form) Add(g Form) Form { return f.AXPY(1, g) }

// Sub returns f - g.
func (f Form) Sub(g Form) Form { return f.AXPY(-1, g) }

// AXPY returns f + s·g, merging the two sorted term lists in one pass.
// This is the workhorse of the three key DP operations (eq. 33–37).
func (f Form) AXPY(s float64, g Form) Form {
	if s == 0 || len(g.Terms) == 0 {
		return Form{Nominal: f.Nominal + s*g.Nominal, Terms: f.Terms}
	}
	terms := make([]Term, 0, len(f.Terms)+len(g.Terms))
	i, j := 0, 0
	for i < len(f.Terms) && j < len(g.Terms) {
		a, b := f.Terms[i], g.Terms[j]
		switch {
		case a.ID < b.ID:
			terms = append(terms, a)
			i++
		case a.ID > b.ID:
			terms = append(terms, Term{b.ID, s * b.Coef})
			j++
		default:
			if c := a.Coef + s*b.Coef; c != 0 {
				terms = append(terms, Term{a.ID, c})
			}
			i++
			j++
		}
	}
	terms = append(terms, f.Terms[i:]...)
	for ; j < len(g.Terms); j++ {
		terms = append(terms, Term{g.Terms[j].ID, s * g.Terms[j].Coef})
	}
	return Form{Nominal: f.Nominal + s*g.Nominal, Terms: terms}
}

// Var returns the variance of the form under space: Σ coef²·sigma²
// (eq. 41–42).
func (f Form) Var(space *Space) float64 {
	v := 0.0
	for _, t := range f.Terms {
		s := space.Sigma(t.ID)
		v += t.Coef * t.Coef * s * s
	}
	return v
}

// Sigma returns the standard deviation of the form under space.
func (f Form) Sigma(space *Space) float64 { return math.Sqrt(f.Var(space)) }

// Cov returns the covariance of f and g under space: Σ over shared sources
// of coef_f·coef_g·sigma² (the numerator of eq. 43).
func Cov(f, g Form, space *Space) float64 {
	c := 0.0
	i, j := 0, 0
	for i < len(f.Terms) && j < len(g.Terms) {
		a, b := f.Terms[i], g.Terms[j]
		switch {
		case a.ID < b.ID:
			i++
		case a.ID > b.ID:
			j++
		default:
			s := space.Sigma(a.ID)
			c += a.Coef * b.Coef * s * s
			i++
			j++
		}
	}
	return c
}

// Corr returns the correlation coefficient of f and g (eq. 43). It is 0
// when either form is deterministic.
func Corr(f, g Form, space *Space) float64 {
	sf := f.Sigma(space)
	sg := g.Sigma(space)
	if sf == 0 || sg == 0 {
		return 0
	}
	rho := Cov(f, g, space) / (sf * sg)
	// Clamp tiny numerical excursions outside [-1, 1].
	return math.Max(-1, math.Min(1, rho))
}

// SigmaDiff returns the standard deviation of f - g computed directly from
// the term lists, i.e. sqrt(Var(f) - 2Cov + Var(g)) without cancellation
// issues (eq. 9 / eq. 40). The variance of the difference is accumulated
// in a single merge walk over the two sorted term lists — no intermediate
// form is materialized, so the hot pruning paths stay allocation-free.
func SigmaDiff(f, g Form, space *Space) float64 {
	v := 0.0
	i, j := 0, 0
	for i < len(f.Terms) && j < len(g.Terms) {
		a, b := f.Terms[i], g.Terms[j]
		switch {
		case a.ID < b.ID:
			s := space.Sigma(a.ID)
			v += a.Coef * a.Coef * s * s
			i++
		case a.ID > b.ID:
			s := space.Sigma(b.ID)
			v += b.Coef * b.Coef * s * s
			j++
		default:
			c := a.Coef - b.Coef
			s := space.Sigma(a.ID)
			v += c * c * s * s
			i++
			j++
		}
	}
	for ; i < len(f.Terms); i++ {
		t := f.Terms[i]
		s := space.Sigma(t.ID)
		v += t.Coef * t.Coef * s * s
	}
	for ; j < len(g.Terms); j++ {
		t := g.Terms[j]
		s := space.Sigma(t.ID)
		v += t.Coef * t.Coef * s * s
	}
	return math.Sqrt(v)
}

// ProbGreater returns P(f > g) under the joint normal interpretation of
// the two forms (eq. 8).
func ProbGreater(f, g Form, space *Space) float64 {
	nom := f.Nominal - g.Nominal
	sd := SigmaDiff(f, g, space)
	if sd == 0 {
		switch {
		case nom > 0:
			return 1
		case nom < 0:
			return 0
		default:
			return 0.5
		}
	}
	return stats.Phi(nom / sd)
}

// Quantile returns the p-quantile of the form's normal distribution.
func (f Form) Quantile(p float64, space *Space) float64 {
	return stats.NormalQuantile(p, f.Nominal, f.Sigma(space))
}

// Eval evaluates the form at a sampled realization of the sources, as
// produced by Space.Sample.
func (f Form) Eval(samples []float64) float64 {
	v := f.Nominal
	for _, t := range f.Terms {
		v += t.Coef * samples[t.ID]
	}
	return v
}

// MinResult is the outcome of the statistical MIN of two forms.
type MinResult struct {
	// Form is the first-order approximation of min(f, g) via the tightness
	// probability (eq. 38): nominal matches Clark's exact mean; the
	// sensitivities are the tightness-weighted blend of the inputs.
	Form Form
	// Moments carries Clark's exact first two moments and the tightness
	// t = P(f < g).
	Moments stats.MinMoments
}

// Min computes the statistical minimum of two forms (eq. 38–40), keeping
// the result in canonical first-order shape. When one input is smaller
// with certainty the exact input form is returned unchanged.
func Min(f, g Form, space *Space) MinResult {
	sd := SigmaDiff(f, g, space)
	if sd == 0 {
		// The difference is deterministic: min is exactly one of the inputs.
		m := stats.MinMoments{SigmaDiff: 0}
		if f.Nominal <= g.Nominal {
			if f.Nominal == g.Nominal {
				m.Tightness = 0.5
			} else {
				m.Tightness = 1
			}
			m.Mean = f.Nominal
			m.Var = f.Var(space)
			return MinResult{Form: f, Moments: m}
		}
		m.Tightness = 0
		m.Mean = g.Nominal
		m.Var = g.Var(space)
		return MinResult{Form: g, Moments: m}
	}
	sf := f.Sigma(space)
	sg := g.Sigma(space)
	rho := Corr(f, g, space)
	mom := stats.MinNormals(f.Nominal, sf, g.Nominal, sg, rho)
	t := mom.Tightness
	// Blend sensitivities: t·beta_f + (1-t)·beta_g (eq. 38), then set the
	// nominal to Clark's exact mean (the -sigma·phi(...) correction).
	blended := f.Scale(t).Add(g.Scale(1 - t))
	blended.Nominal = mom.Mean
	// Moment matching: the tightness blend preserves the mean but
	// understates the variance of the min; rescale the sensitivities so
	// the form carries Clark's exact second moment while keeping the
	// blended correlation structure. (Both Scale and Add allocated fresh
	// term storage, so the in-place rescale cannot alias the inputs.)
	if vb := blended.Var(space); vb > 0 && mom.Var > 0 {
		s := math.Sqrt(mom.Var / vb)
		for i := range blended.Terms {
			blended.Terms[i].Coef *= s
		}
	}
	return MinResult{Form: blended, Moments: mom}
}

// Max computes the statistical maximum of two forms, mirroring Min via
// max(f, g) = -min(-f, -g): Clark-exact mean and variance with
// tightness-blended sensitivities. The returned Tightness is P(f > g),
// the probability that f dominates the MAX.
func Max(f, g Form, space *Space) MinResult {
	res := Min(f.Scale(-1), g.Scale(-1), space)
	out := res.Form.Scale(-1)
	res.Moments.Mean = -res.Moments.Mean
	return MinResult{Form: out, Moments: res.Moments}
}

// String renders the form compactly for debugging.
func (f Form) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.6g", f.Nominal)
	for _, t := range f.Terms {
		fmt.Fprintf(&b, "%+.3g·x%d", t.Coef, t.ID)
	}
	return b.String()
}
