package variation

import (
	"fmt"
	"math"
	"sync/atomic"

	"vabuf/internal/geom"
)

// ModelConfig selects the variation classes and budgets of §5.1.
type ModelConfig struct {
	// Die is the chip area the spatial grid covers.
	Die geom.Rect
	// GridCell is the spatial grid pitch; the paper uses 500 µm.
	GridCell float64
	// CorrRadius is the distance at which spatial correlation tapers off;
	// the paper uses about 2 mm (2000 µm).
	CorrRadius float64
	// RandomFrac, SpatialFrac, InterDieFrac are the 1-sigma budgets of each
	// class as a fraction of a device characteristic's nominal value; the
	// paper budgets 5% (0.05) for each.
	RandomFrac   float64
	SpatialFrac  float64
	InterDieFrac float64
	// Heterogeneous selects the heterogeneous spatial model: the spatial
	// sigma ramps linearly from ~0 at the south-west corner to twice the
	// budget at the north-east corner (mean = SpatialFrac across the die).
	// When false the spatial sigma is SpatialFrac everywhere (homogeneous).
	Heterogeneous bool
}

// DefaultConfig returns the paper's experimental setup (§5.1) for the given
// die: 500 µm grid, 2 mm taper, 5% budgets for every class.
func DefaultConfig(die geom.Rect) ModelConfig {
	return ModelConfig{
		Die:          die,
		GridCell:     500,
		CorrRadius:   2000,
		RandomFrac:   0.05,
		SpatialFrac:  0.05,
		InterDieFrac: 0.05,
	}
}

// Model owns the variation sources for one die: a single inter-die source,
// one spatial source per grid cell, and lazily allocated per-site random
// sources. It converts a site (a legal buffer position) into the sparse
// relative-deviation terms that the device model multiplies into C_b and
// T_b (eq. 23–24).
type Model struct {
	Space  *Space
	Config ModelConfig
	Grid   geom.Grid

	interDie SourceID
	spatial  []SourceID // one per grid cell
	// random maps caller-stable site keys to per-site random sources, so
	// that the same physical location always refers to the same source no
	// matter which candidate solution mentions it.
	random map[int]SourceID
	// cached spatial weight stencils keyed by grid cell, since every site
	// inside one cell sees the same neighbourhood weights.
	stencil map[int][]Term
	// token identifies this model instance process-wide. Source allocation
	// is lazy and per-instance, so forms (and anything derived from them,
	// like cached DP frontiers) are only comparable within one instance;
	// caches key on the token to never mix instances.
	token uint64
}

// modelTokens hands out process-unique, non-zero model instance tokens.
var modelTokens atomic.Uint64

// Token returns the process-unique identity of this model instance
// (non-zero; callers use 0 for "no model").
func (m *Model) Token() uint64 { return m.token }

// NewModel allocates the inter-die and spatial sources for the given
// configuration.
func NewModel(cfg ModelConfig) (*Model, error) {
	if cfg.RandomFrac < 0 || cfg.SpatialFrac < 0 || cfg.InterDieFrac < 0 {
		return nil, fmt.Errorf("variation: negative budget in %+v", cfg)
	}
	if cfg.RandomFrac+cfg.SpatialFrac+cfg.InterDieFrac == 0 {
		return nil, fmt.Errorf("variation: all budgets zero; use a deterministic run instead")
	}
	if cfg.GridCell <= 0 {
		cfg.GridCell = 500
	}
	if cfg.CorrRadius <= 0 {
		cfg.CorrRadius = 2000
	}
	grid, err := geom.NewGrid(cfg.Die, cfg.GridCell)
	if err != nil {
		return nil, fmt.Errorf("variation: %w", err)
	}
	m := &Model{
		Space:   NewSpace(),
		Config:  cfg,
		Grid:    grid,
		random:  make(map[int]SourceID),
		stencil: make(map[int][]Term),
		token:   modelTokens.Add(1),
	}
	m.interDie = m.Space.Add(ClassInterDie, 1, "G")
	if cfg.SpatialFrac > 0 {
		m.spatial = make([]SourceID, grid.NumCells())
		for i := range m.spatial {
			m.spatial[i] = m.Space.Add(ClassSpatial, 1, fmt.Sprintf("Y%d", i))
		}
	}
	return m, nil
}

// InterDieSource returns the shared inter-die source ID.
func (m *Model) InterDieSource() SourceID { return m.interDie }

// SpatialSources returns the per-cell spatial source IDs (nil when the
// spatial class is disabled).
func (m *Model) SpatialSources() []SourceID { return m.spatial }

// RandomSourceFor returns (allocating on first use) the per-site random
// source for the given stable site key.
func (m *Model) RandomSourceFor(siteKey int) SourceID {
	if id, ok := m.random[siteKey]; ok {
		return id
	}
	id := m.Space.Add(ClassRandom, 1, fmt.Sprintf("X@%d", siteKey))
	m.random[siteKey] = id
	return id
}

// spatialSigmaAt returns the local spatial 1-sigma budget at loc: constant
// for the homogeneous model, a linear SW→NE ramp averaging SpatialFrac for
// the heterogeneous model (§5.1).
func (m *Model) spatialSigmaAt(loc geom.Point) float64 {
	f := m.Config.SpatialFrac
	if !m.Config.Heterogeneous {
		return f
	}
	die := m.Config.Die
	w := die.Width()
	h := die.Height()
	u := 0.5
	if w+h > 0 {
		u = ((loc.X - die.Min.X) + (loc.Y - die.Min.Y)) / (w + h)
	}
	u = math.Max(0, math.Min(1, u))
	return 2 * f * u
}

// spatialStencil returns the unit-variance neighbourhood weights for a grid
// cell: Gaussian taper over all cells whose centers are within CorrRadius,
// normalized so the weight vector has unit L2 norm (the aggregate spatial
// deviation has variance 1 before the local budget scales it). Figure 4's
// shared-region behaviour falls out of overlapping stencils.
func (m *Model) spatialStencil(cell int) []Term {
	if st, ok := m.stencil[cell]; ok {
		return st
	}
	center := m.Grid.CellCenter(cell)
	cells := m.Grid.CellsWithin(center, m.Config.CorrRadius)
	// Gaussian taper: weight ~ exp(-d^2 / (2 tau^2)) with tau chosen so the
	// weight has decayed to ~5% at CorrRadius ("tapers off at about 2mm").
	tau := m.Config.CorrRadius / 2.45
	terms := make([]Term, 0, len(cells))
	norm := 0.0
	for _, c := range cells {
		d := m.Grid.CellCenter(c).Euclidean(center)
		w := math.Exp(-0.5 * (d / tau) * (d / tau))
		terms = append(terms, Term{ID: m.spatial[c], Coef: w})
		norm += w * w
	}
	norm = math.Sqrt(norm)
	for i := range terms {
		terms[i].Coef /= norm
	}
	m.stencil[cell] = terms
	return terms
}

// Deviation returns the relative (unit-less) first-order deviation of a
// device characteristic at the given site: a sparse form D with E[D] = 0
// and Var(D) = randomFrac² + spatialSigma(loc)² + interDieFrac². A device
// characteristic then becomes nominal·(1 + D) per eq. 23–24. siteKey must
// be stable per physical location so identical sites share their random
// source across candidate solutions.
func (m *Model) Deviation(siteKey int, loc geom.Point) Form {
	terms := make([]Term, 0, 16)
	if f := m.Config.RandomFrac; f > 0 {
		terms = append(terms, Term{ID: m.RandomSourceFor(siteKey), Coef: f})
	}
	if m.Config.SpatialFrac > 0 {
		sig := m.spatialSigmaAt(loc)
		if sig > 0 {
			cell := m.Grid.CellIndex(loc)
			for _, t := range m.spatialStencil(cell) {
				terms = append(terms, Term{ID: t.ID, Coef: sig * t.Coef})
			}
		}
	}
	if f := m.Config.InterDieFrac; f > 0 {
		terms = append(terms, Term{ID: m.interDie, Coef: f})
	}
	return NewForm(0, terms)
}

// TotalFracAt returns the combined 1-sigma relative budget at loc,
// sqrt(random² + spatial(loc)² + interdie²) — useful for assertions and
// reporting.
func (m *Model) TotalFracAt(loc geom.Point) float64 {
	s := m.spatialSigmaAt(loc)
	r := m.Config.RandomFrac
	g := m.Config.InterDieFrac
	return math.Sqrt(r*r + s*s + g*g)
}
