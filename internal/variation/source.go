// Package variation implements the paper's first-order process-variation
// model (§3): a registry of independent normal variation sources split into
// three classes — per-site random device variation Xᵢ, intra-die spatially
// correlated variation Yᵢ on a grid, and a single inter-die variable G —
// plus sparse first-order ("canonical") linear forms over those sources and
// the statistical operations the buffer-insertion DP needs: variance,
// covariance, correlation, the tightness-probability MIN (eq. 38–40), and
// Monte-Carlo sampling.
package variation

import (
	"fmt"
	"math/rand"
)

// SourceID identifies one independent variation source within a Space.
type SourceID int32

// Class labels the physical origin of a variation source.
type Class uint8

// The three variation classes of §3.
const (
	// ClassRandom is purely random, per-device variation (§3.1).
	ClassRandom Class = iota
	// ClassSpatial is intra-die spatially correlated variation (§3.2).
	ClassSpatial
	// ClassInterDie is die-to-die variation shared by every device (§3.3).
	ClassInterDie
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRandom:
		return "random"
	case ClassSpatial:
		return "spatial"
	case ClassInterDie:
		return "inter-die"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Source is one independent normally distributed variation variable.
type Source struct {
	ID    SourceID
	Class Class
	// Sigma is the standard deviation of the source. All model-allocated
	// sources are unit normal; coefficients carry the scaling.
	Sigma float64
	// Label is a short human-readable description (for debugging output).
	Label string
}

// Space is a registry of independent variation sources. A single Space is
// shared by every linear form in one optimization run; SourceIDs index
// into it densely.
type Space struct {
	sources []Source
}

// NewSpace returns an empty source registry.
func NewSpace() *Space { return &Space{} }

// Add registers a new independent source and returns its ID.
func (s *Space) Add(class Class, sigma float64, label string) SourceID {
	if sigma < 0 {
		panic(fmt.Sprintf("variation: negative sigma %g for source %q", sigma, label))
	}
	id := SourceID(len(s.sources))
	s.sources = append(s.sources, Source{ID: id, Class: class, Sigma: sigma, Label: label})
	return id
}

// Len returns the number of registered sources.
func (s *Space) Len() int { return len(s.sources) }

// Source returns the source with the given ID.
func (s *Space) Source(id SourceID) Source {
	return s.sources[id]
}

// Sigma returns the standard deviation of source id.
func (s *Space) Sigma(id SourceID) float64 { return s.sources[id].Sigma }

// CountByClass returns how many sources belong to each class.
func (s *Space) CountByClass() map[Class]int {
	out := make(map[Class]int, numClasses)
	for _, src := range s.sources {
		out[src.Class]++
	}
	return out
}

// Sample draws one realization of every source into dst (allocated if nil
// or too short) and returns it. dst[i] ~ N(0, sigma_i), independent.
func (s *Space) Sample(rng *rand.Rand, dst []float64) []float64 {
	if cap(dst) < len(s.sources) {
		dst = make([]float64, len(s.sources))
	}
	dst = dst[:len(s.sources)]
	for i, src := range s.sources {
		dst[i] = rng.NormFloat64() * src.Sigma
	}
	return dst
}
