package variation

import (
	"math"
	"sync"

	"vabuf/internal/stats"
)

// arenaClasses are the slab size classes in terms. An arena grows
// geometrically through the classes: the first slab is tiny (a handful of
// short forms fit), each subsequent slab takes the next class, and
// long-lived DP workers settle on the max class. Small frontiers therefore
// reserve kilobytes instead of the former fixed 16384-term (~256 KiB)
// worst case, while big runs amortize exactly as before.
var arenaClasses = [...]int{64, 256, 1024, 4096, 16384}

// arenaSlabTerms is the largest slab class; requests beyond it get a
// dedicated, never-pooled slab.
const arenaSlabTerms = 16384

// slabPools recycles standard-size slabs per class across Arenas (and
// therefore across runs). Term contains no pointers, so pooled slabs cost
// the GC nothing while parked.
var slabPools [len(arenaClasses)]sync.Pool

func init() {
	for i := range slabPools {
		sz := arenaClasses[i]
		slabPools[i].New = func() any {
			s := make([]Term, sz)
			return &s
		}
	}
}

// Arena is a slab allocator for the Term storage behind Forms. One Arena
// belongs to exactly one goroutine (no internal locking); every Form built
// through the *In operations (AXPYIn, ScaleIn, MinIn, ...) borrows its
// Terms from the Arena's current slab instead of the heap.
//
// Ownership rules:
//
//   - Forms built from an Arena are valid only until Release is called.
//   - Release returns the standard-size slabs to a shared pool for reuse;
//     call it only when no Form referencing the Arena can be used again.
//     Any Form that outlives the run must be detached with Clone first.
//   - The zero number of retained slabs is restored by Release; an Arena
//     must not be used after Release.
type Arena struct {
	slabs []*[]Term
	cur   []Term
	off   int
	terms int64
	bytes int64
	// nextClass indexes arenaClasses for the next slab grab (geometric
	// growth, saturating at the max class).
	nextClass int
}

// NewArena returns an empty arena. The first slab is taken lazily.
func NewArena() *Arena { return &Arena{} }

// take reserves room for n terms and returns a zero-length slice with
// capacity n. Appends within that capacity stay inside the slab.
func (a *Arena) take(n int) []Term {
	if n == 0 {
		return nil
	}
	if a.off+n > len(a.cur) {
		if n > arenaSlabTerms {
			// Oversized request: dedicated slab, never pooled.
			s := make([]Term, n)
			a.slabs = append(a.slabs, &s)
			a.cur = s
		} else {
			cls := a.nextClass
			for arenaClasses[cls] < n {
				cls++
			}
			s := slabPools[cls].Get().(*[]Term)
			a.slabs = append(a.slabs, s)
			a.cur = *s
			if cls < len(arenaClasses)-1 {
				a.nextClass = cls + 1
			} else {
				a.nextClass = cls
			}
		}
		a.off = 0
		a.bytes += int64(len(a.cur)) * int64(termBytes)
	}
	s := a.cur[a.off : a.off : a.off+n]
	a.off += n
	a.terms += int64(n)
	return s
}

// giveBack returns the unused tail of the most recent take. Valid only
// immediately after the take, before any further allocation.
func (a *Arena) giveBack(n int) {
	a.off -= n
	a.terms -= int64(n)
}

// trim gives back the unused capacity of s, which must be the most recent
// take, and returns s unchanged.
func (a *Arena) trim(s []Term) []Term {
	a.giveBack(cap(s) - len(s))
	return s
}

// termBytes is sizeof(Term) without importing unsafe.
const termBytes = 4 /* SourceID */ + 4 /* padding */ + 8 /* Coef */

// Terms returns the number of terms handed out since creation.
func (a *Arena) Terms() int64 { return a.terms }

// Bytes returns the total slab bytes reserved by the arena.
func (a *Arena) Bytes() int64 { return a.bytes }

// UsedBytes returns the bytes of terms actually handed out — the live
// occupancy, as opposed to Bytes' reserved slab capacity.
func (a *Arena) UsedBytes() int64 { return a.terms * int64(termBytes) }

// Release parks the standard-size slabs in their class pools and drops the
// oversized ones. The arena must not be used afterwards, and no Form built
// from it may be touched again.
func (a *Arena) Release() {
	for _, s := range a.slabs {
		for i, sz := range arenaClasses {
			if len(*s) == sz {
				slabPools[i].Put(s)
				break
			}
		}
	}
	a.slabs, a.cur, a.off, a.nextClass = nil, nil, 0, 0
}

// Clone detaches a form from any arena by copying its terms to the heap.
func (f Form) Clone() Form {
	if len(f.Terms) == 0 {
		return Form{Nominal: f.Nominal}
	}
	terms := make([]Term, len(f.Terms))
	copy(terms, f.Terms)
	return Form{Nominal: f.Nominal, Terms: terms}
}

// AXPYIn is AXPY with the result terms borrowed from the arena. A nil
// arena falls back to the heap-allocating AXPY. The numerical result is
// bit-identical to AXPY.
func (f Form) AXPYIn(a *Arena, s float64, g Form) Form {
	if a == nil {
		return f.AXPY(s, g)
	}
	if s == 0 || len(g.Terms) == 0 {
		return Form{Nominal: f.Nominal + s*g.Nominal, Terms: f.Terms}
	}
	terms := a.take(len(f.Terms) + len(g.Terms))
	i, j := 0, 0
	// Fast path: forms produced by the same DP node usually carry the
	// same source set, so the two sorted lists align index-for-index.
	// Walking the aligned prefix with one predictable branch per term
	// computes exactly the shared-ID expression of the merge below.
	for i < len(f.Terms) && i < len(g.Terms) && f.Terms[i].ID == g.Terms[i].ID {
		if c := f.Terms[i].Coef + s*g.Terms[i].Coef; c != 0 {
			terms = append(terms, Term{f.Terms[i].ID, c})
		}
		i++
	}
	j = i
	for i < len(f.Terms) && j < len(g.Terms) {
		x, y := f.Terms[i], g.Terms[j]
		switch {
		case x.ID < y.ID:
			terms = append(terms, x)
			i++
		case x.ID > y.ID:
			terms = append(terms, Term{y.ID, s * y.Coef})
			j++
		default:
			if c := x.Coef + s*y.Coef; c != 0 {
				terms = append(terms, Term{x.ID, c})
			}
			i++
			j++
		}
	}
	terms = append(terms, f.Terms[i:]...)
	for ; j < len(g.Terms); j++ {
		terms = append(terms, Term{g.Terms[j].ID, s * g.Terms[j].Coef})
	}
	terms = a.trim(terms)
	return Form{Nominal: f.Nominal + s*g.Nominal, Terms: terms}
}

// AddIn returns f + g with arena-backed terms.
func (f Form) AddIn(a *Arena, g Form) Form { return f.AXPYIn(a, 1, g) }

// SubIn returns f - g with arena-backed terms.
func (f Form) SubIn(a *Arena, g Form) Form { return f.AXPYIn(a, -1, g) }

// ScaleIn returns s·f with arena-backed terms.
func (f Form) ScaleIn(a *Arena, s float64) Form {
	if a == nil {
		return f.Scale(s)
	}
	if s == 0 {
		return Form{}
	}
	terms := a.take(len(f.Terms))
	for _, t := range f.Terms {
		terms = append(terms, Term{t.ID, s * t.Coef})
	}
	return Form{Nominal: s * f.Nominal, Terms: terms}
}

// blendIn computes tf·f + tg·g in one merge pass, replicating the exact
// floating-point behaviour of f.Scale(tf).Add(g.Scale(tg)): a zero blend
// weight drops that side entirely (Scale(0) returns the empty form), and
// only coefficients that cancel on shared sources are dropped. The result
// terms always come from the arena (never aliased), so callers may rescale
// them in place.
func blendIn(a *Arena, tf float64, f Form, tg float64, g Form) Form {
	fts, gts := f.Terms, g.Terms
	if tf == 0 {
		fts = nil
	}
	if tg == 0 {
		gts = nil
	}
	terms := a.take(len(fts) + len(gts))
	i, j := 0, 0
	// Aligned-prefix fast path; see AXPYIn.
	for i < len(fts) && i < len(gts) && fts[i].ID == gts[i].ID {
		if c := (tf * fts[i].Coef) + (tg * gts[i].Coef); c != 0 {
			terms = append(terms, Term{fts[i].ID, c})
		}
		i++
	}
	j = i
	for i < len(fts) && j < len(gts) {
		x, y := fts[i], gts[j]
		switch {
		case x.ID < y.ID:
			terms = append(terms, Term{x.ID, tf * x.Coef})
			i++
		case x.ID > y.ID:
			terms = append(terms, Term{y.ID, tg * y.Coef})
			j++
		default:
			if c := (tf * x.Coef) + (tg * y.Coef); c != 0 {
				terms = append(terms, Term{x.ID, c})
			}
			i++
			j++
		}
	}
	for ; i < len(fts); i++ {
		terms = append(terms, Term{fts[i].ID, tf * fts[i].Coef})
	}
	for ; j < len(gts); j++ {
		terms = append(terms, Term{gts[j].ID, tg * gts[j].Coef})
	}
	terms = a.trim(terms)
	nominal := 0.0
	if tf != 0 {
		nominal += tf * f.Nominal
	}
	if tg != 0 {
		nominal += tg * g.Nominal
	}
	return Form{Nominal: nominal, Terms: terms}
}

// varDiffOrdered accumulates Var(f - g) walking both sorted term lists in
// merged ID order — the same coefficient expressions and summation order
// as f.Sub(g).Var(space), with no allocation.
func varDiffOrdered(f, g Form, space *Space) float64 {
	v := 0.0
	acc := func(id SourceID, c float64) {
		if c != 0 {
			s := space.Sigma(id)
			v += c * c * s * s
		}
	}
	i, j := 0, 0
	// Aligned-prefix fast path; see AXPYIn.
	for i < len(f.Terms) && i < len(g.Terms) && f.Terms[i].ID == g.Terms[i].ID {
		acc(f.Terms[i].ID, f.Terms[i].Coef+-1*g.Terms[i].Coef)
		i++
	}
	j = i
	for i < len(f.Terms) && j < len(g.Terms) {
		x, y := f.Terms[i], g.Terms[j]
		switch {
		case x.ID < y.ID:
			acc(x.ID, x.Coef)
			i++
		case x.ID > y.ID:
			acc(y.ID, -1*y.Coef)
			j++
		default:
			acc(x.ID, x.Coef+-1*y.Coef)
			i++
			j++
		}
	}
	for ; i < len(f.Terms); i++ {
		acc(f.Terms[i].ID, f.Terms[i].Coef)
	}
	for ; j < len(g.Terms); j++ {
		acc(g.Terms[j].ID, -1*g.Terms[j].Coef)
	}
	return v
}

// MinIn is Min with every intermediate and the result borrowed from the
// arena. A nil arena falls back to Min. The numerical result is
// bit-identical to Min.
func MinIn(a *Arena, f, g Form, space *Space) MinResult {
	if a == nil {
		return Min(f, g, space)
	}
	sd := math.Sqrt(varDiffOrdered(f, g, space))
	if sd == 0 {
		// The difference is deterministic: min is exactly one of the inputs.
		m := stats.MinMoments{SigmaDiff: 0}
		if f.Nominal <= g.Nominal {
			if f.Nominal == g.Nominal {
				m.Tightness = 0.5
			} else {
				m.Tightness = 1
			}
			m.Mean = f.Nominal
			m.Var = f.Var(space)
			return MinResult{Form: f, Moments: m}
		}
		m.Tightness = 0
		m.Mean = g.Nominal
		m.Var = g.Var(space)
		return MinResult{Form: g, Moments: m}
	}
	sf := f.Sigma(space)
	sg := g.Sigma(space)
	rho := Corr(f, g, space)
	mom := stats.MinNormals(f.Nominal, sf, g.Nominal, sg, rho)
	t := mom.Tightness
	blended := blendIn(a, t, f, 1-t, g)
	blended.Nominal = mom.Mean
	if vb := blended.Var(space); vb > 0 && mom.Var > 0 {
		s := math.Sqrt(mom.Var / vb)
		for i := range blended.Terms {
			blended.Terms[i].Coef *= s
		}
	}
	return MinResult{Form: blended, Moments: mom}
}
