package variation

import (
	"math/rand"
	"testing"
)

// benchForms builds two canonical forms sharing half their sources — the
// typical shape of the DP hot path, where sibling candidates carry mostly
// overlapping source sets.
func benchForms(nTerms int) (Form, Form, *Space) {
	space := NewSpace()
	rng := rand.New(rand.NewSource(42))
	shared := make([]Term, nTerms/2)
	for i := range shared {
		shared[i] = Term{ID: space.Add(ClassRandom, 1, "s"), Coef: rng.Float64()}
	}
	mk := func() Form {
		terms := append([]Term(nil), shared...)
		for i := 0; i < nTerms-len(shared); i++ {
			terms = append(terms, Term{ID: space.Add(ClassRandom, 1, "p"), Coef: rng.Float64()})
		}
		return NewForm(rng.Float64()*100, terms)
	}
	return mk(), mk(), space
}

func benchmarkAXPY(b *testing.B, nTerms int) {
	f, g, _ := benchForms(nTerms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkForm = f.AXPY(-0.5, g)
	}
}

func benchmarkAXPYIn(b *testing.B, nTerms int) {
	f, g, _ := benchForms(nTerms)
	a := NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 1023 {
			// Recycle so the arena footprint stays bounded; Get/Put on the
			// slab pool is part of the cost being measured.
			a.Release()
			a = NewArena()
		}
		sinkForm = f.AXPYIn(a, -0.5, g)
	}
}

func BenchmarkAXPY8(b *testing.B)    { benchmarkAXPY(b, 8) }
func BenchmarkAXPY64(b *testing.B)   { benchmarkAXPY(b, 64) }
func BenchmarkAXPYIn8(b *testing.B)  { benchmarkAXPYIn(b, 8) }
func BenchmarkAXPYIn64(b *testing.B) { benchmarkAXPYIn(b, 64) }
func BenchmarkMin64(b *testing.B)    { benchmarkMin(b, false) }
func BenchmarkMinIn64(b *testing.B)  { benchmarkMin(b, true) }

func benchmarkSigmaDiff(b *testing.B, nTerms int) {
	f, g, space := benchForms(nTerms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = SigmaDiff(f, g, space)
	}
}

func BenchmarkSigmaDiff8(b *testing.B)  { benchmarkSigmaDiff(b, 8) }
func BenchmarkSigmaDiff64(b *testing.B) { benchmarkSigmaDiff(b, 64) }

// sinkForm defeats dead-code elimination of the benchmarked expressions.
var sinkForm Form

// sinkFloat defeats dead-code elimination of scalar benchmark results.
var sinkFloat float64

func benchmarkMin(b *testing.B, arena bool) {
	f, g, space := benchForms(64)
	var a *Arena
	if arena {
		a = NewArena()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a != nil && i%1024 == 1023 {
			a.Release()
			a = NewArena()
		}
		sinkForm = MinIn(a, f, g, space).Form
	}
}
