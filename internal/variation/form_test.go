package variation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vabuf/internal/stats"
)

// testSpace builds a space with n unit-normal random sources.
func testSpace(n int) *Space {
	s := NewSpace()
	for i := 0; i < n; i++ {
		s.Add(ClassRandom, 1, "x")
	}
	return s
}

func TestNewFormCanonicalizes(t *testing.T) {
	f := NewForm(1, []Term{{3, 2}, {1, 5}, {3, -2}, {2, 0}})
	if len(f.Terms) != 1 || f.Terms[0].ID != 1 || f.Terms[0].Coef != 5 {
		t.Errorf("canonical form = %+v", f)
	}
	if f.Nominal != 1 {
		t.Errorf("nominal = %g", f.Nominal)
	}
}

func TestConstAndDeterministic(t *testing.T) {
	c := Const(7)
	if !c.IsDeterministic() || c.Mean() != 7 {
		t.Errorf("Const(7) = %+v", c)
	}
	f := NewForm(1, []Term{{0, 2}})
	if f.IsDeterministic() {
		t.Error("form with terms claims deterministic")
	}
}

func TestShiftScale(t *testing.T) {
	f := NewForm(2, []Term{{0, 3}})
	g := f.Shift(5)
	if g.Nominal != 7 || g.Terms[0].Coef != 3 {
		t.Errorf("Shift = %+v", g)
	}
	h := f.Scale(-2)
	if h.Nominal != -4 || h.Terms[0].Coef != -6 {
		t.Errorf("Scale = %+v", h)
	}
	z := f.Scale(0)
	if !z.IsDeterministic() || z.Nominal != 0 {
		t.Errorf("Scale(0) = %+v", z)
	}
}

func TestAXPYMergesSorted(t *testing.T) {
	f := NewForm(1, []Term{{0, 1}, {2, 2}})
	g := NewForm(10, []Term{{1, 3}, {2, -2}, {5, 1}})
	got := f.AXPY(1, g)
	want := NewForm(11, []Term{{0, 1}, {1, 3}, {5, 1}})
	if !formsEqual(got, want) {
		t.Errorf("AXPY = %+v, want %+v", got, want)
	}
	// Terms that cancel exactly disappear (ID 2 above).
	for _, tm := range got.Terms {
		if tm.ID == 2 {
			t.Error("cancelled term survived")
		}
	}
}

func TestAXPYZeroScale(t *testing.T) {
	f := NewForm(1, []Term{{0, 1}})
	g := NewForm(10, []Term{{1, 3}})
	got := f.AXPY(0, g)
	if !formsEqual(got, f) {
		t.Errorf("AXPY(0) changed the form: %+v", got)
	}
}

func formsEqual(a, b Form) bool {
	if a.Nominal != b.Nominal || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

func TestFormAlgebraProperties(t *testing.T) {
	// Build small random forms and check linearity identities by sampling.
	space := testSpace(6)
	rng := rand.New(rand.NewSource(17))
	randForm := func() Form {
		terms := make([]Term, 0, 4)
		for id := 0; id < 6; id++ {
			if rng.Float64() < 0.5 {
				terms = append(terms, Term{SourceID(id), rng.NormFloat64()})
			}
		}
		return NewForm(rng.NormFloat64()*10, terms)
	}
	samples := space.Sample(rng, nil)
	for trial := 0; trial < 200; trial++ {
		f := randForm()
		g := randForm()
		s := rng.NormFloat64()
		// Eval is linear: (f + s g)(x) == f(x) + s g(x).
		lhs := f.AXPY(s, g).Eval(samples)
		rhs := f.Eval(samples) + s*g.Eval(samples)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("linearity violated: %g vs %g", lhs, rhs)
		}
		// Sub is AXPY(-1, ·).
		if !formsEqual(f.Sub(g), f.AXPY(-1, g)) {
			t.Fatal("Sub != AXPY(-1)")
		}
		// Var(f - f) = 0.
		if v := f.Sub(f).Var(space); v != 0 {
			t.Fatalf("Var(f-f) = %g", v)
		}
		// Var(f+g) = Var f + 2 Cov + Var g.
		vsum := f.Add(g).Var(space)
		expect := f.Var(space) + 2*Cov(f, g, space) + g.Var(space)
		if math.Abs(vsum-expect) > 1e-9 {
			t.Fatalf("variance bilinearity: %g vs %g", vsum, expect)
		}
	}
}

func TestVarCovCorr(t *testing.T) {
	space := NewSpace()
	a := space.Add(ClassRandom, 2, "a") // sigma 2
	b := space.Add(ClassRandom, 3, "b") // sigma 3
	f := NewForm(0, []Term{{a, 1}, {b, 1}})
	if v := f.Var(space); math.Abs(v-13) > 1e-12 {
		t.Errorf("Var = %g, want 13", v)
	}
	g := NewForm(0, []Term{{a, 2}})
	if c := Cov(f, g, space); math.Abs(c-8) > 1e-12 {
		t.Errorf("Cov = %g, want 8", c)
	}
	// Corr of identical forms is 1; of disjoint forms is 0.
	if r := Corr(f, f, space); math.Abs(r-1) > 1e-12 {
		t.Errorf("self Corr = %g", r)
	}
	h := NewForm(0, []Term{{b, 5}})
	gOnlyA := NewForm(0, []Term{{a, 1}})
	if r := Corr(gOnlyA, h, space); r != 0 {
		t.Errorf("disjoint Corr = %g", r)
	}
	// Deterministic forms have zero correlation by convention.
	if r := Corr(Const(1), f, space); r != 0 {
		t.Errorf("deterministic Corr = %g", r)
	}
}

func TestCorrBoundsProperty(t *testing.T) {
	space := testSpace(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Form {
			terms := make([]Term, 0, 8)
			for id := 0; id < 8; id++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{SourceID(id), rng.NormFloat64() * 5})
				}
			}
			return NewForm(0, terms)
		}
		a, b := mk(), mk()
		r := Corr(a, b, space)
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSigmaDiffMatchesCovFormula(t *testing.T) {
	space := testSpace(5)
	f := NewForm(3, []Term{{0, 1}, {1, 2}})
	g := NewForm(1, []Term{{1, 2}, {3, -1}})
	direct := SigmaDiff(f, g, space)
	viaCov := math.Sqrt(f.Var(space) - 2*Cov(f, g, space) + g.Var(space))
	if math.Abs(direct-viaCov) > 1e-12 {
		t.Errorf("SigmaDiff %g vs cov formula %g", direct, viaCov)
	}
	// Shared term with equal coefficients cancels entirely.
	h := NewForm(0, []Term{{1, 2}})
	k := NewForm(5, []Term{{1, 2}})
	if sd := SigmaDiff(h, k, space); sd != 0 {
		t.Errorf("fully correlated SigmaDiff = %g", sd)
	}
}

func TestSigmaDiffMatchesSubForm(t *testing.T) {
	space := testSpace(12)
	rng := rand.New(rand.NewSource(9))
	mk := func() Form {
		var terms []Term
		for id := 0; id < 12; id++ {
			if rng.Float64() < 0.5 {
				terms = append(terms, Term{SourceID(id), rng.NormFloat64()})
			}
		}
		return NewForm(rng.NormFloat64()*10, terms)
	}
	for i := 0; i < 200; i++ {
		f, g := mk(), mk()
		direct := SigmaDiff(f, g, space)
		viaSub := f.Sub(g).Sigma(space)
		if math.Abs(direct-viaSub) > 1e-9*(1+viaSub) {
			t.Fatalf("iter %d: merge-walk SigmaDiff %g vs Sub form %g", i, direct, viaSub)
		}
	}
}

func TestSigmaDiffDoesNotAllocate(t *testing.T) {
	f, g, space := benchForms(64)
	if allocs := testing.AllocsPerRun(100, func() {
		sinkFloat = SigmaDiff(f, g, space)
	}); allocs != 0 {
		t.Errorf("SigmaDiff allocates %g objects per call, want 0", allocs)
	}
}

func TestProbGreaterForms(t *testing.T) {
	space := testSpace(3)
	f := NewForm(1, []Term{{0, 1}})
	g := NewForm(0, []Term{{1, 1}})
	want := stats.Phi(1 / math.Sqrt2)
	if p := ProbGreater(f, g, space); math.Abs(p-want) > 1e-12 {
		t.Errorf("ProbGreater = %g, want %g", p, want)
	}
	// Deterministic ordering.
	if p := ProbGreater(Const(2), Const(1), space); p != 1 {
		t.Errorf("deterministic greater = %g", p)
	}
	if p := ProbGreater(Const(1), Const(2), space); p != 0 {
		t.Errorf("deterministic less = %g", p)
	}
	if p := ProbGreater(Const(1), Const(1), space); p != 0.5 {
		t.Errorf("deterministic tie = %g", p)
	}
	// Complementarity on random forms.
	if p, q := ProbGreater(f, g, space), ProbGreater(g, f, space); math.Abs(p+q-1) > 1e-12 {
		t.Errorf("complementarity: %g + %g != 1", p, q)
	}
}

func TestQuantileForm(t *testing.T) {
	space := testSpace(1)
	f := NewForm(10, []Term{{0, 2}})
	if q := f.Quantile(0.5, space); q != 10 {
		t.Errorf("median = %g", q)
	}
	q95 := f.Quantile(0.95, space)
	if math.Abs(q95-(10+2*1.6448536269514722)) > 1e-9 {
		t.Errorf("q95 = %g", q95)
	}
}

func TestMinAgainstSampling(t *testing.T) {
	space := testSpace(4)
	rng := rand.New(rand.NewSource(23))
	// Correlated forms sharing source 1.
	f := NewForm(5, []Term{{0, 1}, {1, 2}})
	g := NewForm(5.5, []Term{{1, 2}, {2, 1.5}})
	res := Min(f, g, space)
	const n = 300000
	var sum float64
	samples := make([]float64, 0)
	for i := 0; i < n; i++ {
		samples = space.Sample(rng, samples)
		sum += math.Min(f.Eval(samples), g.Eval(samples))
	}
	mcMean := sum / n
	if math.Abs(mcMean-res.Form.Nominal) > 0.02 {
		t.Errorf("Min mean: MC %g vs model %g", mcMean, res.Form.Nominal)
	}
	if res.Moments.Tightness <= 0 || res.Moments.Tightness >= 1 {
		t.Errorf("tightness = %g", res.Moments.Tightness)
	}
	// The blended form's mean must equal Clark's mean exactly.
	if res.Form.Nominal != res.Moments.Mean {
		t.Errorf("form nominal %g != Clark mean %g", res.Form.Nominal, res.Moments.Mean)
	}
}

func TestMinDegenerateCases(t *testing.T) {
	space := testSpace(2)
	f := NewForm(1, []Term{{0, 1}})
	g := NewForm(3, []Term{{0, 1}}) // same sensitivity: difference deterministic
	res := Min(f, g, space)
	if !formsEqual(res.Form, f) {
		t.Errorf("deterministic-difference min = %+v, want f", res.Form)
	}
	if res.Moments.Tightness != 1 {
		t.Errorf("tightness = %g, want 1", res.Moments.Tightness)
	}
	res = Min(g, f, space)
	if !formsEqual(res.Form, f) {
		t.Errorf("swapped min = %+v, want f", res.Form)
	}
	if res.Moments.Tightness != 0 {
		t.Errorf("tightness = %g, want 0", res.Moments.Tightness)
	}
	// Identical forms.
	res = Min(f, f, space)
	if !formsEqual(res.Form, f) || res.Moments.Tightness != 0.5 {
		t.Errorf("identical min = %+v / %+v", res.Form, res.Moments)
	}
}

func TestMinMeanNotAboveEitherInput(t *testing.T) {
	space := testSpace(6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Form {
			terms := make([]Term, 0, 6)
			for id := 0; id < 6; id++ {
				if rng.Float64() < 0.5 {
					terms = append(terms, Term{SourceID(id), rng.NormFloat64() * 3})
				}
			}
			return NewForm(rng.NormFloat64()*20, terms)
		}
		a, b := mk(), mk()
		res := Min(a, b, space)
		return res.Form.Nominal <= math.Min(a.Nominal, b.Nominal)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewFormCanonicalProperty(t *testing.T) {
	// For arbitrary term lists, NewForm yields strictly ascending unique
	// IDs with no zero coefficients, and evaluation is preserved.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		terms := make([]Term, n)
		for i := range terms {
			terms[i] = Term{ID: SourceID(rng.Intn(6)), Coef: float64(rng.Intn(5) - 2)}
		}
		form := NewForm(rng.NormFloat64(), terms)
		for i, tm := range form.Terms {
			if tm.Coef == 0 {
				return false
			}
			if i > 0 && form.Terms[i-1].ID >= tm.ID {
				return false
			}
		}
		// Evaluation equals the naive sum over the raw terms.
		samples := make([]float64, 6)
		for i := range samples {
			samples[i] = rng.NormFloat64()
		}
		want := form.Nominal
		for _, tm := range terms {
			want += tm.Coef * samples[tm.ID]
		}
		return math.Abs(form.Eval(samples)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxMirrorsMin(t *testing.T) {
	space := testSpace(4)
	f := NewForm(5, []Term{{0, 1}, {1, 2}})
	g := NewForm(5.5, []Term{{1, 2}, {2, 1.5}})
	mx := Max(f, g, space)
	mn := Min(f.Scale(-1), g.Scale(-1), space)
	if math.Abs(mx.Form.Nominal+mn.Form.Nominal) > 1e-12 {
		t.Errorf("Max mean %g != -Min(-f,-g) mean %g", mx.Form.Nominal, mn.Form.Nominal)
	}
	// E[max] is at least the larger mean.
	if mx.Form.Nominal < math.Max(f.Nominal, g.Nominal)-1e-12 {
		t.Errorf("E[max] = %g below larger mean", mx.Form.Nominal)
	}
	// Variance matches Clark's moments after moment matching.
	if v := mx.Form.Var(space); math.Abs(v-mx.Moments.Var) > 1e-9 {
		t.Errorf("matched variance %g != Clark %g", v, mx.Moments.Var)
	}
}

func TestMaxAgainstSampling(t *testing.T) {
	space := testSpace(3)
	rng := rand.New(rand.NewSource(77))
	f := NewForm(10, []Term{{0, 2}, {1, 1}})
	g := NewForm(10.5, []Term{{1, 1}, {2, 2}})
	res := Max(f, g, space)
	const n = 200000
	var sum, sum2 float64
	var buf []float64
	for i := 0; i < n; i++ {
		buf = space.Sample(rng, buf)
		v := math.Max(f.Eval(buf), g.Eval(buf))
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	varMC := sum2/n - mean*mean
	if math.Abs(mean-res.Form.Nominal) > 0.03 {
		t.Errorf("Max mean: MC %g vs model %g", mean, res.Form.Nominal)
	}
	if math.Abs(varMC-res.Form.Var(space)) > 0.1*varMC {
		t.Errorf("Max var: MC %g vs model %g", varMC, res.Form.Var(space))
	}
}

func TestMinMomentMatchedVariance(t *testing.T) {
	space := testSpace(4)
	f := NewForm(0, []Term{{0, 3}})
	g := NewForm(0.2, []Term{{1, 3}})
	res := Min(f, g, space)
	if v := res.Form.Var(space); math.Abs(v-res.Moments.Var) > 1e-9 {
		t.Errorf("min form variance %g != Clark variance %g", v, res.Moments.Var)
	}
}

func TestFormString(t *testing.T) {
	f := NewForm(1.5, []Term{{2, -0.25}})
	s := f.String()
	if s == "" {
		t.Error("empty String()")
	}
}
