package variation

import (
	"math"
	"testing"

	"vabuf/internal/geom"
)

func die10mm() geom.Rect {
	return geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10000, Y: 10000})
}

func TestNewModelValidation(t *testing.T) {
	cfg := DefaultConfig(die10mm())
	cfg.RandomFrac = -1
	if _, err := NewModel(cfg); err == nil {
		t.Error("negative budget should error")
	}
	cfg = ModelConfig{Die: die10mm()}
	if _, err := NewModel(cfg); err == nil {
		t.Error("all-zero budgets should error")
	}
}

func TestModelSourceAllocation(t *testing.T) {
	m, err := NewModel(DefaultConfig(die10mm()))
	if err != nil {
		t.Fatal(err)
	}
	counts := m.Space.CountByClass()
	if counts[ClassInterDie] != 1 {
		t.Errorf("inter-die sources = %d", counts[ClassInterDie])
	}
	// 10 mm die / 500 µm cells = 20x20 grid.
	if counts[ClassSpatial] != 400 {
		t.Errorf("spatial sources = %d, want 400", counts[ClassSpatial])
	}
	if counts[ClassRandom] != 0 {
		t.Errorf("random sources pre-allocated: %d", counts[ClassRandom])
	}
	// Random sources are allocated per unique site and reused.
	a := m.RandomSourceFor(42)
	b := m.RandomSourceFor(42)
	c := m.RandomSourceFor(43)
	if a != b {
		t.Error("same site got different random sources")
	}
	if a == c {
		t.Error("different sites shared a random source")
	}
}

func TestDeviationBudget(t *testing.T) {
	cfg := DefaultConfig(die10mm())
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loc := geom.Point{X: 5000, Y: 5000}
	d := m.Deviation(7, loc)
	if d.Nominal != 0 {
		t.Errorf("deviation nominal = %g", d.Nominal)
	}
	want := math.Sqrt(3) * 0.05 // three independent 5% classes
	if got := d.Sigma(m.Space); math.Abs(got-want) > 1e-9 {
		t.Errorf("deviation sigma = %g, want %g", got, want)
	}
	if got := m.TotalFracAt(loc); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalFracAt = %g, want %g", got, want)
	}
}

func TestDeviationClassToggles(t *testing.T) {
	// D2D configuration: no spatial class.
	cfg := DefaultConfig(die10mm())
	cfg.SpatialFrac = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Space.CountByClass()[ClassSpatial]; got != 0 {
		t.Errorf("spatial sources with zero budget: %d", got)
	}
	d := m.Deviation(1, geom.Point{X: 100, Y: 100})
	want := math.Sqrt(2) * 0.05
	if got := d.Sigma(m.Space); math.Abs(got-want) > 1e-9 {
		t.Errorf("D2D deviation sigma = %g, want %g", got, want)
	}
}

func TestSpatialCorrelationDecaysWithDistance(t *testing.T) {
	cfg := DefaultConfig(die10mm())
	cfg.RandomFrac = 0
	cfg.InterDieFrac = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := geom.Point{X: 5000, Y: 5000}
	dBase := m.Deviation(0, base)
	// Figure 4's behaviour: nearby devices share regions (high correlation),
	// far devices share none (zero correlation).
	near := m.Deviation(1, geom.Point{X: 5300, Y: 5000}) // 300 µm away
	mid := m.Deviation(2, geom.Point{X: 7000, Y: 5000})  // 2 mm away
	far := m.Deviation(3, geom.Point{X: 9800, Y: 200})   // ~6.7 mm away
	rhoNear := Corr(dBase, near, m.Space)
	rhoMid := Corr(dBase, mid, m.Space)
	rhoFar := Corr(dBase, far, m.Space)
	if !(rhoNear > rhoMid) {
		t.Errorf("correlation did not decay: near %g, mid %g", rhoNear, rhoMid)
	}
	if rhoNear < 0.8 {
		t.Errorf("near correlation = %g, want high", rhoNear)
	}
	if rhoFar > 1e-6 {
		t.Errorf("far correlation = %g, want ~0", rhoFar)
	}
	// Same cell: correlation exactly 1 (identical stencils, no random part).
	same := m.Deviation(4, geom.Point{X: 5010, Y: 5010})
	if rho := Corr(dBase, same, m.Space); math.Abs(rho-1) > 1e-9 {
		t.Errorf("same-cell correlation = %g, want 1", rho)
	}
}

func TestRandomClassDecorrelates(t *testing.T) {
	// With random variation on, even same-cell devices are not perfectly
	// correlated.
	m, err := NewModel(DefaultConfig(die10mm()))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Deviation(0, geom.Point{X: 5000, Y: 5000})
	b := m.Deviation(1, geom.Point{X: 5010, Y: 5010})
	rho := Corr(a, b, m.Space)
	if rho >= 1-1e-9 || rho <= 0 {
		t.Errorf("same-cell different-site correlation = %g, want in (0,1)", rho)
	}
}

func TestHeterogeneousRamp(t *testing.T) {
	cfg := DefaultConfig(die10mm())
	cfg.Heterogeneous = true
	cfg.RandomFrac = 0
	cfg.InterDieFrac = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw := m.Deviation(0, geom.Point{X: 100, Y: 100}).Sigma(m.Space)
	mid := m.Deviation(1, geom.Point{X: 5000, Y: 5000}).Sigma(m.Space)
	ne := m.Deviation(2, geom.Point{X: 9900, Y: 9900}).Sigma(m.Space)
	if !(sw < mid && mid < ne) {
		t.Errorf("heterogeneous ramp not increasing SW→NE: %g, %g, %g", sw, mid, ne)
	}
	// Midpoint sees roughly the budget.
	if math.Abs(mid-0.05) > 0.005 {
		t.Errorf("mid-die sigma = %g, want ~0.05", mid)
	}
	// NE corner is roughly twice the budget.
	if ne < 0.08 {
		t.Errorf("NE sigma = %g, want ~0.10", ne)
	}
}

func TestInterDieFullyCorrelated(t *testing.T) {
	cfg := DefaultConfig(die10mm())
	cfg.RandomFrac = 0
	cfg.SpatialFrac = 0
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Deviation(0, geom.Point{X: 100, Y: 100})
	b := m.Deviation(1, geom.Point{X: 9900, Y: 9900})
	if rho := Corr(a, b, m.Space); math.Abs(rho-1) > 1e-12 {
		t.Errorf("inter-die-only correlation = %g, want 1", rho)
	}
}

func TestStencilCaching(t *testing.T) {
	m, err := NewModel(DefaultConfig(die10mm()))
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{X: 2500, Y: 2500}
	d1 := m.Deviation(0, p)
	d2 := m.Deviation(0, p)
	if !formsEqual(d1, d2) {
		t.Error("repeated Deviation for the same site differs")
	}
	if len(m.stencil) == 0 {
		t.Error("stencil cache unused")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	cfg := ModelConfig{Die: die10mm(), RandomFrac: 0.05}
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Config.GridCell != 500 || m.Config.CorrRadius != 2000 {
		t.Errorf("defaults not applied: %+v", m.Config)
	}
}
