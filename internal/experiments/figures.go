package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"vabuf/internal/benchgen"
	"vabuf/internal/device"
	"vabuf/internal/report"
	"vabuf/internal/spice"
	"vabuf/internal/stats"
	"vabuf/internal/yield"
)

// Figure2Curve is one P(T1 > T2) curve for a (rho, sigma-ratio) setting.
type Figure2Curve struct {
	Rho        float64
	SigmaRatio float64 // sigma1 / sigma2
	MeanDiffs  []float64
	Probs      []float64
}

// Figure2 evaluates eq. 8 over a mean-difference sweep for the paper's six
// settings: rho in {0, 0.5, 0.9} with sigma1 = sigma2 and sigma1 = 3*sigma2.
func Figure2(cfg Config) ([]Figure2Curve, error) {
	cfg = cfg.withDefaults()
	const sigma2 = 1.0
	var out []Figure2Curve
	for _, ratio := range []float64{1, 3} {
		for _, rho := range []float64{0, 0.5, 0.9} {
			c := Figure2Curve{Rho: rho, SigmaRatio: ratio}
			for d := 0.0; d <= 8.0001; d += 0.25 {
				c.MeanDiffs = append(c.MeanDiffs, d)
				c.Probs = append(c.Probs, stats.ProbGreater(d, ratio*sigma2, 0, sigma2, rho))
			}
			out = append(out, c)
		}
	}
	return out, nil
}

// RenderFigure2 plots the curves.
func RenderFigure2(w io.Writer, curves []Figure2Curve) error {
	p := report.NewLinePlot("Figure 2: P(T1 > T2) vs mean difference (eq. 8)",
		"mu_T1 - mu_T2", "P(T1 > T2)")
	marks := []rune{'a', 'b', 'c', 'd', 'e', 'f'}
	for i, c := range curves {
		if err := p.Add(marks[i%len(marks)], c.MeanDiffs, c.Probs); err != nil {
			return err
		}
	}
	if err := p.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "marks: a/b/c = rho 0/0.5/0.9 at sigma1=sigma2; d/e/f = same at sigma1=3*sigma2\n")
	return err
}

// Figure3Result is the device-fitting experiment: the nonlinear substrate
// sampled under L_eff variation versus the first-order normal model.
type Figure3Result struct {
	Fit *device.FitResult
	// Hist is the "SPICE-extracted PDF" histogram of T_b samples.
	Hist *stats.Histogram
}

// Figure3 runs the §3.1 pipeline: L_eff ~ N(Lnom, 10% Lnom), 2000 samples
// through the transient substrate, least-squares first-order fit, and the
// PDF comparison.
func Figure3(cfg Config) (*Figure3Result, error) {
	cfg = cfg.withDefaults()
	n := cfg.MCSamples / 5
	if n < 200 {
		n = 200
	}
	fit, err := device.Extract(spice.Default65nm(4), 0.10, n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	hist, err := stats.HistogramOf(fit.TbSamples, 40)
	if err != nil {
		return nil, err
	}
	return &Figure3Result{Fit: fit, Hist: hist}, nil
}

// RenderFigure3 plots the sampled PDF against the fitted normal.
func RenderFigure3(w io.Writer, res *Figure3Result) error {
	p := report.NewLinePlot("Figure 3: Normal approximation of T_b vs substrate-extracted PDF",
		"T_b (ps)", "density")
	xs := make([]float64, len(res.Hist.Counts))
	emp := res.Hist.PDF()
	model := make([]float64, len(xs))
	for i := range xs {
		xs[i] = res.Hist.BinCenter(i)
		model[i] = stats.NormalPDF(xs[i], res.Fit.TbMean, res.Fit.TbSigma)
	}
	if err := p.Add('#', xs, emp); err != nil {
		return err
	}
	if err := p.Add('o', xs, model); err != nil {
		return err
	}
	if err := p.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"# = sampled substrate PDF, o = first-order normal model; KS distance %.4f, Tb fit R^2 %.4f, rel sens: Cb %.1f%%, Tb %.1f%%\n",
		res.Fit.KS, res.Fit.TbFit.R2, 100*res.Fit.CbRelSens, 100*res.Fit.TbRelSens)
	return err
}

// Figure5Row is one point of the runtime-scaling experiment.
type Figure5Row struct {
	Bench   string
	Sinks   int
	Elapsed time.Duration
}

// Figure5Result carries the sweep and the linear fit quality.
type Figure5Result struct {
	Rows []Figure5Row
	// Fit is runtime (s) versus sinks; R2 close to 1 backs the paper's
	// "roughly linear runtime scalability" claim.
	Fit stats.LinearFit
}

// Figure5 times the full-library 2P WID optimization across the benchmark
// suite and fits runtime against sink count.
func Figure5(cfg Config) (*Figure5Result, error) {
	cfg = cfg.withDefaults()
	res := &Figure5Result{}
	var xs, ys []float64
	for _, name := range cfg.Benches {
		tr, err := benchgen.Build(name)
		if err != nil {
			return nil, err
		}
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull); err != nil {
			return nil, fmt.Errorf("experiments: figure 5 on %s: %w", name, err)
		}
		el := time.Since(t0)
		res.Rows = append(res.Rows, Figure5Row{Bench: name, Sinks: tr.NumSinks(), Elapsed: el})
		xs = append(xs, float64(tr.NumSinks()))
		ys = append(ys, el.Seconds())
	}
	if len(xs) >= 2 {
		fit, err := stats.FitLine(xs, ys)
		if err != nil {
			return nil, err
		}
		res.Fit = fit
	}
	return res, nil
}

// RenderFigure5 plots runtime versus sinks.
func RenderFigure5(w io.Writer, res *Figure5Result) error {
	p := report.NewLinePlot("Figure 5: Runtime versus total number of sinks (2P rule)",
		"sinks", "runtime (s)")
	xs := make([]float64, len(res.Rows))
	ys := make([]float64, len(res.Rows))
	for i, r := range res.Rows {
		xs[i] = float64(r.Sinks)
		ys[i] = r.Elapsed.Seconds()
	}
	if err := p.Add('*', xs, ys); err != nil {
		return err
	}
	if err := p.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "linear fit: t = %.3g + %.3g*sinks (R^2 = %.4f)\n",
		res.Fit.Intercept, res.Fit.Slope, res.Fit.R2)
	return err
}

// Figure6Result compares the canonical RAT distribution at the root of the
// largest WID-buffered benchmark against Monte-Carlo ground truth.
type Figure6Result struct {
	Bench               string
	ModelMean, ModelSig float64
	MCMean, MCSig       float64
	KS                  float64
	Hist                *stats.Histogram
	Samples             int
}

// Figure6 optimizes the largest configured benchmark under the WID model,
// then evaluates the buffered tree by canonical propagation and by
// cfg.MCSamples-sample Monte Carlo.
func Figure6(cfg Config) (*Figure6Result, error) {
	cfg = cfg.withDefaults()
	name := cfg.Benches[len(cfg.Benches)-1]
	tr, err := benchgen.Build(name)
	if err != nil {
		return nil, err
	}
	wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
	if err != nil {
		return nil, err
	}
	res, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull)
	if err != nil {
		return nil, err
	}
	samples, err := yield.MonteCarloParallel(tr, library(), res.Assignment, nil, wid, cfg.MCSamples, cfg.Seed, cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	mean, v := stats.MeanVar(samples)
	ks, err := stats.KSNormal(samples, res.Mean, res.Sigma)
	if err != nil {
		return nil, err
	}
	hist, err := stats.HistogramOf(samples, 40)
	if err != nil {
		return nil, err
	}
	return &Figure6Result{
		Bench:     name,
		ModelMean: res.Mean,
		ModelSig:  res.Sigma,
		MCMean:    mean,
		MCSig:     math.Sqrt(v),
		KS:        ks,
		Hist:      hist,
		Samples:   len(samples),
	}, nil
}

// RenderFigure6 plots both PDFs.
func RenderFigure6(w io.Writer, res *Figure6Result) error {
	p := report.NewLinePlot(
		fmt.Sprintf("Figure 6: RAT at the root of %s — model vs Monte Carlo (%d samples)",
			res.Bench, res.Samples),
		"RAT (ps)", "density")
	xs := make([]float64, len(res.Hist.Counts))
	emp := res.Hist.PDF()
	model := make([]float64, len(xs))
	for i := range xs {
		xs[i] = res.Hist.BinCenter(i)
		model[i] = stats.NormalPDF(xs[i], res.ModelMean, res.ModelSig)
	}
	if err := p.Add('#', xs, emp); err != nil {
		return err
	}
	if err := p.Add('o', xs, model); err != nil {
		return err
	}
	if err := p.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"# = Monte Carlo, o = model; model N(%.1f, %.2f) vs MC N(%.1f, %.2f), KS %.4f\n",
		res.ModelMean, res.ModelSig, res.MCMean, res.MCSig, res.KS)
	return err
}
