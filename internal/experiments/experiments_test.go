package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows, err := Table1(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int{
		"p1": {269, 537}, "p2": {603, 1205},
		"r1": {267, 533}, "r2": {598, 1195}, "r3": {862, 1723},
		"r4": {1903, 3805}, "r5": {3101, 6201},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected bench %q", r.Name)
			continue
		}
		if r.Sinks != w[0] || r.Positions != w[1] {
			t.Errorf("%s: got (%d, %d), want (%d, %d)", r.Name, r.Sinks, r.Positions, w[0], w[1])
		}
	}
	var sb strings.Builder
	if err := RenderTable1(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "6201") {
		t.Error("render missing r5 positions")
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"p1"}
	cfg.FourPTimeout = 5e9 // 5s
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// s8..s64 plus p1.
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	finished := 0
	for _, r := range rows {
		if r.Time2P <= 0 {
			t.Errorf("%s: 2P did not run", r.Bench)
		}
		if r.Fail4P == "" {
			finished++
			if r.Speedup <= 0 {
				t.Errorf("%s: missing speedup", r.Bench)
			}
		}
	}
	// The 4P baseline must at least finish the smallest net, and the 2P
	// rule must finish everything (it always does — no Fail field exists).
	if finished == 0 {
		t.Error("4P finished nothing, cannot demonstrate the speedup column")
	}
	// The paper's shape: 4P hits its wall somewhere on the suite while 2P
	// cruises. With the quick caps the preset benchmark must be beyond 4P.
	last := rows[len(rows)-1]
	if last.Bench == "p1" && last.Fail4P == "" && last.Speedup < 5 {
		t.Errorf("p1: expected 4P to fail or be >=5x slower, got %.1fx", last.Speedup)
	}
	var sb strings.Builder
	if err := RenderTable2(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Speedup") {
		t.Error("render missing header")
	}
}

func TestFigure2Shape(t *testing.T) {
	curves, err := Figure2(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 6 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if c.Probs[0] != 0.5 {
			t.Errorf("rho=%g ratio=%g: P at zero mean diff = %g, want 0.5", c.Rho, c.SigmaRatio, c.Probs[0])
		}
		for i := 1; i < len(c.Probs); i++ {
			if c.Probs[i] < c.Probs[i-1] {
				t.Fatalf("curve rho=%g not monotone", c.Rho)
			}
		}
		if c.Probs[len(c.Probs)-1] < 0.99 {
			t.Errorf("rho=%g ratio=%g: tail P = %g, want near 1", c.Rho, c.SigmaRatio, c.Probs[len(c.Probs)-1])
		}
	}
	// Equal sigmas: higher correlation makes the curve steeper (smaller
	// sigma_diff) — check at a mid-sweep point.
	mid := len(curves[0].Probs) / 3
	if !(curves[2].Probs[mid] > curves[1].Probs[mid] && curves[1].Probs[mid] > curves[0].Probs[mid]) {
		t.Error("equal-sigma curves not ordered by correlation")
	}
	var sb strings.Builder
	if err := RenderFigure2(&sb, curves); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3Shape(t *testing.T) {
	cfg := QuickConfig()
	res, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit.KS > 0.08 {
		t.Errorf("KS = %g, first-order normal approximation should be close", res.Fit.KS)
	}
	if res.Fit.TbFit.R2 < 0.95 {
		t.Errorf("Tb fit R2 = %g", res.Fit.TbFit.R2)
	}
	// The extracted T_b variability justifies the headline BudgetFrac
	// (see Config.BudgetFrac): ~15% per 10% L_eff sigma.
	if res.Fit.TbRelSens < 0.10 || res.Fit.TbRelSens > 0.22 {
		t.Errorf("TbRelSens = %g, expected ~0.15", res.Fit.TbRelSens)
	}
	var sb strings.Builder
	if err := RenderFigure3(&sb, res); err != nil {
		t.Fatal(err)
	}
}

func TestFigure5Shape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"p1", "r1", "r2", "r3"}
	res, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// Roughly linear runtime: good fit and positive slope.
	if res.Fit.Slope <= 0 {
		t.Errorf("runtime slope = %g", res.Fit.Slope)
	}
	if res.Fit.R2 < 0.8 {
		t.Errorf("runtime linearity R2 = %g, expected roughly linear", res.Fit.R2)
	}
	var sb strings.Builder
	if err := RenderFigure5(&sb, res); err != nil {
		t.Fatal(err)
	}
}

func TestFigure6Shape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"r1"}
	cfg.MCSamples = 4000
	res, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ModelMean-res.MCMean) > 0.01*math.Abs(res.ModelMean) {
		t.Errorf("model mean %.2f vs MC %.2f", res.ModelMean, res.MCMean)
	}
	if res.ModelSig > 0 && math.Abs(res.ModelSig-res.MCSig)/res.ModelSig > 0.15 {
		t.Errorf("model sigma %.2f vs MC %.2f", res.ModelSig, res.MCSig)
	}
	if res.KS > 0.06 {
		t.Errorf("KS = %g, model should predict the MC PDF closely", res.KS)
	}
	var sb strings.Builder
	if err := RenderFigure6(&sb, res); err != nil {
		t.Fatal(err)
	}
}

func TestYieldComparisonShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"r1", "r2"}
	het, err := YieldComparison(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	hom, err := YieldComparison(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	check := func(rows []YieldRow, tag string) (avgNOMDeg float64) {
		for _, r := range rows {
			// WID is the best design under its own model (small tolerance
			// for the canonical re-evaluation of the DP's pick).
			tol := 0.002 * math.Abs(r.WID.YieldRAT)
			if r.NOM.YieldRAT > r.WID.YieldRAT+tol {
				t.Errorf("%s %s: NOM yield-RAT %.1f better than WID %.1f",
					tag, r.Bench, r.NOM.YieldRAT, r.WID.YieldRAT)
			}
			if r.NOM.Yield > r.WID.Yield+0.02 {
				t.Errorf("%s %s: NOM yield %.3f above WID %.3f", tag, r.Bench, r.NOM.Yield, r.WID.Yield)
			}
			// Table 5 shape: WID never needs more buffers than NOM.
			if r.WID.Buffers > r.NOM.Buffers {
				t.Errorf("%s %s: WID buffers %d > NOM %d", tag, r.Bench, r.WID.Buffers, r.NOM.Buffers)
			}
			avgNOMDeg += r.NOM.RelDeg
		}
		return avgNOMDeg / float64(len(rows))
	}
	hetDeg := check(het, "hetero")
	check(hom, "homo")
	// NOM must degrade measurably under the heterogeneous model.
	if hetDeg > -0.001 {
		t.Errorf("hetero NOM average degradation %.4f, expected clearly negative", hetDeg)
	}
	var sb strings.Builder
	if err := RenderTable34(&sb, het, true); err != nil {
		t.Fatal(err)
	}
	if err := RenderTable34(&sb, hom, false); err != nil {
		t.Fatal(err)
	}
	if err := RenderTable5(&sb, het); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 3") || !strings.Contains(sb.String(), "Table 5") {
		t.Error("renders missing titles")
	}
}

func TestPbarSweepSmall(t *testing.T) {
	cfg := QuickConfig()
	rows, err := PbarSweep(cfg, "r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The paper reports <0.1% at its (smaller) effective variation
		// level; at the headline 15% budgets we allow up to 1%.
		if math.Abs(r.RelDiff) > 0.01 {
			t.Errorf("pbar %.2f: objective moved %.3f%%, expected near zero",
				r.Pbar, 100*r.RelDiff)
		}
	}
	var sb strings.Builder
	if err := RenderPbarSweep(&sb, "r1", rows); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityHTreeSmall(t *testing.T) {
	cfg := QuickConfig()
	cfg.HTreeLevels = 3
	res, err := CapacityHTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sinks != 64 {
		t.Errorf("sinks = %d, want 64", res.Sinks)
	}
	if res.Buffers == 0 {
		t.Error("no buffers inserted in the clock tree")
	}
	var sb strings.Builder
	if err := RenderCapacity(&sb, res); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	cfg := QuickConfig()
	cfg.Benches = []string{"p1"}
	cfg.MCSamples = 1000
	cfg.HTreeLevels = 3
	cfg.FourPTimeout = 5e9
	var sb strings.Builder
	if err := RunAll(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 2", "Figure 3",
		"Figure 5", "Figure 6", "Table 3", "Table 4", "Table 5", "pbar", "Capacity"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}
