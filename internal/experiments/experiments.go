// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): benchmark characteristics (Table 1), 4P-vs-2P runtime
// (Table 2), the pruning-probability curves (Figure 2), the device-fitting
// PDF comparison (Figure 3), runtime scaling (Figure 5), canonical-vs-
// Monte-Carlo RAT PDFs (Figure 6), the NOM/D2D/WID yield comparison under
// the heterogeneous and homogeneous spatial models (Tables 3 and 4),
// buffer counts (Table 5), the p̄ sensitivity sweep (§5.3), and the
// H-tree capacity run (footnote 4).
//
// Each experiment is a function returning structured rows, so the CLI
// harness, the benchmarks in bench_test.go, and EXPERIMENTS.md generation
// all share one implementation.
package experiments

import (
	"fmt"
	"time"

	"vabuf/internal/benchgen"
	"vabuf/internal/core"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/variation"
)

// Config holds the experiment-wide knobs.
type Config struct {
	// BudgetFrac is the per-class 1-sigma variation budget as a fraction
	// of a device characteristic's nominal value. The paper states 5%
	// budgets for variation data it derived from SPICE; our own substrate
	// extraction (§3.1 pipeline, device.Extract) measures ~15% T_b
	// variability under the paper's 10% L_eff sigma, so the headline
	// configuration uses 0.15 and the literal 0.05 is reported as an
	// ablation. See DESIGN.md and EXPERIMENTS.md.
	BudgetFrac float64
	// YieldQuantile is the yield quantile q (0.05 = the 95%-yield RAT).
	YieldQuantile float64
	// MCSamples is the Monte-Carlo sample count for Figure 6.
	MCSamples int
	// Benches selects the Table 1 presets to run (default: all seven).
	Benches []string
	// FourPLibSize truncates the buffer library for the Table 2 baseline
	// comparison (the 4P partial order blows up combinatorially in B; the
	// DATE 2005 baseline used a single buffer type). Default 1.
	FourPLibSize int
	// FourPMaxCandidates and FourPTimeout are the capacity limits under
	// which a 4P run is declared failed (the "-" entries of Table 2).
	FourPMaxCandidates int
	FourPTimeout       time.Duration
	// HTreeLevels sets the footnote-4 capacity benchmark (4^levels sinks).
	HTreeLevels int
	// Seed namespaces every randomized piece of the harness.
	Seed int64
	// Parallelism is forwarded to core.Options.Parallelism for every
	// insertion run: 0 selects GOMAXPROCS, 1 forces the serial engine.
	// Results are identical either way; only wall-clock times change.
	Parallelism int
	// Hull is forwarded to core.Options.HullBuffering for every insertion
	// run. Results are identical for every mode (the kernel is certified
	// bit-identical); the knob exists for A/B timing of the tables.
	Hull core.HullMode
}

// DefaultConfig returns the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		BudgetFrac:         0.15,
		YieldQuantile:      0.05,
		MCSamples:          10000,
		Benches:            benchNames(),
		FourPLibSize:       1,
		FourPMaxCandidates: 20_000,
		FourPTimeout:       60 * time.Second,
		HTreeLevels:        8,
		Seed:               1,
	}
}

// QuickConfig is a downsized configuration for tests and benchmarks.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.MCSamples = 2000
	cfg.Benches = []string{"p1", "r1"}
	cfg.FourPTimeout = 10 * time.Second
	cfg.FourPMaxCandidates = 20_000
	cfg.HTreeLevels = 4
	return cfg
}

func (c Config) withDefaults() Config {
	if c.BudgetFrac == 0 {
		c.BudgetFrac = 0.15
	}
	if c.YieldQuantile == 0 {
		c.YieldQuantile = 0.05
	}
	if c.MCSamples == 0 {
		c.MCSamples = 10000
	}
	if len(c.Benches) == 0 {
		c.Benches = benchNames()
	}
	if c.FourPLibSize == 0 {
		c.FourPLibSize = 1
	}
	if c.FourPMaxCandidates == 0 {
		c.FourPMaxCandidates = 20_000
	}
	if c.FourPTimeout == 0 {
		c.FourPTimeout = 60 * time.Second
	}
	if c.HTreeLevels == 0 {
		c.HTreeLevels = 8
	}
	return c
}

func benchNames() []string {
	specs := benchgen.Presets()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// library returns the shared buffer library.
func library() device.Library { return device.DefaultLibrary() }

// buildModels constructs the three §5 variation models for a tree: the
// full WID model (heterogeneous or homogeneous spatial), and the D2D
// model (random + inter-die only).
func buildModels(tree *rctree.Tree, budget float64, hetero bool) (wid, d2d *variation.Model, err error) {
	die := tree.BoundingBox().Expand(100)
	widCfg := variation.DefaultConfig(die)
	widCfg.Heterogeneous = hetero
	widCfg.RandomFrac = budget
	widCfg.SpatialFrac = budget
	widCfg.InterDieFrac = budget
	wid, err = variation.NewModel(widCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building WID model: %w", err)
	}
	d2dCfg := variation.DefaultConfig(die)
	d2dCfg.RandomFrac = budget
	d2dCfg.SpatialFrac = 0
	d2dCfg.InterDieFrac = budget
	d2d, err = variation.NewModel(d2dCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building D2D model: %w", err)
	}
	return wid, d2d, nil
}

// insertWID runs the variation-aware 2P insertion under the WID model.
func insertWID(tree *rctree.Tree, model *variation.Model, q float64, par int, hull core.HullMode) (*core.Result, error) {
	return core.Insert(tree, core.Options{
		Library:        library(),
		Model:          model,
		SelectQuantile: q,
		Parallelism:    par,
		HullBuffering:  hull,
	})
}
