package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestBudgetAblationShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"r1"}
	rows, err := BudgetAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Spread grows with the budget.
	for i := 1; i < len(rows); i++ {
		if !(rows[i].SigmaOverMean > rows[i-1].SigmaOverMean) {
			t.Errorf("sigma/mean not increasing: %+v", rows)
		}
	}
	// At the largest budget the NOM degradation is at least as bad as at
	// the smallest (the leverage story of DESIGN.md).
	if rows[2].AvgNOMDeg > rows[0].AvgNOMDeg+1e-6 {
		t.Errorf("NOM degradation did not grow with budget: %.4f vs %.4f",
			rows[2].AvgNOMDeg, rows[0].AvgNOMDeg)
	}
	var sb strings.Builder
	if err := RenderBudgetAblation(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "budget") {
		t.Error("render missing header")
	}
}

func TestWireSizingAblationShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"r1"}
	rows, err := WireSizingAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// Wire sizing includes the default width, so it can only help the
	// yield RAT (tiny tolerance for quantile-evaluation noise between the
	// two independent model instances).
	if r.Improvement < -0.01 {
		t.Errorf("wire sizing lost %.2f%%", 100*r.Improvement)
	}
	if r.SizedWideEdges == 0 {
		t.Error("no edges were widened; the ablation shows nothing")
	}
	var sb strings.Builder
	if err := RenderWireSizing(&sb, rows); err != nil {
		t.Fatal(err)
	}
}

func TestMinVarianceAblationShape(t *testing.T) {
	rows, err := MinVarianceAblation(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The pure blend understates variance; matching restores it.
		if r.BlendVarRatio > 1.001 {
			t.Errorf("rho %.1f: blend ratio %.3f above 1", r.Rho, r.BlendVarRatio)
		}
		if math.Abs(r.MatchedVarRatio-1) > 1e-9 {
			t.Errorf("rho %.1f: matched ratio %.6f != 1", r.Rho, r.MatchedVarRatio)
		}
	}
	// The deficit is worst for independent inputs.
	if !(rows[0].BlendVarRatio < rows[2].BlendVarRatio) {
		t.Errorf("blend deficit should shrink with correlation: %+v", rows)
	}
	var sb strings.Builder
	if err := RenderMinVariance(&sb, rows); err != nil {
		t.Fatal(err)
	}
}

func TestInverterAblationShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"r1"}
	rows, err := InverterAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	// The combined library strictly contains the buffer library, so the
	// result must not get worse (tolerance for independent model noise).
	if r.Gain < -0.01 {
		t.Errorf("inverters lost %.2f%%", 100*r.Gain)
	}
	if r.Buffers+r.Inverters == 0 {
		t.Error("no devices inserted")
	}
	var sb strings.Builder
	if err := RenderInverterAblation(&sb, rows); err != nil {
		t.Fatal(err)
	}
}

func TestCornerAblationShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Benches = []string{"r1", "r2"}
	rows, err := CornerAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Honest finding (see EXPERIMENTS.md): SS-corner pessimism acts as
		// implicit variance guard-banding, so the two flows land within a
		// few percent of each other — neither should blow the other away.
		if math.Abs(r.Penalty) > 0.035 {
			t.Errorf("%s: corner-vs-WID gap %.2f%% out of the expected band", r.Bench, 100*r.Penalty)
		}
		if r.CornerBuffers == 0 || r.WIDBuffers == 0 {
			t.Errorf("%s: degenerate buffer counts %d/%d", r.Bench, r.CornerBuffers, r.WIDBuffers)
		}
		// The flows produce genuinely different designs.
		if r.CornerBuffers == r.WIDBuffers {
			t.Logf("%s: corner and WID coincidentally used %d buffers", r.Bench, r.WIDBuffers)
		}
	}
	var sb strings.Builder
	if err := RenderCornerAblation(&sb, rows); err != nil {
		t.Fatal(err)
	}
}

func TestSkewExtensionShape(t *testing.T) {
	cfg := QuickConfig()
	rows, err := SkewExtension(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.UnbufferedSkew <= 0 {
			t.Errorf("%d sinks: unbuffered skew %g not positive", r.Sinks, r.UnbufferedSkew)
		}
		// Both optimizers must beat doing nothing, and the variation-aware
		// design must not lose to the deterministic one at the 95%-tile.
		if r.DetSkewQ >= r.UnbufferedSkew {
			t.Errorf("%d sinks: det design %g did not beat unbuffered %g",
				r.Sinks, r.DetSkewQ, r.UnbufferedSkew)
		}
		// On the combined objective it actually optimizes, the
		// variation-aware design must not lose to the deterministic one
		// (small tolerance for ε-coarsening).
		if r.StatObj > r.DetObj*1.05 {
			t.Errorf("%d sinks: va objective %g worse than det %g",
				r.Sinks, r.StatObj, r.DetObj)
		}
	}
	var sb strings.Builder
	if err := RenderSkewExtension(&sb, rows); err != nil {
		t.Fatal(err)
	}
}
