package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"vabuf/internal/stats"
)

// WriteFigureCSVs regenerates Figures 2, 3, 5 and 6 and writes their raw
// data series into dir (created if missing) as fig2.csv, fig3.csv,
// fig5.csv and fig6.csv, for external plotting tools.
func WriteFigureCSVs(dir string, cfg Config) error {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}

	// Figure 2: one row per mean difference, one probability column per
	// (rho, sigma-ratio) curve.
	curves, err := Figure2(cfg)
	if err != nil {
		return err
	}
	header := []string{"mean_diff"}
	for _, c := range curves {
		header = append(header, fmt.Sprintf("p_rho%.1f_ratio%.0f", c.Rho, c.SigmaRatio))
	}
	rows := make([][]string, len(curves[0].MeanDiffs))
	for i := range rows {
		row := []string{fmtF(curves[0].MeanDiffs[i])}
		for _, c := range curves {
			row = append(row, fmtF(c.Probs[i]))
		}
		rows[i] = row
	}
	if err := writeCSV(filepath.Join(dir, "fig2.csv"), header, rows); err != nil {
		return err
	}

	// Figure 3: bin centers with empirical and model densities.
	f3, err := Figure3(cfg)
	if err != nil {
		return err
	}
	rows = rows[:0]
	emp := f3.Hist.PDF()
	for i := range emp {
		x := f3.Hist.BinCenter(i)
		rows = append(rows, []string{
			fmtF(x), fmtF(emp[i]), fmtF(stats.NormalPDF(x, f3.Fit.TbMean, f3.Fit.TbSigma)),
		})
	}
	if err := writeCSV(filepath.Join(dir, "fig3.csv"),
		[]string{"tb_ps", "substrate_pdf", "model_pdf"}, rows); err != nil {
		return err
	}

	// Figure 5: sinks vs runtime.
	f5, err := Figure5(cfg)
	if err != nil {
		return err
	}
	rows = rows[:0]
	for _, r := range f5.Rows {
		rows = append(rows, []string{r.Bench, strconv.Itoa(r.Sinks), fmtF(r.Elapsed.Seconds())})
	}
	if err := writeCSV(filepath.Join(dir, "fig5.csv"),
		[]string{"bench", "sinks", "seconds"}, rows); err != nil {
		return err
	}

	// Figure 6: RAT bins with MC and model densities.
	f6, err := Figure6(cfg)
	if err != nil {
		return err
	}
	rows = rows[:0]
	emp = f6.Hist.PDF()
	for i := range emp {
		x := f6.Hist.BinCenter(i)
		rows = append(rows, []string{
			fmtF(x), fmtF(emp[i]), fmtF(stats.NormalPDF(x, f6.ModelMean, f6.ModelSig)),
		})
	}
	return writeCSV(filepath.Join(dir, "fig6.csv"),
		[]string{"rat_ps", "mc_pdf", "model_pdf"}, rows)
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
