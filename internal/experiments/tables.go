package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"vabuf/internal/benchgen"
	"vabuf/internal/core"
	"vabuf/internal/rctree"
	"vabuf/internal/report"
	"vabuf/internal/stats"
	"vabuf/internal/yield"
)

// Table1Row is one benchmark-characteristics row.
type Table1Row struct {
	Name      string
	Sinks     int
	Positions int
}

// Table1 regenerates the benchmark suite and reports its characteristics.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	out := make([]Table1Row, 0, len(cfg.Benches))
	for _, name := range cfg.Benches {
		tr, err := benchgen.Build(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{
			Name:      name,
			Sinks:     tr.NumSinks(),
			Positions: tr.NumBufferPositions(),
		})
	}
	return out, nil
}

// RenderTable1 renders Table 1 rows.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	t := report.NewTable("Table 1: Characteristics of benchmarks", "Bench", "Sinks", "Buffer Positions")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprint(r.Sinks), fmt.Sprint(r.Positions))
	}
	return t.Render(w)
}

// Table2Row compares the 4P baseline against the 2P rule on one tree.
type Table2Row struct {
	Bench string
	Sinks int
	// Time4P is valid when Fail4P is empty; Fail4P records "capacity" or
	// "timeout" (the paper's "-" entries).
	Time4P  time.Duration
	Fail4P  string
	Time2P  time.Duration
	Speedup float64 // Time4P / Time2P when both finished
}

// Table2 runs RAT optimization under the WID model with the 4P and 2P
// rules. To give the 4P baseline a chance to finish anything (its partial
// order is combinatorial in the library size), the comparison uses a
// truncated library of cfg.FourPLibSize types for both rules; small
// generated nets (s8–s64) are prepended so the speedup is measurable
// before 4P hits its capacity wall, mirroring how [7] only reached tiny
// trees.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	lib := library()[:min(cfg.FourPLibSize, len(library()))]
	type entry struct {
		name string
		tree func() (*treeT, error)
	}
	var entries []entry
	for _, n := range []int{8, 16, 32, 64} {
		n := n
		entries = append(entries, entry{
			name: fmt.Sprintf("s%d", n),
			tree: func() (*treeT, error) {
				return benchgen.Random(benchgen.Spec{Name: fmt.Sprintf("s%d", n), Sinks: n, Seed: cfg.Seed + int64(n)})
			},
		})
	}
	for _, name := range cfg.Benches {
		name := name
		entries = append(entries, entry{name: name, tree: func() (*treeT, error) { return benchgen.Build(name) }})
	}
	out := make([]Table2Row, 0, len(entries))
	for _, e := range entries {
		tr, err := e.tree()
		if err != nil {
			return nil, err
		}
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Bench: e.name, Sinks: tr.NumSinks()}

		t0 := time.Now()
		_, err = core.Insert(tr, core.Options{
			Library:        lib,
			Model:          wid,
			Rule:           core.Rule4P,
			MaxCandidates:  cfg.FourPMaxCandidates,
			Timeout:        cfg.FourPTimeout,
			SelectQuantile: cfg.YieldQuantile,
			Parallelism:    cfg.Parallelism,
			HullBuffering:  cfg.Hull,
		})
		switch {
		case err == nil:
			row.Time4P = time.Since(t0)
		case errors.Is(err, core.ErrCapacity):
			row.Fail4P = "capacity"
		case errors.Is(err, core.ErrTimeout):
			row.Fail4P = "timeout"
		default:
			return nil, fmt.Errorf("experiments: 4P on %s: %w", e.name, err)
		}

		// A fresh model keeps the source spaces of the two runs independent.
		wid2, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		if _, err := core.Insert(tr, core.Options{
			Library:        lib,
			Model:          wid2,
			SelectQuantile: cfg.YieldQuantile,
			Parallelism:    cfg.Parallelism,
			HullBuffering:  cfg.Hull,
		}); err != nil {
			return nil, fmt.Errorf("experiments: 2P on %s: %w", e.name, err)
		}
		row.Time2P = time.Since(t0)
		if row.Fail4P == "" && row.Time2P > 0 {
			row.Speedup = float64(row.Time4P) / float64(row.Time2P)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTable2 renders Table 2 rows.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	t := report.NewTable("Table 2: Runtime comparison (seconds), 4P baseline vs 2P rule",
		"Bench", "Sinks", "4P", "2P", "Speedup")
	for _, r := range rows {
		t4 := "-(" + r.Fail4P + ")"
		sp := "-"
		if r.Fail4P == "" {
			t4 = report.F(r.Time4P.Seconds(), 3)
			sp = report.F(r.Speedup, 1) + "x"
		}
		t.AddRow(r.Bench, fmt.Sprint(r.Sinks), t4, report.F(r.Time2P.Seconds(), 3), sp)
	}
	return t.Render(w)
}

// Local aliases keep the harness signatures readable.
type (
	treeT      = rctree.Tree
	treeNodeID = rctree.NodeID
)

// normalYield returns P(RAT >= target) for RAT ~ N(mean, sigma).
func normalYield(mean, sigma, target float64) float64 {
	if sigma == 0 {
		if mean >= target {
			return 1
		}
		return 0
	}
	return 1 - stats.Phi((target-mean)/sigma)
}

// AlgoReport is one algorithm's evaluation under the full WID model.
type AlgoReport struct {
	// YieldRAT is the q%-tile RAT (the "RAT at 95% timing yield").
	YieldRAT float64
	// RelDeg is the relative degradation of YieldRAT versus WID
	// (negative = worse than WID), the parenthesized percentages of
	// Tables 3–4.
	RelDeg float64
	// Yield is the timing yield at the common target RAT.
	Yield float64
	// Mean and Sigma are the canonical RAT moments.
	Mean, Sigma float64
	// Buffers is the number of inserted buffers (Table 5).
	Buffers int
}

// YieldRow is one benchmark's Tables 3/4/5 data.
type YieldRow struct {
	Bench  string
	Target float64
	NOM    AlgoReport
	D2D    AlgoReport
	WID    AlgoReport
}

// YieldComparison runs the three algorithms (NOM, D2D, WID) on every
// benchmark and evaluates all three buffered designs under the full WID
// model — heterogeneous spatial variation for Table 3, homogeneous for
// Table 4 — with the common target RAT set to the WID mean reduced by 10%
// (§5.3). Table 5 reads the buffer counts from the same rows.
func YieldComparison(cfg Config, hetero bool) ([]YieldRow, error) {
	cfg = cfg.withDefaults()
	lib := library()
	out := make([]YieldRow, 0, len(cfg.Benches))
	for _, name := range cfg.Benches {
		tr, err := benchgen.Build(name)
		if err != nil {
			return nil, err
		}
		wid, d2d, err := buildModels(tr, cfg.BudgetFrac, hetero)
		if err != nil {
			return nil, err
		}
		resNOM, err := core.Insert(tr, core.Options{Library: lib, Parallelism: cfg.Parallelism, HullBuffering: cfg.Hull})
		if err != nil {
			return nil, fmt.Errorf("experiments: NOM on %s: %w", name, err)
		}
		resD2D, err := core.Insert(tr, core.Options{Library: lib, Model: d2d, SelectQuantile: cfg.YieldQuantile, Parallelism: cfg.Parallelism, HullBuffering: cfg.Hull})
		if err != nil {
			return nil, fmt.Errorf("experiments: D2D on %s: %w", name, err)
		}
		resWID, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull)
		if err != nil {
			return nil, fmt.Errorf("experiments: WID on %s: %w", name, err)
		}
		row := YieldRow{Bench: name}
		reps := make([]AlgoReport, 3)
		for i, assign := range []map[treeNodeID]int{resNOM.Assignment, resD2D.Assignment, resWID.Assignment} {
			rep, err := yield.Evaluate(tr, lib, assign, wid, cfg.YieldQuantile)
			if err != nil {
				return nil, fmt.Errorf("experiments: evaluating %s: %w", name, err)
			}
			reps[i] = AlgoReport{
				YieldRAT: rep.YieldRAT,
				Mean:     rep.Mean,
				Sigma:    rep.Sigma,
				Buffers:  rep.NumBuffers,
			}
		}
		row.NOM, row.D2D, row.WID = reps[0], reps[1], reps[2]
		row.Target = row.WID.Mean - 0.10*math.Abs(row.WID.Mean)
		for _, r := range []*AlgoReport{&row.NOM, &row.D2D, &row.WID} {
			r.RelDeg = (r.YieldRAT - row.WID.YieldRAT) / math.Abs(row.WID.YieldRAT)
			r.Yield = normalYield(r.Mean, r.Sigma, row.Target)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTable34 renders a yield comparison as Table 3 (heterogeneous) or
// Table 4 (homogeneous).
func RenderTable34(w io.Writer, rows []YieldRow, hetero bool) error {
	title := "Table 4: RAT optimization under the homogeneous spatial variation model"
	num := "4"
	if hetero {
		title = "Table 3: RAT optimization under the heterogeneous spatial variation model"
		num = "3"
	}
	_ = num
	t := report.NewTable(title,
		"Bench", "NOM RAT (%)", "NOM Yield", "D2D RAT (%)", "D2D Yield", "WID RAT", "WID Yield")
	var sumNOM, sumD2D, yNOM, yD2D, yWID float64
	for _, r := range rows {
		t.AddRow(r.Bench,
			fmt.Sprintf("%s (%+.1f%%)", report.F(r.NOM.YieldRAT, 1), 100*r.NOM.RelDeg),
			report.Pct(r.NOM.Yield, 1),
			fmt.Sprintf("%s (%+.1f%%)", report.F(r.D2D.YieldRAT, 1), 100*r.D2D.RelDeg),
			report.Pct(r.D2D.Yield, 1),
			report.F(r.WID.YieldRAT, 1),
			report.Pct(r.WID.Yield, 1),
		)
		sumNOM += r.NOM.RelDeg
		sumD2D += r.D2D.RelDeg
		yNOM += r.NOM.Yield
		yD2D += r.D2D.Yield
		yWID += r.WID.Yield
	}
	n := float64(len(rows))
	t.AddRule()
	t.AddRow("Avg",
		fmt.Sprintf("%+.1f%%", 100*sumNOM/n), report.Pct(yNOM/n, 1),
		fmt.Sprintf("%+.1f%%", 100*sumD2D/n), report.Pct(yD2D/n, 1),
		"", report.Pct(yWID/n, 1))
	return t.Render(w)
}

// RenderTable5 renders the buffer-count comparison.
func RenderTable5(w io.Writer, rows []YieldRow) error {
	t := report.NewTable("Table 5: Number of buffers under different variation models",
		"Bench", "NOM", "D2D", "WID")
	var rNOM, rD2D float64
	for _, r := range rows {
		t.AddRow(r.Bench,
			fmt.Sprintf("%d (%.2fx)", r.NOM.Buffers, float64(r.NOM.Buffers)/float64(r.WID.Buffers)),
			fmt.Sprintf("%d (%.2fx)", r.D2D.Buffers, float64(r.D2D.Buffers)/float64(r.WID.Buffers)),
			fmt.Sprint(r.WID.Buffers))
		rNOM += float64(r.NOM.Buffers) / float64(r.WID.Buffers)
		rD2D += float64(r.D2D.Buffers) / float64(r.WID.Buffers)
	}
	n := float64(len(rows))
	t.AddRule()
	t.AddRow("Avg", fmt.Sprintf("%.2fx", rNOM/n), fmt.Sprintf("%.2fx", rD2D/n), "1x")
	return t.Render(w)
}
