package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"vabuf/internal/benchgen"
	"vabuf/internal/core"
	"vabuf/internal/rctree"
	"vabuf/internal/report"
)

// PbarRow is one point of the §5.3 p̄ sensitivity sweep.
type PbarRow struct {
	Pbar      float64
	Objective float64
	// RelDiff is the relative difference of the objective versus the
	// pbar = 0.5 baseline.
	RelDiff float64
	Elapsed time.Duration
}

// PbarSweep reruns the WID optimization on one benchmark for p̄ from 0.5
// to 0.95, reporting how much the final optimal RAT moves (§5.3's last
// experiment: "less than 0.1% difference").
func PbarSweep(cfg Config, bench string) ([]PbarRow, error) {
	cfg = cfg.withDefaults()
	tr, err := benchgen.Build(bench)
	if err != nil {
		return nil, err
	}
	var out []PbarRow
	base := 0.0
	for _, pbar := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := core.Insert(tr, core.Options{
			Library:        library(),
			Model:          wid,
			PbarL:          pbar,
			PbarT:          pbar,
			SelectQuantile: cfg.YieldQuantile,
			Parallelism:    cfg.Parallelism,
			HullBuffering:  cfg.Hull,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: pbar %.2f on %s: %w", pbar, bench, err)
		}
		row := PbarRow{Pbar: pbar, Objective: res.Objective, Elapsed: time.Since(t0)}
		if pbar == 0.5 {
			base = res.Objective
		}
		row.RelDiff = (res.Objective - base) / math.Abs(base)
		out = append(out, row)
	}
	return out, nil
}

// RenderPbarSweep renders the sweep.
func RenderPbarSweep(w io.Writer, bench string, rows []PbarRow) error {
	t := report.NewTable(
		fmt.Sprintf("pbar sensitivity on %s (§5.3: expect well under 0.1%% RAT difference)", bench),
		"pbar", "objective RAT", "vs pbar=0.5", "runtime")
	for _, r := range rows {
		t.AddRow(report.F(r.Pbar, 2), report.F(r.Objective, 2),
			fmt.Sprintf("%+.4f%%", 100*r.RelDiff),
			fmt.Sprintf("%.3fs", r.Elapsed.Seconds()))
	}
	return t.Render(w)
}

// CapacityResult is the footnote-4 H-tree capacity run.
type CapacityResult struct {
	Levels  int
	Sinks   int
	Nodes   int
	Buffers int
	Elapsed time.Duration
	Mean    float64
	Sigma   float64
}

// CapacityHTree builds a 4^levels-sink H-tree clock network and runs the
// full WID 2P optimization on it — the "eight-level H-tree with more than
// 64,000 sinks" capacity demonstration.
func CapacityHTree(cfg Config) (*CapacityResult, error) {
	cfg = cfg.withDefaults()
	side := 10000.0
	tr, err := benchgen.HTree(cfg.HTreeLevels, side, 10, rctree.WireParams{}, 0.3)
	if err != nil {
		return nil, err
	}
	wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	res, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull)
	if err != nil {
		return nil, err
	}
	return &CapacityResult{
		Levels:  cfg.HTreeLevels,
		Sinks:   tr.NumSinks(),
		Nodes:   tr.Len(),
		Buffers: res.NumBuffers,
		Elapsed: time.Since(t0),
		Mean:    res.Mean,
		Sigma:   res.Sigma,
	}, nil
}

// RenderCapacity renders the capacity run.
func RenderCapacity(w io.Writer, res *CapacityResult) error {
	_, err := fmt.Fprintf(w,
		"Capacity (footnote 4): %d-level H-tree, %d sinks, %d nodes -> %d buffers, RAT %.1f ± %.2f ps, %.2fs\n",
		res.Levels, res.Sinks, res.Nodes, res.Buffers, res.Mean, res.Sigma, res.Elapsed.Seconds())
	return err
}
