package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"vabuf/internal/benchgen"
	"vabuf/internal/core"
	"vabuf/internal/device"
	"vabuf/internal/rctree"
	"vabuf/internal/report"
	"vabuf/internal/skew"
	"vabuf/internal/spice"
	"vabuf/internal/stats"
	"vabuf/internal/variation"
	"vabuf/internal/yield"
)

// BudgetRow is one point of the variation-budget ablation: how the
// NOM-versus-WID gap scales with the per-class budget.
type BudgetRow struct {
	Budget float64
	// AvgNOMDeg is the average relative yield-RAT degradation of NOM
	// versus WID across the benchmarks (negative = worse).
	AvgNOMDeg float64
	// AvgNOMYield and AvgWIDYield are at the 10%-reduced target.
	AvgNOMYield, AvgWIDYield float64
	// SigmaOverMean is the average relative RAT spread of the WID design.
	SigmaOverMean float64
}

// BudgetAblation reruns the Table 3 experiment at several per-class
// budgets, including the paper's literal 5% and the substrate-extracted
// 15% the headline tables use.
func BudgetAblation(cfg Config) ([]BudgetRow, error) {
	cfg = cfg.withDefaults()
	out := make([]BudgetRow, 0, 3)
	for _, budget := range []float64{0.05, 0.10, 0.15} {
		c := cfg
		c.BudgetFrac = budget
		rows, err := YieldComparison(c, true)
		if err != nil {
			return nil, fmt.Errorf("experiments: budget %.2f: %w", budget, err)
		}
		var r BudgetRow
		r.Budget = budget
		for _, row := range rows {
			r.AvgNOMDeg += row.NOM.RelDeg
			r.AvgNOMYield += row.NOM.Yield
			r.AvgWIDYield += row.WID.Yield
			r.SigmaOverMean += row.WID.Sigma / math.Abs(row.WID.Mean)
		}
		n := float64(len(rows))
		r.AvgNOMDeg /= n
		r.AvgNOMYield /= n
		r.AvgWIDYield /= n
		r.SigmaOverMean /= n
		out = append(out, r)
	}
	return out, nil
}

// RenderBudgetAblation renders the budget sweep.
func RenderBudgetAblation(w io.Writer, rows []BudgetRow) error {
	t := report.NewTable("Ablation: per-class variation budget (heterogeneous model)",
		"budget", "sigma/|mean|", "NOM vs WID RAT", "NOM yield", "WID yield")
	for _, r := range rows {
		t.AddRow(report.Pct(r.Budget, 0), report.Pct(r.SigmaOverMean, 1),
			fmt.Sprintf("%+.2f%%", 100*r.AvgNOMDeg),
			report.Pct(r.AvgNOMYield, 1), report.Pct(r.AvgWIDYield, 1))
	}
	return t.Render(w)
}

// WireSizingRow compares fixed-wire WID insertion against simultaneous
// buffer insertion and wire sizing (the [8] extension).
type WireSizingRow struct {
	Bench          string
	FixedYieldRAT  float64
	SizedYieldRAT  float64
	Improvement    float64 // relative improvement of the yield RAT
	FixedBuffers   int
	SizedBuffers   int
	SizedWideEdges int // edges assigned a non-default width
	Elapsed        time.Duration
}

// WireSizingAblation runs WID insertion with and without the wire library
// on each benchmark, evaluating both under the same model.
func WireSizingAblation(cfg Config) ([]WireSizingRow, error) {
	cfg = cfg.withDefaults()
	lib := library()
	wlib := rctree.DefaultWireLibrary()
	out := make([]WireSizingRow, 0, len(cfg.Benches))
	for _, name := range cfg.Benches {
		tr, err := benchgen.Build(name)
		if err != nil {
			return nil, err
		}
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		fixed, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull)
		if err != nil {
			return nil, err
		}
		wid2, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		sized, err := core.Insert(tr, core.Options{
			Library:        lib,
			Model:          wid2,
			WireLibrary:    wlib,
			SelectQuantile: cfg.YieldQuantile,
			Parallelism:    cfg.Parallelism,
			HullBuffering:  cfg.Hull,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: wire sizing on %s: %w", name, err)
		}
		row := WireSizingRow{
			Bench:        name,
			FixedBuffers: fixed.NumBuffers,
			SizedBuffers: sized.NumBuffers,
			Elapsed:      time.Since(t0),
		}
		// Evaluate both under the FIXED-run model so quantiles compare.
		fixedRep, err := yield.Evaluate(tr, lib, fixed.Assignment, wid, cfg.YieldQuantile)
		if err != nil {
			return nil, err
		}
		wires := make(rctree.WireAssignment, len(sized.WireAssignment))
		for id, wi := range sized.WireAssignment {
			wires[id] = wlib[wi].Params
			if wi != 0 {
				row.SizedWideEdges++
			}
		}
		sizedRAT, err := yield.PropagateSized(tr, lib, sized.Assignment, wires, wid2)
		if err != nil {
			return nil, err
		}
		row.FixedYieldRAT = fixedRep.YieldRAT
		row.SizedYieldRAT = sizedRAT.Quantile(cfg.YieldQuantile, wid2.Space)
		row.Improvement = (row.SizedYieldRAT - row.FixedYieldRAT) / math.Abs(row.FixedYieldRAT)
		out = append(out, row)
	}
	return out, nil
}

// RenderWireSizing renders the wire-sizing ablation.
func RenderWireSizing(w io.Writer, rows []WireSizingRow) error {
	t := report.NewTable("Ablation: simultaneous buffer insertion and wire sizing ([8] extension)",
		"Bench", "fixed yield-RAT", "sized yield-RAT", "gain", "buffers", "widened edges", "runtime")
	for _, r := range rows {
		t.AddRow(r.Bench,
			report.F(r.FixedYieldRAT, 1), report.F(r.SizedYieldRAT, 1),
			fmt.Sprintf("%+.2f%%", 100*r.Improvement),
			fmt.Sprintf("%d→%d", r.FixedBuffers, r.SizedBuffers),
			fmt.Sprint(r.SizedWideEdges),
			fmt.Sprintf("%.2fs", r.Elapsed.Seconds()))
	}
	return t.Render(w)
}

// MinVarianceRow quantifies the design choice behind the canonical MIN:
// the paper's pure tightness blend (eq. 38) understates the variance of
// min(T1, T2); this library moment-matches it to Clark's exact value.
type MinVarianceRow struct {
	Rho float64
	// BlendVarRatio is E[Var_blend / Var_clark] over random pairs — below
	// 1 means the blend understates variance.
	BlendVarRatio float64
	// MatchedVarRatio is the same after moment matching (exactly 1).
	MatchedVarRatio float64
}

// MinVarianceAblation samples random correlated normal pairs and measures
// the variance deficit of the blend-only canonical MIN at several
// correlation levels.
func MinVarianceAblation(cfg Config) ([]MinVarianceRow, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]MinVarianceRow, 0, 3)
	for _, rho := range []float64{0, 0.5, 0.9} {
		var sumBlend, sumMatch float64
		const trials = 2000
		for i := 0; i < trials; i++ {
			space := variation.NewSpace()
			shared := space.Add(variation.ClassInterDie, 1, "s")
			a := space.Add(variation.ClassRandom, 1, "a")
			b := space.Add(variation.ClassRandom, 1, "b")
			// Construct two unit-variance forms with correlation rho.
			sh := math.Sqrt(rho)
			ind := math.Sqrt(1 - rho)
			f := variation.NewForm(rng.NormFloat64(), []variation.Term{{ID: shared, Coef: sh}, {ID: a, Coef: ind}})
			g := variation.NewForm(rng.NormFloat64(), []variation.Term{{ID: shared, Coef: sh}, {ID: b, Coef: ind}})
			mom := stats.MinNormals(f.Nominal, 1, g.Nominal, 1, rho)
			if mom.Var <= 0 {
				continue
			}
			// Blend-only variance.
			t := mom.Tightness
			blend := f.Scale(t).Add(g.Scale(1 - t))
			sumBlend += blend.Var(space) / mom.Var
			// The library MIN (moment matched).
			matched := variation.Min(f, g, space)
			sumMatch += matched.Form.Var(space) / mom.Var
		}
		out = append(out, MinVarianceRow{
			Rho:             rho,
			BlendVarRatio:   sumBlend / trials,
			MatchedVarRatio: sumMatch / trials,
		})
	}
	return out, nil
}

// RenderMinVariance renders the canonical-MIN variance ablation.
func RenderMinVariance(w io.Writer, rows []MinVarianceRow) error {
	t := report.NewTable("Ablation: canonical MIN variance (blend of eq. 38 vs moment-matched)",
		"rho", "Var(blend)/Var(Clark)", "Var(matched)/Var(Clark)")
	for _, r := range rows {
		t.AddRow(report.F(r.Rho, 1), report.F(r.BlendVarRatio, 3), report.F(r.MatchedVarRatio, 3))
	}
	return t.Render(w)
}

// InverterRow compares plain buffer insertion against a library extended
// with inverters (polarity-aware insertion).
type InverterRow struct {
	Bench string
	// BufRAT and InvRAT are the WID yield-RATs without/with inverters.
	BufRAT, InvRAT float64
	Gain           float64
	// Inverters counts inverter instances in the combined-library design.
	Buffers, Inverters int
}

// InverterAblation runs WID insertion with the buffer library alone and
// with buffers + inverters, evaluating both under the same model.
func InverterAblation(cfg Config) ([]InverterRow, error) {
	cfg = cfg.withDefaults()
	bufLib := library()
	combined := append(append(device.Library{}, bufLib...), device.InverterLibrary()...)
	out := make([]InverterRow, 0, len(cfg.Benches))
	for _, name := range cfg.Benches {
		tr, err := benchgen.Build(name)
		if err != nil {
			return nil, err
		}
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		bufRes, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull)
		if err != nil {
			return nil, err
		}
		bufRep, err := yield.Evaluate(tr, bufLib, bufRes.Assignment, wid, cfg.YieldQuantile)
		if err != nil {
			return nil, err
		}
		wid2, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		invRes, err := core.Insert(tr, core.Options{
			Library:        combined,
			Model:          wid2,
			SelectQuantile: cfg.YieldQuantile,
			Parallelism:    cfg.Parallelism,
			HullBuffering:  cfg.Hull,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: inverter run on %s: %w", name, err)
		}
		invRep, err := yield.Evaluate(tr, combined, invRes.Assignment, wid2, cfg.YieldQuantile)
		if err != nil {
			return nil, err
		}
		row := InverterRow{
			Bench:  name,
			BufRAT: bufRep.YieldRAT,
			InvRAT: invRep.YieldRAT,
			Gain:   (invRep.YieldRAT - bufRep.YieldRAT) / math.Abs(bufRep.YieldRAT),
		}
		for _, bi := range invRes.Assignment {
			if combined[bi].Inverting {
				row.Inverters++
			} else {
				row.Buffers++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderInverterAblation renders the inverter ablation.
func RenderInverterAblation(w io.Writer, rows []InverterRow) error {
	t := report.NewTable("Ablation: polarity-aware insertion (buffers vs buffers + inverters)",
		"Bench", "buffer-only yield-RAT", "with inverters", "gain", "buffers+inverters")
	for _, r := range rows {
		t.AddRow(r.Bench, report.F(r.BufRAT, 1), report.F(r.InvRAT, 1),
			fmt.Sprintf("%+.2f%%", 100*r.Gain),
			fmt.Sprintf("%d+%d", r.Buffers, r.Inverters))
	}
	return t.Render(w)
}

// CornerRow compares the traditional corner methodology against
// statistical design: a design optimized against the pessimistic SS
// corner library versus the WID statistical design, both evaluated under
// the same statistical model with typical (TT) devices.
type CornerRow struct {
	Bench string
	// CornerRAT and WIDRAT are the yield-RATs of the SS-corner design and
	// the statistical design under the TT statistical model.
	CornerRAT, WIDRAT float64
	// Penalty is how much the corner design gives up versus WID
	// (negative = worse).
	Penalty float64
	// CornerBuffers and WIDBuffers count inserted buffers: corner designs
	// over-provision against a pessimism that mostly never happens.
	CornerBuffers, WIDBuffers int
}

// CornerAblation runs the corner-vs-statistical comparison on each
// benchmark.
func CornerAblation(cfg Config) ([]CornerRow, error) {
	cfg = cfg.withDefaults()
	ttLib := library()
	ssLib, err := device.CornerLibrary([]float64{2, 4, 8, 16}, spice.CornerSS)
	if err != nil {
		return nil, err
	}
	out := make([]CornerRow, 0, len(cfg.Benches))
	for _, name := range cfg.Benches {
		tr, err := benchgen.Build(name)
		if err != nil {
			return nil, err
		}
		// Corner flow: deterministic insertion believing the SS values.
		cornerRes, err := core.Insert(tr, core.Options{Library: ssLib, Parallelism: cfg.Parallelism, HullBuffering: cfg.Hull})
		if err != nil {
			return nil, fmt.Errorf("experiments: SS corner on %s: %w", name, err)
		}
		// Statistical flow: WID under the TT model.
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		widRes, err := insertWID(tr, wid, cfg.YieldQuantile, cfg.Parallelism, cfg.Hull)
		if err != nil {
			return nil, err
		}
		// Both evaluated with TT devices under the same model. The corner
		// design keeps its buffer *positions and sizes* but the silicon is
		// typical.
		cornerRep, err := yield.Evaluate(tr, ttLib, cornerRes.Assignment, wid, cfg.YieldQuantile)
		if err != nil {
			return nil, err
		}
		widRep, err := yield.Evaluate(tr, ttLib, widRes.Assignment, wid, cfg.YieldQuantile)
		if err != nil {
			return nil, err
		}
		out = append(out, CornerRow{
			Bench:         name,
			CornerRAT:     cornerRep.YieldRAT,
			WIDRAT:        widRep.YieldRAT,
			Penalty:       (cornerRep.YieldRAT - widRep.YieldRAT) / math.Abs(widRep.YieldRAT),
			CornerBuffers: cornerRes.NumBuffers,
			WIDBuffers:    widRes.NumBuffers,
		})
	}
	return out, nil
}

// RenderCornerAblation renders the corner-methodology comparison.
func RenderCornerAblation(w io.Writer, rows []CornerRow) error {
	t := report.NewTable("Ablation: SS-corner design vs statistical design (evaluated at TT under the model)",
		"Bench", "corner yield-RAT", "WID yield-RAT", "corner penalty", "buffers corner/WID")
	for _, r := range rows {
		t.AddRow(r.Bench, report.F(r.CornerRAT, 1), report.F(r.WIDRAT, 1),
			fmt.Sprintf("%+.2f%%", 100*r.Penalty),
			fmt.Sprintf("%d/%d", r.CornerBuffers, r.WIDBuffers))
	}
	return t.Render(w)
}

// SkewRow is the clock-skew extension experiment (§6 future work).
type SkewRow struct {
	Sinks          int
	UnbufferedSkew float64
	// DetSkewQ and StatSkewQ are the 95%-tile skews (under the full
	// model) of the deterministic and variation-aware designs; DetObj and
	// StatObj are the combined objectives both optimizers actually
	// minimize (95% skew + 0.2 · 95% latency), evaluated under the model.
	DetSkewQ, StatSkewQ     float64
	DetObj, StatObj         float64
	DetBuffers, StatBuffers int
}

// SkewExtension optimizes unbalanced clock nets for skew, deterministic
// versus variation-aware, and evaluates both under the full model.
func SkewExtension(cfg Config) ([]SkewRow, error) {
	cfg = cfg.withDefaults()
	lib := library()
	out := make([]SkewRow, 0, 2)
	for _, sinks := range []int{16, 24} {
		tr, err := benchgen.Random(benchgen.Spec{
			Name: "clk", Sinks: sinks, Seed: cfg.Seed + int64(sinks),
			RATSpread: -1, DieSide: 12000,
		})
		if err != nil {
			return nil, err
		}
		wid, _, err := buildModels(tr, cfg.BudgetFrac, true)
		if err != nil {
			return nil, err
		}
		bare, _, err := skew.Propagate(tr, lib, nil, nil)
		if err != nil {
			return nil, err
		}
		det, err := skew.Minimize(tr, skew.Options{Library: lib, LatencyWeight: 0.2})
		if err != nil {
			return nil, err
		}
		stat, err := skew.Minimize(tr, skew.Options{
			Library: lib, Model: wid, LatencyWeight: 0.2, Epsilon: 0.5,
		})
		if err != nil {
			return nil, err
		}
		detSkew, detLat, err := skew.Propagate(tr, lib, det.Assignment, wid)
		if err != nil {
			return nil, err
		}
		statSkew, statLat, err := skew.Propagate(tr, lib, stat.Assignment, wid)
		if err != nil {
			return nil, err
		}
		detSkewQ := detSkew.Quantile(0.95, wid.Space)
		statSkewQ := statSkew.Quantile(0.95, wid.Space)
		out = append(out, SkewRow{
			Sinks:          sinks,
			UnbufferedSkew: bare.Nominal,
			DetSkewQ:       detSkewQ,
			StatSkewQ:      statSkewQ,
			DetObj:         detSkewQ + 0.2*detLat.Quantile(0.95, wid.Space),
			StatObj:        statSkewQ + 0.2*statLat.Quantile(0.95, wid.Space),
			DetBuffers:     det.NumBuffers,
			StatBuffers:    stat.NumBuffers,
		})
	}
	return out, nil
}

// RenderSkewExtension renders the clock-skew extension experiment.
func RenderSkewExtension(w io.Writer, rows []SkewRow) error {
	t := report.NewTable("Extension (§6 future work): variation-aware clock-skew minimization",
		"sinks", "unbuffered skew", "det 95% skew", "va 95% skew",
		"det objective", "va objective", "buffers det/va")
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Sinks), report.F(r.UnbufferedSkew, 1),
			report.F(r.DetSkewQ, 1), report.F(r.StatSkewQ, 1),
			report.F(r.DetObj, 1), report.F(r.StatObj, 1),
			fmt.Sprintf("%d/%d", r.DetBuffers, r.StatBuffers))
	}
	return t.Render(w)
}
