package experiments

import (
	"fmt"
	"io"
)

// RunAll executes every experiment in sequence and renders the paper's
// tables and figures to w. It is the engine behind cmd/experiments and
// the EXPERIMENTS.md record.
func RunAll(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	section := func(name string) {
		fmt.Fprintf(w, "\n===== %s =====\n\n", name)
	}

	section("Table 1")
	t1, err := Table1(cfg)
	if err != nil {
		return fmt.Errorf("table 1: %w", err)
	}
	if err := RenderTable1(w, t1); err != nil {
		return err
	}

	section("Figure 2")
	f2, err := Figure2(cfg)
	if err != nil {
		return fmt.Errorf("figure 2: %w", err)
	}
	if err := RenderFigure2(w, f2); err != nil {
		return err
	}

	section("Figure 3")
	f3, err := Figure3(cfg)
	if err != nil {
		return fmt.Errorf("figure 3: %w", err)
	}
	if err := RenderFigure3(w, f3); err != nil {
		return err
	}

	section("Table 2")
	t2, err := Table2(cfg)
	if err != nil {
		return fmt.Errorf("table 2: %w", err)
	}
	if err := RenderTable2(w, t2); err != nil {
		return err
	}

	section("Figure 5")
	f5, err := Figure5(cfg)
	if err != nil {
		return fmt.Errorf("figure 5: %w", err)
	}
	if err := RenderFigure5(w, f5); err != nil {
		return err
	}

	section("Figure 6")
	f6, err := Figure6(cfg)
	if err != nil {
		return fmt.Errorf("figure 6: %w", err)
	}
	if err := RenderFigure6(w, f6); err != nil {
		return err
	}

	section("Table 3 (heterogeneous spatial model)")
	het, err := YieldComparison(cfg, true)
	if err != nil {
		return fmt.Errorf("table 3: %w", err)
	}
	if err := RenderTable34(w, het, true); err != nil {
		return err
	}

	section("Table 4 (homogeneous spatial model)")
	hom, err := YieldComparison(cfg, false)
	if err != nil {
		return fmt.Errorf("table 4: %w", err)
	}
	if err := RenderTable34(w, hom, false); err != nil {
		return err
	}

	section("Table 5 (buffer counts, heterogeneous model)")
	if err := RenderTable5(w, het); err != nil {
		return err
	}

	section("pbar sensitivity (§5.3)")
	pbarBench := cfg.Benches[0]
	pb, err := PbarSweep(cfg, pbarBench)
	if err != nil {
		return fmt.Errorf("pbar sweep: %w", err)
	}
	if err := RenderPbarSweep(w, pbarBench, pb); err != nil {
		return err
	}

	section("Capacity (footnote 4)")
	capRes, err := CapacityHTree(cfg)
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	if err := RenderCapacity(w, capRes); err != nil {
		return err
	}

	section("Ablation: variation budget")
	ba, err := BudgetAblation(cfg)
	if err != nil {
		return fmt.Errorf("budget ablation: %w", err)
	}
	if err := RenderBudgetAblation(w, ba); err != nil {
		return err
	}

	section("Ablation: wire sizing")
	ws, err := WireSizingAblation(cfg)
	if err != nil {
		return fmt.Errorf("wire-sizing ablation: %w", err)
	}
	if err := RenderWireSizing(w, ws); err != nil {
		return err
	}

	section("Ablation: canonical MIN variance")
	mv, err := MinVarianceAblation(cfg)
	if err != nil {
		return fmt.Errorf("min-variance ablation: %w", err)
	}
	if err := RenderMinVariance(w, mv); err != nil {
		return err
	}

	section("Ablation: corner methodology")
	ca, err := CornerAblation(cfg)
	if err != nil {
		return fmt.Errorf("corner ablation: %w", err)
	}
	if err := RenderCornerAblation(w, ca); err != nil {
		return err
	}

	section("Ablation: inverters")
	ia, err := InverterAblation(cfg)
	if err != nil {
		return fmt.Errorf("inverter ablation: %w", err)
	}
	if err := RenderInverterAblation(w, ia); err != nil {
		return err
	}

	section("Extension: clock-skew minimization")
	se, err := SkewExtension(cfg)
	if err != nil {
		return fmt.Errorf("skew extension: %w", err)
	}
	return RenderSkewExtension(w, se)
}
